#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sim/rng.hpp"

namespace photorack::sim {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); }, 4);
  SUCCEED();
}

TEST(ParallelFor, ParallelMatchesSerialWithPerIndexSeeds) {
  // The determinism contract: per-index seeding makes parallel results
  // identical to serial results.
  auto compute = [](std::size_t i) {
    Rng rng(1000 + i);
    double acc = 0;
    for (int k = 0; k < 100; ++k) acc += rng.uniform();
    return acc;
  };
  std::vector<double> serial(64), parallel(64);
  for (std::size_t i = 0; i < 64; ++i) serial[i] = compute(i);
  parallel_for(64, [&](std::size_t i) { parallel[i] = compute(i); }, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, SingleWorkerFallback) {
  std::vector<int> order;
  parallel_for(16, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial path preserves order
}

}  // namespace
}  // namespace photorack::sim
