// Reproduces Fig 12: speedup of intra-rack disaggregation built on
// photonics (+35 ns to memory) over the same rack built on modern
// electronic switches (+85 ns; for GPUs the electronic fabric additionally
// cannot carry native HBM bandwidth — see DESIGN.md).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 12: photonic vs electronic disaggregation",
                     "Fig 12 (Section VI-D)");

  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, core::kPhotonicExtraNs, core::kElectronicExtraNs};
  const auto cpu = core::run_cpu_sweep(opt);
  const auto summary = core::fig12_speedup(cpu);

  std::cout << "CPU speedups (PARSEC counted at medium, NAS at class B):\n";
  sim::Table ct({"Benchmark", "in-order speedup"});
  for (const auto& [name, s] : summary.cpu_inorder) ct.add_row({name, sim::fmt_pct(s)});
  ct.print(std::cout);

  std::cout << "\nGPU speedups:\n";
  sim::Table gt({"App", "speedup"});
  for (const auto& [name, s] : summary.gpu) gt.add_row({name, sim::fmt_pct(s)});
  gt.print(std::cout);

  std::cout << "\npaper-vs-measured (Fig 12):\n";
  core::check_line(std::cout, "CPU in-order avg speedup", 0.09, summary.cpu_inorder_avg,
                   1.5);
  core::check_line(std::cout, "CPU in-order max speedup (NW runs hotter here)", 0.41,
                   summary.cpu_inorder_max, 0.8);
  core::check_line(std::cout, "CPU OOO avg speedup", 0.15, summary.cpu_ooo_avg, 1.5);
  core::check_line(std::cout, "CPU OOO max speedup (NW runs hotter here)", 0.45,
                   summary.cpu_ooo_max, 1.0);
  // The paper reports average == maximum == 61% for GPUs, which only a
  // uniform full-fleet bandwidth throttle could produce; our per-app
  // roofline spreads the speedups instead (EXPERIMENTS.md note 5).
  core::check_line(std::cout, "GPU avg speedup", 0.61, summary.gpu_avg, 0.85);
  core::check_line(std::cout, "GPU max speedup", 0.61, summary.gpu_max, 1.0);
  std::cout << "photonic wins on every benchmark: "
            << [&] {
                 for (const auto& [n, s] : summary.cpu_inorder)
                   if (s < -1e-9) return "NO";
                 for (const auto& [n, s] : summary.gpu)
                   if (s < -1e-9) return "NO";
                 return "yes";
               }()
            << '\n';
  return 0;
}
