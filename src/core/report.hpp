#pragma once

#include <iosfwd>
#include <string>

namespace photorack::core {

/// Shared bench-output helpers: a titled banner and a "paper vs measured"
/// line so every bench binary reports reproduction status uniformly.
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_ref);

/// e.g. check_line(os, "average CPU slowdown (in-order)", 0.15, measured)
/// prints both values and a PASS/DRIFT marker at the given tolerance.
void check_line(std::ostream& os, const std::string& what, double paper, double measured,
                double rel_tolerance = 0.5);

}  // namespace photorack::core
