#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "rack/rack_builder.hpp"

namespace photorack::net {
namespace {

struct Rig {
  WavelengthFabric fabric;
  PiggybackView view;
  IndirectRouter router;

  explicit Rig(std::uint64_t seed = 1)
      : fabric(350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr),
        view(fabric, sim::kPsPerUs),
        router(fabric, view, seed) {}
};

TEST(Routing, SmallDemandGoesDirect) {
  Rig rig;
  const auto result = rig.router.route(10, 20, 25.0);
  EXPECT_TRUE(result.fully_satisfied());
  EXPECT_DOUBLE_EQ(result.direct_gbps, 25.0);
  EXPECT_EQ(result.intermediates_used, 0);
}

TEST(Routing, DirectBudgetIs125Gbps) {
  Rig rig;
  const auto result = rig.router.route(10, 20, 125.0);
  EXPECT_TRUE(result.fully_satisfied());
  EXPECT_GE(result.direct_gbps, 125.0);
  EXPECT_EQ(result.intermediates_used, 0);
}

TEST(Routing, LargeDemandSpillsToIndirect) {
  Rig rig;
  const auto result = rig.router.route(10, 20, 500.0);
  EXPECT_TRUE(result.fully_satisfied());
  EXPECT_GT(result.indirect_gbps, 0.0);
  EXPECT_GT(result.intermediates_used, 0);
}

TEST(Routing, FullEscapeBandwidthReachable) {
  // Section VI-A case (A): one MCM can aim its whole escape bandwidth at a
  // single destination using indirect routing alone.
  Rig rig;
  const auto result = rig.router.route(10, 20, 8000.0);
  EXPECT_GT(result.satisfied(), 7000.0);
}

TEST(Routing, ConservationOfSegments) {
  // Property: per-segment reservations equal direct + 1x indirect (src->mid)
  // + 1x indirect (mid->dst) + second-hop legs; releasing restores an idle
  // fabric exactly.
  Rig rig;
  const auto r1 = rig.router.route(1, 2, 700.0);
  const auto r2 = rig.router.route(3, 2, 400.0);
  rig.router.release(r1);
  rig.router.release(r2);
  EXPECT_NEAR(rig.fabric.utilization(), 0.0, 1e-12);
}

TEST(Routing, SegmentsAccountForSatisfiedBandwidth) {
  Rig rig;
  const auto result = rig.router.route(5, 6, 300.0);
  double into_dst = 0.0;
  for (const auto& seg : result.segments)
    if (seg.to == 6) into_dst += seg.gbps;
  EXPECT_NEAR(into_dst, result.satisfied(), 1e-9);
}

TEST(Routing, NoSegmentTouchesSourceAsDestination) {
  Rig rig;
  const auto result = rig.router.route(5, 6, 2000.0);
  for (const auto& seg : result.segments) {
    EXPECT_NE(seg.to, 5);
    EXPECT_NE(seg.from, 6);
  }
}

TEST(Routing, DeterministicForSeed) {
  Rig a(77), b(77);
  const auto ra = a.router.route(8, 9, 1000.0);
  const auto rb = b.router.route(8, 9, 1000.0);
  EXPECT_DOUBLE_EQ(ra.direct_gbps, rb.direct_gbps);
  EXPECT_DOUBLE_EQ(ra.indirect_gbps, rb.indirect_gbps);
  EXPECT_EQ(ra.segments.size(), rb.segments.size());
}

TEST(Routing, StaleViewTriggersSecondHop) {
  Rig rig;
  // Saturate mid->dst links behind the view's back: the view still believes
  // they are free, so a mis-pick and second-hop repair must occur.
  rig.view.force_refresh(0);
  for (int mid = 0; mid < 350; ++mid) {
    if (mid == 100 || mid == 200) continue;
    rig.fabric.allocate_direct(mid, 200, rig.fabric.direct_capacity(mid, 200));
  }
  const auto result = rig.router.route(100, 200, 500.0);
  EXPECT_GT(result.stale_mispicks, 0);
  // Everything beyond the direct 125 Gb/s needed repair, and repair paths
  // into 200 are saturated too — so blocked bandwidth appears.
  EXPECT_GT(result.blocked_gbps, 0.0);
}

TEST(Routing, FreshViewAvoidsMispicks) {
  Rig rig;
  for (int mid = 0; mid < 350; ++mid) {
    if (mid == 100 || mid == 200) continue;
    rig.fabric.allocate_direct(mid, 200, rig.fabric.direct_capacity(mid, 200));
  }
  rig.view.force_refresh(0);  // now the view knows
  const auto result = rig.router.route(100, 200, 500.0);
  EXPECT_EQ(result.stale_mispicks, 0);
  EXPECT_DOUBLE_EQ(result.indirect_gbps, 0.0);  // no candidates at all
}

TEST(Routing, CumulativeCountersAdvance) {
  Rig rig;
  (void)rig.router.route(1, 2, 50.0);
  (void)rig.router.route(2, 3, 50.0);
  EXPECT_EQ(rig.router.flows_routed(), 2u);
}

/// Fuzz property: any interleaving of route/refresh/release operations
/// leaves the fabric exactly empty once everything is released, never
/// over-allocates a wavelength, and never loses reserved bandwidth.
class RoutingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingFuzz, ConservationUnderRandomChurn) {
  Rig rig(GetParam());
  sim::Rng rng(GetParam() ^ 0xABCDEF);
  std::vector<RouteResult> live;
  for (int step = 0; step < 400; ++step) {
    const double action = rng.uniform();
    if (action < 0.55 || live.empty()) {
      const int src = static_cast<int>(rng.below(350));
      int dst = static_cast<int>(rng.below(350));
      if (dst == src) dst = (dst + 1) % 350;
      const double demand = rng.uniform(1.0, 600.0);
      auto r = rig.router.route(src, dst, demand);
      // Accounting identity: pieces sum to the request.
      EXPECT_NEAR(r.direct_gbps + r.indirect_gbps + r.blocked_gbps, r.requested, 1e-6);
      live.push_back(std::move(r));
    } else if (action < 0.85) {
      const std::size_t pick = rng.below(live.size());
      rig.router.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      rig.view.force_refresh(step);
    }
    EXPECT_LE(rig.fabric.utilization(), 1.0 + 1e-9);
  }
  for (const auto& r : live) rig.router.release(r);
  EXPECT_NEAR(rig.fabric.utilization(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace photorack::net
