// Ablation (§VII): "more latency-tolerant CPUs would make resource
// disaggregation more attractive".  Enables the stride prefetcher and
// re-measures the worst CPU benchmarks' +35 ns slowdown.
#include <iostream>

#include "core/report.hpp"
#include "cpusim/runner.hpp"
#include "sim/table.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace photorack;

double slowdown_for(const workloads::CpuBenchmark& bench, cpusim::CoreKind kind,
                    bool prefetch, double extra_ns) {
  cpusim::SimConfig cfg;
  cfg.core.kind = kind;
  cfg.core.prefetch.enabled = prefetch;
  cfg.warmup_instructions = 300'000;
  cfg.measured_instructions = 1'000'000;
  workloads::SyntheticTrace base_trace(bench.trace);
  const auto base = cpusim::run_simulation(base_trace, cfg);
  cfg.dram.extra_ns = extra_ns;
  workloads::SyntheticTrace perturbed_trace(bench.trace);
  const auto perturbed = cpusim::run_simulation(perturbed_trace, cfg);
  return cpusim::slowdown(base, perturbed);
}

}  // namespace

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Ablation: stride prefetching as latency mitigation",
                     "Section VII");

  const std::vector<std::string> picks = {
      "Rodinia/nw/default", "PARSEC/streamcluster/large", "Rodinia/kmeans/default",
      "PARSEC/canneal/large", "Rodinia/bfs/default"};

  sim::Table table({"Benchmark", "io no-pf", "io with-pf", "ooo no-pf", "ooo with-pf"});
  double nw_off = 0, nw_on = 0;
  for (const auto& name : picks) {
    const workloads::CpuBenchmark* bench = nullptr;
    for (const auto& b : workloads::cpu_benchmarks())
      if (b.full_name() == name) bench = &b;
    if (bench == nullptr) continue;
    const double io_off = slowdown_for(*bench, cpusim::CoreKind::kInOrder, false, 35.0);
    const double io_on = slowdown_for(*bench, cpusim::CoreKind::kInOrder, true, 35.0);
    const double ooo_off =
        slowdown_for(*bench, cpusim::CoreKind::kOutOfOrder, false, 35.0);
    const double ooo_on = slowdown_for(*bench, cpusim::CoreKind::kOutOfOrder, true, 35.0);
    if (name == "Rodinia/nw/default") {
      nw_off = io_off;
      nw_on = io_on;
    }
    table.add_row({name, sim::fmt_pct(io_off), sim::fmt_pct(io_on), sim::fmt_pct(ooo_off),
                   sim::fmt_pct(ooo_on)});
  }
  table.print(std::cout);

  std::cout << "\npaper-vs-measured (qualitative, Section VII):\n";
  core::check_line(std::cout, "prefetching cuts NW's in-order slowdown (ratio)", 0.5,
                   nw_off > 0 ? nw_on / nw_off : 1.0, 0.9);
  std::cout << "note: stride prefetching helps regular sweeps (nw, kmeans, "
               "streamcluster) and leaves irregular pointer chasing "
               "(canneal, bfs) mostly untouched — matching the Section VII "
               "discussion of which latency-tolerance techniques apply "
               "where.\n";
  return 0;
}
