#pragma once

#include <cstdint>
#include <vector>

#include "config/enum_codec.hpp"
#include "cpusim/cache.hpp"
#include "cpusim/dram.hpp"
#include "cpusim/prefetch.hpp"
#include "cpusim/trace.hpp"

namespace photorack::cpusim {

class MissProfileRecorder;  // cpusim/miss_profile.hpp

enum class CoreKind : std::uint8_t {
  kInOrder,
  kOutOfOrder,
  /// §VII extension: a decoupled access/execute engine (FPGA- or
  /// accelerator-style).  Memory traffic is grouped into bursts whose
  /// latency is paid once per burst while data streams at line rate —
  /// the "burst scheduling" latency-tolerance technique of [136][137].
  kDecoupledAccelerator,
};

/// Canonical CLI/campaign-axis/registry spellings: "inorder" | "ooo" |
/// "accel".  The one definition shared by campaigns and registry bindings.
[[nodiscard]] const config::EnumCodec<CoreKind>& core_kind_codec();
[[nodiscard]] const char* to_string(CoreKind kind);

/// Core timing parameters.  The in-order core issues one instruction per
/// cycle and exposes the full latency of every off-core access (§VI-B1:
/// "in-order cores do not mask latency").  The OOO core is a 4-wide,
/// 192-entry-ROB interval model: independent LLC misses that fall within
/// one ROB window overlap (bounded by the MSHR count); dependent misses
/// serialize; near-hits (L2/LLC) are largely hidden by the scheduler.
struct CoreConfig {
  CoreKind kind = CoreKind::kInOrder;
  double freq_ghz = 2.0;
  int width = 4;   // OOO issue width
  int rob = 192;   // OOO window, instructions
  int mshrs = 8;   // max overlapped outstanding misses
  /// Fraction of L2/LLC hit latency an OOO core still exposes.
  double ooo_hit_exposure = 0.25;
  /// Optional stride prefetcher (the §VII latency-tolerance mitigation);
  /// off by default to match the paper's "without mitigation" evaluation.
  PrefetchConfig prefetch;
  /// kDecoupledAccelerator: LLC misses per burst; one burst pays one
  /// latency, members stream behind it.
  int accelerator_burst = 16;
  /// Per-line streaming cost (cycles) within a burst.
  double accelerator_line_cycles = 2.0;
};

/// Cycle accounting produced by a core run.
struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t mem_ops = 0;
  double cycles = 0.0;
  double llc_miss_stall_cycles = 0.0;  // "cycles the LLC spends in a miss"
  std::uint64_t llc_misses = 0;
  std::uint64_t llc_accesses = 0;
  double mlp_sum = 0.0;  // OOO: per-miss effective memory-level parallelism

  [[nodiscard]] double mean_mlp() const {
    return llc_misses ? mlp_sum / static_cast<double>(llc_misses) : 0.0;
  }

  [[nodiscard]] double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
  [[nodiscard]] double llc_miss_rate() const {
    return llc_accesses ? static_cast<double>(llc_misses) / static_cast<double>(llc_accesses)
                        : 0.0;
  }
};

/// Executes instructions against a hierarchy+DRAM, accumulating cycles.
/// Both core models share this interface; construction picks the model.
class Core {
 public:
  Core(CoreConfig cfg, CacheHierarchy& hierarchy, DramModel& dram);

  /// Consume `n` instructions from `trace` (in batches).
  void run(TraceSource& trace, std::uint64_t n);

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const StridePrefetcher& prefetcher() const { return prefetcher_; }
  void reset_stats();

  /// Attach a miss-profile recorder (null detaches).  The recorder observes
  /// every cycle increment without changing any of them, so an instrumented
  /// run stays bit-identical to an uninstrumented one.
  void set_recorder(MissProfileRecorder* recorder) { recorder_ = recorder; }

 private:
  CoreConfig cfg_;
  CacheHierarchy* hierarchy_;
  DramModel* dram_;
  StridePrefetcher prefetcher_;
  CoreStats stats_;
  MissProfileRecorder* recorder_ = nullptr;
  bool last_row_hit_ = false;  // row-buffer outcome of the latest dram_cycles()

  // OOO sliding-window MLP state: instruction indices of the most recent
  // independent LLC misses (bounded by the MSHR count).
  std::uint64_t instr_index_ = 0;
  std::vector<std::uint64_t> recent_miss_idx_;
  std::size_t recent_head_ = 0;
  // Accelerator burst state: misses accumulated in the current burst.
  int burst_fill_ = 0;

  void execute(const Instr& ins);
  void add_base_cycles(double cycles);
  void execute_inorder_mem(const Instr& ins);
  void execute_ooo_mem(const Instr& ins);
  void execute_accelerator_mem(const Instr& ins);
  void handle_prefetch(std::uint64_t addr);
  [[nodiscard]] double dram_cycles(std::uint64_t addr);
  [[nodiscard]] int effective_mlp() const;
};

}  // namespace photorack::cpusim
