// Closed-loop co-simulation study: what the open-loop job stream cannot see.
//
// Runs the same offered job stream (identical arrivals, demands and base
// durations — the co-sim draws each job from its own child RNG stream)
// through four configurations: {static, disaggregated} × {open, closed
// loop}, at a load where the fabric genuinely contends.  The closed loop
// stretches each job by its measured bandwidth-satisfaction shortfall, so
// acceptance, utilization and energy all move together — the paper's
// system-level story (§II-A × §IV × §VI-C) in one table.
#include <iostream>

#include "cosim/rack_cosim.hpp"
#include "sim/table.hpp"

using namespace photorack;

namespace {

cosim::CosimReport run(disagg::AllocationPolicy policy, bool feedback) {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = 8.0;
  cfg.sim_time = 200 * sim::kPsPerMs;
  cfg.contention_feedback = feedback;
  return cosim::run_rack_cosim({}, policy, workloads::UsageModel::cori(), cfg);
}

}  // namespace

int main() {
  sim::Table table({"policy", "loop", "offered", "accepted", "acceptance",
                    "bw satisfied", "mean stretch", "energy kJ", "kJ/job"});
  for (const auto policy : {disagg::AllocationPolicy::kStaticNodes,
                            disagg::AllocationPolicy::kDisaggregated}) {
    for (const bool feedback : {false, true}) {
      const auto report = run(policy, feedback);
      const double kj = report.energy_joules / 1e3;
      table.add_row(
          {disagg::to_string(policy),
           feedback ? "closed" : "open",
           sim::fmt_int(static_cast<long long>(report.jobs.offered)),
           sim::fmt_int(static_cast<long long>(report.jobs.accepted)),
           sim::fmt_pct(report.jobs.acceptance()),
           sim::fmt_pct(report.flows.satisfied_fraction),
           sim::fmt_fixed(report.mean_stretch, 3), sim::fmt_fixed(kj, 1),
           sim::fmt_fixed(report.jobs.accepted
                              ? kj / static_cast<double>(report.jobs.accepted)
                              : 0.0,
                          3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the table: the offered stream is identical in every row;\n"
               "closed-loop rows accept at most what their open-loop twin accepts\n"
               "(contention can only hurt), and disaggregation's acceptance edge\n"
               "over static nodes survives the contention feedback.\n";
  return 0;
}
