// Reproduces Table III: chips per MCM and MCMs per rack for the
// Perlmutter-like 128-node rack, under the 32-fiber x 64-wavelength x
// 25 Gb/s MCM escape budget.
#include <iostream>

#include "core/report.hpp"
#include "rack/mcm.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Table III: MCM packing", "Table III (Section V-A)");

  const rack::RackConfig rack_cfg;
  const rack::McmConfig mcm_cfg;
  const auto plan = rack::pack_rack(rack_cfg, mcm_cfg);

  std::cout << "MCM escape: " << mcm_cfg.fibers << " fibers x "
            << mcm_cfg.wavelengths_per_fiber << " lambdas x "
            << mcm_cfg.gbps_per_wavelength.value
            << " Gb/s = " << plan.mcm.escape().value << " GB/s\n\n";

  sim::Table table({"Chip type", "Escape (GB/s)", "Chips/MCM", "MCMs/rack",
                    "Share/chip (GB/s)"});
  for (const auto& p : plan.types) {
    table.add_row({rack::to_string(p.type), sim::fmt_fixed(p.per_chip_escape.value, 1),
                   sim::fmt_int(p.chips_per_mcm), sim::fmt_int(p.mcm_count),
                   sim::fmt_fixed(p.per_chip_share.value, 1)});
  }
  table.add_row({"Total", "", "", sim::fmt_int(plan.total_mcms), ""});
  table.print(std::cout);

  std::cout << "\npaper-vs-measured (paper values from Table III):\n";
  const struct {
    rack::ChipType type;
    int chips, mcms;
  } expect[] = {
      {rack::ChipType::kCpu, 14, 10},  {rack::ChipType::kGpu, 3, 171},
      {rack::ChipType::kNic, 203, 3},  {rack::ChipType::kHbm, 4, 128},
      {rack::ChipType::kDdr4, 27, 38},
  };
  for (const auto& e : expect) {
    const auto& p = plan.plan_for(e.type);
    core::check_line(std::cout, std::string(rack::to_string(e.type)) + " chips/MCM",
                     e.chips, p.chips_per_mcm, 0.01);
    core::check_line(std::cout, std::string(rack::to_string(e.type)) + " MCMs/rack",
                     e.mcms, p.mcm_count, 0.01);
  }
  core::check_line(std::cout, "total MCMs", 350, plan.total_mcms, 0.01);
  return 0;
}
