#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "config/enum_codec.hpp"
#include "config/value_codec.hpp"

namespace photorack::config {

/// Inclusive validation range for a numeric knob.  Default-constructed =
/// unbounded.  Ranges guard --set against nonsense (negative latencies,
/// zero-node racks), not against merely-unusual values.
struct Range {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool bounded() const {
    return lo != -std::numeric_limits<double>::infinity() ||
           hi != std::numeric_limits<double>::infinity();
  }
};

/// One registered knob: a typed, documented, validated binding from a
/// dotted path ("cpusim.dram.extra_ns") to a field of a config struct.
/// The type-erased apply/read close over the accessor, so the registry can
/// populate and serialize structs it knows nothing about.
struct ParamInfo {
  std::string path;           // full path incl. section ("mcm.fibers")
  std::string type;           // "int", "double", "Gbps", "enum(a|b)", ...
  std::string default_value;  // canonical string of the struct default
  std::string range;          // "[lo, hi]" or "" when unbounded
  std::string doc;
  bool numeric = false;       // accepts any in-range number
  Range bounds;               // meaningful when numeric

  /// Parse + range-check `value`, assign into the struct behind `obj`.
  std::function<void(void* obj, const std::string& value)> apply;
  /// Canonical string of the field's current value in `obj`.
  std::function<std::string(const void* obj)> read;
  /// Parse + range-check only (no struct needed) — the CLI-side validator.
  std::function<void(const std::string& value)> check;
};

/// A registered config struct: its section name, the bound params in
/// registration order, and a type tag guarding build<T>() against section /
/// struct mismatches.
class SectionInfo {
 public:
  SectionInfo(std::string name, std::string struct_name, std::string doc,
              const std::type_info& type)
      : name_(std::move(name)),
        struct_name_(std::move(struct_name)),
        doc_(std::move(doc)),
        type_(&type) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& struct_name() const { return struct_name_; }
  [[nodiscard]] const std::string& doc() const { return doc_; }
  [[nodiscard]] const std::type_info& type() const { return *type_; }
  [[nodiscard]] const std::vector<ParamInfo>& params() const { return params_; }

  /// Fresh default-constructed instance of the bound struct, type-erased.
  /// With params()[i].apply/read this lets generic code (round-trip tests,
  /// serializers) work a section without knowing its type.
  [[nodiscard]] std::shared_ptr<void> make_default() const { return make_default_(); }

 private:
  friend class ParamRegistry;
  template <typename T>
  friend class SectionBinder;

  std::string name_;
  std::string struct_name_;
  std::string doc_;
  const std::type_info* type_;
  std::function<std::shared_ptr<void>()> make_default_;
  std::vector<ParamInfo> params_;
};

class ParamRegistry;

/// Fluent binder returned by ParamRegistry::section<T>(): each bind() call
/// registers one knob.  Field types route through ValueCodec (int, uint64,
/// double, bool, phot units); enums go through bind_enum with their layer's
/// canonical EnumCodec; bind_scaled covers unit-converted views (e.g. a
/// sim::TimePs field exposed in milliseconds).
template <typename T>
class SectionBinder {
 public:
  SectionBinder(ParamRegistry& reg, SectionInfo& section)
      : reg_(&reg), section_(&section) {}

  /// Bind a knob.  `accessor` is a member pointer (`&T::field`) or any
  /// callable mapping T& to a field reference (for nested fields:
  /// `[](T& t) -> int& { return t.core.width; }`).
  template <typename A>
  SectionBinder& bind(const std::string& name, A accessor, std::string doc,
                      Range range = {}) {
    auto access = make_accessor(accessor);
    using V = std::remove_reference_t<decltype(access(std::declval<T&>()))>;
    using Codec = ValueCodec<V>;

    ParamInfo p;
    p.path = path_of(name);
    p.type = Codec::kTypeName;
    p.doc = std::move(doc);
    if constexpr (Codec::kNumeric) {
      p.numeric = true;
      p.bounds = range;
      if (range.bounded())
        p.range = "[" + format_double(range.lo) + ", " + format_double(range.hi) + "]";
    }
    auto parse_checked = [p_path = p.path, range](const std::string& value) -> V {
      V v{};
      try {
        v = Codec::parse(value);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(p_path + ": " + e.what());
      }
      if constexpr (Codec::kNumeric) {
        const double d = Codec::as_double(v);
        if (d < range.lo || d > range.hi)
          throw std::out_of_range(p_path + ": value " + value + " outside [" +
                                  format_double(range.lo) + ", " +
                                  format_double(range.hi) + "]");
      }
      return v;
    };
    p.apply = [access, parse_checked](void* obj, const std::string& value) {
      access(*static_cast<T*>(obj)) = parse_checked(value);
    };
    p.read = [access](const void* obj) {
      return Codec::format(access(const_cast<T&>(*static_cast<const T*>(obj))));
    };
    p.check = [parse_checked](const std::string& value) { (void)parse_checked(value); };
    p.default_value = p.read(&defaults_);
    add(std::move(p));
    return *this;
  }

  /// Bind an enum knob through its layer's canonical EnumCodec.  The codec
  /// must outlive the registry (all canonical codecs are static).
  template <typename A, typename E>
  SectionBinder& bind_enum(const std::string& name, A accessor,
                           const EnumCodec<E>& codec, std::string doc) {
    auto access = make_accessor(accessor);
    ParamInfo p;
    p.path = path_of(name);
    p.type = "enum(" + codec.choices() + ")";
    p.doc = std::move(doc);
    p.apply = [access, &codec](void* obj, const std::string& value) {
      access(*static_cast<T*>(obj)) = codec.parse(value);
    };
    p.read = [access, &codec](const void* obj) {
      return codec.name(access(const_cast<T&>(*static_cast<const T*>(obj))));
    };
    p.check = [&codec](const std::string& value) { (void)codec.parse(value); };
    p.default_value = p.read(&defaults_);
    add(std::move(p));
    return *this;
  }

  /// Bind a double-valued VIEW of a field stored in different units: the
  /// registry sees `field / scale` (e.g. a picosecond field exposed in
  /// milliseconds with scale = ps-per-ms).  Range applies to the view.
  template <typename A>
  SectionBinder& bind_scaled(const std::string& name, A accessor, double scale,
                             const char* unit, std::string doc, Range range = {}) {
    auto access = make_accessor(accessor);
    using Stored = std::remove_reference_t<decltype(access(std::declval<T&>()))>;
    static_assert(std::is_arithmetic_v<Stored>,
                  "bind_scaled wants an arithmetic stored field");
    ParamInfo p;
    p.path = path_of(name);
    p.type = std::string("double(") + unit + ")";
    p.doc = std::move(doc);
    p.numeric = true;
    p.bounds = range;
    if (range.bounded())
      p.range = "[" + format_double(range.lo) + ", " + format_double(range.hi) + "]";
    auto parse_checked = [p_path = p.path, range](const std::string& value) {
      double d = 0;
      try {
        d = parse_double(value);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(p_path + ": " + e.what());
      }
      if (d < range.lo || d > range.hi)
        throw std::out_of_range(p_path + ": value " + value + " outside [" +
                                format_double(range.lo) + ", " +
                                format_double(range.hi) + "]");
      return d;
    };
    p.apply = [access, parse_checked, scale](void* obj, const std::string& value) {
      access(*static_cast<T*>(obj)) = static_cast<Stored>(parse_checked(value) * scale);
    };
    p.read = [access, scale](const void* obj) {
      return format_double(
          static_cast<double>(access(const_cast<T&>(*static_cast<const T*>(obj)))) /
          scale);
    };
    p.check = [parse_checked](const std::string& value) { (void)parse_checked(value); };
    p.default_value = p.read(&defaults_);
    add(std::move(p));
    return *this;
  }

 private:
  template <typename A>
  static auto make_accessor(A accessor) {
    if constexpr (std::is_member_object_pointer_v<A>) {
      return [accessor](T& t) -> decltype(auto) { return t.*accessor; };
    } else {
      return accessor;
    }
  }

  [[nodiscard]] std::string path_of(const std::string& name) const {
    return section_->name() + "." + name;
  }

  void add(ParamInfo p);

  ParamRegistry* reg_;
  SectionInfo* section_;
  T defaults_{};  // registration-time instance the default strings come from
};

/// The typed, path-addressable parameter space: every layer's config struct
/// registered as a section of dotted paths.  One process-wide instance
/// (config::registry()) is built by config/bindings.cpp; tests may build
/// private registries.
class ParamRegistry {
 public:
  ParamRegistry() = default;
  ParamRegistry(const ParamRegistry&) = delete;
  ParamRegistry& operator=(const ParamRegistry&) = delete;

  /// Open a section for struct T; returned binder registers its knobs.
  template <typename T>
  SectionBinder<T> section(std::string name, std::string struct_name,
                           std::string doc = {}) {
    if (section_index_.count(name))
      throw std::logic_error("ParamRegistry: duplicate section '" + name + "'");
    section_index_.emplace(name, sections_.size());
    sections_.push_back(std::make_unique<SectionInfo>(
        std::move(name), std::move(struct_name), std::move(doc), typeid(T)));
    sections_.back()->make_default_ = [] {
      return std::shared_ptr<void>(std::make_shared<T>());
    };
    return SectionBinder<T>(*this, *sections_.back());
  }

  [[nodiscard]] bool has(const std::string& path) const {
    return param_index_.count(path) != 0;
  }
  /// Param for a path, or nullptr.
  [[nodiscard]] const ParamInfo* find(const std::string& path) const;
  /// Param for a path; throws std::out_of_range naming near-miss
  /// suggestions when unknown.
  [[nodiscard]] const ParamInfo& at(const std::string& path) const;

  [[nodiscard]] const std::vector<std::unique_ptr<SectionInfo>>& sections() const {
    return sections_;
  }
  [[nodiscard]] const SectionInfo* find_section(const std::string& name) const;
  /// Every param in registration order (sections in registration order).
  [[nodiscard]] std::vector<const ParamInfo*> params() const;

  /// Closest registered paths to a misspelled one (edit distance), best
  /// first; used in unknown-path errors.
  [[nodiscard]] std::vector<std::string> suggest(const std::string& path,
                                                 std::size_t max_results = 3) const;

  /// Build section `name`'s struct: defaults, then `overrides` (full paths)
  /// applied in order.  Throws on type mismatch, unknown path, bad value.
  template <typename T>
  [[nodiscard]] T build(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& overrides = {}) const {
    const SectionInfo& s = checked_section<T>(name);
    T value{};
    for (const auto& [path, v] : overrides) at_in(s, path).apply(&value, v);
    return value;
  }

  /// Canonical "path=value,..." snapshot of a struct's bound fields, in
  /// registration order — a deterministic cache key / manifest fragment.
  template <typename T>
  [[nodiscard]] std::string snapshot(const std::string& name, const T& value) const {
    const SectionInfo& s = checked_section<T>(name);
    std::string out;
    for (const auto& p : s.params()) {
      if (!out.empty()) out += ',';
      out += p.path;
      out += '=';
      out += p.read(&value);
    }
    return out;
  }

 private:
  template <typename T>
  friend class SectionBinder;

  template <typename T>
  [[nodiscard]] const SectionInfo& checked_section(const std::string& name) const {
    const SectionInfo* s = find_section(name);
    if (s == nullptr) throw std::out_of_range("ParamRegistry: no section '" + name + "'");
    if (s->type() != typeid(T))
      throw std::logic_error("ParamRegistry: section '" + name + "' binds " +
                             s->struct_name() + ", not the requested type");
    return *s;
  }

  /// Param of `s` for full path `path`; throws with suggestions.
  [[nodiscard]] const ParamInfo& at_in(const SectionInfo& s,
                                       const std::string& path) const;

  void add_param(SectionInfo& s, ParamInfo p);

  std::vector<std::unique_ptr<SectionInfo>> sections_;
  std::unordered_map<std::string, std::size_t> section_index_;
  // path -> (section idx, param idx)
  std::unordered_map<std::string, std::pair<std::size_t, std::size_t>> param_index_;
};

template <typename T>
void SectionBinder<T>::add(ParamInfo p) {
  reg_->add_param(*section_, std::move(p));
}

/// An ordered list of path=value overrides resolved against a registry:
/// the single way configuration reaches the model layers.  set() validates
/// eagerly (unknown path -> suggestions; bad value / out of range ->
/// throw), build<T>() populates a section's struct, to_json() serializes
/// the FULL resolved tree deterministically for manifests.
class ConfigTree {
 public:
  explicit ConfigTree(const ParamRegistry& reg);

  ConfigTree& set(const std::string& path, const std::string& value);

  [[nodiscard]] const ParamRegistry& registry() const { return *reg_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& overrides()
      const {
    return overrides_;
  }

  /// Resolved value of one path: last override, else the default.
  [[nodiscard]] const std::string& value(const std::string& path) const;

  template <typename T>
  [[nodiscard]] T build(const std::string& section) const {
    const SectionInfo* s = reg_->find_section(section);
    if (s == nullptr)
      throw std::out_of_range("ConfigTree: no section '" + section + "'");
    const std::string prefix = section + ".";
    std::vector<std::pair<std::string, std::string>> in_section;
    for (const auto& ov : overrides_)
      if (ov.first.compare(0, prefix.size(), prefix) == 0) in_section.push_back(ov);
    return reg_->build<T>(section, in_section);
  }

  /// `{"path":"value",...}` over EVERY registered param, sorted by path —
  /// byte-stable for identical trees regardless of override order.
  [[nodiscard]] std::string to_json() const;

 private:
  const ParamRegistry* reg_;
  std::vector<std::pair<std::string, std::string>> overrides_;
};

/// JSON string literal with the escapes manifests need.
[[nodiscard]] std::string json_quote(const std::string& s);

/// "did you mean a, b, c?" from suggest() output; empty when there are no
/// suggestions.  The one phrasing shared by every unknown-path error.
[[nodiscard]] std::string format_suggestions(const std::vector<std::string>& near);

}  // namespace photorack::config
