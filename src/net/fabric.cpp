#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::net {

WavelengthFabric::WavelengthFabric(int mcms, const rack::AwgrFabricPlan& plan)
    : mcms_(mcms),
      radix_(plan.awgr_radix),
      gbps_per_lambda_(plan.direct_pair_bandwidth.value /
                       std::max(1, plan.min_direct_lambdas_per_pair)),
      lambdas_(plan.lambdas_per_port) {
  if (mcms <= 0 || mcms > radix_)
    throw std::invalid_argument("WavelengthFabric: MCM count must fit the AWGR radix");
  if (lambdas_.empty()) throw std::invalid_argument("WavelengthFabric: no AWGRs in plan");
  alloc_.assign(lambdas_.size(),
                std::vector<double>(static_cast<std::size_t>(mcms_) * mcms_, 0.0));
}

bool WavelengthFabric::covers(int awgr, int src, int dst) const {
  if (src == dst) return false;
  // The port drives its first `lambdas_[awgr]` wavelength indices; the
  // cyclic AWGR shuffle lambda = (src+dst) mod radix then determines which
  // destinations those wavelengths land on.
  return (src + dst) % radix_ < lambdas_[static_cast<std::size_t>(awgr)];
}

int WavelengthFabric::direct_lambdas(int src, int dst) const {
  int n = 0;
  for (int a = 0; a < parallel_awgrs(); ++a) n += covers(a, src, dst) ? 1 : 0;
  return n;
}

double WavelengthFabric::direct_capacity(int src, int dst) const {
  return direct_lambdas(src, dst) * gbps_per_lambda_;
}

double WavelengthFabric::free_direct(int src, int dst) const {
  double free = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a)
    if (covers(a, src, dst))
      free += gbps_per_lambda_ - alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
  return free;
}

double WavelengthFabric::allocated(int src, int dst) const {
  double total = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a)
    total += alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
  return total;
}

double WavelengthFabric::allocate_direct(int src, int dst, double gbps) {
  double granted = 0.0;
  for (int a = 0; a < parallel_awgrs() && gbps > granted; ++a) {
    if (!covers(a, src, dst)) continue;
    auto& used = alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
    const double take = std::min(gbps - granted, gbps_per_lambda_ - used);
    used += take;
    granted += take;
  }
  return granted;
}

void WavelengthFabric::release_direct(int src, int dst, double gbps) {
  for (int a = 0; a < parallel_awgrs() && gbps > 0.0; ++a) {
    if (!covers(a, src, dst)) continue;
    auto& used = alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
    const double give = std::min(gbps, used);
    used -= give;
    gbps -= give;
  }
  if (gbps > 1e-9) throw std::logic_error("release_direct: released more than allocated");
}

double WavelengthFabric::utilization() const {
  double cap = 0.0, used = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a) {
    for (int s = 0; s < mcms_; ++s) {
      for (int d = 0; d < mcms_; ++d) {
        if (!covers(a, s, d)) continue;
        cap += gbps_per_lambda_;
        used += alloc_[static_cast<std::size_t>(a)][idx(s, d)];
      }
    }
  }
  return cap > 0.0 ? used / cap : 0.0;
}

}  // namespace photorack::net
