#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "phot/units.hpp"

namespace photorack::config {

/// Strict scalar parsing shared by the parameter registry, the scenario
/// axes and both CLIs.  Unlike std::sto*, every helper requires the WHOLE
/// string to be one value: trailing garbage ("35ns"), leading whitespace,
/// hex forms and silently-wrapped negatives all throw std::invalid_argument
/// with the offending text in the message.
[[nodiscard]] double parse_double(const std::string& s);
[[nodiscard]] std::int64_t parse_int64(const std::string& s);
[[nodiscard]] std::uint64_t parse_uint64(const std::string& s);
/// Accepts exactly "true" / "false" / "1" / "0".
[[nodiscard]] bool parse_bool(const std::string& s);

/// Canonical string form of a double: the shortest representation that
/// round-trips the value exactly (std::to_chars).  The one formatter used
/// by registry defaults, manifests and sweep cells, so values compare
/// bit-exactly across serialize/parse cycles.
[[nodiscard]] std::string format_double(double v);

/// Per-field-type codec the registry's typed bindings dispatch on: a type
/// name for --params listings, strict parse, canonical format, and (for
/// numerics) a double view for range validation.
template <typename V>
struct ValueCodec;  // unspecialized field types fail to bind, loudly

template <>
struct ValueCodec<double> {
  static constexpr const char* kTypeName = "double";
  static constexpr bool kNumeric = true;
  static double parse(const std::string& s) { return parse_double(s); }
  static std::string format(double v) { return format_double(v); }
  static double as_double(double v) { return v; }
};

template <>
struct ValueCodec<int> {
  static constexpr const char* kTypeName = "int";
  static constexpr bool kNumeric = true;
  static int parse(const std::string& s) {
    // Range-check BEFORE narrowing: a silent wrap (4294967297 -> 1) would
    // pass the binding's range validation while the manifest records a
    // value the run never used.
    const std::int64_t v = parse_int64(s);
    if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
      throw std::invalid_argument("'" + s + "' overflows int");
    return static_cast<int>(v);
  }
  static std::string format(int v) { return std::to_string(v); }
  static double as_double(int v) { return v; }
};

template <>
struct ValueCodec<std::int64_t> {
  static constexpr const char* kTypeName = "int64";
  static constexpr bool kNumeric = true;
  static std::int64_t parse(const std::string& s) { return parse_int64(s); }
  static std::string format(std::int64_t v) { return std::to_string(v); }
  static double as_double(std::int64_t v) { return static_cast<double>(v); }
};

template <>
struct ValueCodec<std::uint64_t> {
  static constexpr const char* kTypeName = "uint64";
  static constexpr bool kNumeric = true;
  static std::uint64_t parse(const std::string& s) { return parse_uint64(s); }
  static std::string format(std::uint64_t v) { return std::to_string(v); }
  static double as_double(std::uint64_t v) { return static_cast<double>(v); }
};

template <>
struct ValueCodec<bool> {
  static constexpr const char* kTypeName = "bool";
  static constexpr bool kNumeric = false;
  static bool parse(const std::string& s) { return parse_bool(s); }
  static std::string format(bool v) { return v ? "true" : "false"; }
};

/// Free-form strings (file paths, trace names).  Identity parse/format:
/// any value round-trips, including the empty string.
template <>
struct ValueCodec<std::string> {
  static constexpr const char* kTypeName = "string";
  static constexpr bool kNumeric = false;
  static std::string parse(const std::string& s) { return s; }
  static std::string format(const std::string& v) { return v; }
};

/// Unit-wrapped doubles (phot::Unit<Tag>) parse and format as their raw
/// value; the type name carries the unit so --params stays unambiguous.
namespace detail {
template <typename U, const char* Name>
struct UnitCodec {
  static constexpr const char* kTypeName = Name;
  static constexpr bool kNumeric = true;
  static U parse(const std::string& s) { return U{parse_double(s)}; }
  static std::string format(U v) { return format_double(v.value); }
  static double as_double(U v) { return v.value; }
};
inline constexpr char kGbpsName[] = "Gbps";
inline constexpr char kGBpsName[] = "GBps";
inline constexpr char kWattsName[] = "W";
inline constexpr char kNsName[] = "ns";
inline constexpr char kPjPerBitName[] = "pJ/bit";
}  // namespace detail

template <>
struct ValueCodec<phot::Gbps> : detail::UnitCodec<phot::Gbps, detail::kGbpsName> {};
template <>
struct ValueCodec<phot::GBps> : detail::UnitCodec<phot::GBps, detail::kGBpsName> {};
template <>
struct ValueCodec<phot::Watts> : detail::UnitCodec<phot::Watts, detail::kWattsName> {};
template <>
struct ValueCodec<phot::Nanoseconds>
    : detail::UnitCodec<phot::Nanoseconds, detail::kNsName> {};
template <>
struct ValueCodec<phot::PjPerBit>
    : detail::UnitCodec<phot::PjPerBit, detail::kPjPerBitName> {};

}  // namespace photorack::config
