#pragma once

#include <cstdint>
#include <vector>

namespace photorack::cpusim {

/// Open-page DDR4 response-latency model.  Per-bank row buffers: an access
/// to the currently open row costs `row_hit_ns`, anything else pays the
/// precharge+activate path (`row_miss_ns`).  `extra_ns` is the
/// disaggregation latency under study (0 baseline; 25/30/35 photonic;
/// 85 electronic) applied to *every* access, exactly as the paper adds it
/// between the LLC and main memory.
struct DramConfig {
  int banks = 16;
  std::uint64_t row_bytes = 8 * 1024;
  double row_hit_ns = 22.0;
  double row_miss_ns = 52.0;
  double extra_ns = 0.0;
};

/// Outcome of one DRAM access: the response latency plus whether the open
/// row buffer served it.  The row-buffer outcome is what the miss-profile
/// recorder needs — it is a pure function of the address stream, so a
/// replay at a different `extra_ns` can rebuild the latency from it.
struct DramAccess {
  double ns = 0.0;
  bool row_hit = false;
};

class DramModel {
 public:
  explicit DramModel(DramConfig cfg = {});

  /// Perform a read/write at `addr`: advances row-buffer state and stats.
  DramAccess access(std::uint64_t addr);

  /// Response latency in nanoseconds for a read/write at `addr`.
  double access_ns(std::uint64_t addr) { return access(addr).ns; }

  [[nodiscard]] const DramConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] double row_hit_rate() const {
    return accesses_ ? static_cast<double>(row_hits_) / static_cast<double>(accesses_) : 0.0;
  }
  void reset_stats() { accesses_ = row_hits_ = 0; }

 private:
  DramConfig cfg_;
  std::vector<std::uint64_t> open_row_;  // per bank; kNone when closed

  std::uint64_t accesses_ = 0;
  std::uint64_t row_hits_ = 0;

  static constexpr std::uint64_t kNone = ~0ULL;
};

}  // namespace photorack::cpusim
