#include "sim/rng.hpp"

#include <limits>

namespace photorack::sim {

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire 2019: unbiased bounded integers without division in the hot path.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  // Box–Muller, polar-free form; deterministic given the stream.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Rejection-inversion sampling (W. Hormann, G. Derflinger 1996).
  // Falls back to uniform for s ~ 0.
  if (n <= 1) return 1;
  if (s < 1e-9) return 1 + below(n);
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // integral of x^-s
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  // hx0/hn — and the per-k acceptance thresholds below — depend only on
  // (n, s), which a trace generator passes unchanged for millions of
  // samples.  Memoizing them skips most log()/pow() calls while computing
  // the identical arithmetic, so the sampled stream is bit-for-bit the
  // same as the unmemoized form.
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_hx0_ = h(0.5) - 1.0;
    zipf_hn_ = h(nd + 0.5);
    zipf_accept_.clear();
    if (n <= kZipfTableMax)
      zipf_accept_.assign(static_cast<std::size_t>(n) + 1,
                          std::numeric_limits<double>::quiet_NaN());
  }
  const double hx0 = zipf_hx0_;
  const double hn = zipf_hn_;
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1 || k > n) continue;
    const double kd = static_cast<double>(k);
    double accept;
    if (!zipf_accept_.empty()) {
      accept = zipf_accept_[static_cast<std::size_t>(k)];
      if (std::isnan(accept)) {
        accept = h(kd + 0.5) - std::pow(kd, -s);
        zipf_accept_[static_cast<std::size_t>(k)] = accept;
      }
    } else {
      accept = h(kd + 0.5) - std::pow(kd, -s);
    }
    if (u >= accept) continue;
    return k;
  }
}

}  // namespace photorack::sim
