#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace photorack::obs {

/// Named tracks the trace groups events onto.  They render as separate
/// threads in Perfetto / chrome://tracing (the recorder emits the matching
/// thread_name metadata), so the job timeline, the flow timeline and the
/// power counters stay visually separated.
enum class Track : int {
  kSim = 0,     // event-loop housekeeping (view refreshes, sampler ticks)
  kJobs = 1,    // job lifecycle: arrival/enqueue/reject instants, hold spans
  kFlows = 2,   // per-flow open->close spans
  kPower = 3,   // power/energy counter tracks
  kFaults = 4,  // fault engine: fail/repair/revoke/requeue/degrade instants
};

/// Deterministic Chrome-trace-event recorder keyed on SIMULATION time.
///
/// Every timestamp comes from the caller's sim::TimePs clock — never wall
/// clock — so two runs of the same seed produce byte-identical traces, and a
/// trace can be diffed like any other campaign artifact.  Events are held in
/// memory (traces are bounded by the run, or by the ring) and serialized by
/// write_json() in the Trace Event Format's "JSON object" flavor:
///
///   {"traceEvents":[...], "displayTimeUnit":"ms"}
///
/// with `ts`/`dur` in microseconds (double), loadable by Perfetto and
/// chrome://tracing as-is.
///
/// Flight-recorder mode: a non-zero `ring_capacity` keeps only the LAST
/// `ring_capacity` events (eviction in record order), so a long run can
/// carry a bounded always-on recorder and dump the tail on anomaly.
/// dropped() counts evictions.
///
/// The null sink is a null TraceRecorder pointer at the instrumentation
/// site: `if (trace) trace->instant(...)` — one pointer test when disabled.
class TraceRecorder {
 public:
  /// Numeric event arguments, rendered into the event's "args" object.
  using Args = std::vector<std::pair<std::string, double>>;

  explicit TraceRecorder(std::size_t ring_capacity = 0)
      : ring_capacity_(ring_capacity) {}

  /// A completed span [begin, end] on `track` (ph:"X").  Recorded when the
  /// span closes, which is when both endpoints are known; `end < begin`
  /// throws std::invalid_argument.
  void complete(Track track, std::string name, sim::TimePs begin, sim::TimePs end,
                Args args = {});

  /// A zero-duration instant at `ts` (ph:"i", thread-scoped).
  void instant(Track track, std::string name, sim::TimePs ts, Args args = {});

  /// One sample of counter track `name` (ph:"C"); Perfetto renders the
  /// series as a stepped area chart.
  void counter(Track track, std::string name, sim::TimePs ts, double value);

  [[nodiscard]] std::size_t events() const { return events_.size(); }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }

  /// Serialize the trace; stream errors are left on `os` for the caller.
  void write_json(std::ostream& os) const;

  /// write_json() into `path`; throws std::runtime_error naming the path
  /// when the file cannot be opened or the write fails (no silent
  /// truncation — a trace that cannot be stored must be loud).
  void write_json_file(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'X' | 'i' | 'C'
    Track track;
    std::string name;
    sim::TimePs ts = 0;
    sim::TimePs dur = 0;  // 'X' only
    Args args;
  };

  void push(Event e);

  std::size_t ring_capacity_;
  std::deque<Event> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace photorack::obs
