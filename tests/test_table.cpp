#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace photorack::sim {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  // Header, rule, two rows.
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line containing a value starts its column at the same offset:
  std::istringstream is(out);
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.find("Value"), row1.find("1"));
  EXPECT_EQ(header.find("Value"), row2.find("22"));
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"A", "B", "C"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CsvOutput) {
  Table t({"A", "B"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "A,B\n1,2\n");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 0), "-1");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_pct(0.156), "15.6%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Formatting, Scientific) {
  EXPECT_EQ(fmt_sci(1.5e-18, 1), "1.5e-18");
}

TEST(Formatting, Integer) {
  EXPECT_EQ(fmt_int(350), "350");
  EXPECT_EQ(fmt_int(-7), "-7");
}

}  // namespace
}  // namespace photorack::sim
