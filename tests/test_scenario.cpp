// Scenario-engine suite: grid expansion, spec identity/seeding, result
// sinks, the campaign registry, and the two contracts the engine exists to
// uphold — (1) sweeps are bit-identical at every --jobs level and (2) the
// fig6 campaign computes the same slowdowns as core::run_cpu_sweep, the
// path the golden tables pin.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "cpusim/runner.hpp"
#include "scenario/campaigns.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep_grid.hpp"
#include "scenario/sweep_runner.hpp"

namespace photorack {
namespace {

using scenario::Campaign;
using scenario::ResultRow;
using scenario::ScenarioSpec;
using scenario::SweepGrid;
using scenario::SweepOptions;
using scenario::SweepResult;
using scenario::SweepRunner;

// ---------------------------------------------------------------------------
// SweepGrid
// ---------------------------------------------------------------------------

TEST(SweepGrid, ExpandsCrossProductLastAxisFastest) {
  SweepGrid grid;
  grid.axis("a", std::vector<std::string>{"x", "y"})
      .axis("b", std::vector<double>{1, 2, 3});
  EXPECT_EQ(grid.size(), 6u);
  const auto specs = grid.expand("test");
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].id(), "test[a=x,b=1]");
  EXPECT_EQ(specs[1].id(), "test[a=x,b=2]");
  EXPECT_EQ(specs[2].id(), "test[a=x,b=3]");
  EXPECT_EQ(specs[3].id(), "test[a=y,b=1]");
  EXPECT_EQ(specs[5].id(), "test[a=y,b=3]");
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(specs[i].index, i);
}

TEST(SweepGrid, SetOverridesExistingAxis) {
  SweepGrid grid;
  grid.axis("extra_ns", std::vector<double>{35});
  grid.set("extra_ns", {"50", "100"});
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.expand("t")[1].at("extra_ns"), "100");
}

TEST(SweepGrid, SetUnknownAxisThrows) {
  SweepGrid grid;
  grid.axis("a", std::vector<std::string>{"x"});
  EXPECT_THROW(grid.set("nope", {"1"}), std::out_of_range);
}

TEST(SweepGrid, EmptyValuesAndDuplicateAxesThrow) {
  SweepGrid grid;
  EXPECT_THROW(grid.axis("a", std::vector<std::string>{}), std::invalid_argument);
  grid.axis("a", std::vector<std::string>{"x"});
  EXPECT_THROW(grid.axis("a", std::vector<std::string>{"y"}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, TypedAccessors) {
  ScenarioSpec spec;
  spec.campaign = "t";
  spec.axes = {{"name", "streamcluster"}, {"extra_ns", "35.5"}, {"measured", "200000"}};
  EXPECT_TRUE(spec.has("name"));
  EXPECT_FALSE(spec.has("nope"));
  EXPECT_EQ(spec.at("name"), "streamcluster");
  EXPECT_DOUBLE_EQ(spec.num("extra_ns"), 35.5);
  EXPECT_EQ(spec.uint("measured"), 200000u);
  EXPECT_EQ(spec.integer("measured"), 200000);
  EXPECT_THROW(spec.at("nope"), std::out_of_range);
  EXPECT_THROW(spec.num("name"), std::invalid_argument);
  EXPECT_THROW(spec.uint("extra_ns"), std::invalid_argument);
}

TEST(ScenarioSpec, UintRejectsNegativesInsteadOfWrapping) {
  // strtoull would silently wrap "-32" to 2^64-32; the accessor must throw
  // so e.g. `--set fibers=-32` fails instead of packing a garbage rack.
  ScenarioSpec spec;
  spec.campaign = "t";
  spec.axes = {{"fibers", "-32"}, {"pad", " 5"}, {"hex", "0x10"}};
  EXPECT_THROW(spec.uint("fibers"), std::invalid_argument);
  EXPECT_THROW(spec.integer("fibers"), std::invalid_argument);
  EXPECT_THROW(spec.uint("pad"), std::invalid_argument);
  EXPECT_THROW(spec.uint("hex"), std::invalid_argument);
}

TEST(ScenarioSpec, DerivedSeedIsStableAndDistinguishesSpecs) {
  ScenarioSpec a;
  a.campaign = "fig6";
  a.axes = {{"bench", "x"}, {"extra_ns", "35"}};
  ScenarioSpec same = a;
  EXPECT_EQ(a.derived_seed(), same.derived_seed());

  ScenarioSpec other_axis = a;
  other_axis.axes[1].second = "85";
  EXPECT_NE(a.derived_seed(), other_axis.derived_seed());

  ScenarioSpec other_base = a;
  other_base.base_seed = 7;
  EXPECT_NE(a.derived_seed(), other_base.derived_seed());

  // index must NOT affect the seed: the same point keeps its stream even if
  // the surrounding grid is reshaped.
  ScenarioSpec other_index = a;
  other_index.index = 42;
  EXPECT_EQ(a.derived_seed(), other_index.derived_seed());
}

TEST(NumToString, RoundTripsExactly) {
  for (const double v : {0.0, 35.0, 1.0 / 3.0, 0.0535, 1555.2, 1e-9, 123456789.123}) {
    const std::string s = scenario::num_to_string(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(scenario::num_to_string(160), "160");
}

// ---------------------------------------------------------------------------
// Result sinks
// ---------------------------------------------------------------------------

TEST(ResultSinks, CsvQuotesOnlyWhenNeeded) {
  std::ostringstream os;
  scenario::CsvSink sink(os);
  sink.open({"name", "value"});
  sink.write(ResultRow{{"plain", "1.5"}});
  sink.write(ResultRow{{"a,b", "say \"hi\""}});
  sink.close();
  EXPECT_EQ(os.str(), "name,value\nplain,1.5\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(ResultSinks, JsonlEmitsNumbersUnquoted) {
  std::ostringstream os;
  scenario::JsonlSink sink(os);
  sink.open({"bench", "slowdown", "note"});
  sink.write(ResultRow{{"nw", "0.79", "line\nbreak"}});
  sink.close();
  EXPECT_EQ(os.str(), "{\"bench\":\"nw\",\"slowdown\":0.79,\"note\":\"line\\nbreak\"}\n");
}

TEST(ResultSinks, JsonlQuotesNonJsonNumericForms) {
  // strtod accepts these, but emitting them unquoted would produce invalid
  // JSON; only RFC 8259 number syntax may go unquoted.
  std::ostringstream os;
  scenario::JsonlSink sink(os);
  sink.open({"a", "b", "c", "d", "e", "f"});
  sink.write(ResultRow{{"+50", "0x1f", "5.", ".5", "-inf", "007"}});
  sink.close();
  EXPECT_EQ(os.str(),
            "{\"a\":\"+50\",\"b\":\"0x1f\",\"c\":\"5.\",\"d\":\".5\","
            "\"e\":\"-inf\",\"f\":\"007\"}\n");

  std::ostringstream os2;
  scenario::JsonlSink sink2(os2);
  sink2.open({"a", "b", "c", "d"});
  sink2.write(ResultRow{{"-1.5e-3", "0", "35", "0.79"}});
  sink2.close();
  EXPECT_EQ(os2.str(), "{\"a\":-1.5e-3,\"b\":0,\"c\":35,\"d\":0.79}\n");
}

TEST(ResultSinks, TablePrintsHeaderAndRows) {
  std::ostringstream os;
  scenario::TableSink sink(os);
  sink.open({"col"});
  sink.write(ResultRow{{"cell"}});
  sink.close();
  EXPECT_NE(os.str().find("col"), std::string::npos);
  EXPECT_NE(os.str().find("cell"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign registry + cheap campaigns against the golden numbers
// ---------------------------------------------------------------------------

TEST(Campaigns, RegistryHasThePaperPresets) {
  for (const char* name : {"fig6", "fig8", "fig9", "table1", "table3", "sec6c"}) {
    const Campaign& c = scenario::campaign_by_name(name);
    EXPECT_EQ(c.name, name);
    EXPECT_FALSE(c.columns.empty()) << name;
    EXPECT_GT(c.default_grid().size(), 0u) << name;
  }
  EXPECT_THROW(scenario::campaign_by_name("nope"), std::out_of_range);
}

TEST(Campaigns, Table3MatchesGoldenPacking) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("table3"));
  ASSERT_EQ(res.rows.size(), 5u);  // one row per chip type
  const struct {
    const char* chip;
    int chips, mcms;
  } expect[] = {
      {"CPU", 14, 10}, {"GPU", 3, 171}, {"NIC", 203, 3}, {"HBM", 4, 128}, {"DDR4", 27, 38}};
  for (const auto& e : expect) {
    const auto& row = res.find({{"chip", e.chip}});
    EXPECT_EQ(res.num(row, "chips_per_mcm"), e.chips) << e.chip;
    EXPECT_EQ(res.num(row, "mcm_count"), e.mcms) << e.chip;
    EXPECT_EQ(res.num(row, "total_mcms"), 350) << e.chip;
  }
}

TEST(Campaigns, Table1MatchesGoldenLinkCounts) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("table1"));
  EXPECT_EQ(res.num(res.find({{"link", "100G-Ethernet"}}), "links"), 160);
  EXPECT_EQ(res.num(res.find({{"link", "400G-Ethernet"}}), "links"), 40);
  EXPECT_EQ(res.num(res.find({{"link", "TeraPHY-768G"}}), "links"), 21);
  EXPECT_EQ(res.num(res.find({{"link", "Comb-1T"}}), "links"), 16);
  EXPECT_EQ(res.num(res.find({{"link", "Comb-2T"}}), "links"), 8);
}

TEST(Campaigns, AggregatesOverEmptyFilterThrow) {
  // mean()/max() on a filter matching nothing must fail loudly, not report
  // a fake 0.0 measurement (e.g. a bench wrapper with a stale suite name).
  const auto res = SweepRunner().run(scenario::campaign_by_name("table1"));
  EXPECT_THROW(res.mean("links", {{"link", "NoSuchLink"}}), std::out_of_range);
  EXPECT_THROW(res.max("links", {{"link", "NoSuchLink"}}), std::out_of_range);
}

TEST(Campaigns, Sec6cMatchesGoldenPower) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("sec6c"));
  const auto& row = res.find({{"fabric", "awgr"}});
  EXPECT_NEAR(res.num(row, "total_w") / 1000.0, 11.0, 1.0);
  EXPECT_NEAR(res.num(row, "overhead"), 0.05, 0.01);
  EXPECT_DOUBLE_EQ(res.num(row, "added_latency_ns"), 35.0);
}

// ---------------------------------------------------------------------------
// Runner behavior: ordering, validation, failure propagation
// ---------------------------------------------------------------------------

Campaign tiny_campaign(std::function<std::vector<ResultRow>(const ScenarioSpec&)> eval) {
  Campaign c;
  c.name = "tiny";
  c.description = "test";
  c.paper_ref = "n/a";
  c.columns = {"i", "seed"};
  c.default_grid = [] {
    SweepGrid grid;
    grid.axis("i", std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7});
    return grid;
  };
  c.evaluate = std::move(eval);
  return c;
}

TEST(SweepRunner, RowsArriveInGridOrderForAnyJobsCount) {
  const Campaign c = tiny_campaign([](const ScenarioSpec& spec) {
    return std::vector<ResultRow>{
        ResultRow{{spec.at("i"), scenario::num_to_string(
                                     static_cast<double>(spec.derived_seed() % 1000))}}};
  });
  const auto serial = SweepRunner(SweepOptions{.jobs = 1}).run(c);
  const auto parallel = SweepRunner(SweepOptions{.jobs = 4}).run(c);
  ASSERT_EQ(serial.rows.size(), 8u);
  ASSERT_EQ(parallel.rows.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(serial.rows[i].cells, parallel.rows[i].cells) << i;
    EXPECT_EQ(serial.rows[i].cells[0], scenario::num_to_string(static_cast<double>(i)));
  }
}

TEST(SweepRunner, EvaluatorFailurePropagatesFromParallelRun) {
  const Campaign c = tiny_campaign([](const ScenarioSpec& spec) -> std::vector<ResultRow> {
    if (spec.at("i") == "5") throw std::runtime_error("scenario 5 failed");
    return {ResultRow{{spec.at("i"), "0"}}};
  });
  EXPECT_THROW(SweepRunner(SweepOptions{.jobs = 4}).run(c), std::runtime_error);
  EXPECT_THROW(SweepRunner(SweepOptions{.jobs = 1}).run(c), std::runtime_error);
}

TEST(SweepRunner, MisshapenRowIsRejected) {
  const Campaign c = tiny_campaign([](const ScenarioSpec&) {
    return std::vector<ResultRow>{ResultRow{{"only-one-cell"}}};
  });
  EXPECT_THROW(SweepRunner().run(c), std::logic_error);
}

// ---------------------------------------------------------------------------
// Determinism: serial and parallel sweeps serialize byte-identically.
// (The satellite contract from ISSUE 2, extending tests/test_determinism.cpp
// to the sweep layer.)
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const Campaign& campaign,
                                              const SweepGrid& grid, std::size_t jobs,
                                              std::uint64_t seed) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  SweepRunner(SweepOptions{.jobs = jobs, .base_seed = seed}).run(campaign, grid,
                                                                {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(SweepDeterminism, CpuCampaignIsByteIdenticalAcrossJobs) {
  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("bench", {"PARSEC/streamcluster/medium", "Rodinia/srad/default"});
  grid.set("warmup", {"20000"});
  grid.set("measured", {"50000"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(SweepDeterminism, GpuCampaignIsByteIdenticalAcrossJobs) {
  const Campaign& campaign = scenario::campaign_by_name("fig9");
  SweepGrid grid = campaign.default_grid();
  grid.set("app", {"backprop", "nw"});
  grid.set("extra_ns", {"35"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(SweepDeterminism, RackCampaignsAreByteIdenticalAcrossJobs) {
  for (const char* name : {"table1", "table3", "sec6c"}) {
    const Campaign& campaign = scenario::campaign_by_name(name);
    const SweepGrid grid = campaign.default_grid();
    const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
    const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
    EXPECT_FALSE(csv1.empty()) << name;
    EXPECT_EQ(csv1, csv4) << name;
    EXPECT_EQ(jsonl1, jsonl4) << name;
  }
}

TEST(SweepDeterminism, BaseSeedReseedsTheWorkload) {
  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("bench", {"Rodinia/srad/default"});
  grid.set("core", {"inorder"});
  grid.set("warmup", {"20000"});
  grid.set("measured", {"50000"});
  const auto [csv_a, jsonl_a] = serialize(campaign, grid, 2, 0);
  const auto [csv_b, jsonl_b] = serialize(campaign, grid, 2, 0);
  EXPECT_EQ(csv_a, csv_b);  // same seed replays exactly
  const auto [csv_c, jsonl_c] = serialize(campaign, grid, 2, 1234);
  EXPECT_NE(csv_a, csv_c);  // a different base seed re-seeds the trace
}

// ---------------------------------------------------------------------------
// Equivalence: the fig6 campaign and core::run_cpu_sweep are the same
// experiment (the acceptance criterion ties the sweep CSV to the golden
// CPU-sweep numbers).  Run both at reduced instruction counts and require
// bit-equal slowdowns for every benchmark.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Replay-rework byte identity: the fig6/fig8 campaigns now evaluate every
// latency point by replaying one recorded miss profile per (bench, core).
// These tests pin the campaign CSV/JSONL bytes against a reference campaign
// that still simulates every point from scratch — i.e. the exact evaluator
// the campaigns used before the rework — so the profile engine cannot move
// a single output byte.
// ---------------------------------------------------------------------------

/// The pre-replay eval_cpu_point: one full run_simulation per grid point
/// (baseline + perturbed), no memoization, no profiles.
std::vector<ResultRow> eval_cpu_point_from_scratch(const ScenarioSpec& spec) {
  const workloads::CpuBenchmark* bench = nullptr;
  for (const auto& b : workloads::cpu_benchmarks())
    if (b.full_name() == spec.at("bench")) bench = &b;
  if (bench == nullptr) throw std::out_of_range("no benchmark " + spec.at("bench"));

  cpusim::SimConfig cfg;
  cfg.core.kind = spec.at("core") == "inorder" ? cpusim::CoreKind::kInOrder
                                               : cpusim::CoreKind::kOutOfOrder;
  cfg.warmup_instructions = spec.uint("warmup");
  cfg.measured_instructions = spec.uint("measured");
  workloads::TraceConfig trace_cfg = bench->trace;
  if (spec.base_seed != 0) trace_cfg.seed = spec.derived_seed();

  cfg.dram.extra_ns = 0.0;
  workloads::SyntheticTrace baseline_trace(trace_cfg);
  const cpusim::SimResult baseline = cpusim::run_simulation(baseline_trace, cfg);

  const double extra = spec.num("extra_ns");
  cpusim::SimResult result = baseline;
  if (extra != 0.0) {
    cfg.dram.extra_ns = extra;
    workloads::SyntheticTrace trace(trace_cfg);
    result = cpusim::run_simulation(trace, cfg);
  }

  ResultRow row;
  row.cells = {bench->suite,
               bench->input,
               bench->full_name(),
               spec.at("core"),
               scenario::num_to_string(extra),
               scenario::num_to_string(baseline.time_ns),
               scenario::num_to_string(result.time_ns),
               scenario::num_to_string(result.time_ns / baseline.time_ns - 1.0),
               scenario::num_to_string(result.llc_miss_rate),
               scenario::num_to_string(result.ipc)};
  return {std::move(row)};
}

void expect_campaign_bytes_match_from_scratch(const char* name, SweepGrid grid) {
  const Campaign& campaign = scenario::campaign_by_name(name);
  Campaign reference = campaign;  // same columns, same grid; old evaluator
  reference.evaluate = eval_cpu_point_from_scratch;

  const auto [replay_csv, replay_jsonl] = serialize(campaign, grid, 2, 0);
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  SweepRunner(SweepOptions{.jobs = 1}).run(reference, grid, {&csv, &jsonl});

  EXPECT_FALSE(replay_csv.empty()) << name;
  EXPECT_EQ(replay_csv, csv_os.str()) << name;
  EXPECT_EQ(replay_jsonl, jsonl_os.str()) << name;
}

TEST(ReplayByteIdentity, Fig6CampaignCsvIsByteIdenticalToFromScratchSimulation) {
  SweepGrid grid = scenario::campaign_by_name("fig6").default_grid();
  grid.set("bench", {"PARSEC/streamcluster/large", "Rodinia/nw/default", "NAS/cg/B"});
  grid.set("warmup", {"20000"});
  grid.set("measured", {"50000"});
  expect_campaign_bytes_match_from_scratch("fig6", std::move(grid));
}

TEST(ReplayByteIdentity, Fig8CampaignCsvIsByteIdenticalToFromScratchSimulation) {
  // fig8's shape: one core, a 25/30/35 ns grid — every point must replay to
  // the exact bytes a per-point simulation produces.
  SweepGrid grid = scenario::campaign_by_name("fig8").default_grid();
  grid.set("bench", {"PARSEC/streamcluster/large", "PARSEC/canneal/medium"});
  grid.set("warmup", {"20000"});
  grid.set("measured", {"50000"});
  expect_campaign_bytes_match_from_scratch("fig8", std::move(grid));
}

TEST(SweepEquivalence, Fig6CampaignMatchesRunCpuSweep) {
  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  opt.cores = {cpusim::CoreKind::kInOrder};
  opt.warmup_instructions = 20'000;
  opt.measured_instructions = 50'000;
  const auto sweep = core::run_cpu_sweep(opt);

  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("core", {"inorder"});
  grid.set("warmup", {"20000"});
  grid.set("measured", {"50000"});
  const auto res = SweepRunner().run(campaign, grid);

  ASSERT_EQ(res.rows.size(), sweep.runs.size() / 2);  // campaign rows skip extra=0
  for (const auto& row : res.rows) {
    const auto& record =
        sweep.find(res.cell(row, "bench"), cpusim::CoreKind::kInOrder, 35.0);
    EXPECT_DOUBLE_EQ(res.num(row, "slowdown"), record.slowdown)
        << res.cell(row, "bench");
    EXPECT_DOUBLE_EQ(res.num(row, "time_ns"), record.result.time_ns)
        << res.cell(row, "bench");
  }
  EXPECT_DOUBLE_EQ(res.mean("slowdown"),
                   sweep.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0));
}

}  // namespace
}  // namespace photorack
