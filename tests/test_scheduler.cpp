#include "net/scheduler.hpp"

#include <gtest/gtest.h>

namespace photorack::net {
namespace {

rack::SpatialFabricPlan spatial_plan() {
  return rack::build_rack_design(rack::FabricKind::kSpatialOrWss).spatial;
}

TEST(Scheduler, GrantsCircuitBetweenConnectedPair) {
  const auto plan = spatial_plan();
  CentralizedScheduler sched(plan);
  const auto grant = sched.request_circuit(0, 1, 0);
  EXPECT_TRUE(grant.granted);
  EXPECT_GE(grant.switch_index, 0);
}

TEST(Scheduler, GrantPaysDecisionPlusReconfiguration) {
  const auto plan = spatial_plan();
  SchedulerConfig cfg;
  CentralizedScheduler sched(plan, cfg);
  const auto grant = sched.request_circuit(0, 1, 0);
  EXPECT_EQ(grant.ready_at, cfg.decision_latency + cfg.reconfiguration_time);
  EXPECT_EQ(grant.waited, grant.ready_at);
}

TEST(Scheduler, SerializesThroughTheScheduler) {
  // The central scheduler is a serial resource: back-to-back requests queue
  // behind each other's decision latency (the overhead AWGRs avoid).
  const auto plan = spatial_plan();
  SchedulerConfig cfg;
  CentralizedScheduler sched(plan, cfg);
  const auto g1 = sched.request_circuit(0, 1, 0);
  const auto g2 = sched.request_circuit(2, 3, 0);
  EXPECT_TRUE(g2.granted);
  EXPECT_GT(g2.waited, g1.waited);
}

TEST(Scheduler, ReleaseFreesPorts) {
  const auto plan = spatial_plan();
  SchedulerConfig cfg;
  cfg.ports_per_switch = 2;  // one circuit per switch
  CentralizedScheduler sched(plan, cfg);
  const auto g1 = sched.request_circuit(0, 1, 0);
  ASSERT_TRUE(g1.granted);
  sched.release_circuit(0, 1, g1.switch_index);
  const auto g2 = sched.request_circuit(0, 1, sim::kPsPerMs);
  EXPECT_TRUE(g2.granted);
}

TEST(Scheduler, ExhaustionDenies) {
  const auto plan = spatial_plan();
  SchedulerConfig cfg;
  cfg.ports_per_switch = 2;
  CentralizedScheduler sched(plan, cfg);
  // MCMs 0 and 1 share several switches; two ports per switch means each
  // shared switch takes exactly one circuit, after which requests fail.
  int granted = 0;
  for (int i = 0; i < 32; ++i)
    if (sched.request_circuit(0, 1, 0).granted) ++granted;
  EXPECT_GT(granted, 0);
  EXPECT_LT(granted, 32);
}

TEST(Scheduler, CountsReconfigurations) {
  const auto plan = spatial_plan();
  CentralizedScheduler sched(plan);
  (void)sched.request_circuit(0, 1, 0);
  (void)sched.request_circuit(4, 9, 0);
  EXPECT_EQ(sched.reconfigurations(), 2u);
  EXPECT_EQ(sched.grant_latency_ns().count(), 2u);
}

TEST(Scheduler, ReleaseWithoutGrantThrows) {
  const auto plan = spatial_plan();
  CentralizedScheduler sched(plan);
  EXPECT_THROW(sched.release_circuit(0, 1, 0), std::logic_error);
}

TEST(Scheduler, MemsReconfigurationDwarfsAwgrZero) {
  // Quantifies Section VI-A1: even a single grant costs ~20 us of MEMS
  // reconfiguration, while the AWGR fabric needs none.
  const auto plan = spatial_plan();
  CentralizedScheduler sched(plan);
  const auto grant = sched.request_circuit(0, 1, 0);
  EXPECT_GE(sim::to_us(grant.waited), 20.0);
}

}  // namespace
}  // namespace photorack::net
