#pragma once

#include <string>
#include <vector>

#include "gpusim/kernel_model.hpp"

namespace photorack::gpusim {

/// One kernel shape plus how many times the application launches it.  The
/// paper's 24 applications contain 1525 kernel launches total; launches of
/// the same shape share one evaluation.
struct KernelLaunch {
  KernelProfile profile;
  int launches = 1;
};

struct AppProfile {
  std::string name;
  std::string suite;  // "Rodinia" | "Polybench" | "Tango"
  std::vector<KernelLaunch> kernels;

  [[nodiscard]] int total_launches() const;
};

/// Whole-application result (launch-weighted over kernels).
struct AppResult {
  std::string name;
  double time_us = 0.0;
  double predicted_cycles = 0.0;       // the paper compares total predicted cycles
  double l2_miss_rate = 0.0;           // transaction-weighted
  double hbm_txn_per_instr = 0.0;      // HBM transactions / total instructions
  double mem_instr_fraction = 0.0;     // instruction-weighted
  std::vector<KernelResult> kernel_results;  // one per distinct shape
};

/// Evaluate every kernel shape once and combine launch-weighted.
[[nodiscard]] AppResult run_app(const AppProfile& app, const GpuConfig& gpu);

/// Relative slowdown of the app at `extra_ns` vs a zero-extra baseline.
[[nodiscard]] double app_slowdown(const AppProfile& app, GpuConfig gpu, double extra_ns);

}  // namespace photorack::gpusim
