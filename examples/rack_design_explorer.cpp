// Rack-design explorer: sweep MCM escape configurations (fibers x
// wavelengths) and fabric choices, showing how the packing (Table III) and
// the per-pair bandwidth respond — the §VII observation that higher escape
// bandwidth means fewer chips per MCM and more parallel AWGRs.
#include <iostream>

#include "core/rack_system.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  std::cout << "MCM escape sweep (AWGR fabric)\n";
  sim::Table table({"Fibers", "Lambdas/fiber", "Escape GB/s", "MCMs", "AWGRs",
                    "Direct Gb/s", "GPUs/MCM", "DDR4 MCMs"});
  for (const int fibers : {16, 24, 32, 48}) {
    for (const int lambdas : {32, 64}) {
      rack::McmConfig mcm;
      mcm.fibers = fibers;
      mcm.wavelengths_per_fiber = lambdas;
      try {
        core::RackSystem system(rack::FabricKind::kParallelAwgrs, {}, mcm);
        const auto& design = system.design();
        table.add_row(
            {sim::fmt_int(fibers), sim::fmt_int(lambdas),
             sim::fmt_fixed(mcm.escape().value, 0), sim::fmt_int(system.total_mcms()),
             sim::fmt_int(design.awgr.parallel_awgrs),
             sim::fmt_fixed(design.awgr.direct_pair_bandwidth.value, 0),
             sim::fmt_int(design.mcm_plan.plan_for(rack::ChipType::kGpu).chips_per_mcm),
             sim::fmt_int(design.mcm_plan.plan_for(rack::ChipType::kDdr4).mcm_count)});
      } catch (const std::exception& e) {
        table.add_row({sim::fmt_int(fibers), sim::fmt_int(lambdas),
                       sim::fmt_fixed(mcm.escape().value, 0), "infeasible:", e.what()});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nFabric comparison at the paper's design point (32 x 64):\n";
  sim::Table fab({"Fabric", "Added latency (ns)", "Direct pair bw (Gb/s)"});
  for (const auto kind :
       {rack::FabricKind::kParallelAwgrs, rack::FabricKind::kSpatialOrWss,
        rack::FabricKind::kElectronicSwitches}) {
    core::RackSystem system(kind);
    const char* name = kind == rack::FabricKind::kParallelAwgrs ? "parallel AWGRs"
                       : kind == rack::FabricKind::kSpatialOrWss
                           ? "spatial/WSS (scheduled)"
                           : "electronic (PCIe-class)";
    fab.add_row({name, sim::fmt_fixed(system.added_memory_latency_ns(), 0),
                 sim::fmt_fixed(system.direct_pair_bandwidth_gbps(), 0)});
  }
  fab.print(std::cout);
  return 0;
}
