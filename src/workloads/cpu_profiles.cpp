#include "workloads/cpu_profiles.hpp"

#include <stdexcept>

namespace photorack::workloads {

namespace {

constexpr std::uint64_t MB = 1024ULL * 1024;

/// Deterministic per-benchmark seed (FNV-1a over the full name).
std::uint64_t seed_of(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h | 1;
}

PatternSpec streaming(double w, std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kStreaming;
  p.weight = w;
  p.region_bytes = region;
  return p;
}

PatternSpec strided(double w, std::uint64_t stride, double dep = 0.0,
                    std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kStrided;
  p.weight = w;
  p.stride_bytes = stride;
  p.dependent_fraction = dep;
  p.region_bytes = region;
  return p;
}

PatternSpec random_over(double w, std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kRandom;
  p.weight = w;
  p.region_bytes = region;
  return p;
}

PatternSpec pchase(double w, std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kPointerChase;
  p.weight = w;
  p.region_bytes = region;
  return p;
}

PatternSpec stencil(double w, int streams = 5, std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kStencil;
  p.weight = w;
  p.stencil_streams = streams;
  p.region_bytes = region;
  return p;
}

PatternSpec tiled(double w, std::uint64_t tile = 128 * 1024, int reuse = 16,
                  std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kTiled;
  p.weight = w;
  p.tile_bytes = tile;
  p.tile_reuse = reuse;
  p.region_bytes = region;
  return p;
}

PatternSpec zipf(double w, double s = 1.0, std::uint64_t region = 0) {
  PatternSpec p;
  p.kind = CpuPattern::kZipf;
  p.weight = w;
  p.zipf_s = s;
  p.region_bytes = region;
  return p;
}

CpuBenchmark bench(std::string suite, std::string name, std::string input,
                   std::uint64_t ws, double mem_fraction,
                   std::vector<PatternSpec> patterns) {
  CpuBenchmark b;
  b.suite = std::move(suite);
  b.name = std::move(name);
  b.input = std::move(input);
  b.trace.working_set = ws;
  b.trace.mem_fraction = mem_fraction;
  b.trace.patterns = std::move(patterns);
  b.trace.seed = seed_of(b.full_name());
  return b;
}

/// The full 61-run registry.  Working sets are positioned relative to the
/// 32 MiB model LLC: cache-resident profiles produce the paper's negligible
/// slowdowns (all of NAS, small PARSEC inputs), over-LLC sweeps produce the
/// large ones (streamcluster-large, NW), and hot/cold mixes fill the middle.
std::vector<CpuBenchmark> build_registry() {
  std::vector<CpuBenchmark> v;

  // ---------------- PARSEC (10 benchmarks x 3 inputs) ----------------
  // blackscholes: compute-bound option pricing; tiny streaming state.
  v.push_back(bench("PARSEC", "blackscholes", "small", 2 * MB, 0.12, {streaming(1.0)}));
  v.push_back(bench("PARSEC", "blackscholes", "medium", 6 * MB, 0.12, {streaming(1.0)}));
  v.push_back(bench("PARSEC", "blackscholes", "large", 16 * MB, 0.12, {streaming(1.0)}));

  // bodytrack: particle-filter vision; mostly tiled reuse, growing frames.
  v.push_back(bench("PARSEC", "bodytrack", "small", 36 * MB, 0.20,
                    {tiled(0.96), streaming(0.04)}));
  v.push_back(bench("PARSEC", "bodytrack", "medium", 48 * MB, 0.20,
                    {tiled(0.92), streaming(0.08)}));
  v.push_back(bench("PARSEC", "bodytrack", "large", 72 * MB, 0.20,
                    {tiled(0.85), streaming(0.15)}));

  // canneal: simulated annealing over a netlist; pointer-heavy and large.
  v.push_back(bench("PARSEC", "canneal", "small", 48 * MB, 0.22,
                    {pchase(0.06), random_over(0.05), zipf(0.89, 1.0, 8 * MB)}));
  v.push_back(bench("PARSEC", "canneal", "medium", 64 * MB, 0.22,
                    {pchase(0.12), random_over(0.08), zipf(0.80, 1.0, 8 * MB)}));
  v.push_back(bench("PARSEC", "canneal", "large", 128 * MB, 0.22,
                    {pchase(0.12), random_over(0.08), zipf(0.80, 1.0, 8 * MB)}));

  // dedup: pipelined compression; hash-table randomness over growing sets.
  v.push_back(bench("PARSEC", "dedup", "small", 48 * MB, 0.22,
                    {random_over(0.04), zipf(0.96, 0.9, 6 * MB)}));
  v.push_back(bench("PARSEC", "dedup", "medium", 64 * MB, 0.22,
                    {random_over(0.06), zipf(0.94, 0.9, 6 * MB)}));
  v.push_back(bench("PARSEC", "dedup", "large", 96 * MB, 0.22,
                    {random_over(0.07), zipf(0.93, 0.9, 6 * MB)}));

  // ferret: content-based search; skewed table lookups.
  v.push_back(bench("PARSEC", "ferret", "small", 40 * MB, 0.22,
                    {zipf(0.95, 1.05, 6 * MB), random_over(0.05)}));
  v.push_back(bench("PARSEC", "ferret", "medium", 56 * MB, 0.22,
                    {zipf(0.92, 1.05, 6 * MB), random_over(0.08)}));
  v.push_back(bench("PARSEC", "ferret", "large", 64 * MB, 0.22,
                    {zipf(0.90, 1.05, 6 * MB), random_over(0.10)}));

  // fluidanimate: SPH fluid; stencil sweeps over particle grids.
  v.push_back(bench("PARSEC", "fluidanimate", "small", 40 * MB, 0.22,
                    {stencil(0.06), tiled(0.94)}));
  v.push_back(bench("PARSEC", "fluidanimate", "medium", 64 * MB, 0.22,
                    {stencil(0.12), tiled(0.88)}));
  v.push_back(bench("PARSEC", "fluidanimate", "large", 80 * MB, 0.22,
                    {stencil(0.25), tiled(0.75)}));

  // freqmine: FP-growth mining; hot tree with a cold fringe.
  v.push_back(bench("PARSEC", "freqmine", "small", 36 * MB, 0.25,
                    {zipf(0.98, 1.1, 8 * MB), random_over(0.02)}));
  v.push_back(bench("PARSEC", "freqmine", "medium", 40 * MB, 0.25,
                    {zipf(0.97, 1.1, 8 * MB), random_over(0.03)}));
  v.push_back(bench("PARSEC", "freqmine", "large", 48 * MB, 0.25,
                    {zipf(0.96, 1.1, 8 * MB), random_over(0.04)}));

  // streamcluster: online clustering; repeatedly scans the point set.  The
  // paper calls this out: small/medium fit the LLC (<0.5% miss rate),
  // large does not (>60% miss rate, ~57% slowdown).  The hot centre table
  // (random over 2 MB) is what keeps the large-input LLC miss *rate* near
  // 60% rather than ~100%: it misses L2 but is re-touched fast enough to
  // stay LLC-resident under the cold sweep.
  v.push_back(bench("PARSEC", "streamcluster", "small", 1536 * 1024, 0.30,
                    {streaming(0.93), random_over(0.07, 768 * 1024)}));
  v.push_back(bench("PARSEC", "streamcluster", "medium", 8 * MB, 0.30,
                    {streaming(0.93), random_over(0.07, 2 * MB)}));
  v.push_back(bench("PARSEC", "streamcluster", "large", 128 * MB, 0.30,
                    {streaming(0.95), random_over(0.05, 2 * MB)}));

  // swaptions: Monte-Carlo pricing; compute-bound.
  v.push_back(bench("PARSEC", "swaptions", "small", 1 * MB, 0.10, {streaming(1.0)}));
  v.push_back(bench("PARSEC", "swaptions", "medium", 2 * MB, 0.10, {streaming(1.0)}));
  v.push_back(bench("PARSEC", "swaptions", "large", 4 * MB, 0.10, {streaming(1.0)}));

  // x264: video encode; tiled motion search over growing frames.
  v.push_back(bench("PARSEC", "x264", "small", 40 * MB, 0.18,
                    {streaming(0.05), tiled(0.95, 256 * 1024)}));
  v.push_back(bench("PARSEC", "x264", "medium", 56 * MB, 0.18,
                    {streaming(0.12), tiled(0.88, 256 * 1024)}));
  v.push_back(bench("PARSEC", "x264", "large", 64 * MB, 0.18,
                    {streaming(0.30), tiled(0.70, 256 * 1024)}));

  // ---------------- NAS (8 benchmarks x 3 classes) ----------------
  // The paper finds NAS "negligibly affected" for A/B/C: these kernels are
  // blocked/stenciled well enough that the model LLC absorbs them.
  auto nas = [&](const char* name, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                 double mem, std::vector<PatternSpec> pats) {
    v.push_back(bench("NAS", name, "A", a, mem, pats));
    v.push_back(bench("NAS", name, "B", b, mem, pats));
    v.push_back(bench("NAS", name, "C", c, mem, std::move(pats)));
  };
  nas("bt", 8 * MB, 14 * MB, 22 * MB, 0.25, {tiled(1.0)});
  nas("cg", 10 * MB, 16 * MB, 26 * MB, 0.30, {random_over(0.5), tiled(0.5)});
  nas("ep", 1 * MB, 2 * MB, 3 * MB, 0.08, {streaming(1.0)});
  nas("ft", 8 * MB, 16 * MB, 24 * MB, 0.30, {streaming(0.5), strided(0.5, 2048)});
  nas("is", 12 * MB, 20 * MB, 28 * MB, 0.25, {random_over(0.6), streaming(0.4)});
  nas("lu", 8 * MB, 14 * MB, 22 * MB, 0.25, {tiled(0.8), stencil(0.2)});
  nas("mg", 10 * MB, 18 * MB, 26 * MB, 0.28, {stencil(1.0, 7)});
  nas("sp", 8 * MB, 16 * MB, 24 * MB, 0.25, {tiled(0.7), stencil(0.3)});

  // ---------------- Rodinia (7 benchmarks, default inputs) ----------------
  // backprop: dense layer sweeps, mostly resident.
  v.push_back(bench("Rodinia", "backprop", "default", 48 * MB, 0.22,
                    {streaming(0.03), tiled(0.97)}));
  // bfs: frontier expansion over a graph bigger than the LLC.
  v.push_back(bench("Rodinia", "bfs", "default", 40 * MB, 0.25,
                    {pchase(0.03), streaming(0.04), zipf(0.93, 1.0, 8 * MB)}));
  // hotspot: 2D thermal stencil, resident grid.
  v.push_back(bench("Rodinia", "hotspot", "default", 8 * MB, 0.25, {stencil(1.0)}));
  // kmeans: repeated sweeps over a feature matrix slightly beyond the LLC.
  v.push_back(bench("Rodinia", "kmeans", "default", 48 * MB, 0.30,
                    {streaming(0.05), tiled(0.95)}));
  // lud: blocked dense factorization, resident.
  v.push_back(bench("Rodinia", "lud", "default", 12 * MB, 0.25, {tiled(1.0)}));
  // nw: Needleman-Wunsch DP wavefront: line-stride sweeps of a large score
  // table with a partially serial carried dependence — the paper's worst
  // case (~79% in-order slowdown, very high LLC miss rate).  The anti-
  // diagonal wavefront leaves most misses independent (dependence ~10%),
  // which keeps the OOO slowdown in the same regime as the in-order one.
  v.push_back(bench("Rodinia", "nw", "default", 96 * MB, 0.46,
                    {strided(0.95, 64, 0.10), pchase(0.05)}));
  // srad: speckle-reducing stencil over an image beyond the LLC.
  v.push_back(bench("Rodinia", "srad", "default", 40 * MB, 0.28,
                    {stencil(0.10), tiled(0.90)}));

  return v;
}

}  // namespace

const std::vector<CpuBenchmark>& cpu_benchmarks() {
  static const std::vector<CpuBenchmark> kRegistry = build_registry();
  return kRegistry;
}

std::vector<CpuBenchmark> benchmarks_of_suite(const std::string& suite) {
  std::vector<CpuBenchmark> out;
  for (const auto& b : cpu_benchmarks())
    if (b.suite == suite) out.push_back(b);
  if (out.empty()) throw std::out_of_range("unknown suite: " + suite);
  return out;
}

std::vector<CpuBenchmark> benchmarks_of_input(const std::string& suite,
                                              const std::string& input) {
  std::vector<CpuBenchmark> out;
  for (const auto& b : cpu_benchmarks())
    if (b.suite == suite && b.input == input) out.push_back(b);
  if (out.empty()) throw std::out_of_range("unknown suite/input: " + suite + "/" + input);
  return out;
}

std::vector<std::string> rodinia_cpu_gpu_intersection() {
  return {"backprop", "bfs", "hotspot", "kmeans", "lud", "nw", "srad"};
}

}  // namespace photorack::workloads
