// Ablation (§IV-B / §VI-A1): on a reconfigurable spatial/WSS fabric, how
// much does indirect routing over already-configured circuits save in
// reconfigurations and setup latency — and how does the AWGR design, which
// needs neither scheduler nor reconfiguration, compare?
#include <iostream>

#include "core/rack_system.hpp"
#include "core/report.hpp"
#include "net/reconfig_router.hpp"
#include "net/routing.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"
#include "workloads/usage.hpp"

namespace {

using namespace photorack;

struct SpatialOutcome {
  std::uint64_t reconfigs = 0;
  std::uint64_t indirect = 0;
  double mean_setup_us = 0.0;
  double placed_fraction = 0.0;
};

SpatialOutcome run_spatial(bool use_indirect, int flows) {
  const auto plan = rack::build_rack_design(rack::FabricKind::kSpatialOrWss).spatial;
  net::CentralizedScheduler scheduler(plan);
  net::ReconfigRouter::Config cfg;
  cfg.use_indirect = use_indirect;
  net::ReconfigRouter router(plan, scheduler, cfg);

  sim::Rng rng(2025);
  const auto demand = workloads::FlowDemandModel::cpu_memory();
  sim::RunningStats setup;
  int placed = 0;
  // Skewed traffic: most flows within a hot subset of MCMs, so circuits
  // get reused — the regime where the synergy pays off.
  for (int i = 0; i < flows; ++i) {
    const int src = static_cast<int>(rng.below(64));
    int dst = static_cast<int>(rng.below(64));
    if (dst == src) dst = (dst + 1) % 64;
    const auto now = static_cast<sim::TimePs>(i) * 100 * sim::kPsPerNs;
    const auto p = router.place(src, dst, demand.sample_gbps(rng), now);
    if (p.placed) {
      ++placed;
      setup.add(sim::to_us(p.ready_at - now));
    }
  }
  SpatialOutcome out;
  out.reconfigs = router.reconfigurations();
  out.indirect = router.indirect_hits();
  out.mean_setup_us = setup.mean();
  out.placed_fraction = static_cast<double>(placed) / flows;
  return out;
}

}  // namespace

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Ablation: indirect routing vs reconfiguration",
                     "Sections IV-B and VI-A1");

  const int flows = 4000;
  const auto with_synergy = run_spatial(true, flows);
  const auto without = run_spatial(false, flows);

  sim::Table table({"Fabric", "Reconfigs", "Indirect placements", "Mean setup (us)",
                    "Placed"});
  table.add_row({"spatial, no indirect", sim::fmt_int(static_cast<long long>(without.reconfigs)),
                 sim::fmt_int(static_cast<long long>(without.indirect)),
                 sim::fmt_fixed(without.mean_setup_us, 2),
                 sim::fmt_pct(without.placed_fraction)});
  table.add_row({"spatial, with indirect (TAGO-style)",
                 sim::fmt_int(static_cast<long long>(with_synergy.reconfigs)),
                 sim::fmt_int(static_cast<long long>(with_synergy.indirect)),
                 sim::fmt_fixed(with_synergy.mean_setup_us, 2),
                 sim::fmt_pct(with_synergy.placed_fraction)});

  // The AWGR case: same flow count, zero scheduler involvement.
  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  auto fabric = system.make_fabric();
  net::PiggybackView view(fabric, sim::kPsPerUs);
  net::IndirectRouter awgr_router(fabric, view, 7);
  sim::Rng rng(2025);
  const auto demand = workloads::FlowDemandModel::cpu_memory();
  int placed = 0;
  std::vector<net::RouteResult> held;
  for (int i = 0; i < flows; ++i) {
    const int src = static_cast<int>(rng.below(64));
    int dst = static_cast<int>(rng.below(64));
    if (dst == src) dst = (dst + 1) % 64;
    auto r = awgr_router.route(src, dst, demand.sample_gbps(rng));
    if (r.fully_satisfied()) ++placed;
    held.push_back(std::move(r));
    if (held.size() > 64) {  // rolling departures keep load bounded
      awgr_router.release(held.front());
      held.erase(held.begin());
    }
  }
  table.add_row({"parallel AWGRs (passive)", "0", "-", "0.00",
                 sim::fmt_pct(static_cast<double>(placed) / flows)});
  table.print(std::cout);

  std::cout << "\npaper-vs-measured (qualitative):\n";
  core::check_line(std::cout, "synergy cuts reconfigurations (ratio)", 0.5,
                   static_cast<double>(with_synergy.reconfigs) /
                       static_cast<double>(without.reconfigs),
                   0.9);
  core::check_line(std::cout, "AWGR reconfigurations", 0.0, 0.0, 0.01);
  return 0;
}
