#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpusim/trace.hpp"

namespace photorack::cpusim {

/// Compact binary trace format, the analogue of the paper's workflow of
/// extracting memory/instruction traces once and replaying them through the
/// performance model (§VI-B3 does this with PPT-GPU SASS traces).
///
/// Layout: 16-byte header (magic, version, count), then one record per
/// instruction: a packed flags byte (kind + dependence) followed by a
/// varint-delta address for memory ops.  Typical synthetic traces compress
/// to ~2-4 bytes per instruction.
inline constexpr std::uint32_t kTraceMagic = 0x50545243;  // "PTRC"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serialize `n` instructions drawn from `source` to a stream/file.
/// Returns the number written.
std::uint64_t write_trace(std::ostream& os, TraceSource& source, std::uint64_t n,
                          std::uint64_t footprint_bytes = 0);
std::uint64_t write_trace_file(const std::string& path, TraceSource& source,
                               std::uint64_t n, std::uint64_t footprint_bytes = 0);

/// In-memory recorded trace; replays identically on every reset().
class RecordedTrace final : public TraceSource {
 public:
  explicit RecordedTrace(std::vector<Instr> instrs, std::uint64_t footprint = 0)
      : instrs_(std::move(instrs)), footprint_(footprint) {}

  /// Parse from a stream/file; throws std::runtime_error on malformed
  /// input (bad magic, truncation, version mismatch).
  static RecordedTrace read(std::istream& is);
  static RecordedTrace read_file(const std::string& path);

  std::size_t next_batch(std::span<Instr> out) override;
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override { return footprint_; }

  [[nodiscard]] std::uint64_t size() const { return instrs_.size(); }
  [[nodiscard]] const std::vector<Instr>& instructions() const { return instrs_; }

 private:
  std::vector<Instr> instrs_;
  std::uint64_t footprint_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace photorack::cpusim
