#pragma once

#include <cstdint>
#include <vector>

#include "config/enum_codec.hpp"
#include "phot/links.hpp"
#include "phot/switches.hpp"
#include "rack/mcm.hpp"

namespace photorack::rack {

/// How the disaggregated rack's MCMs are interconnected.
enum class FabricKind { kParallelAwgrs, kSpatialOrWss, kElectronicSwitches };

/// Canonical CLI/campaign-axis/registry spellings: "awgr" | "wss" |
/// "electronic".  The one definition shared by campaigns and bindings.
[[nodiscard]] const config::EnumCodec<FabricKind>& fabric_kind_codec();
[[nodiscard]] const char* to_string(FabricKind kind);

/// Plan for case (A) of §V-B / Fig 5: parallel AWGRs.  Each MCM splits its
/// fibers across `parallel_awgrs` AWGR ports, respecting the per-port
/// wavelength cap.  AWGRs whose ports carry at least as many wavelengths as
/// there are MCMs give every MCM pair one direct wavelength.
struct AwgrFabricPlan {
  int parallel_awgrs = 0;
  int awgr_radix = 0;                // ports per AWGR (>= #MCMs)
  int port_wavelength_cap = 0;       // 370 for the paper's AWGR
  std::vector<int> lambdas_per_port; // per parallel AWGR, per-MCM wavelengths
  int full_coverage_awgrs = 0;       // AWGRs providing all-pairs coverage
  int min_direct_lambdas_per_pair = 0;
  phot::Gbps direct_pair_bandwidth{0};
};

/// Plan for case (B) of §V-B: 256x256 spatial or wave-selective switches in
/// a staggered arrangement; switch I covers a window of `radix` consecutive
/// MCM indices starting at `stagger * I` (mod #MCMs).
struct SpatialFabricPlan {
  int switches = 0;
  int radix = 0;
  int wavelengths_per_port = 0;
  int fibers_per_connection = 0;  // MCM fibers consumed per switch port
  int max_connections_per_mcm = 0;
  int stagger = 0;
  /// connections[i] lists the switch indices MCM i attaches to (trimmed to
  /// the fiber budget).
  std::vector<std::vector<int>> connections;
  int min_direct_paths_per_pair = 0;
  double avg_direct_paths_per_pair = 0.0;
  phot::Gbps direct_pair_bandwidth{0};  // min paths x port bandwidth
};

/// Electronic-switch alternative of §VI-D: a two-level tree (four hops) of
/// PCIe-Gen5-class switches.  85 ns total added latency = the common 35 ns
/// (FEC + propagation, §VI-B) + hops x per-hop latency.
struct ElectronicFabricConfig {
  int hops = 4;
  phot::Nanoseconds per_hop{12.5};
  phot::Gbps per_lane{32};  // PCIe Gen5 lane, one lane per endpoint
  [[nodiscard]] phot::Nanoseconds added_switch_latency() const {
    return phot::Nanoseconds{hops * per_hop.value};
  }
};

/// A complete disaggregated rack design.
struct RackDesign {
  RackConfig rack;
  McmPlan mcm_plan;
  FabricKind fabric = FabricKind::kParallelAwgrs;
  AwgrFabricPlan awgr;          // valid when fabric == kParallelAwgrs
  SpatialFabricPlan spatial;    // valid when fabric == kSpatialOrWss
  ElectronicFabricConfig electronic;  // valid when fabric == kElectronicSwitches

  /// Added latency between an MCM pair (LLC <-> disaggregated memory), the
  /// quantity driving §VI-B: 35 ns photonic, 85 ns electronic.
  phot::Nanoseconds added_latency{0};
};

/// Build the paper's design for the chosen fabric.  `reach` is the
/// worst-case intra-rack fiber run (4 m round trip for a 2 m rack).
[[nodiscard]] RackDesign build_rack_design(
    FabricKind fabric, const RackConfig& rack = {}, const McmConfig& mcm = {},
    phot::Meters reach = phot::Meters{4.0});

/// Distribute `total_lambdas` MCM escape wavelengths over parallel AWGR
/// ports of capacity `port_cap` (greedy fill).  Exposed for tests.
[[nodiscard]] std::vector<int> distribute_wavelengths(int total_lambdas, int port_cap);

}  // namespace photorack::rack
