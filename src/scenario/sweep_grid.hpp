#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_spec.hpp"

namespace photorack::scenario {

/// One sweep dimension: an axis name and the values it takes.  Values are
/// strings so a single grid can mix benchmark names, fabric kinds and
/// numeric parameters; campaigns parse them when evaluating a spec.
struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// Cross-product builder: axes go in, the expanded list of ScenarioSpecs
/// comes out.  Expansion order is deterministic — axes vary like digits of a
/// mixed-radix counter with the LAST axis fastest — so spec indices are
/// stable and sweeps serialize identically run after run.
class SweepGrid {
 public:
  SweepGrid& axis(std::string name, std::vector<std::string> values);
  SweepGrid& axis(std::string name, std::vector<double> values);

  /// Replace the values of an existing axis (the CLI's --set axis=v1,v2).
  /// Throws std::out_of_range for axes the grid does not have.
  SweepGrid& set(const std::string& name, std::vector<std::string> values);

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }
  [[nodiscard]] bool has(const std::string& name) const;

  /// Number of specs expand() will produce (product of axis sizes).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::vector<ScenarioSpec> expand(const std::string& campaign,
                                                 std::uint64_t base_seed = 0) const;

 private:
  std::vector<Axis> axes_;
};

/// Canonical string form of a numeric axis value: shortest representation
/// that round-trips the double exactly (via std::to_chars).  Used both by
/// SweepGrid::axis(double) and by campaigns formatting result cells, so
/// values compare bit-exactly across serialize/parse cycles.
[[nodiscard]] std::string num_to_string(double v);

}  // namespace photorack::scenario
