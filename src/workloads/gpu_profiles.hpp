#pragma once

#include <string>
#include <vector>

#include "gpusim/gpu_runner.hpp"

namespace photorack::workloads {

/// The paper's 24 GPU applications (§VI-B3): 11 Rodinia, 10 Polybench and
/// 3 Tango deep networks, totalling 1525 kernel launches, run through the
/// PPT-GPU-substitute model on an A100.  Kernel shapes are reconstructions
/// of each benchmark's published memory behaviour (coalescing, occupancy,
/// working set); see DESIGN.md §3, substitution 2.
[[nodiscard]] const std::vector<gpusim::AppProfile>& gpu_apps();

[[nodiscard]] std::vector<gpusim::AppProfile> gpu_apps_of_suite(const std::string& suite);

/// Total kernel launches across the registry (the paper quotes 1525).
[[nodiscard]] int total_gpu_kernel_launches();

}  // namespace photorack::workloads
