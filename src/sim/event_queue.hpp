#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace photorack::sim {

/// Discrete-event simulation kernel.
///
/// Events are closures ordered by (time, insertion sequence); ties in time
/// fire in insertion order, which makes every simulation in this project
/// deterministic regardless of heap internals.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  /// Returns a monotonically increasing event id usable with cancel().
  std::uint64_t schedule_at(TimePs at, Handler fn);

  /// Schedule `fn` `delay` picoseconds after the current time.
  std::uint64_t schedule_after(TimePs delay, Handler fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Lazily cancel a pending event.  Cancelled events are skipped when they
  /// reach the head of the queue.  Returns false if the id was never
  /// scheduled (cancelling an already-fired event returns true and is a
  /// no-op).
  bool cancel(std::uint64_t event_id);

  /// Run a single event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `until` (exclusive) is reached.
  /// Returns the number of events executed.
  std::uint64_t run(TimePs until = INT64_MAX);

  [[nodiscard]] TimePs now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::uint64_t pending() const { return live_count_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted ids pending skip
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t live_count_ = 0;
  std::uint64_t executed_ = 0;

  [[nodiscard]] bool is_cancelled(std::uint64_t seq) const;
  void forget_cancelled(std::uint64_t seq);
};

}  // namespace photorack::sim
