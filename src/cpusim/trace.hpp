#pragma once

#include <cstdint>
#include <span>

namespace photorack::cpusim {

enum class OpKind : std::uint8_t { kAlu, kLoad, kStore };

/// One dynamic instruction of a trace.  `dependent` marks a memory op whose
/// address depends on the previous load's value (pointer chasing): such
/// misses cannot overlap with each other in an out-of-order core.
struct Instr {
  OpKind kind = OpKind::kAlu;
  std::uint64_t addr = 0;
  bool dependent = false;
};

/// Trace producer.  Batched to keep the virtual-call overhead off the
/// per-instruction hot path: implementations fill as much of `out` as they
/// like and return the count (0 means end of trace; generators are
/// typically endless).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::size_t next_batch(std::span<Instr> out) = 0;

  /// Restart the trace from the beginning (same seed, same stream).
  virtual void reset() = 0;

  /// Total bytes the trace can touch (0 = unknown).  The runner uses this
  /// to pre-warm the cache hierarchy so measurements reflect steady state
  /// rather than compulsory misses.
  [[nodiscard]] virtual std::uint64_t footprint_bytes() const { return 0; }
};

}  // namespace photorack::cpusim
