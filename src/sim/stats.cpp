#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace photorack::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty())
    throw std::invalid_argument("percentile: empty input has no percentiles");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double idx = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geomean_of(std::span<const double> v) {
  if (v.empty())
    throw std::invalid_argument("geomean_of: empty input has no geometric mean");
  double s = 0;
  for (double x : v) {
    if (!(x > 0.0))
      throw std::invalid_argument("geomean_of: inputs must be > 0");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

double max_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

namespace {
/// Values below this land in the sketch's zero bucket: picosecond-scale
/// metrics expressed in ms never legitimately go this small, and a floor
/// keeps the log-bucket index bounded.
constexpr double kSketchZeroThreshold = 1e-12;
}  // namespace

QuantileSketch::QuantileSketch(double relative_error) : alpha_(relative_error) {
  if (!(relative_error > 0.0) || !(relative_error < 1.0))
    throw std::invalid_argument("QuantileSketch: relative error must be in (0,1)");
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

void QuantileSketch::add(double x) {
  if (!(x >= 0.0) || std::isinf(x))
    throw std::invalid_argument("QuantileSketch: values must be finite and >= 0");
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  if (x < kSketchZeroThreshold) {
    ++zero_count_;
    return;
  }
  const auto idx = static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
  ++buckets_[idx];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_)
    throw std::invalid_argument("QuantileSketch: cannot merge different error bounds");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  zero_count_ += other.zero_count_;
  for (const auto& [idx, cnt] : other.buckets_) buckets_[idx] += cnt;
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) throw std::logic_error("QuantileSketch: quantile of empty sketch");
  q = std::clamp(q, 0.0, 100.0);
  // Same rank convention as sim::percentile: rank q/100 * (n-1); the bucket
  // holding that rank answers with its geometric midpoint, clamped into the
  // observed [min, max] so p0/p100 are exact and no answer leaves the data.
  const auto rank = static_cast<std::uint64_t>(
      q / 100.0 * static_cast<double>(n_ - 1));
  double value = 0.0;
  if (rank < zero_count_) {
    value = 0.0;
  } else {
    std::uint64_t cum = zero_count_;
    value = max_;  // falls through only on floating slack in the last bucket
    for (const auto& [idx, cnt] : buckets_) {
      cum += cnt;
      if (rank < cum) {
        value = 2.0 * std::pow(gamma_, static_cast<double>(idx)) / (gamma_ + 1.0);
        break;
      }
    }
  }
  return std::clamp(value, min_, max_);
}

double QuantileSketch::quantile_or(double q, double fallback) const {
  return n_ ? quantile(q) : fallback;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::cdf(double x) const {
  if (total_ <= 0.0) return 0.0;
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double acc = 0.0;
  const auto full = static_cast<std::size_t>((x - lo_) / width_);
  for (std::size_t i = 0; i < full && i < counts_.size(); ++i) acc += counts_[i];
  if (full < counts_.size()) {
    const double frac = (x - bin_lo(full)) / width_;
    acc += counts_[full] * frac;
  }
  return acc / total_;
}

}  // namespace photorack::sim
