#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace photorack::workloads {
namespace {

TraceConfig base_config() {
  TraceConfig cfg;
  cfg.working_set = 16 << 20;
  cfg.mem_fraction = 0.4;
  cfg.seed = 42;
  return cfg;
}

std::vector<cpusim::Instr> take(SyntheticTrace& trace, std::size_t n) {
  std::vector<cpusim::Instr> out(n);
  trace.next_batch(out);
  return out;
}

TEST(Generators, DeterministicReplayAfterReset) {
  SyntheticTrace trace(base_config());
  const auto first = take(trace, 4096);
  trace.reset();
  const auto second = take(trace, 4096);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].addr, second[i].addr);
    EXPECT_EQ(first[i].dependent, second[i].dependent);
  }
}

TEST(Generators, MemFractionHonored) {
  SyntheticTrace trace(base_config());
  const auto instrs = take(trace, 100'000);
  int mem = 0;
  for (const auto& i : instrs) mem += (i.kind != cpusim::OpKind::kAlu) ? 1 : 0;
  EXPECT_NEAR(mem / 100'000.0, 0.4, 0.01);
}

TEST(Generators, AddressesStayInWorkingSet) {
  auto cfg = base_config();
  for (const auto kind :
       {CpuPattern::kStreaming, CpuPattern::kStrided, CpuPattern::kRandom,
        CpuPattern::kPointerChase, CpuPattern::kStencil, CpuPattern::kTiled,
        CpuPattern::kZipf}) {
    cfg.patterns = {{kind, 1.0}};
    SyntheticTrace trace(cfg);
    for (const auto& i : take(trace, 20'000)) {
      if (i.kind == cpusim::OpKind::kAlu) continue;
      EXPECT_LT(i.addr, cfg.working_set) << static_cast<int>(kind);
    }
  }
}

TEST(Generators, StreamingIsSequential) {
  auto cfg = base_config();
  cfg.patterns = {{CpuPattern::kStreaming, 1.0}};
  SyntheticTrace trace(cfg);
  std::uint64_t last = 0;
  bool first = true;
  for (const auto& i : take(trace, 10'000)) {
    if (i.kind == cpusim::OpKind::kAlu) continue;
    if (!first && i.addr > last) EXPECT_EQ(i.addr - last, 8u);
    last = i.addr;
    first = false;
  }
}

TEST(Generators, PointerChaseMarksDependent) {
  auto cfg = base_config();
  cfg.patterns = {{CpuPattern::kPointerChase, 1.0}};
  SyntheticTrace trace(cfg);
  for (const auto& i : take(trace, 5'000)) {
    if (i.kind == cpusim::OpKind::kAlu) continue;
    EXPECT_TRUE(i.dependent);
    EXPECT_EQ(i.kind, cpusim::OpKind::kLoad);
  }
}

TEST(Generators, DependentFractionApplies) {
  auto cfg = base_config();
  PatternSpec p;
  p.kind = CpuPattern::kStrided;
  p.stride_bytes = 64;
  p.dependent_fraction = 0.5;
  cfg.patterns = {p};
  SyntheticTrace trace(cfg);
  int mem = 0, dep = 0;
  for (const auto& i : take(trace, 100'000)) {
    if (i.kind == cpusim::OpKind::kAlu && !i.dependent) continue;
    ++mem;
    dep += i.dependent ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dep) / mem, 0.5, 0.03);
}

TEST(Generators, RegionOverridesWorkingSet) {
  auto cfg = base_config();
  PatternSpec hot;
  hot.kind = CpuPattern::kRandom;
  hot.region_bytes = 1 << 20;
  cfg.patterns = {hot};
  SyntheticTrace trace(cfg);
  for (const auto& i : take(trace, 20'000)) {
    if (i.kind == cpusim::OpKind::kAlu) continue;
    EXPECT_LT(i.addr, 1u << 20);
  }
}

TEST(Generators, ZipfConcentratesOnHotLines) {
  auto cfg = base_config();
  PatternSpec z;
  z.kind = CpuPattern::kZipf;
  z.zipf_s = 1.2;
  cfg.patterns = {z};
  SyntheticTrace trace(cfg);
  std::map<std::uint64_t, int> counts;
  int mem = 0;
  for (const auto& i : take(trace, 200'000)) {
    if (i.kind == cpusim::OpKind::kAlu) continue;
    ++counts[i.addr / 64];
    ++mem;
  }
  // The most popular line should absorb a visible share of accesses.
  int hottest = 0;
  for (const auto& [line, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, mem / 100);
}

TEST(Generators, MixtureRespectsWeights) {
  auto cfg = base_config();
  PatternSpec chase;
  chase.kind = CpuPattern::kPointerChase;
  chase.weight = 0.2;
  PatternSpec stream;
  stream.kind = CpuPattern::kStreaming;
  stream.weight = 0.8;
  cfg.patterns = {chase, stream};
  SyntheticTrace trace(cfg);
  int mem = 0, dep = 0;
  for (const auto& i : take(trace, 200'000)) {
    if (i.kind == cpusim::OpKind::kAlu) continue;
    ++mem;
    dep += i.dependent ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dep) / mem, 0.2, 0.02);
}

TEST(Generators, RejectsBadConfigs) {
  TraceConfig empty;
  empty.patterns.clear();
  EXPECT_THROW(SyntheticTrace{empty}, std::invalid_argument);

  TraceConfig tiny;
  tiny.working_set = 16;
  EXPECT_THROW(SyntheticTrace{tiny}, std::invalid_argument);

  TraceConfig zero_weight = base_config();
  zero_weight.patterns = {{CpuPattern::kStreaming, 0.0}};
  EXPECT_THROW(SyntheticTrace{zero_weight}, std::invalid_argument);
}

TEST(Generators, StoresRespectStoreFraction) {
  auto cfg = base_config();
  cfg.store_fraction = 0.25;
  SyntheticTrace trace(cfg);
  int loads = 0, stores = 0;
  for (const auto& i : take(trace, 200'000)) {
    if (i.kind == cpusim::OpKind::kLoad) ++loads;
    if (i.kind == cpusim::OpKind::kStore) ++stores;
  }
  EXPECT_NEAR(static_cast<double>(stores) / (loads + stores), 0.25, 0.02);
}

}  // namespace
}  // namespace photorack::workloads
