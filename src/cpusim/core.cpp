#include "cpusim/core.hpp"

#include <algorithm>
#include <array>

#include "cpusim/miss_profile.hpp"

namespace photorack::cpusim {

const config::EnumCodec<CoreKind>& core_kind_codec() {
  static const config::EnumCodec<CoreKind> codec(
      "core kind", {{"inorder", CoreKind::kInOrder},
                    {"ooo", CoreKind::kOutOfOrder},
                    {"accel", CoreKind::kDecoupledAccelerator}});
  return codec;
}

const char* to_string(CoreKind kind) { return core_kind_codec().name(kind).c_str(); }

Core::Core(CoreConfig cfg, CacheHierarchy& hierarchy, DramModel& dram)
    : cfg_(cfg), hierarchy_(&hierarchy), dram_(&dram), prefetcher_(cfg.prefetch) {
  recent_miss_idx_.assign(static_cast<std::size_t>(std::max(1, cfg_.mshrs)), 0);
}

void Core::handle_prefetch(std::uint64_t addr) {
  for (const std::uint64_t target : prefetcher_.on_miss(addr))
    hierarchy_->prefetch_fill(target);
}

void Core::reset_stats() { stats_ = CoreStats{}; }

int Core::effective_mlp() const {
  // Independent misses overlap with every other independent miss still in
  // the ROB window, bounded by the MSHRs: count recent misses whose
  // instruction index is within `rob` of the current one.
  int n = 0;
  for (const std::uint64_t idx : recent_miss_idx_)
    if (idx != 0 && instr_index_ - idx < static_cast<std::uint64_t>(cfg_.rob)) ++n;
  return std::max(1, n);
}

double Core::dram_cycles(std::uint64_t addr) {
  const DramAccess a = dram_->access(addr);
  last_row_hit_ = a.row_hit;
  return a.ns * cfg_.freq_ghz;
}

// Latency-independent cycle increment (issue slot, cache-hit penalty,
// streamed accelerator line): one place so the miss-profile recorder sees
// exactly the additions the stats accumulator performs.
void Core::add_base_cycles(double cycles) {
  stats_.cycles += cycles;
  if (recorder_) recorder_->on_base_cycles(cycles);
}

void Core::execute_inorder_mem(const Instr& ins) {
  const HitLevel level = hierarchy_->access(ins.addr);
  switch (level) {
    case HitLevel::kL1:
      // Load-to-use of an L1 hit pipelines away in a balanced in-order
      // pipeline; charging it would double-count the issue cycle.
      break;
    case HitLevel::kL2:
      add_base_cycles(hierarchy_->config().l2.latency_cycles);
      ++stats_.llc_accesses;  // L2 miss probes the LLC
      break;
    case HitLevel::kLlc:
      add_base_cycles(hierarchy_->config().llc.latency_cycles);
      ++stats_.llc_accesses;
      break;
    case HitLevel::kMemory: {
      ++stats_.llc_accesses;
      ++stats_.llc_misses;
      const double dc = dram_cycles(ins.addr);
      stats_.cycles += hierarchy_->config().llc.latency_cycles + dc;
      stats_.llc_miss_stall_cycles += dc;
      if (recorder_) recorder_->on_miss(MissKind::kInOrder, last_row_hit_, 1);
      handle_prefetch(ins.addr);
      break;
    }
  }
}

void Core::execute_ooo_mem(const Instr& ins) {
  const HitLevel level = hierarchy_->access(ins.addr);
  switch (level) {
    case HitLevel::kL1:
      break;
    case HitLevel::kL2:
      add_base_cycles(cfg_.ooo_hit_exposure * hierarchy_->config().l2.latency_cycles);
      ++stats_.llc_accesses;
      break;
    case HitLevel::kLlc:
      add_base_cycles(cfg_.ooo_hit_exposure * hierarchy_->config().llc.latency_cycles);
      ++stats_.llc_accesses;
      break;
    case HitLevel::kMemory: {
      ++stats_.llc_accesses;
      ++stats_.llc_misses;
      const double dc = dram_cycles(ins.addr);
      double exposed;
      if (ins.dependent) {
        // Address-dependent loads serialize: the full latency shows.
        // Outstanding independent misses keep draining underneath, so the
        // MLP window is left intact.
        exposed = dc;
        stats_.mlp_sum += 1.0;
        if (recorder_) recorder_->on_miss(MissKind::kOooDependent, last_row_hit_, 1);
      } else {
        // Record this miss, then expose only its share of the pipelined
        // latency: with k independent misses in flight, each costs ~dc/k.
        recent_miss_idx_[recent_head_] = instr_index_;
        recent_head_ = (recent_head_ + 1) % recent_miss_idx_.size();
        const int mlp = effective_mlp();
        stats_.mlp_sum += mlp;
        exposed = dc / static_cast<double>(mlp);
        if (recorder_) recorder_->on_miss(MissKind::kOooIndependent, last_row_hit_, mlp);
      }
      stats_.cycles += exposed;
      stats_.llc_miss_stall_cycles += exposed;
      handle_prefetch(ins.addr);
      break;
    }
  }
}

void Core::execute_accelerator_mem(const Instr& ins) {
  const HitLevel level = hierarchy_->access(ins.addr);
  if (level == HitLevel::kMemory) {
    ++stats_.llc_accesses;
    ++stats_.llc_misses;
    // The access engine runs ahead of execute: a full burst pays one
    // round-trip latency, after which lines stream at line rate.
    if (burst_fill_ == 0) {
      const double dc = dram_cycles(ins.addr);
      stats_.cycles += dc;
      stats_.llc_miss_stall_cycles += dc;
      if (recorder_) recorder_->on_miss(MissKind::kAccelBurstHead, last_row_hit_, 1);
    } else {
      const DramAccess a = dram_->access(ins.addr);  // row-buffer state still advances
      stats_.cycles += cfg_.accelerator_line_cycles;
      stats_.llc_miss_stall_cycles += cfg_.accelerator_line_cycles;
      if (recorder_) recorder_->on_miss(MissKind::kAccelStream, a.row_hit, 1);
    }
    burst_fill_ = (burst_fill_ + 1) % std::max(1, cfg_.accelerator_burst);
  } else if (level == HitLevel::kLlc) {
    ++stats_.llc_accesses;
    add_base_cycles(cfg_.accelerator_line_cycles);
  } else if (level == HitLevel::kL2) {
    add_base_cycles(cfg_.accelerator_line_cycles);
  }
}

void Core::execute(const Instr& ins) {
  ++stats_.instructions;
  ++instr_index_;
  switch (cfg_.kind) {
    case CoreKind::kInOrder:
      add_base_cycles(1.0);  // single-issue
      if (ins.kind != OpKind::kAlu) {
        ++stats_.mem_ops;
        execute_inorder_mem(ins);
      }
      break;
    case CoreKind::kOutOfOrder:
      add_base_cycles(1.0 / static_cast<double>(cfg_.width));
      if (ins.kind != OpKind::kAlu) {
        ++stats_.mem_ops;
        execute_ooo_mem(ins);
      }
      break;
    case CoreKind::kDecoupledAccelerator:
      // Spatial pipelines retire one operation per cycle regardless of mix.
      add_base_cycles(1.0);
      if (ins.kind != OpKind::kAlu) {
        ++stats_.mem_ops;
        execute_accelerator_mem(ins);
      }
      break;
  }
}

void Core::run(TraceSource& trace, std::uint64_t n) {
  std::array<Instr, 4096> batch;
  std::uint64_t remaining = n;
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, batch.size()));
    const std::size_t got = trace.next_batch(std::span<Instr>(batch.data(), want));
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) execute(batch[i]);
    remaining -= got;
  }
}

}  // namespace photorack::cpusim
