#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpusim/trace.hpp"
#include "sim/rng.hpp"

namespace photorack::workloads {

/// Address-stream building blocks for the synthetic CPU traces.  Each
/// benchmark profile mixes these with weights; the LLC miss rate then
/// *emerges* from the working set vs. cache capacity interaction rather
/// than being dialed in directly (see DESIGN.md §3, substitution 1).
enum class CpuPattern : std::uint8_t {
  kStreaming,     // unit-stride element walk (dense array sweeps)
  kStrided,       // fixed large stride (column walks, row-of-matrix hops)
  kRandom,        // uniform over the working set (hash tables, dedup)
  kPointerChase,  // random AND address-dependent (linked structures, graphs)
  kStencil,       // several parallel streams at fixed offsets (grids)
  kTiled,         // heavy reuse inside a tile, then move on (blocked kernels)
  kZipf,          // skewed hot/cold line popularity (caches, tables)
};

struct PatternSpec {
  CpuPattern kind = CpuPattern::kStreaming;
  double weight = 1.0;                 // share of memory ops
  std::uint64_t stride_bytes = 4096;   // kStrided
  int stencil_streams = 5;             // kStencil
  std::uint64_t tile_bytes = 128 * 1024;  // kTiled
  int tile_reuse = 16;                 // accesses per tile element set
  double zipf_s = 0.9;                 // kZipf skew
  /// Fraction of this pattern's accesses whose address depends on the
  /// previous load (serializes OOO misses).  kPointerChase is always 1.
  double dependent_fraction = 0.0;
  /// Memory region this pattern walks (0 = the trace's working_set).  Lets
  /// a profile mix a cache-resident hot structure with a cold sweep.
  std::uint64_t region_bytes = 0;
};

/// Full specification of one synthetic benchmark trace.
struct TraceConfig {
  std::uint64_t working_set = 64ULL << 20;
  double mem_fraction = 0.3;       // memory ops per instruction
  double store_fraction = 0.3;     // of memory ops
  std::vector<PatternSpec> patterns{{}};
  std::uint64_t seed = 1;
};

/// Deterministic generator implementing cpusim::TraceSource.  reset()
/// replays the identical stream, which is what lets baseline and perturbed
/// simulations see the same instruction sequence.
class SyntheticTrace final : public cpusim::TraceSource {
 public:
  explicit SyntheticTrace(TraceConfig cfg);

  std::size_t next_batch(std::span<cpusim::Instr> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override;

  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

 private:
  TraceConfig cfg_;
  sim::Rng rng_;
  std::vector<double> cumulative_weight_;

  // Per-pattern cursors (kept across batches, rebuilt by reset()).
  struct PatternState {
    std::uint64_t cursor = 0;
    std::uint64_t tile_base = 0;
    int tile_left = 0;
    int stencil_next = 0;
  };
  std::vector<PatternState> state_;

  [[nodiscard]] cpusim::Instr make_mem_op();
  [[nodiscard]] std::uint64_t gen_address(std::size_t pattern_index, bool& dependent);
};

}  // namespace photorack::workloads
