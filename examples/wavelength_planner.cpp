// Wavelength planner: exercises the wave-selective-switch controller
// (Section III-D2) — given a set of MCM-pair bandwidth demands, compute a
// conflict-free concrete wavelength assignment, the thing a WSS control
// plane must solve and an AWGR gets for free from its cyclic shuffle.
#include <iostream>

#include "phot/awgr.hpp"
#include "phot/wss.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  const int ports = 16;
  const int wavelengths = 8;

  // A demand pattern with hotspots: port 0 fans out, ports 3/4 exchange
  // heavy traffic, plus random background.
  std::vector<phot::WssDemand> demands = {
      {0, 1, 3}, {0, 2, 2}, {0, 5, 2}, {3, 4, 4}, {4, 3, 4},
  };
  sim::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const int s = static_cast<int>(rng.below(ports));
    const int d = static_cast<int>(rng.below(ports));
    if (s != d) demands.push_back({s, d, 1});
  }

  const auto assignment = phot::assign_wavelengths(ports, wavelengths, demands);
  std::cout << "WSS " << ports << "x" << ports << ", " << wavelengths
            << " wavelengths/port\n";
  std::cout << "assignment complete: " << (assignment.complete ? "yes" : "no")
            << ", conflict-free: "
            << (phot::is_conflict_free(ports, wavelengths, assignment) ? "yes" : "no")
            << "\n\n";

  sim::Table table({"Src", "Dst", "Wavelengths granted"});
  for (const auto& d : demands) {
    const auto lambdas = assignment.lambdas_for(d.src, d.dst);
    std::string list;
    for (std::size_t i = 0; i < lambdas.size(); ++i)
      list += (i ? "," : "") + std::to_string(lambdas[i]);
    table.add_row({sim::fmt_int(d.src), sim::fmt_int(d.dst), list});
  }
  table.print(std::cout);

  // Contrast: the AWGR needs no assignment pass at all — the wavelength
  // between a pair is fixed by physics.
  phot::Awgr awgr(ports);
  std::cout << "\nAWGR contrast: src 3 -> dst 4 always uses lambda "
            << awgr.wavelength_for(3, 4) << ", no controller involved.\n";
  return 0;
}
