#pragma once

#include <cstdint>
#include <vector>

#include "phot/units.hpp"

namespace photorack::phot {

/// An N x N arrayed waveguide grating router.  AWGRs are passive: input port
/// `src` reaches output port `dst` on exactly one wavelength index, the
/// cyclic shuffle lambda = (src + dst) mod N.  All-to-all connectivity with
/// O(N) fibers (§III-D2, Fig 4).
class Awgr {
 public:
  explicit Awgr(int ports);

  [[nodiscard]] int ports() const { return n_; }

  /// The single wavelength index carrying src -> dst.
  [[nodiscard]] int wavelength_for(int src, int dst) const;

  /// The output port that wavelength `lambda` injected at `src` exits from.
  [[nodiscard]] int output_for(int src, int lambda) const;

 private:
  int n_;
};

/// Cascaded AWGR construction of [89] (§III-D2): N front M x M AWGRs feed
/// M rear N x N AWGRs, acting as one MN x MN AWGR; K x K delivery-coupling
/// switches scale further to KMN x KMN.  The paper instantiates
/// K,M,N = 3,12,11 => 396 gross ports, of which 370 are usable after
/// passband walk-off margins, with ~15 dB worst-case insertion loss and
/// better than -35 dB crosstalk.
struct CascadedAwgrConfig {
  int k = 3;   // delivery-coupling switch size
  int m = 12;  // front AWGR size (M x M)
  int n = 11;  // rear AWGR count driver (N front AWGRs of size M)
  double usable_port_fraction = 370.0 / 396.0;  // walk-off derating

  // Per-stage optical budget (dB); worst case end-to-end is minimized by the
  // interconnect optimizer below.
  Decibel front_loss{4.5};
  Decibel rear_loss{4.5};
  Decibel dc_switch_loss{3.0};
  Decibel connector_loss{1.5};          // fiber splices / couplers, total
  Decibel per_stage_crosstalk{-38.0};   // per AWGR stage
};

struct CascadedAwgrReport {
  int gross_ports = 0;       // K * M * N
  int usable_ports = 0;      // after derating (370 for the paper's config)
  int wavelengths_per_port = 0;
  Decibel worst_insertion_loss{0};
  Decibel best_insertion_loss{0};
  Decibel crosstalk{0};
};

class CascadedAwgr {
 public:
  explicit CascadedAwgr(CascadedAwgrConfig cfg = {});

  [[nodiscard]] const CascadedAwgrConfig& config() const { return cfg_; }
  [[nodiscard]] CascadedAwgrReport report() const;

  [[nodiscard]] int gross_ports() const { return cfg_.k * cfg_.m * cfg_.n; }
  [[nodiscard]] int usable_ports() const;

  /// End-to-end insertion loss for a port pair after the interconnect
  /// pattern optimization.  Port-dependent losses model the walk-off of
  /// passband centers: edge ports of each AWGR are lossier than center
  /// ports; the front-to-rear interconnect is chosen so high-loss front
  /// outputs meet low-loss rear inputs (§III-D2).
  [[nodiscard]] Decibel insertion_loss(int in_port, int out_port) const;

 private:
  CascadedAwgrConfig cfg_;
  std::vector<int> front_to_rear_;  // optimized permutation per front output

  [[nodiscard]] double port_penalty_db(int index, int size) const;
  void optimize_interconnect();
};

}  // namespace photorack::phot
