#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/table.hpp"

namespace photorack::scenario {

/// One emitted result record; cells parallel the sweep's column list.
struct ResultRow {
  std::vector<std::string> cells;
};

/// Structured output target for sweep results.  The runner calls open() with
/// the campaign's columns, write() once per row in grid order, then close().
/// Sinks must not assume anything about evaluation order — rows arrive
/// already serialized, so every sink is byte-identical across --jobs levels.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Run manifest (deterministic JSON; see config::Manifest), delivered
  /// once before open() so machine-readable sinks can embed it in their
  /// header.  Default: dropped (TableSink keeps the human view clean).
  virtual void manifest(const std::string& manifest_json) { (void)manifest_json; }
  virtual void open(const std::vector<std::string>& columns) = 0;
  virtual void write(const ResultRow& row) = 0;
  virtual void close() = 0;
};

/// RFC-4180-style CSV: header line, minimal quoting (only cells containing
/// a comma, quote or newline are quoted).
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::ostream& os) : os_(os) {}
  /// Written as a `# manifest <json>` comment line above the header (strip
  /// with `grep -v '^#'` or pandas' comment='#').
  void manifest(const std::string& manifest_json) override;
  void open(const std::vector<std::string>& columns) override;
  void write(const ResultRow& row) override;
  void close() override;

 private:
  std::ostream& os_;
};

/// JSON-lines: one object per row.  Cells that parse as finite numbers are
/// emitted as JSON numbers; everything else as escaped strings.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  /// Written as a first `{"manifest":{...}}` line; row objects follow.
  void manifest(const std::string& manifest_json) override;
  void open(const std::vector<std::string>& columns) override;
  void write(const ResultRow& row) override;
  void close() override;

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
};

/// Human-readable sink over sim::Table: buffers rows and pretty-prints the
/// aligned table at close() (the format the bench binaries always used).
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}
  void open(const std::vector<std::string>& columns) override;
  void write(const ResultRow& row) override;
  void close() override;

 private:
  std::ostream& os_;
  std::vector<sim::Table> table_;  // 0 or 1; Table has no default ctor
};

}  // namespace photorack::scenario
