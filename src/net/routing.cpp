#include "net/routing.hpp"

#include <algorithm>

namespace photorack::net {

IndirectRouter::IndirectRouter(WavelengthFabric& fabric, PiggybackView& view,
                               std::uint64_t seed, Config cfg)
    : fabric_(&fabric), view_(&view), rng_(seed), cfg_(cfg) {}

RouteResult IndirectRouter::route(int src, int dst, double gbps) {
  RouteResult out;
  out.requested = gbps;
  ++flows_;

  // 1. Direct wavelengths first (§IV-A: indirect paths are considered only
  //    if the single-hop bandwidth does not suffice).
  const double direct = fabric_->allocate_direct(src, dst, gbps);
  if (direct > 0.0) {
    out.direct_gbps = direct;
    out.segments.push_back({src, dst, direct});
  }

  // 2. Spill the remainder over Valiant intermediates.
  double remaining = gbps - direct;
  while (remaining > 1e-9 && out.intermediates_used < cfg_.max_intermediates_per_flow) {
    const double placed = try_indirect(src, dst, remaining, out);
    if (placed <= 1e-9) break;
    remaining -= placed;
  }
  out.indirect_gbps = gbps - direct - remaining;
  out.blocked_gbps = remaining;
  return out;
}

double IndirectRouter::try_indirect(int src, int dst, double gbps, RouteResult& out) {
  // Candidate intermediates: free src->mid in the source's true local view,
  // free mid->dst in the piggybacked view.
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(fabric_->mcms()));
  for (int mid = 0; mid < fabric_->mcms(); ++mid) {
    if (mid == src || mid == dst) continue;
    if (fabric_->free_direct(src, mid) <= 1e-9) continue;
    if (view_->stale_free_direct(mid, dst) <= 1e-9) continue;
    candidates.push_back(mid);
  }
  if (candidates.empty()) return 0.0;

  const int mid = candidates[rng_.below(candidates.size())];
  ++out.intermediates_used;

  // First leg always succeeds (source state is current).
  const double leg1_want = std::min(gbps, fabric_->free_direct(src, mid));
  const double leg1 = fabric_->allocate_direct(src, mid, leg1_want);

  // Second leg uses the *true* fabric: a stale view may have promised
  // capacity that is no longer there.
  const double leg2 = fabric_->allocate_direct(mid, dst, leg1);
  double placed = leg2;
  double stranded = leg1 - leg2;

  if (stranded > 1e-9) {
    ++mispicks_;
    ++out.stale_mispicks;
    if (cfg_.allow_second_hop) {
      // The intermediate repairs the shortfall through a second intermediate
      // chosen with its own current view (§IV-A's two-stage fallback).
      for (int mid2 = 0; mid2 < fabric_->mcms() && stranded > 1e-9; ++mid2) {
        if (mid2 == mid || mid2 == dst || mid2 == src) continue;
        if (fabric_->free_direct(mid, mid2) <= 1e-9) continue;
        if (fabric_->free_direct(mid2, dst) <= 1e-9) continue;
        const double want = std::min({stranded, fabric_->free_direct(mid, mid2),
                                      fabric_->free_direct(mid2, dst)});
        const double a = fabric_->allocate_direct(mid, mid2, want);
        const double b = fabric_->allocate_direct(mid2, dst, a);
        if (a - b > 1e-9) fabric_->release_direct(mid, mid2, a - b);
        if (b > 0.0) {
          out.segments.push_back({mid, mid2, b});
          out.segments.push_back({mid2, dst, b});
          ++second_hops_;
          ++out.second_hops;
          placed += b;
          stranded -= b;
        }
      }
    }
    // Whatever could not be repaired is returned to the first leg.
    if (stranded > 1e-9) fabric_->release_direct(src, mid, stranded);
  }

  if (placed > 0.0) {
    out.segments.push_back({src, mid, placed});
    if (leg2 > 0.0) out.segments.push_back({mid, dst, leg2});
  }
  return placed;
}

void IndirectRouter::release(const RouteResult& result) {
  for (const auto& seg : result.segments)
    fabric_->release_direct(seg.from, seg.to, seg.gbps);
}

}  // namespace photorack::net
