// photorack_sweep — declarative design-space sweeps over the paper's models.
//
//   photorack_sweep --list
//   photorack_sweep --params
//   photorack_sweep --campaign fig6 [--jobs N] [--seed S] [--out dir/]
//                   [--set path=v1,v2,...] [--quiet]
//
// Campaigns are named presets reproducing the paper's figures/tables.
// --set addresses ANY knob: a campaign grid axis (e.g. bench=...), or any
// parameter path from the config registry (--params lists them all) — e.g.
// `--set net.gbps_per_wavelength=32` or `--set cpusim.llc.size_bytes=...` —
// whether or not the campaign sweeps it.  Unknown paths are rejected with
// near-miss suggestions; out-of-range values are rejected before anything
// runs.  With --out, the sweep writes <dir>/<campaign>.sweep.csv,
// <dir>/<campaign>.jsonl and the <dir>/<campaign>.manifest.json sidecar
// (campaign id + seeds + full resolved parameter tree); rows are emitted in
// grid order, so output is byte-identical for every --jobs level and the
// same seed.
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "config/bindings.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/table.hpp"

namespace {

using namespace photorack;

void print_usage(std::ostream& os) {
  os << "usage: photorack_sweep --campaign <name> [options]\n"
        "       photorack_sweep --list | --params\n"
        "\n"
        "options:\n"
        "  --campaign <name>      campaign to run (see --list)\n"
        "  --list                 list campaigns and their default grids\n"
        "  --params               list every registered parameter path\n"
        "                         (path, type, default, range, doc)\n"
        "  --jobs <N>             worker threads (default: hardware concurrency;\n"
        "                         results are identical for every value)\n"
        "  --seed <S>             base seed; 0 (default) keeps the workloads'\n"
        "                         registry seeds and reproduces the paper\n"
        "  --out <dir>            write <dir>/<campaign>.sweep.csv, .jsonl and\n"
        "                         the .manifest.json sidecar\n"
        "  --set <path>=<v1,v2>   override a grid axis or ANY registered\n"
        "                         parameter (repeatable; see --params)\n"
        "  --quiet                suppress the stdout table\n"
        "  --help                 this message\n";
}

void print_campaign_list(std::ostream& os) {
  os << "campaigns:\n";
  for (const auto& campaign : scenario::campaigns()) {
    const auto grid = campaign.default_grid();
    os << "  " << campaign.name << " — " << campaign.description << " ["
       << campaign.paper_ref << "], " << grid.size() << " scenarios\n";
    for (const auto& axis : grid.axes()) {
      os << "      " << axis.name << " = ";
      if (axis.values.size() > 6) {
        os << axis.values.front() << " ... " << axis.values.back() << " ("
           << axis.values.size() << " values)";
      } else {
        for (std::size_t i = 0; i < axis.values.size(); ++i)
          os << (i ? "," : "") << axis.values[i];
      }
      os << "\n";
    }
  }
}

void print_params(std::ostream& os) {
  sim::Table table({"path", "type", "default", "range", "doc"});
  for (const auto& section : config::registry().sections())
    for (const auto& p : section->params())
      table.add_row({p.path, p.type, p.default_value, p.range, p.doc});
  table.print(os);
  os << "\nEvery path is `--set`-able on any campaign, swept when given\n"
        "several comma-separated values, and recorded in the run manifest.\n";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = s.find(',', start);
    out.push_back(s.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct CliOptions {
  std::string campaign;
  bool list = false;
  bool params = false;
  bool quiet = false;
  std::size_t jobs = 0;
  std::uint64_t seed = 0;
  std::string out_dir;
  std::vector<std::pair<std::string, std::vector<std::string>>> overrides;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--params") {
      opt.params = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--campaign") {
      opt.campaign = value("--campaign");
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<std::size_t>(config::parse_uint64(value("--jobs")));
    } else if (arg == "--seed") {
      opt.seed = config::parse_uint64(value("--seed"));
    } else if (arg == "--out") {
      opt.out_dir = value("--out");
    } else if (arg == "--set") {
      const std::string kv = value("--set");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size())
        throw std::invalid_argument("--set wants path=v1,v2,... got '" + kv + "'");
      opt.overrides.emplace_back(kv.substr(0, eq), split_csv(kv.substr(eq + 1)));
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "photorack_sweep: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  }

  if (opt.list) {
    print_campaign_list(std::cout);
    return 0;
  }
  if (opt.params) {
    print_params(std::cout);
    return 0;
  }
  if (opt.campaign.empty()) {
    std::cerr << "photorack_sweep: --campaign (or --list / --params) is required\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    const auto& campaign = scenario::campaign_by_name(opt.campaign);
    scenario::SweepGrid grid = campaign.default_grid();
    for (auto& [path, values] : opt.overrides)
      grid.override_axis(path, std::move(values));

    std::ofstream csv_file, jsonl_file;
    std::vector<std::unique_ptr<scenario::ResultSink>> sinks;
    if (!opt.quiet) sinks.push_back(std::make_unique<scenario::TableSink>(std::cout));
    std::filesystem::path csv_path, jsonl_path, manifest_path;
    if (!opt.out_dir.empty()) {
      const std::filesystem::path dir(opt.out_dir);
      std::filesystem::create_directories(dir);
      csv_path = dir / (campaign.name + ".sweep.csv");
      jsonl_path = dir / (campaign.name + ".jsonl");
      manifest_path = dir / (campaign.name + ".manifest.json");
      csv_file.open(csv_path);
      jsonl_file.open(jsonl_path);
      if (!csv_file || !jsonl_file)
        throw std::runtime_error("cannot open output files under " + opt.out_dir);
      sinks.push_back(std::make_unique<scenario::CsvSink>(csv_file));
      sinks.push_back(std::make_unique<scenario::JsonlSink>(jsonl_file));
    }
    std::vector<scenario::ResultSink*> sink_ptrs;
    for (const auto& sink : sinks) sink_ptrs.push_back(sink.get());

    const scenario::SweepRunner runner({.jobs = opt.jobs, .base_seed = opt.seed});
    const auto result = runner.run(campaign, grid, sink_ptrs);

    // A write that failed mid-sweep (disk full, file deleted, quota) leaves
    // the stream in a failed state but does not throw — check explicitly so
    // a truncated artifact is a loud error, never a silently short file.
    if (!opt.out_dir.empty()) {
      csv_file.flush();
      if (!csv_file)
        throw std::runtime_error("error writing " + csv_path.string() +
                                 " (output truncated)");
      jsonl_file.flush();
      if (!jsonl_file)
        throw std::runtime_error("error writing " + jsonl_path.string() +
                                 " (output truncated)");
    }

    if (!manifest_path.empty()) {
      std::ofstream manifest_file(manifest_path);
      if (!manifest_file)
        throw std::runtime_error("cannot open " + manifest_path.string());
      manifest_file << result.manifest_json << "\n";
      manifest_file.flush();
      if (!manifest_file)
        throw std::runtime_error("error writing " + manifest_path.string() +
                                 " (output truncated)");
    }

    std::cerr << "photorack_sweep: campaign " << campaign.name << " [" << campaign.paper_ref
              << "]: " << grid.size() << " scenarios, " << result.rows.size()
              << " rows, seed " << opt.seed;
    if (!opt.out_dir.empty())
      std::cerr << ", wrote " << csv_path.string() << ", " << jsonl_path.string()
                << " and " << manifest_path.string();
    std::cerr << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "photorack_sweep: " << e.what() << "\n";
    return 1;
  }
}
