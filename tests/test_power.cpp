#include "phot/power.hpp"

#include <gtest/gtest.h>

namespace photorack::phot {
namespace {

TEST(Power, PaperHeadlineNumbers) {
  // Section VI-C: ~11 kW of photonics, ~5% of the rack.
  const auto breakdown = photonic_power_overhead();
  EXPECT_NEAR(breakdown.total.value, 11'000.0, 1'000.0);
  EXPECT_NEAR(breakdown.overhead_vs_baseline, 0.05, 0.01);
}

TEST(Power, BaselineRackPower) {
  // 128 nodes x (250 W CPU + 4x300 W GPU + 192 W memory) = ~210 kW.
  BaselineRackPower base;
  EXPECT_NEAR(base.total().value, 128.0 * (250 + 1200 + 192), 1e-9);
}

TEST(Power, TransceiverTermScalesWithWavelengths) {
  PhotonicPowerConfig cfg;
  const auto full = photonic_power_overhead(cfg);
  cfg.wavelengths_per_mcm /= 2;
  const auto half = photonic_power_overhead(cfg);
  EXPECT_NEAR(half.transceivers.value * 2.0, full.transceivers.value, 1e-6);
}

TEST(Power, SwitchesCappedAtOneKilowatt) {
  const auto breakdown = photonic_power_overhead();
  EXPECT_LE(breakdown.switches.value, 1000.0 + 1e-9);
}

TEST(Power, EnergyPerBitDrivesTotal) {
  PhotonicPowerConfig cheap;
  cheap.transceiver_pair_energy = PjPerBit{0.3};
  PhotonicPowerConfig pricey;
  pricey.transceiver_pair_energy = PjPerBit{30.0};
  EXPECT_LT(photonic_power_overhead(cheap).total.value,
            photonic_power_overhead(pricey).total.value / 10.0);
}

TEST(Power, OverheadAgainstCustomBaseline) {
  BaselineRackPower small;
  small.nodes = 1;
  const auto breakdown = photonic_power_overhead({}, small);
  // Whole-rack photonics against one node is absurdly high — the point is
  // the denominator is respected.
  EXPECT_GT(breakdown.overhead_vs_baseline, 1.0);
}

}  // namespace
}  // namespace photorack::phot
