#include "config/value_codec.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace photorack::config {

namespace {

[[noreturn]] void bad_value(const char* want, const std::string& s) {
  throw std::invalid_argument(std::string("'") + s + "' is not a " + want);
}

}  // namespace

double parse_double(const std::string& s) {
  // strtod skips leading whitespace and accepts hex floats; require the
  // value to start with a digit, sign or dot so those forms are rejected,
  // and require the whole string to be consumed so "35ns" is rejected.
  if (s.empty()) bad_value("number", s);
  const char c = s.front();
  if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.'))
    bad_value("number", s);
  if (s.size() > 1 && (s[0] == '0') && (s[1] == 'x' || s[1] == 'X'))
    bad_value("number", s);
  char* end = nullptr;
  const double x = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') bad_value("number", s);
  // The first-character guard blocks bare "nan"/"inf" but not the
  // sign-prefixed spellings strtod also accepts ("-nan", "+inf"); a NaN
  // would then sail through every range check (NaN comparisons are false).
  if (!std::isfinite(x)) bad_value("finite number", s);
  return x;
}

std::int64_t parse_int64(const std::string& s) {
  if (s.empty()) bad_value("integer", s);
  std::int64_t x = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), x, 10);
  if (ec != std::errc{} || ptr != s.data() + s.size()) bad_value("integer", s);
  return x;
}

std::uint64_t parse_uint64(const std::string& s) {
  // from_chars on an unsigned type rejects "-32" outright instead of
  // wrapping it the way strtoull does.
  if (s.empty()) bad_value("unsigned integer", s);
  std::uint64_t x = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), x, 10);
  if (ec != std::errc{} || ptr != s.data() + s.size()) bad_value("unsigned integer", s);
  return x;
}

bool parse_bool(const std::string& s) {
  if (s == "true" || s == "1") return true;
  if (s == "false" || s == "0") return false;
  bad_value("bool (true|false|1|0)", s);
}

std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{})
    throw std::invalid_argument("format_double: unrepresentable value");
  return std::string(buf, ptr);
}

}  // namespace photorack::config
