#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "phot/units.hpp"

namespace photorack::rack {

/// The five disaggregatable chip types of the model rack (§V, Table III).
enum class ChipType : std::uint8_t { kCpu, kGpu, kNic, kHbm, kDdr4 };
inline constexpr std::array<ChipType, 5> kAllChipTypes = {
    ChipType::kCpu, ChipType::kGpu, ChipType::kNic, ChipType::kHbm, ChipType::kDdr4};

[[nodiscard]] const char* to_string(ChipType t);

/// Per-chip properties relevant to packing and power.
struct ChipSpec {
  ChipType type;
  phot::GBps escape_bandwidth;  // native escape the MCM must preserve
  phot::Watts power;
  int per_node = 0;  // count in one baseline compute node
  /// Physical packaging cap on chips of this type per MCM (0 = unlimited).
  /// DDR4 is the one type whose Table III count is packaging-limited, not
  /// escape-limited: 27 DIMMs is what fits one MCM controller's fan-out.
  int max_per_mcm = 0;
};

/// Baseline node of the model system (§V): one AMD Milan CPU with eight
/// DDR4-3200 channels (256 GB, 204.8 GB/s), four NVIDIA A100 GPUs each with
/// 40 GB HBM at 1555.2 GB/s and 12 NVLink3 links (25 GB/s per direction),
/// four PCIe Gen4 links (31.5 GB/s) CPU<->GPU, four Slingshot-11 NICs at
/// 200 Gb/s per direction.
struct NodeConfig {
  int cpus = 1;
  int gpus = 4;
  int nics = 4;
  int hbm_stacks = 4;    // one per GPU
  int ddr4_modules = 8;  // one per memory channel

  phot::GBps ddr4_per_module{25.6};     // 3200 MT/s x 8 B
  phot::GBps hbm_per_stack{1555.2};
  phot::GBps nvlink_per_gpu{300.0};     // 12 links x 25 GB/s
  phot::GBps pcie_per_link{31.5};       // Gen4 x16
  phot::GBps nic_per_port{25.0};        // 200 Gb/s per direction

  /// Escape bandwidth each chip needs preserved when disaggregated.
  [[nodiscard]] phot::GBps chip_escape(ChipType t) const;

  /// ChipSpec for each type, with powers used by the §VI-C comparison.
  [[nodiscard]] ChipSpec chip_spec(ChipType t) const;

  [[nodiscard]] int chips_per_node(ChipType t) const;
};

/// A rack of the baseline system: 128 GPU-accelerated nodes.
struct RackConfig {
  NodeConfig node;
  int nodes = 128;

  [[nodiscard]] int total_chips(ChipType t) const {
    return nodes * node.chips_per_node(t);
  }
};

}  // namespace photorack::rack
