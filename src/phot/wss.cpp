#include "phot/wss.hpp"

#include <stdexcept>

namespace photorack::phot {

std::vector<int> WssAssignment::lambdas_for(int src, int dst) const {
  std::vector<int> out;
  for (const auto& g : grants)
    if (g.src == src && g.dst == dst) out.push_back(g.lambda);
  return out;
}

namespace {

/// Bipartite edge-colouring state: for each (port, colour), the peer port
/// of the edge carrying that colour, or -1.
class Colouring {
 public:
  Colouring(int ports, int colours)
      : colours_(colours),
        src_peer_(static_cast<std::size_t>(ports) * colours, -1),
        dst_peer_(static_cast<std::size_t>(ports) * colours, -1) {}

  [[nodiscard]] int free_colour_at_src(int u) const { return free_colour(src_peer_, u); }
  [[nodiscard]] int free_colour_at_dst(int v) const { return free_colour(dst_peer_, v); }
  [[nodiscard]] int src_peer(int u, int c) const { return src_peer_[idx(u, c)]; }
  [[nodiscard]] int dst_peer(int v, int c) const { return dst_peer_[idx(v, c)]; }

  void set(int u, int v, int c) {
    src_peer_[idx(u, c)] = v;
    dst_peer_[idx(v, c)] = u;
  }
  void clear(int u, int v, int c) {
    src_peer_[idx(u, c)] = -1;
    dst_peer_[idx(v, c)] = -1;
  }

  /// Colour edge (u, v) with colour a, flipping a Kempe chain if needed.
  /// Precondition: u has some free colour a, v has some free colour b.
  void colour_edge(int u, int v) {
    const int a = free_colour_at_src(u);
    const int b = free_colour_at_dst(v);
    if (a < 0 || b < 0) throw std::logic_error("colour_edge: no free colour");
    if (a == b) {
      set(u, v, a);
      return;
    }
    // Alternating (a, b) path starting at v: recolour every a-edge to b and
    // every b-edge to a.  In a bipartite graph this path cannot reach u
    // (entering the source side always uses colour a, which is free at u),
    // so afterwards colour a is free at both endpoints.  The path is
    // collected first and flipped afterwards: flipping in place would
    // overwrite the (port, colour) slots the walk still needs to follow.
    struct PathEdge {
      int u, v, colour;
    };
    std::vector<PathEdge> path;
    int node = v;
    bool on_dst_side = true;
    int want = a;  // colour of the next edge to follow
    while (true) {
      const int peer = on_dst_side ? dst_peer(node, want) : src_peer(node, want);
      if (peer < 0) break;
      path.push_back(on_dst_side ? PathEdge{peer, node, want}
                                 : PathEdge{node, peer, want});
      node = peer;
      on_dst_side = !on_dst_side;
      want = (want == a) ? b : a;
    }
    for (const auto& e : path) clear(e.u, e.v, e.colour);
    for (const auto& e : path) set(e.u, e.v, e.colour == a ? b : a);
    set(u, v, a);
  }

 private:
  int colours_;
  std::vector<int> src_peer_;
  std::vector<int> dst_peer_;

  [[nodiscard]] std::size_t idx(int port, int c) const {
    return static_cast<std::size_t>(port) * colours_ + c;
  }
  [[nodiscard]] int free_colour(const std::vector<int>& peers, int port) const {
    for (int c = 0; c < colours_; ++c)
      if (peers[idx(port, c)] < 0) return c;
    return -1;
  }
};

}  // namespace

WssAssignment assign_wavelengths(int ports, int wavelengths,
                                 std::span<const WssDemand> demands) {
  if (ports <= 0 || wavelengths <= 0)
    throw std::invalid_argument("assign_wavelengths: bad switch geometry");

  std::vector<int> src_total(static_cast<std::size_t>(ports), 0);
  std::vector<int> dst_total(static_cast<std::size_t>(ports), 0);
  for (const auto& d : demands) {
    if (d.src < 0 || d.src >= ports || d.dst < 0 || d.dst >= ports)
      throw std::invalid_argument("assign_wavelengths: port out of range");
    if (d.lambdas <= 0) throw std::invalid_argument("assign_wavelengths: empty demand");
    src_total[static_cast<std::size_t>(d.src)] += d.lambdas;
    dst_total[static_cast<std::size_t>(d.dst)] += d.lambdas;
  }

  WssAssignment out;
  for (int p = 0; p < ports; ++p) {
    if (src_total[static_cast<std::size_t>(p)] > wavelengths ||
        dst_total[static_cast<std::size_t>(p)] > wavelengths) {
      out.complete = false;  // infeasible: a port is over-subscribed
      return out;
    }
  }

  // The colouring tracks only one edge per (port, colour); multi-lambda
  // demands become that many unit edges.  Because per-port degrees are
  // <= wavelengths, colour_edge always finds free colours (König).
  Colouring colouring(ports, wavelengths);
  std::vector<std::vector<int>> granted_before;
  for (const auto& d : demands)
    for (int k = 0; k < d.lambdas; ++k) colouring.colour_edge(d.src, d.dst);

  // Read the final colouring back out as grants.
  for (int u = 0; u < ports; ++u) {
    for (int c = 0; c < wavelengths; ++c) {
      const int v = colouring.src_peer(u, c);
      if (v >= 0) out.grants.push_back({u, v, c});
    }
  }
  out.complete = true;
  return out;
}

bool is_conflict_free(int ports, int wavelengths, const WssAssignment& assignment) {
  std::vector<char> src_used(static_cast<std::size_t>(ports) * wavelengths, 0);
  std::vector<char> dst_used(static_cast<std::size_t>(ports) * wavelengths, 0);
  for (const auto& g : assignment.grants) {
    if (g.src < 0 || g.src >= ports || g.dst < 0 || g.dst >= ports) return false;
    if (g.lambda < 0 || g.lambda >= wavelengths) return false;
    auto& s = src_used[static_cast<std::size_t>(g.src) * wavelengths + g.lambda];
    auto& d = dst_used[static_cast<std::size_t>(g.dst) * wavelengths + g.lambda];
    if (s || d) return false;
    s = d = 1;
  }
  return true;
}

}  // namespace photorack::phot
