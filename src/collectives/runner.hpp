#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collectives/collective.hpp"
#include "net/flow_sim.hpp"
#include "sim/event_queue.hpp"

namespace photorack::collectives {

/// One collective execution, bound to concrete fabric endpoints.
struct CollectiveSpec {
  Pattern pattern = Pattern::kRingAllReduce;
  /// Fabric endpoint (MCM index) of each rank; ranks sharing an endpoint
  /// exchange through local memory and open no fabric flow.
  std::vector<int> endpoints;
  /// Gradient payload moved by the collective, in bytes.
  double bytes = 0.0;
  /// Per-flow bandwidth demand, in Gb/s.
  double demand_gbps = 25.0;
  /// Multiplier on every achieved rate (electronic derate, remote-spill cap).
  double rate_scale = 1.0;
  /// Floor on the achieved rate as a fraction of demand, mirroring the
  /// cosim's min_speed_fraction so starved flows still make progress.
  double min_rate_fraction = 0.05;
};

struct CollectiveResult {
  sim::TimePs elapsed = 0;
  int phases = 0;
  std::uint64_t flows = 0;
  /// Sum over phases of (slowest flow time) / (mean flow time): 1.0 when
  /// every flow of every phase finishes together, larger when contention
  /// makes the bulk-synchronous gate wait on a straggler.
  double straggler_stretch = 1.0;
};

/// Executes one compiled collective as a deterministic multi-phase flow
/// program on a FlowEngine: each phase opens its flow set, an event fires
/// when the SLOWEST flow's payload has drained at its achieved rate, the
/// phase's flows close (restoring fabric state exactly), and the next phase
/// starts.  Entirely event-driven on the caller's queue, so collectives of
/// many concurrent training jobs interleave and contend naturally.
class CollectiveRunner {
 public:
  CollectiveRunner(net::FlowEngine& engine, sim::EventQueue& queue,
                   CollectiveSpec spec);

  // The phase event captures `this`; hold the runner behind a stable pointer.
  CollectiveRunner(const CollectiveRunner&) = delete;
  CollectiveRunner& operator=(const CollectiveRunner&) = delete;

  ~CollectiveRunner();

  /// Begin phase 0 now.  `done` fires (once) when the last phase closes; the
  /// handler may destroy the runner.  An empty program completes via an
  /// immediate zero-delay event, never synchronously from start().
  void start(std::function<void(const CollectiveResult&)> done);

  /// Tear down mid-collective: close open flows, cancel the pending phase
  /// event, suppress the done handler.  Used by fault revocation.
  void abort();

  [[nodiscard]] bool running() const { return running_; }
  /// The currently open phase flows in fabric-endpoint space, for fault
  /// victim matching against MCM/link failures.
  [[nodiscard]] const std::vector<net::FlowSpec>& open_specs() const {
    return open_specs_;
  }

 private:
  void start_phase();
  void finish_phase();

  net::FlowEngine& engine_;
  sim::EventQueue& queue_;
  CollectiveSpec spec_;
  std::vector<Phase> program_;
  std::size_t next_phase_ = 0;

  std::vector<std::uint64_t> open_ids_;
  std::vector<net::FlowSpec> open_specs_;
  std::uint64_t phase_event_ = 0;
  bool phase_event_live_ = false;
  bool running_ = false;

  sim::TimePs started_ = 0;
  double slowest_sum_ps_ = 0.0;
  double mean_sum_ps_ = 0.0;
  std::uint64_t flows_opened_ = 0;
  std::function<void(const CollectiveResult&)> done_;
};

}  // namespace photorack::collectives
