#include "core/rack_system.hpp"

#include <gtest/gtest.h>

namespace photorack::core {
namespace {

TEST(RackSystem, PhotonicDefaults) {
  RackSystem system;
  EXPECT_EQ(system.total_mcms(), 350);
  EXPECT_DOUBLE_EQ(system.added_memory_latency_ns(), 35.0);
  EXPECT_DOUBLE_EQ(system.direct_pair_bandwidth_gbps(), 125.0);
}

TEST(RackSystem, ElectronicAlternative) {
  RackSystem system(rack::FabricKind::kElectronicSwitches);
  EXPECT_DOUBLE_EQ(system.added_memory_latency_ns(), 85.0);
}

TEST(RackSystem, SpatialDesignKeeps35ns) {
  RackSystem system(rack::FabricKind::kSpatialOrWss);
  EXPECT_DOUBLE_EQ(system.added_memory_latency_ns(), 35.0);
  EXPECT_GT(system.direct_pair_bandwidth_gbps(), 0.0);
}

TEST(RackSystem, PowerOverheadMatchesSection6C) {
  RackSystem system;
  const auto power = system.power_overhead();
  EXPECT_NEAR(power.total.value, 11'000.0, 1'200.0);
  EXPECT_NEAR(power.overhead_vs_baseline, 0.05, 0.01);
}

TEST(RackSystem, ElectronicHasNoPhotonicPower) {
  RackSystem system(rack::FabricKind::kElectronicSwitches);
  EXPECT_DOUBLE_EQ(system.power_overhead().total.value, 0.0);
}

TEST(RackSystem, FabricOnlyForAwgr) {
  RackSystem awgr;
  EXPECT_NO_THROW({ auto fabric = awgr.make_fabric(); });
  RackSystem electronic(rack::FabricKind::kElectronicSwitches);
  EXPECT_THROW(electronic.make_fabric(), std::logic_error);
}

TEST(RackSystem, FabricMatchesDesign) {
  RackSystem system;
  auto fabric = system.make_fabric();
  EXPECT_EQ(fabric.mcms(), system.total_mcms());
  EXPECT_EQ(fabric.parallel_awgrs(), system.design().awgr.parallel_awgrs);
}

}  // namespace
}  // namespace photorack::core
