#include "cpusim/runner.hpp"

#include <stdexcept>

namespace photorack::cpusim {

SimResult run_simulation(TraceSource& trace, const SimConfig& cfg) {
  CacheHierarchy hierarchy(cfg.hierarchy);
  DramModel dram(cfg.dram);
  Core core(cfg.core, hierarchy, dram);

  if (cfg.prewarm_working_set && trace.footprint_bytes() > 0) {
    const std::uint64_t footprint = trace.footprint_bytes();
    const std::uint64_t span = std::min(footprint, cfg.prewarm_cap_bytes);
    const auto line = static_cast<std::uint64_t>(cfg.hierarchy.l1.line_bytes);
    for (std::uint64_t addr = footprint - span; addr < footprint; addr += line)
      hierarchy.access(addr);
  }

  trace.reset();
  core.run(trace, cfg.warmup_instructions);
  core.reset_stats();
  hierarchy.reset_stats();
  dram.reset_stats();

  core.run(trace, cfg.measured_instructions);
  const CoreStats& s = core.stats();

  SimResult r;
  r.instructions = s.instructions;
  r.cycles = s.cycles;
  r.time_ns = s.cycles / cfg.core.freq_ghz;
  r.ipc = s.ipc();
  r.llc_miss_rate = s.llc_miss_rate();
  r.llc_mpki = s.instructions
                   ? 1000.0 * static_cast<double>(s.llc_misses) /
                         static_cast<double>(s.instructions)
                   : 0.0;
  r.llc_miss_stall_cycles = s.llc_miss_stall_cycles;
  r.mem_op_fraction = s.instructions ? static_cast<double>(s.mem_ops) /
                                           static_cast<double>(s.instructions)
                                     : 0.0;
  r.dram_row_hit_rate = dram.row_hit_rate();
  return r;
}

double slowdown(const SimResult& baseline, const SimResult& perturbed) {
  if (baseline.time_ns <= 0.0) throw std::invalid_argument("slowdown: empty baseline");
  return perturbed.time_ns / baseline.time_ns - 1.0;
}

}  // namespace photorack::cpusim
