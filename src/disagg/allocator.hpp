#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/enum_codec.hpp"
#include "rack/chips.hpp"

namespace photorack::disagg {

/// Resources one job asks for.  Units: whole CPUs/GPUs, GB of memory,
/// Gb/s of injection bandwidth.
struct JobRequest {
  int cpus = 0;
  int gpus = 0;
  double memory_gb = 0.0;
  double nic_gbps = 0.0;
};

/// What a placement consumed.  For node-granular placement this is whole
/// nodes; for disaggregated placement it is the exact request.
struct Allocation {
  bool placed = false;
  int nodes = 0;  // node-granular only
  int cpus = 0;
  int gpus = 0;
  double memory_gb = 0.0;
  double nic_gbps = 0.0;
  double marooned_cpus = 0.0;       // granted-but-unrequested (static nodes)
  double marooned_memory_gb = 0.0;
  std::uint64_t id = 0;
};

/// Aggregate pool state for one rack.
struct PoolState {
  int cpus_total = 0, cpus_used = 0;
  int gpus_total = 0, gpus_used = 0;
  double memory_gb_total = 0, memory_gb_used = 0;
  double nic_gbps_total = 0, nic_gbps_used = 0;

  [[nodiscard]] double cpu_utilization() const {
    return cpus_total ? static_cast<double>(cpus_used) / cpus_total : 0.0;
  }
  [[nodiscard]] double gpu_utilization() const {
    return gpus_total ? static_cast<double>(gpus_used) / gpus_total : 0.0;
  }
  [[nodiscard]] double memory_utilization() const {
    return memory_gb_total > 0 ? memory_gb_used / memory_gb_total : 0.0;
  }
  [[nodiscard]] double nic_utilization() const {
    return nic_gbps_total > 0 ? nic_gbps_used / nic_gbps_total : 0.0;
  }
};

/// Always-on allocate()/release() call counters.  Plain integer increments
/// on paths that already branch and hash — cheap enough to never gate.
struct AllocatorCounters {
  std::uint64_t attempts = 0;     // allocate() calls past validation
  std::uint64_t placements = 0;   // allocations that were granted
  std::uint64_t releases = 0;     // placed allocations returned voluntarily
  std::uint64_t revocations = 0;  // placed allocations reclaimed by a fault

  [[nodiscard]] std::uint64_t rejections() const { return attempts - placements; }
};

/// Allocation policy of the rack under study.
///
/// kStaticNodes: today's model — jobs receive whole, identical nodes; every
/// resource in a granted node is unavailable to others even when unused
/// ("marooned resources", §I).
///
/// kDisaggregated: the paper's model — each resource type is an independent
/// rack-wide pool; jobs take exactly what they request.
enum class AllocationPolicy { kStaticNodes, kDisaggregated };

/// Canonical CLI/campaign-axis/registry spellings: "static" | "disagg".
/// The one definition shared by photorack_cosim, the scenario campaigns
/// and the config-registry bindings.
[[nodiscard]] const config::EnumCodec<AllocationPolicy>& allocation_policy_codec();

/// Thin wrappers over allocation_policy_codec() for existing call sites.
[[nodiscard]] AllocationPolicy parse_allocation_policy(const std::string& v);
[[nodiscard]] const char* to_string(AllocationPolicy policy);

class RackAllocator {
 public:
  RackAllocator(const rack::RackConfig& rack, AllocationPolicy policy,
                double memory_gb_per_node = 256.0, double nic_gbps_per_node = 800.0);

  /// Try to place a job; marooned resources are tracked for static nodes.
  [[nodiscard]] Allocation allocate(const JobRequest& req);

  /// Return a placed allocation's resources to the pools.  Only `placed`
  /// and `id` are consulted: the pools are decremented by the *stored*
  /// grant, so caller-side mutation of an Allocation's resource fields can
  /// never skew the accounting.  Releasing an unplaced allocation is a
  /// no-op; releasing an id this allocator never granted, or the same id
  /// twice, throws std::logic_error before touching any pool.
  void release(const Allocation& alloc);

  /// Forcibly reclaim a live grant on the fault path.  Accounting is
  /// identical to release() — pools return to exactly what allocate()
  /// charged — but the reclaim lands on the `revocations` counter so
  /// reports can separate voluntary completion from fault revocation.
  /// Same invariants: an unplaced allocation is a no-op; an id this
  /// allocator never granted, an already-released id, or a double revoke
  /// throws std::logic_error BEFORE any pool is touched.
  void revoke(const Allocation& alloc);

  /// Crash-stop `count` nodes: their capacity leaves every pool (and the
  /// static-node free list).  The caller must revoke the victims bound to
  /// the dying nodes FIRST — under static nodes taking an occupied node
  /// offline throws std::logic_error.  Under disaggregation a fault may
  /// transiently leave used > total; allocate() already rejects in that
  /// state, so the invariant used <= total is restored as jobs drain.
  void take_nodes_offline(int count);
  /// Repair path: restore `count` previously offline nodes' capacity.
  void bring_nodes_online(int count);
  [[nodiscard]] int offline_nodes() const { return offline_nodes_; }

  [[nodiscard]] const PoolState& pools() const { return pools_; }
  [[nodiscard]] const AllocatorCounters& counters() const { return counters_; }
  [[nodiscard]] AllocationPolicy policy() const { return policy_; }
  [[nodiscard]] int free_nodes() const { return free_nodes_; }
  [[nodiscard]] std::size_t live_allocations() const { return live_.size(); }

  /// Resources granted but idle (static-node only): the utilization gap
  /// that motivates disaggregation.
  [[nodiscard]] double marooned_cpu_fraction() const;
  [[nodiscard]] double marooned_memory_fraction() const;

 private:
  AllocationPolicy policy_;
  int nodes_;
  int cpus_per_node_;
  int gpus_per_node_;
  double memory_gb_per_node_;
  double nic_gbps_per_node_;
  int free_nodes_;
  PoolState pools_;
  // Grants not yet released, keyed by id; release() decrements by the
  // stored record, never by the caller's (possibly mutated) copy.
  std::unordered_map<std::uint64_t, Allocation> live_;

  int offline_nodes_ = 0;
  double marooned_cpus_ = 0.0;
  double marooned_memory_gb_ = 0.0;
  AllocatorCounters counters_;

  void reclaim(const Allocation& alloc, bool revoked);
};

}  // namespace photorack::disagg
