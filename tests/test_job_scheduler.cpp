#include "disagg/job_scheduler.hpp"

#include <gtest/gtest.h>

namespace photorack::disagg {
namespace {

JobSimConfig quick() {
  JobSimConfig cfg;
  cfg.sim_time = 300 * sim::kPsPerMs;
  cfg.arrivals_per_ms = 2.0;
  cfg.mean_duration = 30 * sim::kPsPerMs;
  return cfg;
}

TEST(JobScheduler, OffersJobs) {
  const auto report = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_GT(report.offered, 100u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_LE(report.accepted, report.offered);
}

TEST(JobScheduler, DeterministicForSeed) {
  const auto a = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), quick());
  const auto b = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), quick());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.mean_memory_utilization, b.mean_memory_utilization);
}

TEST(JobScheduler, StaticPolicyMaroonsResources) {
  const auto report = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                     workloads::UsageModel::cori(), quick());
  // The Section II-A picture: most of the held memory is idle.
  EXPECT_GT(report.mean_marooned_memory, 0.1);
}

TEST(JobScheduler, DisaggregatedMaroonsNothing) {
  const auto report = run_job_stream({}, AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_DOUBLE_EQ(report.mean_marooned_cpu, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_marooned_memory, 0.0);
}

TEST(JobScheduler, DisaggregationAcceptsAtLeastAsMuch) {
  const auto stat = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                   workloads::UsageModel::cori(), quick());
  const auto disagg = run_job_stream({}, AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_GE(disagg.acceptance(), stat.acceptance() - 1e-9);
}

TEST(JobScheduler, HeavierLoadLowersStaticAcceptance) {
  auto light = quick();
  auto heavy = quick();
  heavy.arrivals_per_ms = 20.0;
  const auto l = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), light);
  const auto h = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), heavy);
  EXPECT_LT(h.acceptance(), l.acceptance() + 1e-9);
}

}  // namespace
}  // namespace photorack::disagg
