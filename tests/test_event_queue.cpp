#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace photorack::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule_at(5, [&order, i] { order.push_back(i); });
  q.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  TimePs seen = -1;
  q.schedule_at(100, [&] { q.schedule_after(50, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(1234));
}

TEST(EventQueue, RunUntilStopsBeforeBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  const auto n = q.run(/*until=*/20);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) q.schedule_after(1, step);
  };
  q.schedule_at(0, step);
  q.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(q.now(), 99);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue q;
  const auto a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace photorack::sim
