#include "cluster/cluster_cosim.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace photorack::cluster {

const config::EnumCodec<SpillPolicy>& spill_policy_codec() {
  static const config::EnumCodec<SpillPolicy> codec(
      "spill policy", {{"none", SpillPolicy::kNone},
                       {"next", SpillPolicy::kNext},
                       {"least", SpillPolicy::kLeast}});
  return codec;
}

namespace {

ClusterConfig validated(ClusterConfig cfg) {
  if (cfg.racks < 1)
    throw std::invalid_argument("ClusterCosim: need >= 1 rack");
  if (cfg.workers < 0)
    throw std::invalid_argument("ClusterCosim: workers must be >= 0");
  // Link rate / latency / energy bounds are enforced by InterRackFabric.
  return cfg;
}

std::size_t pool_size(const ClusterConfig& cfg) {
  if (cfg.workers > 0) return static_cast<std::size_t>(cfg.workers);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(static_cast<std::size_t>(cfg.racks), hw);
}

}  // namespace

ClusterCosim::ClusterCosim(const rack::RackConfig& rack,
                           disagg::AllocationPolicy policy,
                           const workloads::UsageModel& usage,
                           ClusterConfig cluster, cosim::CosimConfig cfg,
                           obs::Obs obs)
    : cfg_(validated(cluster)),
      fabric_(cfg_.racks, cfg_.interconnect_gbps.value, cfg_.hop_ns,
              cfg_.interconnect_pj_per_bit),
      pool_(pool_size(cfg_)) {
  racks_.reserve(static_cast<std::size_t>(cfg_.racks));
  spill_out_.resize(static_cast<std::size_t>(cfg_.racks));
  close_out_.resize(static_cast<std::size_t>(cfg_.racks));
  // Rack seed streams: rack 0 runs the base seed VERBATIM — a one-rack
  // cluster reproduces a standalone RackCosim report field for field.  Racks
  // r > 0 derive their seed under child stream 5 of the base RNG, a stream
  // id no rack-local consumer uses (1 = router, 2 = arrivals, 3 = fault
  // timeline, 16+k = per-job plans), so rack streams can never collide with
  // in-rack draws.
  const sim::Rng rack_root = sim::Rng(cfg.seed).child(5);
  for (int r = 0; r < cfg_.racks; ++r) {
    cosim::CosimConfig rack_cfg = cfg;
    if (r > 0) rack_cfg.seed = rack_root.child(static_cast<std::uint64_t>(r))();
    // Observability attaches to rack 0 only: one trace/metrics sink cannot
    // take concurrent writers, and rack 0 is the rack whose stream matches a
    // standalone run of the same seed.
    racks_.push_back(std::make_unique<cosim::RackCosim>(
        rack, policy, usage, rack_cfg, r == 0 ? obs : obs::Obs{}));
  }
  if (!coupled()) return;
  // Handlers run on rack worker threads inside a window: they only append
  // to that rack's own outbox.  The coordinator drains outboxes strictly
  // after wait_idle(), which orders the accesses.
  for (int r = 0; r < cfg_.racks; ++r) {
    cosim::RackCosim* rc = racks_[static_cast<std::size_t>(r)].get();
    rc->set_spill_handler(
        [this, r](const cosim::RackCosim::JobPlan& plan, sim::TimePs at) {
          spill_out_[static_cast<std::size_t>(r)].push_back(
              SpillMsg{at, r, plan, at});
          return true;
        });
    rc->set_remote_close_handler(
        [this, r](int link, double gbps, sim::TimePs at, bool placed) {
          close_out_[static_cast<std::size_t>(r)].push_back(
              CloseMsg{at, r, link, gbps, placed});
        });
  }
}

void ClusterCosim::advance_all(sim::TimePs barrier) {
  // Only racks with events inside the window have anything to do; a lone
  // active rack runs inline — same results (rack domains are independent
  // within a window), no pool round-trip.
  std::vector<cosim::RackCosim*> active;
  for (auto& r : racks_)
    if (r->next_event_time() < barrier) active.push_back(r.get());
  if (active.size() == 1) {
    active.front()->advance_to(barrier);
    return;
  }
  for (cosim::RackCosim* r : active)
    pool_.submit([r, barrier]() { r->advance_to(barrier); });
  pool_.wait_idle();
}

int ClusterCosim::pick_target(int origin) const {
  const int n = static_cast<int>(racks_.size());
  if (cfg_.spill == SpillPolicy::kNext) return (origin + 1) % n;
  // kLeast: the rack with the lowest combined CPU+memory occupancy right
  // now (reads are quiescent between windows).  Ties break to the lowest
  // rack id — deterministic.
  int best = -1;
  double best_load = 0.0;
  for (int r = 0; r < n; ++r) {
    if (r == origin) continue;
    const auto& pools = racks_[static_cast<std::size_t>(r)]->allocator().pools();
    const double load = pools.cpu_utilization() + pools.memory_utilization();
    if (best < 0 || load < best_load) {
      best = r;
      best_load = load;
    }
  }
  return best;
}

void ClusterCosim::exchange(sim::TimePs /*barrier*/) {
  // Merge every outbox into one stream ordered by (time, origin rack, kind,
  // record order) — a total order over cross-rack effects that does not
  // depend on which thread ran which rack, hence bit-identical results at
  // any worker count.  Closes sort before spills at the same instant so
  // returned capacity is visible to a simultaneous spill's reservation.
  struct Ref {
    sim::TimePs at;
    int origin;
    int kind;  // 0 = close, 1 = spill
    std::size_t idx;
  };
  std::vector<Ref> order;
  for (int r = 0; r < static_cast<int>(racks_.size()); ++r) {
    const auto ur = static_cast<std::size_t>(r);
    for (std::size_t i = 0; i < close_out_[ur].size(); ++i)
      order.push_back(Ref{close_out_[ur][i].at, r, 0, i});
    for (std::size_t i = 0; i < spill_out_[ur].size(); ++i)
      order.push_back(Ref{spill_out_[ur][i].at, r, 1, i});
  }
  if (order.empty()) return;
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.origin != b.origin) return a.origin < b.origin;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });
  const sim::TimePs hop = fabric_.hop_latency_ps();
  for (const Ref& ref : order) {
    const auto ur = static_cast<std::size_t>(ref.origin);
    if (ref.kind == 0) {
      const CloseMsg& msg = close_out_[ur][ref.idx];
      fabric_.release(msg.link, msg.gbps);
      if (!msg.placed) ++spill_failed_;
    } else {
      SpillMsg& msg = spill_out_[ur][ref.idx];
      const int target = pick_target(msg.origin);
      const int link = fabric_.link(msg.origin, target);
      double requested = 0.0;
      for (const auto& flow : msg.plan.flows) requested += flow.gbps;
      const double granted = fabric_.reserve(link, requested);
      msg.plan.remote_link = link;
      msg.plan.remote_gbps = granted;
      // The grant fraction becomes the job's speed ceiling at the target: a
      // half-granted uplink runs the job at half speed (clamped to the
      // rack's min_speed floor at placement).
      msg.plan.remote_speed_cap =
          requested > 0.0 ? std::clamp(granted / requested, 0.0, 1.0) : 1.0;
      racks_[static_cast<std::size_t>(target)]->inject_remote_job(
          std::move(msg.plan), msg.at + hop, msg.arrived);
      ++spilled_;
    }
  }
  for (auto& box : spill_out_) box.clear();
  for (auto& box : close_out_) box.clear();
}

void ClusterCosim::run() {
  if (ran_) return;
  ran_ = true;
  if (!coupled()) {
    // No cross-rack effects are possible: one window, full-parallel drain.
    if (racks_.size() == 1) {
      racks_.front()->finish();
    } else {
      for (auto& r : racks_) pool_.submit([rc = r.get()]() { rc->finish(); });
      pool_.wait_idle();
    }
    ++barriers_;
    return;
  }
  const sim::TimePs hop = fabric_.hop_latency_ps();
  for (;;) {
    sim::TimePs t_min = INT64_MAX;
    for (auto& r : racks_) t_min = std::min(t_min, r->next_event_time());
    // Outboxes are always drained at the bottom of the previous window, so
    // an empty cluster-wide event horizon means fully done.
    if (t_min == INT64_MAX) break;
    const sim::TimePs barrier =
        t_min > INT64_MAX - hop ? INT64_MAX : t_min + hop;
    advance_all(barrier);
    ++barriers_;
    exchange(barrier);
  }
}

sim::TimePs ClusterCosim::sim_end() const {
  sim::TimePs end = 0;
  for (const auto& r : racks_) end = std::max(end, r->now());
  return end;
}

ClusterReport ClusterCosim::report() const {
  ClusterReport out;
  out.spilled = spilled_;
  out.spill_failed = spill_failed_;
  out.barriers = barriers_;
  const bool lit = coupled();
  out.interconnect_power_w = fabric_.power_w(lit);
  out.interconnect_energy_j = out.interconnect_power_w * sim::to_s(sim_end());
  out.interconnect_utilization = fabric_.utilization();
  out.racks.reserve(racks_.size());
  for (const auto& r : racks_) out.racks.push_back(r->report());
  if (racks_.size() == 1) {
    // The single-rack contract: total IS the rack's own report, bit for bit
    // (and the dark interconnect adds nothing), so ClusterCosim(1) replaces
    // RackCosim without moving a number.
    out.total = out.racks.front();
    return out;
  }

  cosim::CosimReport& total = out.total;
  // Jobs: counter sums plus exact sketch merges — cluster-wide tails equal
  // one stream that saw every job, regardless of rack sharding.
  disagg::JobStreamStats jobs;
  std::uint64_t censored_waiting = 0;
  for (const auto& r : racks_) {
    std::uint64_t c = 0;
    jobs.merge(r->censored_stream_stats(c));
    censored_waiting += c;
    total.jobs.censored_running += r->live_jobs();
  }
  const std::uint64_t censored_running = total.jobs.censored_running;
  total.jobs = jobs.report();
  total.jobs.censored_waiting = censored_waiting;
  total.jobs.censored_running = censored_running;

  sim::RunningStats speed, stretch;
  // ML training tails merge exactly like the job stream: counter sums plus
  // order-independent sketch merges, so sharding never moves a quantile.
  cosim::MlStreamStats ml;
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    const cosim::CosimReport& rr = out.racks[r];
    total.jobs.events.scheduled += rr.jobs.events.scheduled;
    total.jobs.events.dispatched += rr.jobs.events.dispatched;
    total.jobs.events.cancelled += rr.jobs.events.cancelled;
    total.jobs.events.pending_peak += rr.jobs.events.pending_peak;
    // Flows: extensive fields sum; intensive fractions are
    // flow-count-weighted means; peak utilization is the hottest rack.
    const double w = static_cast<double>(rr.flows.flows);
    total.flows.flows += rr.flows.flows;
    total.flows.fully_satisfied += rr.flows.fully_satisfied;
    total.flows.stale_mispicks += rr.flows.stale_mispicks;
    total.flows.second_hops += rr.flows.second_hops;
    total.flows.offered_gbps_mean += rr.flows.offered_gbps_mean * w;
    total.flows.satisfied_fraction += rr.flows.satisfied_fraction * w;
    total.flows.direct_fraction += rr.flows.direct_fraction * w;
    total.flows.indirect_fraction += rr.flows.indirect_fraction * w;
    total.flows.mean_intermediates += rr.flows.mean_intermediates * w;
    total.flows.peak_utilization =
        std::max(total.flows.peak_utilization, rr.flows.peak_utilization);
    speed.merge(racks_[r]->speed_stats());
    stretch.merge(racks_[r]->stretch_stats());
    // Power/energy: racks draw concurrently, so cluster power is the sum of
    // rack means and the peak bound is the sum of rack peaks.
    total.energy_joules += rr.energy_joules;
    total.mean_power_w += rr.mean_power_w;
    total.peak_power_w += rr.peak_power_w;
    total.photonic_power_w += rr.photonic_power_w;
    total.completed_at = std::max(total.completed_at, rr.completed_at);
    // Faults: counters sum; the rate-like fields (availability, MTTR) are
    // unweighted means over racks — every rack runs the same fault config.
    total.fault.enabled = total.fault.enabled || rr.fault.enabled;
    total.fault.faults += rr.fault.faults;
    total.fault.repairs += rr.fault.repairs;
    total.fault.interrupted += rr.fault.interrupted;
    total.fault.requeued += rr.fault.requeued;
    total.fault.degraded += rr.fault.degraded;
    total.fault.killed += rr.fault.killed;
    total.fault.goodput_jobs += rr.fault.goodput_jobs;
    total.fault.work_lost_ms += rr.fault.work_lost_ms;
    ml.merge(racks_[r]->ml_stream_stats());
    total.ml.enabled = total.ml.enabled || rr.ml.enabled;
  }
  if (const double n = static_cast<double>(total.flows.flows); n > 0.0) {
    total.flows.offered_gbps_mean /= n;
    total.flows.satisfied_fraction /= n;
    total.flows.direct_fraction /= n;
    total.flows.indirect_fraction /= n;
    total.flows.mean_intermediates /= n;
  }
  double avail = 0.0, mttr = 0.0;
  for (const auto& rr : out.racks) {
    avail += rr.fault.availability;
    mttr += rr.fault.mean_mttr_ms;
  }
  total.fault.availability = avail / static_cast<double>(out.racks.size());
  total.fault.mean_mttr_ms = mttr / static_cast<double>(out.racks.size());
  total.mean_speed_fraction = speed.count() ? speed.mean() : 1.0;
  total.mean_stretch = stretch.count() ? stretch.mean() : 1.0;
  total.max_stretch = stretch.count() ? stretch.max() : 1.0;
  {
    const bool enabled = total.ml.enabled;
    total.ml = ml.report();
    total.ml.enabled = enabled;
  }
  // The lit uplinks are part of what cluster-scale disaggregation costs:
  // fold them into the energy totals (rack-scale runs add exactly zero).
  total.energy_joules += out.interconnect_energy_j;
  total.mean_power_w += out.interconnect_power_w;
  total.peak_power_w += out.interconnect_power_w;
  total.photonic_power_w += out.interconnect_power_w;
  return out;
}

ClusterReport run_cluster_cosim(const rack::RackConfig& rack,
                                disagg::AllocationPolicy policy,
                                const workloads::UsageModel& usage,
                                const ClusterConfig& cluster,
                                const cosim::CosimConfig& cfg, obs::Obs obs) {
  ClusterCosim sim(rack, policy, usage, cluster, cfg, obs);
  sim.run();
  return sim.report();
}

}  // namespace photorack::cluster
