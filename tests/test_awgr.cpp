#include "phot/awgr.hpp"

#include <gtest/gtest.h>

#include <set>

namespace photorack::phot {
namespace {

TEST(Awgr, WavelengthIsCyclicShuffle) {
  Awgr awgr(8);
  EXPECT_EQ(awgr.wavelength_for(0, 0), 0);
  EXPECT_EQ(awgr.wavelength_for(3, 6), 1);
  EXPECT_EQ(awgr.wavelength_for(7, 7), 6);
}

TEST(Awgr, EachSourceSeesAllWavelengthsExactlyOnce) {
  // Property: from any source, the N destinations use N distinct lambdas.
  Awgr awgr(16);
  for (int src = 0; src < 16; ++src) {
    std::set<int> lambdas;
    for (int dst = 0; dst < 16; ++dst) lambdas.insert(awgr.wavelength_for(src, dst));
    EXPECT_EQ(lambdas.size(), 16u);
  }
}

TEST(Awgr, NoWavelengthCollisionAtOutputs) {
  // Property: at any output port, every input arrives on a distinct lambda
  // (this is what makes the AWGR all-to-all contention-free per pair).
  Awgr awgr(16);
  for (int dst = 0; dst < 16; ++dst) {
    std::set<int> lambdas;
    for (int src = 0; src < 16; ++src) lambdas.insert(awgr.wavelength_for(src, dst));
    EXPECT_EQ(lambdas.size(), 16u);
  }
}

TEST(Awgr, OutputForInvertsWavelengthFor) {
  Awgr awgr(11);
  for (int src = 0; src < 11; ++src)
    for (int dst = 0; dst < 11; ++dst)
      EXPECT_EQ(awgr.output_for(src, awgr.wavelength_for(src, dst)), dst);
}

TEST(Awgr, RangeChecks) {
  Awgr awgr(4);
  EXPECT_THROW(awgr.wavelength_for(4, 0), std::out_of_range);
  EXPECT_THROW(awgr.wavelength_for(0, -1), std::out_of_range);
  EXPECT_THROW(Awgr(0), std::invalid_argument);
}

TEST(CascadedAwgrTest, PaperConfiguration) {
  CascadedAwgr cascade;  // K,M,N = 3,12,11
  EXPECT_EQ(cascade.gross_ports(), 396);
  EXPECT_EQ(cascade.usable_ports(), 370);
  const auto report = cascade.report();
  EXPECT_EQ(report.wavelengths_per_port, 370);
  // ~15 dB worst-case loss, below -35 dB crosstalk (Table II).
  EXPECT_NEAR(report.worst_insertion_loss.value, 15.0, 1.0);
  EXPECT_LE(report.crosstalk.value, -35.0 + 0.5);
}

TEST(CascadedAwgrTest, InterconnectOptimizationHelps) {
  // The optimized pattern's worst loss must beat the naive worst case
  // (both stages at the array edge simultaneously).
  CascadedAwgrConfig cfg;
  CascadedAwgr cascade(cfg);
  const double base = cfg.dc_switch_loss.value + cfg.front_loss.value +
                      cfg.rear_loss.value + cfg.connector_loss.value;
  const double naive_worst = base + 1.5 + 1.5;
  EXPECT_LT(cascade.report().worst_insertion_loss.value, naive_worst - 0.5);
}

TEST(CascadedAwgrTest, LossWithinBudgetForAllPorts) {
  CascadedAwgr cascade;
  for (int i = 0; i < cascade.config().m; ++i) {
    for (int j = 0; j < cascade.config().m; ++j) {
      const double loss = cascade.insertion_loss(i, j).value;
      EXPECT_GT(loss, 10.0);
      EXPECT_LT(loss, 17.0);
    }
  }
}

TEST(CascadedAwgrTest, ScalesWithStageSizes) {
  CascadedAwgrConfig big;
  big.k = 4;
  big.m = 12;
  big.n = 30;
  big.usable_port_fraction = 1.0;
  CascadedAwgr cascade(big);
  EXPECT_EQ(cascade.gross_ports(), 1440);  // the 1440x1440 prototype of [98]
}

TEST(CascadedAwgrTest, RejectsBadConfig) {
  CascadedAwgrConfig bad;
  bad.m = 0;
  EXPECT_THROW(CascadedAwgr{bad}, std::invalid_argument);
}

/// Property sweep over AWGR sizes: the cyclic-shuffle invariants (each
/// source sees all wavelengths once; each output receives each wavelength
/// from exactly one source; output_for inverts wavelength_for) hold for
/// every radix, including primes and powers of two.
class AwgrCyclicProperty : public ::testing::TestWithParam<int> {};

TEST_P(AwgrCyclicProperty, ShuffleInvariants) {
  const int n = GetParam();
  Awgr awgr(n);
  for (int src = 0; src < n; ++src) {
    std::set<int> lambdas;
    for (int dst = 0; dst < n; ++dst) {
      const int l = awgr.wavelength_for(src, dst);
      ASSERT_GE(l, 0);
      ASSERT_LT(l, n);
      lambdas.insert(l);
      ASSERT_EQ(awgr.output_for(src, l), dst);
    }
    ASSERT_EQ(lambdas.size(), static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Radixes, AwgrCyclicProperty,
                         ::testing::Values(2, 3, 7, 8, 11, 16, 37, 64, 128, 370));

/// Property: the interconnect optimization never loses to the identity
/// wiring, across a range of front-stage sizes.
class AwgrOptimizationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AwgrOptimizationProperty, OptimizedWorstCaseBeatsIdentity) {
  CascadedAwgrConfig cfg;
  cfg.m = GetParam();
  CascadedAwgr cascade(cfg);
  const double base = cfg.dc_switch_loss.value + cfg.front_loss.value +
                      cfg.rear_loss.value + cfg.connector_loss.value;
  // Identity wiring worst case: both stages at the array edge.
  const double identity_worst = base + 1.5 + 1.5;
  double optimized_worst = 0.0;
  for (int j = 0; j < cfg.m; ++j)
    optimized_worst = std::max(optimized_worst, cascade.insertion_loss(0, j).value);
  EXPECT_LE(optimized_worst, identity_worst);
  if (cfg.m >= 4) EXPECT_LT(optimized_worst, identity_worst - 0.5);
}

INSTANTIATE_TEST_SUITE_P(FrontSizes, AwgrOptimizationProperty,
                         ::testing::Values(2, 4, 6, 8, 12, 16, 24, 32));

}  // namespace
}  // namespace photorack::phot
