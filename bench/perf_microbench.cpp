// google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, cache access rate, DRAM model, trace generation,
// full timing-simulation rate, miss-profile record/replay, and
// indirect-routing decision rate.
//
// Besides the console table, results are written as machine-readable JSON
// to BENCH_results.json (override with BENCH_RESULTS_PATH) so CI can track
// the perf trajectory PR-over-PR:
//   {"benchmarks":[{"name":"...","items_per_sec":...,"ns_per_op":...},...]}
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "collectives/collective.hpp"
#include "collectives/runner.hpp"
#include "core/rack_system.hpp"
#include "cpusim/miss_profile.hpp"
#include "net/flow_sim.hpp"
#include "cpusim/runner.hpp"
#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace photorack;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    long long sink = 0;
    for (int i = 0; i < 1024; ++i)
      q.schedule_at(i * 10, [&sink] { benchmark::DoNotOptimize(++sink); });
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  cpusim::CacheHierarchy hierarchy;
  sim::Rng rng(1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng() % (64ULL << 20);
    benchmark::DoNotOptimize(hierarchy.access(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_DramModel(benchmark::State& state) {
  cpusim::DramModel dram;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr += 64;
    benchmark::DoNotOptimize(dram.access_ns(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramModel);

void BM_TraceGeneration(benchmark::State& state) {
  workloads::SyntheticTrace trace(workloads::cpu_benchmarks().front().trace);
  std::array<cpusim::Instr, 4096> batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch.size()));
}
BENCHMARK(BM_TraceGeneration);

void BM_TimingSimulation(benchmark::State& state) {
  const auto& bench = workloads::cpu_benchmarks().front();
  for (auto _ : state) {
    cpusim::SimConfig cfg;
    cfg.warmup_instructions = 10'000;
    cfg.measured_instructions = 100'000;
    workloads::SyntheticTrace trace(bench.trace);
    benchmark::DoNotOptimize(cpusim::run_simulation(trace, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 110'000);
}
BENCHMARK(BM_TimingSimulation);

// A latency-heavy benchmark shape for the record/replay benches: large
// working set so the LLC actually misses and the profile has real records.
cpusim::SimConfig replay_bench_config(cpusim::CoreKind kind) {
  cpusim::SimConfig cfg;
  cfg.core.kind = kind;
  cfg.warmup_instructions = 10'000;
  cfg.measured_instructions = 100'000;
  return cfg;
}

const workloads::CpuBenchmark& replay_bench_workload() {
  // Pick a high-miss-rate benchmark so replay walks a non-trivial record
  // vector (streamcluster/large thrashes the LLC).
  for (const auto& b : workloads::cpu_benchmarks())
    if (b.full_name() == "PARSEC/streamcluster/large") return b;
  return workloads::cpu_benchmarks().front();
}

void BM_MissProfileRecord(benchmark::State& state) {
  const auto& bench = replay_bench_workload();
  const auto cfg = replay_bench_config(cpusim::CoreKind::kOutOfOrder);
  for (auto _ : state) {
    workloads::SyntheticTrace trace(bench.trace);
    benchmark::DoNotOptimize(cpusim::record_miss_profile(trace, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 110'000);
}
BENCHMARK(BM_MissProfileRecord);

void BM_MissProfileReplay(benchmark::State& state) {
  const auto& bench = replay_bench_workload();
  const auto cfg = replay_bench_config(cpusim::CoreKind::kOutOfOrder);
  workloads::SyntheticTrace trace(bench.trace);
  const cpusim::MissProfile profile = cpusim::record_miss_profile(trace, cfg);
  double extra = 0.0;
  for (auto _ : state) {
    extra = extra >= 85.0 ? 0.0 : extra + 5.0;
    benchmark::DoNotOptimize(cpusim::replay_profile(profile, extra));
  }
  // One replay substitutes for one full simulation of the measured window.
  state.SetItemsProcessed(state.iterations() * 100'000);
  state.counters["misses"] = static_cast<double>(profile.miss_count());
}
BENCHMARK(BM_MissProfileReplay);

// Sweep-level record-vs-replay comparison: a K-point latency grid evaluated
// the pre-replay way (K full simulations) against the profile engine (one
// recording + K replays).  The items/sec ratio of the two is the sweep
// speedup the fig8 campaign sees.
constexpr double kSweepGrid[] = {0, 10, 20, 25, 30, 35, 45, 55, 65, 75, 85, 95};

void BM_LatencySweepFullSim(benchmark::State& state) {
  const auto& bench = replay_bench_workload();
  for (auto _ : state) {
    for (const double extra : kSweepGrid) {
      auto cfg = replay_bench_config(cpusim::CoreKind::kInOrder);
      cfg.dram.extra_ns = extra;
      workloads::SyntheticTrace trace(bench.trace);
      benchmark::DoNotOptimize(cpusim::run_simulation(trace, cfg));
    }
  }
  state.SetItemsProcessed(state.iterations() * std::size(kSweepGrid));
}
BENCHMARK(BM_LatencySweepFullSim);

void BM_LatencySweepRecordReplay(benchmark::State& state) {
  const auto& bench = replay_bench_workload();
  for (auto _ : state) {
    const auto cfg = replay_bench_config(cpusim::CoreKind::kInOrder);
    workloads::SyntheticTrace trace(bench.trace);
    const cpusim::MissProfile profile = cpusim::record_miss_profile(trace, cfg);
    for (const double extra : kSweepGrid)
      benchmark::DoNotOptimize(cpusim::replay_profile(profile, extra));
  }
  state.SetItemsProcessed(state.iterations() * std::size(kSweepGrid));
}
BENCHMARK(BM_LatencySweepRecordReplay);

// One full collective step (all phases, open/advance/close on the live
// fabric) per iteration — the inner loop of every ML training job in the
// co-simulation, isolated so the pattern/scale cost is visible.
rack::AwgrFabricPlan collective_slice_plan(int mcms) {
  rack::AwgrFabricPlan plan;
  plan.parallel_awgrs = 1;
  plan.awgr_radix = mcms;
  plan.port_wavelength_cap = mcms;
  plan.lambdas_per_port.assign(1, mcms);
  plan.full_coverage_awgrs = 1;
  plan.min_direct_lambdas_per_pair = 1;
  plan.direct_pair_bandwidth = phot::Gbps{25.0};
  return plan;
}

void BM_CollectiveStep(benchmark::State& state, collectives::Pattern pattern,
                       int endpoints) {
  std::uint64_t flows = 0;
  for (auto _ : state) {
    net::WavelengthFabric fabric(24, collective_slice_plan(24));
    net::FlowEngine engine(fabric, 10 * sim::kPsPerUs, 42);
    sim::EventQueue queue;
    collectives::CollectiveSpec spec;
    spec.pattern = pattern;
    spec.endpoints.resize(static_cast<std::size_t>(endpoints));
    for (int i = 0; i < endpoints; ++i) spec.endpoints[static_cast<std::size_t>(i)] = i % 24;
    spec.bytes = 64e6;
    collectives::CollectiveRunner runner(engine, queue, spec);
    collectives::CollectiveResult result;
    runner.start([&](const collectives::CollectiveResult& r) { result = r; });
    queue.run();
    benchmark::DoNotOptimize(result);
    flows = result.flows;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flows"] = static_cast<double>(flows);
}
BENCHMARK_CAPTURE(BM_CollectiveStep, ring_8, collectives::Pattern::kRingAllReduce, 8);
BENCHMARK_CAPTURE(BM_CollectiveStep, ring_24, collectives::Pattern::kRingAllReduce, 24);
BENCHMARK_CAPTURE(BM_CollectiveStep, alltoall_8, collectives::Pattern::kAllToAll, 8);
BENCHMARK_CAPTURE(BM_CollectiveStep, alltoall_24, collectives::Pattern::kAllToAll, 24);

void BM_IndirectRouting(benchmark::State& state) {
  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  auto fabric = system.make_fabric();
  net::PiggybackView view(fabric, sim::kPsPerUs);
  net::IndirectRouter router(fabric, view, 42);
  sim::Rng rng(7);
  const auto mcms = static_cast<std::uint64_t>(fabric.mcms());
  for (auto _ : state) {
    const int src = static_cast<int>(rng.below(mcms));
    int dst = static_cast<int>(rng.below(mcms));
    if (dst == src) dst = (dst + 1) % static_cast<int>(mcms);
    auto result = router.route(src, dst, 200.0);  // forces indirect spill
    benchmark::DoNotOptimize(result);
    router.release(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndirectRouting);

/// Whether a run failed/was skipped, across google-benchmark versions:
/// <= 1.7 has `bool error_occurred`, >= 1.8 replaced it with `skipped`.
/// Member detection keeps this building against either API.
template <typename R>
auto run_not_measured(const R& run, int) -> decltype(static_cast<bool>(run.error_occurred)) {
  return static_cast<bool>(run.error_occurred);
}
template <typename R>
auto run_not_measured(const R& run, long) -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);
}

/// Console reporter that additionally collects per-benchmark name,
/// items/sec and ns/op and writes the BENCH_results.json schema at
/// Finalize() — a tee, so the familiar console table is unchanged.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run_not_measured(run, 0) || run.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = run.benchmark_name();
      // time_unit is ns for every bench here; GetAdjustedRealTime is the
      // per-iteration wall time in that unit.
      row.ns_per_op = run.GetAdjustedRealTime();
      const auto it = run.counters.find("items_per_second");
      row.items_per_sec = it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "perf_microbench: cannot write " << path_ << "\n";
      return;
    }
    os << "{\"benchmarks\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i) os << ",";
      os << "{\"name\":\"" << rows_[i].name << "\",\"items_per_sec\":"
         << rows_[i].items_per_sec << ",\"ns_per_op\":" << rows_[i].ns_per_op << "}";
    }
    os << "]}\n";
    std::cerr << "perf_microbench: wrote " << path_ << "\n";
  }

 private:
  struct Row {
    std::string name;
    double items_per_sec = 0.0;
    double ns_per_op = 0.0;
  };
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* path = std::getenv("BENCH_RESULTS_PATH");
  JsonTeeReporter reporter(path ? path : "BENCH_results.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
