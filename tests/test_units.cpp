#include "phot/units.hpp"

#include <gtest/gtest.h>

namespace photorack::phot {
namespace {

using namespace literals;

TEST(Units, GbpsGBpsConversionRoundTrips) {
  const Gbps g{200.0};
  EXPECT_DOUBLE_EQ(to_gbytes(g).value, 25.0);
  EXPECT_DOUBLE_EQ(to_gbits(to_gbytes(g)).value, 200.0);
}

TEST(Units, ArithmeticWithinAUnit) {
  const Gbps a{100}, b{25};
  EXPECT_DOUBLE_EQ((a + b).value, 125.0);
  EXPECT_DOUBLE_EQ((a - b).value, 75.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value, 25.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Gbps{25}, Gbps{125});
  EXPECT_EQ(Watts{5}, Watts{5});
}

TEST(Units, PowerOfEnergyTimesRate) {
  // 1 pJ/bit at 1000 Gb/s = 1 W.
  EXPECT_DOUBLE_EQ(power_of(PjPerBit{1.0}, Gbps{1000}).value, 1.0);
  // Table I row: 30 pJ/bit at 16 Tb/s (2 TB/s) = 480 W.
  EXPECT_DOUBLE_EQ(power_of(PjPerBit{30.0}, to_gbits(GBps{2000})).value, 480.0);
}

TEST(Units, DecibelRoundTrip) {
  EXPECT_NEAR(db_to_linear(Decibel{10.0}), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(Decibel{-30.0}), 1e-3, 1e-15);
  EXPECT_NEAR(linear_to_db(100.0).value, 20.0, 1e-12);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((25_gbps).value, 25.0);
  EXPECT_DOUBLE_EQ((1.5_gBps).value, 1.5);
  EXPECT_DOUBLE_EQ((35_ns).value, 35.0);
  EXPECT_DOUBLE_EQ((4_m).value, 4.0);
  EXPECT_DOUBLE_EQ((300_W).value, 300.0);
}

}  // namespace
}  // namespace photorack::phot
