#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "net/piggyback.hpp"
#include "sim/rng.hpp"

namespace photorack::net {

/// One reserved path segment (for release bookkeeping).
struct PathSegment {
  int from = 0;
  int to = 0;
  double gbps = 0.0;
};

/// Outcome of routing one flow demand.
struct RouteResult {
  double requested = 0.0;
  double direct_gbps = 0.0;    // satisfied on src->dst wavelengths
  double indirect_gbps = 0.0;  // satisfied via intermediates
  double blocked_gbps = 0.0;   // could not be placed
  int intermediates_used = 0;
  int stale_mispicks = 0;      // stale view chose a busy mid->dst leg
  int second_hops = 0;         // recovered by a second intermediate
  std::vector<PathSegment> segments;  // all reservations, for release()

  [[nodiscard]] double satisfied() const { return direct_gbps + indirect_gbps; }
  [[nodiscard]] bool fully_satisfied() const { return blocked_gbps <= 1e-9; }
};

/// Distributed Valiant-style indirect routing over the AWGR fabric (§IV-A,
/// Fig 4).  Per-source logic only: a source sees the true state of its own
/// outgoing wavelengths and the piggybacked (stale) state of everyone
/// else's.  Indirect paths are considered only when direct bandwidth does
/// not suffice; candidates are intermediates with a free src->mid wavelength
/// (true state) and a free mid->dst wavelength (stale state); one candidate
/// is chosen uniformly at random (Valiant).  A stale mis-pick is repaired by
/// the intermediate routing through a second intermediate using its own
/// current view; flows are pinned to their segments to preserve ordering.
struct RouterConfig {
  int max_intermediates_per_flow = 64;
  bool allow_second_hop = true;
};

class IndirectRouter {
 public:
  using Config = RouterConfig;

  IndirectRouter(WavelengthFabric& fabric, PiggybackView& view, std::uint64_t seed,
                 Config cfg = {});

  /// Reserve capacity for a flow of `gbps` from src to dst.
  [[nodiscard]] RouteResult route(int src, int dst, double gbps);

  /// Release every segment of a previous RouteResult.
  void release(const RouteResult& result);

  /// Cumulative statistics.
  [[nodiscard]] std::uint64_t flows_routed() const { return flows_; }
  [[nodiscard]] std::uint64_t total_mispicks() const { return mispicks_; }
  [[nodiscard]] std::uint64_t total_second_hops() const { return second_hops_; }

 private:
  WavelengthFabric* fabric_;
  PiggybackView* view_;
  sim::Rng rng_;
  Config cfg_;
  std::uint64_t flows_ = 0;
  std::uint64_t mispicks_ = 0;
  std::uint64_t second_hops_ = 0;

  /// Reserve up to `gbps` via one Valiant-chosen intermediate; returns the
  /// amount placed and appends segments.
  double try_indirect(int src, int dst, double gbps, RouteResult& out);
};

}  // namespace photorack::net
