#include "disagg/job_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photorack::disagg {
namespace {

JobSimConfig quick() {
  JobSimConfig cfg;
  cfg.sim_time = 300 * sim::kPsPerMs;
  cfg.arrivals_per_ms = 2.0;
  cfg.mean_duration = 30 * sim::kPsPerMs;
  return cfg;
}

TEST(JobScheduler, OffersJobs) {
  const auto report = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_GT(report.offered, 100u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_LE(report.accepted, report.offered);
}

TEST(JobScheduler, DeterministicForSeed) {
  const auto a = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), quick());
  const auto b = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), quick());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.mean_memory_utilization, b.mean_memory_utilization);
}

TEST(JobScheduler, StaticPolicyMaroonsResources) {
  const auto report = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                     workloads::UsageModel::cori(), quick());
  // The Section II-A picture: most of the held memory is idle.
  EXPECT_GT(report.mean_marooned_memory, 0.1);
}

TEST(JobScheduler, DisaggregatedMaroonsNothing) {
  const auto report = run_job_stream({}, AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_DOUBLE_EQ(report.mean_marooned_cpu, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_marooned_memory, 0.0);
}

TEST(JobScheduler, DisaggregationAcceptsAtLeastAsMuch) {
  const auto stat = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                   workloads::UsageModel::cori(), quick());
  const auto disagg = run_job_stream({}, AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), quick());
  EXPECT_GE(disagg.acceptance(), stat.acceptance() - 1e-9);
}

TEST(JobScheduler, EmptyStreamReportsDocumentedSentinelNotNan) {
  // Zero-length horizon: nothing is offered.  acceptance() must return the
  // documented sentinel (1.0, "rejected nothing"), never NaN.
  auto cfg = quick();
  cfg.sim_time = 0;
  const auto report = run_job_stream({}, AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), cfg);
  EXPECT_EQ(report.offered, 0u);
  EXPECT_EQ(report.accepted, 0u);
  EXPECT_DOUBLE_EQ(report.acceptance(), kEmptyStreamAcceptance);
  EXPECT_FALSE(std::isnan(report.acceptance()));
  EXPECT_DOUBLE_EQ(report.mean_cpu_utilization, 0.0);
}

TEST(JobScheduler, StepwiseAdvanceMatchesRunJobStream) {
  const auto cfg = quick();
  const auto expected = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                       workloads::UsageModel::cori(), cfg);

  JobStreamSim sim({}, AllocationPolicy::kStaticNodes, workloads::UsageModel::cori(),
                   cfg);
  for (sim::TimePs t = 11 * sim::kPsPerMs; t < cfg.sim_time; t += 37 * sim::kPsPerMs)
    sim.advance_to(t);
  sim.finish();
  const auto actual = sim.report();

  EXPECT_EQ(expected.offered, actual.offered);
  EXPECT_EQ(expected.accepted, actual.accepted);
  EXPECT_EQ(expected.mean_cpu_utilization, actual.mean_cpu_utilization);
  EXPECT_EQ(expected.mean_memory_utilization, actual.mean_memory_utilization);
  EXPECT_EQ(expected.mean_marooned_memory, actual.mean_marooned_memory);
}

TEST(JobScheduler, MidStreamReportAndAllocatorAreObservable) {
  JobStreamSim sim({}, AllocationPolicy::kStaticNodes, workloads::UsageModel::cori(),
                   quick());
  sim.advance_to(100 * sim::kPsPerMs);
  const auto mid = sim.report();
  EXPECT_GT(mid.offered, 0u);
  EXPECT_GT(sim.allocator().pools().cpus_used, 0);  // jobs are holding nodes
  sim.finish();
  EXPECT_GE(sim.report().offered, mid.offered);
  EXPECT_EQ(sim.allocator().live_allocations(), 0u);  // everything drained
}

TEST(JobScheduler, HeavierLoadLowersStaticAcceptance) {
  auto light = quick();
  auto heavy = quick();
  heavy.arrivals_per_ms = 20.0;
  const auto l = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), light);
  const auto h = run_job_stream({}, AllocationPolicy::kStaticNodes,
                                workloads::UsageModel::cori(), heavy);
  EXPECT_LT(h.acceptance(), l.acceptance() + 1e-9);
}

}  // namespace
}  // namespace photorack::disagg
