#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "sim/time.hpp"

namespace photorack::net {

/// Piggybacked occupancy broadcast (§IV-A).  Sources learn which wavelengths
/// other sources on the same AWGRs are using from state vectors piggybacked
/// on regular traffic, so routing decisions are made on a *stale* view.
///
/// Modeled as a periodically refreshed snapshot of the fabric's free direct
/// capacity: every `update_interval` the snapshot is brought current (one
/// one-hot status vector per source, 256 B per source per broadcast —
/// negligible bandwidth, which the report() quantifies).
class PiggybackView {
 public:
  PiggybackView(const WavelengthFabric& fabric, sim::TimePs update_interval);

  /// Free direct capacity src->dst as of the last refresh.
  [[nodiscard]] double stale_free_direct(int src, int dst) const;

  /// Refresh if `now` has passed the next update point.  Returns true when a
  /// refresh happened (counted as one broadcast round).
  bool maybe_refresh(sim::TimePs now);
  void force_refresh(sim::TimePs now);

  [[nodiscard]] sim::TimePs last_refresh() const { return last_refresh_; }
  [[nodiscard]] std::uint64_t broadcast_rounds() const { return rounds_; }

  /// Control-plane overhead: bytes broadcast per source per round (N
  /// wavelengths x 8 bits occupancy per wavelength, §IV-A's 256 B example)
  /// and the resulting aggregate bandwidth.
  [[nodiscard]] double bytes_per_source_per_round() const;
  [[nodiscard]] double control_gbps(double rounds_per_second) const;

 private:
  const WavelengthFabric* fabric_;
  sim::TimePs interval_;
  sim::TimePs last_refresh_ = 0;
  std::uint64_t rounds_ = 0;
  std::vector<double> snapshot_;  // [src*mcms+dst] free Gb/s at last refresh

  void take_snapshot();
};

}  // namespace photorack::net
