#include "phot/fec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photorack::phot {
namespace {

TEST(Fec, ZeroRawBerIsClean) {
  FecModel fec;
  const auto out = fec.evaluate(0.0);
  EXPECT_EQ(out.flit_error_prob, 0.0);
  EXPECT_EQ(out.effective_ber, 0.0);
  EXPECT_DOUBLE_EQ(out.bandwidth_loss, fec.config().fec_overhead_fraction);
}

TEST(Fec, QuadraticSuppression) {
  // The paper's worked example: needing two bursts per flit squares the
  // failure probability.
  FecModel fec;
  const auto out = fec.evaluate(1e-7);
  EXPECT_NEAR(out.post_fec_flit_fail, out.flit_error_prob * out.flit_error_prob,
              out.post_fec_flit_fail * 1e-9);
}

TEST(Fec, MonotoneInRawBer) {
  FecModel fec;
  double last = -1.0;
  for (const double ber : {1e-12, 1e-10, 1e-8, 1e-6, 1e-4}) {
    const auto out = fec.evaluate(ber);
    EXPECT_GT(out.effective_ber, last);
    last = out.effective_ber;
  }
}

TEST(Fec, MeetsMemoryTargetAtRealisticRawBer) {
  FecModel fec;
  EXPECT_TRUE(fec.meets_target(1e-9, 1e-18));
  EXPECT_TRUE(fec.meets_target(1e-6, 1e-18));  // Section III-C3's claim
}

TEST(Fec, MaxRawBerIsConsistent) {
  FecModel fec;
  const double limit = fec.max_raw_ber_for_target(1e-18);
  EXPECT_GT(limit, 0.0);
  EXPECT_TRUE(fec.meets_target(limit * 0.5, 1e-18));
}

TEST(Fec, BandwidthLossSmallAtLowBer) {
  FecModel fec;
  // "<0.1% bandwidth loss": at raw 1e-6, retransmissions are negligible and
  // the loss is dominated by the configured FEC overhead.
  const auto out = fec.evaluate(1e-6);
  EXPECT_LT(out.bandwidth_loss, 0.0015);
}

TEST(Fec, RetransmissionsGrowWithBer) {
  FecModel fec;
  EXPECT_GT(fec.evaluate(1e-4).retransmit_rate, fec.evaluate(1e-6).retransmit_rate);
}

TEST(Fec, LatencyMatchesPaperExamples) {
  FecModel fec;
  // ~10 ns serialization at 200 Gb/s plus 2-3 ns FEC; ~5 ns + FEC at 400.
  EXPECT_NEAR(fec.total_latency(Gbps{200}).value, 10.24 + 2.5, 0.01);
  EXPECT_NEAR(fec.total_latency(Gbps{400}).value, 5.12 + 2.5, 0.01);
}

TEST(Fec, LatencyDecreasesWithRate) {
  FecModel fec;
  EXPECT_GT(fec.total_latency(Gbps{100}).value, fec.total_latency(Gbps{800}).value);
}

TEST(Fit, ScalesWithRateAndBer) {
  EXPECT_DOUBLE_EQ(fit_rate(0.0, Gbps{100}), 0.0);
  const double base = fit_rate(1e-18, Gbps{100});
  EXPECT_DOUBLE_EQ(fit_rate(1e-18, Gbps{200}), 2.0 * base);
  EXPECT_DOUBLE_EQ(fit_rate(2e-18, Gbps{100}), 2.0 * base);
}

/// Property grid: for every raw BER in the practical range, the quadratic
/// relation and the ordering raw >= flit-fail >= escape hold, and effective
/// BER stays far below the memory target.
class FecBerGrid : public ::testing::TestWithParam<double> {};

TEST_P(FecBerGrid, OrderingAndTarget) {
  FecModel fec;
  const auto out = fec.evaluate(GetParam());
  EXPECT_GE(out.flit_error_prob, out.post_fec_flit_fail);
  EXPECT_GE(out.post_fec_flit_fail, out.crc_escape_prob);
  EXPECT_GE(out.crc_escape_prob, out.effective_ber);
  EXPECT_LE(out.effective_ber, 1e-18);
  EXPECT_GE(out.bandwidth_loss, fec.config().fec_overhead_fraction);
}

INSTANTIATE_TEST_SUITE_P(RawBers, FecBerGrid,
                         ::testing::Values(1e-15, 1e-12, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6));

TEST(Fit, PostCrcEscapesGiveTolerableFit) {
  // "the flit FIT rate (CRC escapes) is significantly less than one part
  // per billion": at raw 1e-6, the model's effective BER makes the FIT of a
  // full-rate wavelength negligible.
  FecModel fec;
  const auto out = fec.evaluate(1e-6);
  EXPECT_LT(fit_rate(out.effective_ber, Gbps{25}), 1.0);
}

}  // namespace
}  // namespace photorack::phot
