#include "gpusim/gpu_runner.hpp"

#include <stdexcept>
#include <utility>

namespace photorack::gpusim {

int AppProfile::total_launches() const {
  int n = 0;
  for (const auto& k : kernels) n += k.launches;
  return n;
}

namespace {

/// Shared launch-weighted aggregation: `kernel_eval(launch, index)` supplies
/// the per-shape KernelResult (full evaluation for run_app, miss-rate
/// replay for replay_app) and everything downstream is identical.
template <typename KernelEval>
AppResult run_app_impl(const AppProfile& app, const GpuConfig& gpu,
                       KernelEval&& kernel_eval) {
  if (app.kernels.empty()) throw std::invalid_argument("run_app: app has no kernels");
  AppResult out;
  out.name = app.name;

  double total_instrs = 0.0, total_l2_txn = 0.0, total_hbm_txn = 0.0, total_mem_instr = 0.0;
  for (std::size_t i = 0; i < app.kernels.size(); ++i) {
    const KernelLaunch& launch = app.kernels[i];
    KernelResult kr = kernel_eval(launch, i);
    const double n = launch.launches;
    out.time_us += kr.time_us * n;

    const double instrs = launch.profile.warp_instructions * n;
    const double l2_txn =
        launch.profile.warp_instructions * launch.profile.mem_fraction *
        launch.profile.sectors_per_access * n;
    total_instrs += instrs;
    total_mem_instr += instrs * launch.profile.mem_fraction;
    total_l2_txn += l2_txn;
    total_hbm_txn += l2_txn * kr.l2_miss_rate;
    out.kernel_results.push_back(std::move(kr));
  }
  out.predicted_cycles = out.time_us * 1e3 * gpu.freq_ghz;
  out.l2_miss_rate = total_l2_txn > 0 ? total_hbm_txn / total_l2_txn : 0.0;
  out.hbm_txn_per_instr = total_instrs > 0 ? total_hbm_txn / total_instrs : 0.0;
  out.mem_instr_fraction = total_instrs > 0 ? total_mem_instr / total_instrs : 0.0;
  return out;
}

}  // namespace

AppResult run_app(const AppProfile& app, const GpuConfig& gpu) {
  return run_app_impl(app, gpu, [&](const KernelLaunch& launch, std::size_t) {
    return evaluate_kernel(launch.profile, gpu);
  });
}

AppMissProfile record_app_profile(const AppProfile& app, const GpuConfig& gpu) {
  if (app.kernels.empty())
    throw std::invalid_argument("record_app_profile: app has no kernels");
  AppMissProfile profile;
  profile.app_name = app.name;
  profile.l2_bytes = gpu.l2_bytes;
  profile.l2_ways = gpu.l2_ways;
  profile.sector_bytes = gpu.sector_bytes;
  profile.kernel_l2_miss_rates.reserve(app.kernels.size());
  for (const auto& launch : app.kernels)
    profile.kernel_l2_miss_rates.push_back(simulate_l2_miss_rate(launch.profile, gpu));
  return profile;
}

AppResult replay_app(const AppProfile& app, const AppMissProfile& profile,
                     const GpuConfig& gpu) {
  if (profile.app_name != app.name ||
      profile.kernel_l2_miss_rates.size() != app.kernels.size())
    throw std::invalid_argument("replay_app: profile was recorded for a different app");
  if (profile.l2_bytes != gpu.l2_bytes || profile.l2_ways != gpu.l2_ways ||
      profile.sector_bytes != gpu.sector_bytes)
    throw std::invalid_argument(
        "replay_app: profile was recorded for a different L2 geometry");
  return run_app_impl(app, gpu, [&](const KernelLaunch& launch, std::size_t i) {
    return evaluate_kernel_with_miss_rate(launch.profile, gpu,
                                          profile.kernel_l2_miss_rates[i]);
  });
}

double app_slowdown(const AppProfile& app, GpuConfig gpu, double extra_ns) {
  // The L2 miss rates are latency-independent: record them once and replay
  // both latency points instead of simulating the L2 twice.
  gpu.extra_hbm_ns = 0.0;
  const AppMissProfile profile = record_app_profile(app, gpu);
  const AppResult base = replay_app(app, profile, gpu);
  gpu.extra_hbm_ns = extra_ns;
  const AppResult perturbed = replay_app(app, profile, gpu);
  if (base.time_us <= 0.0) throw std::logic_error("app_slowdown: empty baseline");
  return perturbed.time_us / base.time_us - 1.0;
}

}  // namespace photorack::gpusim
