// Config-registry suite: strict value parsing, EnumCodec folding, the
// path-addressable registry (lookup, suggestions, typed builds,
// validation), ConfigTree resolution/serialization, manifest JSON, and the
// round-trip contracts the redesign rests on: for every registered
// section, serialize(resolve(serialize(defaults))) is byte-identical, and
// random valid override sets resolve without throwing and re-serialize
// canonically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "config/bindings.hpp"
#include "config/manifest.hpp"
#include "config/param_registry.hpp"
#include "config/value_codec.hpp"
#include "core/rack_system.hpp"
#include "cosim/rack_cosim.hpp"
#include "cpusim/core.hpp"
#include "cpusim/runner.hpp"
#include "disagg/allocator.hpp"
#include "gpusim/gpu_config.hpp"
#include "net/fabric.hpp"
#include "rack/rack_builder.hpp"
#include "sim/rng.hpp"

namespace photorack {
namespace {

// ---------------------------------------------------------------------------
// Strict scalar parsing (the satellite contract: no trailing garbage).
// ---------------------------------------------------------------------------

TEST(StrictParse, DoubleAcceptsExactNumbersOnly) {
  EXPECT_DOUBLE_EQ(config::parse_double("35"), 35.0);
  EXPECT_DOUBLE_EQ(config::parse_double("-1.5e-3"), -1.5e-3);
  EXPECT_DOUBLE_EQ(config::parse_double(".5"), 0.5);
  for (const char* bad : {"35ns", "", " 5", "5 ", "0x1f", "inf", "nan", "1,5", "--3",
                          "-nan", "+nan", "-nan(abc)", "+inf", "-inf", "1e999"})
    EXPECT_THROW(config::parse_double(bad), std::invalid_argument) << bad;
}

TEST(StrictParse, IntegersRejectPartialParsesAndWraps) {
  EXPECT_EQ(config::parse_uint64("12345"), 12345u);
  EXPECT_EQ(config::parse_int64("-12"), -12);
  for (const char* bad : {"35ns", "", " 5", "3.5", "0x10", "-32", "+5"})
    EXPECT_THROW(config::parse_uint64(bad), std::invalid_argument) << bad;
  for (const char* bad : {"35ns", "", "3.5", "12 "})
    EXPECT_THROW(config::parse_int64(bad), std::invalid_argument) << bad;
}

TEST(StrictParse, BoolAcceptsCanonicalSpellings) {
  EXPECT_TRUE(config::parse_bool("true"));
  EXPECT_TRUE(config::parse_bool("1"));
  EXPECT_FALSE(config::parse_bool("false"));
  EXPECT_FALSE(config::parse_bool("0"));
  for (const char* bad : {"True", "yes", "on", ""})
    EXPECT_THROW(config::parse_bool(bad), std::invalid_argument) << bad;
}

// ---------------------------------------------------------------------------
// EnumCodec: the one definition of each enum's spelling.
// ---------------------------------------------------------------------------

TEST(EnumCodecs, CanonicalCodecsRoundTrip) {
  EXPECT_EQ(disagg::allocation_policy_codec().parse("disagg"),
            disagg::AllocationPolicy::kDisaggregated);
  EXPECT_EQ(disagg::allocation_policy_codec().name(
                disagg::AllocationPolicy::kStaticNodes),
            "static");
  EXPECT_EQ(cpusim::core_kind_codec().parse("ooo"), cpusim::CoreKind::kOutOfOrder);
  EXPECT_EQ(cpusim::core_kind_codec().parse("accel"),
            cpusim::CoreKind::kDecoupledAccelerator);
  EXPECT_EQ(rack::fabric_kind_codec().parse("electronic"),
            rack::FabricKind::kElectronicSwitches);
  EXPECT_TRUE(config::feedback_codec().parse("closed"));
  EXPECT_FALSE(config::feedback_codec().parse("open"));
  EXPECT_EQ(config::feedback_codec().name(true), "closed");
}

TEST(EnumCodecs, ParseErrorListsChoices) {
  try {
    (void)cpusim::core_kind_codec().parse("superscalar");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("inorder|ooo|accel"), std::string::npos)
        << e.what();
  }
  // The legacy wrappers route through the codec.
  EXPECT_THROW(disagg::parse_allocation_policy("dynamic"), std::invalid_argument);
  EXPECT_EQ(std::string(disagg::to_string(disagg::AllocationPolicy::kDisaggregated)),
            "disagg");
}

// ---------------------------------------------------------------------------
// Registry lookup, suggestions, typed builds.
// ---------------------------------------------------------------------------

TEST(Registry, KnowsEveryLayerSection) {
  const auto& reg = config::registry();
  for (const char* name :
       {"system", "rack", "mcm", "cpusim", "gpusim", "net", "cosim", "cluster",
        "phot"})
    EXPECT_NE(reg.find_section(name), nullptr) << name;
  EXPECT_GE(reg.params().size(), 60u);
}

TEST(Registry, UnknownPathSuggestsNearMisses) {
  try {
    (void)config::registry().at("cpusim.dram.extra_n");
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("cpusim.dram.extra_ns"), std::string::npos)
        << e.what();
  }
  // Forgetting the section prefix is the common slip; the bare leaf name
  // must surface the qualified path.
  try {
    (void)config::registry().at("warmup");
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("cpusim.warmup"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, BuildAppliesNestedOverridesInOrder) {
  const auto cfg = config::registry().build<cpusim::SimConfig>(
      "cpusim", {{"cpusim.core.kind", "ooo"},
                 {"cpusim.dram.extra_ns", "25"},
                 {"cpusim.dram.extra_ns", "85"},  // later override wins
                 {"cpusim.l1.ways", "4"}});
  EXPECT_EQ(cfg.core.kind, cpusim::CoreKind::kOutOfOrder);
  EXPECT_DOUBLE_EQ(cfg.dram.extra_ns, 85.0);
  EXPECT_EQ(cfg.hierarchy.l1.ways, 4);
}

TEST(Registry, BuildRejectsTypeMismatchAndForeignPaths) {
  EXPECT_THROW((void)config::registry().build<gpusim::GpuConfig>("cpusim"),
               std::logic_error);
  EXPECT_THROW((void)config::registry().build<cpusim::SimConfig>(
                   "cpusim", {{"gpusim.sms", "4"}}),
               std::out_of_range);
}

TEST(Registry, IntKnobsRejectWrappingValues) {
  // 2^32+1 would wrap to int 1 and sail through the [1, 4096] range check;
  // the manifest would then record a value the run never used.
  EXPECT_THROW((void)config::registry().build<rack::RackConfig>(
                   "rack", {{"rack.nodes", "4294967297"}}),
               std::invalid_argument);
  EXPECT_THROW((void)config::registry().build<rack::RackConfig>(
                   "rack", {{"rack.nodes", "-4294967295"}}),
               std::invalid_argument);
}

TEST(Registry, RangeValidationThrowsBeforeMutation) {
  EXPECT_THROW((void)config::registry().build<rack::RackConfig>(
                   "rack", {{"rack.nodes", "0"}}),
               std::out_of_range);
  EXPECT_THROW((void)config::registry().build<cosim::CosimConfig>(
                   "cosim", {{"cosim.idle_power_fraction", "1.5"}}),
               std::out_of_range);
}

TEST(Registry, ScaledBindingsConvertUnits) {
  const auto cfg = config::registry().build<cosim::CosimConfig>(
      "cosim", {{"cosim.horizon_ms", "40"}, {"cosim.duration_ms", "2.5"}});
  EXPECT_EQ(cfg.sim_time, 40 * sim::kPsPerMs);
  EXPECT_EQ(cfg.mean_duration, static_cast<sim::TimePs>(2.5 * sim::kPsPerMs));
  const auto net = config::registry().build<net::FabricSliceConfig>(
      "net", {{"net.gbps_per_wavelength", "32"}});
  EXPECT_DOUBLE_EQ(net.gbps_per_wavelength.value, 32.0);
}

// ---------------------------------------------------------------------------
// ConfigTree: eager validation, deterministic serialization.
// ---------------------------------------------------------------------------

TEST(Tree, SetValidatesEagerly) {
  config::ConfigTree tree(config::registry());
  tree.set("rack.nodes", "64");
  EXPECT_EQ(tree.value("rack.nodes"), "64");
  EXPECT_EQ(tree.value("mcm.fibers"), "32");  // untouched -> default
  EXPECT_THROW(tree.set("rack.nodez", "64"), std::out_of_range);
  EXPECT_THROW(tree.set("rack.nodes", "64x"), std::invalid_argument);
  EXPECT_THROW(tree.set("rack.nodes", "100000"), std::out_of_range);
  EXPECT_EQ(tree.build<rack::RackConfig>("rack").nodes, 64);
}

TEST(Tree, JsonIsSortedAndOrderInsensitive) {
  config::ConfigTree a(config::registry()), b(config::registry());
  a.set("rack.nodes", "64");
  a.set("mcm.fibers", "16");
  b.set("mcm.fibers", "16");
  b.set("rack.nodes", "64");
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"rack.nodes\":\"64\""), std::string::npos);
  // Sorted by path: mcm.* precedes rack.*.
  EXPECT_LT(a.to_json().find("\"mcm.fibers\""), a.to_json().find("\"rack.nodes\""));
}

TEST(Tree, BuildsARackSystemEndToEnd) {
  // The ported core::RackSystem ctor: an ordered --set list IS a design.
  config::ConfigTree electronic_tree(config::registry());
  electronic_tree.set("system.fabric", "electronic");
  EXPECT_DOUBLE_EQ(core::RackSystem(electronic_tree).added_memory_latency_ns(), 85.0);

  config::ConfigTree small_tree(config::registry());
  small_tree.set("rack.nodes", "64");
  const core::RackSystem small_rack(small_tree);
  EXPECT_DOUBLE_EQ(small_rack.added_memory_latency_ns(), 35.0);
  EXPECT_LT(small_rack.total_mcms(), 350);

  // phot.* assumption knobs reach power_overhead() through the tree ctor.
  config::ConfigTree cheap_tree(config::registry());
  cheap_tree.set("phot.transceiver_pair_energy", "0.275");
  const double half =
      core::RackSystem(cheap_tree).power_overhead().transceivers.value;
  const double full = core::RackSystem(config::ConfigTree(config::registry()))
                          .power_overhead()
                          .transceivers.value;
  EXPECT_NEAR(half * 2.0, full, 1e-6);
}

// ---------------------------------------------------------------------------
// Round-trip contracts over EVERY registered section.
// ---------------------------------------------------------------------------

TEST(RoundTrip, SerializeResolveSerializeIsByteIdenticalForEverySection) {
  for (const auto& section : config::registry().sections()) {
    const auto obj = section->make_default();
    // resolve(serialize(defaults)): feed every default string back through
    // its own parser...
    for (const auto& p : section->params()) p.apply(obj.get(), p.default_value);
    // ...and the re-serialization must not move a byte.
    for (const auto& p : section->params())
      EXPECT_EQ(p.read(obj.get()), p.default_value) << p.path;
  }
}

/// Draw a random valid value for a param from its declared type/range.
std::string random_valid_value(const config::ParamInfo& p, sim::Rng& rng) {
  if (p.numeric) {
    const double lo = std::isinf(p.bounds.lo) ? 0.0 : p.bounds.lo;
    const double hi = std::isinf(p.bounds.hi) ? lo + 1000.0 : p.bounds.hi;
    // A range with no integer in it (a strict fraction like (0,1)) can only
    // be a double-typed param: draw a fixed-precision decimal inside it.
    if (std::ceil(lo) > hi) return std::to_string(lo + 0.5 * (hi - lo));
    // Integral values satisfy every numeric codec (int, uint64, double,
    // unit-wrapped); ceil(lo) keeps fractional lower bounds in range, and
    // plain decimal formatting avoids scientific notation the integer
    // codecs rightly reject.
    return std::to_string(
        static_cast<long long>(std::floor(rng.uniform(std::ceil(lo), hi))));
  }
  if (p.type == "bool") return rng.bernoulli(0.5) ? "true" : "false";
  if (p.type == "string")
    return "trace_" + std::to_string(rng.below(1000)) + ".txt";
  if (p.type.rfind("enum(", 0) == 0) {
    // "enum(a|b|c)" -> pick one spelling.
    std::vector<std::string> choices;
    std::string cur;
    for (std::size_t i = 5; i + 1 < p.type.size(); ++i) {
      if (p.type[i] == '|') {
        choices.push_back(cur);
        cur.clear();
      } else {
        cur += p.type[i];
      }
    }
    choices.push_back(cur);
    return choices[rng.below(choices.size())];
  }
  ADD_FAILURE() << "unhandled param type " << p.type << " for " << p.path;
  return p.default_value;
}

TEST(RoundTrip, RandomValidOverrideSetsResolveAndReserializeCanonically) {
  sim::Rng rng(20260730);
  const auto& reg = config::registry();
  for (int trial = 0; trial < 50; ++trial) {
    for (const auto& section : reg.sections()) {
      const auto obj = section->make_default();
      for (const auto& p : section->params()) {
        if (!rng.bernoulli(0.5)) continue;
        const std::string value = random_valid_value(p, rng);
        ASSERT_NO_THROW(p.apply(obj.get(), value)) << p.path << "=" << value;
        // Canonical fixpoint: reading back and re-applying must not drift.
        const std::string read_back = p.read(obj.get());
        ASSERT_NO_THROW(p.apply(obj.get(), read_back)) << p.path << "=" << read_back;
        EXPECT_EQ(p.read(obj.get()), read_back) << p.path;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Manifest: deterministic, valid JSON, carries the full tree.
// ---------------------------------------------------------------------------

/// Minimal recursive-descent JSON validator — enough to guarantee strict
/// consumers can parse a manifest (CI additionally runs it through
/// python3 -m json.tool).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    return number_or_literal();
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\') {
        ++i_;
        continue;
      }
      if (s_[i_] == '"') {
        ++i_;
        return true;
      }
    }
    return false;
  }
  bool number_or_literal() {
    const std::size_t start = i_;
    while (i_ < s_.size() && std::string("-+.eE0123456789truefalsnl").find(s_[i_]) !=
                                 std::string::npos)
      ++i_;
    return i_ > start;
  }
  bool peek(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t'))
      ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(Manifest, JsonIsValidDeterministicAndComplete) {
  config::Manifest m;
  m.tool = "photorack_sweep";
  m.campaign = "fig6";
  m.base_seed = 7;
  m.axes = {{"bench", {"a \"quoted\" name", "b"}},
            {"cpusim.dram.extra_ns", {"25", "35"}},
            {"cpusim.warmup", {"1000"}}};
  m.overrides = {{"cpusim.warmup", {"1000"}}};

  const std::string a = m.to_json(config::registry());
  const std::string b = m.to_json(config::registry());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(JsonChecker(a).valid()) << a.substr(0, 200);
  EXPECT_NE(a.find("\"campaign\":\"fig6\""), std::string::npos);
  EXPECT_NE(a.find("\"base_seed\":7"), std::string::npos);
  // Single-valued registry-path axes resolve into the params tree; the
  // multi-valued sweep axis stays at its default there (its values are the
  // sweep itself, listed under "axes").
  EXPECT_NE(a.find("\"cpusim.warmup\":\"1000\""), std::string::npos);
  EXPECT_NE(a.find("\"cpusim.dram.extra_ns\":\"0\""), std::string::npos);
  // Every registered param appears.
  for (const config::ParamInfo* p : config::registry().params())
    EXPECT_NE(a.find(config::json_quote(p->path)), std::string::npos) << p->path;
}

TEST(Manifest, SnapshotIsCanonicalCacheKeyMaterial) {
  cpusim::SimConfig cfg;
  const std::string base = config::registry().snapshot("cpusim", cfg);
  cfg.hierarchy.llc.size_bytes *= 2;
  const std::string changed = config::registry().snapshot("cpusim", cfg);
  EXPECT_NE(base, changed);
  EXPECT_NE(base.find("cpusim.warmup=200000"), std::string::npos) << base;
  cfg.hierarchy.llc.size_bytes /= 2;
  EXPECT_EQ(config::registry().snapshot("cpusim", cfg), base);
}

}  // namespace
}  // namespace photorack
