#include "gpusim/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "cpusim/cache.hpp"
#include "sim/rng.hpp"

namespace photorack::gpusim {

namespace {

/// Deterministic seed from the kernel name (FNV-1a) so every evaluation of
/// the same kernel replays the same sampled stream.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Sampled L2 transaction stream for the kernel's access shape.
class SectorStream {
 public:
  SectorStream(const KernelProfile& k, std::uint64_t seed)
      : k_(&k), rng_(seed), sectors_(std::max<std::uint64_t>(1, k.working_set / 32)) {}

  std::uint64_t next() {
    const std::uint64_t sector_bytes = 32;
    switch (k_->pattern) {
      case GpuPattern::kStreaming: {
        const std::uint64_t addr = (cursor_ % sectors_) * sector_bytes;
        ++cursor_;
        return addr;
      }
      case GpuPattern::kStrided: {
        const std::uint64_t addr = pos_ % k_->working_set;
        pos_ += k_->stride_bytes;
        return addr;
      }
      case GpuPattern::kRandom:
        return rng_.below(sectors_) * sector_bytes;
      case GpuPattern::kTiled: {
        const std::uint64_t tile_sectors = std::max<std::uint64_t>(1, k_->tile_bytes / 32);
        // ~8 reuses per sector inside a tile before moving on.
        if (in_tile_ >= tile_sectors * 8) {
          in_tile_ = 0;
          tile_base_ = rng_.below(sectors_);
        }
        ++in_tile_;
        return ((tile_base_ + rng_.below(tile_sectors)) % sectors_) * sector_bytes;
      }
    }
    return 0;
  }

 private:
  const KernelProfile* k_;
  sim::Rng rng_;
  std::uint64_t sectors_;
  std::uint64_t cursor_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t tile_base_ = 0;
  std::uint64_t in_tile_ = 0;
};

}  // namespace

double simulate_l2_miss_rate(const KernelProfile& kernel, const GpuConfig& gpu,
                             std::uint64_t sample_transactions) {
  const double warp_mem_instrs = kernel.warp_instructions * kernel.mem_fraction;
  const double l2_transactions = warp_mem_instrs * kernel.sectors_per_access;

  cpusim::CacheConfig l2cfg;
  l2cfg.size_bytes = gpu.l2_bytes;
  l2cfg.ways = gpu.l2_ways;
  l2cfg.line_bytes = gpu.sector_bytes;
  cpusim::SetAssocCache l2(l2cfg);
  SectorStream stream(kernel, name_seed(kernel.name));

  // Pre-warm the L2 over the tail of the working set (capped at 2x the L2)
  // so L2-resident kernels measure steady-state hit rates rather than
  // compulsory misses; thrashing kernels are unaffected.  The fresh cache
  // plus a sector-stride walk makes the O(entries) closed form apply.
  {
    const std::uint64_t sector = gpu.sector_bytes;
    const std::uint64_t span = std::min(kernel.working_set, 2 * gpu.l2_bytes);
    const std::uint64_t first = kernel.working_set - span;
    l2.warm_sequential_lines(first / sector, (span + sector - 1) / sector);
    l2.reset_stats();
  }

  const auto sample = static_cast<std::uint64_t>(
      std::min<double>(static_cast<double>(sample_transactions), l2_transactions));
  const std::uint64_t warmup = sample / 4;
  for (std::uint64_t i = 0; i < warmup; ++i) l2.access(stream.next());
  l2.reset_stats();
  for (std::uint64_t i = warmup; i < sample; ++i) l2.access(stream.next());
  return sample > warmup ? l2.miss_rate() : 0.0;
}

KernelResult evaluate_kernel(const KernelProfile& kernel, const GpuConfig& gpu,
                             std::uint64_t sample_transactions) {
  return evaluate_kernel_with_miss_rate(
      kernel, gpu, simulate_l2_miss_rate(kernel, gpu, sample_transactions));
}

KernelResult evaluate_kernel_with_miss_rate(const KernelProfile& kernel,
                                            const GpuConfig& gpu, double l2_miss_rate) {
  KernelResult r;
  r.name = kernel.name;

  const double warp_mem_instrs = kernel.warp_instructions * kernel.mem_fraction;
  const double l2_transactions = warp_mem_instrs * kernel.sectors_per_access;
  r.l2_miss_rate = l2_miss_rate;

  const double hbm_transactions = l2_transactions * r.l2_miss_rate;
  r.hbm_txn_per_instr = hbm_transactions / kernel.warp_instructions;
  r.mem_instr_fraction = kernel.mem_fraction;

  // --- Three-way roofline. ---
  const double cycle_ns = 1.0 / gpu.freq_ghz;
  r.compute_time_us = kernel.warp_instructions / gpu.issue_per_cycle() * cycle_ns / 1e3;

  const double hbm_bytes = hbm_transactions * gpu.sector_bytes;
  const double deliverable_gBps = gpu.hbm_bandwidth_gBps * gpu.hbm_bandwidth_derate;
  r.bandwidth_time_us = hbm_bytes / deliverable_gBps / 1e3;  // B / (B/ns) -> ns

  const double concurrency = static_cast<double>(gpu.sms) * kernel.active_warps_per_sm *
                             kernel.outstanding_per_warp;
  const double avg_latency_ns =
      gpu.l2_hit_latency_ns * (1.0 - r.l2_miss_rate) +
      (gpu.hbm_latency_ns + gpu.extra_hbm_ns) * r.l2_miss_rate;
  r.latency_time_us = l2_transactions * avg_latency_ns / concurrency / 1e3;

  // Memory time: a smooth p-norm of the bandwidth and latency terms rather
  // than a hard max — real kernels transition gradually between the two
  // regimes, which is what gives Fig 9 its spread of intermediate
  // slowdowns instead of a knife-edge at the crossover.
  const double p = 4.0;
  const double mem_time = std::pow(std::pow(r.bandwidth_time_us, p) +
                                       std::pow(r.latency_time_us, p),
                                   1.0 / p);
  r.bound = r.latency_time_us > r.bandwidth_time_us ? "latency" : "bandwidth";
  double t = mem_time;
  if (r.compute_time_us > t) {
    t = r.compute_time_us;
    r.bound = "compute";
  }
  r.time_us = t;
  r.cycles = t * 1e3 * gpu.freq_ghz;
  return r;
}

}  // namespace photorack::gpusim
