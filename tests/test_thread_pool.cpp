#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace photorack::sim {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  // Regression: a throwing task used to escape the worker thread and
  // std::terminate the process; wait_idle() must surface it instead.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();  // the captured error was consumed; must not rethrow
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, OtherTasksStillRunWhenOneThrows) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.submit([] { throw std::logic_error("one bad task"); });
  for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, UnretrievedExceptionDoesNotTerminateOnDestruction) {
  {
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("dropped"); });
  }  // destructor joins without wait_idle(); the error is discarded
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); }, 4);
  SUCCEED();
}

TEST(ParallelFor, ParallelMatchesSerialWithPerIndexSeeds) {
  // The determinism contract: per-index seeding makes parallel results
  // identical to serial results.
  auto compute = [](std::size_t i) {
    Rng rng(1000 + i);
    double acc = 0;
    for (int k = 0; k < 100; ++k) acc += rng.uniform();
    return acc;
  };
  std::vector<double> serial(64), parallel(64);
  for (std::size_t i = 0; i < 64; ++i) serial[i] = compute(i);
  parallel_for(64, [&](std::size_t i) { parallel[i] = compute(i); }, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ExceptionPropagatesFromWorkers) {
  EXPECT_THROW(parallel_for(
                   64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelFor, ExceptionPropagatesFromSerialPath) {
  EXPECT_THROW(parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("boom"); }, 1),
               std::runtime_error);
}

TEST(ParallelFor, SingleWorkerFallback) {
  std::vector<int> order;
  parallel_for(16, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial path preserves order
}

}  // namespace
}  // namespace photorack::sim
