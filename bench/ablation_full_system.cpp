// Ablation (§I/§II): why *intra-rack*?  Full-system disaggregation pays
// hundreds of nanoseconds to microseconds of extra memory latency (the
// related work quotes 142 ns CXL prototypes up to order-of-magnitude
// network latencies).  Sweeping our CPU model across that range shows the
// cliff the paper's 35 ns design point avoids.
#include <iostream>

#include "core/report.hpp"
#include "cpusim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/thread_pool.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout,
                     "Ablation: intra-rack (35 ns) vs full-system disaggregation",
                     "Sections I, II and VI-D");

  const std::vector<double> extras = {25, 35, 85, 142, 250, 500, 1000};
  // A representative mix: one latency-sensitive, one streaming, one
  // cache-resident benchmark from each regime.
  const std::vector<std::string> picks = {
      "Rodinia/nw/default",         "PARSEC/streamcluster/large",
      "PARSEC/canneal/large",       "Rodinia/kmeans/default",
      "NAS/ft/C",                   "PARSEC/freqmine/large",
  };

  struct Row {
    std::string name;
    std::vector<double> slowdowns;
  };
  std::vector<Row> rows(picks.size());

  sim::parallel_for(picks.size(), [&](std::size_t i) {
    const workloads::CpuBenchmark* bench = nullptr;
    for (const auto& b : workloads::cpu_benchmarks())
      if (b.full_name() == picks[i]) bench = &b;
    if (bench == nullptr) return;
    rows[i].name = picks[i];
    cpusim::SimConfig cfg;
    cfg.warmup_instructions = 300'000;
    cfg.measured_instructions = 1'000'000;
    workloads::SyntheticTrace base_trace(bench->trace);
    const auto base = cpusim::run_simulation(base_trace, cfg);
    for (const double extra : extras) {
      cfg.dram.extra_ns = extra;
      workloads::SyntheticTrace t(bench->trace);
      rows[i].slowdowns.push_back(cpusim::slowdown(base, cpusim::run_simulation(t, cfg)));
    }
  });

  std::vector<std::string> headers = {"Benchmark (in-order)"};
  for (const double e : extras) headers.push_back("+" + sim::fmt_fixed(e, 0) + "ns");
  sim::Table table(headers);
  std::vector<double> mean_by_extra(extras.size(), 0.0);
  int counted = 0;
  for (const auto& row : rows) {
    if (row.slowdowns.empty()) continue;
    std::vector<std::string> cells = {row.name};
    for (std::size_t e = 0; e < extras.size(); ++e) {
      cells.push_back(sim::fmt_pct(row.slowdowns[e]));
      mean_by_extra[e] += row.slowdowns[e];
    }
    ++counted;
    table.add_row(std::move(cells));
  }
  std::vector<std::string> mean_cells = {"MEAN"};
  for (auto& m : mean_by_extra) {
    m /= counted;
    mean_cells.push_back(sim::fmt_pct(m));
  }
  table.add_row(std::move(mean_cells));
  table.print(std::cout);

  const double at35 = mean_by_extra[1];
  const double at500 = mean_by_extra[5];
  std::cout << "\npaper-vs-measured (qualitative, Section II):\n";
  // "Several times worse" — anything from ~4x up reproduces the cliff; the
  // linear latency model makes it ~extra/35 here.
  core::check_line(std::cout,
                   "full-system (500 ns) is several times worse than intra-rack",
                   at500 / at35 >= 4.0 ? at500 / at35 : 4.0, at500 / at35, 0.01);
  std::cout << "related work quotes ~30% slowdowns from +65-142 ns and far "
               "worse at network latencies; the sweep above shows the same "
               "cliff, which is the case for keeping disaggregation "
               "intra-rack (and photonic).\n";
  return 0;
}
