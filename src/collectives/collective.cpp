#include "collectives/collective.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::collectives {

const config::EnumCodec<Pattern>& pattern_codec() {
  static const config::EnumCodec<Pattern> codec{
      "collective pattern",
      {{"ring", Pattern::kRingAllReduce},
       {"alltoall", Pattern::kAllToAll},
       {"ps", Pattern::kParamServer},
       {"broadcast", Pattern::kBroadcast}}};
  return codec;
}

namespace {

std::vector<Phase> compile_ring(int ranks, double bytes) {
  // Reduce-scatter (ranks-1 rounds) then all-gather (ranks-1 rounds); every
  // round shifts one shard of bytes/ranks to the next rank on the ring.
  const double shard = bytes / ranks;
  std::vector<Phase> program(2 * (ranks - 1));
  for (Phase& phase : program) {
    phase.flows.reserve(ranks);
    for (int i = 0; i < ranks; ++i) {
      phase.flows.push_back({i, (i + 1) % ranks, shard});
    }
  }
  return program;
}

std::vector<Phase> compile_alltoall(int ranks, double bytes) {
  // Rotation schedule: round k pairs every rank with the one k hops ahead,
  // so each round is a perfect matching of disjoint ordered pairs.
  const double shard = bytes / (ranks - 1);
  std::vector<Phase> program(ranks - 1);
  for (int k = 1; k < ranks; ++k) {
    Phase& phase = program[k - 1];
    phase.flows.reserve(ranks);
    for (int i = 0; i < ranks; ++i) {
      phase.flows.push_back({i, (i + k) % ranks, shard});
    }
  }
  return program;
}

std::vector<Phase> compile_param_server(int ranks, double bytes) {
  // Workers push full gradients into rank 0 (in-cast), then rank 0 fans the
  // reduced model back out (out-cast).
  std::vector<Phase> program(2);
  program[0].flows.reserve(ranks - 1);
  program[1].flows.reserve(ranks - 1);
  for (int i = 1; i < ranks; ++i) {
    program[0].flows.push_back({i, 0, bytes});
    program[1].flows.push_back({0, i, bytes});
  }
  return program;
}

std::vector<Phase> compile_broadcast(int ranks, double bytes) {
  // Recursive doubling: after phase p, ranks [0, 2^(p+1)) hold the payload.
  std::vector<Phase> program;
  for (int covered = 1; covered < ranks; covered *= 2) {
    Phase phase;
    const int senders = std::min(covered, ranks - covered);
    phase.flows.reserve(senders);
    for (int i = 0; i < senders; ++i) {
      phase.flows.push_back({i, i + covered, bytes});
    }
    program.push_back(std::move(phase));
  }
  return program;
}

}  // namespace

std::vector<Phase> compile(Pattern pattern, int ranks, double bytes) {
  if (ranks < 1) {
    throw std::invalid_argument("collective ranks must be >= 1, got " +
                                std::to_string(ranks));
  }
  if (!(bytes >= 0.0)) {
    throw std::invalid_argument("collective bytes must be >= 0");
  }
  if (ranks == 1) return {};
  switch (pattern) {
    case Pattern::kRingAllReduce:
      return compile_ring(ranks, bytes);
    case Pattern::kAllToAll:
      return compile_alltoall(ranks, bytes);
    case Pattern::kParamServer:
      return compile_param_server(ranks, bytes);
    case Pattern::kBroadcast:
      return compile_broadcast(ranks, bytes);
  }
  throw std::invalid_argument("unhandled collective pattern");
}

double lower_bound_seconds(Pattern pattern, int ranks, double bytes, double gbps) {
  if (!(gbps > 0.0)) {
    throw std::invalid_argument("collective bandwidth must be > 0 Gb/s");
  }
  double seconds = 0.0;
  for (const Phase& phase : compile(pattern, ranks, bytes)) {
    double slowest = 0.0;
    for (const PhaseFlow& flow : phase.flows) {
      slowest = std::max(slowest, flow.bytes * 8.0 / (gbps * 1e9));
    }
    seconds += slowest;
  }
  return seconds;
}

}  // namespace photorack::collectives
