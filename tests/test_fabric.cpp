#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "rack/rack_builder.hpp"

namespace photorack::net {
namespace {

rack::AwgrFabricPlan paper_plan() {
  return rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr;
}

TEST(Fabric, ConstructionFromPaperPlan) {
  WavelengthFabric fabric(350, paper_plan());
  EXPECT_EQ(fabric.mcms(), 350);
  EXPECT_EQ(fabric.parallel_awgrs(), 6);
  EXPECT_DOUBLE_EQ(fabric.gbps_per_wavelength(), 25.0);
}

TEST(Fabric, EveryPairHasAtLeastFiveDirectLambdas) {
  WavelengthFabric fabric(350, paper_plan());
  int min_lambdas = 1000;
  for (int s = 0; s < 350; s += 7) {
    for (int d = 0; d < 350; d += 11) {
      if (s == d) continue;
      min_lambdas = std::min(min_lambdas, fabric.direct_lambdas(s, d));
    }
  }
  EXPECT_GE(min_lambdas, 5);
}

TEST(Fabric, NoSelfWavelengths) {
  WavelengthFabric fabric(350, paper_plan());
  EXPECT_EQ(fabric.direct_lambdas(5, 5), 0);
}

TEST(Fabric, AllocateReleasesRoundTrip) {
  WavelengthFabric fabric(350, paper_plan());
  const double granted = fabric.allocate_direct(1, 2, 60.0);
  EXPECT_DOUBLE_EQ(granted, 60.0);
  EXPECT_NEAR(fabric.free_direct(1, 2), fabric.direct_capacity(1, 2) - 60.0, 1e-9);
  fabric.release_direct(1, 2, 60.0);
  EXPECT_NEAR(fabric.free_direct(1, 2), fabric.direct_capacity(1, 2), 1e-9);
}

TEST(Fabric, AllocationCapsAtCapacity) {
  WavelengthFabric fabric(350, paper_plan());
  const double cap = fabric.direct_capacity(3, 4);
  const double granted = fabric.allocate_direct(3, 4, cap + 500.0);
  EXPECT_DOUBLE_EQ(granted, cap);
  EXPECT_NEAR(fabric.free_direct(3, 4), 0.0, 1e-9);
}

TEST(Fabric, PairsAreIndependent) {
  WavelengthFabric fabric(350, paper_plan());
  fabric.allocate_direct(1, 2, 100.0);
  EXPECT_NEAR(fabric.free_direct(2, 1), fabric.direct_capacity(2, 1), 1e-9);
  EXPECT_NEAR(fabric.free_direct(1, 3), fabric.direct_capacity(1, 3), 1e-9);
}

TEST(Fabric, OverReleaseThrows) {
  WavelengthFabric fabric(350, paper_plan());
  fabric.allocate_direct(1, 2, 10.0);
  EXPECT_THROW(fabric.release_direct(1, 2, 20.0), std::logic_error);
}

TEST(Fabric, UtilizationTracksAllocation) {
  WavelengthFabric fabric(350, paper_plan());
  EXPECT_DOUBLE_EQ(fabric.utilization(), 0.0);
  fabric.allocate_direct(0, 1, 125.0);
  EXPECT_GT(fabric.utilization(), 0.0);
  fabric.release_direct(0, 1, 125.0);
  EXPECT_NEAR(fabric.utilization(), 0.0, 1e-12);
}

TEST(Fabric, RejectsTooManyMcms) {
  EXPECT_THROW(WavelengthFabric(371, paper_plan()), std::invalid_argument);
}

TEST(Fabric, PartialPortCoversSubsetOfDestinations) {
  WavelengthFabric fabric(350, paper_plan());
  // The 6th AWGR carries fewer wavelengths than there are MCMs: some pairs
  // get 6 direct lambdas, others only the guaranteed 5.
  bool saw5 = false, saw6 = false;
  for (int d = 1; d < 350; ++d) {
    const int n = fabric.direct_lambdas(0, d);
    if (n == 5) saw5 = true;
    if (n == 6) saw6 = true;
  }
  EXPECT_TRUE(saw5);
  EXPECT_TRUE(saw6);
}

}  // namespace
}  // namespace photorack::net
