#include "cpusim/prefetch.hpp"

#include <cstdlib>

namespace photorack::cpusim {

StridePrefetcher::StridePrefetcher(PrefetchConfig cfg) : cfg_(cfg) {
  table_.resize(static_cast<std::size_t>(cfg_.streams));
}

void StridePrefetcher::reset() {
  for (auto& s : table_) s = Stream{};
  tick_ = issued_ = trained_ = 0;
}

StridePrefetcher::Stream* StridePrefetcher::find_stream(std::uint64_t addr) {
  // A miss belongs to a stream when it lands a small multiple of the
  // stream's stride ahead.  The multiple must reach past the prefetch
  // degree: once prefetching works, the next *miss* of the stream is
  // degree+1 strides away, and it must still match.
  const std::int64_t max_jump = cfg_.degree + 4;
  for (auto& s : table_) {
    if (!s.valid) continue;
    const auto delta = static_cast<std::int64_t>(addr) -
                       static_cast<std::int64_t>(s.last_addr);
    if (s.stride != 0) {
      if (delta != 0 && delta % s.stride == 0) {
        const std::int64_t k = delta / s.stride;
        if (k >= 1 && k <= max_jump) return &s;
      }
    } else if (std::llabs(delta) < (1 << 20)) {
      return &s;  // untrained stream in the same neighbourhood
    }
  }
  return nullptr;
}

StridePrefetcher::Stream* StridePrefetcher::victim() {
  Stream* best = &table_[0];
  for (auto& s : table_) {
    if (!s.valid) return &s;
    if (s.last_use < best->last_use) best = &s;
  }
  return best;
}

std::vector<std::uint64_t> StridePrefetcher::on_miss(std::uint64_t addr) {
  std::vector<std::uint64_t> out;
  if (!cfg_.enabled) return out;
  ++tick_;

  Stream* s = find_stream(addr);
  if (s == nullptr) {
    s = victim();
    *s = Stream{};
    s->valid = true;
    s->last_addr = addr;
    s->last_use = tick_;
    return out;
  }

  const auto delta =
      static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(s->last_addr);
  const bool consistent = delta != 0 && s->stride != 0 && delta % s->stride == 0 &&
                          delta / s->stride >= 1 &&
                          delta / s->stride <= cfg_.degree + 4;
  if (consistent) {
    if (s->confidence < cfg_.train_threshold) {
      ++s->confidence;
      if (s->confidence == cfg_.train_threshold) ++trained_;
    }
  } else {
    if (s->confidence >= cfg_.train_threshold && trained_ > 0) --trained_;
    s->stride = delta;
    s->confidence = delta != 0 ? 1 : 0;
  }
  s->last_addr = addr;
  s->last_use = tick_;

  if (s->confidence >= cfg_.train_threshold && s->stride != 0) {
    out.reserve(static_cast<std::size_t>(cfg_.degree));
    for (int i = 0; i < cfg_.degree; ++i) {
      const std::int64_t ahead = s->stride * (cfg_.distance + i);
      const auto target = static_cast<std::int64_t>(addr) + ahead;
      if (target >= 0) out.push_back(static_cast<std::uint64_t>(target));
    }
    issued_ += out.size();
  }
  return out;
}

}  // namespace photorack::cpusim
