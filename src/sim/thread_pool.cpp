#include "sim/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace photorack::sim {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t workers) {
  if (n == 0) return;
  workers = std::max<std::size_t>(1, std::min(workers, n));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          return;  // this worker stops; others drain their remaining indices
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace photorack::sim
