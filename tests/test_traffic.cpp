#include "traffic/arrival.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace photorack::traffic {
namespace {

ArrivalConfig config_of(ArrivalKind kind) {
  ArrivalConfig cfg;
  cfg.kind = kind;
  return cfg;
}

/// Mean inter-arrival gap over `n` draws, advancing a simulated clock the
/// way RackCosim does.
double mean_gap_ms(ArrivalProcess& process, sim::Rng& rng, int n) {
  sim::TimePs now = 0;
  sim::RunningStats gaps;
  for (int i = 0; i < n; ++i) {
    const sim::TimePs gap = process.next_gap(now, rng);
    gaps.add(static_cast<double>(gap) / static_cast<double>(sim::kPsPerMs));
    now += gap;
  }
  return gaps.mean();
}

// ---------------------------------------------------------------------------
// Poisson: byte-identical to the historical scaled-gap layout.
// ---------------------------------------------------------------------------

TEST(PoissonArrivals, ReproducesScaledGapStreamByteForByte) {
  // The process must consume exactly one exponential(1.0) per gap and apply
  // the same arithmetic the pre-engine RackCosim inlined; two generators
  // cloned from one seed must agree on every single gap.
  const double rate = 4.0;
  sim::Rng process_rng(123);
  sim::Rng reference_rng(123);
  auto process = make_arrival_process(config_of(ArrivalKind::kPoisson), rate);
  sim::TimePs now = 0;
  for (int i = 0; i < 10000; ++i) {
    const double unit = reference_rng.exponential(1.0);
    const auto expected = static_cast<sim::TimePs>(
        unit * static_cast<double>(sim::kPsPerMs) / rate);
    const sim::TimePs got = process->next_gap(now, process_rng);
    ASSERT_EQ(got, expected) << "gap " << i;
    now += got;
  }
}

TEST(PoissonArrivals, MeanRateMatchesConfig) {
  sim::Rng rng(7);
  auto process = make_arrival_process(config_of(ArrivalKind::kPoisson), 8.0);
  // 1M draws: the sample mean of Exp(1/8 ms) is within ~0.4% at 3 sigma.
  EXPECT_NEAR(mean_gap_ms(*process, rng, 1'000'000), 1.0 / 8.0, 0.005 * (1.0 / 8.0));
}

// ---------------------------------------------------------------------------
// MMPP: same long-run mean rate, strictly burstier.
// ---------------------------------------------------------------------------

TEST(MmppArrivals, LongRunMeanRateMatchesBaseRate) {
  sim::Rng rng(19);
  auto process = make_arrival_process(config_of(ArrivalKind::kMmpp), 4.0);
  // Count arrivals over a long window rather than averaging gaps: gap means
  // are biased toward the ON state (more gaps happen there by construction);
  // the rate contract is arrivals per unit TIME.
  sim::TimePs now = 0;
  std::uint64_t arrivals = 0;
  // ~4000 on/off cycles (default dwells 10/90 ms): the rate estimator's
  // noise is dominated by cycle-count fluctuations, ~1.3% std here.
  const sim::TimePs window = 400'000 * sim::kPsPerMs;
  while (now < window) {
    now += process->next_gap(now, rng);
    ++arrivals;
  }
  const double rate = static_cast<double>(arrivals) /
                      (static_cast<double>(now) / static_cast<double>(sim::kPsPerMs));
  EXPECT_NEAR(rate, 4.0, 0.15);
}

TEST(MmppArrivals, BurstierThanPoisson) {
  // Index of dispersion of counts over fixed windows: ~1 for Poisson, > 1
  // for any on/off modulated stream worth the name.
  auto dispersion = [](ArrivalProcess& process, sim::Rng& rng) {
    const sim::TimePs window = 10 * sim::kPsPerMs;
    sim::RunningStats counts;
    sim::TimePs now = 0;
    sim::TimePs next = process.next_gap(now, rng);
    for (int w = 0; w < 4000; ++w) {
      const sim::TimePs end = (static_cast<sim::TimePs>(w) + 1) * window;
      double in_window = 0;
      while (now + next < end) {
        now += next;
        next = process.next_gap(now, rng);
        ++in_window;
      }
      counts.add(in_window);
    }
    return counts.variance() / counts.mean();
  };
  sim::Rng rng_poisson(31), rng_mmpp(31);
  auto poisson = make_arrival_process(config_of(ArrivalKind::kPoisson), 4.0);
  auto mmpp = make_arrival_process(config_of(ArrivalKind::kMmpp), 4.0);
  const double d_poisson = dispersion(*poisson, rng_poisson);
  const double d_mmpp = dispersion(*mmpp, rng_mmpp);
  EXPECT_NEAR(d_poisson, 1.0, 0.2);
  EXPECT_GT(d_mmpp, 2.0 * d_poisson);
}

// ---------------------------------------------------------------------------
// Diurnal: same mean rate, rate actually modulated across the period.
// ---------------------------------------------------------------------------

TEST(DiurnalArrivals, LongRunMeanRateMatchesBaseRate) {
  sim::Rng rng(23);
  auto process = make_arrival_process(config_of(ArrivalKind::kDiurnal), 4.0);
  sim::TimePs now = 0;
  std::uint64_t arrivals = 0;
  // Integer number of periods so the sinusoid integrates to zero.
  const sim::TimePs window = 250 * (200 * sim::kPsPerMs);
  while (now < window) {
    now += process->next_gap(now, rng);
    ++arrivals;
  }
  const double rate = static_cast<double>(arrivals) /
                      (static_cast<double>(now) / static_cast<double>(sim::kPsPerMs));
  EXPECT_NEAR(rate, 4.0, 0.15);
}

TEST(DiurnalArrivals, PeakHalfOfPeriodOutdrawsTroughHalf) {
  sim::Rng rng(29);
  auto process = make_arrival_process(config_of(ArrivalKind::kDiurnal), 4.0);
  const sim::TimePs period = 200 * sim::kPsPerMs;  // default diurnal_period
  std::uint64_t in_first_half = 0, in_second_half = 0;
  sim::TimePs now = 0;
  while (now < 200 * period) {
    now += process->next_gap(now, rng);
    (now % period < period / 2 ? in_first_half : in_second_half)++;
  }
  // rate(t) = 4 * (1 + 0.75 sin): sin > 0 over the first half-period.
  EXPECT_GT(static_cast<double>(in_first_half),
            1.5 * static_cast<double>(in_second_half));
}

// ---------------------------------------------------------------------------
// Trace replay: deterministic, RNG-free, exhaustion-safe.
// ---------------------------------------------------------------------------

TEST(TraceArrivals, ReplaysTimestampsExactlyThenExhausts) {
  sim::Rng rng(1);
  auto process = make_trace_process(
      {1 * sim::kPsPerMs, 3 * sim::kPsPerMs, 3 * sim::kPsPerMs, 10 * sim::kPsPerMs});
  sim::TimePs now = 0;
  EXPECT_EQ(process->next_gap(now, rng), 1 * sim::kPsPerMs);
  now = 1 * sim::kPsPerMs;
  EXPECT_EQ(process->next_gap(now, rng), 2 * sim::kPsPerMs);
  now = 3 * sim::kPsPerMs;
  EXPECT_EQ(process->next_gap(now, rng), 0);  // simultaneous arrival
  EXPECT_EQ(process->next_gap(now, rng), 7 * sim::kPsPerMs);
  now = 10 * sim::kPsPerMs;
  EXPECT_EQ(process->next_gap(now, rng), kNoMoreArrivals);
  EXPECT_EQ(process->next_gap(now, rng), kNoMoreArrivals);  // stays exhausted
  // The sentinel must survive the cosim's `sim_time - now` comparison
  // without overflow: it is far below max even after adding any horizon.
  EXPECT_LT(kNoMoreArrivals, std::numeric_limits<sim::TimePs>::max() / 2);
}

TEST(TraceArrivals, LoadsFileSkipsCommentsRejectsGarbage) {
  const std::string good = ::testing::TempDir() + "arrivals_good.txt";
  {
    std::ofstream out(good);
    out << "# arrival timestamps in ms\n"
           "0.5\n"
           "\n"
           "  2.25  \n"
           "10\n";
  }
  const auto times = load_arrival_trace(good);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], sim::kPsPerMs / 2);
  EXPECT_EQ(times[1], 2 * sim::kPsPerMs + sim::kPsPerMs / 4);
  EXPECT_EQ(times[2], 10 * sim::kPsPerMs);
  std::remove(good.c_str());

  const std::string bad = ::testing::TempDir() + "arrivals_bad.txt";
  {
    std::ofstream out(bad);
    out << "1.5\n2.5ms\n";
  }
  EXPECT_THROW(load_arrival_trace(bad), std::runtime_error);
  std::remove(bad.c_str());

  EXPECT_THROW(load_arrival_trace("/nonexistent/trace.txt"), std::runtime_error);
}

TEST(TraceArrivals, RejectsUnsortedAndNegativeTimestamps) {
  EXPECT_THROW(make_trace_process({5 * sim::kPsPerMs, 1 * sim::kPsPerMs}),
               std::invalid_argument);
  EXPECT_THROW(make_trace_process({-1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Factory validation.
// ---------------------------------------------------------------------------

TEST(ArrivalFactory, RejectsInvalidShapes) {
  EXPECT_THROW(make_arrival_process(config_of(ArrivalKind::kPoisson), 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_arrival_process(config_of(ArrivalKind::kPoisson), -4.0),
               std::invalid_argument);

  ArrivalConfig mmpp = config_of(ArrivalKind::kMmpp);
  mmpp.burst_rate_mult = 0.5;  // ON state slower than base: not a burst
  EXPECT_THROW(make_arrival_process(mmpp, 4.0), std::invalid_argument);
  mmpp = config_of(ArrivalKind::kMmpp);
  mmpp.burst_fraction = 0.0;
  EXPECT_THROW(make_arrival_process(mmpp, 4.0), std::invalid_argument);
  mmpp = config_of(ArrivalKind::kMmpp);
  mmpp.burst_rate_mult = 8.0;
  mmpp.burst_fraction = 0.2;  // 8 * 0.2 > 1: OFF rate would be negative
  EXPECT_THROW(make_arrival_process(mmpp, 4.0), std::invalid_argument);

  ArrivalConfig diurnal = config_of(ArrivalKind::kDiurnal);
  diurnal.diurnal_amplitude = 1.0;  // rate would touch zero-crossing issues
  EXPECT_THROW(make_arrival_process(diurnal, 4.0), std::invalid_argument);
  diurnal = config_of(ArrivalKind::kDiurnal);
  diurnal.diurnal_period = 0;
  EXPECT_THROW(make_arrival_process(diurnal, 4.0), std::invalid_argument);

  ArrivalConfig trace = config_of(ArrivalKind::kTrace);
  EXPECT_THROW(make_arrival_process(trace, 4.0), std::invalid_argument);
}

TEST(ArrivalFactory, CodecRoundTripsEveryKind) {
  const auto& codec = arrival_kind_codec();
  for (const auto& [name, kind] : codec.items()) {
    EXPECT_EQ(codec.parse(name), kind);
    EXPECT_EQ(codec.name(kind), name);
  }
  EXPECT_THROW(codec.parse("fractal"), std::invalid_argument);
}

}  // namespace
}  // namespace photorack::traffic
