#pragma once

#include <span>
#include <string>

#include "phot/units.hpp"
#include "sim/time.hpp"

namespace photorack::phot {

/// Switching families considered in §III-D / Table II.
enum class SwitchKind {
  kMachZehnder,     // spatial, 32x32, co-integration friendly
  kMemsActuated,    // spatial, 240x240, high drive voltage
  kMicroringWss,    // wavelength-selective, projected 128x128 / 256
  kCascadedAwgr,    // passive all-to-all, 370x370, no reconfiguration
};

[[nodiscard]] const char* to_string(SwitchKind kind);

/// A row of Table II plus the behavioural parameters the simulator needs.
struct OpticalSwitchTech {
  SwitchKind kind;
  std::string name;
  int radix = 0;                    // ports
  int wavelengths_per_port = 1;
  Gbps gbps_per_wavelength{25};
  Decibel insertion_loss{0};
  Decibel crosstalk{0};
  bool requires_reconfiguration = true;   // AWGRs are passive
  bool requires_central_scheduler = true; // spatial/WSS need global view
  sim::TimePs reconfiguration_time = 0;   // 0 for AWGR
  std::string reference;

  /// Full per-port bandwidth.
  [[nodiscard]] Gbps port_bandwidth() const {
    return Gbps{gbps_per_wavelength.value * wavelengths_per_port};
  }
  /// Aggregate switch capacity.
  [[nodiscard]] Gbps aggregate_bandwidth() const {
    return Gbps{port_bandwidth().value * radix};
  }
};

/// The four demonstrated switch technologies of Table II (MZI 32x32,
/// MEMS 240x240, microring 8x8 scaled to 128x128, cascaded AWGR 370x370).
[[nodiscard]] std::span<const OpticalSwitchTech> table2_switches();

[[nodiscard]] const OpticalSwitchTech& switch_by_kind(SwitchKind kind);

/// The three §V-B study configurations (Table IV): cascaded AWGR 370/370,
/// spatial treated as 256x256 with 256 wavelengths, wave-selective likewise.
/// All at 25 Gb/s per wavelength.
struct StudySwitchConfig {
  std::string name;
  SwitchKind kind;
  int radix;
  int wavelengths_per_port;
  Gbps gbps_per_wavelength{25};
};

[[nodiscard]] std::span<const StudySwitchConfig> table4_study_configs();

/// §V-B merges spatial and wave-selective switches into one 256-port,
/// 256-wavelength model for the rack design; this is that configuration.
[[nodiscard]] StudySwitchConfig merged_spatial_wss_config();

}  // namespace photorack::phot
