#include "net/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::net {

CentralizedScheduler::CentralizedScheduler(const rack::SpatialFabricPlan& plan, Config cfg)
    : plan_(&plan), cfg_(cfg), ports_in_use_(static_cast<std::size_t>(plan.switches), 0) {}

CentralizedScheduler::Grant CentralizedScheduler::request_circuit(int src, int dst,
                                                                  sim::TimePs now) {
  Grant g;
  // Shared switches between the endpoints.
  const auto& cs = plan_->connections[static_cast<std::size_t>(src)];
  const auto& cd = plan_->connections[static_cast<std::size_t>(dst)];
  int best = -1;
  for (int sw : cs) {
    if (std::find(cd.begin(), cd.end(), sw) == cd.end()) continue;
    if (ports_in_use_[static_cast<std::size_t>(sw)] + 2 > cfg_.ports_per_switch) continue;
    if (best < 0 || ports_in_use_[static_cast<std::size_t>(sw)] <
                        ports_in_use_[static_cast<std::size_t>(best)])
      best = sw;
  }
  if (best < 0) return g;  // denied

  // Serialize through the scheduler, then pay reconfiguration.
  const sim::TimePs start = std::max(now, scheduler_free_at_);
  const sim::TimePs decided = start + cfg_.decision_latency;
  scheduler_free_at_ = decided;
  g.granted = true;
  g.switch_index = best;
  g.ready_at = decided + cfg_.reconfiguration_time;
  g.waited = g.ready_at - now;
  ports_in_use_[static_cast<std::size_t>(best)] += 2;
  ++reconfigs_;
  latency_ns_.add(sim::to_ns(g.waited));
  return g;
}

void CentralizedScheduler::release_circuit(int /*src*/, int /*dst*/, int switch_index) {
  auto& used = ports_in_use_.at(static_cast<std::size_t>(switch_index));
  if (used < 2) throw std::logic_error("release_circuit: nothing to release");
  used -= 2;
}

}  // namespace photorack::net
