#pragma once

#include <vector>

#include "config/enum_codec.hpp"

namespace photorack::collectives {

/// Collective-communication patterns of multi-accelerator training traffic
/// (Kumar et al.: chip-to-chip photonic connectivity for ML servers moves
/// exactly this traffic onto the DWDM fabric the paper builds for HPC).
enum class Pattern {
  kRingAllReduce,  ///< reduce-scatter + all-gather around a logical ring
  kAllToAll,       ///< every rank sends a distinct shard to every other rank
  kParamServer,    ///< in-cast to rank 0, then out-cast back to the workers
  kBroadcast,      ///< binary-tree doubling from rank 0
};

/// Canonical CLI/axis/registry spelling: "ring"|"alltoall"|"ps"|"broadcast".
[[nodiscard]] const config::EnumCodec<Pattern>& pattern_codec();

/// One flow of one phase, in RANK space: src/dst index into the collective's
/// accelerator list (the runner maps ranks onto fabric endpoints).
struct PhaseFlow {
  int src = 0;
  int dst = 0;
  double bytes = 0.0;

  friend bool operator==(const PhaseFlow&, const PhaseFlow&) = default;
};

/// One bulk-synchronous phase: all flows open together, and the phase ends
/// when the SLOWEST flow finishes (the straggler gate of synchronous
/// training) — only then does the next phase start.
struct Phase {
  std::vector<PhaseFlow> flows;

  friend bool operator==(const Phase&, const Phase&) = default;
};

/// Compile a collective over `ranks` accelerators moving `bytes` of gradient
/// into its deterministic multi-phase flow program:
///
///   ring       2(ranks-1) phases of ranks flows i -> (i+1) % ranks, each
///              carrying bytes/ranks (reduce-scatter then all-gather)
///   alltoall   ranks-1 phases; phase k sends i -> (i+k) % ranks, each
///              carrying bytes/(ranks-1)
///   ps         2 phases: workers -> rank 0 (full gradient each), then
///              rank 0 -> workers
///   broadcast  ceil(log2 ranks) doubling phases from rank 0, full payload
///
/// ranks == 1 compiles to the empty program (nothing to exchange); ranks < 1
/// or bytes < 0 throws std::invalid_argument.
[[nodiscard]] std::vector<Phase> compile(Pattern pattern, int ranks, double bytes);

/// Closed-form uncontended time of the compiled program: the sum over phases
/// of the slowest flow's serialization time at `gbps` per flow.  For the
/// ring this is exactly 2(ranks-1)/ranks * bytes*8 / (gbps*1e9) — the
/// classic ring all-reduce lower bound the acceptance test pins.
[[nodiscard]] double lower_bound_seconds(Pattern pattern, int ranks, double bytes,
                                         double gbps);

/// The "ml" registry section: the training-job stream the rack co-simulation
/// admits alongside (or instead of) the paper's HPC mix.  Disabled by
/// default; with enabled == false (or mix_fraction == 0) the co-sim draws
/// nothing from this struct and every output byte matches a build without
/// the feature.
struct MlConfig {
  bool enabled = false;
  Pattern pattern = Pattern::kRingAllReduce;
  /// Accelerators (collective ranks) per training job.
  int accelerators = 8;
  /// Gradient payload all-reduced per training step, in MB (1e6 bytes).
  double gradient_mb = 64.0;
  /// Training steps per job; each is a compute segment plus one collective.
  int steps = 4;
  /// Per-step compute segment before the collective, in ms.
  double compute_ms = 2.0;
  /// Fraction of the arrival stream that is ML jobs (1 = pure ML rack).
  double mix_fraction = 1.0;
  /// Per-flow bandwidth demand of a collective phase, in Gb/s.
  double demand_gbps = 25.0;
  /// Achieved-rate multiplier while the electronic-baseline fabric is
  /// modeled (fig12-style comparison; applied only when `electronic`).
  double electronic_derate = 0.25;
  /// Per-step compute jitter amplitude: the step's compute segment is
  /// stretched by max over ranks of (1 + U[0,1) * jitter_frac) — the
  /// bulk-synchronous straggler model.  0 = perfectly balanced workers.
  double jitter_frac = 0.0;
  /// Model the electronic baseline instead of the photonic fabric.  Not a
  /// registry knob: campaigns set it from their free "fabric" axis.
  bool electronic = false;
};

}  // namespace photorack::collectives
