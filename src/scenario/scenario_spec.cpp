#include "scenario/scenario_spec.hpp"

#include <limits>
#include <stdexcept>

#include "config/value_codec.hpp"
#include "sim/rng.hpp"

namespace photorack::scenario {

std::string ScenarioSpec::id() const {
  std::string out = campaign;
  out += '[';
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (i) out += ',';
    out += axes[i].first;
    out += '=';
    out += axes[i].second;
  }
  out += ']';
  return out;
}

std::uint64_t ScenarioSpec::derived_seed() const {
  // FNV-1a over the identity string, then splitmix64 to spread the bits.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t mix = h ^ (base_seed * 0x9e3779b97f4a7c15ULL);
  return sim::splitmix64(mix);
}

bool ScenarioSpec::has(const std::string& axis) const {
  for (const auto& [name, value] : axes)
    if (name == axis) return true;
  return false;
}

const std::string& ScenarioSpec::at(const std::string& axis) const {
  for (const auto& [name, value] : axes)
    if (name == axis) return value;
  throw std::out_of_range("ScenarioSpec: no axis '" + axis + "' in " + id());
}

double ScenarioSpec::num(const std::string& axis) const {
  const std::string& v = at(axis);
  try {
    return config::parse_double(v);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("ScenarioSpec: axis '" + axis + "' value '" + v +
                                "' is not numeric");
  }
}

std::uint64_t ScenarioSpec::uint(const std::string& axis) const {
  const std::string& v = at(axis);
  try {
    return config::parse_uint64(v);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("ScenarioSpec: axis '" + axis + "' value '" + v +
                                "' is not an unsigned integer");
  }
}

int ScenarioSpec::integer(const std::string& axis) const {
  const std::uint64_t v = uint(axis);
  if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
    throw std::invalid_argument("ScenarioSpec: axis '" + axis + "' value '" +
                                at(axis) + "' overflows int");
  return static_cast<int>(v);
}

}  // namespace photorack::scenario
