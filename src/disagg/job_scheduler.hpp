#pragma once

#include <cstdint>
#include <functional>

#include "disagg/allocator.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "workloads/usage.hpp"

namespace photorack::disagg {

/// Job-stream comparison of static-node vs disaggregated allocation: jobs
/// with usage-distribution-shaped demands arrive Poisson, hold, and leave.
/// The interesting outputs are acceptance ratio and how much capacity the
/// static policy maroons (§I / §II-A motivation).
struct JobSimConfig {
  double arrivals_per_ms = 4.0;
  sim::TimePs mean_duration = 20 * sim::kPsPerMs;
  sim::TimePs sim_time = 2000 * sim::kPsPerMs;
  std::uint64_t seed = 7;
  int max_job_nodes = 16;  // job breadth drawn in [1, max]
};

/// Acceptance reported for a stream that offered no jobs at all.  An empty
/// stream rejects nothing, so the vacuous value is 1.0 — chosen explicitly
/// (rather than 0/0 = NaN) so downstream aggregation over sweeps that
/// include a degenerate horizon stays NaN-free.  Callers that must tell
/// "accepted everything" from "offered nothing" check `offered` directly.
inline constexpr double kEmptyStreamAcceptance = 1.0;

/// Streaming tail summary of one job-stream metric, read off a
/// sim::QuantileSketch.  When count == 0 the quantiles report 0.0 — a
/// deliberate sentinel (an empty stream has no tail) kept NaN-free for the
/// same sweep-aggregation reason as kEmptyStreamAcceptance.
struct TailStats {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

struct JobSimReport {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  double mean_cpu_utilization = 0.0;
  double mean_gpu_utilization = 0.0;
  double mean_memory_utilization = 0.0;
  double mean_marooned_cpu = 0.0;     // fraction of rack CPUs idle-but-held
  double mean_marooned_memory = 0.0;  // fraction of rack memory idle-but-held

  // --- tail telemetry (sketch-backed, O(1) memory at any job count) ---
  TailStats wait_ms;   // queue wait: placement time - arrival time, in ms
  TailStats slowdown;  // (wait + actual hold) / base hold; >= 1
  TailStats fct_ms;    // per-flow completion time, in ms

  // --- censoring (set by simulators with a horizon; see RackCosim) ---
  /// Jobs admitted to the backlog but not yet placed when the report was
  /// taken.  Their wait-so-far IS included in wait_ms (right-censored
  /// lower bounds), so a backed-up queue cannot hide behind survivorship.
  std::uint64_t censored_waiting = 0;
  /// Jobs placed and still holding resources when the report was taken
  /// (their recorded wait/slowdown/fct are final, not censored).
  std::uint64_t censored_running = 0;

  /// Event-loop activity of the simulator that produced this report
  /// (always-on sim::EventQueue counters; zero for reports assembled
  /// outside an event loop).
  sim::EventQueueStats events;

  [[nodiscard]] double acceptance() const {
    return offered ? static_cast<double>(accepted) / static_cast<double>(offered)
                   : kEmptyStreamAcceptance;
  }
};

/// Job-stream telemetry shared by every simulator that offers the §II-A
/// stream (JobStreamSim and cosim::RackCosim): the offered/accepted
/// counters, the PASTA utilization probes taken at each arrival, and the
/// JobSimReport assembly.  One definition keeps the simulators' reports
/// field-for-field comparable — the controlled closed-vs-open comparisons
/// depend on it.
class JobStreamStats {
 public:
  void offer() { ++offered_; }
  void accept() { ++accepted_; }
  /// Sample the allocator state (call at every arrival — PASTA probe).
  void sample(const RackAllocator& allocator);
  /// Tail telemetry, recorded when the value becomes known (wait and
  /// slowdown at placement, one fct per flow at admission).  Sketch-backed:
  /// O(1) memory regardless of job count, and exact to merge, so the
  /// reported quantiles do not depend on how a campaign was sharded.
  void record_wait(double ms) { wait_ms_.add(ms); }
  void record_slowdown(double x) { slowdown_.add(x); }
  void record_fct(double ms) { fct_ms_.add(ms); }
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] JobSimReport report() const;
  /// Fold another stream's telemetry into this one (counter sums, mean and
  /// sketch merges).  Sketch merges are exact and order-independent, so a
  /// cluster report aggregated rack-by-rack carries the same tails as one
  /// stream that saw every job — sharding never moves a quantile.
  void merge(const JobStreamStats& other);

 private:
  std::uint64_t offered_ = 0;
  std::uint64_t accepted_ = 0;
  sim::RunningStats cpu_util_, gpu_util_, mem_util_, marooned_cpu_, marooned_mem_;
  sim::QuantileSketch wait_ms_, slowdown_, fct_ms_;
};

/// Stepwise job-stream simulation against one rack policy.  advance_to(t)
/// processes arrivals and departures strictly before t, finish() drains the
/// departures of jobs still holding resources after the arrival horizon, and
/// report() snapshots the statistics at any point in between.  The rack
/// co-simulation engine layers fabric traffic on the same event loop; this
/// class is the open-loop (no contention feedback) core.
class JobStreamSim {
 public:
  JobStreamSim(const rack::RackConfig& rack, AllocationPolicy policy,
               const workloads::UsageModel& usage, JobSimConfig cfg = {});

  // Queued event handlers capture `this`; a copied or moved instance would
  // leave them pointing at the original object.
  JobStreamSim(const JobStreamSim&) = delete;
  JobStreamSim& operator=(const JobStreamSim&) = delete;

  /// Process every event strictly before time `t`.
  void advance_to(sim::TimePs t);
  /// Drain all remaining events (job departures past the arrival horizon).
  void finish();

  [[nodiscard]] sim::TimePs now() const { return queue_.now(); }
  [[nodiscard]] JobSimReport report() const;
  [[nodiscard]] const RackAllocator& allocator() const { return allocator_; }

 private:
  RackAllocator allocator_;
  workloads::UsageModel usage_;
  JobSimConfig cfg_;
  rack::RackConfig rack_;
  sim::EventQueue queue_;
  sim::Rng arrival_rng_;
  sim::Rng job_rng_;
  JobStreamStats stats_;

  [[nodiscard]] JobRequest make_request();
  void schedule_next_arrival();
};

/// Run the same deterministic job stream against one rack policy
/// (run-to-completion convenience over JobStreamSim).
[[nodiscard]] JobSimReport run_job_stream(const rack::RackConfig& rack,
                                          AllocationPolicy policy,
                                          const workloads::UsageModel& usage,
                                          const JobSimConfig& cfg = {});

/// One §II-A-shaped job demand: breadth in nodes plus the request it implies.
struct JobDraw {
  JobRequest request;
  int breadth = 1;
};

/// Draw one job's demands from the usage distributions, in a fixed RNG
/// order.  Shared by JobStreamSim and cosim::RackCosim — both simulators
/// MUST offer the same demand shape or their comparisons stop being
/// controlled, so this is the single definition.
[[nodiscard]] JobDraw draw_job_request(sim::Rng& rng, const workloads::UsageModel& usage,
                                       const rack::NodeConfig& node, int max_job_nodes);

}  // namespace photorack::disagg
