// Capacity planner: given production-style usage distributions, compare a
// static-node rack with a disaggregated rack on the same job stream, then
// print the iso-performance provisioning plan (Section VI-E).
#include <iostream>

#include "disagg/iso_perf.hpp"
#include "disagg/job_scheduler.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  const auto usage = workloads::UsageModel::cori();
  const rack::RackConfig rack_cfg;

  disagg::JobSimConfig cfg;
  const auto static_report =
      disagg::run_job_stream(rack_cfg, disagg::AllocationPolicy::kStaticNodes, usage, cfg);
  const auto disagg_report = disagg::run_job_stream(
      rack_cfg, disagg::AllocationPolicy::kDisaggregated, usage, cfg);

  std::cout << "job-stream comparison (" << static_report.offered << " jobs offered)\n";
  sim::Table table({"Metric", "Static nodes", "Disaggregated"});
  table.add_row({"acceptance", sim::fmt_pct(static_report.acceptance()),
                 sim::fmt_pct(disagg_report.acceptance())});
  table.add_row({"mean CPU utilization", sim::fmt_pct(static_report.mean_cpu_utilization),
                 sim::fmt_pct(disagg_report.mean_cpu_utilization)});
  table.add_row({"mean memory utilization",
                 sim::fmt_pct(static_report.mean_memory_utilization),
                 sim::fmt_pct(disagg_report.mean_memory_utilization)});
  table.add_row({"marooned CPUs", sim::fmt_pct(static_report.mean_marooned_cpu), "0%"});
  table.add_row(
      {"marooned memory", sim::fmt_pct(static_report.mean_marooned_memory), "0%"});
  table.print(std::cout);

  const auto iso = disagg::iso_performance();
  std::cout << "\niso-performance plan (Section VI-E):\n";
  sim::Table it({"Modules", "Baseline", "Disaggregated"});
  it.add_row({"CPUs", sim::fmt_int(iso.baseline.cpus), sim::fmt_int(iso.disaggregated.cpus)});
  it.add_row(
      {"GPUs", sim::fmt_int(iso.baseline.gpus), sim::fmt_int(iso.disaggregated.gpus)});
  it.add_row(
      {"DDR4", sim::fmt_int(iso.baseline.ddr4), sim::fmt_int(iso.disaggregated.ddr4)});
  it.add_row(
      {"NICs", sim::fmt_int(iso.baseline.nics), sim::fmt_int(iso.disaggregated.nics)});
  it.add_row({"Total", sim::fmt_int(iso.baseline.total()),
              sim::fmt_int(iso.disaggregated.total())});
  it.print(std::cout);
  std::cout << "module reduction: " << sim::fmt_pct(iso.reduction_fraction)
            << " (paper: ~44%)\n";

  const double mem_reduction = disagg::derive_memory_reduction(usage);
  std::cout << "usage-derived memory reduction at rack p99: "
            << sim::fmt_fixed(mem_reduction, 1) << "x\n";
  return 0;
}
