#pragma once

#include <cstdint>

namespace photorack::sim {

/// Simulation time in integer picoseconds.  Integer time keeps event ordering
/// exact and results bit-reproducible across platforms and optimization
/// levels; one picosecond resolves every clock and link rate in this study.
using TimePs = std::int64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerS = 1'000'000'000'000;

[[nodiscard]] constexpr TimePs from_ns(double ns) {
  return static_cast<TimePs>(ns * static_cast<double>(kPsPerNs));
}

[[nodiscard]] constexpr double to_ns(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerNs);
}

[[nodiscard]] constexpr TimePs from_us(double us) {
  return static_cast<TimePs>(us * static_cast<double>(kPsPerUs));
}

[[nodiscard]] constexpr double to_us(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}

[[nodiscard]] constexpr double to_s(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerS);
}

}  // namespace photorack::sim
