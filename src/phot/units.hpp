#pragma once

#include <cmath>
#include <compare>

namespace photorack::phot {

/// Strong unit wrappers.  These are deliberately minimal: the value is a
/// double, arithmetic within a unit works, and cross-unit conversions are
/// explicit functions so a Gb/s can never silently mix with a GB/s (a unit
/// slip that matters a lot in this paper: link rates are Gb/s, memory
/// bandwidths GB/s).
template <class Tag>
struct Unit {
  double value = 0.0;

  constexpr Unit() = default;
  constexpr explicit Unit(double v) : value(v) {}

  constexpr auto operator<=>(const Unit&) const = default;

  constexpr Unit operator+(Unit o) const { return Unit{value + o.value}; }
  constexpr Unit operator-(Unit o) const { return Unit{value - o.value}; }
  constexpr Unit operator*(double k) const { return Unit{value * k}; }
  constexpr Unit operator/(double k) const { return Unit{value / k}; }
  constexpr double operator/(Unit o) const { return value / o.value; }
  constexpr Unit& operator+=(Unit o) {
    value += o.value;
    return *this;
  }
  constexpr Unit& operator-=(Unit o) {
    value -= o.value;
    return *this;
  }
};

struct GbpsTag {};
struct GBpsTag {};
struct WattsTag {};
struct PjPerBitTag {};
struct NsTag {};
struct DbTag {};
struct MetersTag {};

using Gbps = Unit<GbpsTag>;          // gigabits per second
using GBps = Unit<GBpsTag>;          // gigabytes per second
using Watts = Unit<WattsTag>;
using PjPerBit = Unit<PjPerBitTag>;  // picojoules per bit
using Nanoseconds = Unit<NsTag>;
using Decibel = Unit<DbTag>;
using Meters = Unit<MetersTag>;

[[nodiscard]] constexpr GBps to_gbytes(Gbps g) { return GBps{g.value / 8.0}; }
[[nodiscard]] constexpr Gbps to_gbits(GBps g) { return Gbps{g.value * 8.0}; }

/// Energy-rate product: pJ/bit × Gb/s = mW; returns watts.
[[nodiscard]] constexpr Watts power_of(PjPerBit e, Gbps bw) {
  return Watts{e.value * bw.value * 1e-3};
}

/// dB <-> linear ratio helpers for loss/crosstalk budgets.
[[nodiscard]] inline double db_to_linear(Decibel d) { return std::pow(10.0, d.value / 10.0); }
[[nodiscard]] inline Decibel linear_to_db(double ratio) { return Decibel{10.0 * std::log10(ratio)}; }

namespace literals {
constexpr Gbps operator""_gbps(long double v) { return Gbps{static_cast<double>(v)}; }
constexpr Gbps operator""_gbps(unsigned long long v) { return Gbps{static_cast<double>(v)}; }
constexpr GBps operator""_gBps(long double v) { return GBps{static_cast<double>(v)}; }
constexpr GBps operator""_gBps(unsigned long long v) { return GBps{static_cast<double>(v)}; }
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Nanoseconds operator""_ns(long double v) { return Nanoseconds{static_cast<double>(v)}; }
constexpr Nanoseconds operator""_ns(unsigned long long v) {
  return Nanoseconds{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_m(unsigned long long v) { return Meters{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace photorack::phot
