#include "rack/mcm.hpp"

#include <cmath>
#include <stdexcept>

namespace photorack::rack {

const McmTypePlan& McmPlan::plan_for(ChipType t) const {
  for (const auto& p : types)
    if (p.type == t) return p;
  throw std::out_of_range("McmPlan: no plan for chip type");
}

McmPlan pack_rack(const RackConfig& rack, const McmConfig& mcm) {
  McmPlan plan;
  plan.mcm = mcm;
  const double escape = mcm.escape().value;

  for (ChipType t : kAllChipTypes) {
    const ChipSpec spec = rack.node.chip_spec(t);
    McmTypePlan p;
    p.type = t;
    p.per_chip_escape = spec.escape_bandwidth;
    int fit = static_cast<int>(std::floor(escape / spec.escape_bandwidth.value));
    if (fit < 1)
      throw std::runtime_error("MCM escape cannot satisfy a single chip of this type");
    if (spec.max_per_mcm > 0) fit = std::min(fit, spec.max_per_mcm);
    p.chips_per_mcm = fit;
    const int total = rack.total_chips(t);
    p.mcm_count = (total + fit - 1) / fit;
    p.per_chip_share = phot::GBps{escape / fit};
    plan.total_mcms += p.mcm_count;
    plan.types.push_back(p);
  }
  return plan;
}

}  // namespace photorack::rack
