#include "workloads/cpu_profiles.hpp"
#include "workloads/gpu_profiles.hpp"

#include <gtest/gtest.h>

#include <set>

namespace photorack::workloads {
namespace {

TEST(CpuProfiles, SixtyOneRuns) {
  // 10 PARSEC x 3 inputs + 8 NAS x 3 classes + 7 Rodinia = 61 runs.
  EXPECT_EQ(cpu_benchmarks().size(), 61u);
}

TEST(CpuProfiles, TwentyFiveDistinctBenchmarks) {
  std::set<std::string> names;
  for (const auto& b : cpu_benchmarks()) names.insert(b.suite + "/" + b.name);
  EXPECT_EQ(names.size(), 25u);  // the abstract's "25 CPU benchmarks"
}

TEST(CpuProfiles, SuiteBreakdown) {
  EXPECT_EQ(benchmarks_of_suite("PARSEC").size(), 30u);
  EXPECT_EQ(benchmarks_of_suite("NAS").size(), 24u);
  EXPECT_EQ(benchmarks_of_suite("Rodinia").size(), 7u);
  EXPECT_THROW(benchmarks_of_suite("SPEC"), std::out_of_range);
}

TEST(CpuProfiles, InputLabelsPerSuite) {
  for (const auto& b : benchmarks_of_suite("PARSEC"))
    EXPECT_TRUE(b.input == "small" || b.input == "medium" || b.input == "large");
  for (const auto& b : benchmarks_of_suite("NAS"))
    EXPECT_TRUE(b.input == "A" || b.input == "B" || b.input == "C");
  for (const auto& b : benchmarks_of_suite("Rodinia")) EXPECT_EQ(b.input, "default");
}

TEST(CpuProfiles, WorkingSetsGrowWithInputSize) {
  for (const auto* name : {"blackscholes", "canneal", "streamcluster", "x264"}) {
    std::uint64_t small = 0, large = 0;
    for (const auto& b : benchmarks_of_suite("PARSEC")) {
      if (b.name != name) continue;
      if (b.input == "small") small = b.trace.working_set;
      if (b.input == "large") large = b.trace.working_set;
    }
    EXPECT_LT(small, large) << name;
  }
}

TEST(CpuProfiles, SeedsAreUniquePerRun) {
  std::set<std::uint64_t> seeds;
  for (const auto& b : cpu_benchmarks()) seeds.insert(b.trace.seed);
  EXPECT_EQ(seeds.size(), cpu_benchmarks().size());
}

TEST(CpuProfiles, PatternWeightsArePositive) {
  for (const auto& b : cpu_benchmarks()) {
    ASSERT_FALSE(b.trace.patterns.empty()) << b.full_name();
    for (const auto& p : b.trace.patterns) EXPECT_GT(p.weight, 0.0) << b.full_name();
    EXPECT_GT(b.trace.mem_fraction, 0.0);
    EXPECT_LT(b.trace.mem_fraction, 0.6);
  }
}

TEST(CpuProfiles, IntersectionNamesExistInBothRegistries) {
  const auto names = rodinia_cpu_gpu_intersection();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    bool in_cpu = false;
    for (const auto& b : benchmarks_of_suite("Rodinia")) in_cpu |= (b.name == name);
    EXPECT_TRUE(in_cpu) << name;
    bool in_gpu = false;
    for (const auto& a : gpu_apps()) in_gpu |= (a.name == name);
    EXPECT_TRUE(in_gpu) << name;
  }
}

TEST(GpuProfiles, TwentyFourApps) { EXPECT_EQ(gpu_apps().size(), 24u); }

TEST(GpuProfiles, SuiteBreakdown) {
  EXPECT_EQ(gpu_apps_of_suite("Rodinia").size(), 11u);
  EXPECT_EQ(gpu_apps_of_suite("Polybench").size(), 10u);
  EXPECT_EQ(gpu_apps_of_suite("Tango").size(), 3u);
  EXPECT_THROW(gpu_apps_of_suite("MLPerf"), std::out_of_range);
}

TEST(GpuProfiles, ExactlyThePapersKernelLaunchCount) {
  EXPECT_EQ(total_gpu_kernel_launches(), 1525);
}

TEST(GpuProfiles, EveryAppHasKernels) {
  for (const auto& a : gpu_apps()) {
    EXPECT_FALSE(a.kernels.empty()) << a.name;
    for (const auto& k : a.kernels) {
      EXPECT_GT(k.launches, 0) << a.name;
      EXPECT_GT(k.profile.warp_instructions, 0.0) << a.name;
      EXPECT_GT(k.profile.active_warps_per_sm, 0) << a.name;
    }
  }
}

TEST(GpuProfiles, TangoAppsPresent) {
  const auto tango = gpu_apps_of_suite("Tango");
  std::set<std::string> names;
  for (const auto& a : tango) names.insert(a.name);
  EXPECT_TRUE(names.contains("AlexNet"));
  EXPECT_TRUE(names.contains("GRU"));
  EXPECT_TRUE(names.contains("LSTM"));
}

}  // namespace
}  // namespace photorack::workloads
