#pragma once

#include <cstdint>
#include <vector>

namespace photorack::cpusim {

/// Stride prefetcher (reference-prediction-table style).  §VII argues that
/// latency-tolerant compute — prefetching among the techniques cited
/// [117][134][137] — makes disaggregation more attractive; this is the
/// mechanism the ablation bench switches on.
///
/// The table tracks recent demand-miss addresses in a small set of
/// streams; two consecutive matching deltas lock a stream, after which
/// every miss issues `degree` prefetches `distance` strides ahead.
struct PrefetchConfig {
  bool enabled = false;
  int streams = 16;     // tracked concurrent streams
  int degree = 8;       // prefetches issued per triggering miss
  int distance = 1;     // how many strides ahead the first prefetch lands
  /// A stream must see this many consistent deltas before it trains.
  int train_threshold = 2;
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(PrefetchConfig cfg = {});

  /// Observe a demand miss; returns the addresses to prefetch (empty when
  /// disabled or untrained).
  [[nodiscard]] std::vector<std::uint64_t> on_miss(std::uint64_t addr);

  [[nodiscard]] const PrefetchConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t trained_streams() const { return trained_; }
  void reset();

 private:
  struct Stream {
    std::uint64_t last_addr = 0;
    std::int64_t stride = 0;
    int confidence = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
  };

  PrefetchConfig cfg_;
  std::vector<Stream> table_;
  std::uint64_t tick_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t trained_ = 0;

  [[nodiscard]] Stream* find_stream(std::uint64_t addr);
  [[nodiscard]] Stream* victim();
};

}  // namespace photorack::cpusim
