#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace photorack::core {
namespace {

TEST(Report, BannerContainsTitleAndReference) {
  std::ostringstream os;
  print_banner(os, "Table I", "Section III-B");
  EXPECT_NE(os.str().find("Table I"), std::string::npos);
  EXPECT_NE(os.str().find("Section III-B"), std::string::npos);
}

TEST(Report, CheckLineOkWithinTolerance) {
  std::ostringstream os;
  check_line(os, "metric", 1.0, 1.2, 0.5);
  EXPECT_NE(os.str().find("[ok]"), std::string::npos);
  EXPECT_EQ(os.str().find("[drift]"), std::string::npos);
}

TEST(Report, CheckLineDriftBeyondTolerance) {
  std::ostringstream os;
  check_line(os, "metric", 1.0, 2.0, 0.5);
  EXPECT_NE(os.str().find("[drift]"), std::string::npos);
}

TEST(Report, CheckLineHandlesZeroPaperValue) {
  std::ostringstream os;
  check_line(os, "zero target", 0.0, 0.0, 0.5);
  EXPECT_NE(os.str().find("[ok]"), std::string::npos);
  std::ostringstream os2;
  check_line(os2, "zero target off", 0.0, 0.7, 0.5);
  EXPECT_NE(os2.str().find("[drift]"), std::string::npos);
}

TEST(Report, CheckLinePrintsBothValues) {
  std::ostringstream os;
  check_line(os, "metric", 0.15, 0.149, 0.1);
  EXPECT_NE(os.str().find("paper=0.15"), std::string::npos);
  EXPECT_NE(os.str().find("measured=0.149"), std::string::npos);
}

}  // namespace
}  // namespace photorack::core
