#include "obs/trace.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace photorack::obs {

namespace {

/// Shortest round-trip decimal of a double (std::to_chars), locale-free and
/// deterministic — trace bytes must not depend on the host's locale.
std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

/// Sim picoseconds -> Trace-Event-Format microseconds.
std::string fmt_ts(sim::TimePs ps) {
  return fmt_double(static_cast<double>(ps) / static_cast<double>(sim::kPsPerUs));
}

/// JSON string literal; trace names are ASCII identifiers but escape anyway.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

constexpr const char* kTrackNames[] = {"sim", "jobs", "flows", "power", "faults"};

}  // namespace

void TraceRecorder::push(Event e) {
  ++recorded_;
  if (ring_capacity_ != 0 && events_.size() == ring_capacity_) {
    events_.pop_front();  // flight recorder: oldest event falls out first
    ++dropped_;
  }
  events_.push_back(std::move(e));
}

void TraceRecorder::complete(Track track, std::string name, sim::TimePs begin,
                             sim::TimePs end, Args args) {
  if (end < begin)
    throw std::invalid_argument("TraceRecorder: span '" + name + "' ends before it begins");
  push(Event{'X', track, std::move(name), begin, end - begin, std::move(args)});
}

void TraceRecorder::instant(Track track, std::string name, sim::TimePs ts, Args args) {
  push(Event{'i', track, std::move(name), ts, 0, std::move(args)});
}

void TraceRecorder::counter(Track track, std::string name, sim::TimePs ts, double value) {
  push(Event{'C', track, std::move(name), ts, 0, Args{{"value", value}}});
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first, so viewers label the tracks.
  for (int tid = 0; tid < 5; ++tid) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":" << quoted(kTrackNames[tid]) << "}}";
  }
  for (const Event& e : events_) {
    os << ",\n{\"name\":" << quoted(e.name) << ",\"cat\":"
       << quoted(kTrackNames[static_cast<int>(e.track)]) << ",\"ph\":\"" << e.ph
       << "\",\"ts\":" << fmt_ts(e.ts);
    if (e.ph == 'X') os << ",\"dur\":" << fmt_ts(e.dur);
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << static_cast<int>(e.track);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ",";
        os << quoted(e.args[i].first) << ":" << fmt_double(e.args[i].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("obs: cannot open trace file '" + path + "' for writing");
  write_json(os);
  os.flush();
  if (!os)
    throw std::runtime_error("obs: error writing trace file '" + path + "'");
}

}  // namespace photorack::obs
