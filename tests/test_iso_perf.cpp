#include "disagg/iso_perf.hpp"

#include <gtest/gtest.h>

namespace photorack::disagg {
namespace {

TEST(IsoPerf, BaselineModuleCountIs1920) {
  const auto r = iso_performance();
  EXPECT_EQ(r.baseline.cpus, 128);
  EXPECT_EQ(r.baseline.gpus, 512);
  EXPECT_EQ(r.baseline.ddr4, 1024);
  EXPECT_EQ(r.baseline.nics, 256);  // two counted NIC modules per node
  EXPECT_EQ(r.baseline.total(), 1920);
}

TEST(IsoPerf, DisaggregatedModuleCountNear1075) {
  const auto r = iso_performance();
  // ceil(128 x 1.15) + ceil(512 x 1.06) + 1024/4 + 256/2
  EXPECT_EQ(r.disaggregated.cpus, 148);
  EXPECT_EQ(r.disaggregated.gpus, 543);
  EXPECT_EQ(r.disaggregated.ddr4, 256);
  EXPECT_EQ(r.disaggregated.nics, 128);
  EXPECT_EQ(r.disaggregated.total(), 1075);
}

TEST(IsoPerf, FortyFourPercentReduction) {
  const auto r = iso_performance();
  EXPECT_NEAR(r.reduction_fraction, 0.44, 0.005);
}

TEST(IsoPerf, AlternativePlanAddsSevenPercentChips) {
  const auto r = iso_performance();
  EXPECT_EQ(r.added_compute_modules, 128);
  EXPECT_NEAR(r.added_chip_fraction, 0.0667, 0.001);  // paper rounds to ~7%
}

TEST(IsoPerf, SlowdownsDriveComputeMakeup) {
  IsoPerfInputs in;
  in.cpu_slowdown = 0.0;
  in.gpu_slowdown = 0.0;
  const auto r = iso_performance({}, in);
  EXPECT_EQ(r.disaggregated.cpus, 128);
  EXPECT_EQ(r.disaggregated.gpus, 512);
  EXPECT_GT(r.reduction_fraction, 0.44);  // even better without slowdown
}

TEST(IsoPerf, RejectsReductionsBelowOne) {
  IsoPerfInputs in;
  in.memory_reduction = 0.5;
  EXPECT_THROW(iso_performance({}, in), std::invalid_argument);
}

TEST(IsoPerf, DerivedMemoryReductionIsConservativelyAboveFour) {
  // The rack-level statistical multiplexing argument: Cori-like usage at
  // rack p99 supports at least the 4x of [15].
  const double r = derive_memory_reduction(workloads::UsageModel::cori());
  EXPECT_GE(r, 4.0);
  EXPECT_LT(r, 12.0);  // sanity: not absurdly aggressive
}

TEST(IsoPerf, DerivationIsDeterministic) {
  const double a = derive_memory_reduction(workloads::UsageModel::cori());
  const double b = derive_memory_reduction(workloads::UsageModel::cori());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(IsoPerf, HigherPercentileNeedsMoreModules) {
  const auto usage = workloads::UsageModel::cori();
  EXPECT_LE(derive_memory_reduction(usage, 128, 99.9),
            derive_memory_reduction(usage, 128, 90.0));
}

}  // namespace
}  // namespace photorack::disagg
