// Quickstart: build the paper's photonic disaggregated rack, print its
// headline properties, and measure one benchmark's slowdown on it.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/rack_system.hpp"
#include "cpusim/runner.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace photorack;

  // 1. Build the disaggregated rack: Perlmutter-like nodes, photonic MCMs,
  //    six parallel AWGRs (the paper's case A).
  core::RackSystem system(rack::FabricKind::kParallelAwgrs);

  std::cout << "disaggregated rack summary\n";
  std::cout << "  MCMs:                    " << system.total_mcms() << '\n';
  std::cout << "  added memory latency:    " << system.added_memory_latency_ns()
            << " ns\n";
  std::cout << "  direct MCM-pair bw:      " << system.direct_pair_bandwidth_gbps()
            << " Gb/s\n";
  const auto power = system.power_overhead();
  std::cout << "  photonic power:          " << power.total.value / 1000.0 << " kW ("
            << power.overhead_vs_baseline * 100.0 << "% of rack)\n";

  // 2. Run one benchmark with and without the rack's added latency.
  const auto& bench = workloads::cpu_benchmarks().front();
  cpusim::SimConfig baseline;
  baseline.warmup_instructions = 200'000;
  baseline.measured_instructions = 500'000;
  cpusim::SimConfig disaggregated = baseline;
  disaggregated.dram.extra_ns = system.added_memory_latency_ns();

  workloads::SyntheticTrace trace_a(bench.trace);
  workloads::SyntheticTrace trace_b(bench.trace);
  const auto before = cpusim::run_simulation(trace_a, baseline);
  const auto after = cpusim::run_simulation(trace_b, disaggregated);

  std::cout << "\nbenchmark " << bench.full_name() << '\n';
  std::cout << "  baseline IPC:            " << before.ipc << '\n';
  std::cout << "  disaggregated IPC:       " << after.ipc << '\n';
  std::cout << "  slowdown:                " << (cpusim::slowdown(before, after) * 100.0)
            << "%\n";
  return 0;
}
