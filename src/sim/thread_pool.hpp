#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace photorack::sim {

/// Small fixed-size worker pool for running independent, seeded simulations
/// in parallel (benchmark sweeps run one simulation per benchmark×config).
/// Determinism note: tasks must not share mutable state; each simulation owns
/// its Rng, so results are identical whether run serially or in parallel.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.  If any task threw, the
  /// first captured exception is rethrown here (instead of the worker thread
  /// calling std::terminate); the pool stays usable afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // guarded by mu_
};

/// Run fn(i) for i in [0, n) on a transient pool; blocks until done.
/// Index-stable: fn receives the logical index, so per-index seeding keeps
/// parallel runs bit-identical to serial runs.  If fn throws, the first
/// captured exception is rethrown after all workers have stopped.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t workers = std::thread::hardware_concurrency());

}  // namespace photorack::sim
