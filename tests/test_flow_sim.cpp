#include "net/flow_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rack/rack_builder.hpp"
#include "workloads/usage.hpp"

namespace photorack::net {
namespace {

WavelengthFabric make_fabric() {
  return WavelengthFabric(350,
                          rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
}

FlowGenerator cori_generator() {
  const auto demand = workloads::FlowDemandModel::cpu_memory();
  return [demand](sim::Rng& rng) {
    FlowSpec spec;
    spec.src = static_cast<int>(rng.below(350));
    spec.dst = static_cast<int>((spec.src + 1 + rng.below(349)) % 350);
    spec.gbps = demand.sample_gbps(rng);
    spec.duration = static_cast<sim::TimePs>(rng.exponential(10.0 * sim::kPsPerUs));
    return spec;
  };
}

TEST(FlowSim, RunsToCompletion) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.flows, 10u);
}

TEST(FlowSim, CoriDemandsAreAlmostAlwaysSatisfied) {
  // Section VI-A's conclusion: blocked bandwidth is negligible for
  // production-like demands.
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.arrivals_per_us = 3.0;
  cfg.sim_time = 200 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.satisfied_fraction, 0.99);
  // 97% of demands fit one wavelength *by count*; by bandwidth the rare
  // elephants carry a disproportionate share, so the direct fraction of
  // satisfied bandwidth sits lower.
  EXPECT_GT(report.direct_fraction, 0.7);
}

TEST(FlowSim, FabricIsCleanAfterRun) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  (void)sim_inst.run();
  // All flows departed (the queue drained), so every reservation was
  // released.
  EXPECT_NEAR(fabric.utilization(), 0.0, 1e-12);
}

TEST(FlowSim, DeterministicForSeed) {
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  cfg.seed = 31337;
  auto f1 = make_fabric();
  auto f2 = make_fabric();
  FlowSimulator s1(f1, cori_generator(), cfg);
  FlowSimulator s2(f2, cori_generator(), cfg);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.flows, r2.flows);
  EXPECT_DOUBLE_EQ(r1.satisfied_fraction, r2.satisfied_fraction);
  EXPECT_EQ(r1.stale_mispicks, r2.stale_mispicks);
}

TEST(FlowSim, StepwiseAdvanceMatchesRunToCompletion) {
  FlowSimConfig cfg;
  cfg.sim_time = 100 * sim::kPsPerUs;
  auto f1 = make_fabric();
  auto f2 = make_fabric();
  FlowSimulator whole(f1, cori_generator(), cfg);
  const auto expected = whole.run();

  FlowSimulator chunked(f2, cori_generator(), cfg);
  for (sim::TimePs t = 7 * sim::kPsPerUs; t < cfg.sim_time; t += 13 * sim::kPsPerUs)
    chunked.advance_to(t);
  chunked.finish();
  const auto actual = chunked.report();

  EXPECT_EQ(expected.flows, actual.flows);
  EXPECT_EQ(expected.fully_satisfied, actual.fully_satisfied);
  EXPECT_EQ(expected.satisfied_fraction, actual.satisfied_fraction);
  EXPECT_EQ(expected.direct_fraction, actual.direct_fraction);
  EXPECT_EQ(expected.stale_mispicks, actual.stale_mispicks);
  EXPECT_EQ(expected.peak_utilization, actual.peak_utilization);
}

TEST(FlowSim, MidRunReportSeesPartialTraffic) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.sim_time = 100 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  sim_inst.advance_to(30 * sim::kPsPerUs);
  const auto mid = sim_inst.report();
  EXPECT_LE(sim_inst.now(), 30 * sim::kPsPerUs);
  sim_inst.finish();
  const auto final_report = sim_inst.report();
  EXPECT_GT(final_report.flows, mid.flows);
}

TEST(FlowEngine, OpenReservesAndCloseReleases) {
  auto fabric = make_fabric();
  FlowEngine engine(fabric, 1 * sim::kPsPerUs, /*router_seed=*/99);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.gbps = 50.0;
  const auto id = engine.open(spec);
  EXPECT_EQ(engine.live_flows(), 1u);
  EXPECT_GT(engine.fabric_utilization(), 0.0);
  EXPECT_GT(engine.result(id).satisfied(), 0.0);
  engine.close(id);
  EXPECT_EQ(engine.live_flows(), 0u);
  EXPECT_NEAR(engine.fabric_utilization(), 0.0, 1e-12);
}

TEST(FlowEngine, DeadFlowIdsAreRejected) {
  auto fabric = make_fabric();
  FlowEngine engine(fabric, 1 * sim::kPsPerUs, /*router_seed=*/99);
  FlowSpec spec;
  spec.src = 2;
  spec.dst = 3;
  spec.gbps = 10.0;
  const auto id = engine.open(spec);
  engine.close(id);
  EXPECT_THROW(engine.result(id), std::out_of_range);
  EXPECT_THROW(engine.close(id), std::out_of_range);
  EXPECT_THROW(engine.close(424242), std::out_of_range);
}

TEST(FlowEngine, ReportAccumulatesAcrossOpens) {
  auto fabric = make_fabric();
  FlowEngine engine(fabric, 1 * sim::kPsPerUs, /*router_seed=*/7);
  FlowSpec spec;
  spec.gbps = 20.0;
  for (int i = 0; i < 8; ++i) {
    spec.src = i;
    spec.dst = i + 10;
    engine.open(spec);
  }
  const auto report = engine.report();
  EXPECT_EQ(report.flows, 8u);
  EXPECT_DOUBLE_EQ(report.offered_gbps_mean, 20.0);
  EXPECT_GT(report.satisfied_fraction, 0.99);
  EXPECT_GT(report.peak_utilization, 0.0);
}

TEST(FlowSim, HeavyElephantsForceIndirectRouting) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.arrivals_per_us = 1.0;
  cfg.sim_time = 100 * sim::kPsPerUs;
  FlowGenerator elephants = [](sim::Rng& rng) {
    FlowSpec spec;
    spec.src = static_cast<int>(rng.below(350));
    spec.dst = static_cast<int>((spec.src + 1 + rng.below(349)) % 350);
    spec.gbps = 400.0;  // far beyond the 125 Gb/s direct budget
    spec.duration = static_cast<sim::TimePs>(rng.exponential(10.0 * sim::kPsPerUs));
    return spec;
  };
  FlowSimulator sim_inst(fabric, elephants, cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.indirect_fraction, 0.3);
  EXPECT_GT(report.satisfied_fraction, 0.95);
}

}  // namespace
}  // namespace photorack::net
