// Reproduces §III-C3: the lightweight CXL/PCIe-Gen6-style FEC+CRC scheme
// meets the 1e-18 memory-class BER target with <0.1% bandwidth loss and a
// few ns of latency; flit failures fall quadratically with FEC.
#include <iostream>

#include "core/report.hpp"
#include "phot/fec.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "BER / FEC feasibility", "Section III-C3");

  phot::FecModel fec;
  sim::Table table({"raw BER", "flit err prob", "post-FEC fail", "effective BER",
                    "retransmit rate", "bw loss"});
  for (const double ber : {1e-12, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5}) {
    const auto out = fec.evaluate(ber);
    table.add_row({sim::fmt_sci(ber, 0), sim::fmt_sci(out.flit_error_prob),
                   sim::fmt_sci(out.post_fec_flit_fail), sim::fmt_sci(out.effective_ber),
                   sim::fmt_sci(out.retransmit_rate), sim::fmt_sci(out.bandwidth_loss)});
  }
  table.print(std::cout);

  std::cout << "\nFEC latency (serialization of one 256 B flit + FEC math):\n";
  sim::Table lt({"lane rate", "latency (ns)"});
  for (const double gbps : {200.0, 400.0, 800.0, 1600.0}) {
    lt.add_row({sim::fmt_fixed(gbps, 0) + " Gb/s",
                sim::fmt_fixed(fec.total_latency(phot::Gbps{gbps}).value, 1)});
  }
  lt.print(std::cout);

  const auto at_1e6 = fec.evaluate(1e-6);
  std::cout << "\npaper-vs-measured:\n";
  // "a flit BER of 1e-6 becomes 1e-12 as you need two error bursts".
  core::check_line(std::cout, "quadratic suppression at flit-err 2e-3",
                   at_1e6.flit_error_prob * at_1e6.flit_error_prob,
                   at_1e6.post_fec_flit_fail, 0.01);
  core::check_line(std::cout, "meets 1e-18 target at raw 1e-6", 1.0,
                   fec.meets_target(1e-6) ? 1.0 : 0.0, 0.01);
  core::check_line(std::cout, "bandwidth loss < 0.1% at raw 1e-6", 0.001,
                   at_1e6.bandwidth_loss, 0.2);
  core::check_line(std::cout, "FEC+serialization at 200 Gb/s ~ 12-13 ns", 12.5,
                   fec.total_latency(phot::Gbps{200}).value, 0.2);
  core::check_line(std::cout, "FEC+serialization at 400 Gb/s ~ 7-8 ns", 7.5,
                   fec.total_latency(phot::Gbps{400}).value, 0.2);
  return 0;
}
