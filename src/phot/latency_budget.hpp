#pragma once

#include <string>
#include <vector>

#include "phot/fec.hpp"
#include "phot/links.hpp"

namespace photorack::phot {

/// End-to-end latency budget composition for a disaggregated memory access
/// (§III-C2/C3 and §VI-D).  Decomposes the headline 35 ns (photonic) and
/// 85 ns (electronic) figures into their physical parts so design
/// variations (reach, lane rate, hop count) can be explored.
struct LatencyContribution {
  std::string name;
  Nanoseconds value{0};
};

struct LatencyBudget {
  std::vector<LatencyContribution> parts;

  [[nodiscard]] Nanoseconds total() const {
    Nanoseconds t{0};
    for (const auto& p : parts) t += p.value;
    return t;
  }
};

struct BudgetInputs {
  Meters reach{4.0};          // round-trip fiber within the rack
  Gbps lane_rate{400};        // per-lane serialization rate
  FecConfig fec{};            // CXL/PCIe-Gen6-style FEC
  int electronic_hops = 4;    // switch hops for the electronic alternative
  Nanoseconds electronic_per_hop{12.5};
  PropagationModel propagation{};
};

/// Photonic path: OEO conversion + fiber propagation + serialization + FEC.
/// The paper folds serialization/FEC into its 35 ns "all-in" figure; the
/// breakdown makes that assumption explicit and checkable.
[[nodiscard]] LatencyBudget photonic_budget(const BudgetInputs& in = {});

/// Electronic path: the same physical terms plus per-hop switch latency.
[[nodiscard]] LatencyBudget electronic_budget(const BudgetInputs& in = {});

}  // namespace photorack::phot
