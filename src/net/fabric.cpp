#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::net {

WavelengthFabric::WavelengthFabric(int mcms, const rack::AwgrFabricPlan& plan)
    : mcms_(mcms),
      radix_(plan.awgr_radix),
      gbps_per_lambda_(plan.direct_pair_bandwidth.value /
                       std::max(1, plan.min_direct_lambdas_per_pair)),
      lambdas_(plan.lambdas_per_port) {
  if (mcms <= 0 || mcms > radix_)
    throw std::invalid_argument("WavelengthFabric: MCM count must fit the AWGR radix");
  if (lambdas_.empty()) throw std::invalid_argument("WavelengthFabric: no AWGRs in plan");
  alloc_.assign(lambdas_.size(),
                std::vector<double>(static_cast<std::size_t>(mcms_) * mcms_, 0.0));
}

bool WavelengthFabric::covers(int awgr, int src, int dst) const {
  if (src == dst) return false;
  // The port drives its first `lambdas_[awgr]` wavelength indices; the
  // cyclic AWGR shuffle lambda = (src+dst) mod radix then determines which
  // destinations those wavelengths land on.
  return (src + dst) % radix_ < lambdas_[static_cast<std::size_t>(awgr)];
}

int WavelengthFabric::direct_lambdas(int src, int dst) const {
  int n = 0;
  for (int a = 0; a < parallel_awgrs(); ++a) n += covers(a, src, dst) ? 1 : 0;
  return n;
}

double WavelengthFabric::direct_capacity(int src, int dst) const {
  // scale == 1 multiplies by exactly 1.0, so healthy capacity is unchanged
  // bit for bit.
  return direct_lambdas(src, dst) * gbps_per_lambda_ * pair_scale(src, dst);
}

double WavelengthFabric::free_direct(int src, int dst) const {
  // The scale != 1 branch clamps at zero because reservations made before a
  // degradation may exceed the reduced capacity; the healthy branch keeps
  // the historical expression bit for bit (it can carry an epsilon-negative
  // residue that downstream arithmetic depends on byte-identically).
  const double scale = pair_scale(src, dst);
  double free = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a) {
    if (!covers(a, src, dst)) continue;
    const double used = alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
    free += scale == 1.0 ? gbps_per_lambda_ - used
                         : std::max(0.0, gbps_per_lambda_ * scale - used);
  }
  return free;
}

double WavelengthFabric::allocated(int src, int dst) const {
  double total = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a)
    total += alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
  return total;
}

double WavelengthFabric::allocate_direct(int src, int dst, double gbps) {
  const double scale = pair_scale(src, dst);
  double granted = 0.0;
  for (int a = 0; a < parallel_awgrs() && gbps > granted; ++a) {
    if (!covers(a, src, dst)) continue;
    auto& used = alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
    // Same clamping asymmetry as free_direct: the scaled wavelength may
    // already hold more than its reduced capacity, which must grant zero,
    // never a negative take.
    const double avail = scale == 1.0
                             ? gbps_per_lambda_ - used
                             : std::max(0.0, gbps_per_lambda_ * scale - used);
    const double take = std::min(gbps - granted, avail);
    used += take;
    granted += take;
  }
  return granted;
}

void WavelengthFabric::release_direct(int src, int dst, double gbps) {
  for (int a = 0; a < parallel_awgrs() && gbps > 0.0; ++a) {
    if (!covers(a, src, dst)) continue;
    auto& used = alloc_[static_cast<std::size_t>(a)][idx(src, dst)];
    const double give = std::min(gbps, used);
    used -= give;
    gbps -= give;
  }
  if (gbps > 1e-9) throw std::logic_error("release_direct: released more than allocated");
}

std::vector<double> WavelengthFabric::allocation_snapshot() const {
  std::vector<double> snapshot;
  snapshot.reserve(alloc_.size() * static_cast<std::size_t>(mcms_) * mcms_);
  for (const auto& table : alloc_) {
    snapshot.insert(snapshot.end(), table.begin(), table.end());
  }
  return snapshot;
}

double WavelengthFabric::utilization() const {
  double cap = 0.0, used = 0.0;
  for (int a = 0; a < parallel_awgrs(); ++a) {
    for (int s = 0; s < mcms_; ++s) {
      for (int d = 0; d < mcms_; ++d) {
        if (!covers(a, s, d)) continue;
        const double scale = pair_scale(s, d);
        cap += scale == 1.0 ? gbps_per_lambda_ : gbps_per_lambda_ * scale;
        used += alloc_[static_cast<std::size_t>(a)][idx(s, d)];
      }
    }
  }
  return cap > 0.0 ? used / cap : 0.0;
}

void WavelengthFabric::check_pair(int src, int dst, double value,
                                  const char* who) const {
  if (src == dst || src < 0 || dst < 0 || src >= mcms_ || dst >= mcms_)
    throw std::invalid_argument(std::string(who) + ": bad pair");
  if (value < 0.0 || value > 1.0)
    throw std::invalid_argument(std::string(who) + ": value must be in [0,1]");
}

void WavelengthFabric::recompute_scale(int src, int dst) {
  // Product over a value-sorted copy: the effective scale depends only on
  // the SET of live factors, never on push order, so two fault histories
  // that leave the same faults active read identical capacity bits.  No
  // factors multiplies nothing into 1.0 — the exact healthy scale.
  std::vector<double> live = factors_[idx(src, dst)];
  std::sort(live.begin(), live.end());
  double scale = 1.0;
  for (const double f : live) scale *= f;
  scale_[idx(src, dst)] = scale;
}

void WavelengthFabric::push_pair_factor(int src, int dst, double factor) {
  check_pair(src, dst, factor, "push_pair_factor");
  if (scale_.empty())
    scale_.assign(static_cast<std::size_t>(mcms_) * mcms_, 1.0);
  if (factors_.empty())
    factors_.assign(static_cast<std::size_t>(mcms_) * mcms_, {});
  factors_[idx(src, dst)].push_back(factor);
  recompute_scale(src, dst);
}

void WavelengthFabric::pop_pair_factor(int src, int dst, double factor) {
  check_pair(src, dst, factor, "pop_pair_factor");
  if (factors_.empty())
    throw std::logic_error("pop_pair_factor: no factors live on the fabric");
  auto& live = factors_[idx(src, dst)];
  const auto it = std::find(live.begin(), live.end(), factor);
  if (it == live.end())
    throw std::logic_error("pop_pair_factor: factor not live on this pair");
  live.erase(it);
  recompute_scale(src, dst);
}

void WavelengthFabric::set_pair_scale(int src, int dst, double scale) {
  check_pair(src, dst, scale, "set_pair_scale");
  if (scale_.empty())
    scale_.assign(static_cast<std::size_t>(mcms_) * mcms_, 1.0);
  // Absolute override: any composed fault factors on the pair are dropped so
  // the pair reads exactly `scale` afterwards.
  if (!factors_.empty()) factors_[idx(src, dst)].clear();
  scale_[idx(src, dst)] = scale;
}

}  // namespace photorack::net
