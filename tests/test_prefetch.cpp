#include "cpusim/prefetch.hpp"

#include <gtest/gtest.h>

#include "cpusim/runner.hpp"
#include "workloads/generators.hpp"

namespace photorack::cpusim {
namespace {

PrefetchConfig on() {
  PrefetchConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(Prefetcher, DisabledIssuesNothing) {
  StridePrefetcher pf;  // default: disabled
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(pf.on_miss(i * 64).empty());
  EXPECT_EQ(pf.issued(), 0u);
}

TEST(Prefetcher, TrainsOnConstantStride) {
  StridePrefetcher pf(on());
  (void)pf.on_miss(0);
  (void)pf.on_miss(64);
  const auto third = pf.on_miss(128);
  ASSERT_FALSE(third.empty());
  EXPECT_EQ(pf.trained_streams(), 1u);
  // First prefetch lands `distance` strides ahead.
  EXPECT_EQ(third[0], 128 + 64 * static_cast<std::uint64_t>(pf.config().distance));
}

TEST(Prefetcher, IssuesDegreePrefetches) {
  PrefetchConfig cfg = on();
  cfg.degree = 4;
  StridePrefetcher pf(cfg);
  (void)pf.on_miss(0);
  (void)pf.on_miss(256);
  const auto out = pf.on_miss(512);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Prefetcher, RandomAddressesNeverTrain) {
  StridePrefetcher pf(on());
  sim::Rng rng(9);
  std::uint64_t issued_total = 0;
  for (int i = 0; i < 2000; ++i) issued_total += pf.on_miss(rng() % (1ULL << 32)).size();
  // Random deltas never repeat; training requires two equal deltas.
  EXPECT_LT(issued_total, 20u);
}

TEST(Prefetcher, TracksInterleavedStreams) {
  StridePrefetcher pf(on());
  // Two interleaved unit-stride streams far apart.
  bool stream_a_fired = false, stream_b_fired = false;
  for (int i = 0; i < 8; ++i) {
    stream_a_fired |= !pf.on_miss(static_cast<std::uint64_t>(i) * 64).empty();
    stream_b_fired |= !pf.on_miss((1ULL << 30) + static_cast<std::uint64_t>(i) * 128).empty();
  }
  EXPECT_TRUE(stream_a_fired);
  EXPECT_TRUE(stream_b_fired);
}

TEST(Prefetcher, ResetClearsState) {
  StridePrefetcher pf(on());
  (void)pf.on_miss(0);
  (void)pf.on_miss(64);
  (void)pf.on_miss(128);
  pf.reset();
  EXPECT_EQ(pf.issued(), 0u);
  EXPECT_TRUE(pf.on_miss(192).empty());  // must retrain
}

TEST(Prefetcher, ReducesStridedSlowdownEndToEnd) {
  // The §VII mitigation claim: prefetching recovers part of the
  // disaggregation slowdown for strided (NW-like) workloads.
  workloads::TraceConfig trace_cfg;
  trace_cfg.working_set = 96ULL << 20;
  trace_cfg.mem_fraction = 0.4;
  workloads::PatternSpec strided;
  strided.kind = workloads::CpuPattern::kStrided;
  strided.stride_bytes = 64;
  trace_cfg.patterns = {strided};
  trace_cfg.seed = 4;

  auto run_with = [&](bool prefetch_on, double extra) {
    SimConfig cfg;
    cfg.warmup_instructions = 50'000;
    cfg.measured_instructions = 300'000;
    cfg.dram.extra_ns = extra;
    cfg.core.prefetch.enabled = prefetch_on;
    workloads::SyntheticTrace trace(trace_cfg);
    return run_simulation(trace, cfg);
  };

  const auto base_off = run_with(false, 0.0);
  const auto slow_off = run_with(false, 35.0);
  const auto base_on = run_with(true, 0.0);
  const auto slow_on = run_with(true, 35.0);

  const double slowdown_off = slowdown(base_off, slow_off);
  const double slowdown_on = slowdown(base_on, slow_on);
  EXPECT_LT(base_on.llc_miss_rate, base_off.llc_miss_rate * 0.5);
  EXPECT_LT(slowdown_on, slowdown_off * 0.6);
}

TEST(Prefetcher, DoesNotChangeCacheResidentWorkloads) {
  workloads::TraceConfig trace_cfg;
  trace_cfg.working_set = 1 << 20;
  trace_cfg.mem_fraction = 0.3;
  trace_cfg.seed = 5;
  auto run_with = [&](bool prefetch_on) {
    SimConfig cfg;
    cfg.warmup_instructions = 50'000;
    cfg.measured_instructions = 200'000;
    cfg.core.prefetch.enabled = prefetch_on;
    workloads::SyntheticTrace trace(trace_cfg);
    return run_simulation(trace, cfg);
  };
  EXPECT_NEAR(run_with(true).time_ns, run_with(false).time_ns,
              run_with(false).time_ns * 0.02);
}

}  // namespace
}  // namespace photorack::cpusim
