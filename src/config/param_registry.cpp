#include "config/param_registry.hpp"

#include <algorithm>
#include <cstdio>

namespace photorack::config {

namespace {

/// Levenshtein distance, the usual two-row DP.  Paths are short (< 40
/// chars), so this is plenty fast for error-path suggestion ranking.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

const ParamInfo* ParamRegistry::find(const std::string& path) const {
  const auto it = param_index_.find(path);
  if (it == param_index_.end()) return nullptr;
  return &sections_[it->second.first]->params()[it->second.second];
}

const ParamInfo& ParamRegistry::at(const std::string& path) const {
  if (const ParamInfo* p = find(path)) return *p;
  std::string msg = "unknown parameter '" + path + "'";
  const std::string hint = format_suggestions(suggest(path));
  if (!hint.empty()) msg += " (" + hint + ")";
  throw std::out_of_range(msg);
}

const SectionInfo* ParamRegistry::find_section(const std::string& name) const {
  const auto it = section_index_.find(name);
  return it == section_index_.end() ? nullptr : sections_[it->second].get();
}

std::vector<const ParamInfo*> ParamRegistry::params() const {
  std::vector<const ParamInfo*> out;
  for (const auto& s : sections_)
    for (const auto& p : s->params()) out.push_back(&p);
  return out;
}

std::vector<std::string> ParamRegistry::suggest(const std::string& path,
                                                std::size_t max_results) const {
  // Rank every registered path by edit distance; also treat a matching
  // leaf name ("warmup" for "cpusim.warmup") as a strong suggestion, since
  // forgetting the section prefix is the common slip.
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& s : sections_) {
    for (const auto& p : s->params()) {
      std::size_t d = edit_distance(path, p.path);
      const std::size_t dot = p.path.rfind('.');
      const std::string leaf = dot == std::string::npos ? p.path : p.path.substr(dot + 1);
      if (leaf == path) d = std::min<std::size_t>(d, 1);
      ranked.emplace_back(d, p.path);
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> out;
  for (const auto& [d, p] : ranked) {
    // Beyond half the path's length the "suggestion" is noise, not help.
    if (d > std::max<std::size_t>(3, path.size() / 2)) break;
    out.push_back(p);
    if (out.size() >= max_results) break;
  }
  return out;
}

const ParamInfo& ParamRegistry::at_in(const SectionInfo& s,
                                      const std::string& path) const {
  const ParamInfo& p = at(path);  // suggestions on unknown paths
  if (path.compare(0, s.name().size() + 1, s.name() + ".") != 0)
    throw std::out_of_range("parameter '" + path + "' is not in section '" + s.name() +
                            "'");
  return p;
}

void ParamRegistry::add_param(SectionInfo& s, ParamInfo p) {
  if (param_index_.count(p.path))
    throw std::logic_error("ParamRegistry: duplicate parameter '" + p.path + "'");
  param_index_.emplace(p.path,
                       std::make_pair(section_index_.at(s.name()), s.params_.size()));
  s.params_.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// ConfigTree
// ---------------------------------------------------------------------------

ConfigTree::ConfigTree(const ParamRegistry& reg) : reg_(&reg) {}

ConfigTree& ConfigTree::set(const std::string& path, const std::string& value) {
  const ParamInfo& p = reg_->at(path);  // throws with suggestions
  p.check(value);                       // throws on bad / out-of-range value
  overrides_.emplace_back(path, value);
  return *this;
}

const std::string& ConfigTree::value(const std::string& path) const {
  const ParamInfo& p = reg_->at(path);
  for (auto it = overrides_.rbegin(); it != overrides_.rend(); ++it)
    if (it->first == path) return it->second;
  return p.default_value;
}

std::string ConfigTree::to_json() const {
  std::vector<const ParamInfo*> all = reg_->params();
  std::sort(all.begin(), all.end(),
            [](const ParamInfo* a, const ParamInfo* b) { return a->path < b->path; });
  std::string out = "{";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i) out += ',';
    out += json_quote(all[i]->path);
    out += ':';
    out += json_quote(value(all[i]->path));
  }
  out += '}';
  return out;
}

std::string format_suggestions(const std::vector<std::string>& near) {
  if (near.empty()) return "";
  std::string out = "did you mean ";
  for (std::size_t i = 0; i < near.size(); ++i) {
    if (i) out += ", ";
    out += near[i];
  }
  out += '?';
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace photorack::config
