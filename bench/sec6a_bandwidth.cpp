// Reproduces §VI-A: the AWGR design's bandwidth sufficiency.
//  - static analysis: demand quantiles vs the 25 Gb/s wavelength and the
//    125 Gb/s direct budget; the GPU/HBM escape-bandwidth budget;
//  - dynamic flow-level simulation: Cori-like CPU<->DDR4 demands routed
//    over the six parallel AWGRs with Valiant indirect routing.
#include <iostream>

#include "core/rack_system.hpp"
#include "core/report.hpp"
#include "net/flow_sim.hpp"
#include "sim/table.hpp"
#include "workloads/usage.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "AWGR bandwidth sufficiency", "Section VI-A");

  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  const auto& plan = system.design().awgr;
  const auto demand = workloads::FlowDemandModel::cpu_memory();

  std::cout << "Static analysis:\n";
  sim::Table st({"Quantity", "Value"});
  st.add_row({"direct pair bandwidth",
              sim::fmt_fixed(plan.direct_pair_bandwidth.value, 0) + " Gb/s"});
  st.add_row({"demand P(x <= 25 Gb/s)  [paper: 97%]",
              sim::fmt_pct(0.97, 1) + " by construction"});
  st.add_row({"demand quantile 97%", sim::fmt_fixed(demand.quantile(0.97), 1) + " Gb/s"});
  st.add_row({"demand quantile 99.5%", sim::fmt_fixed(demand.quantile(0.995), 1) + " Gb/s"});
  st.print(std::cout);

  // GPU budget arithmetic of §VI-A (honest accounting; the paper's
  // "125 x 512 = 8000 GB/s" line is discussed in EXPERIMENTS.md).
  const auto mcm_escape = system.design().mcm_plan.mcm.escape().value;  // GB/s
  const double hbm_need = 3 * 1555.2;   // three GPUs' HBM traffic per MCM
  const double nvlink_need = 3 * 300.0; // three GPUs' NVLink traffic per MCM
  std::cout << "\nGPU MCM budget (3 GPUs per MCM):\n";
  sim::Table gt({"Quantity", "GB/s"});
  gt.add_row({"MCM escape", sim::fmt_fixed(mcm_escape, 1)});
  gt.add_row({"HBM demand (3 GPUs)", sim::fmt_fixed(hbm_need, 1)});
  gt.add_row({"NVLink-replacement demand (3 GPUs)", sim::fmt_fixed(nvlink_need, 1)});
  gt.add_row({"headroom", sim::fmt_fixed(mcm_escape - hbm_need - nvlink_need, 1)});
  gt.print(std::cout);

  // Dynamic flow simulation over the fabric.
  auto fabric = system.make_fabric();
  net::FlowSimConfig cfg;
  cfg.arrivals_per_us = 3.0;
  cfg.sim_time = 300 * sim::kPsPerUs;
  sim::Rng pair_rng(99);
  const int mcms = fabric.mcms();
  net::FlowGenerator gen = [&, mcms](sim::Rng& rng) {
    net::FlowSpec spec;
    spec.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(mcms)));
    do {
      spec.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(mcms)));
    } while (spec.dst == spec.src);
    spec.gbps = demand.sample_gbps(rng);
    spec.duration = static_cast<sim::TimePs>(rng.exponential(20.0 * sim::kPsPerUs));
    return spec;
  };
  net::FlowSimulator flow_sim(fabric, gen, cfg);
  const auto report = flow_sim.run();

  std::cout << "\nFlow-level simulation (" << report.flows << " flows):\n";
  sim::Table ft({"Metric", "Value"});
  ft.add_row({"satisfied bandwidth fraction", sim::fmt_pct(report.satisfied_fraction, 3)});
  ft.add_row({"fully satisfied flows",
              sim::fmt_pct(1.0 - report.blocking_probability(), 3)});
  ft.add_row({"direct fraction of satisfied bw", sim::fmt_pct(report.direct_fraction, 2)});
  ft.add_row({"indirect fraction", sim::fmt_pct(report.indirect_fraction, 2)});
  ft.add_row({"stale-view mispicks", sim::fmt_int(static_cast<long long>(report.stale_mispicks))});
  ft.add_row({"second-hop repairs", sim::fmt_int(static_cast<long long>(report.second_hops))});
  ft.add_row({"mean intermediates per flow", sim::fmt_fixed(report.mean_intermediates, 3)});
  ft.add_row({"peak fabric utilization", sim::fmt_pct(report.peak_utilization, 2)});
  ft.print(std::cout);

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "97% of demands fit one 25 Gb/s wavelength", 25.0,
                   demand.quantile(0.97), 0.02);
  core::check_line(std::cout, "99.5% of demands fit the 125 Gb/s direct budget", 125.0,
                   demand.quantile(0.995), 0.02);
  core::check_line(std::cout, "blocked bandwidth ~ negligible", 1.0,
                   report.satisfied_fraction, 0.02);
  core::check_line(std::cout, "GPU MCM budget satisfied (headroom > 0)", 1.0,
                   (mcm_escape - hbm_need - nvlink_need) > 0 ? 1.0 : 0.0, 0.01);
  return 0;
}
