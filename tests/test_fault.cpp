// The ISSUE 8 fault-engine contracts: the timeline is a pure function of
// (config, geometry, seed) — byte-identical across --jobs levels and
// allocation policies, divergent under seed+1 — an enabled-but-idle engine
// changes no reported number, every resilience policy conserves jobs, and
// the blast-radius asymmetry (disaggregated jobs ride the fabric, static
// jobs hide inside their node) is pinned as an inequality.
#include "fault/fault_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cosim/rack_cosim.hpp"
#include "net/fabric.hpp"
#include "rack/rack_builder.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

namespace photorack::fault {
namespace {

FaultConfig all_classes_config() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.mcm_mtbf_ms = 50.0;
  cfg.node_mtbf_ms = 80.0;
  cfg.link_mtbf_ms = 120.0;
  cfg.laser_mtbf_ms = 200.0;
  return cfg;
}

constexpr sim::TimePs kHorizon = 200 * sim::kPsPerMs;

// ---------------------------------------------------------------------------
// Timeline derivation: deterministic, seed-sensitive, well-formed.
// ---------------------------------------------------------------------------

TEST(FaultTimeline, SameSeedSameConfigIsIdentical) {
  const auto cfg = all_classes_config();
  const auto a = derive_timeline(cfg, 8, 16, 42, kHorizon);
  const auto b = derive_timeline(cfg, 8, 16, 42, kHorizon);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultTimeline, SeedPlusOneDiverges) {
  const auto cfg = all_classes_config();
  const auto a = derive_timeline(cfg, 8, 16, 42, kHorizon);
  const auto b = derive_timeline(cfg, 8, 16, 43, kHorizon);
  EXPECT_NE(a, b);
}

TEST(FaultTimeline, SortedWithOneRepairPerFail) {
  const auto timeline = derive_timeline(all_classes_config(), 8, 16, 7, kHorizon);
  ASSERT_FALSE(timeline.empty());
  for (std::size_t i = 1; i < timeline.size(); ++i)
    EXPECT_LE(timeline[i - 1].at, timeline[i].at);

  // Per component: strict fail/repair alternation starting with a fail, and
  // a repair for every fail (repairs may land beyond the horizon, fails not).
  std::map<std::tuple<ComponentClass, int, int>, int> open;
  for (const auto& ev : timeline) {
    int& depth = open[{ev.cls, ev.a, ev.b}];
    if (ev.kind == FaultKind::kFail) {
      EXPECT_EQ(depth, 0) << "fail while already down";
      EXPECT_LT(ev.at, kHorizon);
      ++depth;
    } else {
      EXPECT_EQ(depth, 1) << "repair of a healthy component";
      --depth;
    }
  }
  for (const auto& [key, depth] : open) EXPECT_EQ(depth, 0);
}

TEST(FaultTimeline, AllZeroMtbfIsEmptyAndFullyAvailable) {
  const FaultScheduler sched(FaultConfig{}, 8, 16, 42, kHorizon);
  EXPECT_TRUE(sched.timeline().empty());
  EXPECT_EQ(sched.availability(kHorizon), 1.0);
  EXPECT_EQ(sched.mean_mttr_ms(), 0.0);
}

TEST(FaultTimeline, AvailabilityIsAFractionAndMttrPositive) {
  const FaultScheduler sched(all_classes_config(), 8, 16, 42, kHorizon);
  const double avail = sched.availability(kHorizon);
  EXPECT_GT(avail, 0.0);
  EXPECT_LT(avail, 1.0);  // MTBF 50/80 ms over 200 ms: faults are certain
  EXPECT_GT(sched.mean_mttr_ms(), 0.0);
}

TEST(FaultTimeline, MalformedConfigThrows) {
  auto cfg = all_classes_config();
  cfg.mcm_mtbf_ms = -1.0;
  EXPECT_THROW(derive_timeline(cfg, 8, 16, 0, kHorizon), std::invalid_argument);

  cfg = all_classes_config();
  cfg.node_mttr_ms = 0.0;  // active class needs a positive repair time
  EXPECT_THROW(derive_timeline(cfg, 8, 16, 0, kHorizon), std::invalid_argument);

  cfg = all_classes_config();
  cfg.degrade_fraction = 0.0;
  EXPECT_THROW(derive_timeline(cfg, 8, 16, 0, kHorizon), std::invalid_argument);
  cfg.degrade_fraction = 1.5;
  EXPECT_THROW(derive_timeline(cfg, 8, 16, 0, kHorizon), std::invalid_argument);

  cfg = all_classes_config();
  cfg.backoff_cap_ms = 0.5 * cfg.backoff_base_ms;
  EXPECT_THROW(derive_timeline(cfg, 8, 16, 0, kHorizon), std::invalid_argument);

  EXPECT_THROW(derive_timeline(all_classes_config(), 1, 16, 0, kHorizon),
               std::invalid_argument);
  EXPECT_THROW(derive_timeline(all_classes_config(), 8, 0, 0, kHorizon),
               std::invalid_argument);
}

TEST(FaultTimeline, EnumCodecsRoundTrip) {
  EXPECT_EQ(resilience_policy_codec().parse("degrade"), ResiliencePolicy::kDegrade);
  EXPECT_EQ(resilience_policy_codec().name(ResiliencePolicy::kRequeue), "requeue");
  EXPECT_THROW((void)resilience_policy_codec().parse("bogus"), std::invalid_argument);
  EXPECT_EQ(component_class_codec().name(ComponentClass::kLaser), "laser");
}

// ---------------------------------------------------------------------------
// Fabric degradation hooks.
// ---------------------------------------------------------------------------

TEST(FaultFabric, PairScaleShrinksAndRestoresCapacityExactly) {
  net::WavelengthFabric fabric(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  const double cap = fabric.direct_capacity(3, 9);
  ASSERT_GT(cap, 0.0);

  fabric.set_pair_scale(3, 9, 0.0);  // link cut: the pair goes dark
  EXPECT_EQ(fabric.direct_capacity(3, 9), 0.0);
  EXPECT_EQ(fabric.free_direct(3, 9), 0.0);
  EXPECT_EQ(fabric.allocate_direct(3, 9, 10.0), 0.0);
  EXPECT_EQ(fabric.direct_capacity(9, 3), cap);  // directed: reverse unaffected

  fabric.set_pair_scale(3, 9, 0.5);  // laser degradation
  EXPECT_EQ(fabric.direct_capacity(3, 9), 0.5 * cap);

  fabric.set_pair_scale(3, 9, 1.0);  // repair restores the healthy numbers
  EXPECT_EQ(fabric.direct_capacity(3, 9), cap);
  EXPECT_EQ(fabric.free_direct(3, 9), cap);
}

TEST(FaultFabric, PairScaleRejectsBadPairAndBadScale) {
  net::WavelengthFabric fabric(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  EXPECT_THROW(fabric.set_pair_scale(5, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(fabric.set_pair_scale(-1, 2, 0.5), std::invalid_argument);
  EXPECT_THROW(fabric.set_pair_scale(1, 2, -0.1), std::invalid_argument);
  EXPECT_THROW(fabric.set_pair_scale(1, 2, 1.5), std::invalid_argument);
}

// The ISSUE 9 overlap fix: two faults degrading the same wavelength pair
// must compose, and each repair must remove exactly its own contribution —
// the last repair restores the healthy capacity bit for bit.  (The old
// absolute set_pair_scale let the second fault clobber the first, so the
// earlier repair "healed" a pair whose other fault was still active.)
TEST(FaultFabric, OverlappingPairFactorsComposeAndUnwindExactly) {
  net::WavelengthFabric fabric(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  const double cap = fabric.direct_capacity(3, 9);
  ASSERT_GT(cap, 0.0);

  fabric.push_pair_factor(3, 9, 0.5);  // laser degradation
  EXPECT_EQ(fabric.direct_capacity(3, 9), 0.5 * cap);
  fabric.push_pair_factor(3, 9, 0.0);  // overlapping link cut dominates
  EXPECT_EQ(fabric.direct_capacity(3, 9), 0.0);

  fabric.pop_pair_factor(3, 9, 0.5);  // laser repairs first: pair stays dark
  EXPECT_EQ(fabric.direct_capacity(3, 9), 0.0);
  fabric.pop_pair_factor(3, 9, 0.0);  // link repair: healthy again, exactly
  EXPECT_EQ(fabric.direct_capacity(3, 9), cap);
  EXPECT_EQ(fabric.free_direct(3, 9), cap);

  // Popping a factor that is not live is a repair-without-fail bug upstream.
  EXPECT_THROW(fabric.pop_pair_factor(3, 9, 0.5), std::logic_error);
}

TEST(FaultFabric, FactorProductIsPushOrderIndependent) {
  net::WavelengthFabric a(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  net::WavelengthFabric b(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  a.push_pair_factor(3, 9, 0.5);
  a.push_pair_factor(3, 9, 0.25);
  b.push_pair_factor(3, 9, 0.25);
  b.push_pair_factor(3, 9, 0.5);
  EXPECT_EQ(a.direct_capacity(3, 9), b.direct_capacity(3, 9));
  EXPECT_EQ(a.direct_capacity(3, 9), 0.125 * a.direct_capacity(9, 3));
}

TEST(FaultFabric, SetPairScaleIsAnAbsoluteOverride) {
  net::WavelengthFabric fabric(
      350, rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
  const double cap = fabric.direct_capacity(3, 9);
  fabric.push_pair_factor(3, 9, 0.5);
  fabric.set_pair_scale(3, 9, 1.0);  // clears the live factors with it
  EXPECT_EQ(fabric.direct_capacity(3, 9), cap);
  EXPECT_THROW(fabric.pop_pair_factor(3, 9, 0.5), std::logic_error);
}

// ---------------------------------------------------------------------------
// Co-simulation integration.
// ---------------------------------------------------------------------------

cosim::CosimConfig quick_cosim() {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = 4.0;
  cfg.sim_time = 120 * sim::kPsPerMs;
  cfg.mean_duration = 20 * sim::kPsPerMs;
  return cfg;
}

cosim::CosimReport run_with(disagg::AllocationPolicy policy,
                            const cosim::CosimConfig& cfg) {
  return cosim::run_rack_cosim({}, policy, workloads::UsageModel::cori(), cfg);
}

void expect_job_stats_identical(const cosim::CosimReport& a,
                                const cosim::CosimReport& b) {
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.jobs.mean_cpu_utilization, b.jobs.mean_cpu_utilization);
  EXPECT_EQ(a.jobs.mean_memory_utilization, b.jobs.mean_memory_utilization);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.flows.peak_utilization, b.flows.peak_utilization);
  EXPECT_EQ(a.mean_speed_fraction, b.mean_speed_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completed_at, b.completed_at);
}

// The zero-cost pin: an enabled engine whose every MTBF is zero derives an
// empty timeline, and every pre-existing report field matches the disabled
// run bit-for-bit (the fabric fast-paths keep the FP expressions intact).
TEST(FaultCosim, EnabledButIdleEngineChangesNothing) {
  const auto cfg = quick_cosim();
  auto with_idle_faults = cfg;
  with_idle_faults.fault.enabled = true;

  for (const auto policy : {disagg::AllocationPolicy::kStaticNodes,
                            disagg::AllocationPolicy::kDisaggregated}) {
    const auto off = run_with(policy, cfg);
    const auto idle = run_with(policy, with_idle_faults);
    expect_job_stats_identical(off, idle);

    EXPECT_FALSE(off.fault.enabled);
    EXPECT_TRUE(idle.fault.enabled);
    EXPECT_EQ(idle.fault.faults, 0u);
    EXPECT_EQ(idle.fault.interrupted, 0u);
    EXPECT_EQ(idle.fault.availability, 1.0);
    // With no faults every accepted job runs to completion.
    EXPECT_EQ(idle.fault.goodput_jobs, idle.jobs.accepted);
  }
}

TEST(FaultCosim, SameSeedSameFaultTrajectory) {
  auto cfg = quick_cosim();
  cfg.queue_cap = 64;
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.fault.enabled = true;
  cfg.fault.mcm_mtbf_ms = 60.0;
  cfg.fault.node_mtbf_ms = 240.0;

  const auto a = run_with(disagg::AllocationPolicy::kDisaggregated, cfg);
  const auto b = run_with(disagg::AllocationPolicy::kDisaggregated, cfg);
  expect_job_stats_identical(a, b);
  EXPECT_EQ(a.fault.faults, b.fault.faults);
  EXPECT_EQ(a.fault.interrupted, b.fault.interrupted);
  EXPECT_EQ(a.fault.goodput_jobs, b.fault.goodput_jobs);
  EXPECT_EQ(a.fault.work_lost_ms, b.fault.work_lost_ms);
  EXPECT_EQ(a.fault.availability, b.fault.availability);

  auto seeded = cfg;
  seeded.seed += 1;
  const auto c = run_with(disagg::AllocationPolicy::kDisaggregated, seeded);
  EXPECT_NE(a.fault.work_lost_ms, c.fault.work_lost_ms);
}

// Every accepted job ends exactly one way — completed (goodput) or killed —
// or is still waiting in the backlog; nothing is double-counted and the
// allocator drains to zero live allocations.
TEST(FaultCosim, PolicyConservationAndDrain) {
  for (const auto policy : {ResiliencePolicy::kKill, ResiliencePolicy::kRequeue,
                            ResiliencePolicy::kDegrade}) {
    auto cfg = quick_cosim();
    cfg.queue_cap = 64;
    cfg.admission = cosim::AdmissionPolicy::kQueue;
    cfg.fault.enabled = true;
    cfg.fault.policy = policy;
    cfg.fault.mcm_mtbf_ms = 60.0;
    cfg.fault.node_mtbf_ms = 240.0;

    cosim::RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                         workloads::UsageModel::cori(), cfg);
    sim.finish();
    const auto report = sim.report();

    EXPECT_GT(report.fault.faults, 0u);
    EXPECT_EQ(report.fault.repairs, report.fault.faults);
    EXPECT_GT(report.fault.interrupted, 0u);
    EXPECT_GT(report.fault.goodput_jobs, 0u);
    EXPECT_LE(report.fault.goodput_jobs + report.fault.killed,
              report.jobs.accepted);
    EXPECT_GT(report.fault.work_lost_ms, 0.0);
    EXPECT_GT(report.fault.availability, 0.0);
    EXPECT_LT(report.fault.availability, 1.0);
    EXPECT_GT(report.fault.mean_mttr_ms, 0.0);

    if (policy == ResiliencePolicy::kKill) {
      EXPECT_EQ(report.fault.requeued, 0u);
      EXPECT_EQ(report.fault.killed, report.fault.interrupted);
    } else {
      EXPECT_GT(report.fault.requeued, 0u);
    }
    if (policy == ResiliencePolicy::kDegrade) EXPECT_GT(report.fault.degraded, 0u);

    EXPECT_EQ(sim.live_jobs(), 0u);
    EXPECT_EQ(sim.allocator().live_allocations(), 0u);
    const auto& counters = sim.allocator().counters();
    EXPECT_EQ(counters.revocations + counters.releases, counters.placements);
  }
}

// The blast-radius asymmetry: identical fault timeline (same seed, same
// geometry), but disaggregated jobs hold fabric flows that an MCM crash
// severs, while static jobs only die when their own node crashes.
TEST(FaultCosim, DisaggregatedBlastRadiusExceedsStatic) {
  auto cfg = quick_cosim();
  cfg.queue_cap = 64;
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.fault.enabled = true;
  cfg.fault.mcm_mtbf_ms = 60.0;
  cfg.fault.node_mtbf_ms = 240.0;

  const auto stat = run_with(disagg::AllocationPolicy::kStaticNodes, cfg);
  const auto disagg = run_with(disagg::AllocationPolicy::kDisaggregated, cfg);

  // Same timeline: load-independent aggregates agree bit-for-bit.
  EXPECT_EQ(stat.fault.faults, disagg.fault.faults);
  EXPECT_EQ(stat.fault.availability, disagg.fault.availability);
  EXPECT_EQ(stat.fault.mean_mttr_ms, disagg.fault.mean_mttr_ms);
  // Different blast radius: fabric-bound jobs see far more revocations.
  EXPECT_GT(disagg.fault.interrupted, stat.fault.interrupted);
}

// ---------------------------------------------------------------------------
// Retry-admission semantics (ISSUE 9): the backlog is a kQueue-only
// structure, retries compete for it on the same queue_cap bound as fresh
// arrivals, and the censored-wait accounting excludes fault-requeued
// entries whose wait was already recorded at first placement.
// ---------------------------------------------------------------------------

cosim::CosimConfig faulty_requeue_cosim() {
  auto cfg = quick_cosim();
  cfg.fault.enabled = true;
  cfg.fault.policy = ResiliencePolicy::kRequeue;
  cfg.fault.mcm_mtbf_ms = 60.0;
  cfg.fault.node_mtbf_ms = 240.0;
  return cfg;
}

// Under kDrop a retry never touches the backlog: it re-attempts placement
// directly and backs off on failure, so a drop-mode run keeps wait
// identically zero and the backlog identically empty no matter how many
// jobs the fault engine requeues.
TEST(FaultCosim, DropModeRetriesNeverTouchTheBacklog) {
  auto cfg = faulty_requeue_cosim();
  cfg.admission = cosim::AdmissionPolicy::kDrop;

  cosim::RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                       workloads::UsageModel::cori(), cfg);
  for (sim::TimePs t = 10 * sim::kPsPerMs; t <= cfg.sim_time;
       t += 10 * sim::kPsPerMs) {
    sim.advance_to(t);
    EXPECT_EQ(sim.queued_jobs(), 0u);
  }
  sim.finish();
  const auto report = sim.report();
  EXPECT_GT(report.fault.requeued, 0u);
  EXPECT_EQ(report.jobs.censored_waiting, 0u);
  EXPECT_EQ(report.jobs.wait_ms.count, report.jobs.accepted);
  EXPECT_EQ(report.jobs.wait_ms.p999, 0.0);  // drop mode: placement or death
}

// Under kQueue a retry has no reserved headroom: the backlog never exceeds
// queue_cap with retries in flight, and a retry that finds it full is
// killed, not stashed.
TEST(FaultCosim, RetriesRespectTheQueueCapBound) {
  auto cfg = faulty_requeue_cosim();
  cfg.arrivals_per_ms = 8.0;  // overload so the backlog is routinely full
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.queue_cap = 2;

  cosim::RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                       workloads::UsageModel::cori(), cfg);
  for (sim::TimePs t = sim::kPsPerMs; t <= cfg.sim_time; t += sim::kPsPerMs) {
    sim.advance_to(t);
    EXPECT_LE(sim.queued_jobs(), 2u);
  }
  sim.finish();
  const auto report = sim.report();
  EXPECT_GT(report.fault.requeued, 0u);
  EXPECT_GT(report.fault.killed, 0u);  // some retries found the backlog full
  EXPECT_EQ(sim.queued_jobs(), 0u);
  EXPECT_EQ(sim.live_jobs(), 0u);
}

// The censored-wait fix: fault-requeued backlog entries (record = false)
// already recorded their wait at first placement, so a mid-run report must
// not fold them into the censored counts — censored_waiting undercounts the
// raw backlog whenever a retry is parked in it, and the wait sketch ties
// out exactly against the acceptance counters at every instant.
TEST(FaultCosim, CensoredWaitExcludesFaultRequeuedEntries) {
  auto cfg = faulty_requeue_cosim();
  cfg.arrivals_per_ms = 8.0;
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.queue_cap = 64;

  cosim::RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                       workloads::UsageModel::cori(), cfg);
  bool saw_parked_retry = false;
  for (sim::TimePs t = sim::kPsPerMs; t <= cfg.sim_time; t += sim::kPsPerMs) {
    sim.advance_to(t);
    const auto mid = sim.report();
    EXPECT_EQ(mid.jobs.wait_ms.count,
              mid.jobs.accepted + mid.jobs.censored_waiting);
    EXPECT_LE(mid.jobs.censored_waiting, sim.queued_jobs());
    saw_parked_retry |= mid.jobs.censored_waiting < sim.queued_jobs();
  }
  // Deterministic for the fixed seed: at least one sampling instant caught a
  // fault-requeued job waiting in the backlog (the case the fix excludes).
  EXPECT_TRUE(saw_parked_retry);
  sim.finish();
  const auto fin = sim.report();
  EXPECT_EQ(fin.jobs.censored_waiting, 0u);
  EXPECT_EQ(fin.jobs.wait_ms.count, fin.jobs.accepted);
}

// Requeue re-entrancy: a retry that lands in the backlog immediately drains
// it (schedule_retry -> push -> drain_backlog while a drain may already be
// on the stack).  The pin: the run stays FIFO-fair and conserves every job
// — nothing is lost, double-placed, or left behind — and the whole
// trajectory is reproducible.
TEST(FaultCosim, RequeuePushThenDrainConservesJobsAndStaysDeterministic) {
  auto cfg = faulty_requeue_cosim();
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.queue_cap = 64;  // ample: no retry should die on a full backlog

  cosim::RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                       workloads::UsageModel::cori(), cfg);
  sim.finish();
  const auto a = sim.report();
  EXPECT_GT(a.fault.requeued, 0u);
  // Conservation: the drain leaves nothing parked or running, so every
  // accepted job either completed or was killed by retry exhaustion.
  EXPECT_EQ(sim.queued_jobs(), 0u);
  EXPECT_EQ(sim.live_jobs(), 0u);
  EXPECT_EQ(a.fault.goodput_jobs + a.fault.killed, a.jobs.accepted);
  EXPECT_EQ(a.jobs.censored_waiting, 0u);
  EXPECT_EQ(a.jobs.censored_running, 0u);

  const auto b = run_with(disagg::AllocationPolicy::kDisaggregated, cfg);
  expect_job_stats_identical(a, b);
  EXPECT_EQ(a.fault.requeued, b.fault.requeued);
  EXPECT_EQ(a.fault.killed, b.fault.killed);
}

// ---------------------------------------------------------------------------
// Campaign determinism: the two fault campaigns serialize byte-identically
// at every --jobs level (the same pin test_scenario.cpp holds for the
// fault-free campaigns).
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const scenario::Campaign& campaign,
                                              const scenario::SweepGrid& grid,
                                              std::size_t jobs) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  scenario::SweepRunner(scenario::SweepOptions{.jobs = jobs, .base_seed = 0})
      .run(campaign, grid, {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(FaultCampaigns, AvailabilityIsByteIdenticalAcrossJobs) {
  const auto& campaign = scenario::campaign_by_name("cosim_availability");
  auto grid = campaign.default_grid();
  grid.set("fault.mcm_mtbf_ms", {"60"});
  grid.set("cosim.horizon_ms", {"120"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(FaultCampaigns, BlastRadiusIsByteIdenticalAcrossJobs) {
  const auto& campaign = scenario::campaign_by_name("cosim_blast_radius");
  auto grid = campaign.default_grid();
  grid.set("fault.mcm_mtbf_ms", {"60"});
  grid.set("cosim.horizon_ms", {"120"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

}  // namespace
}  // namespace photorack::fault
