#pragma once

#include "rack/chips.hpp"
#include "workloads/usage.hpp"

namespace photorack::disagg {

/// Module counts for the §VI-E iso-performance comparison.  "Modules" are
/// the units the paper counts: CPU packages, GPU packages (HBM co-packaged
/// with its GPU), DDR4 DIMMs, and NIC modules (two counted per baseline
/// node — the §VI-E arithmetic: 128 + 512 + 1024 + 256 = 1920).
struct ModuleCounts {
  int cpus = 0;
  int gpus = 0;
  int ddr4 = 0;
  int nics = 0;

  [[nodiscard]] int total() const { return cpus + gpus + ddr4 + nics; }
};

struct IsoPerfInputs {
  /// Average slowdowns from the §VI-B experiments; extra compute modules
  /// make up for them.  Defaults are the paper's: in-order CPUs (worst
  /// case) 15%, GPUs ~6%.
  double cpu_slowdown = 0.15;
  double gpu_slowdown = 0.06;
  /// Resource reductions disaggregation permits, from production usage
  /// ([15]): 4x fewer memory modules, 2x fewer NICs.
  double memory_reduction = 4.0;
  double nic_reduction = 2.0;
  int nic_modules_per_node = 2;
};

struct IsoPerfResult {
  ModuleCounts baseline;
  ModuleCounts disaggregated;
  double reduction_fraction = 0.0;  // paper: ~44%

  /// Alternative plan (§VI-E): keep every baseline resource and add
  /// `added_compute_modules` CPUs/GPUs instead, roughly doubling rack
  /// compute throughput for a ~7% chip increase.
  int added_compute_modules = 0;
  double added_chip_fraction = 0.0;
};

/// The §VI-E comparison for a rack.
[[nodiscard]] IsoPerfResult iso_performance(const rack::RackConfig& rack = {},
                                            const IsoPerfInputs& inputs = {});

/// Derive the memory-module reduction factor from a usage distribution:
/// sample `nodes` per-node demands, provision the rack pool at the
/// `percentile` of the rack-wide total, and compare module counts against
/// one-DIMM-per-channel provisioning.  Statistical multiplexing across the
/// rack is what makes the 4x of [15] conservative.  Throws
/// std::invalid_argument when `nodes` or `trials` is < 1 — sizing the pool
/// from an empty sample would otherwise report against zero demand.
[[nodiscard]] double derive_memory_reduction(const workloads::UsageModel& usage,
                                             int nodes = 128, double percentile = 99.0,
                                             int trials = 2000,
                                             std::uint64_t seed = 2024);

}  // namespace photorack::disagg
