#include "phot/power.hpp"

namespace photorack::phot {

PowerBreakdown photonic_power_overhead(const PhotonicPowerConfig& cfg,
                                       const BaselineRackPower& base) {
  PowerBreakdown out;
  const double total_gbps = static_cast<double>(cfg.mcms) * cfg.wavelengths_per_mcm *
                            cfg.gbps_per_wavelength.value;
  // lasers_always_on means the full escape bandwidth burns transceiver energy
  // regardless of utilization — the paper's pessimistic assumption.  A
  // utilization-gated variant would scale this term down.
  out.transceivers = power_of(cfg.transceiver_pair_energy, Gbps{total_gbps});
  out.switches = cfg.all_switches_power;
  out.total = out.transceivers + out.switches;
  out.overhead_vs_baseline = out.total.value / base.total().value;
  return out;
}

}  // namespace photorack::phot
