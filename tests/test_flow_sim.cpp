#include "net/flow_sim.hpp"

#include <gtest/gtest.h>

#include "rack/rack_builder.hpp"
#include "workloads/usage.hpp"

namespace photorack::net {
namespace {

WavelengthFabric make_fabric() {
  return WavelengthFabric(350,
                          rack::build_rack_design(rack::FabricKind::kParallelAwgrs).awgr);
}

FlowGenerator cori_generator() {
  const auto demand = workloads::FlowDemandModel::cpu_memory();
  return [demand](sim::Rng& rng) {
    FlowSpec spec;
    spec.src = static_cast<int>(rng.below(350));
    spec.dst = static_cast<int>((spec.src + 1 + rng.below(349)) % 350);
    spec.gbps = demand.sample_gbps(rng);
    spec.duration = static_cast<sim::TimePs>(rng.exponential(10.0 * sim::kPsPerUs));
    return spec;
  };
}

TEST(FlowSim, RunsToCompletion) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.flows, 10u);
}

TEST(FlowSim, CoriDemandsAreAlmostAlwaysSatisfied) {
  // Section VI-A's conclusion: blocked bandwidth is negligible for
  // production-like demands.
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.arrivals_per_us = 3.0;
  cfg.sim_time = 200 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.satisfied_fraction, 0.99);
  // 97% of demands fit one wavelength *by count*; by bandwidth the rare
  // elephants carry a disproportionate share, so the direct fraction of
  // satisfied bandwidth sits lower.
  EXPECT_GT(report.direct_fraction, 0.7);
}

TEST(FlowSim, FabricIsCleanAfterRun) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  FlowSimulator sim_inst(fabric, cori_generator(), cfg);
  (void)sim_inst.run();
  // All flows departed (the queue drained), so every reservation was
  // released.
  EXPECT_NEAR(fabric.utilization(), 0.0, 1e-12);
}

TEST(FlowSim, DeterministicForSeed) {
  FlowSimConfig cfg;
  cfg.sim_time = 50 * sim::kPsPerUs;
  cfg.seed = 31337;
  auto f1 = make_fabric();
  auto f2 = make_fabric();
  FlowSimulator s1(f1, cori_generator(), cfg);
  FlowSimulator s2(f2, cori_generator(), cfg);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.flows, r2.flows);
  EXPECT_DOUBLE_EQ(r1.satisfied_fraction, r2.satisfied_fraction);
  EXPECT_EQ(r1.stale_mispicks, r2.stale_mispicks);
}

TEST(FlowSim, HeavyElephantsForceIndirectRouting) {
  auto fabric = make_fabric();
  FlowSimConfig cfg;
  cfg.arrivals_per_us = 1.0;
  cfg.sim_time = 100 * sim::kPsPerUs;
  FlowGenerator elephants = [](sim::Rng& rng) {
    FlowSpec spec;
    spec.src = static_cast<int>(rng.below(350));
    spec.dst = static_cast<int>((spec.src + 1 + rng.below(349)) % 350);
    spec.gbps = 400.0;  // far beyond the 125 Gb/s direct budget
    spec.duration = static_cast<sim::TimePs>(rng.exponential(10.0 * sim::kPsPerUs));
    return spec;
  };
  FlowSimulator sim_inst(fabric, elephants, cfg);
  const auto report = sim_inst.run();
  EXPECT_GT(report.indirect_fraction, 0.3);
  EXPECT_GT(report.satisfied_fraction, 0.95);
}

}  // namespace
}  // namespace photorack::net
