#include "cpusim/miss_profile.hpp"

#include <cmath>

namespace photorack::cpusim {

namespace {

/// True when `v` is an integer small enough that sums/products built from
/// values like it stay exactly representable (no rounding anywhere, so the
/// aggregated closed form equals any accumulation order bit-for-bit).
bool exact_int(double v) { return std::floor(v) == v && std::fabs(v) < 9.0e15; }

SimResult build_result(const MissProfile& p, double cycles, double stall_cycles) {
  // Mirrors the SimResult arithmetic at the end of run_simulation()'s
  // implementation exactly (same expressions, same conversions).
  SimResult r;
  r.instructions = p.instructions;
  r.cycles = cycles;
  r.time_ns = cycles / p.core.freq_ghz;
  r.ipc = cycles > 0 ? p.instructions / cycles : 0.0;
  r.llc_miss_rate = p.llc_accesses ? static_cast<double>(p.llc_misses) /
                                         static_cast<double>(p.llc_accesses)
                                   : 0.0;
  r.llc_mpki = p.instructions ? 1000.0 * static_cast<double>(p.llc_misses) /
                                    static_cast<double>(p.instructions)
                              : 0.0;
  r.llc_miss_stall_cycles = stall_cycles;
  r.mem_op_fraction = p.instructions ? static_cast<double>(p.mem_ops) /
                                           static_cast<double>(p.instructions)
                                     : 0.0;
  r.dram_row_hit_rate = p.dram_row_hit_rate;
  return r;
}

}  // namespace

void MissProfileRecorder::finish(const SimConfig& cfg, const CoreStats& stats,
                                 double row_hit_rate) {
  profile_.core = cfg.core;
  profile_.dram = cfg.dram;
  profile_.llc_latency_cycles = cfg.hierarchy.llc.latency_cycles;
  profile_.instructions = stats.instructions;
  profile_.mem_ops = stats.mem_ops;
  profile_.llc_accesses = stats.llc_accesses;
  profile_.llc_misses = stats.llc_misses;
  profile_.dram_row_hit_rate = row_hit_rate;
  profile_.tail_base_cycles = segment_;
  segment_ = 0.0;

  std::uint64_t row_hits = 0;
  double base_total = profile_.tail_base_cycles;
  for (const MissRecord& m : profile_.misses) {
    row_hits += m.row_hit ? 1 : 0;
    base_total += m.base_cycles;
  }
  profile_.row_hit_miss_count = row_hits;
  profile_.base_cycles_total = base_total;
}

SimResult replay_profile(const MissProfile& p, double extra_ns, ReplayMode mode) {
  const double freq = p.core.freq_ghz;
  // Same expression shape as DramModel::access (latency + extra) followed by
  // Core::dram_cycles (* freq): bit-identical to recomputing per access.
  const double dc_hit = (p.dram.row_hit_ns + extra_ns) * freq;
  const double dc_miss = (p.dram.row_miss_ns + extra_ns) * freq;
  const double inorder_hit_term = p.llc_latency_cycles + dc_hit;
  const double inorder_miss_term = p.llc_latency_cycles + dc_miss;

  if (mode == ReplayMode::kAuto && p.core.kind == CoreKind::kInOrder) {
    // O(1) fast path: every in-order cycle quantity — issue slots, integer
    // hit penalties, and (for dyadic configs) the miss terms — is an exact
    // integer, so no accumulation ever rounds and the closed form equals
    // the per-event sum bit-for-bit.  Guarded: fall through to the generic
    // walk when any term is non-integral (e.g. a fractional extra_ns).
    const auto n_hit = static_cast<double>(p.row_hit_miss_count);
    const auto n_miss = static_cast<double>(p.llc_misses - p.row_hit_miss_count);
    if (exact_int(p.base_cycles_total) && exact_int(inorder_hit_term) &&
        exact_int(inorder_miss_term) && exact_int(n_hit * inorder_hit_term) &&
        exact_int(n_miss * inorder_miss_term)) {
      const double cycles =
          p.base_cycles_total + n_hit * inorder_hit_term + n_miss * inorder_miss_term;
      const double stall = n_hit * dc_hit + n_miss * dc_miss;
      return build_result(p, cycles, stall);
    }
  }

  double cycles = 0.0;
  double stall = 0.0;
  const double line = p.core.accelerator_line_cycles;
  for (const MissRecord& m : p.misses) {
    cycles += m.base_cycles;
    const double dc = m.row_hit ? dc_hit : dc_miss;
    switch (m.kind) {
      case MissKind::kInOrder:
        cycles += m.row_hit ? inorder_hit_term : inorder_miss_term;
        stall += dc;
        break;
      case MissKind::kOooDependent:
      case MissKind::kAccelBurstHead:
        cycles += dc;
        stall += dc;
        break;
      case MissKind::kOooIndependent: {
        const double exposed = dc / static_cast<double>(m.mlp);
        cycles += exposed;
        stall += exposed;
        break;
      }
      case MissKind::kAccelStream:
        cycles += line;
        stall += line;
        break;
    }
  }
  cycles += p.tail_base_cycles;
  return build_result(p, cycles, stall);
}

}  // namespace photorack::cpusim
