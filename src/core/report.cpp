#include "core/report.hpp"

#include <cmath>
#include <ostream>

namespace photorack::core {

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& paper_ref) {
  os << '\n' << std::string(74, '=') << '\n';
  os << title << '\n';
  os << "reproduces: " << paper_ref << '\n';
  os << std::string(74, '=') << '\n';
}

void check_line(std::ostream& os, const std::string& what, double paper, double measured,
                double rel_tolerance) {
  const double rel =
      paper != 0.0 ? std::fabs(measured - paper) / std::fabs(paper) : std::fabs(measured);
  const char* marker = rel <= rel_tolerance ? "[ok]   " : "[drift]";
  os << marker << ' ' << what << ": paper=" << paper << " measured=" << measured << '\n';
}

}  // namespace photorack::core
