#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "phot/units.hpp"

namespace photorack::phot {

/// One WDM photonic link technology (a row of the paper's Table I).
struct LinkTechnology {
  std::string name;
  Gbps bandwidth;          // per-link aggregate
  PjPerBit energy;         // link energy, including laser where published
  Gbps gbps_per_channel;   // per-wavelength rate
  int channels = 1;        // wavelengths per fiber
  bool co_packaged = false;  // DWDM parts must be co-packaged (Fig 3)
  std::string reference;

  /// Number of links (fibers) needed to provide `escape` of MCM escape
  /// bandwidth (Table I column 4; the paper sizes for 2 TB/s).
  [[nodiscard]] int links_for_escape(GBps escape) const;

  /// Aggregate transceiver power at full utilization of that escape
  /// (Table I column 5).
  [[nodiscard]] Watts power_for_escape(GBps escape) const;
};

/// The five technologies of Table I, in paper order:
/// 100G Ethernet, 400G Ethernet, Ayar TeraPHY 768G, 1.024T comb, 2.048T comb.
[[nodiscard]] std::span<const LinkTechnology> table1_links();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const LinkTechnology& link_by_name(const std::string& name);

/// Propagation/conversion latency model of §III-C2.
struct PropagationModel {
  double ns_per_meter = 5.0;   // light in fiber at ~0.75c
  Nanoseconds oeo = Nanoseconds{15.0};  // electrical-optical-electrical conversion

  /// One-way added latency over `reach` of fiber (no intermediate OEO within
  /// a rack, §III-C2).
  [[nodiscard]] Nanoseconds added_latency(Meters reach) const {
    return Nanoseconds{oeo.value + ns_per_meter * reach.value};
  }
};

/// The paper's headline intra-rack figure: 15 ns OEO + 4 m x 5 ns/m = 35 ns.
[[nodiscard]] inline Nanoseconds intra_rack_added_latency() {
  using namespace literals;
  return PropagationModel{}.added_latency(4.0_m);
}

/// Comb laser source (§III-B): one source supplies many wavelengths.
struct CombLaserSource {
  int usable_lines = 64;
  double wall_plug_efficiency = 0.41;  // Kim et al. turn-key Kerr comb
  Watts optical_power_per_line = Watts{0.002};

  [[nodiscard]] Watts electrical_power() const {
    return Watts{optical_power_per_line.value * usable_lines / wall_plug_efficiency};
  }
  /// Sources needed to light `fibers` fibers of `channels` wavelengths.
  [[nodiscard]] int sources_for(int fibers, int channels) const;
};

}  // namespace photorack::phot
