#!/usr/bin/env python3
"""Compare a fresh BENCH_results.json against the committed baseline.

Both files carry the shared perf-ledger schema:

    {"benchmarks": [{"name": ..., "items_per_sec": ..., "ns_per_op": ...}]}

emitted by perf_microbench's JSON reporter and by the obs::Profiler
self-profile (photorack_cosim --profile-json).  Entries are matched by
name; the gate fails (exit 1) when any current ns/op exceeds
--max-ratio x its baseline.  Names present on only one side are reported
as warnings, never failures, so adding or retiring a scope does not need
a baseline dance in the same commit.

Usage:
    check_bench_regression.py --baseline BENCH_results.json \
        --current fresh.json [--max-ratio 1.25]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    entries = doc.get("benchmarks")
    if not isinstance(entries, list):
        raise SystemExit(f"{path}: no 'benchmarks' array (wrong schema?)")
    out = {}
    for entry in entries:
        name = entry.get("name")
        ns = entry.get("ns_per_op")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            raise SystemExit(f"{path}: malformed entry {entry!r}")
        out[name] = float(ns)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed BENCH_results.json")
    ap.add_argument("--current", required=True, help="freshly measured results")
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.25,
        help="fail when current ns/op > ratio x baseline (default 1.25)",
    )
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        raise SystemExit("no benchmark names in common — nothing to gate on")

    width = max(len(n) for n in shared)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline ns/op':>14}  {'current ns/op':>13}  ratio")
    for name in shared:
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf") if cur > 0 else 1.0
        flag = ""
        if ratio > args.max_ratio:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"{name:<{width}}  {base:>14.1f}  {cur:>13.1f}  {ratio:>5.2f}{flag}")

    for name in sorted(set(current) - set(baseline)):
        print(f"warning: '{name}' has no baseline entry (new scope?) — not gated")
    for name in sorted(set(baseline) - set(current)):
        print(f"warning: '{name}' missing from current results — not gated")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.2f}x (worst: {worst[0]} at {worst[1]:.2f}x)"
        )
        return 1
    print(f"\nOK: {len(shared)} benchmark(s) within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
