#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace photorack::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Pearson, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> flat = {5, 5, 5};
  EXPECT_EQ(pearson(x, flat), 0.0);
  std::vector<double> one = {1.0};
  EXPECT_EQ(pearson(one, one), 0.0);
}

TEST(Pearson, KnownValue) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 2, 2, 5, 4};
  // Hand-computed: sxy = 9, sxx = 10, syy = 10.8 => r = 9/sqrt(108).
  EXPECT_NEAR(pearson(x, y), 9.0 / std::sqrt(108.0), 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Means, MeanGeomeanMax) {
  std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 7.0);
  EXPECT_NEAR(geomean_of(v), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(max_of(v), 16.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(HistogramTest, CountsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 1e-12);
  EXPECT_EQ(h.cdf(-1.0), 0.0);
  EXPECT_EQ(h.cdf(10.0), 1.0);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(HistogramTest, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace photorack::sim
