// Ablation (§IV-A): how stale can the piggybacked occupancy state get
// before indirect routing degrades?  Sweeps the broadcast interval and
// measures stale mis-picks, second-hop repairs, and satisfied bandwidth.
#include <iostream>

#include "core/rack_system.hpp"
#include "core/report.hpp"
#include "net/flow_sim.hpp"
#include "sim/table.hpp"
#include "workloads/usage.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Ablation: piggyback state staleness",
                     "Section IV-A");

  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  const auto demand = workloads::FlowDemandModel::cpu_memory();

  net::FlowGenerator gen = [&demand](sim::Rng& rng) {
    net::FlowSpec spec;
    spec.src = static_cast<int>(rng.below(350));
    spec.dst = static_cast<int>((spec.src + 1 + rng.below(349)) % 350);
    // Elephant-heavy mix so indirect routing is exercised hard.
    spec.gbps = demand.sample_gbps(rng) + (rng.bernoulli(0.3) ? 300.0 : 0.0);
    spec.duration = static_cast<sim::TimePs>(rng.exponential(15.0 * sim::kPsPerUs));
    return spec;
  };

  sim::Table table({"Broadcast interval", "Satisfied bw", "Indirect share", "Mispicks",
                    "2nd hops", "Control Gb/s"});
  double worst_satisfied = 1.0;
  for (const double interval_us : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    auto fabric = system.make_fabric();
    net::FlowSimConfig cfg;
    cfg.arrivals_per_us = 4.0;
    cfg.sim_time = 300 * sim::kPsPerUs;
    cfg.piggyback_interval = static_cast<sim::TimePs>(interval_us * sim::kPsPerUs);
    net::FlowSimulator flow_sim(fabric, gen, cfg);
    const auto report = flow_sim.run();
    worst_satisfied = std::min(worst_satisfied, report.satisfied_fraction);

    net::PiggybackView probe(fabric, cfg.piggyback_interval);
    table.add_row({sim::fmt_fixed(interval_us, 1) + " us",
                   sim::fmt_pct(report.satisfied_fraction, 2),
                   sim::fmt_pct(report.indirect_fraction, 2),
                   sim::fmt_int(static_cast<long long>(report.stale_mispicks)),
                   sim::fmt_int(static_cast<long long>(report.second_hops)),
                   sim::fmt_fixed(probe.control_gbps(1e6 / interval_us), 3)});
  }
  table.print(std::cout);

  std::cout << "\npaper-vs-measured (qualitative, Section IV-A):\n";
  core::check_line(std::cout,
                   "bandwidth stays satisfied even with very stale state", 1.0,
                   worst_satisfied, 0.05);
  std::cout << "note: the piggyback status vector is 1 B per wavelength per "
               "source (the paper's 256 B example); even at a 0.1 us refresh "
               "the control bandwidth above stays far below one wavelength.\n";
  return 0;
}
