#include "traffic/arrival.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace photorack::traffic {

const config::EnumCodec<ArrivalKind>& arrival_kind_codec() {
  static const config::EnumCodec<ArrivalKind> codec(
      "arrival process", {{"poisson", ArrivalKind::kPoisson},
                          {"mmpp", ArrivalKind::kMmpp},
                          {"diurnal", ArrivalKind::kDiurnal},
                          {"trace", ArrivalKind::kTrace}});
  return codec;
}

namespace {

/// Scaled-gap Poisson: a unit-exponential stream divided by the rate.  This
/// is byte-for-byte the arrival layout RackCosim used before the traffic
/// engine existed — one exponential(1.0) draw per gap, same cast — so the
/// default process reproduces every pre-engine trajectory exactly, and
/// raising the rate compresses the SAME pattern instead of resampling.
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate_per_ms) : rate_(rate_per_ms) {}

  sim::TimePs next_gap(sim::TimePs /*now*/, sim::Rng& rng) override {
    const double unit = rng.exponential(1.0);
    return static_cast<sim::TimePs>(unit * static_cast<double>(sim::kPsPerMs) /
                                    rate_);
  }

  [[nodiscard]] ArrivalKind kind() const override { return ArrivalKind::kPoisson; }

 private:
  double rate_;
};

/// 2-state MMPP: exponential dwells in an ON state (rate * burst_rate_mult)
/// and an OFF state whose rate is derived so the time-averaged rate equals
/// the base rate.  Dwell boundaries are absolute times; by memorylessness,
/// redrawing the exponential gap after crossing a boundary at the boundary's
/// state rate is a faithful simulation of the modulated process.
class MmppProcess final : public ArrivalProcess {
 public:
  MmppProcess(double rate_per_ms, double on_mult, double on_fraction,
              sim::TimePs mean_on)
      : rate_on_(rate_per_ms * on_mult),
        rate_off_(rate_per_ms * (1.0 - on_fraction * on_mult) /
                  (1.0 - on_fraction)),
        mean_on_(mean_on),
        mean_off_(static_cast<sim::TimePs>(static_cast<double>(mean_on) *
                                           (1.0 - on_fraction) / on_fraction)),
        on_fraction_(on_fraction) {}

  sim::TimePs next_gap(sim::TimePs now, sim::Rng& rng) override {
    sim::TimePs t = now;
    if (!started_) {
      // Start from the stationary state distribution so finite-horizon runs
      // meet the mean-rate contract in expectation, not just asymptotically.
      on_ = rng.bernoulli(on_fraction_);
      next_switch_ = t + dwell(rng);
      started_ = true;
    }
    while (true) {
      const double rate = on_ ? rate_on_ : rate_off_;
      if (rate > 0.0) {
        const double unit = rng.exponential(1.0);
        const auto gap = static_cast<sim::TimePs>(
            unit * static_cast<double>(sim::kPsPerMs) / rate);
        if (t + gap < next_switch_) return (t + gap) - now;
      }
      // No arrival before the state flips (or this state emits none at
      // all): advance to the boundary and redraw in the other state.
      t = next_switch_;
      on_ = !on_;
      next_switch_ = t + dwell(rng);
    }
  }

  [[nodiscard]] ArrivalKind kind() const override { return ArrivalKind::kMmpp; }

 private:
  sim::TimePs dwell(sim::Rng& rng) {
    const auto mean = static_cast<double>(on_ ? mean_on_ : mean_off_);
    return std::max<sim::TimePs>(1,
                                 static_cast<sim::TimePs>(rng.exponential(mean)));
  }

  double rate_on_;
  double rate_off_;
  sim::TimePs mean_on_;
  sim::TimePs mean_off_;
  double on_fraction_;
  bool started_ = false;
  bool on_ = false;
  sim::TimePs next_switch_ = 0;
};

/// Sinusoidally rate-modulated Poisson via Lewis-Shedler thinning:
/// candidates arrive at the peak rate and are accepted with probability
/// rate(t) / peak, so rate(t) = base * (1 + A sin(2 pi t / period)) exactly.
/// Mean acceptance probability is 1 / (1 + A) >= 1/2, so the rejection loop
/// terminates quickly.
class DiurnalProcess final : public ArrivalProcess {
 public:
  DiurnalProcess(double rate_per_ms, double amplitude, sim::TimePs period)
      : rate_(rate_per_ms), amplitude_(amplitude), period_(period) {}

  sim::TimePs next_gap(sim::TimePs now, sim::Rng& rng) override {
    const double peak = rate_ * (1.0 + amplitude_);
    sim::TimePs t = now;
    while (true) {
      const double unit = rng.exponential(1.0);
      t += static_cast<sim::TimePs>(unit * static_cast<double>(sim::kPsPerMs) /
                                    peak);
      const double phase = 2.0 * std::numbers::pi *
                           std::fmod(static_cast<double>(t),
                                     static_cast<double>(period_)) /
                           static_cast<double>(period_);
      const double rate_t = rate_ * (1.0 + amplitude_ * std::sin(phase));
      if (rng.uniform() * peak < rate_t) return t - now;
    }
  }

  [[nodiscard]] ArrivalKind kind() const override { return ArrivalKind::kDiurnal; }

 private:
  double rate_;
  double amplitude_;
  sim::TimePs period_;
};

/// Replay of explicit arrival timestamps; deterministic and RNG-free.
/// Returns kNoMoreArrivals once the trace is exhausted.
class TraceProcess final : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<sim::TimePs> times) : times_(std::move(times)) {
    for (std::size_t i = 0; i + 1 < times_.size(); ++i)
      if (times_[i] > times_[i + 1])
        throw std::invalid_argument(
            "arrival trace: timestamps must be non-decreasing");
    if (!times_.empty() && times_.front() < 0)
      throw std::invalid_argument("arrival trace: timestamps must be >= 0");
  }

  sim::TimePs next_gap(sim::TimePs now, sim::Rng& /*rng*/) override {
    if (next_ >= times_.size()) return kNoMoreArrivals;
    const sim::TimePs at = times_[next_++];
    return at > now ? at - now : 0;
  }

  [[nodiscard]] ArrivalKind kind() const override { return ArrivalKind::kTrace; }

 private:
  std::vector<sim::TimePs> times_;
  std::size_t next_ = 0;
};

}  // namespace

std::vector<sim::TimePs> load_arrival_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("arrival trace: cannot open '" + path + "'");
  std::vector<sim::TimePs> times;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(start, end - start + 1);
    char* parsed_end = nullptr;
    const double ms = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size() || !std::isfinite(ms))
      throw std::runtime_error("arrival trace: bad timestamp '" + token + "' at " +
                               path + ":" + std::to_string(line_no));
    times.push_back(
        static_cast<sim::TimePs>(ms * static_cast<double>(sim::kPsPerMs)));
  }
  return times;
}

std::unique_ptr<ArrivalProcess> make_trace_process(
    std::vector<sim::TimePs> arrival_times) {
  return std::make_unique<TraceProcess>(std::move(arrival_times));
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalConfig& cfg,
                                                     double rate_per_ms) {
  if (cfg.kind != ArrivalKind::kTrace && !(rate_per_ms > 0.0))
    throw std::invalid_argument("arrival process: rate must be positive");
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonProcess>(rate_per_ms);
    case ArrivalKind::kMmpp: {
      if (!(cfg.burst_rate_mult >= 1.0))
        throw std::invalid_argument("arrival process: burst_rate_mult must be >= 1");
      if (!(cfg.burst_fraction > 0.0) || !(cfg.burst_fraction < 1.0))
        throw std::invalid_argument(
            "arrival process: burst_fraction must be in (0,1)");
      if (cfg.burst_rate_mult * cfg.burst_fraction > 1.0 + 1e-12)
        throw std::invalid_argument(
            "arrival process: burst_rate_mult * burst_fraction must be <= 1 "
            "(the OFF-state rate would go negative)");
      if (cfg.burst_mean < 1)
        throw std::invalid_argument("arrival process: burst_mean must be positive");
      return std::make_unique<MmppProcess>(rate_per_ms, cfg.burst_rate_mult,
                                           cfg.burst_fraction, cfg.burst_mean);
    }
    case ArrivalKind::kDiurnal: {
      if (!(cfg.diurnal_amplitude >= 0.0) || !(cfg.diurnal_amplitude < 1.0))
        throw std::invalid_argument(
            "arrival process: diurnal_amplitude must be in [0,1)");
      if (cfg.diurnal_period < 1)
        throw std::invalid_argument(
            "arrival process: diurnal_period must be positive");
      return std::make_unique<DiurnalProcess>(rate_per_ms, cfg.diurnal_amplitude,
                                              cfg.diurnal_period);
    }
    case ArrivalKind::kTrace: {
      if (cfg.trace_file.empty())
        throw std::invalid_argument(
            "arrival process: trace replay needs cosim.arrival.trace_file");
      return std::make_unique<TraceProcess>(load_arrival_trace(cfg.trace_file));
    }
  }
  throw std::logic_error("arrival process: unhandled kind");
}

}  // namespace photorack::traffic
