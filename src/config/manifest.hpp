#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "config/param_registry.hpp"

namespace photorack::config {

/// Reproducibility record of one run: the campaign identity, seeds, the
/// sweep axes, the explicit overrides, and the FULL resolved parameter
/// tree.  Serialized as deterministic JSON (fixed key order; params sorted
/// by path; all values as strings in their canonical registry form), so
/// two runs of the same configuration produce byte-identical manifests and
/// any published CSV row is reproducible from its artifact alone:
/// single-valued knobs come from "params", the row's own axis columns pick
/// the point out of "axes", and per-scenario seeds derive from campaign +
/// axis values + base_seed (ScenarioSpec::derived_seed).
struct Manifest {
  std::string tool;      // emitting binary ("photorack_sweep", ...)
  std::string campaign;  // campaign name or run label
  std::uint64_t base_seed = 0;

  /// Grid axes in grid order (registry paths or free axes like "bench").
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  /// The ordered --set list as given (values may be multi-valued).
  std::vector<std::pair<std::string, std::vector<std::string>>> overrides;

  [[nodiscard]] std::string to_json(const ParamRegistry& reg) const;
};

}  // namespace photorack::config
