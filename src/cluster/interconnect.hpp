#pragma once

#include <vector>

#include "phot/units.hpp"
#include "sim/time.hpp"

namespace photorack::cluster {

/// Bandwidth/latency/energy model of the inter-rack DWDM interconnect: one
/// directed link of `gbps_per_link` between every ordered rack pair, each
/// crossing costing `hop_ns` of propagation plus transceiver energy at
/// `pj_per_bit`.  Deliberately coarse next to the intra-rack wavelength
/// fabric — the cluster question (Ajibola et al.: rack-scale vs cluster-scale
/// disaggregation) is decided by how much spilled traffic leaves the rack and
/// what the always-on uplink transceivers burn, not by per-wavelength
/// contention two hops away.
///
/// Reservation state is plain Gb/s per directed link, mutated only by the
/// cluster coordinator between synchronization windows (never from rack
/// worker threads), so no locking is needed.
class InterRackFabric {
 public:
  InterRackFabric(int racks, double gbps_per_link, double hop_ns,
                  double pj_per_bit);

  [[nodiscard]] int racks() const { return racks_; }
  [[nodiscard]] double gbps_per_link() const { return gbps_; }

  /// Directed link id for src -> dst; throws std::invalid_argument when
  /// src == dst or either index is out of range.
  [[nodiscard]] int link(int src, int dst) const;

  /// Reserve up to `gbps` on the link; returns the amount actually granted
  /// (never negative, never more than the link's free capacity).
  double reserve(int link_id, double gbps);
  /// Return previously granted capacity; throws std::logic_error when more
  /// is released than is allocated (a double-release bug upstream).
  void release(int link_id, double gbps);

  [[nodiscard]] double allocated(int link_id) const;
  /// Mean allocated fraction over every directed link.
  [[nodiscard]] double utilization() const;

  /// Per-message propagation delay.  Never below 1 ps: the cluster loop's
  /// conservative window is exactly this wide, and a zero-width window
  /// could not make progress.
  [[nodiscard]] sim::TimePs hop_latency_ps() const { return hop_ps_; }

  /// Always-on transceiver power of the cluster uplinks: one uplink per
  /// rack at the link rate, lasers on whether or not traffic flows (the
  /// same lasers-always-on discipline as the intra-rack photonic floor).
  /// Rack-scale disaggregation leaves the uplinks dark (0 W) — that is the
  /// energy contrast the cluster_energy campaign measures.
  [[nodiscard]] double power_w(bool lit) const;

 private:
  int racks_;
  double gbps_;
  sim::TimePs hop_ps_;
  double pj_per_bit_;
  std::vector<double> alloc_;  // per directed link, Gb/s

  void check_link(int link_id) const;
};

}  // namespace photorack::cluster
