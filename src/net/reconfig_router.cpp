#include "net/reconfig_router.hpp"

#include <algorithm>

namespace photorack::net {

ReconfigRouter::ReconfigRouter(const rack::SpatialFabricPlan& plan,
                               CentralizedScheduler& scheduler, Config cfg)
    : plan_(&plan), scheduler_(&scheduler), cfg_(cfg) {}

ReconfigRouter::Circuit* ReconfigRouter::find_circuit(int a, int b) {
  const auto it = circuits_.find({a, b});
  return it == circuits_.end() ? nullptr : &it->second;
}

double ReconfigRouter::circuit_headroom(int a, int b) const {
  const auto it = circuits_.find({a, b});
  return it == circuits_.end() ? 0.0 : it->second.capacity - it->second.used;
}

bool ReconfigRouter::take(int a, int b, double gbps) {
  Circuit* c = find_circuit(a, b);
  if (c == nullptr || c->capacity - c->used < gbps) return false;
  c->used += gbps;
  return true;
}

ReconfigRouter::Placement ReconfigRouter::place(int src, int dst, double gbps,
                                                sim::TimePs now) {
  Placement p;

  // 1. Existing direct circuit.
  if (take(src, dst, gbps)) {
    p.placed = true;
    p.gbps = gbps;
    p.ready_at = now;
    p.circuits_used = {{src, dst}};
    ++direct_hits_;
    return p;
  }

  // 2. Indirect over circuits that are already up (the §IV-B synergy):
  //    only intermediates with live src->mid and mid->dst circuits qualify.
  if (cfg_.use_indirect) {
    for (const auto& [key, circuit] : circuits_) {
      const auto [a, mid] = key;
      if (a != src || mid == dst) continue;
      if (circuit.capacity - circuit.used < gbps) continue;
      if (circuit_headroom(mid, dst) < gbps) continue;
      take(src, mid, gbps);
      take(mid, dst, gbps);
      p.placed = true;
      p.gbps = gbps;
      p.ready_at = now;
      p.indirect = true;
      p.circuits_used = {{src, mid}, {mid, dst}};
      ++indirect_hits_;
      return p;
    }
  }

  // 3. Reconfigure: ask the scheduler for a fresh circuit.
  const auto grant = scheduler_->request_circuit(src, dst, now);
  if (!grant.granted) return p;  // no shared switch / ports exhausted
  ++reconfigs_;
  auto& circuit = circuits_[{src, dst}];
  circuit.capacity += cfg_.circuit_gbps;
  if (circuit.capacity - circuit.used < gbps) {
    // Even a fresh circuit cannot carry this flow in one piece.
    p.placed = false;
    return p;
  }
  circuit.used += gbps;
  p.placed = true;
  p.gbps = gbps;
  p.ready_at = grant.ready_at;
  p.reconfigured = true;
  p.circuits_used = {{src, dst}};
  return p;
}

void ReconfigRouter::release(const Placement& placement) {
  if (!placement.placed) return;
  for (const auto& [a, b] : placement.circuits_used) {
    Circuit* c = find_circuit(a, b);
    if (c != nullptr) c->used = std::max(0.0, c->used - placement.gbps);
  }
}

}  // namespace photorack::net
