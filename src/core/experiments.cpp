#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "workloads/generators.hpp"

namespace photorack::core {

namespace {

bool near(double a, double b) { return std::fabs(a - b) < 1e-9; }

}  // namespace

const CpuRunRecord& CpuSweep::find(const std::string& full_name, cpusim::CoreKind core,
                                   double extra_ns) const {
  for (const auto& r : runs)
    if (r.core == core && near(r.extra_ns, extra_ns) && r.bench->full_name() == full_name)
      return r;
  throw std::out_of_range("CpuSweep::find: no record for " + full_name);
}

std::vector<const CpuRunRecord*> CpuSweep::records(const std::string& suite,
                                                   const std::string& input,
                                                   cpusim::CoreKind core,
                                                   double extra_ns) const {
  std::vector<const CpuRunRecord*> out;
  for (const auto& r : runs) {
    if (r.core != core || !near(r.extra_ns, extra_ns)) continue;
    if (!suite.empty() && r.bench->suite != suite) continue;
    if (!input.empty() && r.bench->input != input) continue;
    out.push_back(&r);
  }
  return out;
}

std::vector<double> CpuSweep::slowdowns(const std::string& suite, const std::string& input,
                                        cpusim::CoreKind core, double extra_ns) const {
  std::vector<double> out;
  for (const auto* r : records(suite, input, core, extra_ns)) out.push_back(r->slowdown);
  return out;
}

double CpuSweep::overall_mean_slowdown(cpusim::CoreKind core, double extra_ns) const {
  return sim::mean_of(slowdowns("", "", core, extra_ns));
}

CpuSweep run_cpu_sweep(const CpuSweepOptions& opt) {
  const auto& benches = workloads::cpu_benchmarks();

  // Materialize the run matrix first so indices are stable for parallel_for.
  CpuSweep sweep;
  for (const auto& bench : benches)
    for (const auto core : opt.cores)
      for (const double extra : opt.extra_latencies_ns) {
        CpuRunRecord rec;
        rec.bench = &bench;
        rec.core = core;
        rec.extra_ns = extra;
        sweep.runs.push_back(rec);
      }

  auto simulate = [&](std::size_t i) {
    CpuRunRecord& rec = sweep.runs[i];
    cpusim::SimConfig cfg;
    cfg.core.kind = rec.core;
    cfg.dram.extra_ns = rec.extra_ns;
    cfg.warmup_instructions = opt.warmup_instructions;
    cfg.measured_instructions = opt.measured_instructions;
    workloads::SyntheticTrace trace(rec.bench->trace);
    rec.result = cpusim::run_simulation(trace, cfg);
  };

  if (opt.parallel) {
    sim::parallel_for(sweep.runs.size(), simulate);
  } else {
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) simulate(i);
  }

  // Fill slowdowns against the extra=0 baselines.
  std::map<std::pair<std::string, int>, double> baseline_ns;
  for (const auto& r : sweep.runs)
    if (near(r.extra_ns, 0.0))
      baseline_ns[{r.bench->full_name(), static_cast<int>(r.core)}] = r.result.time_ns;
  for (auto& r : sweep.runs) {
    const auto it = baseline_ns.find({r.bench->full_name(), static_cast<int>(r.core)});
    if (it == baseline_ns.end() || it->second <= 0.0)
      throw std::logic_error("run_cpu_sweep: missing extra=0 baseline");
    r.slowdown = r.result.time_ns / it->second - 1.0;
  }
  return sweep;
}

const GpuRunRecord& GpuSweep::find(const std::string& app_name, double extra_ns) const {
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns) && r.app->name == app_name) return r;
  throw std::out_of_range("GpuSweep::find: no record for " + app_name);
}

double GpuSweep::mean_slowdown(double extra_ns) const {
  sim::RunningStats s;
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns)) s.add(r.slowdown);
  return s.mean();
}

double GpuSweep::max_slowdown(double extra_ns) const {
  sim::RunningStats s;
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns)) s.add(r.slowdown);
  return s.max();
}

GpuSweep run_gpu_sweep(std::vector<double> extra_latencies_ns, double hbm_bandwidth_derate) {
  const auto& apps = workloads::gpu_apps();
  GpuSweep sweep;
  std::map<std::string, double> baseline_us;
  // Baselines always use the photonic (underated, extra=0) configuration.
  for (const auto& app : apps) {
    gpusim::GpuConfig gpu;
    baseline_us[app.name] = gpusim::run_app(app, gpu).time_us;
  }
  for (const double extra : extra_latencies_ns) {
    for (const auto& app : apps) {
      gpusim::GpuConfig gpu;
      gpu.extra_hbm_ns = extra;
      gpu.hbm_bandwidth_derate = hbm_bandwidth_derate;
      GpuRunRecord rec;
      rec.app = &app;
      rec.extra_ns = extra;
      rec.result = gpusim::run_app(app, gpu);
      rec.slowdown = rec.result.time_us / baseline_us[app.name] - 1.0;
      sweep.runs.push_back(std::move(rec));
    }
  }
  return sweep;
}

std::vector<Fig6Row> fig6_rows(const CpuSweep& sweep) {
  std::vector<Fig6Row> rows;
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"PARSEC", "small"}, {"PARSEC", "medium"}, {"PARSEC", "large"},
      {"NAS", "A"},        {"NAS", "B"},         {"NAS", "C"},
      {"Rodinia", "default"}};
  for (const auto& [suite, input] : groups) {
    Fig6Row row;
    row.suite = suite;
    row.input = input;
    const auto io = sweep.slowdowns(suite, input, cpusim::CoreKind::kInOrder, 35.0);
    const auto ooo = sweep.slowdowns(suite, input, cpusim::CoreKind::kOutOfOrder, 35.0);
    row.avg_inorder = sim::mean_of(io);
    row.max_inorder = sim::max_of(io);
    row.avg_ooo = sim::mean_of(ooo);
    row.max_ooo = sim::max_of(ooo);
    rows.push_back(row);
  }
  return rows;
}

Fig7Result fig7_correlation(const CpuSweep& sweep, cpusim::CoreKind core) {
  Fig7Result out;
  auto collect = [&](const std::string& suite, const std::string& input,
                     std::vector<Fig7Row>& rows) {
    std::vector<double> s, m;
    for (const auto* r : sweep.records(suite, input, core, 35.0)) {
      Fig7Row row;
      row.bench = r->bench->name + "/" + r->bench->input;
      row.slowdown = r->slowdown;
      row.llc_miss_rate = r->result.llc_miss_rate;
      rows.push_back(row);
      s.push_back(row.slowdown);
      m.push_back(row.llc_miss_rate);
    }
    return sim::pearson(s, m);
  };
  out.pearson_parsec_large = collect("PARSEC", "large", out.parsec_large);
  out.pearson_rodinia = collect("Rodinia", "default", out.rodinia);
  std::vector<Fig7Row> all_parsec;
  out.pearson_parsec_all_inputs = collect("PARSEC", "", all_parsec);
  return out;
}

std::vector<Fig8Row> fig8_rows(const CpuSweep& sweep, cpusim::CoreKind core) {
  std::vector<Fig8Row> rows;
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"PARSEC", "small"}, {"PARSEC", "medium"}, {"PARSEC", "large"},
      {"NAS", "A"},        {"NAS", "B"},         {"NAS", "C"},
      {"Rodinia", "default"}};
  for (const auto& [suite, input] : groups) {
    Fig8Row row;
    row.suite = suite;
    row.input = input;
    row.slowdown_25 = sim::mean_of(sweep.slowdowns(suite, input, core, 25.0));
    row.slowdown_30 = sim::mean_of(sweep.slowdowns(suite, input, core, 30.0));
    row.slowdown_35 = sim::mean_of(sweep.slowdowns(suite, input, core, 35.0));
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig11Row> fig11_rows(const CpuSweep& cpu, const GpuSweep& gpu) {
  std::vector<Fig11Row> rows;
  for (const auto& name : workloads::rodinia_cpu_gpu_intersection()) {
    Fig11Row row;
    row.bench = name;
    row.inorder = cpu.find("Rodinia/" + name + "/default",
                           cpusim::CoreKind::kInOrder, 35.0)
                      .slowdown;
    row.ooo = cpu.find("Rodinia/" + name + "/default",
                       cpusim::CoreKind::kOutOfOrder, 35.0)
                  .slowdown;
    row.gpu = gpu.find(name, 35.0).slowdown;
    rows.push_back(row);
  }
  return rows;
}

Fig12Summary fig12_speedup(const CpuSweep& cpu, double electronic_gpu_bandwidth_derate) {
  Fig12Summary out;

  auto cpu_part = [&](cpusim::CoreKind core,
                      std::vector<std::pair<std::string, double>>& per_bench, double& avg,
                      double& mx) {
    std::vector<double> speedups;
    for (const auto& bench : workloads::cpu_benchmarks()) {
      // §VI-D restriction: count PARSEC only at "medium" to avoid counting
      // those benchmarks three times.
      if (bench.suite == "PARSEC" && bench.input != "medium") continue;
      if (bench.suite == "NAS" && bench.input != "B") continue;
      const auto& photonic = cpu.find(bench.full_name(), core, kPhotonicExtraNs);
      const auto& electronic = cpu.find(bench.full_name(), core, kElectronicExtraNs);
      const double speedup = electronic.result.time_ns / photonic.result.time_ns - 1.0;
      per_bench.emplace_back(bench.full_name(), speedup);
      speedups.push_back(speedup);
    }
    avg = sim::mean_of(speedups);
    mx = sim::max_of(speedups);
  };
  cpu_part(cpusim::CoreKind::kInOrder, out.cpu_inorder, out.cpu_inorder_avg,
           out.cpu_inorder_max);
  cpu_part(cpusim::CoreKind::kOutOfOrder, out.cpu_ooo, out.cpu_ooo_avg, out.cpu_ooo_max);

  // GPU comparison: the photonic design preserves full HBM escape bandwidth;
  // electronic switching both adds 85 ns and derates deliverable bandwidth.
  std::vector<double> speedups;
  for (const auto& app : workloads::gpu_apps()) {
    gpusim::GpuConfig photonic;
    photonic.extra_hbm_ns = kPhotonicExtraNs;
    gpusim::GpuConfig electronic;
    electronic.extra_hbm_ns = kElectronicExtraNs;
    electronic.hbm_bandwidth_derate = electronic_gpu_bandwidth_derate;
    const double tp = gpusim::run_app(app, photonic).time_us;
    const double te = gpusim::run_app(app, electronic).time_us;
    const double speedup = te / tp - 1.0;
    out.gpu.emplace_back(app.name, speedup);
    speedups.push_back(speedup);
  }
  out.gpu_avg = sim::mean_of(speedups);
  out.gpu_max = sim::max_of(speedups);
  return out;
}

}  // namespace photorack::core
