#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace photorack::net {

/// A traffic pattern for the flow-level simulator: called to produce the
/// next flow (src, dst, demand Gb/s, holding time).  Patterns are supplied
/// by benches (e.g. Cori-like CPU<->DDR4 demands from workloads::usage).
struct FlowSpec {
  int src = 0;
  int dst = 0;
  double gbps = 0.0;
  sim::TimePs duration = 0;
};

using FlowGenerator = std::function<FlowSpec(sim::Rng&)>;

struct FlowSimConfig {
  double arrivals_per_us = 2.0;       // Poisson arrival rate
  sim::TimePs sim_time = 200 * sim::kPsPerUs;
  sim::TimePs piggyback_interval = 1 * sim::kPsPerUs;
  std::uint64_t seed = 42;
};

struct FlowSimReport {
  std::uint64_t flows = 0;
  std::uint64_t fully_satisfied = 0;
  double offered_gbps_mean = 0.0;
  double satisfied_fraction = 0.0;    // sum satisfied / sum requested
  double direct_fraction = 0.0;       // of satisfied bandwidth
  double indirect_fraction = 0.0;
  std::uint64_t stale_mispicks = 0;
  std::uint64_t second_hops = 0;
  double mean_intermediates = 0.0;
  double peak_utilization = 0.0;

  [[nodiscard]] double blocking_probability() const {
    return flows ? 1.0 - static_cast<double>(fully_satisfied) / flows : 0.0;
  }
};

/// Event-driven flow-level simulation over the AWGR fabric: Poisson flow
/// arrivals, exponential-ish holding times from the generator, allocation
/// through IndirectRouter, release on departure, periodic piggyback
/// refresh.  Used by the §VI-A bandwidth bench and the routing tests.
class FlowSimulator {
 public:
  FlowSimulator(WavelengthFabric& fabric, FlowGenerator generator, FlowSimConfig cfg = {});

  FlowSimReport run();

 private:
  WavelengthFabric* fabric_;
  FlowGenerator generator_;
  FlowSimConfig cfg_;
};

}  // namespace photorack::net
