#pragma once

namespace photorack::workloads {

/// Per-accelerator resource footprint of a synchronous data-parallel
/// training job, for turning an `ml.*` knob set (accelerators, gradient MB)
/// into a rack resource request.  Numbers are A100-class: a training rank
/// pins a few host cores for the input pipeline, holds optimizer + activation
/// state in (disaggregated) memory proportional to the model shard, and
/// drives NIC bandwidth for checkpoint/input traffic outside the collective
/// itself.  Kept free of `disagg` types so the workloads layer stays below
/// the scheduler in the dependency order: the cosim builds the JobRequest.
struct MlAcceleratorProfile {
  double cpus_per_accel = 0.5;      ///< host cores feeding one accelerator
  double memory_gb_per_accel = 8.0; ///< optimizer/activation state per rank
  double nic_gbps_per_accel = 2.0;  ///< input + checkpoint traffic per rank

  /// Disaggregated-memory demand of a whole job: per-rank state plus three
  /// resident copies of the gradient payload (grads, momentum, variance).
  [[nodiscard]] double job_memory_gb(int accelerators, double gradient_mb) const {
    return memory_gb_per_accel * accelerators + 3.0 * gradient_mb * 1e-3;
  }

  /// The default profile used by the cosim's training-job stream.
  [[nodiscard]] static MlAcceleratorProfile a100_like() { return {}; }
};

}  // namespace photorack::workloads
