#include "rack/chips.hpp"

#include <gtest/gtest.h>

namespace photorack::rack {
namespace {

TEST(Chips, PerlmutterNodeDefaults) {
  NodeConfig node;
  EXPECT_EQ(node.cpus, 1);
  EXPECT_EQ(node.gpus, 4);
  EXPECT_EQ(node.nics, 4);
  EXPECT_EQ(node.ddr4_modules, 8);
  EXPECT_EQ(node.hbm_stacks, 4);
}

TEST(Chips, CpuEscapeBandwidth) {
  // 8 x 25.6 (DDR4) + 4 x 31.5 (PCIe to GPUs) + 4 x 25 (NICs) = 430.8 GB/s.
  NodeConfig node;
  EXPECT_NEAR(node.chip_escape(ChipType::kCpu).value, 430.8, 1e-9);
}

TEST(Chips, GpuEscapeBandwidth) {
  // 1555.2 (HBM) + 300 (NVLink) + 31.5 (PCIe) = 1886.7 GB/s.
  NodeConfig node;
  EXPECT_NEAR(node.chip_escape(ChipType::kGpu).value, 1886.7, 1e-9);
}

TEST(Chips, MemoryEscapeMatchesModuleBandwidth) {
  NodeConfig node;
  EXPECT_DOUBLE_EQ(node.chip_escape(ChipType::kDdr4).value, 25.6);
  EXPECT_DOUBLE_EQ(node.chip_escape(ChipType::kHbm).value, 1555.2);
  // CPU memory bandwidth totals 204.8 GB/s across eight channels.
  EXPECT_DOUBLE_EQ(node.chip_escape(ChipType::kDdr4).value * node.ddr4_modules, 204.8);
}

TEST(Chips, NicEscapeIsPcieAttachment) {
  NodeConfig node;
  EXPECT_DOUBLE_EQ(node.chip_escape(ChipType::kNic).value, 31.5);
}

TEST(Chips, RackTotals) {
  RackConfig rack;
  EXPECT_EQ(rack.nodes, 128);
  EXPECT_EQ(rack.total_chips(ChipType::kCpu), 128);
  EXPECT_EQ(rack.total_chips(ChipType::kGpu), 512);
  EXPECT_EQ(rack.total_chips(ChipType::kNic), 512);
  EXPECT_EQ(rack.total_chips(ChipType::kHbm), 512);
  EXPECT_EQ(rack.total_chips(ChipType::kDdr4), 1024);
}

TEST(Chips, SpecsCarryPackagingCap) {
  NodeConfig node;
  EXPECT_EQ(node.chip_spec(ChipType::kDdr4).max_per_mcm, 27);
  EXPECT_EQ(node.chip_spec(ChipType::kGpu).max_per_mcm, 0);  // escape-limited
}

TEST(Chips, SpecPowersArePositive) {
  NodeConfig node;
  for (const auto t : kAllChipTypes) EXPECT_GT(node.chip_spec(t).power.value, 0.0);
}

TEST(Chips, ToStringCoversAllTypes) {
  for (const auto t : kAllChipTypes) EXPECT_STRNE(to_string(t), "?");
}

}  // namespace
}  // namespace photorack::rack
