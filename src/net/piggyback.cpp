#include "net/piggyback.hpp"

namespace photorack::net {

PiggybackView::PiggybackView(const WavelengthFabric& fabric, sim::TimePs update_interval)
    : fabric_(&fabric), interval_(update_interval) {
  snapshot_.assign(static_cast<std::size_t>(fabric.mcms()) * fabric.mcms(), 0.0);
  take_snapshot();
}

void PiggybackView::take_snapshot() {
  const int n = fabric_->mcms();
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      snapshot_[static_cast<std::size_t>(s) * n + d] = fabric_->free_direct(s, d);
}

double PiggybackView::stale_free_direct(int src, int dst) const {
  return snapshot_[static_cast<std::size_t>(src) * fabric_->mcms() + dst];
}

bool PiggybackView::maybe_refresh(sim::TimePs now) {
  if (now - last_refresh_ < interval_) return false;
  force_refresh(now);
  return true;
}

void PiggybackView::force_refresh(sim::TimePs now) {
  take_snapshot();
  last_refresh_ = now;
  ++rounds_;
}

double PiggybackView::bytes_per_source_per_round() const {
  // One 8-bit occupancy field per local wavelength on each parallel AWGR
  // port (the paper's example: 256 wavelengths x 8 bits = 256 bytes).
  double lambdas = 0;
  for (int a = 0; a < fabric_->parallel_awgrs(); ++a) lambdas += 1;
  // Each port carries up to the AWGR radix wavelengths; use mcms as the
  // reachable-destination count per AWGR.
  return static_cast<double>(fabric_->mcms()) * fabric_->parallel_awgrs();  // 1 B per lambda
}

double PiggybackView::control_gbps(double rounds_per_second) const {
  const double bytes =
      bytes_per_source_per_round() * fabric_->mcms() * rounds_per_second;
  return bytes * 8.0 / 1e9;
}

}  // namespace photorack::net
