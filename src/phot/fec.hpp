#pragma once

#include <cstdint>

#include "phot/units.hpp"

namespace photorack::phot {

/// Lightweight FEC + CRC model following §III-C3 (the CXL / PCIe-Gen6 style
/// scheme): per-flit FEC corrects any single error burst of up to
/// `correctable_burst_bits`; flits with two or more bursts are mis-corrected
/// and then caught by a strong CRC, which triggers a link-level
/// retransmission.  The target is the 1e-18 memory-class BER of §III-A.
struct FecConfig {
  int flit_bytes = 256;             // PCIe Gen6 flit
  int correctable_burst_bits = 16;  // single burst corrected
  int crc_bits = 64;                // strong per-flit CRC ("64-flit CRC")
  double fec_overhead_fraction = 0.001;  // <0.1% bandwidth loss (§III-C3)
  Nanoseconds fec_latency{2.5};          // 2-3 ns all-inclusive FEC math
};

struct FecOutcome {
  double raw_ber;             // physical-layer bit error rate
  double flit_error_prob;     // P[>=1 burst in a flit] before correction
  double post_fec_flit_fail;  // P[>=2 bursts] ~ mis-corrected flits
  double crc_escape_prob;     // mis-corrections that also pass CRC
  double effective_ber;       // escapes expressed per transferred bit
  double retransmit_rate;     // flit retransmission probability
  double bandwidth_loss;      // FEC overhead + retransmissions
};

class FecModel {
 public:
  explicit FecModel(FecConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const FecConfig& config() const { return cfg_; }

  /// Error statistics for a given raw (pre-FEC) BER.  The paper's worked
  /// example: a flit BER of 1e-6 becomes ~1e-12 after correction because two
  /// independent bursts are needed to defeat the FEC.
  [[nodiscard]] FecOutcome evaluate(double raw_ber) const;

  /// True when the post-CRC effective BER meets `target` (1e-18 for memory).
  [[nodiscard]] bool meets_target(double raw_ber, double target = 1e-18) const;

  /// Worst raw BER that still meets the target (bisection on evaluate()).
  [[nodiscard]] double max_raw_ber_for_target(double target = 1e-18) const;

  /// Serialization + FEC latency at a given per-lane rate (§III-C3: ~10 ns
  /// serialization at 200 Gb/s plus 2-3 ns of FEC; 5 ns + FEC at >=400 Gb/s).
  [[nodiscard]] Nanoseconds total_latency(Gbps lane_rate) const;

 private:
  FecConfig cfg_;
};

/// Failures-in-time for a given effective BER and sustained data rate:
/// FIT = expected escaped-error events per 1e9 hours.
[[nodiscard]] double fit_rate(double effective_ber, Gbps data_rate);

}  // namespace photorack::phot
