// Multi-rack cluster co-simulation: the pinned contracts from ISSUE 9 —
// a one-rack cluster reproduces RackCosim field for field, coupled runs are
// bit-identical at any worker count (the conservative-window determinism
// contract), spill bookkeeping conserves jobs and bandwidth, and the
// cluster_energy campaign serializes byte-identically at every --jobs level.
#include "cluster/cluster_cosim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "cosim/rack_cosim.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

namespace photorack::cluster {
namespace {

cosim::CosimConfig quick_cosim(double arrivals_per_ms = 4.0) {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = arrivals_per_ms;
  cfg.sim_time = 120 * sim::kPsPerMs;
  cfg.mean_duration = 20 * sim::kPsPerMs;
  return cfg;
}

ClusterReport run_cluster(const ClusterConfig& cluster,
                          const cosim::CosimConfig& cfg) {
  return run_cluster_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                           workloads::UsageModel::cori(), cluster, cfg);
}

void expect_tails_identical(const disagg::TailStats& a,
                            const disagg::TailStats& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p999, b.p999);
}

// Bitwise equality over every field a report carries — the determinism
// contract is "identical", not "close".
void expect_reports_identical(const cosim::CosimReport& a,
                              const cosim::CosimReport& b) {
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.jobs.mean_cpu_utilization, b.jobs.mean_cpu_utilization);
  EXPECT_EQ(a.jobs.mean_gpu_utilization, b.jobs.mean_gpu_utilization);
  EXPECT_EQ(a.jobs.mean_memory_utilization, b.jobs.mean_memory_utilization);
  EXPECT_EQ(a.jobs.mean_marooned_cpu, b.jobs.mean_marooned_cpu);
  EXPECT_EQ(a.jobs.mean_marooned_memory, b.jobs.mean_marooned_memory);
  expect_tails_identical(a.jobs.wait_ms, b.jobs.wait_ms);
  expect_tails_identical(a.jobs.slowdown, b.jobs.slowdown);
  expect_tails_identical(a.jobs.fct_ms, b.jobs.fct_ms);
  EXPECT_EQ(a.jobs.censored_waiting, b.jobs.censored_waiting);
  EXPECT_EQ(a.jobs.censored_running, b.jobs.censored_running);
  EXPECT_EQ(a.jobs.events.scheduled, b.jobs.events.scheduled);
  EXPECT_EQ(a.jobs.events.dispatched, b.jobs.events.dispatched);
  EXPECT_EQ(a.jobs.events.cancelled, b.jobs.events.cancelled);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.fully_satisfied, b.flows.fully_satisfied);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.flows.indirect_fraction, b.flows.indirect_fraction);
  EXPECT_EQ(a.flows.peak_utilization, b.flows.peak_utilization);
  EXPECT_EQ(a.mean_speed_fraction, b.mean_speed_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.max_stretch, b.max_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.photonic_power_w, b.photonic_power_w);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.fault.faults, b.fault.faults);
  EXPECT_EQ(a.fault.repairs, b.fault.repairs);
  EXPECT_EQ(a.fault.interrupted, b.fault.interrupted);
  EXPECT_EQ(a.fault.requeued, b.fault.requeued);
  EXPECT_EQ(a.fault.killed, b.fault.killed);
  EXPECT_EQ(a.fault.availability, b.fault.availability);
}

// ---------------------------------------------------------------------------
// Inter-rack fabric model.
// ---------------------------------------------------------------------------

TEST(InterRackFabric, ValidatesConstruction) {
  EXPECT_THROW(InterRackFabric(0, 400.0, 200.0, 30.0), std::invalid_argument);
  EXPECT_THROW(InterRackFabric(2, 0.0, 200.0, 30.0), std::invalid_argument);
  EXPECT_THROW(InterRackFabric(2, 400.0, -1.0, 30.0), std::invalid_argument);
  EXPECT_THROW(InterRackFabric(2, 400.0, 200.0, -1.0), std::invalid_argument);
}

TEST(InterRackFabric, LinkIdsRejectSelfAndOutOfRange) {
  InterRackFabric fabric(3, 400.0, 200.0, 30.0);
  EXPECT_THROW((void)fabric.link(0, 0), std::invalid_argument);
  EXPECT_THROW((void)fabric.link(-1, 1), std::invalid_argument);
  EXPECT_THROW((void)fabric.link(0, 3), std::invalid_argument);
  EXPECT_NE(fabric.link(0, 1), fabric.link(1, 0));  // links are directed
}

TEST(InterRackFabric, ReserveGrantsUpToCapacityAndReleaseRestores) {
  InterRackFabric fabric(2, 100.0, 200.0, 30.0);
  const int link = fabric.link(0, 1);
  EXPECT_EQ(fabric.reserve(link, 60.0), 60.0);
  EXPECT_EQ(fabric.reserve(link, 60.0), 40.0);  // clipped to the residual
  EXPECT_EQ(fabric.reserve(link, 60.0), 0.0);   // saturated
  EXPECT_EQ(fabric.allocated(link), 100.0);
  fabric.release(link, 100.0);
  EXPECT_EQ(fabric.allocated(link), 0.0);
  EXPECT_THROW(fabric.release(link, 1.0), std::logic_error);
}

TEST(InterRackFabric, PowerIsZeroWhenDarkAndHopNeverDegenerates) {
  InterRackFabric fabric(4, 400.0, 200.0, 30.0);
  EXPECT_EQ(fabric.power_w(false), 0.0);  // rack-scale: uplinks stay dark
  // 4 uplinks x 400 Gb/s x 30 pJ/bit = 48 W.
  EXPECT_NEAR(fabric.power_w(true), 48.0, 1e-9);
  EXPECT_EQ(fabric.hop_latency_ps(), 200 * 1000);
  // A zero-latency hop would give the cluster loop a zero-width window.
  EXPECT_GE(InterRackFabric(2, 400.0, 0.0, 30.0).hop_latency_ps(), 1);
}

// ---------------------------------------------------------------------------
// Cluster <-> rack equivalence and determinism.
// ---------------------------------------------------------------------------

TEST(Cluster, RejectsInvalidConfig) {
  ClusterConfig bad;
  bad.racks = 0;
  EXPECT_THROW(run_cluster(bad, quick_cosim()), std::invalid_argument);
  bad = {};
  bad.workers = -1;
  EXPECT_THROW(run_cluster(bad, quick_cosim()), std::invalid_argument);
}

// ISSUE 9 acceptance criterion: a one-rack cluster IS a RackCosim run — the
// same seed, the same events, the same report, field for field.
TEST(Cluster, SingleRackReproducesRackCosimExactly) {
  const auto cfg = quick_cosim(6.0);
  ClusterConfig one;
  one.racks = 1;
  one.spill = SpillPolicy::kLeast;  // irrelevant with one rack
  const auto cluster = run_cluster(one, cfg);
  const auto solo = cosim::run_rack_cosim(
      {}, disagg::AllocationPolicy::kDisaggregated,
      workloads::UsageModel::cori(), cfg);
  ASSERT_EQ(cluster.racks.size(), 1u);
  expect_reports_identical(cluster.total, solo);
  EXPECT_EQ(cluster.spilled, 0u);
  EXPECT_EQ(cluster.interconnect_power_w, 0.0);
}

TEST(Cluster, UncoupledRunIsIndependentOfWorkerCount) {
  const auto cfg = quick_cosim(6.0);
  ClusterConfig a;
  a.racks = 3;
  a.spill = SpillPolicy::kNone;
  ClusterConfig b = a;
  a.workers = 1;
  b.workers = 4;
  const auto ra = run_cluster(a, cfg);
  const auto rb = run_cluster(b, cfg);
  expect_reports_identical(ra.total, rb.total);
  EXPECT_EQ(ra.barriers, 1u);  // no coupling: one window, full parallelism
  EXPECT_EQ(rb.barriers, 1u);
}

// The tentpole contract: with spill-over coupling the racks, the
// conservative-window loop makes the run bit-identical at any worker count.
TEST(Cluster, CoupledRunIsBitIdenticalAtAnyWorkerCount) {
  auto cfg = quick_cosim(8.0);  // overload so spills actually happen
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.queue_cap = 4;
  ClusterConfig serial;
  serial.racks = 3;
  serial.spill = SpillPolicy::kLeast;
  ClusterConfig wide = serial;
  serial.workers = 1;
  wide.workers = 4;
  const auto rs = run_cluster(serial, cfg);
  const auto rw = run_cluster(wide, cfg);
  EXPECT_GT(rs.spilled, 0u);  // the coupling is actually exercised
  EXPECT_GT(rs.barriers, 1u);
  EXPECT_EQ(rs.spilled, rw.spilled);
  EXPECT_EQ(rs.spill_failed, rw.spill_failed);
  EXPECT_EQ(rs.barriers, rw.barriers);
  EXPECT_EQ(rs.interconnect_energy_j, rw.interconnect_energy_j);
  expect_reports_identical(rs.total, rw.total);
  ASSERT_EQ(rs.racks.size(), rw.racks.size());
  for (std::size_t r = 0; r < rs.racks.size(); ++r)
    expect_reports_identical(rs.racks[r], rw.racks[r]);
}

TEST(Cluster, SpillBookkeepingConservesJobsAndBandwidth) {
  auto cfg = quick_cosim(8.0);
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  cfg.queue_cap = 4;
  ClusterConfig cluster;
  cluster.racks = 3;
  cluster.spill = SpillPolicy::kNext;
  const auto report = run_cluster(cluster, cfg);
  EXPECT_GT(report.spilled, 0u);
  EXPECT_LE(report.spill_failed, report.spilled);
  // Offers are recorded at the origin rack only, acceptance where the job
  // actually ran — totals are exact sums either way.
  std::uint64_t offered = 0, accepted = 0;
  for (const auto& rack : report.racks) {
    offered += rack.jobs.offered;
    accepted += rack.jobs.accepted;
  }
  EXPECT_EQ(report.total.jobs.offered, offered);
  EXPECT_EQ(report.total.jobs.accepted, accepted);
  // Every inter-rack grant is returned when its job closes: after a full
  // drain the interconnect must be idle (up to release rounding dust), while
  // its always-on uplinks burned power the whole run (the cluster-scale
  // energy tax).
  EXPECT_LT(report.interconnect_utilization, 1e-12);
  EXPECT_GT(report.interconnect_power_w, 0.0);
  EXPECT_GT(report.interconnect_energy_j, 0.0);
  EXPECT_GT(report.total.energy_joules,
            std::accumulate(report.racks.begin(), report.racks.end(), 0.0,
                            [](double s, const cosim::CosimReport& r) {
                              return s + r.energy_joules;
                            }));  // total folds the interconnect in
}

TEST(Cluster, RackScaleKeepsUplinksDark) {
  const auto report = run_cluster(ClusterConfig{}, quick_cosim(6.0));
  EXPECT_EQ(report.spilled, 0u);
  EXPECT_EQ(report.interconnect_power_w, 0.0);
  EXPECT_EQ(report.interconnect_energy_j, 0.0);
}

TEST(Cluster, SpillPolicyCodecRoundTrips) {
  const auto& codec = spill_policy_codec();
  EXPECT_EQ(codec.parse("least"), SpillPolicy::kLeast);
  EXPECT_EQ(codec.name(SpillPolicy::kNext), "next");
  EXPECT_THROW(codec.parse("ring"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Campaign determinism: cluster_energy serializes byte-identically at every
// --jobs level (the acceptance criterion the CI cluster smoke step re-checks
// end to end).
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const scenario::Campaign& campaign,
                                              const scenario::SweepGrid& grid,
                                              std::size_t jobs) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  scenario::SweepRunner(scenario::SweepOptions{.jobs = jobs, .base_seed = 0})
      .run(campaign, grid, {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(ClusterCampaigns, EnergyIsByteIdenticalAcrossJobs) {
  const auto& campaign = scenario::campaign_by_name("cluster_energy");
  auto grid = campaign.default_grid();
  grid.set("cluster.racks", {"2"});
  grid.set("cosim.arrivals_per_ms", {"8"});
  grid.set("cosim.horizon_ms", {"60"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

}  // namespace
}  // namespace photorack::cluster
