#include "phot/awgr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace photorack::phot {

Awgr::Awgr(int ports) : n_(ports) {
  if (ports <= 0) throw std::invalid_argument("Awgr: ports must be positive");
}

int Awgr::wavelength_for(int src, int dst) const {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_)
    throw std::out_of_range("Awgr::wavelength_for: port out of range");
  return (src + dst) % n_;
}

int Awgr::output_for(int src, int lambda) const {
  if (src < 0 || src >= n_ || lambda < 0 || lambda >= n_)
    throw std::out_of_range("Awgr::output_for: out of range");
  return (lambda - src % n_ + n_) % n_;
}

CascadedAwgr::CascadedAwgr(CascadedAwgrConfig cfg) : cfg_(cfg) {
  if (cfg_.k <= 0 || cfg_.m <= 0 || cfg_.n <= 0)
    throw std::invalid_argument("CascadedAwgr: stage sizes must be positive");
  optimize_interconnect();
}

int CascadedAwgr::usable_ports() const {
  return static_cast<int>(std::floor(gross_ports() * cfg_.usable_port_fraction));
}

double CascadedAwgr::port_penalty_db(int index, int size) const {
  // Passband walk-off: ports far from the array center see their channel
  // center drift off the carrier grid, adding loss.  Quadratic in the
  // normalized distance from center, up to 1.5 dB at the array edge.
  if (size <= 1) return 0.0;
  const double center = (size - 1) / 2.0;
  const double d = (static_cast<double>(index) - center) / center;
  return 1.5 * d * d;
}

void CascadedAwgr::optimize_interconnect() {
  // Each front AWGR has M outputs; output j carries penalty p_front(j).
  // Each rear AWGR input i carries penalty p_rear(i).  The interconnect
  // pattern is free, so pair the worst front outputs with the best rear
  // inputs (sort ascending vs descending) — this provably minimizes the
  // maximum pairwise sum (a classic minimax pairing argument).
  const int m = cfg_.m;
  std::vector<int> rear_order(m);
  std::iota(rear_order.begin(), rear_order.end(), 0);
  std::sort(rear_order.begin(), rear_order.end(), [&](int a, int b) {
    return port_penalty_db(a, m) < port_penalty_db(b, m);
  });
  std::vector<int> front_order(m);
  std::iota(front_order.begin(), front_order.end(), 0);
  std::sort(front_order.begin(), front_order.end(), [&](int a, int b) {
    return port_penalty_db(a, m) > port_penalty_db(b, m);
  });
  front_to_rear_.assign(m, 0);
  for (int i = 0; i < m; ++i) front_to_rear_[front_order[i]] = rear_order[i];
}

Decibel CascadedAwgr::insertion_loss(int in_port, int out_port) const {
  const int gross = gross_ports();
  if (in_port < 0 || in_port >= gross || out_port < 0 || out_port >= gross)
    throw std::out_of_range("CascadedAwgr::insertion_loss: port out of range");

  // Path: DC switch -> front AWGR -> interconnect -> rear AWGR ->
  // connectors.  The walk-off penalty a path pays is the front *output*
  // position plus the rear *input* position it is wired to; the
  // interconnect permutation is exactly what the optimizer chooses, so a
  // lossy front output meets a low-loss rear input (the [89] optimization).
  // Input-side coupling variation is folded into connector_loss.
  const int m = cfg_.m;
  const int front_out = out_port % m;
  const int rear_in = front_to_rear_[static_cast<std::size_t>(front_out)];
  const double base = cfg_.dc_switch_loss.value + cfg_.front_loss.value +
                      cfg_.rear_loss.value + cfg_.connector_loss.value;
  const double walkoff = port_penalty_db(front_out, m) + port_penalty_db(rear_in, m);
  return Decibel{base + walkoff};
}

CascadedAwgrReport CascadedAwgr::report() const {
  CascadedAwgrReport r;
  r.gross_ports = gross_ports();
  r.usable_ports = usable_ports();
  r.wavelengths_per_port = r.usable_ports;  // N x N AWGR: N wavelengths/port
  double worst = 0.0, best = 1e9;
  const int m = cfg_.m;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const double loss = insertion_loss(i, j).value;
      worst = std::max(worst, loss);
      best = std::min(best, loss);
    }
  }
  r.worst_insertion_loss = Decibel{worst};
  r.best_insertion_loss = Decibel{best};
  // Two cascaded stages of incoherent crosstalk add ~3 dB to the per-stage
  // figure: power-sum of two equal contributors.
  r.crosstalk = Decibel{cfg_.per_stage_crosstalk.value + 3.0};
  return r;
}

}  // namespace photorack::phot
