#include "phot/power.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace photorack::phot {
namespace {

TEST(Power, PaperHeadlineNumbers) {
  // Section VI-C: ~11 kW of photonics, ~5% of the rack.
  const auto breakdown = photonic_power_overhead();
  EXPECT_NEAR(breakdown.total.value, 11'000.0, 1'000.0);
  EXPECT_NEAR(breakdown.overhead_vs_baseline, 0.05, 0.01);
}

TEST(Power, BaselineRackPower) {
  // 128 nodes x (250 W CPU + 4x300 W GPU + 192 W memory) = ~210 kW.
  BaselineRackPower base;
  EXPECT_NEAR(base.total().value, 128.0 * (250 + 1200 + 192), 1e-9);
}

TEST(Power, TransceiverTermScalesWithWavelengths) {
  PhotonicPowerConfig cfg;
  const auto full = photonic_power_overhead(cfg);
  cfg.wavelengths_per_mcm /= 2;
  const auto half = photonic_power_overhead(cfg);
  EXPECT_NEAR(half.transceivers.value * 2.0, full.transceivers.value, 1e-6);
}

TEST(Power, SwitchesCappedAtOneKilowatt) {
  const auto breakdown = photonic_power_overhead();
  EXPECT_LE(breakdown.switches.value, 1000.0 + 1e-9);
}

TEST(Power, EnergyPerBitDrivesTotal) {
  PhotonicPowerConfig cheap;
  cheap.transceiver_pair_energy = PjPerBit{0.3};
  PhotonicPowerConfig pricey;
  pricey.transceiver_pair_energy = PjPerBit{30.0};
  EXPECT_LT(photonic_power_overhead(cheap).total.value,
            photonic_power_overhead(pricey).total.value / 10.0);
}

TEST(Power, OverheadAgainstCustomBaseline) {
  BaselineRackPower small;
  small.nodes = 1;
  const auto breakdown = photonic_power_overhead({}, small);
  // Whole-rack photonics against one node is absurdly high — the point is
  // the denominator is respected.
  EXPECT_GT(breakdown.overhead_vs_baseline, 1.0);
}

// ---------------------------------------------------------------------------
// EnergyTrace: the time-weighted integrator behind the co-simulation's
// energy campaign.
// ---------------------------------------------------------------------------

TEST(EnergyTrace, ConstantPowerIntegratesExactly) {
  EnergyTrace trace;
  trace.step_to(0.0, Watts{100.0});
  trace.step_to(10.0, Watts{100.0});
  EXPECT_DOUBLE_EQ(trace.joules(), 1000.0);
  EXPECT_DOUBLE_EQ(trace.seconds(), 10.0);
  EXPECT_DOUBLE_EQ(trace.mean_power().value, 100.0);
  EXPECT_DOUBLE_EQ(trace.peak_power().value, 100.0);
}

TEST(EnergyTrace, PiecewiseProfileWeightsEachLevelByItsDuration) {
  EnergyTrace trace;
  trace.step_to(0.0, Watts{100.0});   // 100 W over [0, 5)
  trace.step_to(5.0, Watts{200.0});   // 200 W over [5, 10)
  trace.step_to(10.0, Watts{50.0});   // closes the 200 W interval
  EXPECT_DOUBLE_EQ(trace.joules(), 5.0 * 100.0 + 5.0 * 200.0);
  EXPECT_DOUBLE_EQ(trace.mean_power().value, 150.0);
  EXPECT_DOUBLE_EQ(trace.peak_power().value, 200.0);
  EXPECT_EQ(trace.steps(), 3u);
}

TEST(EnergyTrace, FirstStepOnlySetsTheOrigin) {
  EnergyTrace trace;
  trace.step_to(3.5, Watts{400.0});
  EXPECT_DOUBLE_EQ(trace.joules(), 0.0);
  EXPECT_DOUBLE_EQ(trace.seconds(), 0.0);
  // Degenerate span: mean falls back to the last recorded level.
  EXPECT_DOUBLE_EQ(trace.mean_power().value, 400.0);
}

TEST(EnergyTrace, NonZeroOriginDoesNotAccrueEnergyBeforeIt) {
  EnergyTrace trace;
  trace.step_to(100.0, Watts{10.0});
  trace.step_to(101.0, Watts{10.0});
  EXPECT_DOUBLE_EQ(trace.joules(), 10.0);
  EXPECT_DOUBLE_EQ(trace.seconds(), 1.0);
}

TEST(EnergyTrace, ZeroLengthStepsAreAllowedAndCountTowardPeak) {
  EnergyTrace trace;
  trace.step_to(0.0, Watts{100.0});
  trace.step_to(1.0, Watts{900.0});  // spike...
  trace.step_to(1.0, Watts{100.0});  // ...reverted in the same instant
  trace.step_to(2.0, Watts{100.0});
  EXPECT_DOUBLE_EQ(trace.joules(), 200.0);
  EXPECT_DOUBLE_EQ(trace.peak_power().value, 900.0);
}

TEST(EnergyTrace, TimeMovingBackwardsThrows) {
  EnergyTrace trace;
  trace.step_to(5.0, Watts{100.0});
  EXPECT_THROW(trace.step_to(4.0, Watts{100.0}), std::invalid_argument);
}

TEST(EnergyTrace, EmptyTraceIsAllZeros) {
  const EnergyTrace trace;
  EXPECT_DOUBLE_EQ(trace.joules(), 0.0);
  EXPECT_DOUBLE_EQ(trace.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_power().value, 0.0);
  EXPECT_DOUBLE_EQ(trace.peak_power().value, 0.0);
}

}  // namespace
}  // namespace photorack::phot
