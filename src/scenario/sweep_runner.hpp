#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_grid.hpp"

namespace photorack::scenario {

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().  Results
  /// are independent of this value — only wall-clock changes.
  std::size_t jobs = 0;
  /// 0 (the default) keeps each workload's registry seed, reproducing the
  /// paper's numbers; any other value re-seeds every scenario from
  /// ScenarioSpec::derived_seed() for independent replications.
  std::uint64_t base_seed = 0;
};

/// In-memory sweep output plus the small query helpers the bench wrappers
/// use to aggregate paper-vs-measured checks.
struct SweepResult {
  std::vector<std::string> columns;
  std::vector<ResultRow> rows;  // grid order, stable across --jobs levels
  /// The run's manifest (deterministic JSON: campaign id, seeds, axes,
  /// overrides, full resolved parameter tree) — what the runner handed to
  /// every sink and what the CLI writes as the sidecar file.
  std::string manifest_json;

  using Filter = std::vector<std::pair<std::string, std::string>>;

  [[nodiscard]] std::size_t col(const std::string& name) const;  // throws if unknown
  [[nodiscard]] const std::string& cell(const ResultRow& row,
                                        const std::string& name) const;
  [[nodiscard]] double num(const ResultRow& row, const std::string& name) const;

  /// Rows whose cells equal every (column, value) pair of the filter.
  [[nodiscard]] std::vector<const ResultRow*> where(const Filter& filter) const;
  /// The single row matching the filter; throws unless exactly one matches.
  [[nodiscard]] const ResultRow& find(const Filter& filter) const;

  [[nodiscard]] std::vector<double> values(const std::string& name,
                                           const Filter& filter = {}) const;
  [[nodiscard]] double mean(const std::string& name, const Filter& filter = {}) const;
  [[nodiscard]] double max(const std::string& name, const Filter& filter = {}) const;
};

/// Executes a campaign's specs on sim::ThreadPool, then serializes all rows
/// in grid order to every sink once the sweep completes.  Scenario
/// evaluators seed from their spec, so the output is bit-identical for any
/// jobs count.  A failed scenario's exception is rethrown here (see
/// ThreadPool::wait_idle) after the pool drains — sinks see nothing in that
/// case, so --out files are empty rather than partially written.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

  SweepResult run(const Campaign& campaign, const SweepGrid& grid,
                  const std::vector<ResultSink*>& sinks = {}) const;
  /// Convenience: run the campaign's default grid.
  SweepResult run(const Campaign& campaign,
                  const std::vector<ResultSink*>& sinks = {}) const;

  [[nodiscard]] const SweepOptions& options() const { return opt_; }

 private:
  SweepOptions opt_;
};

}  // namespace photorack::scenario
