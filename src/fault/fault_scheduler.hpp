#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace photorack::fault {

/// Derive the deterministic fault timeline for one run.
///
/// Every component gets its own child RNG stream rooted at
/// sim::Rng(seed).child(3) — the stream id the co-simulation reserves for
/// the fault layer (child(1) is the router, child(2) the arrivals,
/// child(16+k) the per-job plans).  Each stream alternates
/// up ~ Exp(MTBF) / down ~ Exp(MTTR) until the next failure would land at
/// or past `horizon`; repairs may land beyond it (completions drain past
/// the arrival horizon too).  Because the streams are derived with the
/// const child() operator and consumed independently of every placement
/// decision, the timeline is a pure function of (config, geometry, seed):
/// identical across --jobs levels, admission policies and allocation
/// policies — which is what makes "same fault timeline, different
/// allocation policy" a controlled comparison.
///
/// Events are sorted by (time, class, component, kind); link/laser events
/// carry the directed (a, b) pair they affect.  Throws
/// std::invalid_argument on malformed config (negative rates, zero MTTR,
/// degrade_fraction outside (0,1], negative retry/backoff knobs).
[[nodiscard]] std::vector<FaultEvent> derive_timeline(const FaultConfig& cfg,
                                                      int mcms, int nodes,
                                                      std::uint64_t seed,
                                                      sim::TimePs horizon);

/// Owns one run's fault timeline and injects it as first-class events on
/// the caller's sim::EventQueue.  Availability and measured MTTR are
/// analytic functions of the timeline, so they never depend on job load.
class FaultScheduler {
 public:
  FaultScheduler(const FaultConfig& cfg, int mcms, int nodes, std::uint64_t seed,
                 sim::TimePs horizon);

  [[nodiscard]] const std::vector<FaultEvent>& timeline() const { return timeline_; }

  /// Schedule every timeline entry onto `queue`, calling `handler(event)`
  /// at its fire time.  Call once, before the queue starts running.
  void arm(sim::EventQueue& queue, std::function<void(const FaultEvent&)> handler) const;

  /// 1 - mean downtime fraction of the crash-stop components (MCMs and
  /// nodes) over [0, horizon); always in [0, 1].  Link/laser faults degrade
  /// goodput, not component availability.
  [[nodiscard]] double availability(sim::TimePs horizon) const;

  /// Mean repair time over every fail/repair pair of the timeline, in ms
  /// (0 when the timeline is empty).
  [[nodiscard]] double mean_mttr_ms() const;

 private:
  int mcms_;
  int nodes_;
  std::vector<FaultEvent> timeline_;
};

}  // namespace photorack::fault
