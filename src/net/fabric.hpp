#pragma once

#include <cstdint>
#include <vector>

#include "phot/units.hpp"
#include "rack/rack_builder.hpp"
#include "sim/time.hpp"

namespace photorack::net {

/// Geometry of a co-sim-scale all-pairs wavelength fabric: `mcms` endpoints
/// where every (src, dst) pair gets `lambdas_per_pair` dedicated DWDM
/// wavelengths of `gbps_per_wavelength` each, with allocation state
/// disseminated by piggybacked telemetry every `piggyback_interval`.
/// Registered as the "net" section of the config registry, so campaigns
/// and `--set net.gbps_per_wavelength=32` style overrides address it
/// directly; the rack co-simulation builds its fabric from this.
struct FabricSliceConfig {
  int mcms = 24;
  int lambdas_per_pair = 1;              // direct wavelengths per (src,dst) pair
  phot::Gbps gbps_per_wavelength{25.0};  // per-wavelength rate (Table III)
  sim::TimePs piggyback_interval = 10 * sim::kPsPerUs;
};

/// Wavelength-level state of the parallel-AWGR fabric (case (A) of §V-B).
///
/// Each of the `parallel_awgrs` AWGRs dedicates exactly one wavelength to
/// every (source MCM, destination MCM) pair it covers; a wavelength carries
/// `gbps_per_wavelength` and may be multiplexed by several flows (§IV-A).
/// The fabric tracks allocated Gb/s per (awgr, src, dst) and exposes the
/// occupancy queries that indirect routing needs.
class WavelengthFabric {
 public:
  WavelengthFabric(int mcms, const rack::AwgrFabricPlan& plan);

  [[nodiscard]] int mcms() const { return mcms_; }
  [[nodiscard]] int parallel_awgrs() const { return static_cast<int>(lambdas_.size()); }
  [[nodiscard]] double gbps_per_wavelength() const { return gbps_per_lambda_; }

  /// True when AWGR `a` gives `src` a dedicated wavelength to `dst`.
  /// Partially-filled ports (fewer wavelengths than the AWGR radix) cover
  /// the cyclically-first subset of destinations.
  [[nodiscard]] bool covers(int awgr, int src, int dst) const;

  /// Number of direct wavelengths between a pair (across all AWGRs).
  [[nodiscard]] int direct_lambdas(int src, int dst) const;

  /// Total / free direct capacity between a pair, in Gb/s.
  [[nodiscard]] double direct_capacity(int src, int dst) const;
  [[nodiscard]] double free_direct(int src, int dst) const;
  [[nodiscard]] double allocated(int src, int dst) const;

  /// Reserve up to `gbps` of direct capacity; returns the amount actually
  /// reserved (fills AWGRs in index order — deterministic).
  double allocate_direct(int src, int dst, double gbps);

  /// Release previously reserved direct capacity (same ordering).
  void release_direct(int src, int dst, double gbps);

  /// Flat copy of every AWGR's per-pair allocation table (awgr-major), for
  /// bit-exact state comparison: a phase loop that opens and then closes a
  /// flow set must leave this snapshot unchanged.
  [[nodiscard]] std::vector<double> allocation_snapshot() const;

  /// Aggregate utilization over all covered pairs.  Normally in [0,1];
  /// under fault degradation existing reservations may transiently exceed
  /// the scaled capacity.
  [[nodiscard]] double utilization() const;

  // --- fault hooks (src/fault): per-pair capacity scaling ---
  //
  // scale = 1 is healthy, 0 a dead pair (endpoint crash-stop or link cut),
  // anything between a degraded laser.  Scaling changes CAPACITY only:
  // free_direct/allocate_direct see `capacity * scale` (clamped at the
  // already-allocated amount), release_direct still returns exactly what
  // was reserved.  The scale table is allocated lazily on the first
  // set_pair_scale call, and every scaled expression collapses to the
  // historical arithmetic when scale == 1 — a fault-free fabric stays
  // byte-identical to one built before this hook existed.

  // Faults COMPOSE: several independent faults (an MCM crash, a link cut, a
  // degraded comb laser) can degrade the same directed pair at once, and
  // each repair must undo exactly its own fault's contribution.  An
  // absolute setter cannot express that — repairing one fault would clobber
  // the scale another still-active fault imposed — so each fault pushes a
  // multiplicative factor and pops the same value on repair.  The effective
  // scale is the product of the pair's live factors, recomputed in
  // ascending-value order so it is independent of the push sequence, and an
  // empty factor list restores exactly 1.0 (bit-exact healthy arithmetic).

  /// Contribute one fault's capacity factor to the directed pair; throws
  /// std::invalid_argument outside [0,1] or for a bad pair.
  void push_pair_factor(int src, int dst, double factor);
  /// Remove one previously pushed factor (matched by value); throws
  /// std::logic_error when no such factor is live on the pair.
  void pop_pair_factor(int src, int dst, double factor);

  /// Set the directed pair's capacity multiplier absolutely, dropping any
  /// pushed factors on the pair; throws std::invalid_argument outside [0,1]
  /// or for src == dst.  Test/diagnostic hook — fault paths use the
  /// composable push/pop API above.
  void set_pair_scale(int src, int dst, double scale);
  [[nodiscard]] double pair_scale(int src, int dst) const {
    return scale_.empty() ? 1.0 : scale_[idx(src, dst)];
  }

 private:
  int mcms_;
  int radix_;
  double gbps_per_lambda_;
  std::vector<int> lambdas_;             // wavelengths per port, per AWGR
  std::vector<std::vector<double>> alloc_;  // [awgr][src*mcms+dst] allocated Gb/s
  std::vector<double> scale_;            // per-pair effective multiplier (lazy)
  std::vector<std::vector<double>> factors_;  // per-pair live fault factors (lazy)

  void check_pair(int src, int dst, double value, const char* who) const;
  void recompute_scale(int src, int dst);

  [[nodiscard]] std::size_t idx(int src, int dst) const {
    return static_cast<std::size_t>(src) * mcms_ + dst;
  }
};

}  // namespace photorack::net
