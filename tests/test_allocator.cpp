#include "disagg/allocator.hpp"

#include <gtest/gtest.h>

namespace photorack::disagg {
namespace {

TEST(Allocator, StaticGrantsWholeNodes) {
  RackAllocator alloc({}, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.cpus = 1;
  req.memory_gb = 10.0;
  const auto a = alloc.allocate(req);
  EXPECT_TRUE(a.placed);
  EXPECT_EQ(a.nodes, 1);
  EXPECT_EQ(a.gpus, 4);              // whole node granted
  EXPECT_DOUBLE_EQ(a.memory_gb, 256.0);
  EXPECT_DOUBLE_EQ(a.marooned_memory_gb, 246.0);
}

TEST(Allocator, StaticSizesByLargestDemand) {
  RackAllocator alloc({}, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.cpus = 1;
  req.gpus = 9;  // needs ceil(9/4) = 3 nodes
  const auto a = alloc.allocate(req);
  EXPECT_EQ(a.nodes, 3);
}

TEST(Allocator, StaticExhaustsNodes) {
  rack::RackConfig small;
  small.nodes = 2;
  RackAllocator alloc(small, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.gpus = 8;  // two nodes
  EXPECT_TRUE(alloc.allocate(req).placed);
  EXPECT_FALSE(alloc.allocate(req).placed);
}

TEST(Allocator, DisaggregatedTakesExactAmounts) {
  RackAllocator alloc({}, AllocationPolicy::kDisaggregated);
  JobRequest req;
  req.cpus = 3;
  req.gpus = 2;
  req.memory_gb = 100.0;
  req.nic_gbps = 50.0;
  const auto a = alloc.allocate(req);
  EXPECT_TRUE(a.placed);
  EXPECT_EQ(a.cpus, 3);
  EXPECT_EQ(a.gpus, 2);
  EXPECT_DOUBLE_EQ(a.memory_gb, 100.0);
  EXPECT_DOUBLE_EQ(a.marooned_memory_gb, 0.0);
}

TEST(Allocator, DisaggregatedPoolLimits) {
  rack::RackConfig small;
  small.nodes = 1;
  RackAllocator alloc(small, AllocationPolicy::kDisaggregated);
  JobRequest req;
  req.gpus = 5;  // pool has 4
  EXPECT_FALSE(alloc.allocate(req).placed);
  req.gpus = 4;
  EXPECT_TRUE(alloc.allocate(req).placed);
}

TEST(Allocator, ReleaseRestoresPools) {
  RackAllocator alloc({}, AllocationPolicy::kDisaggregated);
  JobRequest req;
  req.cpus = 10;
  req.memory_gb = 1000.0;
  const auto a = alloc.allocate(req);
  alloc.release(a);
  EXPECT_EQ(alloc.pools().cpus_used, 0);
  EXPECT_DOUBLE_EQ(alloc.pools().memory_gb_used, 0.0);
}

TEST(Allocator, StaticReleaseRestoresNodesAndMarooning) {
  RackAllocator alloc({}, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.cpus = 1;
  const auto a = alloc.allocate(req);
  EXPECT_GT(alloc.marooned_memory_fraction(), 0.0);
  alloc.release(a);
  EXPECT_EQ(alloc.free_nodes(), 128);
  EXPECT_DOUBLE_EQ(alloc.marooned_memory_fraction(), 0.0);
}

TEST(Allocator, UtilizationAccounting) {
  RackAllocator alloc({}, AllocationPolicy::kDisaggregated);
  JobRequest req;
  req.gpus = 256;  // half the rack's 512
  (void)alloc.allocate(req);
  EXPECT_NEAR(alloc.pools().gpu_utilization(), 0.5, 1e-12);
}

TEST(Allocator, SameDemandMaroonsOnlyUnderStaticPolicy) {
  // The motivating comparison of Section I: identical demand, very
  // different held-resource footprints.
  JobRequest req;
  req.cpus = 1;
  req.memory_gb = 25.0;  // ~10% of a node, like Cori's median job
  RackAllocator stat({}, AllocationPolicy::kStaticNodes);
  RackAllocator disagg({}, AllocationPolicy::kDisaggregated);
  (void)stat.allocate(req);
  (void)disagg.allocate(req);
  EXPECT_GT(stat.pools().memory_utilization(), 10 * disagg.pools().memory_utilization());
}

TEST(Allocator, NegativeRequestThrows) {
  RackAllocator alloc({}, AllocationPolicy::kDisaggregated);
  JobRequest req;
  req.cpus = -1;
  EXPECT_THROW(alloc.allocate(req), std::invalid_argument);
}

TEST(Allocator, ReleaseOfUnplacedIsNoop) {
  RackAllocator alloc({}, AllocationPolicy::kDisaggregated);
  Allocation unplaced;
  alloc.release(unplaced);
  EXPECT_EQ(alloc.pools().cpus_used, 0);
}

TEST(Allocator, CountersTrackAttemptsPlacementsAndReleases) {
  rack::RackConfig small;
  small.nodes = 2;
  RackAllocator alloc(small, AllocationPolicy::kStaticNodes);
  JobRequest req;
  req.gpus = 8;  // two nodes: the second allocate must be rejected
  const auto a = alloc.allocate(req);
  EXPECT_TRUE(a.placed);
  EXPECT_FALSE(alloc.allocate(req).placed);
  EXPECT_EQ(alloc.counters().attempts, 2u);
  EXPECT_EQ(alloc.counters().placements, 1u);
  EXPECT_EQ(alloc.counters().rejections(), 1u);
  EXPECT_EQ(alloc.counters().releases, 0u);

  alloc.release(a);
  EXPECT_THROW(alloc.release(a), std::logic_error);  // double release
  EXPECT_EQ(alloc.counters().releases, 1u);

  // Invalid requests never reach the attempt counter: rejections() keeps
  // meaning "shape-valid demand the rack could not place".
  JobRequest bad;
  bad.cpus = -1;
  EXPECT_THROW(alloc.allocate(bad), std::invalid_argument);
  EXPECT_EQ(alloc.counters().attempts, 2u);
}

}  // namespace
}  // namespace photorack::disagg
