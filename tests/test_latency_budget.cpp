#include "phot/latency_budget.hpp"

#include <gtest/gtest.h>

namespace photorack::phot {
namespace {

TEST(LatencyBudget, PhotonicPartsArePresent) {
  const auto budget = photonic_budget();
  ASSERT_EQ(budget.parts.size(), 3u);
  EXPECT_EQ(budget.parts[0].name, "OEO conversion");
  EXPECT_DOUBLE_EQ(budget.parts[0].value.value, 15.0);
  EXPECT_DOUBLE_EQ(budget.parts[1].value.value, 20.0);  // 4 m x 5 ns/m
}

TEST(LatencyBudget, PhotonicNearThePapersThirtyFive) {
  // The paper's 35 ns covers OEO + propagation; serialization/FEC ride on
  // top in our explicit breakdown but stay within ~8 ns at 400 Gb/s.
  const auto budget = photonic_budget();
  EXPECT_GE(budget.total().value, 35.0);
  EXPECT_LE(budget.total().value, 45.0);
}

TEST(LatencyBudget, ElectronicAddsHops) {
  const auto photonic = photonic_budget();
  const auto electronic = electronic_budget();
  EXPECT_DOUBLE_EQ(electronic.total().value - photonic.total().value, 50.0);
}

TEST(LatencyBudget, ReachScalesPropagationOnly) {
  BudgetInputs near;
  near.reach = Meters{1.0};
  BudgetInputs far;
  far.reach = Meters{4.0};
  const double delta = photonic_budget(far).total().value -
                       photonic_budget(near).total().value;
  EXPECT_DOUBLE_EQ(delta, 15.0);  // 3 m x 5 ns/m
}

TEST(LatencyBudget, FasterLanesShrinkSerialization) {
  BudgetInputs slow;
  slow.lane_rate = Gbps{200};
  BudgetInputs fast;
  fast.lane_rate = Gbps{1600};
  EXPECT_GT(photonic_budget(slow).total().value, photonic_budget(fast).total().value);
}

TEST(LatencyBudget, HopCountDrivesElectronicPenalty) {
  BudgetInputs one_hop;
  one_hop.electronic_hops = 1;
  one_hop.electronic_per_hop = Nanoseconds{90.0};  // Anton-3-like single hop
  const auto budget = electronic_budget(one_hop);
  const auto base = photonic_budget(one_hop);
  EXPECT_DOUBLE_EQ(budget.total().value - base.total().value, 90.0);
}

}  // namespace
}  // namespace photorack::phot
