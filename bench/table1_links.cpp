// Reproduces Table I: WDM photonic link technologies, with the number of
// links and aggregate transceiver power needed for a 2 TB/s MCM escape.
#include <iostream>

#include "core/report.hpp"
#include "phot/links.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;
  using phot::GBps;

  core::print_banner(std::cout, "Table I: WDM photonic link technologies",
                     "Table I (Section III-B)");

  const GBps escape{2000.0};  // the paper sizes the table for 2 TB/s
  sim::Table table({"Link", "BW (Gbps)", "Energy (pJ/bit)", "Gbps x Channels",
                    "#Links (2TB/s)", "Agg. W (2TB/s)", "Ref"});
  for (const auto& link : phot::table1_links()) {
    table.add_row({link.name, sim::fmt_fixed(link.bandwidth.value, 0),
                   sim::fmt_fixed(link.energy.value, 2),
                   sim::fmt_fixed(link.gbps_per_channel.value, 0) + " x " +
                       sim::fmt_int(link.channels),
                   sim::fmt_int(link.links_for_escape(escape)),
                   sim::fmt_fixed(link.power_for_escape(escape).value, 1), link.reference});
  }
  table.print(std::cout);

  std::cout << "\npaper-vs-measured (paper values from Table I):\n";
  const auto& links = phot::table1_links();
  core::check_line(std::cout, "100G links for 2TB/s", 160,
                   links[0].links_for_escape(escape));
  core::check_line(std::cout, "400G links for 2TB/s", 40,
                   links[1].links_for_escape(escape));
  core::check_line(std::cout, "TeraPHY links for 2TB/s", 21,
                   links[2].links_for_escape(escape));
  core::check_line(std::cout, "1T links for 2TB/s", 16, links[3].links_for_escape(escape));
  core::check_line(std::cout, "2T links for 2TB/s", 8, links[4].links_for_escape(escape));
  core::check_line(std::cout, "100G aggregate W", 480,
                   links[0].power_for_escape(escape).value);
  core::check_line(std::cout, "TeraPHY aggregate W", 14.4,
                   links[2].power_for_escape(escape).value);
  core::check_line(std::cout, "1T aggregate W", 7.2,
                   links[3].power_for_escape(escape).value);
  core::check_line(std::cout, "2T aggregate W", 4.8,
                   links[4].power_for_escape(escape).value);
  std::cout << "note: the paper's 400G row prints 30 pJ/bit alongside 197 W; "
               "30 pJ/bit x 16 Tb/s is 480 W.  We print the computed value "
               "(see EXPERIMENTS.md).\n";
  return 0;
}
