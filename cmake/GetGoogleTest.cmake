# Provide GTest::gtest_main, preferring offline sources so CI works without
# network access:
#   1. a vendored/system googletest source tree (Debian's libgtest-dev),
#   2. an installed GTest package,
#   3. FetchContent from GitHub as a last resort.

set(PHOTORACK_GTEST_SOURCE_DIR "/usr/src/googletest" CACHE PATH
    "System googletest source tree used before trying find_package/FetchContent")

if(TARGET GTest::gtest_main)
  return()
endif()

if(EXISTS "${PHOTORACK_GTEST_SOURCE_DIR}/CMakeLists.txt")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${PHOTORACK_GTEST_SOURCE_DIR}"
                   "${CMAKE_BINARY_DIR}/_deps/system-googletest" EXCLUDE_FROM_ALL)
elseif(EXISTS "${PHOTORACK_GTEST_SOURCE_DIR}/googletest/CMakeLists.txt")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${PHOTORACK_GTEST_SOURCE_DIR}/googletest"
                   "${CMAKE_BINARY_DIR}/_deps/system-googletest" EXCLUDE_FROM_ALL)
else()
  find_package(GTest CONFIG QUIET)
  if(NOT GTest_FOUND)
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
endif()

if(NOT TARGET GTest::gtest_main)
  if(TARGET gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
    add_library(GTest::gtest ALIAS gtest)
  else()
    message(FATAL_ERROR "GoogleTest could not be provisioned: no system source "
                        "tree at ${PHOTORACK_GTEST_SOURCE_DIR}, no installed "
                        "GTest package, and FetchContent failed.")
  endif()
endif()
