#include "cpusim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace photorack::cpusim {

SetAssocCache::SetAssocCache(CacheConfig cfg) : cfg_(cfg) {
  const std::uint64_t sets = cfg_.sets();
  if (sets == 0) throw std::invalid_argument("SetAssocCache: zero sets");
  if (!std::has_single_bit(static_cast<unsigned>(cfg_.line_bytes)))
    throw std::invalid_argument("SetAssocCache: line size must be a power of two");
  // Power-of-two set counts index with a mask; anything else (e.g. the
  // A100's 40 MB L2) falls back to modulo.
  pow2_sets_ = std::has_single_bit(sets);
  sets_ = sets;
  set_mask_ = pow2_sets_ ? sets - 1 : 0;
  ways_ = static_cast<std::size_t>(cfg_.ways);
  line_shift_ = std::countr_zero(static_cast<unsigned>(cfg_.line_bytes));
  tags_.assign(sets * static_cast<std::uint64_t>(cfg_.ways), kInvalid);
  stamps_.assign(tags_.size(), 0);
}

std::uint32_t SetAssocCache::line_tag(std::uint64_t line) const {
  if (line >= kInvalid)
    throw std::invalid_argument("SetAssocCache: line id beyond 32-bit tag space");
  return static_cast<std::uint32_t>(line);
}

std::uint32_t SetAssocCache::tick() {
  if (++clock_ >= kInvalid)
    throw std::runtime_error("SetAssocCache: recency clock exhausted (2^32-2 accesses)");
  return static_cast<std::uint32_t>(clock_);
}

std::size_t SetAssocCache::victim_way(std::size_t base) const {
  std::size_t victim = base;
  std::uint32_t oldest = kInvalid;
  for (std::size_t w = base, end = base + ways_; w < end; ++w) {
    if (tags_[w] == kInvalid) {
      // Prefer an empty way; stamp 0 guarantees it wins the LRU scan.
      victim = w;
      oldest = 0;
    } else if (stamps_[w] < oldest) {
      victim = w;
      oldest = stamps_[w];
    }
  }
  return victim;
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  const std::uint32_t now = tick();
  const std::uint64_t line = addr >> line_shift_;  // full line id: correct for both modes
  const std::uint32_t tag = line_tag(line);
  // MRU shortcut: consecutive accesses to the same line (the common case
  // for streaming at sub-line stride) skip the set scan.  Tags are full
  // line ids, so an equality match IS the lookup — a memoized find_way
  // result, nothing about hits/misses/LRU changes.
  if (mru_way_ < tags_.size() && tags_[mru_way_] == tag) {
    stamps_[mru_way_] = now;
    return true;
  }
  const std::size_t base = set_base(line);
  const std::size_t hit = find_way(base, tag);
  if (hit != kNoWay) {
    stamps_[hit] = now;
    mru_way_ = hit;
    return true;
  }
  ++misses_;
  const std::size_t victim = victim_way(base);
  tags_[victim] = tag;
  stamps_[victim] = now;
  mru_way_ = victim;
  return false;
}

void SetAssocCache::insert(std::uint64_t addr) {
  const std::uint32_t now = tick();
  const std::uint64_t line = addr >> line_shift_;
  const std::uint32_t tag = line_tag(line);
  const std::size_t base = set_base(line);
  std::size_t way = find_way(base, tag);
  if (way == kNoWay) {
    way = victim_way(base);
    tags_[way] = tag;
  }
  stamps_[way] = now;
}

void SetAssocCache::warm_sequential_lines(std::uint64_t first_line, std::uint64_t n_lines) {
  if (clock_ != 0 || accesses_ != 0) {
    // Not the pristine state the closed form assumes: replay literally.
    for (std::uint64_t i = 0; i < n_lines; ++i)
      (void)access((first_line + i) << line_shift_);
    return;
  }
  if (n_lines == 0) return;
  (void)line_tag(first_line + n_lines - 1);  // range check once up front

  const std::uint64_t S = sets_;
  const auto W = static_cast<std::uint64_t>(ways_);
  // Walking distinct lines through an empty set installs into the LAST
  // invalid way first (victim_way scans forward, later empties win), so the
  // j-th line of a set lands in way W-1-j; once full, eviction follows the
  // same descending cycle because stamps ascend with j.  Hence the final
  // occupant of way w is the LAST j with j ≡ W-1-w (mod W), and its stamp
  // is its global access index + 1.
  for (std::uint64_t s = 0; s < S; ++s) {
    // First walked line landing in set s.
    const std::uint64_t phase = pow2_sets_ ? (first_line & set_mask_) : (first_line % S);
    const std::uint64_t offset = (s >= phase) ? s - phase : s + S - phase;
    if (offset >= n_lines) continue;
    const std::uint64_t n_s = 1 + (n_lines - 1 - offset) / S;  // lines seen by set s
    const std::size_t base = static_cast<std::size_t>(s) * ways_;
    for (std::uint64_t w = 0; w < W; ++w) {
      const std::uint64_t r = W - 1 - w;  // occupant index j satisfies j ≡ r (mod W)
      if (n_s <= r) continue;             // way never reached: stays invalid
      const std::uint64_t j = (n_s - 1) - ((n_s - 1 - r) % W);
      const std::uint64_t global_index = offset + j * S;
      tags_[base + static_cast<std::size_t>(w)] =
          line_tag(first_line + global_index);
      stamps_[base + static_cast<std::size_t>(w)] =
          static_cast<std::uint32_t>(global_index + 1);
    }
  }
  clock_ = n_lines;
  accesses_ = n_lines;
  misses_ = n_lines;
  mru_way_ = kNoWay;  // semantically irrelevant (pure fast-path hint)
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  return find_way(set_base(line), line_tag(line)) != kNoWay;
}

void SetAssocCache::invalidate_all() {
  tags_.assign(tags_.size(), kInvalid);
  stamps_.assign(stamps_.size(), 0);
  mru_way_ = kNoWay;
}

CacheHierarchy::CacheHierarchy(HierarchyConfig cfg)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2), llc_(cfg.llc) {}

HitLevel CacheHierarchy::access(std::uint64_t addr) {
  if (l1_.access(addr)) return HitLevel::kL1;
  if (l2_.access(addr)) return HitLevel::kL2;
  if (llc_.access(addr)) return HitLevel::kLlc;
  return HitLevel::kMemory;
}

void CacheHierarchy::prefetch_fill(std::uint64_t addr) {
  l2_.insert(addr);
  llc_.insert(addr);
}

void CacheHierarchy::prewarm_sequential(std::uint64_t first_addr, std::uint64_t end_addr) {
  const auto step = static_cast<std::uint64_t>(cfg_.l1.line_bytes);
  if (first_addr >= end_addr) return;
  const bool uniform_lines =
      cfg_.l2.line_bytes == cfg_.l1.line_bytes && cfg_.llc.line_bytes == cfg_.l1.line_bytes;
  if (uniform_lines && l1_.pristine() && l2_.pristine() && llc_.pristine()) {
    // Distinct consecutive lines against empty caches: every access misses
    // at every level, so no level ever short-circuits the next and each
    // warms independently in closed form.
    const std::uint64_t first_line = first_addr / step;
    const std::uint64_t n_lines = (end_addr - first_addr + step - 1) / step;
    l1_.warm_sequential_lines(first_line, n_lines);
    l2_.warm_sequential_lines(first_line, n_lines);
    llc_.warm_sequential_lines(first_line, n_lines);
    return;
  }
  for (std::uint64_t addr = first_addr; addr < end_addr; addr += step) (void)access(addr);
}

int CacheHierarchy::hit_latency(HitLevel level) const {
  switch (level) {
    case HitLevel::kL1: return cfg_.l1.latency_cycles;
    case HitLevel::kL2: return cfg_.l2.latency_cycles;
    case HitLevel::kLlc: return cfg_.llc.latency_cycles;
    case HitLevel::kMemory: return cfg_.llc.latency_cycles;  // traversal before DRAM
  }
  return 0;
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  llc_.reset_stats();
}

}  // namespace photorack::cpusim
