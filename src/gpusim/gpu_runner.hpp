#pragma once

#include <string>
#include <vector>

#include "gpusim/kernel_model.hpp"

namespace photorack::gpusim {

/// One kernel shape plus how many times the application launches it.  The
/// paper's 24 applications contain 1525 kernel launches total; launches of
/// the same shape share one evaluation.
struct KernelLaunch {
  KernelProfile profile;
  int launches = 1;
};

struct AppProfile {
  std::string name;
  std::string suite;  // "Rodinia" | "Polybench" | "Tango"
  std::vector<KernelLaunch> kernels;

  [[nodiscard]] int total_launches() const;
};

/// Whole-application result (launch-weighted over kernels).
struct AppResult {
  std::string name;
  double time_us = 0.0;
  double predicted_cycles = 0.0;       // the paper compares total predicted cycles
  double l2_miss_rate = 0.0;           // transaction-weighted
  double hbm_txn_per_instr = 0.0;      // HBM transactions / total instructions
  double mem_instr_fraction = 0.0;     // instruction-weighted
  std::vector<KernelResult> kernel_results;  // one per distinct shape
};

/// Evaluate every kernel shape once and combine launch-weighted.
[[nodiscard]] AppResult run_app(const AppProfile& app, const GpuConfig& gpu);

/// Latency-independent skeleton of one application on one L2 geometry: the
/// emergent L2 miss rate per kernel shape.  extra_hbm_ns and
/// hbm_bandwidth_derate enter the kernel roofline only AFTER the L2
/// simulation, so one recorded profile replays exactly for any latency or
/// bandwidth derate — the GPU counterpart of cpusim::MissProfile.
struct AppMissProfile {
  std::string app_name;
  std::uint64_t l2_bytes = 0;
  int l2_ways = 0;
  int sector_bytes = 0;
  std::vector<double> kernel_l2_miss_rates;  // parallel to AppProfile::kernels
};

/// Phase 1: simulate every kernel shape's L2 stream once.
[[nodiscard]] AppMissProfile record_app_profile(const AppProfile& app, const GpuConfig& gpu);

/// Phase 2: rebuild run_app(app, gpu) bit-for-bit from the recorded miss
/// rates in O(kernels).  Throws std::invalid_argument when the profile was
/// recorded for a different app or L2 geometry.
[[nodiscard]] AppResult replay_app(const AppProfile& app, const AppMissProfile& profile,
                                   const GpuConfig& gpu);

/// Relative slowdown of the app at `extra_ns` vs a zero-extra baseline.
[[nodiscard]] double app_slowdown(const AppProfile& app, GpuConfig gpu, double extra_ns);

}  // namespace photorack::gpusim
