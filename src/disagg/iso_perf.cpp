#include "disagg/iso_perf.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/stats.hpp"

namespace photorack::disagg {

IsoPerfResult iso_performance(const rack::RackConfig& rack, const IsoPerfInputs& in) {
  if (in.memory_reduction < 1.0 || in.nic_reduction < 1.0)
    throw std::invalid_argument("iso_performance: reductions must be >= 1");
  IsoPerfResult r;
  r.baseline.cpus = rack.total_chips(rack::ChipType::kCpu);
  r.baseline.gpus = rack.total_chips(rack::ChipType::kGpu);
  r.baseline.ddr4 = rack.total_chips(rack::ChipType::kDdr4);
  r.baseline.nics = rack.nodes * in.nic_modules_per_node;

  // Iso-throughput: a fleet slowed by s needs (1+s)x the units.
  r.disaggregated.cpus =
      static_cast<int>(std::ceil(r.baseline.cpus * (1.0 + in.cpu_slowdown)));
  r.disaggregated.gpus =
      static_cast<int>(std::ceil(r.baseline.gpus * (1.0 + in.gpu_slowdown)));
  r.disaggregated.ddr4 =
      static_cast<int>(std::ceil(r.baseline.ddr4 / in.memory_reduction));
  r.disaggregated.nics =
      static_cast<int>(std::ceil(r.baseline.nics / in.nic_reduction));

  r.reduction_fraction =
      1.0 - static_cast<double>(r.disaggregated.total()) / r.baseline.total();

  // Alternative: keep all resources and add one extra compute module per
  // node (a CPU or a GPU+HBM), doubling per-node compute capability.
  r.added_compute_modules = rack.nodes;
  r.added_chip_fraction =
      static_cast<double>(r.added_compute_modules) / r.baseline.total();
  return r;
}

double derive_memory_reduction(const workloads::UsageModel& usage, int nodes,
                               double percentile, int trials, std::uint64_t seed) {
  // Validate up front rather than letting trials == 0 reach
  // sim::percentile's empty-input throw with a confusing message (the old
  // percentile returned 0.0 here, which made this function answer 1.0 —
  // "no reduction" — for a question it never actually asked).
  if (nodes < 1)
    throw std::invalid_argument("derive_memory_reduction: nodes must be >= 1");
  if (trials < 1)
    throw std::invalid_argument("derive_memory_reduction: trials must be >= 1");
  sim::Rng rng(seed);
  std::vector<double> rack_demand;
  rack_demand.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    double total = 0.0;
    for (int n = 0; n < nodes; ++n) total += usage.memory_capacity.sample(rng);
    rack_demand.push_back(total);  // in units of per-node memory capacity
  }
  const double provisioned_nodes = sim::percentile(rack_demand, percentile);
  // Baseline provisions `nodes` nodes' worth of DIMMs; the pool needs only
  // the high-percentile rack-wide demand.
  return provisioned_nodes > 0 ? static_cast<double>(nodes) / provisioned_nodes : 1.0;
}

}  // namespace photorack::disagg
