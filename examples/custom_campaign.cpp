// Define a campaign the registry does not ship: sweep the MCM escape
// geometry (fibers x per-wavelength rate) and report how many MCMs the
// Perlmutter-like rack packs into, plus the escape bandwidth each budget
// provides.  Shows the scenario engine is a library, not just the built-in
// paper presets — a Campaign is declarative axes plus an evaluator.
//
// The axes are config-registry paths ("mcm.fibers"), so the evaluator
// receives a typed rack::McmConfig via ScenarioSpec::resolve<T>() instead
// of parsing strings — and because resolve() reads the whole "mcm"/"rack"
// sections, ANY registered knob (say mcm.wavelengths_per_fiber, which this
// campaign never mentions) can be pinned onto the sweep through
// SweepGrid::override_axis / photorack_sweep --set.
#include <iostream>

#include "rack/mcm.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

int main() {
  using namespace photorack;

  scenario::Campaign campaign;
  campaign.name = "mcm_geometry";
  campaign.description = "Rack MCM count vs escape-budget geometry";
  campaign.paper_ref = "extends Table III (Section V-A)";
  campaign.columns = {"fibers", "gbps", "escape_gbs", "total_mcms"};
  campaign.axes = {{"mcm.fibers", {"16", "32", "64"}},
                   {"mcm.gbps_per_wavelength", {"25", "50"}}};
  campaign.evaluate = [](const scenario::ScenarioSpec& spec) {
    const rack::McmConfig mcm = spec.resolve<rack::McmConfig>("mcm");
    const auto plan = rack::pack_rack(spec.resolve<rack::RackConfig>("rack"), mcm);
    scenario::ResultRow row;
    row.cells = {spec.at("mcm.fibers"), spec.at("mcm.gbps_per_wavelength"),
                 scenario::num_to_string(mcm.escape().value),
                 scenario::num_to_string(plan.total_mcms)};
    return std::vector<scenario::ResultRow>{row};
  };

  std::cout << "MCM packing across escape budgets (" << campaign.default_grid().size()
            << " scenarios):\n\n";
  scenario::TableSink table(std::cout);
  const auto res = scenario::SweepRunner().run(campaign, {&table});

  std::cout << "\nThe paper's 32-fiber x 25 Gb/s point packs "
            << res.cell(res.find({{"fibers", "32"}, {"gbps", "25"}}), "total_mcms")
            << " MCMs; doubling either axis trades transceiver count against\n"
               "switch ports (Section V-B discusses the fabric-side limits).\n";
  return 0;
}
