#include "cpusim/runner.hpp"

#include <gtest/gtest.h>

#include "workloads/generators.hpp"

namespace photorack::cpusim {
namespace {

workloads::TraceConfig streaming_config(std::uint64_t ws) {
  workloads::TraceConfig cfg;
  cfg.working_set = ws;
  cfg.mem_fraction = 0.3;
  cfg.patterns = {{}};  // default streaming
  cfg.seed = 99;
  return cfg;
}

SimConfig small_sim(double extra = 0.0) {
  SimConfig cfg;
  cfg.warmup_instructions = 50'000;
  cfg.measured_instructions = 200'000;
  cfg.dram.extra_ns = extra;
  return cfg;
}

TEST(Runner, MeasuresRequestedInstructionCount) {
  workloads::SyntheticTrace trace(streaming_config(1 << 20));
  const auto result = run_simulation(trace, small_sim());
  EXPECT_EQ(result.instructions, 200'000u);
  EXPECT_GT(result.cycles, 0.0);
  EXPECT_GT(result.ipc, 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  workloads::SyntheticTrace t1(streaming_config(8 << 20));
  workloads::SyntheticTrace t2(streaming_config(8 << 20));
  const auto r1 = run_simulation(t1, small_sim());
  const auto r2 = run_simulation(t2, small_sim());
  EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
  EXPECT_DOUBLE_EQ(r1.llc_miss_rate, r2.llc_miss_rate);
}

TEST(Runner, CacheResidentWorkloadHasNoMisses) {
  workloads::SyntheticTrace trace(streaming_config(1 << 20));  // 1 MB << LLC
  const auto result = run_simulation(trace, small_sim());
  EXPECT_LT(result.llc_mpki, 0.5);
}

TEST(Runner, OverLlcStreamingThrashes) {
  workloads::SyntheticTrace trace(streaming_config(128ULL << 20));
  const auto result = run_simulation(trace, small_sim());
  EXPECT_GT(result.llc_miss_rate, 0.9);
  EXPECT_GT(result.llc_mpki, 1.0);
}

TEST(Runner, SlowdownGrowsWithExtraLatency) {
  const auto cfg = streaming_config(128ULL << 20);
  workloads::SyntheticTrace t0(cfg), t25(cfg), t35(cfg), t85(cfg);
  const auto base = run_simulation(t0, small_sim(0));
  const double s25 = slowdown(base, run_simulation(t25, small_sim(25)));
  const double s35 = slowdown(base, run_simulation(t35, small_sim(35)));
  const double s85 = slowdown(base, run_simulation(t85, small_sim(85)));
  EXPECT_GT(s25, 0.0);
  EXPECT_GT(s35, s25);
  EXPECT_GT(s85, s35);
}

TEST(Runner, ExtraLatencyDoesNotChangeMissRate) {
  const auto cfg = streaming_config(64ULL << 20);
  workloads::SyntheticTrace t0(cfg), t35(cfg);
  const auto r0 = run_simulation(t0, small_sim(0));
  const auto r35 = run_simulation(t35, small_sim(35));
  EXPECT_DOUBLE_EQ(r0.llc_miss_rate, r35.llc_miss_rate);
  EXPECT_DOUBLE_EQ(r0.dram_row_hit_rate, r35.dram_row_hit_rate);
}

TEST(Runner, MissStallCyclesGrow50To150Percent) {
  // Section VI-B1: "cycles the LLC spends in a miss increase by 50% to
  // 150%" with +35 ns.
  const auto cfg = streaming_config(128ULL << 20);
  workloads::SyntheticTrace t0(cfg), t35(cfg);
  const auto r0 = run_simulation(t0, small_sim(0));
  const auto r35 = run_simulation(t35, small_sim(35));
  const double growth = r35.llc_miss_stall_cycles / r0.llc_miss_stall_cycles - 1.0;
  EXPECT_GT(growth, 0.5);
  EXPECT_LT(growth, 1.7);
}

TEST(Runner, SlowdownThrowsOnEmptyBaseline) {
  SimResult empty;
  SimResult other;
  other.time_ns = 10.0;
  EXPECT_THROW(slowdown(empty, other), std::invalid_argument);
}

TEST(Runner, MemFractionIsRespected) {
  workloads::SyntheticTrace trace(streaming_config(1 << 20));
  const auto result = run_simulation(trace, small_sim());
  EXPECT_NEAR(result.mem_op_fraction, 0.3, 0.01);
}

}  // namespace
}  // namespace photorack::cpusim
