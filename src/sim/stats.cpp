#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace photorack::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double idx = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geomean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += std::log(std::max(x, 1e-300));
  return std::exp(s / static_cast<double>(v.size()));
}

double max_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::cdf(double x) const {
  if (total_ <= 0.0) return 0.0;
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double acc = 0.0;
  const auto full = static_cast<std::size_t>((x - lo_) / width_);
  for (std::size_t i = 0; i < full && i < counts_.size(); ++i) acc += counts_[i];
  if (full < counts_.size()) {
    const double frac = (x - bin_lo(full)) / width_;
    acc += counts_[full] * frac;
  }
  return acc / total_;
}

}  // namespace photorack::sim
