#pragma once

#include "config/enum_codec.hpp"
#include "config/param_registry.hpp"
#include "rack/rack_builder.hpp"

namespace photorack::config {

/// Top-level knobs that pick between whole designs rather than configure
/// one struct; registered as the "system" section.
struct SystemParams {
  rack::FabricKind fabric = rack::FabricKind::kParallelAwgrs;
};

/// Canonical spelling of the co-simulation feedback mode: "closed" (stretch
/// durations by measured contention) | "open" (flows occupy the fabric but
/// never slow jobs).  Maps onto CosimConfig::contention_feedback.
[[nodiscard]] const EnumCodec<bool>& feedback_codec();

/// The process-wide parameter space: every layer's config struct registered
/// as a section of typed, documented, validated paths.  Built once on first
/// use; see bindings.cpp for the per-section knob tables.
[[nodiscard]] const ParamRegistry& registry();

}  // namespace photorack::config
