// Define a campaign the registry does not ship: sweep the MCM escape
// geometry (fibers x per-wavelength rate) and report how many MCMs the
// Perlmutter-like rack packs into, plus the escape bandwidth each budget
// provides.  Shows the scenario engine is a library, not just the six
// built-in paper presets — a Campaign is a grid plus an evaluator.
#include <iostream>

#include "phot/units.hpp"
#include "rack/mcm.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

int main() {
  using namespace photorack;

  scenario::Campaign campaign;
  campaign.name = "mcm_geometry";
  campaign.description = "Rack MCM count vs escape-budget geometry";
  campaign.paper_ref = "extends Table III (Section V-A)";
  campaign.columns = {"fibers", "gbps", "escape_gbs", "total_mcms"};
  campaign.default_grid = [] {
    scenario::SweepGrid grid;
    grid.axis("fibers", std::vector<double>{16, 32, 64})
        .axis("gbps", std::vector<double>{25, 50});
    return grid;
  };
  campaign.evaluate = [](const scenario::ScenarioSpec& spec) {
    rack::McmConfig mcm;
    mcm.fibers = spec.integer("fibers");
    mcm.gbps_per_wavelength = phot::Gbps{spec.num("gbps")};
    const auto plan = rack::pack_rack({}, mcm);
    scenario::ResultRow row;
    row.cells = {spec.at("fibers"), spec.at("gbps"),
                 scenario::num_to_string(mcm.escape().value),
                 scenario::num_to_string(plan.total_mcms)};
    return std::vector<scenario::ResultRow>{row};
  };

  std::cout << "MCM packing across escape budgets (" << campaign.default_grid().size()
            << " scenarios):\n\n";
  scenario::TableSink table(std::cout);
  const auto res = scenario::SweepRunner().run(campaign, {&table});

  std::cout << "\nThe paper's 32-fiber x 25 Gb/s point packs "
            << res.cell(res.find({{"fibers", "32"}, {"gbps", "25"}}), "total_mcms")
            << " MCMs; doubling either axis trades transceiver count against\n"
               "switch ports (Section V-B discusses the fabric-side limits).\n";
  return 0;
}
