#include "scenario/sweep_grid.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace photorack::scenario {

std::string num_to_string(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::invalid_argument("num_to_string: unrepresentable value");
  return std::string(buf, ptr);
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<std::string> values) {
  if (values.empty())
    throw std::invalid_argument("SweepGrid: axis '" + name + "' has no values");
  if (has(name)) throw std::invalid_argument("SweepGrid: duplicate axis '" + name + "'");
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(num_to_string(v));
  return axis(std::move(name), std::move(cells));
}

SweepGrid& SweepGrid::set(const std::string& name, std::vector<std::string> values) {
  if (values.empty())
    throw std::invalid_argument("SweepGrid: axis '" + name + "' has no values");
  for (auto& ax : axes_) {
    if (ax.name == name) {
      ax.values = std::move(values);
      return *this;
    }
  }
  std::string known;
  for (const auto& ax : axes_) {
    if (!known.empty()) known += ", ";
    known += ax.name;
  }
  throw std::out_of_range("SweepGrid: unknown axis '" + name + "' (grid axes: " + known +
                          ")");
}

bool SweepGrid::has(const std::string& name) const {
  for (const auto& ax : axes_)
    if (ax.name == name) return true;
  return false;
}

std::size_t SweepGrid::size() const {
  std::size_t n = 1;
  for (const auto& ax : axes_) n *= ax.values.size();
  return axes_.empty() ? 0 : n;
}

std::vector<ScenarioSpec> SweepGrid::expand(const std::string& campaign,
                                            std::uint64_t base_seed) const {
  std::vector<ScenarioSpec> specs;
  if (axes_.empty()) return specs;
  const std::size_t total = size();
  specs.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    ScenarioSpec spec;
    spec.campaign = campaign;
    spec.index = index;
    spec.base_seed = base_seed;
    spec.axes.reserve(axes_.size());
    // Mixed-radix decomposition, last axis fastest.
    std::size_t rem = index;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& ax = axes_[a];
      spec.axes.emplace_back(ax.name, ax.values[rem % ax.values.size()]);
      rem /= ax.values.size();
    }
    std::reverse(spec.axes.begin(), spec.axes.end());
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace photorack::scenario
