#include "rack/chips.hpp"

#include <stdexcept>

namespace photorack::rack {

const char* to_string(ChipType t) {
  switch (t) {
    case ChipType::kCpu: return "CPU";
    case ChipType::kGpu: return "GPU";
    case ChipType::kNic: return "NIC";
    case ChipType::kHbm: return "HBM";
    case ChipType::kDdr4: return "DDR4";
  }
  return "?";
}

phot::GBps NodeConfig::chip_escape(ChipType t) const {
  using phot::GBps;
  switch (t) {
    case ChipType::kCpu:
      // Memory channels + PCIe links to the GPUs + NIC links.
      return GBps{ddr4_per_module.value * ddr4_modules +
                  pcie_per_link.value * gpus + nic_per_port.value * nics};
    case ChipType::kGpu:
      // HBM + NVLink peers + PCIe to the CPU.
      return GBps{hbm_per_stack.value + nvlink_per_gpu.value + pcie_per_link.value};
    case ChipType::kNic:
      // Host-side PCIe Gen4 x16 attachment dominates the NIC's escape.
      return pcie_per_link;
    case ChipType::kHbm:
      return hbm_per_stack;
    case ChipType::kDdr4:
      return ddr4_per_module;
  }
  throw std::logic_error("unreachable");
}

ChipSpec NodeConfig::chip_spec(ChipType t) const {
  ChipSpec s;
  s.type = t;
  s.escape_bandwidth = chip_escape(t);
  s.per_node = chips_per_node(t);
  switch (t) {
    case ChipType::kCpu:
      s.power = phot::Watts{250};
      break;
    case ChipType::kGpu:
      s.power = phot::Watts{300};
      break;
    case ChipType::kNic:
      s.power = phot::Watts{25};
      break;
    case ChipType::kHbm:
      s.power = phot::Watts{20};
      break;
    case ChipType::kDdr4:
      // 512 GB/node over two sockets is quoted at ~192 W; per 32 GB module:
      s.power = phot::Watts{12};
      s.max_per_mcm = 27;  // Table III packaging cap (see DESIGN.md)
      break;
  }
  return s;
}

int NodeConfig::chips_per_node(ChipType t) const {
  switch (t) {
    case ChipType::kCpu: return cpus;
    case ChipType::kGpu: return gpus;
    case ChipType::kNic: return nics;
    case ChipType::kHbm: return hbm_stacks;
    case ChipType::kDdr4: return ddr4_modules;
  }
  throw std::logic_error("unreachable");
}

}  // namespace photorack::rack
