#include "workloads/usage.hpp"

#include <cmath>
#include <stdexcept>

namespace photorack::workloads {

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation; relative
/// error < 1.2e-9, deterministic — good enough for quantile fitting).
double probit(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("probit: p in (0,1) required");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

QuantileLognormal::QuantileLognormal(double p, double value_p, double q, double value_q,
                                     double clamp_max)
    : clamp_max_(clamp_max) {
  if (!(p < q) || value_p <= 0.0 || value_q <= value_p)
    throw std::invalid_argument("QuantileLognormal: need p<q and 0<value_p<value_q");
  const double zp = probit(p), zq = probit(q);
  sigma_ = (std::log(value_q) - std::log(value_p)) / (zq - zp);
  mu_ = std::log(value_p) - zp * sigma_;
}

double QuantileLognormal::sample(sim::Rng& rng) const {
  const double x = rng.lognormal(mu_, sigma_);
  return clamp_max_ > 0.0 ? std::min(x, clamp_max_) : x;
}

double QuantileLognormal::quantile(double q) const {
  return std::exp(mu_ + sigma_ * probit(q));
}

UsageModel UsageModel::cori() {
  return UsageModel{
      // p50 and p75 of per-node memory-capacity use: Cori Haswell-like.
      QuantileLognormal(0.50, 0.095, 0.75, 0.174),
      // memory bandwidth: p75 = 0.46 GB/s of 204.8 GB/s = 0.22%.
      QuantileLognormal(0.50, 0.0008, 0.75, 0.00225),
      // NIC bandwidth: p75 = 1.25%.
      QuantileLognormal(0.50, 0.004, 0.75, 0.0125),
      // cores: "half of the time no more than half of their compute cores".
      QuantileLognormal(0.50, 0.50, 0.75, 0.85),
  };
}

FlowDemandModel FlowDemandModel::cpu_memory() {
  // p97 = 25 Gb/s (one wavelength), p99.5 = 125 Gb/s (the direct budget).
  return FlowDemandModel(QuantileLognormal(0.97, 25.0, 0.995, 125.0, 0.0));
}

FlowDemandModel FlowDemandModel::nic_memory() {
  // NIC<->memory traffic is lighter: "virtually all the time" under the
  // direct budget; p97 = 12 Gb/s, p99.9 = 125 Gb/s.
  return FlowDemandModel(QuantileLognormal(0.97, 12.0, 0.999, 125.0, 0.0));
}

double FlowDemandModel::sample_gbps(sim::Rng& rng) const { return dist_.sample(rng); }

}  // namespace photorack::workloads
