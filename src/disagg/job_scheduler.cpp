#include "disagg/job_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace photorack::disagg {

JobSimReport run_job_stream(const rack::RackConfig& rack, AllocationPolicy policy,
                            const workloads::UsageModel& usage, const JobSimConfig& cfg) {
  RackAllocator allocator(rack, policy);
  sim::EventQueue queue;
  sim::Rng arrival_rng(cfg.seed);
  sim::Rng job_rng = arrival_rng.child(1);

  JobSimReport report;
  sim::RunningStats cpu_util, gpu_util, mem_util, marooned_cpu, marooned_mem;

  const double mean_gap =
      static_cast<double>(sim::kPsPerMs) / cfg.arrivals_per_ms;

  // Job demands: breadth in nodes, then per-resource usage fractions drawn
  // from the production distributions — exactly the §II-A picture where a
  // job occupies N nodes but touches a small slice of their memory/NIC.
  auto make_request = [&]() {
    JobRequest req;
    const auto breadth =
        static_cast<int>(1 + job_rng.below(static_cast<std::uint64_t>(cfg.max_job_nodes)));
    const double cpu_frac = usage.cpu_cores.sample(job_rng);
    const double mem_frac = usage.memory_capacity.sample(job_rng);
    const double nic_frac = usage.nic_bandwidth.sample(job_rng);
    req.cpus = std::max(1, static_cast<int>(std::lround(breadth * rack.node.cpus * cpu_frac)));
    // GPUs: half the jobs are GPU jobs asking for 1..4 GPUs per node.
    req.gpus = job_rng.bernoulli(0.5)
                   ? breadth * static_cast<int>(1 + job_rng.below(
                                   static_cast<std::uint64_t>(rack.node.gpus)))
                   : 0;
    req.memory_gb = breadth * 256.0 * mem_frac;
    req.nic_gbps = breadth * 800.0 * nic_frac;
    return req;
  };

  std::function<void()> schedule_next = [&]() {
    const auto gap = static_cast<sim::TimePs>(arrival_rng.exponential(mean_gap));
    if (queue.now() + gap >= cfg.sim_time) return;
    queue.schedule_after(gap, [&]() {
      ++report.offered;
      const JobRequest req = make_request();
      auto alloc = std::make_shared<Allocation>(allocator.allocate(req));
      if (alloc->placed) {
        ++report.accepted;
        const auto hold =
            static_cast<sim::TimePs>(job_rng.exponential(
                static_cast<double>(cfg.mean_duration)));
        queue.schedule_after(std::max<sim::TimePs>(hold, 1),
                             [&, alloc]() { allocator.release(*alloc); });
      }
      // Sample utilization at every arrival (an unbiased-enough probe for
      // Poisson arrivals, by PASTA).
      cpu_util.add(allocator.pools().cpu_utilization());
      gpu_util.add(allocator.pools().gpu_utilization());
      mem_util.add(allocator.pools().memory_utilization());
      marooned_cpu.add(allocator.marooned_cpu_fraction());
      marooned_mem.add(allocator.marooned_memory_fraction());
      schedule_next();
    });
  };
  schedule_next();
  queue.run();

  report.mean_cpu_utilization = cpu_util.mean();
  report.mean_gpu_utilization = gpu_util.mean();
  report.mean_memory_utilization = mem_util.mean();
  report.mean_marooned_cpu = marooned_cpu.mean();
  report.mean_marooned_memory = marooned_mem.mean();
  return report;
}

}  // namespace photorack::disagg
