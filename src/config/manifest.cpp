#include "config/manifest.hpp"

namespace photorack::config {

namespace {

void append_axis_list(
    std::string& out,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& list) {
  out += '[';
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    out += json_quote(list[i].first);
    out += ",\"values\":[";
    for (std::size_t j = 0; j < list[i].second.size(); ++j) {
      if (j) out += ',';
      out += json_quote(list[i].second[j]);
    }
    out += "]}";
  }
  out += ']';
}

}  // namespace

std::string Manifest::to_json(const ParamRegistry& reg) const {
  // Resolve the full tree: defaults, then every SINGLE-valued registry-path
  // axis (a multi-valued axis is the sweep dimension itself — its values
  // live in "axes", and each row's column carries the point's value).
  ConfigTree tree(reg);
  for (const auto& [name, values] : axes)
    if (values.size() == 1 && reg.has(name)) tree.set(name, values.front());

  std::string out = "{\"schema\":1,\"tool\":";
  out += json_quote(tool);
  out += ",\"campaign\":";
  out += json_quote(campaign);
  out += ",\"base_seed\":";
  out += std::to_string(base_seed);
  out += ",\"axes\":";
  append_axis_list(out, axes);
  out += ",\"overrides\":";
  append_axis_list(out, overrides);
  out += ",\"params\":";
  out += tree.to_json();
  out += '}';
  return out;
}

}  // namespace photorack::config
