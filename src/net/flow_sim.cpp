#include "net/flow_sim.hpp"

#include <memory>

namespace photorack::net {

FlowSimulator::FlowSimulator(WavelengthFabric& fabric, FlowGenerator generator,
                             FlowSimConfig cfg)
    : fabric_(&fabric), generator_(std::move(generator)), cfg_(cfg) {}

FlowSimReport FlowSimulator::run() {
  sim::EventQueue queue;
  sim::Rng rng(cfg_.seed);
  PiggybackView view(*fabric_, cfg_.piggyback_interval);
  IndirectRouter router(*fabric_, view, rng.child(1)());

  FlowSimReport report;
  sim::RunningStats offered, intermediates;
  double requested_total = 0.0, satisfied_total = 0.0;
  double direct_total = 0.0, indirect_total = 0.0;
  double peak_util = 0.0;

  const double mean_interarrival_ps =
      static_cast<double>(sim::kPsPerUs) / cfg_.arrivals_per_us;
  sim::Rng arrival_rng = rng.child(2);
  sim::Rng flow_rng = rng.child(3);

  // Active-flow bookkeeping lives in shared_ptrs captured by the departure
  // events; the queue owns the closures.
  std::function<void()> schedule_next_arrival = [&]() {
    const auto gap =
        static_cast<sim::TimePs>(arrival_rng.exponential(mean_interarrival_ps));
    if (queue.now() + gap >= cfg_.sim_time) return;
    queue.schedule_after(gap, [&]() {
      view.maybe_refresh(queue.now());
      const FlowSpec spec = generator_(flow_rng);
      auto result = std::make_shared<RouteResult>(router.route(spec.src, spec.dst, spec.gbps));
      ++report.flows;
      if (result->fully_satisfied()) ++report.fully_satisfied;
      offered.add(spec.gbps);
      intermediates.add(result->intermediates_used);
      requested_total += spec.gbps;
      satisfied_total += result->satisfied();
      direct_total += result->direct_gbps;
      indirect_total += result->indirect_gbps;
      peak_util = std::max(peak_util, fabric_->utilization());
      queue.schedule_after(spec.duration, [&, result]() { router.release(*result); });
      schedule_next_arrival();
    });
  };
  schedule_next_arrival();
  queue.run();

  report.offered_gbps_mean = offered.mean();
  report.satisfied_fraction = requested_total > 0 ? satisfied_total / requested_total : 1.0;
  report.direct_fraction = satisfied_total > 0 ? direct_total / satisfied_total : 0.0;
  report.indirect_fraction = satisfied_total > 0 ? indirect_total / satisfied_total : 0.0;
  report.stale_mispicks = router.total_mispicks();
  report.second_hops = router.total_second_hops();
  report.mean_intermediates = intermediates.mean();
  report.peak_utilization = peak_util;
  return report;
}

}  // namespace photorack::net
