// google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, cache access rate, DRAM model, trace generation,
// full timing-simulation rate, and indirect-routing decision rate.
#include <benchmark/benchmark.h>

#include "core/rack_system.hpp"
#include "cpusim/runner.hpp"
#include "net/routing.hpp"
#include "sim/event_queue.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace photorack;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    long long sink = 0;
    for (int i = 0; i < 1024; ++i)
      q.schedule_at(i * 10, [&sink] { benchmark::DoNotOptimize(++sink); });
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  cpusim::CacheHierarchy hierarchy;
  sim::Rng rng(1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng() % (64ULL << 20);
    benchmark::DoNotOptimize(hierarchy.access(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_DramModel(benchmark::State& state) {
  cpusim::DramModel dram;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr += 64;
    benchmark::DoNotOptimize(dram.access_ns(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramModel);

void BM_TraceGeneration(benchmark::State& state) {
  workloads::SyntheticTrace trace(workloads::cpu_benchmarks().front().trace);
  std::array<cpusim::Instr, 4096> batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch.size()));
}
BENCHMARK(BM_TraceGeneration);

void BM_TimingSimulation(benchmark::State& state) {
  const auto& bench = workloads::cpu_benchmarks().front();
  for (auto _ : state) {
    cpusim::SimConfig cfg;
    cfg.warmup_instructions = 10'000;
    cfg.measured_instructions = 100'000;
    workloads::SyntheticTrace trace(bench.trace);
    benchmark::DoNotOptimize(cpusim::run_simulation(trace, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 110'000);
}
BENCHMARK(BM_TimingSimulation);

void BM_IndirectRouting(benchmark::State& state) {
  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  auto fabric = system.make_fabric();
  net::PiggybackView view(fabric, sim::kPsPerUs);
  net::IndirectRouter router(fabric, view, 42);
  sim::Rng rng(7);
  const auto mcms = static_cast<std::uint64_t>(fabric.mcms());
  for (auto _ : state) {
    const int src = static_cast<int>(rng.below(mcms));
    int dst = static_cast<int>(rng.below(mcms));
    if (dst == src) dst = (dst + 1) % static_cast<int>(mcms);
    auto result = router.route(src, dst, 200.0);  // forces indirect spill
    benchmark::DoNotOptimize(result);
    router.release(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndirectRouting);

}  // namespace
