#include "obs/metrics.hpp"

#include <charconv>
#include <stdexcept>

namespace photorack::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::add(Kind kind, const std::string& name,
                                         double relative_error) {
  if (name.empty()) throw std::invalid_argument("MetricsRegistry: empty metric name");
  for (const Metric& m : metrics_)
    if (m.name == name)
      throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name + "'");
  if (!rows_.empty())
    throw std::logic_error("MetricsRegistry: cannot register '" + name +
                           "' after sampling started (columns would shift)");
  metrics_.emplace_back(kind, name, relative_error);
  return metrics_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return add(Kind::kCounter, name, 0.01);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return add(Kind::kGauge, name, 0.01);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               double relative_error) {
  return add(Kind::kHistogram, name, relative_error);
}

void MetricsRegistry::inc(Id id, double delta) {
  Metric& m = metrics_.at(id);
  if (m.kind != Kind::kCounter)
    throw std::logic_error("MetricsRegistry: inc() on non-counter '" + m.name + "'");
  if (delta < 0.0)
    throw std::invalid_argument("MetricsRegistry: counter '" + m.name +
                                "' cannot decrease");
  m.value += delta;
}

void MetricsRegistry::set(Id id, double value) {
  Metric& m = metrics_.at(id);
  if (m.kind != Kind::kGauge)
    throw std::logic_error("MetricsRegistry: set() on non-gauge '" + m.name + "'");
  m.value = value;
}

void MetricsRegistry::observe(Id id, double value) {
  Metric& m = metrics_.at(id);
  if (m.kind != Kind::kHistogram)
    throw std::logic_error("MetricsRegistry: observe() on non-histogram '" + m.name + "'");
  m.sketch.add(value);
}

double MetricsRegistry::value(Id id) const {
  const Metric& m = metrics_.at(id);
  return m.kind == Kind::kHistogram ? static_cast<double>(m.sketch.count()) : m.value;
}

void MetricsRegistry::sample(double t_ms) {
  if (!rows_.empty() && t_ms < rows_.back().t_ms)
    throw std::invalid_argument("MetricsRegistry: sample time went backwards");
  Row row;
  row.t_ms = t_ms;
  row.values.reserve(metrics_.size() * 2);
  for (const Metric& m : metrics_) {
    if (m.kind == Kind::kHistogram) {
      row.values.push_back(m.sketch.quantile_or(50.0, 0.0));
      row.values.push_back(m.sketch.quantile_or(99.0, 0.0));
    } else {
      row.values.push_back(m.value);
    }
  }
  rows_.push_back(std::move(row));
}

std::vector<std::string> MetricsRegistry::columns() const {
  std::vector<std::string> cols;
  cols.push_back("time_ms");
  for (const Metric& m : metrics_) {
    if (m.kind == Kind::kHistogram) {
      cols.push_back(m.name + "_p50");
      cols.push_back(m.name + "_p99");
    } else {
      cols.push_back(m.name);
    }
  }
  return cols;
}

std::vector<std::vector<std::string>> MetricsRegistry::string_rows() const {
  std::vector<std::vector<std::string>> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.values.size() + 1);
    cells.push_back(fmt_double(row.t_ms));
    for (const double v : row.values) cells.push_back(fmt_double(v));
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace photorack::obs
