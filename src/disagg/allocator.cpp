#include "disagg/allocator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

namespace photorack::disagg {

namespace {

/// Allocation ids are unique across every allocator in the process, so an
/// Allocation handed to the wrong allocator can never alias an id that
/// allocator granted itself — release() then reliably throws instead of
/// silently draining pools that were never charged.
std::uint64_t next_global_allocation_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const config::EnumCodec<AllocationPolicy>& allocation_policy_codec() {
  static const config::EnumCodec<AllocationPolicy> codec(
      "policy", {{"static", AllocationPolicy::kStaticNodes},
                 {"disagg", AllocationPolicy::kDisaggregated}});
  return codec;
}

AllocationPolicy parse_allocation_policy(const std::string& v) {
  return allocation_policy_codec().parse(v);
}

const char* to_string(AllocationPolicy policy) {
  return allocation_policy_codec().name(policy).c_str();
}

RackAllocator::RackAllocator(const rack::RackConfig& rack, AllocationPolicy policy,
                             double memory_gb_per_node, double nic_gbps_per_node)
    : policy_(policy),
      nodes_(rack.nodes),
      cpus_per_node_(rack.node.cpus),
      gpus_per_node_(rack.node.gpus),
      memory_gb_per_node_(memory_gb_per_node),
      nic_gbps_per_node_(nic_gbps_per_node),
      free_nodes_(rack.nodes) {
  pools_.cpus_total = nodes_ * cpus_per_node_;
  pools_.gpus_total = nodes_ * gpus_per_node_;
  pools_.memory_gb_total = nodes_ * memory_gb_per_node_;
  pools_.nic_gbps_total = nodes_ * nic_gbps_per_node_;
}

Allocation RackAllocator::allocate(const JobRequest& req) {
  Allocation a;
  if (req.cpus < 0 || req.gpus < 0 || req.memory_gb < 0 || req.nic_gbps < 0)
    throw std::invalid_argument("allocate: negative request");
  ++counters_.attempts;

  if (policy_ == AllocationPolicy::kStaticNodes) {
    // A job gets the smallest node count covering its largest per-resource
    // demand; everything else in those nodes is marooned.
    int need = 0;
    need = std::max(need, (req.cpus + cpus_per_node_ - 1) / std::max(1, cpus_per_node_));
    need = std::max(need, gpus_per_node_ > 0
                              ? (req.gpus + gpus_per_node_ - 1) / gpus_per_node_
                              : 0);
    need = std::max(
        need, static_cast<int>(std::ceil(req.memory_gb / memory_gb_per_node_)));
    need = std::max(need,
                    static_cast<int>(std::ceil(req.nic_gbps / nic_gbps_per_node_)));
    need = std::max(need, 1);
    if (need > free_nodes_) return a;
    free_nodes_ -= need;
    a.placed = true;
    a.nodes = need;
    a.cpus = need * cpus_per_node_;
    a.gpus = need * gpus_per_node_;
    a.memory_gb = need * memory_gb_per_node_;
    a.nic_gbps = need * nic_gbps_per_node_;
    pools_.cpus_used += a.cpus;
    pools_.gpus_used += a.gpus;
    pools_.memory_gb_used += a.memory_gb;
    pools_.nic_gbps_used += a.nic_gbps;
    a.marooned_cpus = std::max(0.0, static_cast<double>(a.cpus - req.cpus));
    a.marooned_memory_gb = std::max(0.0, a.memory_gb - req.memory_gb);
    marooned_cpus_ += a.marooned_cpus;
    marooned_memory_gb_ += a.marooned_memory_gb;
  } else {
    if (req.cpus > pools_.cpus_total - pools_.cpus_used) return a;
    if (req.gpus > pools_.gpus_total - pools_.gpus_used) return a;
    if (req.memory_gb > pools_.memory_gb_total - pools_.memory_gb_used) return a;
    if (req.nic_gbps > pools_.nic_gbps_total - pools_.nic_gbps_used) return a;
    a.placed = true;
    a.cpus = req.cpus;
    a.gpus = req.gpus;
    a.memory_gb = req.memory_gb;
    a.nic_gbps = req.nic_gbps;
    pools_.cpus_used += a.cpus;
    pools_.gpus_used += a.gpus;
    pools_.memory_gb_used += a.memory_gb;
    pools_.nic_gbps_used += a.nic_gbps;
  }
  ++counters_.placements;
  a.id = next_global_allocation_id();
  live_.emplace(a.id, a);
  return a;
}

void RackAllocator::release(const Allocation& alloc) { reclaim(alloc, false); }

void RackAllocator::revoke(const Allocation& alloc) { reclaim(alloc, true); }

void RackAllocator::reclaim(const Allocation& alloc, bool revoked) {
  if (!alloc.placed) return;
  const auto it = live_.find(alloc.id);
  if (it == live_.end())
    throw std::logic_error(std::string(revoked ? "revoke" : "release") +
                           ": allocation id " + std::to_string(alloc.id) +
                           " was never granted or is already released");
  // Decrement by the grant this allocator recorded, never by the caller's
  // copy: mutated Allocation fields cannot skew the accounting, and the
  // pools can only ever return to exactly what allocate() charged.
  const Allocation granted = it->second;
  live_.erase(it);
  ++(revoked ? counters_.revocations : counters_.releases);
  pools_.cpus_used -= granted.cpus;
  pools_.gpus_used -= granted.gpus;
  pools_.memory_gb_used -= granted.memory_gb;
  pools_.nic_gbps_used -= granted.nic_gbps;
  if (policy_ == AllocationPolicy::kStaticNodes) {
    free_nodes_ += granted.nodes;
    marooned_cpus_ -= granted.marooned_cpus;
    marooned_memory_gb_ -= granted.marooned_memory_gb;
  }
  if (live_.empty()) {
    // Releasing in a different order than allocating leaves ~1e-16-scale
    // residue in the floating-point accumulators; an empty allocator must
    // be *bit-exactly* pristine ("free restores exactly").  Keep the
    // threshold tight: it must absorb rounding residue only, never mask a
    // genuine sub-microscopic accounting leak.
    constexpr double kRoundingEps = 1e-9;
    auto snap = [](double& v) {
      if (v > -kRoundingEps && v < kRoundingEps) v = 0.0;
    };
    snap(pools_.memory_gb_used);
    snap(pools_.nic_gbps_used);
    snap(marooned_cpus_);
    snap(marooned_memory_gb_);
  }
}

void RackAllocator::take_nodes_offline(int count) {
  if (count <= 0) throw std::invalid_argument("take_nodes_offline: count must be > 0");
  if (count > nodes_ - offline_nodes_)
    throw std::logic_error("take_nodes_offline: only " +
                           std::to_string(nodes_ - offline_nodes_) + " nodes online");
  // Under static nodes a node is either whole-free or whole-granted; the
  // fault path must revoke the victims before retiring their nodes, so an
  // occupied node here is a sequencing bug, not a recoverable state.
  if (policy_ == AllocationPolicy::kStaticNodes && count > free_nodes_)
    throw std::logic_error("take_nodes_offline: node still allocated (revoke first)");
  offline_nodes_ += count;
  free_nodes_ -= count;
  pools_.cpus_total -= count * cpus_per_node_;
  pools_.gpus_total -= count * gpus_per_node_;
  pools_.memory_gb_total -= count * memory_gb_per_node_;
  pools_.nic_gbps_total -= count * nic_gbps_per_node_;
}

void RackAllocator::bring_nodes_online(int count) {
  if (count <= 0) throw std::invalid_argument("bring_nodes_online: count must be > 0");
  if (count > offline_nodes_)
    throw std::logic_error("bring_nodes_online: only " +
                           std::to_string(offline_nodes_) + " nodes offline");
  offline_nodes_ -= count;
  free_nodes_ += count;
  pools_.cpus_total += count * cpus_per_node_;
  pools_.gpus_total += count * gpus_per_node_;
  pools_.memory_gb_total += count * memory_gb_per_node_;
  pools_.nic_gbps_total += count * nic_gbps_per_node_;
}

double RackAllocator::marooned_cpu_fraction() const {
  return pools_.cpus_total ? marooned_cpus_ / pools_.cpus_total : 0.0;
}

double RackAllocator::marooned_memory_fraction() const {
  return pools_.memory_gb_total > 0 ? marooned_memory_gb_ / pools_.memory_gb_total : 0.0;
}

}  // namespace photorack::disagg
