#pragma once

#include <cstdint>
#include <vector>

namespace photorack::cpusim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = 64;
  int latency_cycles = 4;  // load-to-use at this level

  [[nodiscard]] std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

/// Set-associative cache with true-LRU replacement (recency stamps).
/// Addresses are byte addresses; the cache indexes by line.
///
/// Tags and stamps are stored as 32-bit values so a 16-way set's tag scan
/// touches one host cache line instead of two — the simulator's hottest
/// loop by far (the LLC's metadata alone is tens of MB, so probes miss the
/// host cache and every line saved is a DRAM access saved).  The narrowing
/// is loud, not lossy: line ids >= 2^32-1 (byte addresses beyond ~256 GB)
/// and instances older than 2^32-2 accesses throw instead of aliasing —
/// both far outside anything the models generate.
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig cfg);

  /// Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  /// Install a line without touching the demand-access statistics (used by
  /// the prefetcher's fills).
  void insert(std::uint64_t addr);

  /// Exactly equivalent to `for (i = 0..n_lines-1) access((first_line + i)
  /// * line_bytes)` on this cache, but O(entries) instead of O(n_lines):
  /// every access in such a walk is a compulsory miss installing a distinct
  /// line, so the final tags/stamps/clock/stats are a closed form.  Used by
  /// the simulation prewarm (which walks footprints of up to a million
  /// lines before every run).  Falls back to the literal loop when the
  /// cache is not empty (the closed form requires the all-invalid state).
  void warm_sequential_lines(std::uint64_t first_line, std::uint64_t n_lines);

  /// Probe without modifying state.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// True while the cache has never been touched (no access/insert since
  /// construction) — the state warm_sequential_lines' closed form needs.
  [[nodiscard]] bool pristine() const { return clock_ == 0; }

  void invalidate_all();

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / static_cast<double>(accesses_) : 0.0;
  }
  void reset_stats() { accesses_ = misses_ = 0; }

 private:
  CacheConfig cfg_;
  std::uint64_t sets_ = 0;
  std::uint64_t set_mask_ = 0;
  std::size_t ways_ = 0;  // cfg_.ways hoisted out of the per-access path
  bool pow2_sets_ = true;
  int line_shift_;
  // tag[set*ways + way]; kInvalid marks empty.  stamp holds last-use time.
  std::vector<std::uint32_t> tags_;
  std::vector<std::uint32_t> stamps_;
  std::uint64_t clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  // Way of the most recent demand hit/install (fast path in access()).
  std::size_t mru_way_ = ~static_cast<std::size_t>(0);

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  static constexpr std::size_t kNoWay = ~static_cast<std::size_t>(0);

  /// Line id as a stored tag; throws rather than alias when the id cannot
  /// be represented (would need a byte address beyond ~256 GB).
  [[nodiscard]] std::uint32_t line_tag(std::uint64_t line) const;
  /// Advance the recency clock; throws when a single instance has seen
  /// 2^32-2 accesses (stamps would wrap and corrupt LRU order).
  std::uint32_t tick();

  [[nodiscard]] std::size_t set_base(std::uint64_t line) const {
    const std::uint64_t set = pow2_sets_ ? (line & set_mask_) : (line % sets_);
    return static_cast<std::size_t>(set) * ways_;
  }
  /// Way holding `tag`, or kNoWay.  A pure equality scan over the set's
  /// tags — the hit path touches nothing else (stamps are only read by the
  /// miss-path victim scan), which lets the compiler vectorize it.
  [[nodiscard]] std::size_t find_way(std::size_t base, std::uint32_t tag) const {
    for (std::size_t w = base, end = base + ways_; w < end; ++w)
      if (tags_[w] == tag) return w;
    return kNoWay;
  }
  /// One shared victim scan for access()/insert(): the empty way if any
  /// (the last one, matching the historical scan), else true-LRU.
  [[nodiscard]] std::size_t victim_way(std::size_t base) const;
};

/// Three-level hierarchy result: the lowest level that hit, or kMemory.
enum class HitLevel : std::uint8_t { kL1, kL2, kLlc, kMemory };

struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 8, 64, 4};
  CacheConfig l2{512 * 1024, 8, 64, 14};
  CacheConfig llc{32ULL * 1024 * 1024, 16, 64, 40};
};

/// Inclusive three-level cache hierarchy, as configured for the model HPC
/// rack's Milan-like CPUs (§VI-B1: "we configure the cache hierarchy to
/// match the CPUs of our model HPC rack").
class CacheHierarchy {
 public:
  explicit CacheHierarchy(HierarchyConfig cfg = {});

  HitLevel access(std::uint64_t addr);

  /// Prefetch fill: installs the line into L2 and LLC (not L1, matching
  /// common L2-prefetcher placement) without counting demand statistics.
  void prefetch_fill(std::uint64_t addr);

  /// Exactly `for (addr = first_addr; addr < end_addr; addr += l1.line)
  /// access(addr)` — the runner's working-set prewarm — but O(entries)
  /// when the closed form applies (uniform line sizes, untouched caches):
  /// every such access misses every level, so the levels warm
  /// independently via SetAssocCache::warm_sequential_lines.
  void prewarm_sequential(std::uint64_t first_addr, std::uint64_t end_addr);

  [[nodiscard]] const HierarchyConfig& config() const { return cfg_; }
  [[nodiscard]] const SetAssocCache& l1() const { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const SetAssocCache& llc() const { return llc_; }

  /// Load-to-use latency (cycles) for a given hit level, excluding DRAM.
  [[nodiscard]] int hit_latency(HitLevel level) const;

  void reset_stats();

 private:
  HierarchyConfig cfg_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache llc_;
};

}  // namespace photorack::cpusim
