#include "disagg/job_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace photorack::disagg {

void JobStreamStats::sample(const RackAllocator& allocator) {
  cpu_util_.add(allocator.pools().cpu_utilization());
  gpu_util_.add(allocator.pools().gpu_utilization());
  mem_util_.add(allocator.pools().memory_utilization());
  marooned_cpu_.add(allocator.marooned_cpu_fraction());
  marooned_mem_.add(allocator.marooned_memory_fraction());
}

namespace {
TailStats tails_of(const sim::QuantileSketch& sketch) {
  TailStats t;
  t.count = sketch.count();
  t.p50 = sketch.quantile_or(50.0, 0.0);
  t.p99 = sketch.quantile_or(99.0, 0.0);
  t.p999 = sketch.quantile_or(99.9, 0.0);
  return t;
}
}  // namespace

void JobStreamStats::merge(const JobStreamStats& other) {
  offered_ += other.offered_;
  accepted_ += other.accepted_;
  cpu_util_.merge(other.cpu_util_);
  gpu_util_.merge(other.gpu_util_);
  mem_util_.merge(other.mem_util_);
  marooned_cpu_.merge(other.marooned_cpu_);
  marooned_mem_.merge(other.marooned_mem_);
  wait_ms_.merge(other.wait_ms_);
  slowdown_.merge(other.slowdown_);
  fct_ms_.merge(other.fct_ms_);
}

JobSimReport JobStreamStats::report() const {
  JobSimReport report;
  report.offered = offered_;
  report.accepted = accepted_;
  report.mean_cpu_utilization = cpu_util_.mean();
  report.mean_gpu_utilization = gpu_util_.mean();
  report.mean_memory_utilization = mem_util_.mean();
  report.mean_marooned_cpu = marooned_cpu_.mean();
  report.mean_marooned_memory = marooned_mem_.mean();
  report.wait_ms = tails_of(wait_ms_);
  report.slowdown = tails_of(slowdown_);
  report.fct_ms = tails_of(fct_ms_);
  return report;
}

JobStreamSim::JobStreamSim(const rack::RackConfig& rack, AllocationPolicy policy,
                           const workloads::UsageModel& usage, JobSimConfig cfg)
    : allocator_(rack, policy),
      usage_(usage),
      cfg_(cfg),
      rack_(rack),
      arrival_rng_(cfg.seed),
      job_rng_(arrival_rng_.child(1)) {
  schedule_next_arrival();
}

// Job demands: breadth in nodes, then per-resource usage fractions drawn
// from the production distributions — exactly the §II-A picture where a
// job occupies N nodes but touches a small slice of their memory/NIC.
JobDraw draw_job_request(sim::Rng& rng, const workloads::UsageModel& usage,
                         const rack::NodeConfig& node, int max_job_nodes) {
  JobDraw draw;
  draw.breadth =
      static_cast<int>(1 + rng.below(static_cast<std::uint64_t>(max_job_nodes)));
  const double cpu_frac = usage.cpu_cores.sample(rng);
  const double mem_frac = usage.memory_capacity.sample(rng);
  const double nic_frac = usage.nic_bandwidth.sample(rng);
  draw.request.cpus = std::max(
      1, static_cast<int>(std::lround(draw.breadth * node.cpus * cpu_frac)));
  // GPUs: half the jobs are GPU jobs asking for 1..4 GPUs per node.
  draw.request.gpus =
      rng.bernoulli(0.5)
          ? draw.breadth * static_cast<int>(
                               1 + rng.below(static_cast<std::uint64_t>(node.gpus)))
          : 0;
  draw.request.memory_gb = draw.breadth * 256.0 * mem_frac;
  draw.request.nic_gbps = draw.breadth * 800.0 * nic_frac;
  return draw;
}

JobRequest JobStreamSim::make_request() {
  return draw_job_request(job_rng_, usage_, rack_.node, cfg_.max_job_nodes).request;
}

void JobStreamSim::schedule_next_arrival() {
  const double mean_gap = static_cast<double>(sim::kPsPerMs) / cfg_.arrivals_per_ms;
  const auto gap = static_cast<sim::TimePs>(arrival_rng_.exponential(mean_gap));
  if (queue_.now() + gap >= cfg_.sim_time) return;
  queue_.schedule_after(gap, [this]() {
    stats_.offer();
    const JobRequest req = make_request();
    auto alloc = std::make_shared<Allocation>(allocator_.allocate(req));
    if (alloc->placed) {
      stats_.accept();
      const auto hold = static_cast<sim::TimePs>(
          job_rng_.exponential(static_cast<double>(cfg_.mean_duration)));
      const auto clamped = std::max<sim::TimePs>(hold, 1);
      // Admit-or-drop with no fabric: placed jobs never wait and run at
      // full speed, so the tails record the degenerate truth (wait 0,
      // slowdown 1, fct = hold) rather than staying silently empty.
      stats_.record_wait(0.0);
      stats_.record_slowdown(1.0);
      stats_.record_fct(static_cast<double>(clamped) /
                        static_cast<double>(sim::kPsPerMs));
      queue_.schedule_after(clamped,
                            [this, alloc]() { allocator_.release(*alloc); });
    }
    stats_.sample(allocator_);
    schedule_next_arrival();
  });
}

void JobStreamSim::advance_to(sim::TimePs t) { queue_.run(t); }

void JobStreamSim::finish() { queue_.run(); }

JobSimReport JobStreamSim::report() const {
  JobSimReport report = stats_.report();
  report.events = queue_.stats();
  return report;
}

JobSimReport run_job_stream(const rack::RackConfig& rack, AllocationPolicy policy,
                            const workloads::UsageModel& usage, const JobSimConfig& cfg) {
  JobStreamSim sim(rack, policy, usage, cfg);
  sim.finish();
  return sim.report();
}

}  // namespace photorack::disagg
