// Reproduces §VI-E: the iso-performance comparison.  Preserving the
// baseline rack's computational throughput, the disaggregated rack needs
// +15% CPUs and +6% GPUs but 4x fewer DDR4 modules and 2x fewer NICs:
// 1075 modules vs 1920, a ~44% reduction.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "disagg/iso_perf.hpp"
#include "sim/table.hpp"
#include "workloads/usage.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Iso-performance module counts", "Section VI-E");

  // Derive the compute make-up factors from our own Fig 6 / Fig 9 runs.
  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  opt.cores = {cpusim::CoreKind::kInOrder};
  const auto cpu = core::run_cpu_sweep(opt);
  const auto gpu = core::run_gpu_sweep({0.0, 35.0});

  disagg::IsoPerfInputs inputs;
  inputs.cpu_slowdown = cpu.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0);
  inputs.gpu_slowdown = gpu.mean_slowdown(35.0);
  const auto result = disagg::iso_performance({}, inputs);

  std::cout << "make-up factors measured here: CPU +" << sim::fmt_pct(inputs.cpu_slowdown)
            << " (paper +15%), GPU +" << sim::fmt_pct(inputs.gpu_slowdown)
            << " (paper +6%)\n\n";

  sim::Table table({"Modules", "Baseline", "Disaggregated"});
  table.add_row({"CPUs", sim::fmt_int(result.baseline.cpus),
                 sim::fmt_int(result.disaggregated.cpus)});
  table.add_row({"GPUs (HBM co-packaged)", sim::fmt_int(result.baseline.gpus),
                 sim::fmt_int(result.disaggregated.gpus)});
  table.add_row({"DDR4 DIMMs", sim::fmt_int(result.baseline.ddr4),
                 sim::fmt_int(result.disaggregated.ddr4)});
  table.add_row({"NICs", sim::fmt_int(result.baseline.nics),
                 sim::fmt_int(result.disaggregated.nics)});
  table.add_row({"Total", sim::fmt_int(result.baseline.total()),
                 sim::fmt_int(result.disaggregated.total())});
  table.print(std::cout);

  const double derived = disagg::derive_memory_reduction(workloads::UsageModel::cori());
  std::cout << "\nmemory reduction derivable from Cori-like usage at rack p99: "
            << sim::fmt_fixed(derived, 1) << "x (the paper's 4x from [15] is conservative)\n";
  std::cout << "alternative plan: keep all resources, add "
            << result.added_compute_modules << " compute modules (+"
            << sim::fmt_pct(result.added_chip_fraction)
            << " chips, paper ~7%) to double compute throughput\n";

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "baseline modules", 1920, result.baseline.total(), 0.01);
  core::check_line(std::cout, "disaggregated modules", 1075,
                   result.disaggregated.total(), 0.05);
  core::check_line(std::cout, "module reduction", 0.44, result.reduction_fraction, 0.1);
  core::check_line(std::cout, "alternative plan chip increase", 0.07,
                   result.added_chip_fraction, 0.1);
  core::check_line(std::cout, "usage-derived memory reduction >= 4x", 4.0,
                   std::min(derived, 4.0), 0.05);
  return 0;
}
