// photorack_cosim — closed-loop rack co-simulation (jobs × fabric × power).
//
//   photorack_cosim [--policy static|disagg] [--rate R] [--duration-ms D]
//                   [--horizon-ms H] [--seed S] [--mcms N] [--open-loop]
//                   [--traffic-scale X] [--racks N] [--spill P]
//                   [--set path=value] [--manifest file.json] [--quiet]
//
// Runs one co-simulation and prints the coupled report: acceptance and
// utilization from the allocator, satisfaction/indirection from the fabric,
// stretch from the contention feedback, and the integrated energy trace.
// --racks/--spill switch to the multi-rack cluster co-simulation (the same
// report, aggregated across racks, plus spill/interconnect telemetry).
//
// Configuration goes through the config registry: the named flags are sugar
// for `--set` on the corresponding paths (--rate = cosim.arrivals_per_ms,
// --mcms = net.mcms, ...), and `--set` reaches ANY registered cosim/net/rack
// knob (`photorack_sweep --params` lists them); unknown paths and
// out-of-range values are rejected with suggestions before the run starts.
// --manifest writes the resolved parameter tree as a reproducibility
// sidecar.  For design-space sweeps over these knobs use the scenario
// engine: `photorack_sweep --campaign cosim_acceptance|...`.
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cluster/cluster_cosim.hpp"
#include "collectives/collective.hpp"
#include "config/bindings.hpp"
#include "config/manifest.hpp"
#include "cosim/rack_cosim.hpp"
#include "obs/obs.hpp"
#include "scenario/result_sink.hpp"
#include "sim/table.hpp"

namespace {

using namespace photorack;

void print_usage(std::ostream& os) {
  os << "usage: photorack_cosim [options]\n"
        "\n"
        "options:\n"
        "  --policy static|disagg  allocation policy (default: disagg)\n"
        "  --rate <R>              job arrivals per ms (default: 4)\n"
        "  --duration-ms <D>       mean job duration in ms (default: 20)\n"
        "  --horizon-ms <H>        arrival horizon in ms (default: 400)\n"
        "  --seed <S>              base seed (default: 7)\n"
        "  --mcms <N>              co-sim fabric endpoints (default: 24)\n"
        "  --traffic-scale <X>     scale on per-flow demand (default: 1)\n"
        "  --open-loop             disable contention feedback (no stretch)\n"
        "  --arrival <process>     arrival process: poisson|mmpp|diurnal|trace\n"
        "                          (shape knobs: --set cosim.arrival.*)\n"
        "  --queue [cap]           FIFO-queue unplaceable jobs instead of\n"
        "                          dropping (optional backlog cap, default 64)\n"
        "  --racks <N>             cluster mode: N rack event domains run in\n"
        "                          parallel under barrier synchronization\n"
        "  --spill none|next|least cluster mode: where overflow jobs go\n"
        "                          (interconnect knobs: --set cluster.*)\n"
        "  --faults                arm the seed-derived fault timeline\n"
        "                          (rates/policy via --set fault.*)\n"
        "  --ml                    admit ML training jobs (collective-gated\n"
        "                          steps; shape knobs: --set ml.*)\n"
        "  --collective <P>        ML collective pattern, implies --ml:\n"
        "                          ring|alltoall|ps|broadcast\n"
        "  --mtbf-ms <M>           arm faults with MCM and node MTBF = M ms\n"
        "  --resilience <P>        victim policy: kill|requeue|degrade\n"
        "  --set <path>=<value>    set any registered cosim/net/rack/obs knob\n"
        "                          (repeatable; photorack_sweep --params lists)\n"
        "  --manifest <file>       write the resolved config tree as JSON\n"
        "  --trace <file>          record a Chrome-trace-event timeline (sim-time\n"
        "                          keyed; open in Perfetto / chrome://tracing;\n"
        "                          ring mode via --set obs.trace.ring=N)\n"
        "  --metrics <file>        write sampled time-series metrics rows\n"
        "                          (.jsonl for JSON lines, anything else CSV;\n"
        "                          period via --set obs.metrics.interval_ms=T)\n"
        "  --profile               print the wall-clock self-profile table\n"
        "  --profile-json <file>   write the self-profile in the\n"
        "                          BENCH_results.json schema\n"
        "  --quiet                 print only the one-line summary\n"
        "  --help                  this message\n";
}

struct CliOptions {
  disagg::AllocationPolicy policy = disagg::AllocationPolicy::kDisaggregated;
  config::ConfigTree tree{config::registry()};
  std::string manifest_path;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_json_path;
  bool profile_table = false;
  bool quiet = false;
  bool cluster = false;  // --racks/--spill given: run ClusterCosim
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--policy") {
      opt.policy = disagg::allocation_policy_codec().parse(value("--policy"));
    } else if (arg == "--rate") {
      opt.tree.set("cosim.arrivals_per_ms", value("--rate"));
    } else if (arg == "--duration-ms") {
      opt.tree.set("cosim.duration_ms", value("--duration-ms"));
    } else if (arg == "--horizon-ms") {
      opt.tree.set("cosim.horizon_ms", value("--horizon-ms"));
    } else if (arg == "--seed") {
      opt.tree.set("cosim.seed", value("--seed"));
    } else if (arg == "--mcms") {
      opt.tree.set("net.mcms", value("--mcms"));
    } else if (arg == "--traffic-scale") {
      opt.tree.set("cosim.traffic_scale", value("--traffic-scale"));
    } else if (arg == "--open-loop") {
      opt.tree.set("cosim.contention_feedback", "open");
    } else if (arg == "--arrival") {
      opt.tree.set("cosim.arrival.process", value("--arrival"));
    } else if (arg == "--queue") {
      opt.tree.set("cosim.admission", "queue");
      // Optional cap: consume the next token only when it looks like one.
      if (i + 1 < argc && argv[i + 1][0] != '-')
        opt.tree.set("cosim.queue_cap", argv[++i]);
    } else if (arg == "--racks") {
      opt.cluster = true;
      opt.tree.set("cluster.racks", value("--racks"));
    } else if (arg == "--spill") {
      // Validate eagerly so the error names the flag the user typed.
      const std::string v = value("--spill");
      try {
        (void)cluster::spill_policy_codec().parse(v);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--spill: " + std::string(e.what()));
      }
      opt.cluster = true;
      opt.tree.set("cluster.spill", v);
    } else if (arg == "--faults") {
      opt.tree.set("fault.enabled", "true");
    } else if (arg == "--mtbf-ms") {
      // Sugar for the common symmetric case; per-class rates stay reachable
      // through --set fault.{mcm,node,link,laser}_mtbf_ms.  Errors name the
      // flag the user actually typed, not the registry path behind it.
      const std::string v = value("--mtbf-ms");
      try {
        opt.tree.set("fault.enabled", "true");
        opt.tree.set("fault.mcm_mtbf_ms", v);
        opt.tree.set("fault.node_mtbf_ms", v);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--mtbf-ms: " + std::string(e.what()));
      }
    } else if (arg == "--ml") {
      opt.tree.set("ml.enabled", "true");
    } else if (arg == "--collective") {
      // Validate eagerly so the error names the flag the user typed.
      const std::string v = value("--collective");
      try {
        (void)collectives::pattern_codec().parse(v);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--collective: " + std::string(e.what()));
      }
      opt.tree.set("ml.enabled", "true");
      opt.tree.set("ml.pattern", v);
    } else if (arg == "--resilience") {
      const std::string v = value("--resilience");
      try {
        (void)fault::resilience_policy_codec().parse(v);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--resilience: " + std::string(e.what()));
      }
      opt.tree.set("fault.policy", v);
    } else if (arg == "--set") {
      const std::string kv = value("--set");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size())
        throw std::invalid_argument("--set wants path=value, got '" + kv + "'");
      opt.tree.set(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--manifest") {
      opt.manifest_path = value("--manifest");
    } else if (arg == "--trace") {
      opt.trace_path = value("--trace");
    } else if (arg == "--metrics") {
      opt.metrics_path = value("--metrics");
    } else if (arg == "--profile") {
      opt.profile_table = true;
    } else if (arg == "--profile-json") {
      opt.profile_json_path = value("--profile-json");
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "photorack_cosim: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    cosim::CosimConfig cfg = opt.tree.build<cosim::CosimConfig>("cosim");
    cfg.fabric = opt.tree.build<net::FabricSliceConfig>("net");
    cfg.fault = opt.tree.build<fault::FaultConfig>("fault");
    cfg.ml = opt.tree.build<collectives::MlConfig>("ml");
    const rack::RackConfig rack = opt.tree.build<rack::RackConfig>("rack");

    if (!opt.manifest_path.empty()) {
      config::Manifest manifest;
      manifest.tool = "photorack_cosim";
      manifest.campaign = "cosim";
      // The policy is a CLI argument, not a registry knob — record it as a
      // free axis so two runs differing only in --policy differ here too.
      manifest.axes.emplace_back(
          "policy",
          std::vector<std::string>{disagg::allocation_policy_codec().name(opt.policy)});
      for (const auto& [path, v] : opt.tree.overrides())
        manifest.overrides.emplace_back(path, std::vector<std::string>{v});
      // Single-valued overrides resolve into the params map too.
      for (const auto& ov : manifest.overrides) manifest.axes.push_back(ov);
      std::ofstream out(opt.manifest_path);
      if (!out)
        throw std::runtime_error("cannot open " + opt.manifest_path);
      out << manifest.to_json(config::registry()) << "\n";
    }

    // Observability: --trace/--metrics/--profile* are sugar that force the
    // matching obs.* enable; the shape knobs (ring size, sample period)
    // stay addressable through --set obs.*.
    obs::ObsConfig obs_cfg = opt.tree.build<obs::ObsConfig>("obs");
    if (!opt.trace_path.empty()) obs_cfg.trace_enabled = true;
    if (!opt.metrics_path.empty()) obs_cfg.metrics_enabled = true;
    if (opt.profile_table || !opt.profile_json_path.empty())
      obs_cfg.profile_enabled = true;
    obs::ObsBundle obs_bundle(obs_cfg);

    // Cluster mode reuses the rack report printer on the aggregated total;
    // the cluster-only telemetry (spill, barriers, interconnect) is appended
    // below.  Observability attaches to rack 0 in cluster mode.
    cosim::CosimReport report;
    cluster::ClusterReport cluster_report;
    if (opt.cluster) {
      const auto ccfg = opt.tree.build<cluster::ClusterConfig>("cluster");
      cluster_report = cluster::run_cluster_cosim(rack, opt.policy,
                                                  workloads::UsageModel::cori(),
                                                  ccfg, cfg, obs_bundle.handles());
      report = cluster_report.total;
    } else {
      report = cosim::run_rack_cosim(rack, opt.policy, workloads::UsageModel::cori(),
                                     cfg, obs_bundle.handles());
    }

    if (!opt.trace_path.empty())
      obs_bundle.trace()->write_json_file(opt.trace_path);

    if (!opt.metrics_path.empty()) {
      std::ofstream out(opt.metrics_path, std::ios::binary);
      if (!out)
        throw std::runtime_error("cannot open metrics file '" + opt.metrics_path +
                                 "' for writing");
      // Same cell dialect as every campaign artifact: .jsonl gets JSON
      // lines, anything else RFC-4180 CSV.
      const bool jsonl = opt.metrics_path.size() >= 6 &&
                         opt.metrics_path.compare(opt.metrics_path.size() - 6, 6,
                                                  ".jsonl") == 0;
      std::unique_ptr<scenario::ResultSink> sink;
      if (jsonl)
        sink = std::make_unique<scenario::JsonlSink>(out);
      else
        sink = std::make_unique<scenario::CsvSink>(out);
      sink->open(obs_bundle.metrics()->columns());
      for (auto& cells : obs_bundle.metrics()->string_rows())
        sink->write(scenario::ResultRow{std::move(cells)});
      sink->close();
      out.flush();
      if (!out)
        throw std::runtime_error("error writing metrics file '" + opt.metrics_path +
                                 "'");
    }

    if (!opt.profile_json_path.empty())
      obs_bundle.profiler()->write_bench_json_file(opt.profile_json_path);

    if (!opt.quiet) {
      sim::Table table({"metric", "value"});
      table.add_row({"offered jobs", sim::fmt_int(static_cast<long long>(report.jobs.offered))});
      table.add_row({"accepted jobs",
                     sim::fmt_int(static_cast<long long>(report.jobs.accepted))});
      table.add_row({"acceptance", sim::fmt_pct(report.jobs.acceptance())});
      table.add_row({"mean CPU utilization", sim::fmt_pct(report.jobs.mean_cpu_utilization)});
      table.add_row(
          {"mean memory utilization", sim::fmt_pct(report.jobs.mean_memory_utilization)});
      table.add_row(
          {"marooned memory (mean)", sim::fmt_pct(report.jobs.mean_marooned_memory)});
      table.add_row({"flows routed", sim::fmt_int(static_cast<long long>(report.flows.flows))});
      table.add_row({"bandwidth satisfied", sim::fmt_pct(report.flows.satisfied_fraction)});
      table.add_row({"indirect share", sim::fmt_pct(report.flows.indirect_fraction)});
      table.add_row({"peak fabric utilization", sim::fmt_pct(report.flows.peak_utilization)});
      table.add_row({"mean job speed", sim::fmt_pct(report.mean_speed_fraction)});
      table.add_row({"mean stretch", sim::fmt_fixed(report.mean_stretch, 3)});
      table.add_row({"max stretch", sim::fmt_fixed(report.max_stretch, 3)});
      table.add_row({"wait p50/p99/p999 (ms)",
                     sim::fmt_fixed(report.jobs.wait_ms.p50, 3) + " / " +
                         sim::fmt_fixed(report.jobs.wait_ms.p99, 3) + " / " +
                         sim::fmt_fixed(report.jobs.wait_ms.p999, 3)});
      table.add_row({"slowdown p50/p99/p999",
                     sim::fmt_fixed(report.jobs.slowdown.p50, 3) + " / " +
                         sim::fmt_fixed(report.jobs.slowdown.p99, 3) + " / " +
                         sim::fmt_fixed(report.jobs.slowdown.p999, 3)});
      table.add_row({"fct p50/p99/p999 (ms)",
                     sim::fmt_fixed(report.jobs.fct_ms.p50, 3) + " / " +
                         sim::fmt_fixed(report.jobs.fct_ms.p99, 3) + " / " +
                         sim::fmt_fixed(report.jobs.fct_ms.p999, 3)});
      table.add_row({"censored (waiting/running)",
                     sim::fmt_int(static_cast<long long>(report.jobs.censored_waiting)) +
                         " / " +
                         sim::fmt_int(static_cast<long long>(report.jobs.censored_running))});
      if (report.fault.enabled) {
        const auto& f = report.fault;
        table.add_row({"availability", sim::fmt_pct(f.availability)});
        table.add_row({"faults / repairs",
                       sim::fmt_int(static_cast<long long>(f.faults)) + " / " +
                           sim::fmt_int(static_cast<long long>(f.repairs))});
        table.add_row({"interrupted (requeued/degraded/killed)",
                       sim::fmt_int(static_cast<long long>(f.interrupted)) + " (" +
                           sim::fmt_int(static_cast<long long>(f.requeued)) + "/" +
                           sim::fmt_int(static_cast<long long>(f.degraded)) + "/" +
                           sim::fmt_int(static_cast<long long>(f.killed)) + ")"});
        table.add_row({"goodput jobs",
                       sim::fmt_int(static_cast<long long>(f.goodput_jobs))});
        table.add_row({"work lost (ms)", sim::fmt_fixed(f.work_lost_ms, 2)});
        table.add_row({"mean MTTR (ms)", sim::fmt_fixed(f.mean_mttr_ms, 2)});
      }
      if (report.ml.enabled) {
        const auto& ml = report.ml;
        table.add_row({"ML jobs offered/accepted/completed",
                       sim::fmt_int(static_cast<long long>(ml.jobs_offered)) + " / " +
                           sim::fmt_int(static_cast<long long>(ml.jobs_accepted)) +
                           " / " +
                           sim::fmt_int(static_cast<long long>(ml.jobs_completed))});
        table.add_row({"training steps",
                       sim::fmt_int(static_cast<long long>(ml.steps)) + " (" +
                           sim::fmt_int(static_cast<long long>(ml.collective_phases)) +
                           " collective phases)"});
        table.add_row({"step p50/p99 (ms)",
                       sim::fmt_fixed(ml.step_ms.p50, 3) + " / " +
                           sim::fmt_fixed(ml.step_ms.p99, 3)});
        table.add_row({"collective fraction p50", sim::fmt_pct(ml.coll_frac.p50)});
        table.add_row({"straggler stretch p99",
                       sim::fmt_fixed(ml.straggler.p99, 3)});
      }
      if (opt.cluster) {
        table.add_row({"racks",
                       sim::fmt_int(static_cast<long long>(cluster_report.racks.size()))});
        std::string acceptance;
        for (const auto& rr : cluster_report.racks) {
          if (!acceptance.empty()) acceptance += " / ";
          acceptance += sim::fmt_pct(rr.jobs.acceptance());
        }
        table.add_row({"per-rack acceptance", acceptance});
        table.add_row({"spilled (failed)",
                       sim::fmt_int(static_cast<long long>(cluster_report.spilled)) +
                           " (" +
                           sim::fmt_int(static_cast<long long>(cluster_report.spill_failed)) +
                           ")"});
        table.add_row({"sync barriers",
                       sim::fmt_int(static_cast<long long>(cluster_report.barriers))});
        table.add_row({"interconnect power (kW)",
                       sim::fmt_fixed(cluster_report.interconnect_power_w / 1e3, 2)});
        table.add_row({"interconnect utilization",
                       sim::fmt_pct(cluster_report.interconnect_utilization)});
      }
      table.add_row({"energy (kJ)", sim::fmt_fixed(report.energy_joules / 1e3, 2)});
      table.add_row({"mean power (kW)", sim::fmt_fixed(report.mean_power_w / 1e3, 2)});
      table.add_row({"peak power (kW)", sim::fmt_fixed(report.peak_power_w / 1e3, 2)});
      table.add_row({"photonic power (kW)", sim::fmt_fixed(report.photonic_power_w / 1e3, 2)});
      const auto& ev = report.jobs.events;
      table.add_row({"events sched/disp/cancel",
                     sim::fmt_int(static_cast<long long>(ev.scheduled)) + " / " +
                         sim::fmt_int(static_cast<long long>(ev.dispatched)) + " / " +
                         sim::fmt_int(static_cast<long long>(ev.cancelled))});
      table.add_row({"pending events (peak)",
                     sim::fmt_int(static_cast<long long>(ev.pending_peak))});
      if (obs_bundle.trace())
        table.add_row(
            {"trace events (dropped)",
             sim::fmt_int(static_cast<long long>(obs_bundle.trace()->recorded())) +
                 " (" +
                 sim::fmt_int(static_cast<long long>(obs_bundle.trace()->dropped())) +
                 ")"});
      if (obs_bundle.metrics())
        table.add_row({"metrics rows sampled",
                       sim::fmt_int(static_cast<long long>(
                           obs_bundle.metrics()->rows().size()))});
      table.print(std::cout);
    }

    if (opt.profile_table && obs_bundle.profiler()) {
      sim::Table prof({"scope", "count", "ns/op", "ops/s"});
      for (const auto& e : obs_bundle.profiler()->entries()) {
        if (e.count == 0) continue;
        prof.add_row({e.name, sim::fmt_int(static_cast<long long>(e.count)),
                      sim::fmt_fixed(e.ns_per_op(), 1),
                      sim::fmt_fixed(e.items_per_sec(), 0)});
      }
      std::cout << "\nself-profile (wall clock; observation only, never fed back):\n";
      prof.print(std::cout);
    }

    std::cerr << "photorack_cosim: " << report.jobs.offered << " jobs offered, "
              << report.jobs.accepted << " accepted, ";
    if (opt.cluster)
      std::cerr << cluster_report.racks.size() << " racks, "
                << cluster_report.spilled << " spilled, ";
    std::cerr << "mean stretch " << sim::fmt_fixed(report.mean_stretch, 3) << ", "
              << sim::fmt_fixed(report.energy_joules / 1e3, 1) << " kJ over "
              << sim::fmt_fixed(sim::to_s(report.completed_at) * 1e3, 1) << " ms\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "photorack_cosim: " << e.what() << "\n";
    return 1;
  }
}
