// Scenario-engine suite: grid expansion, spec identity/seeding, result
// sinks, the campaign registry, and the two contracts the engine exists to
// uphold — (1) sweeps are bit-identical at every --jobs level and (2) the
// fig6 campaign computes the same slowdowns as core::run_cpu_sweep, the
// path the golden tables pin.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/bindings.hpp"
#include "core/experiments.hpp"
#include "core/rack_system.hpp"
#include "cpusim/runner.hpp"
#include "gpusim/gpu_runner.hpp"
#include "phot/links.hpp"
#include "rack/mcm.hpp"
#include "scenario/campaigns.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"
#include "workloads/gpu_profiles.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep_grid.hpp"
#include "scenario/sweep_runner.hpp"

namespace photorack {
namespace {

using scenario::Campaign;
using scenario::ResultRow;
using scenario::ScenarioSpec;
using scenario::SweepGrid;
using scenario::SweepOptions;
using scenario::SweepResult;
using scenario::SweepRunner;

// ---------------------------------------------------------------------------
// SweepGrid
// ---------------------------------------------------------------------------

TEST(SweepGrid, ExpandsCrossProductLastAxisFastest) {
  SweepGrid grid;
  grid.axis("a", std::vector<std::string>{"x", "y"})
      .axis("b", std::vector<double>{1, 2, 3});
  EXPECT_EQ(grid.size(), 6u);
  const auto specs = grid.expand("test");
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].id(), "test[a=x,b=1]");
  EXPECT_EQ(specs[1].id(), "test[a=x,b=2]");
  EXPECT_EQ(specs[2].id(), "test[a=x,b=3]");
  EXPECT_EQ(specs[3].id(), "test[a=y,b=1]");
  EXPECT_EQ(specs[5].id(), "test[a=y,b=3]");
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(specs[i].index, i);
}

TEST(SweepGrid, SetOverridesExistingAxis) {
  SweepGrid grid;
  grid.axis("extra_ns", std::vector<double>{35});
  grid.set("extra_ns", {"50", "100"});
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.expand("t")[1].at("extra_ns"), "100");
}

TEST(SweepGrid, SetUnknownAxisThrows) {
  SweepGrid grid;
  grid.axis("a", std::vector<std::string>{"x"});
  EXPECT_THROW(grid.set("nope", {"1"}), std::out_of_range);
}

TEST(SweepGrid, EmptyValuesAndDuplicateAxesThrow) {
  SweepGrid grid;
  EXPECT_THROW(grid.axis("a", std::vector<std::string>{}), std::invalid_argument);
  grid.axis("a", std::vector<std::string>{"x"});
  EXPECT_THROW(grid.axis("a", std::vector<std::string>{"y"}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, TypedAccessors) {
  ScenarioSpec spec;
  spec.campaign = "t";
  spec.axes = {{"name", "streamcluster"}, {"extra_ns", "35.5"}, {"measured", "200000"}};
  EXPECT_TRUE(spec.has("name"));
  EXPECT_FALSE(spec.has("nope"));
  EXPECT_EQ(spec.at("name"), "streamcluster");
  EXPECT_DOUBLE_EQ(spec.num("extra_ns"), 35.5);
  EXPECT_EQ(spec.uint("measured"), 200000u);
  EXPECT_EQ(spec.integer("measured"), 200000);
  EXPECT_THROW(spec.at("nope"), std::out_of_range);
  EXPECT_THROW(spec.num("name"), std::invalid_argument);
  EXPECT_THROW(spec.uint("extra_ns"), std::invalid_argument);
}

TEST(ScenarioSpec, UintRejectsNegativesInsteadOfWrapping) {
  // strtoull would silently wrap "-32" to 2^64-32; the accessor must throw
  // so e.g. `--set fibers=-32` fails instead of packing a garbage rack.
  ScenarioSpec spec;
  spec.campaign = "t";
  spec.axes = {{"fibers", "-32"}, {"pad", " 5"}, {"hex", "0x10"}};
  EXPECT_THROW(spec.uint("fibers"), std::invalid_argument);
  EXPECT_THROW(spec.integer("fibers"), std::invalid_argument);
  EXPECT_THROW(spec.uint("pad"), std::invalid_argument);
  EXPECT_THROW(spec.uint("hex"), std::invalid_argument);
}

TEST(ScenarioSpec, DerivedSeedIsStableAndDistinguishesSpecs) {
  ScenarioSpec a;
  a.campaign = "fig6";
  a.axes = {{"bench", "x"}, {"extra_ns", "35"}};
  ScenarioSpec same = a;
  EXPECT_EQ(a.derived_seed(), same.derived_seed());

  ScenarioSpec other_axis = a;
  other_axis.axes[1].second = "85";
  EXPECT_NE(a.derived_seed(), other_axis.derived_seed());

  ScenarioSpec other_base = a;
  other_base.base_seed = 7;
  EXPECT_NE(a.derived_seed(), other_base.derived_seed());

  // index must NOT affect the seed: the same point keeps its stream even if
  // the surrounding grid is reshaped.
  ScenarioSpec other_index = a;
  other_index.index = 42;
  EXPECT_EQ(a.derived_seed(), other_index.derived_seed());
}

TEST(NumToString, RoundTripsExactly) {
  for (const double v : {0.0, 35.0, 1.0 / 3.0, 0.0535, 1555.2, 1e-9, 123456789.123}) {
    const std::string s = scenario::num_to_string(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(scenario::num_to_string(160), "160");
}

// ---------------------------------------------------------------------------
// Result sinks
// ---------------------------------------------------------------------------

TEST(ResultSinks, CsvQuotesOnlyWhenNeeded) {
  std::ostringstream os;
  scenario::CsvSink sink(os);
  sink.open({"name", "value"});
  sink.write(ResultRow{{"plain", "1.5"}});
  sink.write(ResultRow{{"a,b", "say \"hi\""}});
  sink.close();
  EXPECT_EQ(os.str(), "name,value\nplain,1.5\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(ResultSinks, JsonlEmitsNumbersUnquoted) {
  std::ostringstream os;
  scenario::JsonlSink sink(os);
  sink.open({"bench", "slowdown", "note"});
  sink.write(ResultRow{{"nw", "0.79", "line\nbreak"}});
  sink.close();
  EXPECT_EQ(os.str(), "{\"bench\":\"nw\",\"slowdown\":0.79,\"note\":\"line\\nbreak\"}\n");
}

TEST(ResultSinks, JsonlQuotesNonJsonNumericForms) {
  // strtod accepts these, but emitting them unquoted would produce invalid
  // JSON; only RFC 8259 number syntax may go unquoted.
  std::ostringstream os;
  scenario::JsonlSink sink(os);
  sink.open({"a", "b", "c", "d", "e", "f"});
  sink.write(ResultRow{{"+50", "0x1f", "5.", ".5", "-inf", "007"}});
  sink.close();
  EXPECT_EQ(os.str(),
            "{\"a\":\"+50\",\"b\":\"0x1f\",\"c\":\"5.\",\"d\":\".5\","
            "\"e\":\"-inf\",\"f\":\"007\"}\n");

  std::ostringstream os2;
  scenario::JsonlSink sink2(os2);
  sink2.open({"a", "b", "c", "d"});
  sink2.write(ResultRow{{"-1.5e-3", "0", "35", "0.79"}});
  sink2.close();
  EXPECT_EQ(os2.str(), "{\"a\":-1.5e-3,\"b\":0,\"c\":35,\"d\":0.79}\n");
}

TEST(ResultSinks, TablePrintsHeaderAndRows) {
  std::ostringstream os;
  scenario::TableSink sink(os);
  sink.open({"col"});
  sink.write(ResultRow{{"cell"}});
  sink.close();
  EXPECT_NE(os.str().find("col"), std::string::npos);
  EXPECT_NE(os.str().find("cell"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign registry + cheap campaigns against the golden numbers
// ---------------------------------------------------------------------------

TEST(Campaigns, RegistryHasThePaperPresets) {
  for (const char* name : {"fig6", "fig8", "fig9", "table1", "table3", "sec6c"}) {
    const Campaign& c = scenario::campaign_by_name(name);
    EXPECT_EQ(c.name, name);
    EXPECT_FALSE(c.columns.empty()) << name;
    EXPECT_GT(c.default_grid().size(), 0u) << name;
  }
  EXPECT_THROW(scenario::campaign_by_name("nope"), std::out_of_range);
}

TEST(Campaigns, Table3MatchesGoldenPacking) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("table3"));
  ASSERT_EQ(res.rows.size(), 5u);  // one row per chip type
  const struct {
    const char* chip;
    int chips, mcms;
  } expect[] = {
      {"CPU", 14, 10}, {"GPU", 3, 171}, {"NIC", 203, 3}, {"HBM", 4, 128}, {"DDR4", 27, 38}};
  for (const auto& e : expect) {
    const auto& row = res.find({{"chip", e.chip}});
    EXPECT_EQ(res.num(row, "chips_per_mcm"), e.chips) << e.chip;
    EXPECT_EQ(res.num(row, "mcm_count"), e.mcms) << e.chip;
    EXPECT_EQ(res.num(row, "total_mcms"), 350) << e.chip;
  }
}

TEST(Campaigns, Table1MatchesGoldenLinkCounts) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("table1"));
  EXPECT_EQ(res.num(res.find({{"link", "100G-Ethernet"}}), "links"), 160);
  EXPECT_EQ(res.num(res.find({{"link", "400G-Ethernet"}}), "links"), 40);
  EXPECT_EQ(res.num(res.find({{"link", "TeraPHY-768G"}}), "links"), 21);
  EXPECT_EQ(res.num(res.find({{"link", "Comb-1T"}}), "links"), 16);
  EXPECT_EQ(res.num(res.find({{"link", "Comb-2T"}}), "links"), 8);
}

TEST(Campaigns, AggregatesOverEmptyFilterThrow) {
  // mean()/max() on a filter matching nothing must fail loudly, not report
  // a fake 0.0 measurement (e.g. a bench wrapper with a stale suite name).
  const auto res = SweepRunner().run(scenario::campaign_by_name("table1"));
  EXPECT_THROW(res.mean("links", {{"link", "NoSuchLink"}}), std::out_of_range);
  EXPECT_THROW(res.max("links", {{"link", "NoSuchLink"}}), std::out_of_range);
}

TEST(Campaigns, Sec6cMatchesGoldenPower) {
  const auto res = SweepRunner().run(scenario::campaign_by_name("sec6c"));
  const auto& row = res.find({{"fabric", "awgr"}});
  EXPECT_NEAR(res.num(row, "total_w") / 1000.0, 11.0, 1.0);
  EXPECT_NEAR(res.num(row, "overhead"), 0.05, 0.01);
  EXPECT_DOUBLE_EQ(res.num(row, "added_latency_ns"), 35.0);
}

// ---------------------------------------------------------------------------
// Runner behavior: ordering, validation, failure propagation
// ---------------------------------------------------------------------------

Campaign tiny_campaign(std::function<std::vector<ResultRow>(const ScenarioSpec&)> eval) {
  Campaign c;
  c.name = "tiny";
  c.description = "test";
  c.paper_ref = "n/a";
  c.columns = {"i", "seed"};
  c.axes = {{"i", {"0", "1", "2", "3", "4", "5", "6", "7"}}};
  c.evaluate = std::move(eval);
  return c;
}

TEST(SweepRunner, RowsArriveInGridOrderForAnyJobsCount) {
  const Campaign c = tiny_campaign([](const ScenarioSpec& spec) {
    return std::vector<ResultRow>{
        ResultRow{{spec.at("i"), scenario::num_to_string(
                                     static_cast<double>(spec.derived_seed() % 1000))}}};
  });
  const auto serial = SweepRunner(SweepOptions{.jobs = 1}).run(c);
  const auto parallel = SweepRunner(SweepOptions{.jobs = 4}).run(c);
  ASSERT_EQ(serial.rows.size(), 8u);
  ASSERT_EQ(parallel.rows.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(serial.rows[i].cells, parallel.rows[i].cells) << i;
    EXPECT_EQ(serial.rows[i].cells[0], scenario::num_to_string(static_cast<double>(i)));
  }
}

TEST(SweepRunner, EvaluatorFailurePropagatesFromParallelRun) {
  const Campaign c = tiny_campaign([](const ScenarioSpec& spec) -> std::vector<ResultRow> {
    if (spec.at("i") == "5") throw std::runtime_error("scenario 5 failed");
    return {ResultRow{{spec.at("i"), "0"}}};
  });
  EXPECT_THROW(SweepRunner(SweepOptions{.jobs = 4}).run(c), std::runtime_error);
  EXPECT_THROW(SweepRunner(SweepOptions{.jobs = 1}).run(c), std::runtime_error);
}

TEST(SweepRunner, MisshapenRowIsRejected) {
  const Campaign c = tiny_campaign([](const ScenarioSpec&) {
    return std::vector<ResultRow>{ResultRow{{"only-one-cell"}}};
  });
  EXPECT_THROW(SweepRunner().run(c), std::logic_error);
}

// ---------------------------------------------------------------------------
// Determinism: serial and parallel sweeps serialize byte-identically.
// (The satellite contract from ISSUE 2, extending tests/test_determinism.cpp
// to the sweep layer.)
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const Campaign& campaign,
                                              const SweepGrid& grid, std::size_t jobs,
                                              std::uint64_t seed) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  SweepRunner(SweepOptions{.jobs = jobs, .base_seed = seed}).run(campaign, grid,
                                                                {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(SweepDeterminism, CpuCampaignIsByteIdenticalAcrossJobs) {
  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("bench", {"PARSEC/streamcluster/medium", "Rodinia/srad/default"});
  grid.set("cpusim.warmup", {"20000"});
  grid.set("cpusim.measured", {"50000"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(SweepDeterminism, GpuCampaignIsByteIdenticalAcrossJobs) {
  const Campaign& campaign = scenario::campaign_by_name("fig9");
  SweepGrid grid = campaign.default_grid();
  grid.set("app", {"backprop", "nw"});
  grid.set("gpusim.extra_hbm_ns", {"35"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(SweepDeterminism, RackCampaignsAreByteIdenticalAcrossJobs) {
  for (const char* name : {"table1", "table3", "sec6c"}) {
    const Campaign& campaign = scenario::campaign_by_name(name);
    const SweepGrid grid = campaign.default_grid();
    const auto [csv1, jsonl1] = serialize(campaign, grid, 1, 0);
    const auto [csv4, jsonl4] = serialize(campaign, grid, 4, 0);
    EXPECT_FALSE(csv1.empty()) << name;
    EXPECT_EQ(csv1, csv4) << name;
    EXPECT_EQ(jsonl1, jsonl4) << name;
  }
}

TEST(SweepDeterminism, BaseSeedReseedsTheWorkload) {
  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("bench", {"Rodinia/srad/default"});
  grid.set("cpusim.core.kind", {"inorder"});
  grid.set("cpusim.warmup", {"20000"});
  grid.set("cpusim.measured", {"50000"});
  const auto [csv_a, jsonl_a] = serialize(campaign, grid, 2, 0);
  const auto [csv_b, jsonl_b] = serialize(campaign, grid, 2, 0);
  EXPECT_EQ(csv_a, csv_b);  // same seed replays exactly
  const auto [csv_c, jsonl_c] = serialize(campaign, grid, 2, 1234);
  EXPECT_NE(csv_a, csv_c);  // a different base seed re-seeds the trace
}

// ---------------------------------------------------------------------------
// Equivalence: the fig6 campaign and core::run_cpu_sweep are the same
// experiment (the acceptance criterion ties the sweep CSV to the golden
// CPU-sweep numbers).  Run both at reduced instruction counts and require
// bit-equal slowdowns for every benchmark.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Replay-rework byte identity: the fig6/fig8 campaigns now evaluate every
// latency point by replaying one recorded miss profile per (bench, core).
// These tests pin the campaign CSV/JSONL bytes against a reference campaign
// that still simulates every point from scratch — i.e. the exact evaluator
// the campaigns used before the rework — so the profile engine cannot move
// a single output byte.
// ---------------------------------------------------------------------------

/// The pre-replay eval_cpu_point: one full run_simulation per grid point
/// (baseline + perturbed), no memoization, no profiles.
std::vector<ResultRow> eval_cpu_point_from_scratch(const ScenarioSpec& spec) {
  const workloads::CpuBenchmark* bench = nullptr;
  for (const auto& b : workloads::cpu_benchmarks())
    if (b.full_name() == spec.at("bench")) bench = &b;
  if (bench == nullptr) throw std::out_of_range("no benchmark " + spec.at("bench"));

  cpusim::SimConfig cfg;
  cfg.core.kind = spec.at("cpusim.core.kind") == "inorder"
                      ? cpusim::CoreKind::kInOrder
                      : cpusim::CoreKind::kOutOfOrder;
  cfg.warmup_instructions = spec.uint("cpusim.warmup");
  cfg.measured_instructions = spec.uint("cpusim.measured");
  workloads::TraceConfig trace_cfg = bench->trace;
  if (spec.base_seed != 0) trace_cfg.seed = spec.derived_seed();

  cfg.dram.extra_ns = 0.0;
  workloads::SyntheticTrace baseline_trace(trace_cfg);
  const cpusim::SimResult baseline = cpusim::run_simulation(baseline_trace, cfg);

  const double extra = spec.num("cpusim.dram.extra_ns");
  cpusim::SimResult result = baseline;
  if (extra != 0.0) {
    cfg.dram.extra_ns = extra;
    workloads::SyntheticTrace trace(trace_cfg);
    result = cpusim::run_simulation(trace, cfg);
  }

  ResultRow row;
  row.cells = {bench->suite,
               bench->input,
               bench->full_name(),
               spec.at("cpusim.core.kind"),
               scenario::num_to_string(extra),
               scenario::num_to_string(baseline.time_ns),
               scenario::num_to_string(result.time_ns),
               scenario::num_to_string(result.time_ns / baseline.time_ns - 1.0),
               scenario::num_to_string(result.llc_miss_rate),
               scenario::num_to_string(result.ipc)};
  return {std::move(row)};
}

void expect_campaign_bytes_match_reference(
    const char* name, const SweepGrid& grid,
    std::function<std::vector<ResultRow>(const ScenarioSpec&)> reference_eval) {
  const Campaign& campaign = scenario::campaign_by_name(name);
  Campaign reference = campaign;  // same columns, same grid; old evaluator
  reference.evaluate = std::move(reference_eval);

  const auto [redesign_csv, redesign_jsonl] = serialize(campaign, grid, 2, 0);
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  SweepRunner(SweepOptions{.jobs = 1}).run(reference, grid, {&csv, &jsonl});

  EXPECT_FALSE(redesign_csv.empty()) << name;
  EXPECT_EQ(redesign_csv, csv_os.str()) << name;
  EXPECT_EQ(redesign_jsonl, jsonl_os.str()) << name;
}

void expect_campaign_bytes_match_from_scratch(const char* name, SweepGrid grid) {
  expect_campaign_bytes_match_reference(name, grid, eval_cpu_point_from_scratch);
}

TEST(ReplayByteIdentity, Fig6CampaignCsvIsByteIdenticalToFromScratchSimulation) {
  SweepGrid grid = scenario::campaign_by_name("fig6").default_grid();
  grid.set("bench", {"PARSEC/streamcluster/large", "Rodinia/nw/default", "NAS/cg/B"});
  grid.set("cpusim.warmup", {"20000"});
  grid.set("cpusim.measured", {"50000"});
  expect_campaign_bytes_match_from_scratch("fig6", std::move(grid));
}

TEST(ReplayByteIdentity, Fig8CampaignCsvIsByteIdenticalToFromScratchSimulation) {
  // fig8's shape: one core, a 25/30/35 ns grid — every point must replay to
  // the exact bytes a per-point simulation produces.
  SweepGrid grid = scenario::campaign_by_name("fig8").default_grid();
  grid.set("bench", {"PARSEC/streamcluster/large", "PARSEC/canneal/medium"});
  grid.set("cpusim.warmup", {"20000"});
  grid.set("cpusim.measured", {"50000"});
  expect_campaign_bytes_match_from_scratch("fig8", std::move(grid));
}

// ---------------------------------------------------------------------------
// Redesign byte identity: every remaining built-in campaign (fig9, table1,
// table3, sec6c; the cosim_* campaigns live in tests/test_cosim.cpp) pinned
// against its pre-redesign evaluator — the exact string-surgery code the
// campaigns used before the typed-registry API, reproduced here verbatim
// modulo axis names.  The redesigned evaluators resolve config structs from
// the registry; these tests prove that cannot move a single output byte.
// ---------------------------------------------------------------------------

/// Pre-redesign eval_gpu_point: default GpuConfig base, axes parsed by hand.
std::vector<ResultRow> eval_gpu_point_pre_redesign(const ScenarioSpec& spec) {
  const gpusim::AppProfile* app = nullptr;
  for (const auto& a : workloads::gpu_apps())
    if (a.name == spec.at("app")) app = &a;
  if (app == nullptr) throw std::out_of_range("no app " + spec.at("app"));

  const gpusim::AppMissProfile profile =
      gpusim::record_app_profile(*app, gpusim::GpuConfig{});
  const double baseline_us =
      gpusim::replay_app(*app, profile, gpusim::GpuConfig{}).time_us;

  gpusim::GpuConfig gpu;
  gpu.extra_hbm_ns = spec.num("gpusim.extra_hbm_ns");
  gpu.hbm_bandwidth_derate = spec.num("gpusim.hbm_bandwidth_derate");
  const gpusim::AppResult result = gpusim::replay_app(*app, profile, gpu);

  ResultRow row;
  row.cells = {app->name,
               app->suite,
               spec.at("gpusim.extra_hbm_ns"),
               spec.at("gpusim.hbm_bandwidth_derate"),
               scenario::num_to_string(baseline_us),
               scenario::num_to_string(result.time_us),
               scenario::num_to_string(result.time_us / baseline_us - 1.0),
               scenario::num_to_string(result.l2_miss_rate)};
  return {std::move(row)};
}

/// Pre-redesign eval_table1_point.
std::vector<ResultRow> eval_table1_point_pre_redesign(const ScenarioSpec& spec) {
  const auto& link = phot::link_by_name(spec.at("link"));
  const phot::GBps escape{spec.num("escape_gbs")};
  ResultRow row;
  row.cells = {link.name,
               spec.at("escape_gbs"),
               scenario::num_to_string(link.links_for_escape(escape)),
               scenario::num_to_string(link.power_for_escape(escape).value),
               scenario::num_to_string(link.bandwidth.value),
               link.co_packaged ? "yes" : "no"};
  return {std::move(row)};
}

/// Pre-redesign eval_table3_point: hand-assembled McmConfig, default rack.
std::vector<ResultRow> eval_table3_point_pre_redesign(const ScenarioSpec& spec) {
  rack::McmConfig mcm;
  mcm.fibers = spec.integer("mcm.fibers");
  mcm.wavelengths_per_fiber = spec.integer("mcm.wavelengths_per_fiber");
  mcm.gbps_per_wavelength = phot::Gbps{spec.num("mcm.gbps_per_wavelength")};
  const rack::McmPlan plan = rack::pack_rack(rack::RackConfig{}, mcm);

  std::vector<ResultRow> rows;
  for (const auto& p : plan.types) {
    ResultRow row;
    row.cells = {spec.at("mcm.fibers"),
                 spec.at("mcm.wavelengths_per_fiber"),
                 spec.at("mcm.gbps_per_wavelength"),
                 rack::to_string(p.type),
                 scenario::num_to_string(p.chips_per_mcm),
                 scenario::num_to_string(p.mcm_count),
                 scenario::num_to_string(p.per_chip_escape.value),
                 scenario::num_to_string(p.per_chip_share.value),
                 scenario::num_to_string(plan.total_mcms)};
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Pre-redesign eval_sec6c_point: hand-parsed fabric, default everything.
std::vector<ResultRow> eval_sec6c_point_pre_redesign(const ScenarioSpec& spec) {
  const core::RackSystem system(rack::fabric_kind_codec().parse(spec.at("system.fabric")));
  const phot::PowerBreakdown power = system.power_overhead();
  const phot::BaselineRackPower baseline;
  ResultRow row;
  row.cells = {spec.at("system.fabric"),
               scenario::num_to_string(power.transceivers.value),
               scenario::num_to_string(power.switches.value),
               scenario::num_to_string(power.total.value),
               scenario::num_to_string(baseline.total().value),
               scenario::num_to_string(power.overhead_vs_baseline),
               scenario::num_to_string(system.added_memory_latency_ns())};
  return {std::move(row)};
}

TEST(RedesignByteIdentity, Fig9CampaignMatchesPreRedesignEvaluator) {
  SweepGrid grid = scenario::campaign_by_name("fig9").default_grid();
  grid.set("app", {"backprop", "nw", "hotspot"});
  expect_campaign_bytes_match_reference("fig9", grid, eval_gpu_point_pre_redesign);
}

TEST(RedesignByteIdentity, Table1CampaignMatchesPreRedesignEvaluator) {
  expect_campaign_bytes_match_reference(
      "table1", scenario::campaign_by_name("table1").default_grid(),
      eval_table1_point_pre_redesign);
}

TEST(RedesignByteIdentity, Table3CampaignMatchesPreRedesignEvaluator) {
  expect_campaign_bytes_match_reference(
      "table3", scenario::campaign_by_name("table3").default_grid(),
      eval_table3_point_pre_redesign);
}

TEST(RedesignByteIdentity, Sec6cCampaignMatchesPreRedesignEvaluator) {
  expect_campaign_bytes_match_reference(
      "sec6c", scenario::campaign_by_name("sec6c").default_grid(),
      eval_sec6c_point_pre_redesign);
}

// ---------------------------------------------------------------------------
// The redesigned --set surface: any registered knob is addressable on any
// campaign; unknown paths and out-of-range values are rejected up front.
// ---------------------------------------------------------------------------

TEST(ParamAxes, OverrideAxisReplacesExistingGridAxis) {
  SweepGrid grid = scenario::campaign_by_name("fig8").default_grid();
  grid.override_axis("cpusim.dram.extra_ns", {"50", "100"});
  ASSERT_TRUE(grid.has("cpusim.dram.extra_ns"));
  EXPECT_EQ(grid.expand("t")[0].at("cpusim.dram.extra_ns"), "50");
  ASSERT_EQ(grid.overrides().size(), 1u);
  EXPECT_EQ(grid.overrides()[0].name, "cpusim.dram.extra_ns");
}

TEST(ParamAxes, OverrideAxisAppendsNovelRegisteredKnob) {
  // table3 does not sweep the rack geometry, but any registered knob can be
  // pinned onto it; resolve<rack::RackConfig> then sees the override.
  SweepGrid grid = scenario::campaign_by_name("table3").default_grid();
  const std::size_t before = grid.size();
  grid.override_axis("rack.nodes", {"64"});
  EXPECT_EQ(grid.size(), before);  // single value: no new sweep points
  const auto spec = grid.expand("table3")[0];
  EXPECT_EQ(spec.resolve<rack::RackConfig>("rack").nodes, 64);
  // And the evaluator actually consumes it: half the nodes, fewer MCMs.
  const auto res =
      SweepRunner().run(scenario::campaign_by_name("table3"), grid);
  EXPECT_LT(res.num(res.find({{"chip", "CPU"}}), "total_mcms"), 350);
}

TEST(ParamAxes, UnknownPathRejectedWithSuggestions) {
  SweepGrid grid = scenario::campaign_by_name("fig6").default_grid();
  try {
    grid.override_axis("cpusim.dram.extra_nss", {"35"});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("cpusim.dram.extra_ns"), std::string::npos)
        << e.what();
  }
  // A dotted path inside a known section is a typo, not a free axis — even
  // through the plain axis()/set() surface.
  SweepGrid fresh;
  EXPECT_THROW(fresh.axis("cpusim.warmupp", std::vector<std::string>{"1"}),
               std::out_of_range);
}

TEST(ParamAxes, OutOfRangeAndMistypedValuesRejectedUpFront) {
  SweepGrid grid = scenario::campaign_by_name("fig6").default_grid();
  EXPECT_THROW(grid.override_axis("cpusim.dram.extra_ns", {"-5"}), std::out_of_range);
  EXPECT_THROW(grid.override_axis("cpusim.dram.extra_ns", {"35ns"}),
               std::invalid_argument);
  EXPECT_THROW(grid.override_axis("cpusim.core.kind", {"superscalar"}),
               std::invalid_argument);
  EXPECT_THROW(grid.override_axis("rack.nodes", {"0"}), std::out_of_range);
}

TEST(ParamAxes, ResolveBuildsTypedConfigFromAxes) {
  ScenarioSpec spec;
  spec.campaign = "t";
  spec.axes = {{"bench", "x"},
               {"cpusim.core.kind", "ooo"},
               {"cpusim.dram.extra_ns", "35"},
               {"cpusim.warmup", "1000"},
               {"cpusim.llc.size_bytes", "1048576"}};
  const auto cfg = spec.resolve<cpusim::SimConfig>("cpusim");
  EXPECT_EQ(cfg.core.kind, cpusim::CoreKind::kOutOfOrder);
  EXPECT_DOUBLE_EQ(cfg.dram.extra_ns, 35.0);
  EXPECT_EQ(cfg.warmup_instructions, 1000u);
  EXPECT_EQ(cfg.hierarchy.llc.size_bytes, 1048576u);
  // Untouched knobs keep their struct defaults.
  EXPECT_EQ(cfg.measured_instructions, cpusim::SimConfig{}.measured_instructions);
}

// ---------------------------------------------------------------------------
// Manifests: every run emits one, into the SweepResult, the machine sinks'
// headers, and (via the CLI) a sidecar file.
// ---------------------------------------------------------------------------

TEST(Manifests, RunnerEmitsManifestIntoResultAndSinkHeaders) {
  const auto& campaign = scenario::campaign_by_name("table1");
  SweepGrid grid = campaign.default_grid();
  grid.override_axis("mcm.gbps_per_wavelength", {"32"});

  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  const auto res = SweepRunner().run(campaign, grid, {&csv, &jsonl});

  ASSERT_FALSE(res.manifest_json.empty());
  // Campaign id, the override, and the full resolved tree are all present.
  EXPECT_NE(res.manifest_json.find("\"campaign\":\"table1\""), std::string::npos);
  EXPECT_NE(res.manifest_json.find("\"mcm.gbps_per_wavelength\":\"32\""),
            std::string::npos)
      << res.manifest_json;
  EXPECT_NE(res.manifest_json.find("\"cosim.arrivals_per_ms\""), std::string::npos);
  // CSV: `# manifest ...` comment line above the header; JSONL: first line.
  EXPECT_EQ(csv_os.str().rfind("# manifest {", 0), 0u) << csv_os.str().substr(0, 80);
  EXPECT_EQ(jsonl_os.str().rfind("{\"manifest\":{", 0), 0u);
}

TEST(Manifests, ManifestIsDeterministicAcrossJobsLevels) {
  const auto& campaign = scenario::campaign_by_name("table3");
  const auto a = SweepRunner(SweepOptions{.jobs = 1}).run(campaign);
  const auto b = SweepRunner(SweepOptions{.jobs = 4}).run(campaign);
  EXPECT_EQ(a.manifest_json, b.manifest_json);
}

TEST(SweepEquivalence, Fig6CampaignMatchesRunCpuSweep) {
  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  opt.cores = {cpusim::CoreKind::kInOrder};
  opt.warmup_instructions = 20'000;
  opt.measured_instructions = 50'000;
  const auto sweep = core::run_cpu_sweep(opt);

  const Campaign& campaign = scenario::campaign_by_name("fig6");
  SweepGrid grid = campaign.default_grid();
  grid.set("cpusim.core.kind", {"inorder"});
  grid.set("cpusim.warmup", {"20000"});
  grid.set("cpusim.measured", {"50000"});
  const auto res = SweepRunner().run(campaign, grid);

  ASSERT_EQ(res.rows.size(), sweep.runs.size() / 2);  // campaign rows skip extra=0
  for (const auto& row : res.rows) {
    const auto& record =
        sweep.find(res.cell(row, "bench"), cpusim::CoreKind::kInOrder, 35.0);
    EXPECT_DOUBLE_EQ(res.num(row, "slowdown"), record.slowdown)
        << res.cell(row, "bench");
    EXPECT_DOUBLE_EQ(res.num(row, "time_ns"), record.result.time_ns)
        << res.cell(row, "bench");
  }
  EXPECT_DOUBLE_EQ(res.mean("slowdown"),
                   sweep.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0));
}

}  // namespace
}  // namespace photorack
