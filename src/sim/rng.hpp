#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace photorack::sim {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state and to
/// derive independent child seeds.  Reference: Vigna, http://prng.di.unimi.it
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, and (unlike std:: distributions)
/// guaranteed to produce identical streams on every platform.  All
/// stochastic components in photorack draw from this generator so results
/// are bit-reproducible.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    have_gauss_ = false;
  }

  /// Derive an independent child generator; child(i) streams do not overlap
  /// with the parent in any realistic horizon.
  [[nodiscard]] Rng child(std::uint64_t stream_id) const {
    std::uint64_t mix = state_[0] ^ (stream_id * 0xd1342543de82ef95ULL + 0x2545F4914F6CDD1DULL);
    return Rng(mix);
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return UINT64_MAX; }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  Uses Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Geometric-like: number in [1, n] with Zipf(s) weights, via inverse CDF
  /// on a precomputed table is avoided; this uses rejection-inversion
  /// (good enough for workload generators).
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  bool have_gauss_ = false;
  double gauss_ = 0.0;
  // zipf() memo for the last (n, s) pair: range constants plus lazily
  // filled per-k acceptance thresholds (NaN = not yet computed).  Pure
  // derived values, not stream state, so reseed() need not clear them.
  static constexpr std::uint64_t kZipfTableMax = 1 << 21;  // 16 MB ceiling
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  double zipf_hx0_ = 0.0;
  double zipf_hn_ = 0.0;
  std::vector<double> zipf_accept_;
};

}  // namespace photorack::sim
