#include "sim/event_queue.hpp"

#include <stdexcept>

namespace photorack::sim {

std::uint64_t EventQueue::schedule_at(TimePs at, Handler fn) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  const std::uint64_t id = next_seq_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_ids_.insert(id);
  if (pending_ids_.size() > pending_peak_) pending_peak_ = pending_ids_.size();
  return id;
}

bool EventQueue::cancel(std::uint64_t event_id) {
  if (event_id >= next_seq_) return false;  // never scheduled
  // Fired/cancelled ids are already gone: erase is a no-op, and only a real
  // removal counts toward the cancelled stat.
  cancelled_ += pending_ids_.erase(event_id);
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (pending_ids_.erase(e.seq) == 0) continue;  // cancelled: skip
    now_ = e.time;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

TimePs EventQueue::next_time() {
  while (!heap_.empty()) {
    if (pending_ids_.count(heap_.top().seq) == 0) {
      heap_.pop();  // cancelled: discard while peeking
      continue;
    }
    return heap_.top().time;
  }
  return INT64_MAX;
}

std::uint64_t EventQueue::run(TimePs until) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    if (pending_ids_.count(heap_.top().seq) == 0) {
      heap_.pop();
      continue;
    }
    if (heap_.top().time >= until) break;
    step();
    ++n;
  }
  return n;
}

}  // namespace photorack::sim
