#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/scheduler.hpp"

namespace photorack::net {

/// Routing for reconfigurable (spatial / wave-selective) fabrics, §IV-B:
/// indirect routing *in tandem with* reconfiguration.  A flow first tries
/// circuits that already exist — directly, or via one intermediate MCM that
/// already has circuits to both endpoints (never via an unconnected
/// intermediate, which would itself trigger a reconfiguration).  Only when
/// neither works does it ask the centralized scheduler for a new circuit
/// and pay decision latency plus the switch reconfiguration time.
///
/// The AWGR design (IndirectRouter) avoids this machinery entirely; the
/// ablation bench quantifies what that avoidance is worth.
struct ReconfigRouterConfig {
  double circuit_gbps = 6400.0;  // one 256-lambda port pair at 25 Gb/s
  bool use_indirect = true;      // the §IV-B synergy; off for ablation
};

class ReconfigRouter {
 public:
  using Config = ReconfigRouterConfig;

  struct Placement {
    bool placed = false;
    double gbps = 0.0;
    sim::TimePs ready_at = 0;      // when the last needed circuit is usable
    bool reconfigured = false;     // a new circuit had to be set up
    bool indirect = false;         // rode existing circuits via a mid MCM
    std::vector<std::pair<int, int>> circuits_used;  // (a, b) legs
  };

  ReconfigRouter(const rack::SpatialFabricPlan& plan, CentralizedScheduler& scheduler,
                 Config cfg = {});

  /// Place a flow of `gbps` at time `now`.
  [[nodiscard]] Placement place(int src, int dst, double gbps, sim::TimePs now);

  /// Release a previous placement's bandwidth (circuits stay configured;
  /// real systems tear them down lazily, and keeping them warm is exactly
  /// what makes the indirect synergy work).
  void release(const Placement& placement);

  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }
  [[nodiscard]] std::uint64_t indirect_hits() const { return indirect_hits_; }
  [[nodiscard]] std::uint64_t direct_hits() const { return direct_hits_; }

  /// Spare capacity on an existing circuit (0 when none exists).
  [[nodiscard]] double circuit_headroom(int a, int b) const;

 private:
  struct Circuit {
    double capacity = 0.0;
    double used = 0.0;
  };

  const rack::SpatialFabricPlan* plan_;
  CentralizedScheduler* scheduler_;
  Config cfg_;
  std::map<std::pair<int, int>, Circuit> circuits_;
  std::uint64_t reconfigs_ = 0;
  std::uint64_t indirect_hits_ = 0;
  std::uint64_t direct_hits_ = 0;

  Circuit* find_circuit(int a, int b);
  bool take(int a, int b, double gbps);
};

}  // namespace photorack::net
