#include "cpusim/trace_io.hpp"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace photorack::cpusim {

namespace {

void put_u32(std::ostream& os, std::uint32_t v) {
  const std::array<char, 4> b = {static_cast<char>(v), static_cast<char>(v >> 8),
                                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(b.data(), b.size());
}

void put_u64(std::ostream& os, std::uint64_t v) {
  put_u32(os, static_cast<std::uint32_t>(v));
  put_u32(os, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::istream& is) {
  std::array<unsigned char, 4> b{};
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) throw std::runtime_error("trace: truncated header");
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(std::istream& is) {
  const std::uint64_t lo = get_u32(is);
  const std::uint64_t hi = get_u32(is);
  return lo | (hi << 32);
}

/// ZigZag + LEB128 varint for signed address deltas.
void put_varint(std::ostream& os, std::int64_t v) {
  auto zz = static_cast<std::uint64_t>((v << 1) ^ (v >> 63));
  do {
    auto byte = static_cast<unsigned char>(zz & 0x7F);
    zz >>= 7;
    if (zz != 0) byte |= 0x80;
    os.put(static_cast<char>(byte));
  } while (zz != 0);
}

std::int64_t get_varint(std::istream& is) {
  std::uint64_t zz = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == EOF) throw std::runtime_error("trace: truncated varint");
    zz |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("trace: varint overflow");
  }
  return static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

}  // namespace

std::uint64_t write_trace(std::ostream& os, TraceSource& source, std::uint64_t n,
                          std::uint64_t footprint_bytes) {
  put_u32(os, kTraceMagic);
  put_u32(os, kTraceVersion);
  put_u64(os, n);
  put_u64(os, footprint_bytes ? footprint_bytes : source.footprint_bytes());

  std::array<Instr, 4096> batch;
  std::uint64_t written = 0;
  std::uint64_t last_addr = 0;
  source.reset();
  while (written < n) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(n - written, batch.size()));
    const std::size_t got = source.next_batch(std::span<Instr>(batch.data(), want));
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      const Instr& ins = batch[i];
      // flags: bits 0-1 kind, bit 2 dependent.
      const auto flags = static_cast<unsigned char>(
          static_cast<int>(ins.kind) | (ins.dependent ? 4 : 0));
      os.put(static_cast<char>(flags));
      if (ins.kind != OpKind::kAlu) {
        put_varint(os, static_cast<std::int64_t>(ins.addr) -
                           static_cast<std::int64_t>(last_addr));
        last_addr = ins.addr;
      }
    }
    written += got;
  }
  return written;
}

std::uint64_t write_trace_file(const std::string& path, TraceSource& source,
                               std::uint64_t n, std::uint64_t footprint_bytes) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open for writing: " + path);
  return write_trace(os, source, n, footprint_bytes);
}

RecordedTrace RecordedTrace::read(std::istream& is) {
  if (get_u32(is) != kTraceMagic) throw std::runtime_error("trace: bad magic");
  const std::uint32_t version = get_u32(is);
  if (version != kTraceVersion) throw std::runtime_error("trace: unsupported version");
  const std::uint64_t count = get_u64(is);
  const std::uint64_t footprint = get_u64(is);

  std::vector<Instr> instrs;
  instrs.reserve(static_cast<std::size_t>(count));
  std::uint64_t last_addr = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const int c = is.get();
    if (c == EOF) throw std::runtime_error("trace: truncated record");
    Instr ins;
    ins.kind = static_cast<OpKind>(c & 3);
    ins.dependent = (c & 4) != 0;
    if (ins.kind != OpKind::kAlu) {
      last_addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(last_addr) +
                                             get_varint(is));
      ins.addr = last_addr;
    }
    instrs.push_back(ins);
  }
  return RecordedTrace(std::move(instrs), footprint);
}

RecordedTrace RecordedTrace::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open for reading: " + path);
  return read(is);
}

std::size_t RecordedTrace::next_batch(std::span<Instr> out) {
  std::size_t n = 0;
  while (n < out.size() && pos_ < instrs_.size()) out[n++] = instrs_[pos_++];
  return n;
}

}  // namespace photorack::cpusim
