#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace photorack::obs {

/// Wall-clock self-profiler for the simulator's hot paths.
///
/// Layers register named scopes once ("net.flow_open", "disagg.allocate",
/// ...) and wrap each hot-path hit in an obs::ScopedTimer.  The profiler
/// aggregates count and total nanoseconds per scope; entries() rolls that
/// up into a per-run profile table, and write_bench_json() emits the
/// BENCH_results.json schema ({"benchmarks":[{name, items_per_sec,
/// ns_per_op}]}) so the CI perf ledger and its regression gate consume
/// self-profiles and microbenchmarks identically.
///
/// This is the ONE place the observability layer reads a wall clock; it
/// never feeds back into simulation state, so profiling cannot perturb
/// results — only measure their cost.  Disabled profiling is a null
/// Profiler pointer at the ScopedTimer site: one pointer test per hit.
class Profiler {
 public:
  using ScopeId = std::size_t;

  /// Register (or look up) a scope by name; stable id for ScopedTimer.
  ScopeId scope(const std::string& name);

  void record(ScopeId id, std::uint64_t ns);

  struct Entry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    [[nodiscard]] double ns_per_op() const {
      return count ? static_cast<double>(total_ns) / static_cast<double>(count) : 0.0;
    }
    [[nodiscard]] double items_per_sec() const {
      return total_ns ? static_cast<double>(count) * 1e9 / static_cast<double>(total_ns)
                      : 0.0;
    }
  };

  /// Scopes in registration order, hit or not.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// BENCH_results.json schema; scopes with zero hits are skipped (a
  /// never-hit scope has no ns/op to compare).
  void write_bench_json(std::ostream& os) const;
  /// write_bench_json() into `path`; throws std::runtime_error naming the
  /// path when opening or writing fails.
  void write_bench_json_file(const std::string& path) const;

 private:
  std::vector<Entry> entries_;
};

/// RAII wall-clock timer: charges the elapsed time to `scope` of `profiler`
/// on destruction.  A null profiler makes construction and destruction a
/// pointer test — the disabled path stays out of the way of the code it
/// would measure.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Profiler::ScopeId scope)
      : profiler_(profiler), scope_(scope) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (profiler_)
      profiler_->record(scope_, static_cast<std::uint64_t>(
                                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  Profiler::ScopeId scope_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace photorack::obs
