#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "cpusim/miss_profile.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "workloads/generators.hpp"

namespace photorack::core {

namespace {

bool near(double a, double b) { return std::fabs(a - b) < 1e-9; }

// Index bucket for an extra_ns value.  Buckets are 1e-6 ns wide — far
// coarser than the 1e-9 match tolerance — so a query only ever needs its
// own bucket plus the two neighbours (for values straddling a boundary).
long long extra_bucket(double extra_ns) {
  return static_cast<long long>(std::llround(extra_ns * 1e6));
}

}  // namespace

void CpuSweep::build_index() {
  find_index_.clear();
  group_index_.clear();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CpuRunRecord& r = runs[i];
    const long long bucket = extra_bucket(r.extra_ns);
    find_index_.emplace(FindKey{r.bench->full_name(), static_cast<int>(r.core), bucket},
                        i);
    group_index_[GroupKey{static_cast<int>(r.core), bucket}].push_back(i);
  }
}

const CpuRunRecord& CpuSweep::find(const std::string& full_name, cpusim::CoreKind core,
                                   double extra_ns) const {
  if (find_index_.empty()) {  // hand-built sweep without build_index()
    for (const auto& r : runs)
      if (r.core == core && near(r.extra_ns, extra_ns) && r.bench->full_name() == full_name)
        return r;
  } else {
    const long long bucket = extra_bucket(extra_ns);
    for (const long long b : {bucket - 1, bucket, bucket + 1}) {
      const auto it = find_index_.find(FindKey{full_name, static_cast<int>(core), b});
      if (it != find_index_.end() && near(runs[it->second].extra_ns, extra_ns))
        return runs[it->second];
    }
  }
  throw std::out_of_range("CpuSweep::find: no record for " + full_name);
}

std::vector<const CpuRunRecord*> CpuSweep::records(const std::string& suite,
                                                   const std::string& input,
                                                   cpusim::CoreKind core,
                                                   double extra_ns) const {
  auto matches = [&](const CpuRunRecord& r) {
    if (r.core != core || !near(r.extra_ns, extra_ns)) return false;
    if (!suite.empty() && r.bench->suite != suite) return false;
    if (!input.empty() && r.bench->input != input) return false;
    return true;
  };
  std::vector<const CpuRunRecord*> out;
  if (group_index_.empty()) {
    for (const auto& r : runs)
      if (matches(r)) out.push_back(&r);
    return out;
  }
  const long long bucket = extra_bucket(extra_ns);
  std::vector<std::size_t> idx;
  for (const long long b : {bucket - 1, bucket, bucket + 1}) {
    const auto it = group_index_.find(GroupKey{static_cast<int>(core), b});
    if (it != group_index_.end()) idx.insert(idx.end(), it->second.begin(), it->second.end());
  }
  std::sort(idx.begin(), idx.end());  // preserve run order across buckets
  for (const std::size_t i : idx)
    if (matches(runs[i])) out.push_back(&runs[i]);
  return out;
}

std::vector<double> CpuSweep::slowdowns(const std::string& suite, const std::string& input,
                                        cpusim::CoreKind core, double extra_ns) const {
  std::vector<double> out;
  for (const auto* r : records(suite, input, core, extra_ns)) out.push_back(r->slowdown);
  return out;
}

double CpuSweep::overall_mean_slowdown(cpusim::CoreKind core, double extra_ns) const {
  return sim::mean_of(slowdowns("", "", core, extra_ns));
}

CpuSweep run_cpu_sweep(const CpuSweepOptions& opt) {
  const auto& benches = workloads::cpu_benchmarks();

  // Materialize the run matrix first so indices are stable for parallel_for.
  // Runs of one (benchmark, core) pair — the K latency points — form one
  // profile group: the group records a single instrumented simulation and
  // replays it per latency point.
  CpuSweep sweep;
  struct ProfileGroup {
    const workloads::CpuBenchmark* bench = nullptr;
    cpusim::CoreKind core = cpusim::CoreKind::kInOrder;
    std::size_t first_run = 0;  // contiguous: extra_latencies_ns.size() runs
  };
  std::vector<ProfileGroup> groups;
  for (const auto& bench : benches)
    for (const auto core : opt.cores) {
      groups.push_back(ProfileGroup{&bench, core, sweep.runs.size()});
      for (const double extra : opt.extra_latencies_ns) {
        CpuRunRecord rec;
        rec.bench = &bench;
        rec.core = core;
        rec.extra_ns = extra;
        sweep.runs.push_back(rec);
      }
    }

  auto simulate_group = [&](std::size_t g) {
    const ProfileGroup& group = groups[g];
    cpusim::SimConfig cfg;
    cfg.core.kind = group.core;
    cfg.dram.extra_ns = 0.0;
    cfg.warmup_instructions = opt.warmup_instructions;
    cfg.measured_instructions = opt.measured_instructions;
    workloads::SyntheticTrace trace(group.bench->trace);
    const cpusim::MissProfile profile = cpusim::record_miss_profile(trace, cfg);
    for (std::size_t k = 0; k < opt.extra_latencies_ns.size(); ++k) {
      CpuRunRecord& rec = sweep.runs[group.first_run + k];
      rec.result = cpusim::replay_profile(profile, rec.extra_ns);
    }
  };

  if (opt.parallel) {
    sim::parallel_for(groups.size(), simulate_group);
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) simulate_group(g);
  }

  // Fill slowdowns against the extra=0 baselines.
  std::map<std::pair<std::string, int>, double> baseline_ns;
  for (const auto& r : sweep.runs)
    if (near(r.extra_ns, 0.0))
      baseline_ns[{r.bench->full_name(), static_cast<int>(r.core)}] = r.result.time_ns;
  for (auto& r : sweep.runs) {
    const auto it = baseline_ns.find({r.bench->full_name(), static_cast<int>(r.core)});
    if (it == baseline_ns.end() || it->second <= 0.0)
      throw std::logic_error("run_cpu_sweep: missing extra=0 baseline");
    r.slowdown = r.result.time_ns / it->second - 1.0;
  }
  sweep.build_index();
  return sweep;
}

const GpuRunRecord& GpuSweep::find(const std::string& app_name, double extra_ns) const {
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns) && r.app->name == app_name) return r;
  throw std::out_of_range("GpuSweep::find: no record for " + app_name);
}

double GpuSweep::mean_slowdown(double extra_ns) const {
  sim::RunningStats s;
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns)) s.add(r.slowdown);
  return s.mean();
}

double GpuSweep::max_slowdown(double extra_ns) const {
  sim::RunningStats s;
  for (const auto& r : runs)
    if (near(r.extra_ns, extra_ns)) s.add(r.slowdown);
  return s.max();
}

GpuSweep run_gpu_sweep(std::vector<double> extra_latencies_ns, double hbm_bandwidth_derate) {
  const auto& apps = workloads::gpu_apps();
  GpuSweep sweep;
  // The per-kernel L2 simulation is latency- and derate-independent: record
  // one profile per app and replay it for the baseline and every latency
  // point (bit-identical to evaluating each point from scratch).
  std::vector<gpusim::AppMissProfile> profiles;
  profiles.reserve(apps.size());
  std::map<std::string, double> baseline_us;
  // Baselines always use the photonic (underated, extra=0) configuration.
  for (const auto& app : apps) {
    gpusim::GpuConfig gpu;
    profiles.push_back(gpusim::record_app_profile(app, gpu));
    baseline_us[app.name] = gpusim::replay_app(app, profiles.back(), gpu).time_us;
  }
  for (const double extra : extra_latencies_ns) {
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const auto& app = apps[a];
      gpusim::GpuConfig gpu;
      gpu.extra_hbm_ns = extra;
      gpu.hbm_bandwidth_derate = hbm_bandwidth_derate;
      GpuRunRecord rec;
      rec.app = &app;
      rec.extra_ns = extra;
      rec.result = gpusim::replay_app(app, profiles[a], gpu);
      rec.slowdown = rec.result.time_us / baseline_us[app.name] - 1.0;
      sweep.runs.push_back(std::move(rec));
    }
  }
  return sweep;
}

std::vector<Fig6Row> fig6_rows(const CpuSweep& sweep) {
  std::vector<Fig6Row> rows;
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"PARSEC", "small"}, {"PARSEC", "medium"}, {"PARSEC", "large"},
      {"NAS", "A"},        {"NAS", "B"},         {"NAS", "C"},
      {"Rodinia", "default"}};
  for (const auto& [suite, input] : groups) {
    Fig6Row row;
    row.suite = suite;
    row.input = input;
    const auto io = sweep.slowdowns(suite, input, cpusim::CoreKind::kInOrder, 35.0);
    const auto ooo = sweep.slowdowns(suite, input, cpusim::CoreKind::kOutOfOrder, 35.0);
    row.avg_inorder = sim::mean_of(io);
    row.max_inorder = sim::max_of(io);
    row.avg_ooo = sim::mean_of(ooo);
    row.max_ooo = sim::max_of(ooo);
    rows.push_back(row);
  }
  return rows;
}

Fig7Result fig7_correlation(const CpuSweep& sweep, cpusim::CoreKind core) {
  Fig7Result out;
  auto collect = [&](const std::string& suite, const std::string& input,
                     std::vector<Fig7Row>& rows) {
    std::vector<double> s, m;
    for (const auto* r : sweep.records(suite, input, core, 35.0)) {
      Fig7Row row;
      row.bench = r->bench->name + "/" + r->bench->input;
      row.slowdown = r->slowdown;
      row.llc_miss_rate = r->result.llc_miss_rate;
      rows.push_back(row);
      s.push_back(row.slowdown);
      m.push_back(row.llc_miss_rate);
    }
    return sim::pearson(s, m);
  };
  out.pearson_parsec_large = collect("PARSEC", "large", out.parsec_large);
  out.pearson_rodinia = collect("Rodinia", "default", out.rodinia);
  std::vector<Fig7Row> all_parsec;
  out.pearson_parsec_all_inputs = collect("PARSEC", "", all_parsec);
  return out;
}

std::vector<Fig8Row> fig8_rows(const CpuSweep& sweep, cpusim::CoreKind core) {
  std::vector<Fig8Row> rows;
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"PARSEC", "small"}, {"PARSEC", "medium"}, {"PARSEC", "large"},
      {"NAS", "A"},        {"NAS", "B"},         {"NAS", "C"},
      {"Rodinia", "default"}};
  for (const auto& [suite, input] : groups) {
    Fig8Row row;
    row.suite = suite;
    row.input = input;
    row.slowdown_25 = sim::mean_of(sweep.slowdowns(suite, input, core, 25.0));
    row.slowdown_30 = sim::mean_of(sweep.slowdowns(suite, input, core, 30.0));
    row.slowdown_35 = sim::mean_of(sweep.slowdowns(suite, input, core, 35.0));
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig11Row> fig11_rows(const CpuSweep& cpu, const GpuSweep& gpu) {
  std::vector<Fig11Row> rows;
  for (const auto& name : workloads::rodinia_cpu_gpu_intersection()) {
    Fig11Row row;
    row.bench = name;
    row.inorder = cpu.find("Rodinia/" + name + "/default",
                           cpusim::CoreKind::kInOrder, 35.0)
                      .slowdown;
    row.ooo = cpu.find("Rodinia/" + name + "/default",
                       cpusim::CoreKind::kOutOfOrder, 35.0)
                  .slowdown;
    row.gpu = gpu.find(name, 35.0).slowdown;
    rows.push_back(row);
  }
  return rows;
}

Fig12Summary fig12_speedup(const CpuSweep& cpu, double electronic_gpu_bandwidth_derate) {
  Fig12Summary out;

  auto cpu_part = [&](cpusim::CoreKind core,
                      std::vector<std::pair<std::string, double>>& per_bench, double& avg,
                      double& mx) {
    std::vector<double> speedups;
    for (const auto& bench : workloads::cpu_benchmarks()) {
      // §VI-D restriction: count PARSEC only at "medium" to avoid counting
      // those benchmarks three times.
      if (bench.suite == "PARSEC" && bench.input != "medium") continue;
      if (bench.suite == "NAS" && bench.input != "B") continue;
      const auto& photonic = cpu.find(bench.full_name(), core, kPhotonicExtraNs);
      const auto& electronic = cpu.find(bench.full_name(), core, kElectronicExtraNs);
      const double speedup = electronic.result.time_ns / photonic.result.time_ns - 1.0;
      per_bench.emplace_back(bench.full_name(), speedup);
      speedups.push_back(speedup);
    }
    avg = sim::mean_of(speedups);
    mx = sim::max_of(speedups);
  };
  cpu_part(cpusim::CoreKind::kInOrder, out.cpu_inorder, out.cpu_inorder_avg,
           out.cpu_inorder_max);
  cpu_part(cpusim::CoreKind::kOutOfOrder, out.cpu_ooo, out.cpu_ooo_avg, out.cpu_ooo_max);

  // GPU comparison: the photonic design preserves full HBM escape bandwidth;
  // electronic switching both adds 85 ns and derates deliverable bandwidth.
  std::vector<double> speedups;
  for (const auto& app : workloads::gpu_apps()) {
    gpusim::GpuConfig photonic;
    photonic.extra_hbm_ns = kPhotonicExtraNs;
    gpusim::GpuConfig electronic;
    electronic.extra_hbm_ns = kElectronicExtraNs;
    electronic.hbm_bandwidth_derate = electronic_gpu_bandwidth_derate;
    // Same L2 geometry on both sides: one profile replays both designs.
    const gpusim::AppMissProfile profile = gpusim::record_app_profile(app, photonic);
    const double tp = gpusim::replay_app(app, profile, photonic).time_us;
    const double te = gpusim::replay_app(app, profile, electronic).time_us;
    const double speedup = te / tp - 1.0;
    out.gpu.emplace_back(app.name, speedup);
    speedups.push_back(speedup);
  }
  out.gpu_avg = sim::mean_of(speedups);
  out.gpu_max = sim::max_of(speedups);
  return out;
}

}  // namespace photorack::core
