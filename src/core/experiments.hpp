#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cpusim/runner.hpp"
#include "gpusim/gpu_runner.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/gpu_profiles.hpp"

namespace photorack::core {

// ---------------------------------------------------------------------------
// CPU sweep (feeds Figs 6, 7, 8, 11, 12)
// ---------------------------------------------------------------------------

struct CpuSweepOptions {
  std::vector<double> extra_latencies_ns = {0.0, 35.0};  // always include 0
  std::vector<cpusim::CoreKind> cores = {cpusim::CoreKind::kInOrder,
                                         cpusim::CoreKind::kOutOfOrder};
  std::uint64_t warmup_instructions = 1'000'000;
  std::uint64_t measured_instructions = 2'000'000;
  bool parallel = true;
};

struct CpuRunRecord {
  const workloads::CpuBenchmark* bench = nullptr;
  cpusim::CoreKind core = cpusim::CoreKind::kInOrder;
  double extra_ns = 0.0;
  cpusim::SimResult result;
  double slowdown = 0.0;  // vs the same benchmark/core at extra = 0
};

class CpuSweep {
 public:
  std::vector<CpuRunRecord> runs;

  [[nodiscard]] const CpuRunRecord& find(const std::string& full_name,
                                         cpusim::CoreKind core, double extra_ns) const;
  /// All slowdowns for (suite, input, core, extra); empty input = any.
  [[nodiscard]] std::vector<double> slowdowns(const std::string& suite,
                                              const std::string& input,
                                              cpusim::CoreKind core,
                                              double extra_ns) const;
  [[nodiscard]] std::vector<const CpuRunRecord*> records(const std::string& suite,
                                                         const std::string& input,
                                                         cpusim::CoreKind core,
                                                         double extra_ns) const;
  /// Mean slowdown over every benchmark run (the paper's "across all
  /// benchmarks" average: 15% in-order / 22% OOO at +35 ns).
  [[nodiscard]] double overall_mean_slowdown(cpusim::CoreKind core, double extra_ns) const;

  /// Prebuild the (name, core, extra) lookup index over `runs`; campaigns
  /// query every record, which was quadratic on the linear scans.  Called
  /// by run_cpu_sweep; call again after mutating `runs` by hand.  Without
  /// an index the accessors fall back to the linear scans.
  void build_index();

 private:
  // extra_ns is matched with a 1e-9 tolerance (see `near` in the .cpp), so
  // the index keys on a quantized value and lookups verify candidates in
  // the adjacent buckets too.
  using FindKey = std::tuple<std::string, int, long long>;
  using GroupKey = std::pair<int, long long>;
  std::map<FindKey, std::size_t> find_index_;
  std::map<GroupKey, std::vector<std::size_t>> group_index_;
};

/// Run the benchmark registry through the timing simulator for every
/// (core, extra latency) combination.  One instrumented simulation is
/// recorded per (benchmark, core); every latency point is then an
/// O(misses) replay of that profile (bit-identical to simulating it from
/// scratch — see cpusim/miss_profile.hpp), so a K-point sweep costs one
/// simulation instead of K.
[[nodiscard]] CpuSweep run_cpu_sweep(const CpuSweepOptions& opt = {});

// ---------------------------------------------------------------------------
// GPU sweep (feeds Figs 9, 10, 11, 12)
// ---------------------------------------------------------------------------

struct GpuRunRecord {
  const gpusim::AppProfile* app = nullptr;
  double extra_ns = 0.0;
  gpusim::AppResult result;
  double slowdown = 0.0;
};

struct GpuSweep {
  std::vector<GpuRunRecord> runs;

  [[nodiscard]] const GpuRunRecord& find(const std::string& app_name,
                                         double extra_ns) const;
  [[nodiscard]] double mean_slowdown(double extra_ns) const;
  [[nodiscard]] double max_slowdown(double extra_ns) const;
};

[[nodiscard]] GpuSweep run_gpu_sweep(std::vector<double> extra_latencies_ns = {0.0, 25.0,
                                                                               30.0, 35.0},
                                     double hbm_bandwidth_derate = 1.0);

// ---------------------------------------------------------------------------
// Figure/table summaries
// ---------------------------------------------------------------------------

/// Fig 6: average/max slowdown per benchmark suite and input size at +35ns.
struct Fig6Row {
  std::string suite;
  std::string input;
  double avg_inorder = 0.0, max_inorder = 0.0;
  double avg_ooo = 0.0, max_ooo = 0.0;
};
[[nodiscard]] std::vector<Fig6Row> fig6_rows(const CpuSweep& sweep);

/// Fig 7: per-benchmark slowdown vs LLC miss rate + Pearson correlation.
struct Fig7Row {
  std::string bench;
  double slowdown = 0.0;
  double llc_miss_rate = 0.0;
};
struct Fig7Result {
  std::vector<Fig7Row> parsec_large;
  std::vector<Fig7Row> rodinia;
  double pearson_parsec_large = 0.0;
  double pearson_rodinia = 0.0;
  double pearson_parsec_all_inputs = 0.0;
};
[[nodiscard]] Fig7Result fig7_correlation(const CpuSweep& sweep, cpusim::CoreKind core);

/// Fig 8: slowdown sensitivity to 25/30/35 ns, per suite.
struct Fig8Row {
  std::string suite;
  std::string input;
  double slowdown_25 = 0.0, slowdown_30 = 0.0, slowdown_35 = 0.0;
};
[[nodiscard]] std::vector<Fig8Row> fig8_rows(const CpuSweep& sweep, cpusim::CoreKind core);

/// Fig 11: Rodinia CPU-vs-GPU latency tolerance.
struct Fig11Row {
  std::string bench;
  double inorder = 0.0, ooo = 0.0, gpu = 0.0;
};
[[nodiscard]] std::vector<Fig11Row> fig11_rows(const CpuSweep& cpu, const GpuSweep& gpu);

/// Fig 12: speedup of the photonic rack (+35 ns) over the electronic rack
/// (+85 ns; GPUs additionally bandwidth-derated — see DESIGN.md).
struct Fig12Summary {
  double cpu_inorder_avg = 0.0, cpu_inorder_max = 0.0;
  double cpu_ooo_avg = 0.0, cpu_ooo_max = 0.0;
  double gpu_avg = 0.0, gpu_max = 0.0;
  std::vector<std::pair<std::string, double>> cpu_inorder;  // per benchmark
  std::vector<std::pair<std::string, double>> cpu_ooo;
  std::vector<std::pair<std::string, double>> gpu;
};
/// `electronic_gpu_bandwidth_derate` models §VI-D's observation that
/// electronic lanes cannot carry native HBM bandwidth.
[[nodiscard]] Fig12Summary fig12_speedup(const CpuSweep& cpu,
                                         double electronic_gpu_bandwidth_derate = 0.62);

inline constexpr double kPhotonicExtraNs = 35.0;
inline constexpr double kElectronicExtraNs = 85.0;

}  // namespace photorack::core
