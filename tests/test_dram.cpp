#include "cpusim/dram.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace photorack::cpusim {
namespace {

TEST(Dram, FirstAccessIsRowMiss) {
  DramModel dram;
  EXPECT_DOUBLE_EQ(dram.access_ns(0), dram.config().row_miss_ns);
}

TEST(Dram, SameRowHits) {
  DramModel dram;
  dram.access_ns(0);
  EXPECT_DOUBLE_EQ(dram.access_ns(64), dram.config().row_hit_ns);
  EXPECT_DOUBLE_EQ(dram.access_ns(4096), dram.config().row_hit_ns);  // still row 0
}

TEST(Dram, DifferentRowSameBankMisses) {
  DramConfig cfg;
  DramModel dram(cfg);
  dram.access_ns(0);
  // row k and row k + banks share a bank.
  EXPECT_DOUBLE_EQ(dram.access_ns(cfg.row_bytes * cfg.banks),
                   cfg.row_miss_ns);
}

TEST(Dram, BanksKeepIndependentRows) {
  DramConfig cfg;
  DramModel dram(cfg);
  dram.access_ns(0);                 // bank 0, row 0
  dram.access_ns(cfg.row_bytes);     // bank 1, row 1
  // Returning to row 0 (bank 0) must still hit: bank 1 did not disturb it.
  EXPECT_DOUBLE_EQ(dram.access_ns(64), cfg.row_hit_ns);
}

TEST(Dram, ExtraLatencyIsAdditive) {
  DramConfig cfg;
  cfg.extra_ns = 35.0;
  DramModel dram(cfg);
  EXPECT_DOUBLE_EQ(dram.access_ns(0), cfg.row_miss_ns + 35.0);
  EXPECT_DOUBLE_EQ(dram.access_ns(64), cfg.row_hit_ns + 35.0);
}

TEST(Dram, StreamingHasHighRowHitRate) {
  DramModel dram;
  for (std::uint64_t a = 0; a < 1 << 20; a += 64) dram.access_ns(a);
  EXPECT_GT(dram.row_hit_rate(), 0.95);
}

TEST(Dram, RandomHasLowRowHitRate) {
  DramModel dram;
  sim::Rng rng(5);
  for (int i = 0; i < 20000; ++i) dram.access_ns(rng.below(1ULL << 30));
  EXPECT_LT(dram.row_hit_rate(), 0.05);
}

TEST(Dram, StatsResetWorks) {
  DramModel dram;
  dram.access_ns(0);
  dram.reset_stats();
  EXPECT_EQ(dram.accesses(), 0u);
  EXPECT_EQ(dram.row_hits(), 0u);
}

TEST(Dram, RejectsBadGeometry) {
  DramConfig bad;
  bad.banks = 0;
  EXPECT_THROW(DramModel{bad}, std::invalid_argument);
}

/// The latency band that makes the paper's numbers work: +35 ns must sit
/// between ~50% and ~170% of the baseline exposed DRAM latency, so that
/// "LLC miss cycles increase by 50% to 150%".
TEST(Dram, ThirtyFiveNsIsLargeRelativeToBaseline) {
  DramConfig cfg;
  EXPECT_GT(35.0 / cfg.row_miss_ns, 0.5);
  EXPECT_LT(35.0 / cfg.row_hit_ns, 1.7);
}

}  // namespace
}  // namespace photorack::cpusim
