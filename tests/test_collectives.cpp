// The ISSUE 10 collective-communication contracts: pattern compilation has
// the textbook phase/flow shapes, the straggler-gated runner hits the
// closed-form lower bound on an uncontended fabric, a dense all-to-all
// never over-allocates a wavelength pair and tears down bit-exactly, and
// the ML training-job path is deterministic (same seed byte-identical,
// seed+1 divergent) while the disabled path leaves the co-simulation
// field-by-field identical to a run without the subsystem.
#include "collectives/collective.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "collectives/runner.hpp"
#include "cosim/rack_cosim.hpp"
#include "net/fabric.hpp"
#include "net/flow_sim.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/event_queue.hpp"

namespace photorack::collectives {
namespace {

// The same fully-populated single-AWGR slice the rack co-simulation builds
// from FabricSliceConfig: every (src,dst) pair owns one 25 Gb/s wavelength.
rack::AwgrFabricPlan slice_plan(int mcms) {
  rack::AwgrFabricPlan plan;
  plan.parallel_awgrs = 1;
  plan.awgr_radix = mcms;
  plan.port_wavelength_cap = mcms;
  plan.lambdas_per_port.assign(1, mcms);
  plan.full_coverage_awgrs = 1;
  plan.min_direct_lambdas_per_pair = 1;
  plan.direct_pair_bandwidth = phot::Gbps{25.0};
  return plan;
}

constexpr double kBytes = 64e6;  // one 64 MB gradient
constexpr double kGbps = 25.0;

// ---------------------------------------------------------------------------
// Pattern compilation: phase/flow shapes.
// ---------------------------------------------------------------------------

TEST(Compile, RingHasTwiceNMinusOnePhasesOfNeighborFlows) {
  const int n = 8;
  const auto program = compile(Pattern::kRingAllReduce, n, kBytes);
  ASSERT_EQ(program.size(), 2u * (n - 1));
  for (const auto& phase : program) {
    ASSERT_EQ(phase.flows.size(), static_cast<std::size_t>(n));
    for (const auto& flow : phase.flows) {
      EXPECT_EQ(flow.dst, (flow.src + 1) % n);
      EXPECT_DOUBLE_EQ(flow.bytes, kBytes / n);
    }
  }
}

TEST(Compile, AllToAllShiftsByPhaseIndex) {
  const int n = 6;
  const auto program = compile(Pattern::kAllToAll, n, kBytes);
  ASSERT_EQ(program.size(), static_cast<std::size_t>(n - 1));
  for (std::size_t k = 0; k < program.size(); ++k) {
    ASSERT_EQ(program[k].flows.size(), static_cast<std::size_t>(n));
    for (const auto& flow : program[k].flows) {
      EXPECT_EQ(flow.dst, (flow.src + static_cast<int>(k) + 1) % n);
      EXPECT_DOUBLE_EQ(flow.bytes, kBytes / (n - 1));
    }
  }
}

TEST(Compile, ParamServerIsInCastThenOutCast) {
  const int n = 5;
  const auto program = compile(Pattern::kParamServer, n, kBytes);
  ASSERT_EQ(program.size(), 2u);
  ASSERT_EQ(program[0].flows.size(), static_cast<std::size_t>(n - 1));
  ASSERT_EQ(program[1].flows.size(), static_cast<std::size_t>(n - 1));
  for (const auto& flow : program[0].flows) {
    EXPECT_EQ(flow.dst, 0);
    EXPECT_DOUBLE_EQ(flow.bytes, kBytes);
  }
  for (const auto& flow : program[1].flows) {
    EXPECT_EQ(flow.src, 0);
    EXPECT_DOUBLE_EQ(flow.bytes, kBytes);
  }
}

TEST(Compile, BroadcastDoublesCoverageEachPhase) {
  const int n = 8;
  const auto program = compile(Pattern::kBroadcast, n, kBytes);
  ASSERT_EQ(program.size(), 3u);  // ceil(log2(8))
  std::size_t total_flows = 0;
  int covered = 1;
  for (const auto& phase : program) {
    EXPECT_EQ(phase.flows.size(),
              static_cast<std::size_t>(std::min(covered, n - covered)));
    total_flows += phase.flows.size();
    covered *= 2;
    for (const auto& flow : phase.flows) EXPECT_DOUBLE_EQ(flow.bytes, kBytes);
  }
  EXPECT_EQ(total_flows, static_cast<std::size_t>(n - 1));  // everyone hears once
}

TEST(Compile, OneRankIsANoOpAndBadArgsThrow) {
  EXPECT_TRUE(compile(Pattern::kRingAllReduce, 1, kBytes).empty());
  EXPECT_THROW(compile(Pattern::kRingAllReduce, 0, kBytes), std::invalid_argument);
  EXPECT_THROW(compile(Pattern::kAllToAll, 4, -1.0), std::invalid_argument);
  EXPECT_THROW(compile(Pattern::kAllToAll, 4, std::nan("")), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed-form lower bounds.
// ---------------------------------------------------------------------------

TEST(LowerBound, RingMatchesTextbookFormula) {
  const int n = 8;
  // 2(N-1)/N * gradient_bits / bandwidth — the bandwidth-optimal ring time.
  const double expected = 2.0 * (n - 1) / n * kBytes * 8.0 / (kGbps * 1e9);
  EXPECT_DOUBLE_EQ(lower_bound_seconds(Pattern::kRingAllReduce, n, kBytes, kGbps),
                   expected);
}

TEST(LowerBound, BroadcastPaysFullPayloadPerDoublingRound) {
  const int n = 8;
  const double expected = 3.0 * kBytes * 8.0 / (kGbps * 1e9);
  EXPECT_DOUBLE_EQ(lower_bound_seconds(Pattern::kBroadcast, n, kBytes, kGbps),
                   expected);
}

// ---------------------------------------------------------------------------
// Enum codec: CLI/campaign-facing names.
// ---------------------------------------------------------------------------

TEST(PatternCodec, RoundTripsEveryName) {
  const auto& codec = pattern_codec();
  for (const auto* name : {"ring", "alltoall", "ps", "broadcast"})
    EXPECT_EQ(codec.name(codec.parse(name)), name);
}

TEST(PatternCodec, UnknownNameNamesTheAlternatives) {
  try {
    (void)pattern_codec().parse("mesh");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("want ring|alltoall|ps|broadcast"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Runner: straggler-gated phases on a real fabric hit the closed-form
// bound when nothing contends, and abort/teardown restore the fabric
// bit-exactly.
// ---------------------------------------------------------------------------

TEST(Runner, UncontendedRingMatchesLowerBound) {
  net::WavelengthFabric fabric(24, slice_plan(24));
  net::FlowEngine engine(fabric, 10 * sim::kPsPerUs, 0x1234);
  sim::EventQueue queue;

  CollectiveSpec spec;
  spec.pattern = Pattern::kRingAllReduce;
  spec.endpoints = {0, 1, 2, 3, 4, 5, 6, 7};
  spec.bytes = kBytes;
  spec.demand_gbps = kGbps;

  CollectiveResult result;
  bool done = false;
  CollectiveRunner runner(engine, queue, spec);
  runner.start([&](const CollectiveResult& r) {
    result = r;
    done = true;
  });
  queue.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(result.phases, 14);
  EXPECT_EQ(result.flows, 14u * 8u);
  // Each phase rounds up to a whole picosecond, so the elapsed time may
  // exceed the continuous bound by at most one ps per phase.
  const double ideal_ps =
      lower_bound_seconds(Pattern::kRingAllReduce, 8, kBytes, kGbps) * 1e12;
  EXPECT_GE(static_cast<double>(result.elapsed), ideal_ps);
  EXPECT_LE(static_cast<double>(result.elapsed), ideal_ps + result.phases);
  // No contention: every flow runs at its full demand, no straggler spread.
  EXPECT_DOUBLE_EQ(result.straggler_stretch, 1.0);
  // Teardown: nothing left allocated.
  EXPECT_NEAR(fabric.utilization(), 0.0, 0.0);
}

TEST(Runner, CompletedCollectiveRestoresFabricBitExactly) {
  net::WavelengthFabric fabric(24, slice_plan(24));
  const auto clean = fabric.allocation_snapshot();
  net::FlowEngine engine(fabric, 10 * sim::kPsPerUs, 0x1234);
  sim::EventQueue queue;

  CollectiveSpec spec;
  spec.pattern = Pattern::kAllToAll;
  spec.endpoints.resize(24);
  std::iota(spec.endpoints.begin(), spec.endpoints.end(), 0);
  spec.bytes = kBytes;
  spec.demand_gbps = kGbps;

  CollectiveRunner runner(engine, queue, spec);
  runner.start([](const CollectiveResult&) {});
  queue.run();

  EXPECT_EQ(fabric.allocation_snapshot(), clean);
}

TEST(Runner, AbortMidPhaseRestoresFabricBitExactly) {
  net::WavelengthFabric fabric(24, slice_plan(24));
  const auto clean = fabric.allocation_snapshot();
  net::FlowEngine engine(fabric, 10 * sim::kPsPerUs, 0x1234);
  sim::EventQueue queue;

  CollectiveSpec spec;
  spec.pattern = Pattern::kRingAllReduce;
  spec.endpoints = {0, 1, 2, 3, 4, 5, 6, 7};
  spec.bytes = kBytes;
  spec.demand_gbps = kGbps;

  bool done = false;
  CollectiveRunner runner(engine, queue, spec);
  runner.start([&](const CollectiveResult&) { done = true; });
  // Fire in the middle of the first phase (well before its ~2.56 ms end).
  queue.schedule_after(1 * sim::kPsPerMs, [&] { runner.abort(); });
  queue.run();

  EXPECT_FALSE(done);  // an aborted collective never reports completion
  EXPECT_FALSE(runner.running());
  EXPECT_EQ(fabric.allocation_snapshot(), clean);
}

// ---------------------------------------------------------------------------
// Satellite 1 — conservation under a dense all-to-all: the satisfied rates
// on a wavelength pair never exceed the pair's capacity even when every
// pair is asked for more than it has, and closing the phase's flow set
// restores the allocation tables bit-exactly.
// ---------------------------------------------------------------------------

TEST(Conservation, DenseAllToAllNeverOverAllocatesAPair) {
  const int n = 24;
  net::WavelengthFabric fabric(n, slice_plan(n));
  const auto clean = fabric.allocation_snapshot();
  net::FlowEngine engine(fabric, 10 * sim::kPsPerUs, 0x5678);

  // Demand 1.6x each pair's 25 Gb/s wavelength, every pair at once.
  const auto program = compile(Pattern::kAllToAll, n, kBytes);
  for (const auto& phase : program) {
    std::vector<std::uint64_t> ids;
    for (const auto& flow : phase.flows) {
      net::FlowSpec fs;
      fs.src = flow.src;
      fs.dst = flow.dst;
      fs.gbps = 40.0;
      fs.duration = sim::kPsPerMs;
      ids.push_back(engine.open(fs));
    }
    for (const auto id : ids) {
      const auto& r = engine.result(id);
      EXPECT_LE(r.satisfied(), r.requested + 1e-9);
    }
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        EXPECT_LE(fabric.allocated(s, d), fabric.direct_capacity(s, d) + 1e-9)
            << "pair (" << s << "," << d << ") over-allocated";
      }
    for (const auto id : ids) engine.close(id);
    // Identical open/close amounts cancel exactly in IEEE arithmetic, so
    // the table must come back bit-for-bit, not just within epsilon.
    EXPECT_EQ(fabric.allocation_snapshot(), clean);
  }
  EXPECT_NEAR(fabric.utilization(), 0.0, 0.0);
}

// ---------------------------------------------------------------------------
// Satellite 2 — seed sensitivity and the disabled path.
// ---------------------------------------------------------------------------

cosim::CosimConfig ml_cosim(double mix_fraction) {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = 2.0;
  cfg.sim_time = 120 * sim::kPsPerMs;
  cfg.mean_duration = 20 * sim::kPsPerMs;
  cfg.ml.enabled = true;
  cfg.ml.mix_fraction = mix_fraction;
  cfg.ml.accelerators = 8;
  cfg.ml.gradient_mb = 8.0;
  cfg.ml.steps = 2;
  cfg.ml.compute_ms = 1.0;
  return cfg;
}

cosim::CosimReport run_ml(const cosim::CosimConfig& cfg) {
  return cosim::run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                               workloads::UsageModel::cori(), cfg);
}

void expect_ml_identical(const cosim::MlStats& a, const cosim::MlStats& b) {
  EXPECT_EQ(a.jobs_offered, b.jobs_offered);
  EXPECT_EQ(a.jobs_accepted, b.jobs_accepted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.collective_phases, b.collective_phases);
  EXPECT_EQ(a.step_ms.p50, b.step_ms.p50);
  EXPECT_EQ(a.step_ms.p99, b.step_ms.p99);
  EXPECT_EQ(a.coll_frac.p50, b.coll_frac.p50);
  EXPECT_EQ(a.straggler.p99, b.straggler.p99);
}

TEST(MlDeterminism, SameSeedIsByteIdentical) {
  const auto cfg = ml_cosim(0.5);
  const auto a = run_ml(cfg);
  const auto b = run_ml(cfg);
  ASSERT_GT(a.ml.jobs_offered, 0u);
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.completed_at, b.completed_at);
  expect_ml_identical(a.ml, b.ml);
}

TEST(MlDeterminism, SeedPlusOneDiverges) {
  auto cfg = ml_cosim(0.5);
  const auto a = run_ml(cfg);
  cfg.seed += 1;
  const auto b = run_ml(cfg);
  EXPECT_TRUE(a.ml.jobs_offered != b.ml.jobs_offered ||
              a.ml.steps != b.ml.steps || a.energy_joules != b.energy_joules ||
              a.completed_at != b.completed_at);
}

TEST(MlDisabledPath, IdleSubsystemChangesNoReportedNumber) {
  // mix_fraction = 0 must short-circuit before any RNG draw, so an armed
  // but idle ML subsystem reproduces the pre-subsystem trajectory exactly.
  auto enabled_idle = ml_cosim(0.0);
  auto disabled = ml_cosim(0.0);
  disabled.ml = collectives::MlConfig{};  // all defaults, enabled = false
  const auto a = run_ml(enabled_idle);
  const auto b = run_ml(disabled);
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.mean_speed_fraction, b.mean_speed_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.ml.jobs_offered, 0u);
  EXPECT_EQ(a.ml.steps, 0u);
  // The report still says which mode it ran in.
  EXPECT_TRUE(a.ml.enabled);
  EXPECT_FALSE(b.ml.enabled);
}

// ---------------------------------------------------------------------------
// Training-step accounting: a step can never beat its own compute phase,
// and the collective fraction stays a fraction.
// ---------------------------------------------------------------------------

TEST(MlAccounting, StepTimeDominatesComputeTime) {
  const auto report = run_ml(ml_cosim(1.0));
  ASSERT_GT(report.ml.steps, 0u);
  EXPECT_GE(report.ml.step_ms.p50, 1.0);  // compute_ms = 1
  EXPECT_GT(report.ml.coll_frac.p50, 0.0);
  EXPECT_LE(report.ml.coll_frac.p99, 1.0);
  EXPECT_GE(report.ml.straggler.p99, 1.0);
  EXPECT_GE(report.ml.steps,
            report.ml.jobs_completed * 2u);  // cfg.ml.steps per finished job
}

// ---------------------------------------------------------------------------
// Campaign determinism: the ML campaign serializes byte-identically at
// every --jobs level (the same pin the fault/cluster campaigns carry).
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const scenario::Campaign& campaign,
                                              const scenario::SweepGrid& grid,
                                              std::size_t jobs) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  scenario::SweepRunner(scenario::SweepOptions{.jobs = jobs, .base_seed = 0})
      .run(campaign, grid, {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(MlCampaigns, CollectivesCampaignIsByteIdenticalAcrossJobs) {
  const auto& campaign = scenario::campaign_by_name("ml_collectives");
  auto grid = campaign.default_grid();
  grid.set("ml.pattern", {"ring", "alltoall"});
  grid.set("ml.gradient_mb", {"8"});
  grid.set("cosim.horizon_ms", {"60"});
  const auto [csv1, jsonl1] = serialize(campaign, grid, 1);
  const auto [csv4, jsonl4] = serialize(campaign, grid, 4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);
}

}  // namespace
}  // namespace photorack::collectives
