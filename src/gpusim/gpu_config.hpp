#pragma once

#include <cstdint>

namespace photorack::gpusim {

/// NVIDIA A100-like device model (§VI-B3, [122]): 108 SMs at 1.41 GHz,
/// 40 MB shared L2, 40 GB HBM2e at 1555.2 GB/s.  Latencies follow published
/// microbenchmark numbers.  `extra_hbm_ns` is the disaggregation latency
/// added between the GPU LLC (L2) and HBM, the quantity swept in Fig 9.
struct GpuConfig {
  int sms = 108;
  double freq_ghz = 1.41;
  std::uint64_t l2_bytes = 40ULL * 1024 * 1024;
  int l2_ways = 16;
  int sector_bytes = 32;          // memory transaction granularity
  double hbm_bandwidth_gBps = 1555.2;
  double l2_hit_latency_ns = 140.0;  // ~200 cycles
  double hbm_latency_ns = 290.0;     // ~410 cycles
  double extra_hbm_ns = 0.0;
  /// Multiplier on deliverable HBM bandwidth; 1.0 for the photonic fabric
  /// (which preserves full escape bandwidth, §V-A).  The §VI-D electronic
  /// comparison derates this because electronic switch lanes cannot carry
  /// native HBM bandwidth.
  double hbm_bandwidth_derate = 1.0;

  /// Peak warp-instruction issue rate for the whole device (warp
  /// instructions per cycle): one scheduler issue per SM per cycle in this
  /// model's granularity.
  [[nodiscard]] double issue_per_cycle() const { return static_cast<double>(sms); }
};

}  // namespace photorack::gpusim
