// Reproduces Fig 10: GPU slowdown at +35 ns correlates with (i) the LLC
// (L2) miss rate (r ~ 0.87) and (ii) HBM transactions per instruction
// (r ~ 0.79), but not with the memory-instruction fraction.
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "workloads/gpu_profiles.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 10: GPU slowdown correlates",
                     "Fig 10 (Section VI-B3)");

  const auto sweep = core::run_gpu_sweep({0.0, 35.0});

  std::vector<double> slow, missrate, txn_per_instr, mem_frac;
  sim::Table table({"App", "Slowdown +35ns", "L2 missrate", "HBM txn/instr",
                    "mem instr frac"});
  for (const auto& app : workloads::gpu_apps()) {
    const auto& r = sweep.find(app.name, 35.0);
    table.add_row({app.name, sim::fmt_pct(r.slowdown),
                   sim::fmt_pct(r.result.l2_miss_rate),
                   sim::fmt_fixed(r.result.hbm_txn_per_instr, 3),
                   sim::fmt_pct(r.result.mem_instr_fraction)});
    slow.push_back(r.slowdown);
    missrate.push_back(r.result.l2_miss_rate);
    txn_per_instr.push_back(r.result.hbm_txn_per_instr);
    mem_frac.push_back(r.result.mem_instr_fraction);
  }
  table.print(std::cout);

  const double r_miss = sim::pearson(slow, missrate);
  const double r_txn = sim::pearson(slow, txn_per_instr);
  const double r_memfrac = sim::pearson(slow, mem_frac);

  std::cout << "\npaper-vs-measured Pearson correlations:\n";
  core::check_line(std::cout, "slowdown vs LLC miss rate", 0.87, r_miss);
  core::check_line(std::cout, "slowdown vs HBM txn/instr", 0.79, r_txn);
  std::cout << "slowdown vs mem-instr fraction (paper: no significant "
               "correlation): r = "
            << r_memfrac << '\n';
  return 0;
}
