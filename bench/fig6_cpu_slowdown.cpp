// Reproduces Fig 6: average and maximum slowdown per benchmark suite and
// input size for +35 ns of LLC<->memory latency, in-order and OOO cores.
// Thin wrapper over the scenario engine's "fig6" campaign — the same sweep
// `photorack_sweep --campaign fig6` runs; this binary only adds the suite
// summary table and the paper-vs-measured checks.
#include <iostream>

#include "core/report.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 6: CPU slowdown at +35 ns", "Fig 6 (Section VI-B1)");

  const auto& campaign = scenario::campaign_by_name("fig6");
  scenario::TableSink detail(std::cout);
  std::cout << "Per-scenario results (+35 ns):\n";
  const auto res = scenario::SweepRunner().run(campaign, {&detail});

  sim::Table table({"Suite", "Input", "avg in-order", "max in-order", "avg OOO", "max OOO"});
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"PARSEC", "small"}, {"PARSEC", "medium"}, {"PARSEC", "large"},
      {"NAS", "A"},        {"NAS", "B"},         {"NAS", "C"},
      {"Rodinia", "default"}};
  for (const auto& [suite, input] : groups) {
    const scenario::SweepResult::Filter io = {
        {"suite", suite}, {"input", input}, {"core", "inorder"}};
    const scenario::SweepResult::Filter ooo = {
        {"suite", suite}, {"input", input}, {"core", "ooo"}};
    table.add_row({suite, input, sim::fmt_pct(res.mean("slowdown", io)),
                   sim::fmt_pct(res.max("slowdown", io)),
                   sim::fmt_pct(res.mean("slowdown", ooo)),
                   sim::fmt_pct(res.max("slowdown", ooo))});
  }
  std::cout << "\nSuite summary:\n";
  table.print(std::cout);

  const auto slowdown_of = [&res](const char* bench, const char* core) {
    return res.num(res.find({{"bench", bench}, {"core", core}}), "slowdown");
  };

  std::cout << "\npaper-vs-measured (Fig 6 and Section VI-B1 text):\n";
  core::check_line(std::cout, "overall avg slowdown, in-order", 0.15,
                   res.mean("slowdown", {{"core", "inorder"}}));
  core::check_line(std::cout, "overall avg slowdown, OOO", 0.22,
                   res.mean("slowdown", {{"core", "ooo"}}));
  core::check_line(std::cout, "NAS avg slowdown ~0 (in-order)", 0.01,
                   res.mean("slowdown", {{"suite", "NAS"}, {"core", "inorder"}}), 3.0);
  core::check_line(std::cout, "Rodinia avg slowdown (in-order)", 0.16,
                   res.mean("slowdown", {{"suite", "Rodinia"}, {"core", "inorder"}}));
  core::check_line(
      std::cout, "PARSEC-large avg (in-order)", 0.23,
      res.mean("slowdown", {{"suite", "PARSEC"}, {"input", "large"}, {"core", "inorder"}}));
  core::check_line(
      std::cout, "PARSEC-large avg (OOO)", 0.41,
      res.mean("slowdown", {{"suite", "PARSEC"}, {"input", "large"}, {"core", "ooo"}}));
  core::check_line(std::cout, "worst benchmark NW (in-order)", 0.79,
                   slowdown_of("Rodinia/nw/default", "inorder"));
  core::check_line(std::cout, "worst benchmark NW (OOO)", 0.55,
                   slowdown_of("Rodinia/nw/default", "ooo"), 1.0);
  core::check_line(std::cout, "streamcluster-large slowdown (in-order)", 0.57,
                   slowdown_of("PARSEC/streamcluster/large", "inorder"));
  core::check_line(
      std::cout, "streamcluster-large LLC miss rate > 60%", 0.60,
      res.num(res.find({{"bench", "PARSEC/streamcluster/large"}, {"core", "inorder"}}),
              "llc_miss_rate"));
  core::check_line(
      std::cout, "streamcluster-medium LLC miss rate < 0.5%", 0.005,
      res.num(res.find({{"bench", "PARSEC/streamcluster/medium"}, {"core", "inorder"}}),
              "llc_miss_rate"),
      3.0);
  return 0;
}
