#include "phot/links.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace photorack::phot {

int LinkTechnology::links_for_escape(GBps escape) const {
  const Gbps need = to_gbits(escape);
  return static_cast<int>(std::ceil(need.value / bandwidth.value));
}

Watts LinkTechnology::power_for_escape(GBps escape) const {
  return power_of(energy, to_gbits(escape));
}

namespace {

const std::array<LinkTechnology, 5>& registry() {
  // Table I of the paper.  The 2 TB/s sizing column is computed, not stored:
  // see links_for_escape()/power_for_escape().
  static const std::array<LinkTechnology, 5> kLinks = {{
      {"100G-Ethernet", Gbps{100}, PjPerBit{30}, Gbps{25}, 4, false, "[80][81]"},
      {"400G-Ethernet", Gbps{400}, PjPerBit{30}, Gbps{100}, 4, false, "[82]"},
      {"TeraPHY-768G", Gbps{768}, PjPerBit{0.9}, Gbps{32}, 24, true, "[73]"},
      {"Comb-1T", Gbps{1024}, PjPerBit{0.45}, Gbps{16}, 64, true, "[83]"},
      {"Comb-2T", Gbps{2048}, PjPerBit{0.3}, Gbps{16}, 128, true, "[83]"},
  }};
  return kLinks;
}

}  // namespace

std::span<const LinkTechnology> table1_links() { return registry(); }

const LinkTechnology& link_by_name(const std::string& name) {
  for (const auto& l : registry())
    if (l.name == name) return l;
  throw std::out_of_range("unknown link technology: " + name);
}

int CombLaserSource::sources_for(int fibers, int channels) const {
  if (usable_lines <= 0) throw std::logic_error("comb source with no lines");
  const int combs_per_fiber = (channels + usable_lines - 1) / usable_lines;
  return fibers * combs_per_fiber;
}

}  // namespace photorack::phot
