// The observability layer's contracts:
//
//  - TraceRecorder emits valid Chrome-trace-event JSON keyed on sim time,
//    with non-negative span durations, monotone instant timestamps, and a
//    flight-recorder ring that evicts oldest-first.
//  - MetricsRegistry enforces its registration/update discipline and
//    snapshots rows in a stable column order.
//  - Profiler rolls scopes up into the BENCH_results.json schema.
//  - THE contract: attaching any of it to a co-simulation changes nothing —
//    every report field and every campaign row stays byte-identical, for
//    any --jobs level.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cosim/rack_cosim.hpp"
#include "obs/obs.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/sweep_runner.hpp"
#include "workloads/usage.hpp"

namespace photorack {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (same shape as the manifest
// suite's): enough to guarantee strict consumers parse the trace.  CI
// additionally loads emitted traces through python3 json.load.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    return number_or_literal();
  }
  bool object() {
    ++i_;
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }
  bool array() {
    ++i_;
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }
  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\') {
        ++i_;
        continue;
      }
      if (s_[i_] == '"') {
        ++i_;
        return true;
      }
    }
    return false;
  }
  bool number_or_literal() {
    const std::size_t start = i_;
    while (i_ < s_.size() && std::string("-+.eE0123456789truefalsnl").find(s_[i_]) !=
                                 std::string::npos)
      ++i_;
    return i_ > start;
  }
  bool peek(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t'))
      ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::string trace_json(const obs::TraceRecorder& trace) {
  std::ostringstream os;
  trace.write_json(os);
  return os.str();
}

/// Values of `"key":<number>` on every event line that also contains
/// `marker` (write_json emits one event per line), in file order.
std::vector<double> values_on_lines(const std::string& json, const std::string& marker,
                                    const std::string& key) {
  std::vector<double> out;
  std::istringstream lines(json);
  std::string line;
  const std::string needle = "\"" + key + "\":";
  while (std::getline(lines, line)) {
    if (line.find(marker) == std::string::npos) continue;
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) continue;
    out.push_back(std::stod(line.substr(at + needle.size())));
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorder, EmitsValidTraceEventJson) {
  obs::TraceRecorder trace;
  trace.instant(obs::Track::kJobs, "arrival", 1 * sim::kPsPerUs);
  trace.counter(obs::Track::kPower, "rack_power_w", 2 * sim::kPsPerUs, 123.5);
  trace.complete(obs::Track::kFlows, "flow", 1 * sim::kPsPerUs, 5 * sim::kPsPerUs,
                 {{"gbps", 12.5}, {"src", 3.0}});
  const std::string json = trace_json(trace);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Track metadata names every lane for Perfetto.
  for (const char* lane : {"\"sim\"", "\"jobs\"", "\"flows\"", "\"power\""})
    EXPECT_NE(json.find(lane), std::string::npos) << lane;
}

TEST(TraceRecorder, SpanTimestampsAreSimTimeInMicroseconds) {
  obs::TraceRecorder trace;
  // 3 us to 7 us: ts 3.0, dur 4.0 in the trace's microsecond unit.
  trace.complete(obs::Track::kJobs, "job", 3 * sim::kPsPerUs, 7 * sim::kPsPerUs);
  const std::string json = trace_json(trace);
  const auto ts = values_on_lines(json, "\"ph\":\"X\"", "ts");
  const auto dur = values_on_lines(json, "\"ph\":\"X\"", "dur");
  ASSERT_EQ(ts.size(), 1u);
  ASSERT_EQ(dur.size(), 1u);
  EXPECT_DOUBLE_EQ(ts[0], 3.0);
  EXPECT_DOUBLE_EQ(dur[0], 4.0);
}

TEST(TraceRecorder, NestedSpansStayWithinParentAndDurationsNonNegative) {
  obs::TraceRecorder trace;
  const sim::TimePs outer_b = 0, outer_e = 100 * sim::kPsPerUs;
  const sim::TimePs inner_b = 10 * sim::kPsPerUs, inner_e = 50 * sim::kPsPerUs;
  // Spans are recorded at close time, so the inner span lands first.
  trace.complete(obs::Track::kJobs, "inner", inner_b, inner_e);
  trace.complete(obs::Track::kJobs, "outer", outer_b, outer_e);
  const std::string json = trace_json(trace);
  const auto ts = values_on_lines(json, "\"ph\":\"X\"", "ts");
  const auto dur = values_on_lines(json, "\"ph\":\"X\"", "dur");
  ASSERT_EQ(ts.size(), 2u);
  ASSERT_EQ(dur.size(), 2u);
  for (const double d : dur) EXPECT_GE(d, 0.0);
  // Nesting: inner's [ts, ts+dur] within outer's.
  EXPECT_GE(ts[0], ts[1]);
  EXPECT_LE(ts[0] + dur[0], ts[1] + dur[1]);
}

TEST(TraceRecorder, BackwardsSpanThrows) {
  obs::TraceRecorder trace;
  EXPECT_THROW(trace.complete(obs::Track::kJobs, "job", 10, 5), std::invalid_argument);
}

TEST(TraceRecorder, RingEvictsOldestInRecordOrder) {
  obs::TraceRecorder trace(3);
  for (int i = 1; i <= 5; ++i)
    trace.instant(obs::Track::kJobs, "e" + std::to_string(i), i * sim::kPsPerUs);
  EXPECT_EQ(trace.events(), 3u);
  EXPECT_EQ(trace.recorded(), 5u);
  EXPECT_EQ(trace.dropped(), 2u);
  const std::string json = trace_json(trace);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(json.find("\"e1\""), std::string::npos);
  EXPECT_EQ(json.find("\"e2\""), std::string::npos);
  for (const char* kept : {"\"e3\"", "\"e4\"", "\"e5\""})
    EXPECT_NE(json.find(kept), std::string::npos) << kept;
}

TEST(TraceRecorder, UnwritablePathThrowsNamingThePath) {
  obs::TraceRecorder trace;
  trace.instant(obs::Track::kSim, "x", 0);
  try {
    trace.write_json_file("/dev/null/nope/trace.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/null/nope/trace.json"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ColumnsFollowRegistrationOrder) {
  obs::MetricsRegistry m;
  m.counter("offered");
  m.gauge("backlog");
  m.histogram("wait_ms");
  const std::vector<std::string> want = {"time_ms", "offered", "backlog",
                                         "wait_ms_p50", "wait_ms_p99"};
  EXPECT_EQ(m.columns(), want);
}

TEST(MetricsRegistry, SampleSnapshotsEveryMetric) {
  obs::MetricsRegistry m;
  const auto c = m.counter("offered");
  const auto g = m.gauge("backlog");
  const auto h = m.histogram("wait_ms");
  m.inc(c);
  m.inc(c, 2.0);
  m.set(g, 7.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) m.observe(h, v);
  m.sample(5.0);
  m.set(g, 9.0);
  m.sample(10.0);

  ASSERT_EQ(m.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(m.rows()[0].t_ms, 5.0);
  EXPECT_DOUBLE_EQ(m.rows()[0].values[0], 3.0);  // counter level
  EXPECT_DOUBLE_EQ(m.rows()[0].values[1], 7.0);  // gauge
  EXPECT_GT(m.rows()[0].values[2], 0.0);         // wait_ms_p50
  EXPECT_DOUBLE_EQ(m.rows()[1].values[1], 9.0);

  const auto rows = m.string_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), m.columns().size());
}

TEST(MetricsRegistry, EnforcesItsDiscipline) {
  obs::MetricsRegistry m;
  const auto c = m.counter("offered");
  const auto g = m.gauge("backlog");
  EXPECT_THROW(m.counter("offered"), std::invalid_argument);  // duplicate name
  EXPECT_THROW(m.gauge(""), std::invalid_argument);
  EXPECT_THROW(m.inc(c, -1.0), std::invalid_argument);  // counters are monotone
  EXPECT_THROW(m.set(c, 1.0), std::logic_error);        // kind mismatch
  EXPECT_THROW(m.observe(g, 1.0), std::logic_error);
  m.sample(1.0);
  EXPECT_THROW(m.sample(0.5), std::invalid_argument);  // time went backwards
  EXPECT_THROW(m.gauge("late"), std::logic_error);     // register after sampling
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(Profiler, RollsScopesUpIntoBenchSchema) {
  obs::Profiler prof;
  const auto a = prof.scope("layer.fast");
  const auto b = prof.scope("layer.slow");
  EXPECT_EQ(prof.scope("layer.fast"), a);  // scope() dedupes by name
  prof.scope("layer.never_hit");
  prof.record(a, 100);
  prof.record(a, 300);
  prof.record(b, 1000);

  ASSERT_EQ(prof.entries().size(), 3u);
  EXPECT_EQ(prof.entries()[0].count, 2u);
  EXPECT_DOUBLE_EQ(prof.entries()[0].ns_per_op(), 200.0);

  std::ostringstream os;
  prof.write_bench_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"layer.fast\""), std::string::npos);
  EXPECT_NE(json.find("\"ns_per_op\""), std::string::npos);
  // Zero-hit scopes have no ns/op to compare — skipped.
  EXPECT_EQ(json.find("never_hit"), std::string::npos);
}

TEST(Profiler, UnwritablePathThrowsNamingThePath) {
  obs::Profiler prof;
  prof.record(prof.scope("s"), 1);
  EXPECT_THROW(prof.write_bench_json_file("/dev/null/nope/bench.json"),
               std::runtime_error);
}

TEST(Profiler, NullProfilerScopedTimerIsANoop) {
  obs::ScopedTimer timer(nullptr, 0);  // must not touch the clock or crash
  SUCCEED();
}

// ---------------------------------------------------------------------------
// The non-negotiable contract: observation never perturbs the simulation.
// ---------------------------------------------------------------------------

cosim::CosimConfig small_cosim() {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = 6.0;
  cfg.sim_time = 60 * sim::kPsPerMs;
  cfg.admission = cosim::AdmissionPolicy::kQueue;
  return cfg;
}

void expect_same_report(const cosim::CosimReport& a, const cosim::CosimReport& b) {
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.jobs.censored_waiting, b.jobs.censored_waiting);
  EXPECT_EQ(a.jobs.censored_running, b.jobs.censored_running);
  EXPECT_EQ(a.jobs.wait_ms.p50, b.jobs.wait_ms.p50);
  EXPECT_EQ(a.jobs.wait_ms.p99, b.jobs.wait_ms.p99);
  EXPECT_EQ(a.jobs.slowdown.p999, b.jobs.slowdown.p999);
  EXPECT_EQ(a.jobs.fct_ms.p99, b.jobs.fct_ms.p99);
  EXPECT_EQ(a.jobs.mean_cpu_utilization, b.jobs.mean_cpu_utilization);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.flows.stale_mispicks, b.flows.stale_mispicks);
  EXPECT_EQ(a.mean_speed_fraction, b.mean_speed_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completed_at, b.completed_at);
}

TEST(ObsContract, FullBundleLeavesTheCosimReportBitIdentical) {
  const auto rack = rack::RackConfig{};
  const auto usage = workloads::UsageModel::cori();
  const auto base = cosim::run_rack_cosim(
      rack, disagg::AllocationPolicy::kDisaggregated, usage, small_cosim());

  obs::ObsConfig cfg;
  cfg.trace_enabled = true;
  cfg.metrics_enabled = true;
  cfg.profile_enabled = true;
  obs::ObsBundle bundle(cfg);
  const auto observed =
      cosim::run_rack_cosim(rack, disagg::AllocationPolicy::kDisaggregated, usage,
                            small_cosim(), bundle.handles());

  expect_same_report(base, observed);
  // The instrumentation did fire: a trace, metrics rows and profile hits all
  // exist — identical results do not mean the obs run silently recorded
  // nothing.
  EXPECT_GT(bundle.trace()->recorded(), 0u);
  EXPECT_GT(bundle.metrics()->rows().size(), 1u);
  EXPECT_GT(bundle.profiler()->entries().size(), 0u);

  // The metrics sampler rides the sim event queue, so the EVENT counters may
  // differ — but only them, and never the trajectory (everything above).
  EXPECT_GE(observed.jobs.events.dispatched, base.jobs.events.dispatched);
}

TEST(ObsContract, TraceOnlyBundleAlsoKeepsEventCountsIdentical) {
  const auto rack = rack::RackConfig{};
  const auto usage = workloads::UsageModel::cori();
  const auto base = cosim::run_rack_cosim(
      rack, disagg::AllocationPolicy::kDisaggregated, usage, small_cosim());

  obs::ObsConfig cfg;
  cfg.trace_enabled = true;  // no sampler: the queue sees the same events
  obs::ObsBundle bundle(cfg);
  const auto observed =
      cosim::run_rack_cosim(rack, disagg::AllocationPolicy::kDisaggregated, usage,
                            small_cosim(), bundle.handles());
  expect_same_report(base, observed);
  EXPECT_EQ(observed.jobs.events.scheduled, base.jobs.events.scheduled);
  EXPECT_EQ(observed.jobs.events.dispatched, base.jobs.events.dispatched);
  EXPECT_EQ(observed.jobs.events.pending_peak, base.jobs.events.pending_peak);
}

TEST(ObsContract, CosimTraceIsValidJsonWithMonotoneInstantsAndNonNegativeSpans) {
  obs::ObsConfig cfg;
  cfg.trace_enabled = true;
  obs::ObsBundle bundle(cfg);
  (void)cosim::run_rack_cosim(rack::RackConfig{},
                              disagg::AllocationPolicy::kDisaggregated,
                              workloads::UsageModel::cori(), small_cosim(),
                              bundle.handles());
  const std::string json = trace_json(*bundle.trace());
  EXPECT_TRUE(JsonChecker(json).valid());

  // Instants are recorded in dispatch order, so their timestamps must be
  // monotone; spans close later but may begin earlier, so only their
  // durations are constrained.
  const auto instants = values_on_lines(json, "\"ph\":\"i\"", "ts");
  ASSERT_GT(instants.size(), 10u);
  for (std::size_t i = 1; i < instants.size(); ++i)
    EXPECT_GE(instants[i], instants[i - 1]) << "instant " << i;
  const auto durs = values_on_lines(json, "\"ph\":\"X\"", "dur");
  ASSERT_GT(durs.size(), 10u);
  for (const double d : durs) EXPECT_GE(d, 0.0);
  // Counter samples (the power track) are dispatch-ordered too.
  const auto counters = values_on_lines(json, "\"ph\":\"C\"", "ts");
  ASSERT_GT(counters.size(), 10u);
  for (std::size_t i = 1; i < counters.size(); ++i)
    EXPECT_GE(counters[i], counters[i - 1]) << "counter " << i;
}

TEST(ObsContract, MetricsTimeSeriesIsMonotoneAndFullWidth) {
  obs::ObsConfig cfg;
  cfg.metrics_enabled = true;
  cfg.metrics_interval = 2 * sim::kPsPerMs;
  obs::ObsBundle bundle(cfg);
  (void)cosim::run_rack_cosim(rack::RackConfig{},
                              disagg::AllocationPolicy::kDisaggregated,
                              workloads::UsageModel::cori(), small_cosim(),
                              bundle.handles());
  const auto& rows = bundle.metrics()->rows();
  ASSERT_GT(rows.size(), 5u);
  const std::size_t width = bundle.metrics()->columns().size();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].values.size() + 1, width);  // +1 = time_ms
    if (i) EXPECT_GT(rows[i].t_ms, rows[i - 1].t_ms);
  }
}

TEST(ObsContract, CampaignRowsAreByteIdenticalWithObsOnAcrossJobsLevels) {
  const auto& campaign = scenario::campaign_by_name("cosim_acceptance");
  scenario::SweepGrid base_grid = campaign.default_grid();
  base_grid.override_axis("cosim.arrivals_per_ms", {"6"});
  base_grid.override_axis("cosim.horizon_ms", {"60"});

  scenario::SweepGrid obs_grid = base_grid;
  obs_grid.override_axis("obs.trace.enabled", {"true"});
  obs_grid.override_axis("obs.metrics.enabled", {"true"});
  obs_grid.override_axis("obs.profile.enabled", {"true"});

  const auto base = scenario::SweepRunner({.jobs = 2}).run(campaign, base_grid);
  const auto traced = scenario::SweepRunner({.jobs = 2}).run(campaign, obs_grid);
  const auto traced_serial =
      scenario::SweepRunner({.jobs = 1}).run(campaign, obs_grid);

  ASSERT_EQ(base.rows.size(), traced.rows.size());
  ASSERT_EQ(base.rows.size(), traced_serial.rows.size());
  for (std::size_t i = 0; i < base.rows.size(); ++i) {
    EXPECT_EQ(base.rows[i].cells, traced.rows[i].cells) << "row " << i;
    EXPECT_EQ(traced.rows[i].cells, traced_serial.rows[i].cells) << "row " << i;
  }
}

}  // namespace
}  // namespace photorack
