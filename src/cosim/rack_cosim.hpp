#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "collectives/collective.hpp"
#include "collectives/runner.hpp"
#include "config/enum_codec.hpp"
#include "disagg/allocator.hpp"
#include "disagg/job_scheduler.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_scheduler.hpp"
#include "net/flow_sim.hpp"
#include "obs/obs.hpp"
#include "phot/power.hpp"
#include "rack/chips.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "traffic/arrival.hpp"
#include "workloads/usage.hpp"

namespace photorack::cosim {

/// What happens to a job the rack cannot place at arrival.
enum class AdmissionPolicy {
  kDrop,   ///< reject immediately (the classic loss system; wait is always 0)
  kQueue,  ///< hold in a bounded FIFO backlog; place in order as jobs finish
};

/// Canonical CLI/axis/registry spelling of AdmissionPolicy.
const config::EnumCodec<AdmissionPolicy>& admission_policy_codec();

/// Closed-loop rack co-simulation (§II-A telemetry × §IV fabric × §VI-C
/// power, evaluated *together* under one live job stream).
///
/// One sim::EventQueue drives three coupled layers:
///
///   jobs    — Poisson arrivals whose demands come from workloads::UsageModel
///   fabric  — each placed job opens CPU↔memory (and GPU↔memory) flows on a
///             net::WavelengthFabric through net::FlowEngine
///   power   — every allocation change steps a phot::EnergyTrace at the
///             utilization-scaled rack power level
///
/// The loop closes through contention: a job's measured satisfied fraction
/// (reserved / requested fabric bandwidth at admission) stretches its
/// residual duration, so congested racks hold resources longer, which
/// raises occupancy, which lowers acceptance — the dynamics an open-loop
/// job stream (disagg::JobStreamSim) cannot express.
struct CosimConfig {
  // --- job stream (mirrors disagg::JobSimConfig) ---
  double arrivals_per_ms = 4.0;
  sim::TimePs mean_duration = 20 * sim::kPsPerMs;
  sim::TimePs sim_time = 400 * sim::kPsPerMs;
  std::uint64_t seed = 7;
  int max_job_nodes = 8;  // job breadth drawn in [1, max]

  // --- open-loop traffic engine ---
  /// Arrival-process shape (poisson|mmpp|diurnal|trace).  The base rate
  /// stays on arrivals_per_ms; every stochastic process matches it in
  /// long-run mean, so load sweeps compare like against like.  The default
  /// Poisson process reproduces the pre-engine gap stream byte for byte.
  traffic::ArrivalConfig arrival;
  /// Unplaceable jobs: drop (default, the historical behavior) or hold in a
  /// bounded FIFO backlog — under queueing, job WAIT becomes a real
  /// production metric instead of identically zero.
  AdmissionPolicy admission = AdmissionPolicy::kDrop;
  /// Backlog bound for kQueue; arrivals beyond it are dropped.
  int queue_cap = 64;

  // --- contention feedback ---
  /// true: closed loop — residual duration is stretched by 1/satisfied.
  /// false: open loop — flows still occupy the fabric (statistics accrue)
  /// but durations are never stretched.  Same seed ⇒ identical job plans in
  /// both modes, so closed-vs-open is a controlled comparison.
  bool contention_feedback = true;
  /// Floor on the per-job speed fraction (caps the stretch at 1/floor), so
  /// one fully blocked flow cannot pin a job forever.
  double min_speed_fraction = 0.05;

  // --- co-sim fabric geometry (the "net" registry section) ---
  /// The fabric's MCM count is deliberately smaller than the paper's
  /// 350-MCM rack: job traffic concentrates on the handful of memory-pool
  /// MCMs a rack slice actually spans, which is where the contention the
  /// loop feeds back on lives.
  net::FabricSliceConfig fabric;

  // --- traffic model ---
  /// Every placed job opens one CPU↔memory flow per node of breadth, with
  /// demand drawn from workloads::FlowDemandModel::cpu_memory() × this
  /// scale; GPU jobs add one GPU↔memory flow per node at gpu_traffic_mult ×
  /// the same distribution.
  double traffic_scale = 1.0;
  double gpu_traffic_mult = 4.0;

  // --- power model (§VI-C, made utilization-aware) ---
  /// Idle fraction of each part's full power; the remainder scales linearly
  /// with that pool's utilization.
  double idle_power_fraction = 0.30;
  phot::BaselineRackPower baseline{};  // nodes/gpus_per_node resynced to rack

  // --- fault injection (the "fault" registry section) ---
  /// Deterministic fault timeline + resilience policy.  Disabled by default;
  /// when disabled the engine is never constructed, no events are scheduled
  /// and every output byte matches a build without the feature.
  fault::FaultConfig fault;

  // --- ML training jobs (the "ml" registry section) ---
  /// Collective-communication training stream (src/collectives).  Disabled
  /// by default; when disabled (or mix_fraction == 0) no plan ever branches
  /// to the ML path, no extra RNG draws happen, and every output byte
  /// matches a build without the feature.
  collectives::MlConfig ml;
};

/// Tail telemetry of the training-job stream (all zero when `ml.*` is off).
struct MlStats {
  bool enabled = false;
  std::uint64_t jobs_offered = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t steps = 0;             // training steps finished
  std::uint64_t collective_phases = 0; // flow phases executed across all steps
  disagg::TailStats step_ms;           // per-step wall time (compute + collective)
  disagg::TailStats coll_frac;         // collective time / step time, in [0,1]
  disagg::TailStats straggler;         // per-collective straggler stretch, >= 1
};

/// Sketch-backed accumulator behind MlStats; merges are exact and
/// order-independent so cluster aggregation never moves a quantile
/// (same contract as disagg::JobStreamStats).
class MlStreamStats {
 public:
  void offer() { ++offered_; }
  void accept() { ++accepted_; }
  void complete() { ++completed_; }
  void record_step(double step_ms, double coll_frac, double straggler, int phases);
  void merge(const MlStreamStats& other);
  [[nodiscard]] MlStats report() const;

 private:
  std::uint64_t offered_ = 0, accepted_ = 0, completed_ = 0;
  std::uint64_t steps_ = 0, phases_ = 0;
  sim::QuantileSketch step_ms_, coll_frac_, straggler_;
};

struct CosimReport {
  disagg::JobSimReport jobs;   // offered/accepted/utilization means
  net::FlowSimReport flows;    // satisfaction, indirection, blocking
  double mean_speed_fraction = 1.0;  // mean per-job satisfied fraction
  double mean_stretch = 1.0;         // mean duration multiplier (>= 1)
  double max_stretch = 1.0;
  double energy_joules = 0.0;
  double mean_power_w = 0.0;
  double peak_power_w = 0.0;
  double photonic_power_w = 0.0;  // constant lasers-on fabric overhead
  sim::TimePs completed_at = 0;   // queue time when the report was taken
  fault::FaultStats fault;        // all-zero defaults when faults are off
  MlStats ml;                     // all-zero defaults when ml.* is off
};

class RackCosim {
 public:
  /// `obs` attaches passive observability (trace spans per job/flow, a
  /// periodic metrics sampler, profiler scopes on the hot paths).  The
  /// default null bundle costs one pointer test per site; attaching never
  /// changes placement, routing, RNG draws, or any reported statistic —
  /// campaign outputs are byte-identical with and without it (pinned by
  /// test_obs).
  RackCosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
            const workloads::UsageModel& usage, CosimConfig cfg = {},
            obs::Obs obs = {});

  // Queued event handlers capture `this`; a copied or moved instance would
  // leave them pointing at the original object.
  RackCosim(const RackCosim&) = delete;
  RackCosim& operator=(const RackCosim&) = delete;

  /// Process every event strictly before time `t`.
  void advance_to(sim::TimePs t);
  /// Drain everything: completions of jobs still running past the arrival
  /// horizon (stretched durations can run far beyond sim_time).
  void finish();

  [[nodiscard]] sim::TimePs now() const { return queue_.now(); }
  [[nodiscard]] CosimReport report() const;
  [[nodiscard]] const disagg::RackAllocator& allocator() const { return allocator_; }
  [[nodiscard]] double fabric_utilization() const { return engine_.fabric_utilization(); }
  [[nodiscard]] std::uint64_t live_jobs() const { return live_jobs_; }
  [[nodiscard]] std::size_t queued_jobs() const { return backlog_.size(); }

  // Everything one job will do, drawn up front from the job's own RNG child
  // stream at arrival — *before* placement.  Acceptance therefore never
  // perturbs later jobs' draws: the offered stream is identical across
  // policies and feedback modes, which is what makes closed-vs-open and
  // static-vs-disaggregated controlled comparisons.  Public so a cluster
  // coordinator (cluster::ClusterCosim) can carry a plan from the rack that
  // drew it to the rack that runs it; the remote_* tags are inert for
  // rack-local jobs (cap 1.0 multiplies speed by exactly 1.0, link -1 never
  // fires the close handler), so a standalone rack is bit-identical to one
  // built before spill-over existed.
  struct JobPlan {
    disagg::JobRequest request;
    int breadth = 1;
    sim::TimePs base_hold = 1;
    std::vector<net::FlowSpec> flows;
    // --- cluster spill-over tags ---
    double remote_speed_cap = 1.0;  // inter-rack grant / requested Gb/s
    int remote_link = -1;           // InterRackFabric link id; -1 = local
    double remote_gbps = 0.0;       // reserved inter-rack bandwidth

    /// Training-job plan (src/collectives): inert for HPC jobs (is_ml =
    /// false, all other fields never read), so a rack without `ml.*` runs
    /// the historical job path byte for byte.  Fully drawn at arrival like
    /// everything else in the plan, so spilling an ML job to another rack
    /// carries its collective schedule with it.
    struct MlPlan {
      bool is_ml = false;
      collectives::Pattern pattern = collectives::Pattern::kRingAllReduce;
      std::vector<int> endpoints;  // fabric MCM per rank
      double bytes = 0.0;          // gradient payload per collective
      int steps = 0;
      sim::TimePs compute = 0;     // per-step compute segment (jitter folded in)
    };
    MlPlan ml;
  };

  /// Offered a job the rack cannot admit (drop-mode placement failure or a
  /// full kQueue backlog).  Return true to take ownership — the rack then
  /// counts the job as offered-but-not-accepted locally and neither drops
  /// nor traces it.  Called inside the event loop; a cluster coordinator
  /// must only record the request (per-rack outbox) and act at a barrier.
  using SpillHandler =
      std::function<bool(const JobPlan& plan, sim::TimePs arrived)>;
  /// A spilled job released its inter-rack reservation: on completion or
  /// revocation (placed = true) or because it could not be admitted at the
  /// target rack either (placed = false — the spill was lost).
  using RemoteCloseHandler =
      std::function<void(int link, double gbps, sim::TimePs at, bool placed)>;

  void set_spill_handler(SpillHandler h) { spill_ = std::move(h); }
  void set_remote_close_handler(RemoteCloseHandler h) {
    remote_close_ = std::move(h);
  }

  /// Deliver a job spilled from another rack: at `deliver_at` (the spill
  /// time plus the inter-rack hop) the plan joins this rack's admission
  /// path exactly like a local arrival, except the job is NOT offered here
  /// (its origin already counted it) and keeps its original `arrived` time
  /// so wait statistics include the transfer.  If this rack cannot admit it
  /// either, the remote-close handler fires with placed = false.
  void inject_remote_job(JobPlan plan, sim::TimePs deliver_at,
                         sim::TimePs arrived);

  /// Timestamp of this rack's next pending event (INT64_MAX when drained) —
  /// the quantity a conservative-window cluster loop takes the minimum of.
  [[nodiscard]] sim::TimePs next_event_time() { return queue_.next_time(); }

  // --- report-assembly accessors (cluster aggregation; see report()) ---
  /// Copy of the stream statistics with censored waits folded in: every
  /// *recorded* backlog entry contributes its wait-so-far, and `censored`
  /// receives that count.  Fault-requeued entries (record = false) are
  /// excluded — their original wait was already recorded at first placement.
  [[nodiscard]] disagg::JobStreamStats censored_stream_stats(
      std::uint64_t& censored) const;
  [[nodiscard]] const sim::RunningStats& speed_stats() const { return speed_; }
  [[nodiscard]] const sim::RunningStats& stretch_stats() const { return stretch_; }
  [[nodiscard]] const MlStreamStats& ml_stream_stats() const { return mlstats_; }

 private:
  /// A planned job waiting in the kQueue backlog for resources.  `retries`
  /// and `record` carry fault-requeue state: a re-admitted victim keeps its
  /// original arrival time and is never double-counted in the acceptance /
  /// wait statistics (record = false).
  struct PendingJob {
    JobPlan plan;
    sim::TimePs arrived = 0;
    int retries = 0;
    bool record = true;
  };

  /// A running job the fault engine can find, revoke, degrade or complete.
  /// Only populated state the completion/fault paths need; keyed by a
  /// cosim-local id so the completion event is cancellable on revocation.
  struct LiveJob {
    JobPlan plan;
    std::shared_ptr<disagg::Allocation> alloc;
    std::vector<std::uint64_t> flow_ids;
    std::vector<char> flow_open;      // parallel to flow_ids; 0 once closed
    sim::TimePs arrived = 0;          // original arrival (survives requeues)
    sim::TimePs placed_at = 0;        // this segment's placement time
    sim::TimePs segment_start = 0;    // last (re)stretch point
    double speed = 1.0;               // clamped satisfied fraction in force
    double remaining_base = 0.0;      // unstretched work left at segment_start
    std::uint64_t completion = 0;     // cancellable completion event id
    int retries = 0;
    int home_node = -1;               // disagg: node whose CPUs host the job
    std::vector<int> bound_nodes;     // static: exclusively owned nodes

    // --- training-job state (null/zero for HPC jobs) ---
    /// Live collective execution; behind a unique_ptr so the runner's queued
    /// phase event survives LiveJob moves (unordered_map rehash).
    std::unique_ptr<collectives::CollectiveRunner> runner;
    int ml_step = 0;                  // steps finished so far
    sim::TimePs step_started = 0;     // current step's compute-segment start
    sim::TimePs collective_started = 0;
  };

  rack::RackConfig rack_;
  CosimConfig cfg_;
  workloads::UsageModel usage_;
  workloads::FlowDemandModel demand_;
  disagg::RackAllocator allocator_;
  std::unique_ptr<net::WavelengthFabric> fabric_;
  net::FlowEngine engine_;
  sim::EventQueue queue_;
  sim::Rng base_rng_;
  sim::Rng arrival_rng_;
  std::unique_ptr<traffic::ArrivalProcess> arrival_process_;
  std::uint64_t next_job_index_ = 0;

  std::uint64_t live_jobs_ = 0;
  std::deque<PendingJob> backlog_;
  disagg::JobStreamStats stats_;  // shared with JobStreamSim: same telemetry
  MlStreamStats mlstats_;         // training-stream tails (untouched when ml off)
  sim::RunningStats speed_, stretch_;
  phot::EnergyTrace energy_;
  double photonic_w_ = 0.0;

  // --- fault engine (all empty / untouched when cfg_.fault.enabled=false) ---
  bool faults_on_ = false;
  std::unique_ptr<fault::FaultScheduler> fault_sched_;
  fault::FaultStats fstats_;
  std::unordered_map<std::uint64_t, LiveJob> live_map_;
  std::uint64_t next_live_id_ = 1;
  /// Per rack node: 0 = free, kNodeOffline = crashed, else the static job
  /// id exclusively holding it.  Disagg jobs never own entries here; their
  /// node dependency is the round-robin `home_node` on the LiveJob.
  static constexpr std::uint64_t kNodeOffline = ~std::uint64_t{0};
  std::vector<std::uint64_t> node_owner_;
  std::size_t next_home_ = 0;

  // --- cluster hooks (null for a standalone rack — zero behavior change) ---
  SpillHandler spill_;
  RemoteCloseHandler remote_close_;

  // --- observability (null by default; see attach contract on the ctor) ---
  obs::Obs obs_{};
  obs::Profiler::ScopeId sc_arrival_ = 0, sc_allocate_ = 0, sc_release_ = 0,
                         sc_sketch_ = 0, sc_fault_ = 0;
  /// Registered metric ids, valid only while obs_.metrics is attached.
  /// backlog_depth doubles as the censored-waiting count and live_jobs as
  /// the censored-running count (same quantities the report censors on).
  struct MetricIds {
    obs::MetricsRegistry::Id backlog_depth = 0, live_jobs = 0, fabric_util = 0,
                             pair_util_max = 0, pair_util_mean = 0,
                             satisfied_frac = 0, power_w = 0, energy_j = 0,
                             offered = 0, accepted = 0, wait_ms = 0;
    // Registered (and sampled) only when cfg_.fault.enabled, so the metrics
    // CSV schema is unchanged for fault-free runs.
    obs::MetricsRegistry::Id faults = 0, repairs = 0, interrupted = 0, killed = 0;
  };
  MetricIds m_{};

  [[nodiscard]] JobPlan make_plan(sim::Rng& rng) const;
  [[nodiscard]] JobPlan make_ml_plan(sim::Rng& rng) const;
  [[nodiscard]] double compute_power_w() const;
  void step_energy();
  void schedule_next_arrival();
  void on_arrival();
  bool try_start(const JobPlan& plan, sim::TimePs arrived, int retries = 0,
                 bool record = true);
  void complete_job(std::uint64_t job_id);
  void drain_backlog();

  // --- training-job step loop (reachable only for is_ml plans) ---
  void start_ml_step(std::uint64_t job_id);
  void on_ml_compute_done(std::uint64_t job_id);
  void on_ml_collective_done(std::uint64_t job_id,
                             const collectives::CollectiveResult& result);
  void setup_obs();
  void take_sample();
  void schedule_next_sample();

  // --- fault paths (reachable only when cfg_.fault.enabled) ---
  void on_fault(const fault::FaultEvent& ev);
  [[nodiscard]] std::vector<std::uint64_t> victims_of(const fault::FaultEvent& ev) const;
  void revoke_job(std::uint64_t job_id, const fault::FaultEvent& ev);
  void resume_degraded(std::uint64_t job_id, const fault::FaultEvent& ev);
  void schedule_retry(JobPlan plan, sim::TimePs arrived, int retries);
  void bind_nodes(std::uint64_t job_id);
  void unbind_nodes(const LiveJob& job);
  // Fault capacity effects ride the fabric's composable factor stack
  // (push_pair_factor / pop_pair_factor), so overlapping faults on the same
  // pair — an MCM crash atop a degraded laser — compose multiplicatively
  // and each repair removes exactly its own contribution.  `fail` pushes,
  // repair pops the same value.
  void scale_mcm_pairs(int mcm, double factor, bool fail);   // both directions
  void scale_laser_pairs(int src, double factor, bool fail); // src side only
  void close_remote(const JobPlan& plan, bool placed);
};

/// Run-to-completion convenience over RackCosim.
[[nodiscard]] CosimReport run_rack_cosim(const rack::RackConfig& rack,
                                         disagg::AllocationPolicy policy,
                                         const workloads::UsageModel& usage,
                                         const CosimConfig& cfg = {},
                                         obs::Obs obs = {});

}  // namespace photorack::cosim
