// Reproduces Fig 9: per-application GPU slowdown (total predicted cycles)
// for 25/30/35 ns of additional LLC<->HBM latency on an A100.  Thin wrapper
// over the scenario engine's "fig9" campaign (same sweep as
// `photorack_sweep --campaign fig9`) plus the paper-vs-measured checks.
#include <iostream>

#include "core/report.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"
#include "workloads/gpu_profiles.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 9: GPU slowdown at +25/30/35 ns",
                     "Fig 9 (Section VI-B3)");

  const auto& campaign = scenario::campaign_by_name("fig9");
  scenario::TableSink table(std::cout);
  const auto res = scenario::SweepRunner().run(campaign, {&table});

  std::cout << "\ntotal kernel launches modeled: "
            << workloads::total_gpu_kernel_launches() << " (paper: 1525)\n";

  std::cout << "\npaper-vs-measured (Section VI-B3):\n";
  core::check_line(std::cout, "average GPU slowdown at +35 ns", 0.0535,
                   res.mean("slowdown", {{"extra_ns", "35"}}));
  core::check_line(std::cout, "max GPU slowdown at +35 ns (Fig 11: ~12%)", 0.12,
                   res.max("slowdown", {{"extra_ns", "35"}}));
  core::check_line(std::cout, "kernel launches", 1525,
                   workloads::total_gpu_kernel_launches(), 0.01);
  return 0;
}
