// Reproduces Fig 11: latency tolerance of in-order CPUs, OOO CPUs and GPUs
// on the Rodinia benchmarks that run on both (GPUs tolerate +35 ns best,
// max ~12%).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 11: CPU vs GPU latency tolerance (Rodinia)",
                     "Fig 11 (Section VI-B4)");

  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  const auto cpu = core::run_cpu_sweep(opt);
  const auto gpu = core::run_gpu_sweep({0.0, 35.0});

  std::vector<double> gpus;
  sim::Table table({"Benchmark", "in-order CPU", "OOO CPU", "GPU"});
  for (const auto& row : core::fig11_rows(cpu, gpu)) {
    table.add_row({row.bench, sim::fmt_pct(row.inorder), sim::fmt_pct(row.ooo),
                   sim::fmt_pct(row.gpu)});
    gpus.push_back(row.gpu);
  }
  table.print(std::cout);

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "max GPU slowdown on shared Rodinia set", 0.12,
                   sim::max_of(gpus));
  std::cout << "shape check: every GPU slowdown should sit well below the "
               "CPU slowdowns for memory-bound benchmarks (nw, bfs).\n";
  return 0;
}
