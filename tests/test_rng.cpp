#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace photorack::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedReplays) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(37), 37u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_GT(c, n / 8 * 0.9);
    EXPECT_LT(c, n / 8 * 1.1);
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(-1.0, 2.0), 0.0);
}

TEST(Rng, ZipfBoundsAndSkew) {
  Rng rng(23);
  const std::uint64_t n = 1000;
  int low = 0, total = 20'000;
  for (int i = 0; i < total; ++i) {
    const auto z = rng.zipf(n, 1.1);
    ASSERT_GE(z, 1u);
    ASSERT_LE(z, n);
    if (z <= 10) ++low;
  }
  // With s=1.1, the top-10 ranks should carry a large share of the mass.
  EXPECT_GT(low, total / 4);
}

TEST(Rng, ChildStreamsAreIndependent) {
  Rng parent(101);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1() == c2()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ChildDerivationIsDeterministic) {
  Rng p1(55), p2(55);
  Rng a = p1.child(9);
  Rng b = p2.child(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BernoulliProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace photorack::sim
