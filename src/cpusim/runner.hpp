#pragma once

#include <cstdint>

#include "cpusim/core.hpp"

namespace photorack::cpusim {

/// One simulated benchmark run.
struct SimConfig {
  CoreConfig core;
  HierarchyConfig hierarchy;
  DramConfig dram;
  std::uint64_t warmup_instructions = 200'000;
  std::uint64_t measured_instructions = 1'000'000;
  /// Pre-walk the trace's footprint through the hierarchy before timing so
  /// compulsory misses do not contaminate the measurement (the trace must
  /// report footprint_bytes()).  At most `prewarm_cap_bytes` are walked;
  /// beyond ~2x the LLC, residency is equivalent for cyclic patterns.
  bool prewarm_working_set = true;
  std::uint64_t prewarm_cap_bytes = 64ULL << 20;
};

struct SimResult {
  std::uint64_t instructions = 0;
  double cycles = 0.0;
  double time_ns = 0.0;
  double ipc = 0.0;
  double llc_miss_rate = 0.0;          // misses / LLC accesses (as in Fig 7)
  double llc_mpki = 0.0;               // misses per kilo-instruction
  double llc_miss_stall_cycles = 0.0;  // Fig-relevant: grows 50-150% with +35ns
  double mem_op_fraction = 0.0;
  double dram_row_hit_rate = 0.0;
};

/// Run `trace` through the configured core.  Warmup primes the caches and
/// DRAM row buffers without counting; measurement then covers exactly
/// `measured_instructions`.
[[nodiscard]] SimResult run_simulation(TraceSource& trace, const SimConfig& cfg);

/// Convenience: relative slowdown of `perturbed` vs `baseline` execution
/// time (0.15 = 15% slower).
[[nodiscard]] double slowdown(const SimResult& baseline, const SimResult& perturbed);

}  // namespace photorack::cpusim
