// Miss-profile record/replay engine: replay_profile(p, extra) must be
// BIT-IDENTICAL to a from-scratch run_simulation at that extra_ns — that
// equivalence is what lets run_cpu_sweep and the fig6/fig8 campaigns trade
// K simulations for 1 recording + K replays without moving a single output
// byte.  Pinned here across all three core kinds, dependent/independent
// mixes, prefetch on/off, a dense 16-point latency grid (including
// non-integral extras that force the generic replay path), zero-miss
// workloads, and the in-order O(1) fast path vs the generic walk.
#include "cpusim/miss_profile.hpp"

#include <gtest/gtest.h>

#include "cpusim/runner.hpp"
#include "workloads/generators.hpp"

namespace photorack::cpusim {
namespace {

// EXPECT_EQ on doubles is exact (bitwise for non-NaN values): intentional.
void expect_bit_identical(const SimResult& a, const SimResult& b, const char* what) {
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.time_ns, b.time_ns) << what;
  EXPECT_EQ(a.ipc, b.ipc) << what;
  EXPECT_EQ(a.llc_miss_rate, b.llc_miss_rate) << what;
  EXPECT_EQ(a.llc_mpki, b.llc_mpki) << what;
  EXPECT_EQ(a.llc_miss_stall_cycles, b.llc_miss_stall_cycles) << what;
  EXPECT_EQ(a.mem_op_fraction, b.mem_op_fraction) << what;
  EXPECT_EQ(a.dram_row_hit_rate, b.dram_row_hit_rate) << what;
}

// The 16-point grid the tentpole targets: paper points (25/30/35/85) plus a
// dense fill-in, including non-integral extras that defeat the in-order
// integer fast path and exercise the generic per-miss walk.
const double kGrid[16] = {0.0,  5.0,  10.0, 12.25, 17.5, 25.0, 30.0, 33.7,
                          35.0, 42.0, 50.0, 60.0,  70.0, 85.0, 92.5, 100.0};

SimConfig small_sim(CoreKind kind) {
  SimConfig cfg;
  cfg.core.kind = kind;
  cfg.warmup_instructions = 20'000;
  cfg.measured_instructions = 50'000;
  return cfg;
}

workloads::TraceConfig thrashing_trace() {
  workloads::TraceConfig cfg;
  cfg.working_set = 128ULL << 20;  // 4x the LLC: heavy miss traffic
  cfg.mem_fraction = 0.3;
  cfg.patterns = {{}};  // streaming
  cfg.seed = 7;
  return cfg;
}

workloads::TraceConfig mixed_dependence_trace() {
  workloads::TraceConfig cfg;
  cfg.working_set = 96ULL << 20;
  cfg.mem_fraction = 0.35;
  workloads::PatternSpec stream;
  stream.kind = workloads::CpuPattern::kStreaming;
  stream.weight = 1.0;
  workloads::PatternSpec chase;
  chase.kind = workloads::CpuPattern::kPointerChase;
  chase.weight = 1.0;
  workloads::PatternSpec random;
  random.kind = workloads::CpuPattern::kRandom;
  random.weight = 0.5;
  random.dependent_fraction = 0.3;  // partially dependent random gathers
  cfg.patterns = {stream, chase, random};
  cfg.seed = 11;
  return cfg;
}

void expect_replay_matches_simulation(const workloads::TraceConfig& trace_cfg,
                                      SimConfig cfg, const char* what) {
  cfg.dram.extra_ns = 0.0;
  workloads::SyntheticTrace record_trace(trace_cfg);
  const MissProfile profile = record_miss_profile(record_trace, cfg);

  for (const double extra : kGrid) {
    SimConfig point = cfg;
    point.dram.extra_ns = extra;
    workloads::SyntheticTrace trace(trace_cfg);
    const SimResult scratch = run_simulation(trace, point);
    const SimResult replayed = replay_profile(profile, extra);
    expect_bit_identical(scratch, replayed, what);
    // The generic walk must agree with whatever path kAuto picked.
    expect_bit_identical(replay_profile(profile, extra, ReplayMode::kGeneric), replayed,
                         what);
  }
}

TEST(MissProfile, InOrderReplayIsBitIdenticalAcrossTheGrid) {
  expect_replay_matches_simulation(thrashing_trace(), small_sim(CoreKind::kInOrder),
                                   "inorder/streaming");
}

TEST(MissProfile, OutOfOrderReplayIsBitIdenticalAcrossTheGrid) {
  expect_replay_matches_simulation(thrashing_trace(), small_sim(CoreKind::kOutOfOrder),
                                   "ooo/streaming");
}

TEST(MissProfile, AcceleratorReplayIsBitIdenticalAcrossTheGrid) {
  expect_replay_matches_simulation(thrashing_trace(),
                                   small_sim(CoreKind::kDecoupledAccelerator),
                                   "accel/streaming");
}

TEST(MissProfile, DependentIndependentMixReplaysExactly) {
  // Pointer chases serialize OOO misses (full dc) while streaming misses
  // overlap (dc/mlp): both replay formulas in one profile.
  for (const CoreKind kind : {CoreKind::kInOrder, CoreKind::kOutOfOrder,
                              CoreKind::kDecoupledAccelerator}) {
    expect_replay_matches_simulation(mixed_dependence_trace(), small_sim(kind),
                                     "mixed-dependence");
  }
}

TEST(MissProfile, PrefetchOnAndOffReplayExactly) {
  for (const bool enabled : {false, true}) {
    SimConfig cfg = small_sim(CoreKind::kOutOfOrder);
    cfg.core.prefetch.enabled = enabled;
    expect_replay_matches_simulation(thrashing_trace(), cfg, "prefetch");
    SimConfig io = small_sim(CoreKind::kInOrder);
    io.core.prefetch.enabled = enabled;
    expect_replay_matches_simulation(thrashing_trace(), io, "prefetch-inorder");
  }
}

TEST(MissProfile, CacheResidentWorkloadHasEmptyProfileAndExactReplay) {
  workloads::TraceConfig trace_cfg;
  trace_cfg.working_set = 1 << 20;  // fits in the LLC
  trace_cfg.seed = 3;
  const SimConfig cfg = small_sim(CoreKind::kInOrder);
  workloads::SyntheticTrace record_trace(trace_cfg);
  const MissProfile profile = record_miss_profile(record_trace, cfg);
  EXPECT_EQ(profile.miss_count(), profile.llc_misses);
  expect_replay_matches_simulation(trace_cfg, cfg, "cache-resident");
}

TEST(MissProfile, RecordingAtNonZeroExtraReplaysDownToZero) {
  // Latency-independence cuts both ways: a profile recorded at +35 ns must
  // reproduce the extra=0 baseline too.
  SimConfig cfg = small_sim(CoreKind::kOutOfOrder);
  cfg.dram.extra_ns = 35.0;
  const workloads::TraceConfig trace_cfg = thrashing_trace();
  workloads::SyntheticTrace record_trace(trace_cfg);
  const MissProfile profile = record_miss_profile(record_trace, cfg);
  EXPECT_EQ(profile.dram.extra_ns, 35.0);

  for (const double extra : {0.0, 35.0, 85.0}) {
    SimConfig point = cfg;
    point.dram.extra_ns = extra;
    workloads::SyntheticTrace trace(trace_cfg);
    expect_bit_identical(run_simulation(trace, point), replay_profile(profile, extra),
                         "recorded-at-35");
  }
}

TEST(MissProfile, ProfileCountersMatchTheRecordedRun) {
  const workloads::TraceConfig trace_cfg = thrashing_trace();
  const SimConfig cfg = small_sim(CoreKind::kInOrder);
  workloads::SyntheticTrace trace(trace_cfg);
  const MissProfile profile = record_miss_profile(trace, cfg);
  EXPECT_EQ(profile.instructions, cfg.measured_instructions);
  EXPECT_GT(profile.llc_misses, 0u);
  EXPECT_EQ(profile.miss_count(), profile.llc_misses);  // every miss is timed
  EXPECT_LE(profile.row_hit_miss_count, profile.llc_misses);
  EXPECT_GT(profile.base_cycles_total, 0.0);
}

TEST(MissProfile, InOrderFastPathEngagesAndMatchesGenericWalk) {
  // Integer extras keep every in-order cycle term integral, so the O(1)
  // aggregated path must engage and agree with the per-miss walk bit for
  // bit; fractional extras must take the generic walk and still agree.
  const workloads::TraceConfig trace_cfg = thrashing_trace();
  const SimConfig cfg = small_sim(CoreKind::kInOrder);
  workloads::SyntheticTrace trace(trace_cfg);
  const MissProfile profile = record_miss_profile(trace, cfg);
  ASSERT_GT(profile.miss_count(), 0u);
  for (const double extra : kGrid) {
    expect_bit_identical(replay_profile(profile, extra, ReplayMode::kAuto),
                         replay_profile(profile, extra, ReplayMode::kGeneric),
                         "fast-vs-generic");
  }
}

}  // namespace
}  // namespace photorack::cpusim
