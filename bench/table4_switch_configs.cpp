// Reproduces Table IV (study switch configurations) and the §V-B fabric
// plans built from them: six parallel AWGRs with >=5 direct wavelengths per
// MCM pair, and eleven staggered 256-port spatial/WSS switches.
#include <iostream>

#include "core/report.hpp"
#include "phot/switches.hpp"
#include "rack/rack_builder.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Table IV: switch configurations for the rack study",
                     "Table IV + Section V-B");

  sim::Table table({"Switch type", "Radix", "Lambdas/port", "Gbps/lambda"});
  for (const auto& cfg : phot::table4_study_configs()) {
    table.add_row({cfg.name, sim::fmt_int(cfg.radix), sim::fmt_int(cfg.wavelengths_per_port),
                   sim::fmt_fixed(cfg.gbps_per_wavelength.value, 0)});
  }
  table.print(std::cout);

  const auto awgr_design = rack::build_rack_design(rack::FabricKind::kParallelAwgrs);
  const auto& ap = awgr_design.awgr;
  std::cout << "\nCase (A): parallel AWGRs (Fig 5)\n";
  sim::Table at({"Metric", "Value"});
  at.add_row({"parallel AWGRs", sim::fmt_int(ap.parallel_awgrs)});
  std::string lam;
  for (std::size_t i = 0; i < ap.lambdas_per_port.size(); ++i)
    lam += (i ? "+" : "") + std::to_string(ap.lambdas_per_port[i]);
  at.add_row({"lambdas per MCM per AWGR port", lam});
  at.add_row({"all-pairs-coverage AWGRs", sim::fmt_int(ap.full_coverage_awgrs)});
  at.add_row({"min direct lambdas per MCM pair", sim::fmt_int(ap.min_direct_lambdas_per_pair)});
  at.add_row({"direct pair bandwidth (Gb/s)",
              sim::fmt_fixed(ap.direct_pair_bandwidth.value, 0)});
  at.print(std::cout);

  const auto sp_design = rack::build_rack_design(rack::FabricKind::kSpatialOrWss);
  const auto& sp = sp_design.spatial;
  std::cout << "\nCase (B): staggered spatial/WSS switches\n";
  sim::Table st({"Metric", "Value"});
  st.add_row({"switches", sim::fmt_int(sp.switches)});
  st.add_row({"radix / lambdas per port",
              sim::fmt_int(sp.radix) + " / " + std::to_string(sp.wavelengths_per_port)});
  st.add_row({"fibers per MCM-switch connection", sim::fmt_int(sp.fibers_per_connection)});
  st.add_row({"max connections per MCM", sim::fmt_int(sp.max_connections_per_mcm)});
  st.add_row({"min direct paths per MCM pair", sim::fmt_int(sp.min_direct_paths_per_pair)});
  st.add_row({"avg direct paths per MCM pair",
              sim::fmt_fixed(sp.avg_direct_paths_per_pair, 2)});
  st.add_row({"direct pair bandwidth (Gb/s)",
              sim::fmt_fixed(sp.direct_pair_bandwidth.value, 0)});
  st.print(std::cout);

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "parallel AWGRs", 6, ap.parallel_awgrs, 0.01);
  core::check_line(std::cout, "min direct lambdas per pair (>=5)", 5,
                   ap.min_direct_lambdas_per_pair, 0.25);
  core::check_line(std::cout, "AWGR direct bandwidth Gb/s", 125,
                   ap.direct_pair_bandwidth.value, 0.25);
  core::check_line(std::cout, "spatial/WSS switches", 11, sp.switches, 0.01);
  // One-sided: the paper claims *at least* three direct paths; exceeding it
  // is fine (our trimming heuristic keeps more overlap than required).
  core::check_line(std::cout, "min direct paths per pair (paper: >=3)", 3,
                   std::min(sp.min_direct_paths_per_pair, 3), 0.01);
  std::cout << "measured min direct paths per pair: " << sp.min_direct_paths_per_pair
            << " (>= the paper's 3)\n";
  std::cout << "note: the paper states 142 lambdas land on the 6th AWGR; "
               "consistent accounting of all 2048 escape wavelengths under "
               "the 370/port cap gives "
            << ap.lambdas_per_port.back() << " (see EXPERIMENTS.md).\n";
  return 0;
}
