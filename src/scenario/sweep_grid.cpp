#include "scenario/sweep_grid.hpp"

#include <algorithm>
#include <stdexcept>

#include "config/bindings.hpp"
#include "config/value_codec.hpp"

namespace photorack::scenario {

namespace {

/// Registry-validate a (possibly) parameter axis.  A registered path gets
/// every value parsed and range-checked up front, so a sweep cannot start
/// with a value that would throw mid-run.  A dotted name whose first
/// segment IS a registered section but whose path is not a knob is a typo —
/// reject it with the registry's near-miss suggestions.  Anything else is a
/// free axis the campaign interprets.
void validate_axis_values(const std::string& name,
                          const std::vector<std::string>& values) {
  const config::ParamRegistry& reg = config::registry();
  if (const config::ParamInfo* p = reg.find(name)) {
    for (const std::string& v : values) p->check(v);
    return;
  }
  const std::size_t dot = name.find('.');
  if (dot != std::string::npos && reg.find_section(name.substr(0, dot)) != nullptr)
    (void)reg.at(name);  // throws std::out_of_range with suggestions
}

}  // namespace

std::string num_to_string(double v) { return config::format_double(v); }

SweepGrid& SweepGrid::axis(std::string name, std::vector<std::string> values) {
  if (values.empty())
    throw std::invalid_argument("SweepGrid: axis '" + name + "' has no values");
  if (has(name)) throw std::invalid_argument("SweepGrid: duplicate axis '" + name + "'");
  validate_axis_values(name, values);
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(num_to_string(v));
  return axis(std::move(name), std::move(cells));
}

SweepGrid& SweepGrid::set(const std::string& name, std::vector<std::string> values) {
  if (values.empty())
    throw std::invalid_argument("SweepGrid: axis '" + name + "' has no values");
  validate_axis_values(name, values);
  for (auto& ax : axes_) {
    if (ax.name == name) {
      ax.values = std::move(values);
      return *this;
    }
  }
  std::string known;
  for (const auto& ax : axes_) {
    if (!known.empty()) known += ", ";
    known += ax.name;
  }
  throw std::out_of_range("SweepGrid: unknown axis '" + name + "' (grid axes: " + known +
                          ")");
}

SweepGrid& SweepGrid::override_axis(const std::string& name,
                                    std::vector<std::string> values) {
  if (values.empty())
    throw std::invalid_argument("SweepGrid: override '" + name + "' has no values");
  if (has(name)) {
    overrides_.push_back({name, values});
    return set(name, std::move(values));  // set() validates param values
  }
  const config::ParamRegistry& reg = config::registry();
  if (reg.find(name) == nullptr) {
    // Neither a grid axis nor a registered knob: combine both vocabularies
    // in one error so the user sees what IS addressable.
    std::string known;
    for (const auto& ax : axes_) {
      if (!known.empty()) known += ", ";
      known += ax.name;
    }
    std::string msg =
        "unknown axis or parameter '" + name + "' (grid axes: " + known + ")";
    const std::string hint = config::format_suggestions(reg.suggest(name));
    if (!hint.empty()) msg += "; " + hint;
    throw std::out_of_range(msg);
  }
  // A registered knob the campaign does not sweep: append it as a new
  // (usually single-valued) axis so resolve<T>() picks it up in every spec.
  validate_axis_values(name, values);
  overrides_.push_back({name, values});
  axes_.push_back({name, std::move(values)});
  return *this;
}

bool SweepGrid::has(const std::string& name) const {
  for (const auto& ax : axes_)
    if (ax.name == name) return true;
  return false;
}

std::size_t SweepGrid::size() const {
  std::size_t n = 1;
  for (const auto& ax : axes_) n *= ax.values.size();
  return axes_.empty() ? 0 : n;
}

std::vector<ScenarioSpec> SweepGrid::expand(const std::string& campaign,
                                            std::uint64_t base_seed) const {
  std::vector<ScenarioSpec> specs;
  if (axes_.empty()) return specs;
  const std::size_t total = size();
  specs.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    ScenarioSpec spec;
    spec.campaign = campaign;
    spec.index = index;
    spec.base_seed = base_seed;
    spec.axes.reserve(axes_.size());
    // Mixed-radix decomposition, last axis fastest.
    std::size_t rem = index;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& ax = axes_[a];
      spec.axes.emplace_back(ax.name, ax.values[rem % ax.values.size()]);
      rem /= ax.values.size();
    }
    std::reverse(spec.axes.begin(), spec.axes.end());
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace photorack::scenario
