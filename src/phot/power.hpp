#pragma once

#include <cstddef>
#include <functional>

#include "phot/units.hpp"

namespace photorack::phot {

/// Rack-level photonic power model (§VI-C).  The paper's worked example:
/// 350 MCMs x 2048 escape wavelengths x 25 Gb/s, transceiver pairs at
/// ~0.5 pJ/bit including laser power, plus at most 1 kW for all parallel
/// switches => ~11 kW total, about 5% of the rack's compute power.
struct PhotonicPowerConfig {
  int mcms = 350;
  int wavelengths_per_mcm = 2048;
  Gbps gbps_per_wavelength{25};
  // Comb-driven transceiver pair, laser included ([125], [126]).  0.55
  // reproduces the paper's ~11 kW total ("approximately 0.5 pJ/bit").
  PjPerBit transceiver_pair_energy{0.55};
  Watts all_switches_power{1000};
  bool lasers_always_on = true;  // paper's pessimistic assumption
};

struct PowerBreakdown {
  Watts transceivers;
  Watts switches;
  Watts total;
  double overhead_vs_baseline = 0.0;  // fraction of the baseline rack power
};

/// Baseline (non-photonic) rack power, from the paper's per-part numbers:
/// A100 ~300 W, Milan CPU ~250 W, 512 GB DDR4 per node ~192 W.
struct BaselineRackPower {
  int nodes = 128;
  Watts cpu_per_node{250};
  int gpus_per_node = 4;
  Watts gpu_each{300};
  Watts memory_per_node{192};

  [[nodiscard]] Watts total() const {
    const double per_node =
        cpu_per_node.value + gpus_per_node * gpu_each.value + memory_per_node.value;
    return Watts{per_node * nodes};
  }
};

[[nodiscard]] PowerBreakdown photonic_power_overhead(const PhotonicPowerConfig& cfg = {},
                                                     const BaselineRackPower& base = {});

/// Time-weighted rack energy integrator over a piecewise-constant power
/// profile.  Callers report each power *change point* via step_to(t, W):
/// energy accrues at the previous level from the previous change point to t,
/// then the level becomes W.  The first call only sets the origin.  Used by
/// the rack co-simulation to turn utilization-driven power levels into an
/// energy trace (§VI-C extended from static overhead to a live job stream).
class EnergyTrace {
 public:
  /// Observation hook invoked after every accepted step_to(seconds, watts).
  /// A plain callback (not an obs dependency) so the power layer stays at
  /// the bottom of the stack; the rack co-simulation binds it to the
  /// observability layer's power counter track and gauges.  Purely
  /// read-only: the trace's own accounting never depends on it.
  using StepObserver = std::function<void(double seconds, double watts)>;
  void set_observer(StepObserver observer) { observer_ = std::move(observer); }

  /// Record that rack power changed to `watts` at `seconds` (monotone
  /// non-decreasing; going backwards throws std::invalid_argument).
  void step_to(double seconds, Watts watts);

  [[nodiscard]] double joules() const { return joules_; }
  /// Simulated span covered so far (last change point minus origin).
  [[nodiscard]] double seconds() const { return started_ ? last_t_ - t0_ : 0.0; }
  /// joules()/seconds(); the last recorded level for a zero-length trace.
  [[nodiscard]] Watts mean_power() const;
  /// Highest power level ever recorded (zero-length levels included).
  [[nodiscard]] Watts peak_power() const { return Watts{peak_}; }
  [[nodiscard]] std::size_t steps() const { return steps_; }

 private:
  bool started_ = false;
  double t0_ = 0.0;
  double last_t_ = 0.0;
  double last_w_ = 0.0;
  double joules_ = 0.0;
  double peak_ = 0.0;
  std::size_t steps_ = 0;
  StepObserver observer_;
};

}  // namespace photorack::phot
