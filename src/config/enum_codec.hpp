#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace photorack::config {

/// Bidirectional name<->value map for an enum: the ONE definition of an
/// enum's CLI/axis/registry spelling.  Layers define a canonical codec next
/// to the enum (e.g. disagg::allocation_policy_codec()); CLIs, campaign
/// evaluators and registry bindings all parse and format through it, so a
/// spelling can never drift between surfaces.
///
/// Header-only and dependency-free so the lowest layers can define codecs
/// without linking against the config library.
template <typename E>
class EnumCodec {
 public:
  EnumCodec(std::string enum_name, std::vector<std::pair<std::string, E>> items)
      : enum_name_(std::move(enum_name)), items_(std::move(items)) {
    if (items_.empty())
      throw std::invalid_argument("EnumCodec " + enum_name_ + ": no items");
  }

  /// Value for a spelling; throws std::invalid_argument listing the choices.
  [[nodiscard]] E parse(const std::string& name) const {
    for (const auto& [n, v] : items_)
      if (n == name) return v;
    throw std::invalid_argument("unknown " + enum_name_ + " '" + name + "' (want " +
                                choices() + ")");
  }

  /// Canonical spelling of a value; throws std::logic_error for values the
  /// codec does not cover (a codec/enum drift bug, not a user error).
  [[nodiscard]] const std::string& name(E value) const {
    for (const auto& [n, v] : items_)
      if (v == value) return n;
    throw std::logic_error("EnumCodec " + enum_name_ + ": unmapped value");
  }

  [[nodiscard]] bool knows(const std::string& name) const {
    for (const auto& [n, v] : items_)
      if (n == name) return true;
    return false;
  }

  /// "a|b|c" in registration order, for error messages and --params.
  [[nodiscard]] std::string choices() const {
    std::string out;
    for (const auto& [n, v] : items_) {
      if (!out.empty()) out += '|';
      out += n;
    }
    return out;
  }

  [[nodiscard]] const std::string& enum_name() const { return enum_name_; }
  [[nodiscard]] const std::vector<std::pair<std::string, E>>& items() const {
    return items_;
  }

 private:
  std::string enum_name_;
  std::vector<std::pair<std::string, E>> items_;
};

}  // namespace photorack::config
