#pragma once

#include <string>

#include "sim/rng.hpp"

namespace photorack::workloads {

/// A clamped-lognormal resource-usage distribution parameterized directly
/// by two quantiles, the form in which §II-A reports production telemetry
/// (e.g. "three quarters of the time, Haswell nodes use less than 17.4% of
/// memory capacity").  This is the NERSC-Cori substitute distribution.
class QuantileLognormal {
 public:
  /// Construct from (p, value_p) and (q, value_q) with 0 < p < q < 1.
  QuantileLognormal(double p, double value_p, double q, double value_q,
                    double clamp_max = 1.0);

  [[nodiscard]] double sample(sim::Rng& rng) const;
  /// Analytic quantile (inverse CDF), before clamping.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
  double clamp_max_;
};

/// Per-node usage model of an open-science production system, fit to the
/// §II-A quantiles.  All values are fractions of the node's capacity.
struct UsageModel {
  QuantileLognormal memory_capacity;   // p75 = 17.4% (Haswell-like)
  QuantileLognormal memory_bandwidth;  // p75 = 0.46 GB/s of 204.8 GB/s
  QuantileLognormal nic_bandwidth;     // p75 = 1.25%
  QuantileLognormal cpu_cores;         // p50 = 50% of cores busy

  [[nodiscard]] static UsageModel cori();
};

/// Flow-demand distribution (Gb/s) between MCM pairs for the §VI-A
/// bandwidth evaluation, fit so that a single 25 Gb/s wavelength suffices
/// ~97% of the time and the 125 Gb/s direct budget ~99.5% of the time, as
/// the paper reports for CPU<->DDR4 traffic.
class FlowDemandModel {
 public:
  [[nodiscard]] static FlowDemandModel cpu_memory();
  [[nodiscard]] static FlowDemandModel nic_memory();

  [[nodiscard]] double sample_gbps(sim::Rng& rng) const;
  [[nodiscard]] double quantile(double q) const { return dist_.quantile(q); }

 private:
  explicit FlowDemandModel(QuantileLognormal dist) : dist_(dist) {}
  QuantileLognormal dist_;
};

}  // namespace photorack::workloads
