#include "scenario/campaigns.hpp"

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "cluster/cluster_cosim.hpp"
#include "collectives/collective.hpp"
#include "config/bindings.hpp"
#include "core/rack_system.hpp"
#include "cosim/rack_cosim.hpp"
#include "cpusim/miss_profile.hpp"
#include "cpusim/runner.hpp"
#include "fault/fault_model.hpp"
#include "gpusim/gpu_runner.hpp"
#include "obs/obs.hpp"
#include "phot/links.hpp"
#include "phot/power.hpp"
#include "rack/mcm.hpp"
#include "rack/rack_builder.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"
#include "workloads/gpu_profiles.hpp"

namespace photorack::scenario {

SweepGrid Campaign::default_grid() const {
  SweepGrid grid;
  for (const Axis& ax : axes) grid.axis(ax.name, ax.values);
  return grid;
}

namespace {

// ---------------------------------------------------------------------------
// Free-axis helpers shared by the campaign evaluators.  Enum-valued free
// axes (policy, feedback) parse through the layers' canonical EnumCodecs;
// everything config-struct-shaped arrives via ScenarioSpec::resolve<T>().
// ---------------------------------------------------------------------------

const workloads::CpuBenchmark& find_cpu_benchmark(const std::string& full_name) {
  for (const auto& bench : workloads::cpu_benchmarks())
    if (bench.full_name() == full_name) return bench;
  throw std::out_of_range("no CPU benchmark named '" + full_name + "'");
}

const gpusim::AppProfile& find_gpu_app(const std::string& name) {
  for (const auto& app : workloads::gpu_apps())
    if (app.name == name) return app;
  throw std::out_of_range("no GPU application named '" + name + "'");
}

std::vector<std::string> all_cpu_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& bench : workloads::cpu_benchmarks()) names.push_back(bench.full_name());
  return names;
}

std::vector<std::string> all_gpu_app_names() {
  std::vector<std::string> names;
  for (const auto& app : workloads::gpu_apps()) names.push_back(app.name);
  return names;
}

std::vector<std::string> num_values(const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(num_to_string(v));
  return out;
}

// ---------------------------------------------------------------------------
// CPU latency-sensitivity point (figs 6, 8, 11, 12 all reduce to this).
// Each scenario is self-contained: it simulates its own extra=0 baseline, so
// a spec's row never depends on another spec having run.
// ---------------------------------------------------------------------------

const std::vector<std::string> kCpuColumns = {
    "suite",   "input",    "bench",       "core", "extra_ns", "baseline_ns",
    "time_ns", "slowdown", "llc_miss_rate", "ipc"};

/// Single-flight memo: concurrent get()s of one key share one in-flight
/// computation via a shared_future, so parallel sweep workers never
/// duplicate a recording (the PR 2 memo they replace allowed that).  With
/// a nonzero capacity, completed entries beyond it are LRU-evicted — an
/// eviction at worst recomputes later and, the computations being
/// bit-deterministic, never changes results.  A failed computation is
/// removed (matched by entry id, in case eviction already dropped it) so a
/// later get() retries; every sharer of the failed flight rethrows.
template <typename Key, typename Value>
class SingleFlightCache {
 public:
  explicit SingleFlightCache(std::size_t capacity = 0) : capacity_(capacity) {}

  template <typename Compute>
  Value get(const Key& key, Compute&& compute) {
    std::shared_future<Value> fut;
    std::promise<Value> prom;
    std::uint64_t id = 0;
    bool owner = false;
    {
      std::lock_guard lock(mu_);
      ++tick_;
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        it->second.last_use = tick_;
        fut = it->second.fut;
      } else {
        owner = true;
        id = tick_;
        fut = prom.get_future().share();
        if (capacity_ != 0) evict_locked();
        entries_.emplace(key, Entry{fut, tick_, id});
      }
    }
    if (owner) {
      try {
        prom.set_value(compute());
      } catch (...) {
        prom.set_exception(std::current_exception());
        std::lock_guard lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second.id == id) entries_.erase(it);
      }
    }
    return fut.get();  // rethrows a computation failure to every sharer
  }

 private:
  struct Entry {
    std::shared_future<Value> fut;
    std::uint64_t last_use = 0;
    std::uint64_t id = 0;
  };

  void evict_locked() {
    while (entries_.size() >= capacity_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.fut.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
          continue;  // never evict an in-flight computation
        if (victim == entries_.end() || it->second.last_use < victim->second.last_use)
          victim = it;
      }
      if (victim == entries_.end()) return;  // everything in flight
      entries_.erase(victim);
    }
  }

  std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
};

/// Process-wide cache of recorded CPU miss profiles: one instrumented
/// simulation per (benchmark, full cpusim config, seed) serves the baseline
/// AND every extra_ns grid point as an O(misses) replay, bit-identical to
/// simulating each point from scratch.  The config enters the key as the
/// registry's canonical snapshot string, so ANY --set cpusim.* override
/// (hierarchy geometry, core width, prefetcher...) records its own profile
/// instead of aliasing the default one.  Bounded: grid order keeps one
/// benchmark's latency points adjacent, so a handful of live profiles
/// bounds memory.
std::shared_ptr<const cpusim::MissProfile> cpu_profile(
    const workloads::CpuBenchmark& bench, const cpusim::SimConfig& cfg,
    const workloads::TraceConfig& trace_cfg) {
  using Key = std::tuple<std::string, std::string, std::uint64_t>;
  static SingleFlightCache<Key, std::shared_ptr<const cpusim::MissProfile>> cache(12);
  const Key key{bench.full_name(), config::registry().snapshot("cpusim", cfg),
                trace_cfg.seed};
  return cache.get(key, [&] {
    workloads::SyntheticTrace trace(trace_cfg);
    return std::make_shared<const cpusim::MissProfile>(
        cpusim::record_miss_profile(trace, cfg));
  });
}

std::vector<ResultRow> eval_cpu_point(const ScenarioSpec& spec) {
  const auto& bench = find_cpu_benchmark(spec.at("bench"));

  cpusim::SimConfig cfg = spec.resolve<cpusim::SimConfig>("cpusim");
  const double extra = cfg.dram.extra_ns;

  workloads::TraceConfig trace_cfg = bench.trace;
  // base_seed == 0 keeps the registry seed (the paper's numbers, matching
  // core::run_cpu_sweep exactly); otherwise the scenario re-seeds itself.
  if (spec.base_seed != 0) trace_cfg.seed = spec.derived_seed();

  // One profile per (bench, config-at-extra=0): the recording is
  // latency-independent, so the baseline and the perturbed point are both
  // replays of it.
  cfg.dram.extra_ns = 0.0;
  const auto profile = cpu_profile(bench, cfg, trace_cfg);
  const cpusim::SimResult baseline = cpusim::replay_profile(*profile, 0.0);
  const cpusim::SimResult result =
      extra != 0.0 ? cpusim::replay_profile(*profile, extra) : baseline;

  ResultRow row;
  row.cells = {bench.suite,
               bench.input,
               bench.full_name(),
               spec.at("cpusim.core.kind"),
               num_to_string(extra),
               num_to_string(baseline.time_ns),
               num_to_string(result.time_ns),
               num_to_string(result.time_ns / baseline.time_ns - 1.0),
               num_to_string(result.llc_miss_rate),
               num_to_string(result.ipc)};
  return {std::move(row)};
}

std::vector<Axis> cpu_axes(std::vector<std::string> cores, std::vector<double> extras) {
  return {{"bench", all_cpu_benchmark_names()},
          {"cpusim.core.kind", std::move(cores)},
          {"cpusim.dram.extra_ns", num_values(extras)},
          {"cpusim.warmup", {"1000000"}},
          {"cpusim.measured", {"2000000"}}};
}

// ---------------------------------------------------------------------------
// GPU latency-sensitivity point (figs 9, 10, 11, 12).
// ---------------------------------------------------------------------------

const std::vector<std::string> kGpuColumns = {
    "app",     "suite",    "extra_ns",     "derate",
    "baseline_us", "time_us", "slowdown", "l2_miss_rate"};

/// GPU counterpart of the CPU profile cache: the per-kernel L2 simulation
/// is independent of extra_hbm_ns and the bandwidth derate (the axes the
/// GPU campaigns sweep), so one AppMissProfile per (app, base config)
/// serves every grid point.  The base config (latency axes zeroed) keys
/// the cache via its registry snapshot, so --set gpusim.* geometry
/// overrides record their own profiles.  Profiles are a few doubles each,
/// so unbounded (capacity 0).
std::shared_ptr<const gpusim::AppMissProfile> gpu_app_profile(
    const gpusim::AppProfile& app, const gpusim::GpuConfig& base) {
  using Key = std::pair<std::string, std::string>;
  static SingleFlightCache<Key, std::shared_ptr<const gpusim::AppMissProfile>> cache;
  const Key key{app.name, config::registry().snapshot("gpusim", base)};
  return cache.get(key, [&] {
    return std::make_shared<const gpusim::AppMissProfile>(
        gpusim::record_app_profile(app, base));
  });
}

std::vector<ResultRow> eval_gpu_point(const ScenarioSpec& spec) {
  const auto& app = find_gpu_app(spec.at("app"));

  gpusim::GpuConfig gpu = spec.resolve<gpusim::GpuConfig>("gpusim");
  // Baseline is always the photonic configuration of the same device: zero
  // extra latency, full HBM bandwidth (matches core::run_gpu_sweep).
  gpusim::GpuConfig base = gpu;
  base.extra_hbm_ns = 0.0;
  base.hbm_bandwidth_derate = 1.0;

  const auto profile = gpu_app_profile(app, base);
  const double baseline_us = gpusim::replay_app(app, *profile, base).time_us;
  const gpusim::AppResult result = gpusim::replay_app(app, *profile, gpu);

  ResultRow row;
  row.cells = {app.name,
               app.suite,
               spec.at("gpusim.extra_hbm_ns"),
               spec.at("gpusim.hbm_bandwidth_derate"),
               num_to_string(baseline_us),
               num_to_string(result.time_us),
               num_to_string(result.time_us / baseline_us - 1.0),
               num_to_string(result.l2_miss_rate)};
  return {std::move(row)};
}

std::vector<Axis> gpu_axes(std::vector<double> extras, std::vector<double> derates) {
  return {{"app", all_gpu_app_names()},
          {"gpusim.extra_hbm_ns", num_values(extras)},
          {"gpusim.hbm_bandwidth_derate", num_values(derates)}};
}

// ---------------------------------------------------------------------------
// Table I: links needed (and transceiver power) per technology for a given
// MCM escape bandwidth.
// ---------------------------------------------------------------------------

const std::vector<std::string> kTable1Columns = {
    "link", "escape_gbs", "links", "power_w", "link_gbps", "co_packaged"};

std::vector<ResultRow> eval_table1_point(const ScenarioSpec& spec) {
  const auto& link = phot::link_by_name(spec.at("link"));
  const phot::GBps escape{spec.num("escape_gbs")};
  ResultRow row;
  row.cells = {link.name,
               spec.at("escape_gbs"),
               num_to_string(link.links_for_escape(escape)),
               num_to_string(link.power_for_escape(escape).value),
               num_to_string(link.bandwidth.value),
               link.co_packaged ? "yes" : "no"};
  return {std::move(row)};
}

std::vector<Axis> table1_axes() {
  std::vector<std::string> names;
  for (const auto& link : phot::table1_links()) names.push_back(link.name);
  return {{"link", std::move(names)}, {"escape_gbs", {"2000"}}};
}

// ---------------------------------------------------------------------------
// Table III: MCM packing under a configurable escape budget.  One scenario
// emits one row per chip type (the table's shape), so sweeping the MCM
// geometry axes yields the full packing design space.
// ---------------------------------------------------------------------------

const std::vector<std::string> kTable3Columns = {
    "fibers",        "lambdas",        "gbps",       "chip",       "chips_per_mcm",
    "mcm_count",     "chip_escape_gbs", "chip_share_gbs", "total_mcms"};

std::vector<ResultRow> eval_table3_point(const ScenarioSpec& spec) {
  const rack::McmConfig mcm = spec.resolve<rack::McmConfig>("mcm");
  const rack::RackConfig rack = spec.resolve<rack::RackConfig>("rack");
  const rack::McmPlan plan = rack::pack_rack(rack, mcm);

  std::vector<ResultRow> rows;
  for (const auto& p : plan.types) {
    ResultRow row;
    row.cells = {spec.at("mcm.fibers"),
                 spec.at("mcm.wavelengths_per_fiber"),
                 spec.at("mcm.gbps_per_wavelength"),
                 rack::to_string(p.type),
                 num_to_string(p.chips_per_mcm),
                 num_to_string(p.mcm_count),
                 num_to_string(p.per_chip_escape.value),
                 num_to_string(p.per_chip_share.value),
                 num_to_string(plan.total_mcms)};
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Axis> table3_axes() {
  return {{"mcm.fibers", {"32"}},
          {"mcm.wavelengths_per_fiber", {"64"}},
          {"mcm.gbps_per_wavelength", {"25"}}};
}

// ---------------------------------------------------------------------------
// §VI-C: photonic power overhead per fabric choice.
// ---------------------------------------------------------------------------

const std::vector<std::string> kSec6cColumns = {
    "fabric",     "transceivers_w", "switches_w", "total_w",
    "baseline_w", "overhead",       "added_latency_ns"};

std::vector<ResultRow> eval_sec6c_point(const ScenarioSpec& spec) {
  const config::SystemParams sys = spec.resolve<config::SystemParams>("system");
  const core::RackSystem system(sys.fabric, spec.resolve<rack::RackConfig>("rack"),
                                spec.resolve<rack::McmConfig>("mcm"),
                                spec.resolve<phot::PhotonicPowerConfig>("phot"));
  const phot::PowerBreakdown power = system.power_overhead();
  const phot::BaselineRackPower baseline;
  ResultRow row;
  row.cells = {spec.at("system.fabric"),
               num_to_string(power.transceivers.value),
               num_to_string(power.switches.value),
               num_to_string(power.total.value),
               num_to_string(baseline.total().value),
               num_to_string(power.overhead_vs_baseline),
               num_to_string(system.added_memory_latency_ns())};
  return {std::move(row)};
}

std::vector<Axis> sec6c_axes() { return {{"system.fabric", {"awgr"}}}; }

// ---------------------------------------------------------------------------
// Rack co-simulation campaigns: the closed loop of jobs × fabric × power
// evaluated together (§II-A telemetry, §IV routing, §VI-C power).  Every
// evaluator is a pure function of its spec — the co-sim seeds itself from
// the spec, so sweeps stay bit-identical for any --jobs level.
// ---------------------------------------------------------------------------

/// Shared axis → CosimConfig resolution.  base_seed == 0 keeps the engine's
/// default seed (one canonical trajectory per grid point); any other value
/// re-seeds from the spec id for independent replications.
cosim::CosimConfig cosim_config_from(const ScenarioSpec& spec) {
  cosim::CosimConfig cfg = spec.resolve<cosim::CosimConfig>("cosim");
  cfg.fabric = spec.resolve<net::FabricSliceConfig>("net");
  cfg.fault = spec.resolve<fault::FaultConfig>("fault");
  cfg.ml = spec.resolve<collectives::MlConfig>("ml");
  if (spec.base_seed != 0) cfg.seed = spec.derived_seed();
  return cfg;
}

cosim::CosimReport eval_cosim(const ScenarioSpec& spec,
                              disagg::AllocationPolicy policy) {
  // Per-scenario observability bundle (null sinks unless --set obs.* turned
  // something on).  The recorders are discarded with the bundle: campaign
  // rows never carry obs data, and attaching them must leave every row
  // byte-identical — the contract test_obs pins at this exact seam.
  obs::ObsBundle obs_bundle(spec.resolve<obs::ObsConfig>("obs"));
  return cosim::run_rack_cosim(spec.resolve<rack::RackConfig>("rack"), policy,
                               workloads::UsageModel::cori(),
                               cosim_config_from(spec), obs_bundle.handles());
}

const std::vector<std::string> kCosimAcceptanceColumns = {
    "policy",        "arrivals_per_ms", "horizon_ms",       "offered",
    "accepted",      "acceptance",      "mean_cpu_util",    "mean_mem_util",
    "marooned_mem",  "mean_speed"};

std::vector<ResultRow> eval_cosim_acceptance(const ScenarioSpec& spec) {
  const auto report =
      eval_cosim(spec, disagg::allocation_policy_codec().parse(spec.at("policy")));
  ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               num_to_string(static_cast<double>(report.jobs.offered)),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(report.jobs.acceptance()),
               num_to_string(report.jobs.mean_cpu_utilization),
               num_to_string(report.jobs.mean_memory_utilization),
               num_to_string(report.jobs.mean_marooned_memory),
               num_to_string(report.mean_speed_fraction)};
  return {std::move(row)};
}

std::vector<Axis> cosim_acceptance_axes() {
  return {{"policy", {"static", "disagg"}},
          {"cosim.arrivals_per_ms", {"2", "4", "8"}},
          {"cosim.horizon_ms", {"200"}}};
}

const std::vector<std::string> kCosimContentionColumns = {
    "feedback",       "arrivals_per_ms",    "horizon_ms",  "acceptance",
    "satisfied_frac", "indirect_frac",      "blocking",    "mean_speed",
    "mean_stretch",   "peak_fabric_util"};

std::vector<ResultRow> eval_cosim_contention(const ScenarioSpec& spec) {
  const auto report = eval_cosim(spec, disagg::AllocationPolicy::kDisaggregated);
  ResultRow row;
  row.cells = {spec.at("cosim.contention_feedback"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               num_to_string(report.jobs.acceptance()),
               num_to_string(report.flows.satisfied_fraction),
               num_to_string(report.flows.indirect_fraction),
               num_to_string(report.flows.blocking_probability()),
               num_to_string(report.mean_speed_fraction),
               num_to_string(report.mean_stretch),
               num_to_string(report.flows.peak_utilization)};
  return {std::move(row)};
}

std::vector<Axis> cosim_contention_axes() {
  return {{"cosim.contention_feedback", {"open", "closed"}},
          {"cosim.arrivals_per_ms", {"2", "4", "8", "16"}},
          {"cosim.horizon_ms", {"200"}}};
}

const std::vector<std::string> kCosimEnergyColumns = {
    "policy",     "arrivals_per_ms", "horizon_ms",  "accepted",
    "energy_kj",  "mean_kw",         "peak_kw",     "photonic_kw",
    "kj_per_job"};

std::vector<ResultRow> eval_cosim_energy(const ScenarioSpec& spec) {
  const auto report =
      eval_cosim(spec, disagg::allocation_policy_codec().parse(spec.at("policy")));
  const double kj = report.energy_joules / 1e3;
  ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(kj),
               num_to_string(report.mean_power_w / 1e3),
               num_to_string(report.peak_power_w / 1e3),
               num_to_string(report.photonic_power_w / 1e3),
               num_to_string(report.jobs.accepted
                                 ? kj / static_cast<double>(report.jobs.accepted)
                                 : 0.0)};
  return {std::move(row)};
}

std::vector<Axis> cosim_energy_axes() {
  return {{"policy", {"static", "disagg"}},
          {"cosim.arrivals_per_ms", {"2", "8"}},
          {"cosim.horizon_ms", {"200"}}};
}

const std::vector<std::string> kCosimTailsColumns = {
    "process",          "admission",      "arrivals_per_ms", "horizon_ms",
    "offered",          "accepted",       "acceptance",      "wait_p50_ms",
    "wait_p99_ms",      "wait_p999_ms",   "slowdown_p50",    "slowdown_p99",
    "slowdown_p999",    "fct_p50_ms",     "fct_p99_ms",      "fct_p999_ms",
    "censored_waiting", "censored_running"};

std::vector<ResultRow> eval_cosim_tails(const ScenarioSpec& spec) {
  const auto report = eval_cosim(spec, disagg::AllocationPolicy::kDisaggregated);
  const auto& jobs = report.jobs;
  ResultRow row;
  row.cells = {spec.at("cosim.arrival.process"),
               spec.at("cosim.admission"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               num_to_string(static_cast<double>(jobs.offered)),
               num_to_string(static_cast<double>(jobs.accepted)),
               num_to_string(jobs.acceptance()),
               num_to_string(jobs.wait_ms.p50),
               num_to_string(jobs.wait_ms.p99),
               num_to_string(jobs.wait_ms.p999),
               num_to_string(jobs.slowdown.p50),
               num_to_string(jobs.slowdown.p99),
               num_to_string(jobs.slowdown.p999),
               num_to_string(jobs.fct_ms.p50),
               num_to_string(jobs.fct_ms.p99),
               num_to_string(jobs.fct_ms.p999),
               num_to_string(static_cast<double>(jobs.censored_waiting)),
               num_to_string(static_cast<double>(jobs.censored_running))};
  return {std::move(row)};
}

std::vector<Axis> cosim_tails_axes() {
  return {{"cosim.arrival.process", {"poisson", "mmpp", "diurnal"}},
          {"cosim.admission", {"queue"}},
          {"cosim.arrivals_per_ms", {"4", "12"}},
          {"cosim.horizon_ms", {"200"}}};
}

const std::vector<std::string> kCosimAvailabilityColumns = {
    "admission",    "resilience",   "mcm_mtbf_ms", "horizon_ms",
    "offered",      "accepted",     "faults",      "repairs",
    "interrupted",  "requeued",     "degraded",    "killed",
    "goodput",      "availability", "work_lost_ms", "mttr_ms"};

std::vector<ResultRow> eval_cosim_availability(const ScenarioSpec& spec) {
  const auto report = eval_cosim(spec, disagg::AllocationPolicy::kDisaggregated);
  const auto& f = report.fault;
  ResultRow row;
  row.cells = {spec.at("cosim.admission"),
               spec.at("fault.policy"),
               spec.at("fault.mcm_mtbf_ms"),
               spec.at("cosim.horizon_ms"),
               num_to_string(static_cast<double>(report.jobs.offered)),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(static_cast<double>(f.faults)),
               num_to_string(static_cast<double>(f.repairs)),
               num_to_string(static_cast<double>(f.interrupted)),
               num_to_string(static_cast<double>(f.requeued)),
               num_to_string(static_cast<double>(f.degraded)),
               num_to_string(static_cast<double>(f.killed)),
               num_to_string(static_cast<double>(f.goodput_jobs)),
               num_to_string(f.availability),
               num_to_string(f.work_lost_ms),
               num_to_string(f.mean_mttr_ms)};
  return {std::move(row)};
}

std::vector<Axis> cosim_availability_axes() {
  return {{"cosim.admission", {"drop", "queue"}},
          {"fault.policy", {"kill", "requeue", "degrade"}},
          {"fault.enabled", {"true"}},
          {"fault.mcm_mtbf_ms", {"40", "160", "640"}},
          {"fault.node_mtbf_ms", {"320"}},
          {"cosim.horizon_ms", {"200"}}};
}

const std::vector<std::string> kCosimBlastRadiusColumns = {
    "policy",       "mcm_mtbf_ms",  "offered",     "accepted",
    "faults",       "interrupted",  "requeued",    "killed",
    "goodput",      "availability", "work_lost_ms"};

std::vector<ResultRow> eval_cosim_blast_radius(const ScenarioSpec& spec) {
  const auto report =
      eval_cosim(spec, disagg::allocation_policy_codec().parse(spec.at("policy")));
  const auto& f = report.fault;
  ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("fault.mcm_mtbf_ms"),
               num_to_string(static_cast<double>(report.jobs.offered)),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(static_cast<double>(f.faults)),
               num_to_string(static_cast<double>(f.interrupted)),
               num_to_string(static_cast<double>(f.requeued)),
               num_to_string(static_cast<double>(f.killed)),
               num_to_string(static_cast<double>(f.goodput_jobs)),
               num_to_string(f.availability),
               num_to_string(f.work_lost_ms)};
  return {std::move(row)};
}

std::vector<Axis> cosim_blast_radius_axes() {
  return {{"policy", {"static", "disagg"}},
          {"fault.enabled", {"true"}},
          {"fault.mcm_mtbf_ms", {"60", "240"}},
          {"fault.node_mtbf_ms", {"240"}},
          {"fault.policy", {"requeue"}},
          {"cosim.admission", {"queue"}},
          {"cosim.horizon_ms", {"200"}}};
}

// ---------------------------------------------------------------------------
// ML collective campaigns (src/collectives): training jobs whose step time
// is gated by the slowest collective flow, on the photonic fabric vs an
// electronic baseline (fig12-style framing via Kumar et al., PAPERS.md).
// The "fabric" axis is free: the evaluator maps electronic onto the
// unregistered MlConfig::electronic switch so the comparison is one row
// pair per pattern/gradient point.
// ---------------------------------------------------------------------------

const std::vector<std::string> kMlCollectivesColumns = {
    "fabric",       "pattern",       "gradient_mb",  "accelerators",
    "compute_ms",   "offered",       "accepted",     "completed",
    "steps",        "step_p50_ms",   "step_p99_ms",  "coll_frac_p50",
    "straggler_p99", "ideal_coll_ms"};

std::vector<ResultRow> eval_ml_collectives(const ScenarioSpec& spec) {
  obs::ObsBundle obs_bundle(spec.resolve<obs::ObsConfig>("obs"));
  cosim::CosimConfig cfg = cosim_config_from(spec);
  const std::string fabric = spec.at("fabric");
  if (fabric == "electronic")
    cfg.ml.electronic = true;
  else if (fabric != "photonic")
    throw std::invalid_argument("unknown fabric '" + fabric +
                                "' (want photonic|electronic)");
  const auto report = cosim::run_rack_cosim(
      spec.resolve<rack::RackConfig>("rack"), disagg::AllocationPolicy::kDisaggregated,
      workloads::UsageModel::cori(), cfg, obs_bundle.handles());
  // Closed-form uncontended collective time at the effective per-flow rate:
  // the lower bound the measured step times are judged against.
  const double effective_gbps =
      cfg.ml.demand_gbps * (cfg.ml.electronic ? cfg.ml.electronic_derate : 1.0);
  const double ideal_coll_ms =
      1e3 * collectives::lower_bound_seconds(cfg.ml.pattern, cfg.ml.accelerators,
                                             cfg.ml.gradient_mb * 1e6,
                                             effective_gbps);
  const auto& ml = report.ml;
  ResultRow row;
  row.cells = {fabric,
               spec.at("ml.pattern"),
               spec.at("ml.gradient_mb"),
               num_to_string(static_cast<double>(cfg.ml.accelerators)),
               num_to_string(cfg.ml.compute_ms),
               num_to_string(static_cast<double>(ml.jobs_offered)),
               num_to_string(static_cast<double>(ml.jobs_accepted)),
               num_to_string(static_cast<double>(ml.jobs_completed)),
               num_to_string(static_cast<double>(ml.steps)),
               num_to_string(ml.step_ms.p50),
               num_to_string(ml.step_ms.p99),
               num_to_string(ml.coll_frac.p50),
               num_to_string(ml.straggler.p99),
               num_to_string(ideal_coll_ms)};
  return {std::move(row)};
}

std::vector<Axis> ml_collectives_axes() {
  return {{"fabric", {"photonic", "electronic"}},
          {"ml.pattern", {"ring", "alltoall", "ps", "broadcast"}},
          {"ml.gradient_mb", {"8", "64"}},
          {"ml.enabled", {"true"}},
          {"cosim.arrivals_per_ms", {"0.05"}},
          {"cosim.horizon_ms", {"120"}}};
}

const std::vector<std::string> kMlVsHpcColumns = {
    "workload",     "arrivals_per_ms", "offered",      "accepted",
    "acceptance",   "wait_p99_ms",     "slowdown_p99", "step_p99_ms",
    "satisfied_frac", "energy_kj"};

std::vector<ResultRow> eval_ml_vs_hpc(const ScenarioSpec& spec) {
  obs::ObsBundle obs_bundle(spec.resolve<obs::ObsConfig>("obs"));
  cosim::CosimConfig cfg = cosim_config_from(spec);
  const std::string workload = spec.at("workload");
  if (workload == "ml") {
    cfg.ml.enabled = true;
    cfg.ml.mix_fraction = 1.0;
  } else if (workload != "hpc") {
    throw std::invalid_argument("unknown workload '" + workload +
                                "' (want hpc|ml)");
  }
  const auto report = cosim::run_rack_cosim(
      spec.resolve<rack::RackConfig>("rack"), disagg::AllocationPolicy::kDisaggregated,
      workloads::UsageModel::cori(), cfg, obs_bundle.handles());
  ResultRow row;
  row.cells = {workload,
               spec.at("cosim.arrivals_per_ms"),
               num_to_string(static_cast<double>(report.jobs.offered)),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(report.jobs.acceptance()),
               num_to_string(report.jobs.wait_ms.p99),
               num_to_string(report.jobs.slowdown.p99),
               num_to_string(report.ml.step_ms.p99),
               num_to_string(report.flows.satisfied_fraction),
               num_to_string(report.energy_joules / 1e3)};
  return {std::move(row)};
}

std::vector<Axis> ml_vs_hpc_axes() {
  return {{"workload", {"hpc", "ml"}},
          {"cosim.arrivals_per_ms", {"1", "4"}},
          {"cosim.admission", {"queue"}},
          {"cosim.horizon_ms", {"120"}}};
}

const std::vector<std::string> kMlMixedRackColumns = {
    "mix_fraction", "arrivals_per_ms", "offered",       "ml_offered",
    "accepted",     "ml_accepted",     "wait_p99_ms",   "step_p50_ms",
    "step_p99_ms",  "straggler_p99",   "mean_stretch",  "energy_kj"};

std::vector<ResultRow> eval_ml_mixed_rack(const ScenarioSpec& spec) {
  obs::ObsBundle obs_bundle(spec.resolve<obs::ObsConfig>("obs"));
  const auto report = cosim::run_rack_cosim(
      spec.resolve<rack::RackConfig>("rack"), disagg::AllocationPolicy::kDisaggregated,
      workloads::UsageModel::cori(), cosim_config_from(spec),
      obs_bundle.handles());
  const auto& ml = report.ml;
  ResultRow row;
  row.cells = {spec.at("ml.mix_fraction"),
               spec.at("cosim.arrivals_per_ms"),
               num_to_string(static_cast<double>(report.jobs.offered)),
               num_to_string(static_cast<double>(ml.jobs_offered)),
               num_to_string(static_cast<double>(report.jobs.accepted)),
               num_to_string(static_cast<double>(ml.jobs_accepted)),
               num_to_string(report.jobs.wait_ms.p99),
               num_to_string(ml.step_ms.p50),
               num_to_string(ml.step_ms.p99),
               num_to_string(ml.straggler.p99),
               num_to_string(report.mean_stretch),
               num_to_string(report.energy_joules / 1e3)};
  return {std::move(row)};
}

std::vector<Axis> ml_mixed_rack_axes() {
  return {{"ml.enabled", {"true"}},
          {"ml.mix_fraction", {"0.2", "0.5"}},
          {"cosim.arrivals_per_ms", {"4"}},
          {"cosim.admission", {"queue"}},
          {"cosim.horizon_ms", {"120"}}};
}

// ---------------------------------------------------------------------------
// Cluster co-simulation: rack-scale vs cluster-scale disaggregation (Ajibola
// et al. framing from PAPERS.md).  spill=none keeps every rack an island —
// overflow is lost but the inter-rack uplinks stay dark; next/least light
// the uplinks and trade interconnect watts for cluster-wide acceptance.
// Rows are deterministic at any --jobs level AND any cluster worker count
// (the conservative-window loop; byte-compared in CI's cluster smoke step).
// ---------------------------------------------------------------------------

const std::vector<std::string> kClusterEnergyColumns = {
    "policy",          "spill",        "racks",        "arrivals_per_ms",
    "offered",         "accepted",     "acceptance",   "spilled",
    "spill_failed",    "energy_kj",    "interconnect_kw", "kj_per_job",
    "barriers"};

std::vector<ResultRow> eval_cluster_energy(const ScenarioSpec& spec) {
  const auto report = cluster::run_cluster_cosim(
      spec.resolve<rack::RackConfig>("rack"),
      disagg::allocation_policy_codec().parse(spec.at("policy")),
      workloads::UsageModel::cori(), spec.resolve<cluster::ClusterConfig>("cluster"),
      cosim_config_from(spec));
  const auto& jobs = report.total.jobs;
  const double kj = report.total.energy_joules / 1e3;
  ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("cluster.spill"),
               spec.at("cluster.racks"),
               spec.at("cosim.arrivals_per_ms"),
               num_to_string(static_cast<double>(jobs.offered)),
               num_to_string(static_cast<double>(jobs.accepted)),
               num_to_string(jobs.acceptance()),
               num_to_string(static_cast<double>(report.spilled)),
               num_to_string(static_cast<double>(report.spill_failed)),
               num_to_string(kj),
               num_to_string(report.interconnect_power_w / 1e3),
               num_to_string(jobs.accepted
                                 ? kj / static_cast<double>(jobs.accepted)
                                 : 0.0),
               num_to_string(static_cast<double>(report.barriers))};
  return {std::move(row)};
}

std::vector<Axis> cluster_energy_axes() {
  return {{"policy", {"disagg"}},
          {"cluster.spill", {"none", "next", "least"}},
          {"cluster.racks", {"4"}},
          {"cosim.arrivals_per_ms", {"6", "12"}},
          {"cosim.horizon_ms", {"120"}}};
}

std::vector<Campaign> make_campaigns() {
  std::vector<Campaign> all;

  all.push_back(Campaign{
      "fig6",
      "CPU slowdown per benchmark at +35 ns LLC<->memory latency",
      "Fig 6 (Section VI-B1)",
      kCpuColumns,
      cpu_axes({"inorder", "ooo"}, {35.0}),
      eval_cpu_point});

  all.push_back(Campaign{
      "fig8",
      "CPU slowdown sensitivity to +25/30/35 ns added latency",
      "Fig 8 (Section VI-B2)",
      kCpuColumns,
      cpu_axes({"inorder"}, {25.0, 30.0, 35.0}),
      eval_cpu_point});

  all.push_back(Campaign{
      "fig9",
      "GPU slowdown per application at +25/30/35 ns LLC<->HBM latency",
      "Fig 9 (Section VI-B3)",
      kGpuColumns,
      gpu_axes({25.0, 30.0, 35.0}, {1.0}),
      eval_gpu_point});

  all.push_back(Campaign{
      "table1",
      "Links and transceiver power per technology for the MCM escape budget",
      "Table I (Section III)",
      kTable1Columns,
      table1_axes(),
      eval_table1_point});

  all.push_back(Campaign{
      "table3",
      "MCM packing of the Perlmutter-like rack per chip type",
      "Table III (Section V-A)",
      kTable3Columns,
      table3_axes(),
      eval_table3_point});

  all.push_back(Campaign{
      "sec6c",
      "Photonic fabric power overhead vs the baseline rack",
      "Section VI-C",
      kSec6cColumns,
      sec6c_axes(),
      eval_sec6c_point});

  all.push_back(Campaign{
      "cosim_acceptance",
      "Closed-loop job acceptance per policy under rising load",
      "Sections II-A and VI (co-simulation)",
      kCosimAcceptanceColumns,
      cosim_acceptance_axes(),
      eval_cosim_acceptance});

  all.push_back(Campaign{
      "cosim_contention",
      "Contention feedback: open vs closed loop on the shared fabric",
      "Section IV-A (co-simulation)",
      kCosimContentionColumns,
      cosim_contention_axes(),
      eval_cosim_contention});

  all.push_back(Campaign{
      "cosim_energy",
      "Time-integrated rack energy under the live job stream",
      "Section VI-C (co-simulation)",
      kCosimEnergyColumns,
      cosim_energy_axes(),
      eval_cosim_energy});

  all.push_back(Campaign{
      "cosim_tails",
      "Tail latency (wait/slowdown/FCT p50/p99/p999) per arrival process",
      "production traffic engine (open-loop arrivals, queued admission)",
      kCosimTailsColumns,
      cosim_tails_axes(),
      eval_cosim_tails});

  all.push_back(Campaign{
      "cosim_availability",
      "Availability and goodput under the seed-derived fault timeline",
      "fault injection & resilience engine (deterministic MTBF sweep)",
      kCosimAvailabilityColumns,
      cosim_availability_axes(),
      eval_cosim_availability});

  all.push_back(Campaign{
      "cosim_blast_radius",
      "Fault blast radius: static node-local vs disaggregated fabric-bound",
      "fault injection & resilience engine (identical timeline per policy)",
      kCosimBlastRadiusColumns,
      cosim_blast_radius_axes(),
      eval_cosim_blast_radius});

  all.push_back(Campaign{
      "ml_collectives",
      "Training-step time per collective pattern: photonic vs electronic fabric",
      "ML collectives on the wavelength fabric (Kumar et al., fig12-style)",
      kMlCollectivesColumns,
      ml_collectives_axes(),
      eval_ml_collectives});

  all.push_back(Campaign{
      "ml_vs_hpc",
      "Pure ML job streams vs the paper's HPC mix on one rack",
      "ML collectives on the wavelength fabric (workload comparison)",
      kMlVsHpcColumns,
      ml_vs_hpc_axes(),
      eval_ml_vs_hpc});

  all.push_back(Campaign{
      "ml_mixed_rack",
      "HPC+ML sharing one rack: interference at rising ML mix fractions",
      "ML collectives on the wavelength fabric (mixed tenancy)",
      kMlMixedRackColumns,
      ml_mixed_rack_axes(),
      eval_ml_mixed_rack});

  all.push_back(Campaign{
      "cluster_energy",
      "Rack-scale vs cluster-scale disaggregation: acceptance and energy",
      "multi-rack cluster co-simulation (deterministic parallel event loop)",
      kClusterEnergyColumns,
      cluster_energy_axes(),
      eval_cluster_energy});

  return all;
}

}  // namespace

const std::vector<Campaign>& campaigns() {
  static const std::vector<Campaign> registry = make_campaigns();
  return registry;
}

const Campaign& campaign_by_name(const std::string& name) {
  for (const auto& campaign : campaigns())
    if (campaign.name == name) return campaign;
  std::string known;
  for (const auto& campaign : campaigns()) {
    if (!known.empty()) known += ", ";
    known += campaign.name;
  }
  throw std::out_of_range("unknown campaign '" + name + "' (known: " + known + ")");
}

}  // namespace photorack::scenario
