#include "rack/rack_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::rack {

const config::EnumCodec<FabricKind>& fabric_kind_codec() {
  static const config::EnumCodec<FabricKind> codec(
      "fabric", {{"awgr", FabricKind::kParallelAwgrs},
                 {"wss", FabricKind::kSpatialOrWss},
                 {"electronic", FabricKind::kElectronicSwitches}});
  return codec;
}

const char* to_string(FabricKind kind) { return fabric_kind_codec().name(kind).c_str(); }

std::vector<int> distribute_wavelengths(int total_lambdas, int port_cap) {
  if (total_lambdas <= 0 || port_cap <= 0)
    throw std::invalid_argument("distribute_wavelengths: non-positive input");
  std::vector<int> ports;
  int remaining = total_lambdas;
  while (remaining > 0) {
    const int take = std::min(remaining, port_cap);
    ports.push_back(take);
    remaining -= take;
  }
  return ports;
}

namespace {

AwgrFabricPlan build_awgr_plan(const McmPlan& mcm_plan) {
  const auto& cfg = phot::table4_study_configs()[0];  // cascaded AWGR row
  AwgrFabricPlan plan;
  plan.awgr_radix = cfg.radix;
  plan.port_wavelength_cap = cfg.wavelengths_per_port;
  if (mcm_plan.total_mcms > cfg.radix)
    throw std::runtime_error("rack has more MCMs than AWGR ports");

  plan.lambdas_per_port =
      distribute_wavelengths(mcm_plan.mcm.total_wavelengths(), cfg.wavelengths_per_port);
  plan.parallel_awgrs = static_cast<int>(plan.lambdas_per_port.size());

  // An AWGR port reaching all other MCMs needs one wavelength per possible
  // destination: ports carrying >= #MCMs wavelengths give all-pairs direct
  // coverage; smaller ports cover only a subset of destinations.
  for (int w : plan.lambdas_per_port)
    if (w >= mcm_plan.total_mcms) ++plan.full_coverage_awgrs;
  plan.min_direct_lambdas_per_pair = plan.full_coverage_awgrs;
  plan.direct_pair_bandwidth =
      phot::Gbps{plan.min_direct_lambdas_per_pair * cfg.gbps_per_wavelength.value};
  return plan;
}

SpatialFabricPlan build_spatial_plan(const McmPlan& mcm_plan) {
  const auto cfg = phot::merged_spatial_wss_config();
  SpatialFabricPlan plan;
  plan.radix = cfg.radix;
  plan.wavelengths_per_port = cfg.wavelengths_per_port;
  plan.fibers_per_connection =
      cfg.wavelengths_per_port / mcm_plan.mcm.wavelengths_per_fiber;  // 256/64 = 4
  plan.max_connections_per_mcm = mcm_plan.mcm.fibers / plan.fibers_per_connection;  // 8
  plan.stagger = 32;  // §V-B: switch I starts at MCM index 32*I
  const int mcms = mcm_plan.total_mcms;
  // Enough staggered windows that every MCM falls inside ~8 of them:
  // ceil(mcms / stagger) = 11 switches for 350 MCMs.
  plan.switches = (mcms + plan.stagger - 1) / plan.stagger;

  plan.connections.assign(mcms, {});
  for (int sw = 0; sw < plan.switches; ++sw) {
    const int start = (plan.stagger * sw) % mcms;
    for (int j = 0; j < plan.radix && j < mcms; ++j) {
      const int m = (start + j) % mcms;
      plan.connections[m].push_back(sw);
    }
  }
  // Trim over-covered MCMs to the fiber budget.  Drop the connection where
  // the MCM sits deepest into the window (it contributes least to pairwise
  // overlap with distant MCMs); deterministic: highest in-window offset
  // first.
  for (int m = 0; m < mcms; ++m) {
    auto& conns = plan.connections[m];
    while (static_cast<int>(conns.size()) > plan.max_connections_per_mcm) {
      auto deepest = std::max_element(conns.begin(), conns.end(), [&](int a, int b) {
        const int offa = (m - plan.stagger * a % mcms + mcms) % mcms;
        const int offb = (m - plan.stagger * b % mcms + mcms) % mcms;
        return offa < offb;
      });
      conns.erase(deepest);
    }
  }

  // Pairwise direct-path statistics.
  long long sum = 0, pairs = 0;
  int min_paths = plan.switches;
  std::vector<std::uint64_t> masks(mcms, 0);
  for (int m = 0; m < mcms; ++m)
    for (int sw : plan.connections[m]) masks[m] |= (1ULL << sw);
  for (int a = 0; a < mcms; ++a) {
    for (int b = a + 1; b < mcms; ++b) {
      const int overlap = __builtin_popcountll(masks[a] & masks[b]);
      sum += overlap;
      ++pairs;
      min_paths = std::min(min_paths, overlap);
    }
  }
  plan.min_direct_paths_per_pair = min_paths;
  plan.avg_direct_paths_per_pair = pairs ? static_cast<double>(sum) / pairs : 0.0;
  plan.direct_pair_bandwidth = phot::Gbps{
      static_cast<double>(min_paths) * cfg.wavelengths_per_port * cfg.gbps_per_wavelength.value};
  return plan;
}

}  // namespace

RackDesign build_rack_design(FabricKind fabric, const RackConfig& rack, const McmConfig& mcm,
                             phot::Meters reach) {
  RackDesign design;
  design.rack = rack;
  design.mcm_plan = pack_rack(rack, mcm);
  design.fabric = fabric;

  const phot::Nanoseconds photonic = phot::PropagationModel{}.added_latency(reach);
  switch (fabric) {
    case FabricKind::kParallelAwgrs:
      design.awgr = build_awgr_plan(design.mcm_plan);
      design.added_latency = photonic;  // no switch traversal latency (passive)
      break;
    case FabricKind::kSpatialOrWss:
      design.spatial = build_spatial_plan(design.mcm_plan);
      // All-optical path once configured: same 35 ns; the cost is the
      // centralized scheduler and reconfiguration time (§VI-A1), modeled in
      // net::CentralizedScheduler.
      design.added_latency = photonic;
      break;
    case FabricKind::kElectronicSwitches:
      design.electronic = ElectronicFabricConfig{};
      design.added_latency = phot::Nanoseconds{
          photonic.value + design.electronic.added_switch_latency().value};
      break;
  }
  return design;
}

}  // namespace photorack::rack
