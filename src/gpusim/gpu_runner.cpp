#include "gpusim/gpu_runner.hpp"

#include <stdexcept>

namespace photorack::gpusim {

int AppProfile::total_launches() const {
  int n = 0;
  for (const auto& k : kernels) n += k.launches;
  return n;
}

AppResult run_app(const AppProfile& app, const GpuConfig& gpu) {
  if (app.kernels.empty()) throw std::invalid_argument("run_app: app has no kernels");
  AppResult out;
  out.name = app.name;

  double total_instrs = 0.0, total_l2_txn = 0.0, total_hbm_txn = 0.0, total_mem_instr = 0.0;
  for (const auto& launch : app.kernels) {
    KernelResult kr = evaluate_kernel(launch.profile, gpu);
    const double n = launch.launches;
    out.time_us += kr.time_us * n;

    const double instrs = launch.profile.warp_instructions * n;
    const double l2_txn =
        launch.profile.warp_instructions * launch.profile.mem_fraction *
        launch.profile.sectors_per_access * n;
    total_instrs += instrs;
    total_mem_instr += instrs * launch.profile.mem_fraction;
    total_l2_txn += l2_txn;
    total_hbm_txn += l2_txn * kr.l2_miss_rate;
    out.kernel_results.push_back(std::move(kr));
  }
  out.predicted_cycles = out.time_us * 1e3 * gpu.freq_ghz;
  out.l2_miss_rate = total_l2_txn > 0 ? total_hbm_txn / total_l2_txn : 0.0;
  out.hbm_txn_per_instr = total_instrs > 0 ? total_hbm_txn / total_instrs : 0.0;
  out.mem_instr_fraction = total_instrs > 0 ? total_mem_instr / total_instrs : 0.0;
  return out;
}

double app_slowdown(const AppProfile& app, GpuConfig gpu, double extra_ns) {
  gpu.extra_hbm_ns = 0.0;
  const AppResult base = run_app(app, gpu);
  gpu.extra_hbm_ns = extra_ns;
  const AppResult perturbed = run_app(app, gpu);
  if (base.time_us <= 0.0) throw std::logic_error("app_slowdown: empty baseline");
  return perturbed.time_us / base.time_us - 1.0;
}

}  // namespace photorack::gpusim
