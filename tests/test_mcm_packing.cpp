#include "rack/mcm.hpp"

#include <gtest/gtest.h>

namespace photorack::rack {
namespace {

TEST(McmConfig, EscapeBudget) {
  McmConfig mcm;
  EXPECT_EQ(mcm.total_wavelengths(), 2048);
  EXPECT_DOUBLE_EQ(mcm.escape_gbps().value, 51'200.0);
  EXPECT_DOUBLE_EQ(mcm.escape().value, 6'400.0);
}

/// Table III, row by row.
struct PackingCase {
  ChipType type;
  int chips_per_mcm;
  int mcm_count;
};

class Table3Packing : public ::testing::TestWithParam<PackingCase> {};

TEST_P(Table3Packing, MatchesPaper) {
  const auto plan = pack_rack();
  const auto& p = plan.plan_for(GetParam().type);
  EXPECT_EQ(p.chips_per_mcm, GetParam().chips_per_mcm);
  EXPECT_EQ(p.mcm_count, GetParam().mcm_count);
}

INSTANTIATE_TEST_SUITE_P(Table3, Table3Packing,
                         ::testing::Values(PackingCase{ChipType::kCpu, 14, 10},
                                           PackingCase{ChipType::kGpu, 3, 171},
                                           PackingCase{ChipType::kNic, 203, 3},
                                           PackingCase{ChipType::kHbm, 4, 128},
                                           PackingCase{ChipType::kDdr4, 27, 38}));

TEST(McmPacking, TotalIs350) { EXPECT_EQ(pack_rack().total_mcms, 350); }

TEST(McmPacking, EscapeBandwidthNeverRestricted) {
  // The design guarantee of Section V-A: each chip's share of the MCM
  // escape is at least its native escape bandwidth.
  const auto plan = pack_rack();
  for (const auto& p : plan.types)
    EXPECT_GE(p.per_chip_share.value, p.per_chip_escape.value) << to_string(p.type);
}

TEST(McmPacking, AllChipsAreHoused) {
  const RackConfig rack;
  const auto plan = pack_rack(rack);
  for (const auto& p : plan.types)
    EXPECT_GE(p.chips_per_mcm * p.mcm_count, rack.total_chips(p.type))
        << to_string(p.type);
}

TEST(McmPacking, HigherEscapeMeansFewerMcms) {
  McmConfig big;
  big.fibers = 64;  // double the escape
  const auto plan_big = pack_rack({}, big);
  const auto plan_base = pack_rack();
  EXPECT_LT(plan_big.total_mcms, plan_base.total_mcms);
}

TEST(McmPacking, ThrowsWhenChipCannotFit) {
  McmConfig tiny;
  tiny.fibers = 1;  // 200 GB/s escape < one GPU's 1886.7 GB/s
  EXPECT_THROW(pack_rack({}, tiny), std::runtime_error);
}

TEST(McmPacking, UnknownTypeLookupThrows) {
  McmPlan empty;
  EXPECT_THROW(empty.plan_for(ChipType::kCpu), std::out_of_range);
}

/// Property sweep over escape budgets: for every feasible MCM
/// configuration, (1) every chip is housed, (2) no chip's bandwidth share
/// drops below its native escape, and (3) per-type MCM counts are the
/// minimal ceiling.
class PackingProperty : public ::testing::TestWithParam<int> {};

TEST_P(PackingProperty, InvariantsHoldForFiberCount) {
  McmConfig mcm;
  mcm.fibers = GetParam();
  const RackConfig rack;
  const auto plan = pack_rack(rack, mcm);
  for (const auto& p : plan.types) {
    const int total = rack.total_chips(p.type);
    EXPECT_GE(p.chips_per_mcm * p.mcm_count, total) << to_string(p.type);
    // Minimality: one fewer MCM would strand chips.
    EXPECT_LT(p.chips_per_mcm * (p.mcm_count - 1), total) << to_string(p.type);
    EXPECT_GE(p.per_chip_share.value, p.per_chip_escape.value) << to_string(p.type);
  }
}

INSTANTIATE_TEST_SUITE_P(FiberCounts, PackingProperty,
                         ::testing::Values(16, 24, 32, 40, 48, 64));

/// With ever-larger escape, MCM counts approach the packaging-cap floor.
TEST(McmPacking, PackagingCapBindsAtHighEscape) {
  McmConfig huge;
  huge.fibers = 128;
  const auto plan = pack_rack({}, huge);
  EXPECT_EQ(plan.plan_for(ChipType::kDdr4).chips_per_mcm, 27);  // cap, not escape
}

}  // namespace
}  // namespace photorack::rack
