// Reproduces Fig 9: per-application GPU slowdown (total predicted cycles)
// for 25/30/35 ns of additional LLC<->HBM latency on an A100.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/table.hpp"
#include "workloads/gpu_profiles.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 9: GPU slowdown at +25/30/35 ns",
                     "Fig 9 (Section VI-B3)");

  const auto sweep = core::run_gpu_sweep({0.0, 25.0, 30.0, 35.0});

  sim::Table table({"App", "Suite", "+25 ns", "+30 ns", "+35 ns", "L2 missrate"});
  for (const auto& app : workloads::gpu_apps()) {
    const auto& r25 = sweep.find(app.name, 25.0);
    const auto& r30 = sweep.find(app.name, 30.0);
    const auto& r35 = sweep.find(app.name, 35.0);
    table.add_row({app.name, app.suite, sim::fmt_pct(r25.slowdown),
                   sim::fmt_pct(r30.slowdown), sim::fmt_pct(r35.slowdown),
                   sim::fmt_pct(r35.result.l2_miss_rate)});
  }
  table.print(std::cout);

  std::cout << "\ntotal kernel launches modeled: "
            << workloads::total_gpu_kernel_launches() << " (paper: 1525)\n";

  std::cout << "\npaper-vs-measured (Section VI-B3):\n";
  core::check_line(std::cout, "average GPU slowdown at +35 ns", 0.0535,
                   sweep.mean_slowdown(35.0));
  core::check_line(std::cout, "max GPU slowdown at +35 ns (Fig 11: ~12%)", 0.12,
                   sweep.max_slowdown(35.0));
  core::check_line(std::cout, "kernel launches", 1525,
                   workloads::total_gpu_kernel_launches(), 0.01);
  return 0;
}
