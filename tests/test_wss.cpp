#include "phot/wss.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace photorack::phot {
namespace {

TEST(Wss, SingleDemand) {
  const WssDemand d{0, 1, 3};
  const auto a = assign_wavelengths(4, 8, std::span(&d, 1));
  ASSERT_TRUE(a.complete);
  EXPECT_EQ(a.grants.size(), 3u);
  EXPECT_EQ(a.lambdas_for(0, 1).size(), 3u);
  EXPECT_TRUE(is_conflict_free(4, 8, a));
}

TEST(Wss, TwoSourcesOneDestinationGetDistinctLambdas) {
  // The §III-D2 constraint this module exists for.
  const std::vector<WssDemand> demands = {{0, 2, 1}, {1, 2, 1}};
  const auto a = assign_wavelengths(4, 2, demands);
  ASSERT_TRUE(a.complete);
  const auto l0 = a.lambdas_for(0, 2);
  const auto l1 = a.lambdas_for(1, 2);
  ASSERT_EQ(l0.size(), 1u);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_NE(l0[0], l1[0]);
}

TEST(Wss, KempeChainCaseIsHandled) {
  // Force the conflict: with 2 colours, demands 0->0, 1->0, 1->1, 0->1
  // cannot be coloured greedily in arrival order without recolouring.
  const std::vector<WssDemand> demands = {{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
  const auto a = assign_wavelengths(2, 2, demands);
  ASSERT_TRUE(a.complete);
  EXPECT_EQ(a.grants.size(), 4u);
  EXPECT_TRUE(is_conflict_free(2, 2, a));
}

TEST(Wss, FullPermutationUsesOneColour) {
  // A perfect matching needs only one wavelength in principle; the
  // assignment must at least be complete and conflict-free.
  std::vector<WssDemand> demands;
  for (int p = 0; p < 16; ++p) demands.push_back({p, (p + 5) % 16, 1});
  const auto a = assign_wavelengths(16, 1, demands);
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(is_conflict_free(16, 1, a));
}

TEST(Wss, SaturatedPortIsStillColourable) {
  // One source fanning out its full wavelength budget.
  std::vector<WssDemand> demands;
  for (int d = 1; d < 9; ++d) demands.push_back({0, d, 1});
  const auto a = assign_wavelengths(16, 8, demands);
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(is_conflict_free(16, 8, a));
}

TEST(Wss, OversubscribedPortIsRejected) {
  const std::vector<WssDemand> demands = {{0, 1, 5}, {0, 2, 4}};  // 9 > 8
  const auto a = assign_wavelengths(4, 8, demands);
  EXPECT_FALSE(a.complete);
  EXPECT_TRUE(a.grants.empty());
}

TEST(Wss, BadInputsThrow) {
  const WssDemand bad_port{9, 0, 1};
  EXPECT_THROW(assign_wavelengths(4, 8, std::span(&bad_port, 1)), std::invalid_argument);
  const WssDemand empty{0, 1, 0};
  EXPECT_THROW(assign_wavelengths(4, 8, std::span(&empty, 1)), std::invalid_argument);
  EXPECT_THROW(assign_wavelengths(0, 8, {}), std::invalid_argument);
}

/// Property sweep (König's theorem, constructively): any random demand set
/// whose per-port totals fit the wavelength budget is fully assignable
/// without conflicts.
class WssRandomDemands : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WssRandomDemands, AlwaysCompleteAndConflictFree) {
  const int ports = 24;
  const int wavelengths = 16;
  sim::Rng rng(GetParam());
  std::vector<int> src_left(ports, wavelengths), dst_left(ports, wavelengths);
  std::vector<WssDemand> demands;
  for (int tries = 0; tries < 300; ++tries) {
    const int s = static_cast<int>(rng.below(ports));
    const int d = static_cast<int>(rng.below(ports));
    const int most = std::min(src_left[s], dst_left[d]);
    if (most <= 0) continue;
    const int take = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(most)));
    demands.push_back({s, d, take});
    src_left[s] -= take;
    dst_left[d] -= take;
  }
  const auto a = assign_wavelengths(ports, wavelengths, demands);
  ASSERT_TRUE(a.complete);
  EXPECT_TRUE(is_conflict_free(ports, wavelengths, a));
  std::size_t total = 0;
  for (const auto& dmd : demands) total += static_cast<std::size_t>(dmd.lambdas);
  EXPECT_EQ(a.grants.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WssRandomDemands,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace photorack::phot
