#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace photorack::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Pearson, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> flat = {5, 5, 5};
  EXPECT_EQ(pearson(x, flat), 0.0);
  std::vector<double> one = {1.0};
  EXPECT_EQ(pearson(one, one), 0.0);
}

TEST(Pearson, KnownValue) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 2, 2, 5, 4};
  // Hand-computed: sxy = 9, sxx = 10, syy = 10.8 => r = 9/sqrt(108).
  EXPECT_NEAR(pearson(x, y), 9.0 / std::sqrt(108.0), 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

// The old contract returned 0.0 for an empty input — a phantom value that
// let p99 provisioning size against zero demand.  Empty is now a hard error.
TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Means, MeanGeomeanMax) {
  std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 7.0);
  EXPECT_NEAR(geomean_of(v), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(max_of(v), 16.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

// geomean_of used to clamp non-positive inputs to 1e-300, silently dragging
// the mean toward zero; both degenerate cases are now hard errors.
TEST(Means, GeomeanRejectsEmptyAndNonPositive) {
  EXPECT_THROW(geomean_of({}), std::invalid_argument);
  std::vector<double> with_zero = {1.0, 0.0, 4.0};
  EXPECT_THROW(geomean_of(with_zero), std::invalid_argument);
  std::vector<double> with_negative = {1.0, -2.0};
  EXPECT_THROW(geomean_of(with_negative), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// QuantileSketch: bounded relative error, exact merges, O(1) memory.
// ---------------------------------------------------------------------------

/// Assert every probed quantile of `sketch` is within its stated relative
/// error of the exact rank statistic of `values`.
void expect_within_bound(const QuantileSketch& sketch, std::vector<double> values) {
  for (const double q : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double exact = percentile(values, q);
    const double approx = sketch.quantile(q);
    EXPECT_NEAR(approx, exact, sketch.relative_error() * std::abs(exact) + 1e-12)
        << "q=" << q;
  }
}

TEST(QuantileSketchTest, HeavyTailLognormalWithinErrorBound) {
  Rng rng(42);
  QuantileSketch sketch(0.01);
  std::vector<double> values;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.lognormal(0.0, 2.0);  // spans several decades
    sketch.add(x);
    values.push_back(x);
  }
  expect_within_bound(sketch, std::move(values));
}

TEST(QuantileSketchTest, BimodalWithinErrorBound) {
  Rng rng(7);
  QuantileSketch sketch(0.02);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double x =
        rng.bernoulli(0.9) ? rng.uniform(0.5, 1.5) : rng.uniform(800.0, 1200.0);
    sketch.add(x);
    values.push_back(x);
  }
  expect_within_bound(sketch, std::move(values));
}

TEST(QuantileSketchTest, ConstantStreamIsExact) {
  QuantileSketch sketch(0.01);
  for (int i = 0; i < 1000; ++i) sketch.add(3.25);
  // All mass in one bucket, and the [min, max] clamp pins the answer.
  EXPECT_DOUBLE_EQ(sketch.quantile(0), 3.25);
  EXPECT_DOUBLE_EQ(sketch.quantile(50), 3.25);
  EXPECT_DOUBLE_EQ(sketch.quantile(99.9), 3.25);
}

TEST(QuantileSketchTest, ZerosReportExactlyZero) {
  QuantileSketch sketch;
  for (int i = 0; i < 90; ++i) sketch.add(0.0);
  for (int i = 0; i < 10; ++i) sketch.add(100.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(50), 0.0);
  EXPECT_GT(sketch.quantile(99), 0.0);
}

TEST(QuantileSketchTest, QuantilesAreMonotoneInQ) {
  Rng rng(3);
  QuantileSketch sketch;
  for (int i = 0; i < 50000; ++i) sketch.add(rng.exponential(5.0));
  double prev = sketch.quantile(0);
  for (double q = 5; q <= 100; q += 5) {
    const double cur = sketch.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(QuantileSketchTest, MergeMatchesSequentialExactly) {
  // Integer bucket counts make merge EXACT, not just within-bound: the
  // merged sketch must answer bit-identically to one fed sequentially.
  Rng rng(11);
  QuantileSketch a, b, c, all;
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.lognormal(1.0, 1.5);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
    all.add(x);
  }
  QuantileSketch merged = a;
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), all.count());
  for (const double q : {1.0, 50.0, 99.0, 99.9})
    EXPECT_DOUBLE_EQ(merged.quantile(q), all.quantile(q)) << "q=" << q;
}

TEST(QuantileSketchTest, MergeIsOrderIndependent) {
  Rng rng(13);
  QuantileSketch a, b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.exponential(1.0));
    b.add(rng.exponential(100.0));
  }
  QuantileSketch ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  for (const double q : {10.0, 50.0, 99.0})
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
}

TEST(QuantileSketchTest, MillionSamplesO1Memory) {
  // The acceptance criterion behind the traffic engine: a >= 1M-sample
  // open-loop stream summarizes in O(1) memory (no per-sample storage).
  // The exact distribution of a scaled exponential is known, so the tails
  // can be checked against closed form instead of a giant sorted vector.
  Rng rng(2026);
  QuantileSketch sketch(0.01);
  constexpr int kSamples = 1'500'000;
  for (int i = 0; i < kSamples; ++i) sketch.add(rng.exponential(10.0));
  EXPECT_EQ(sketch.count(), static_cast<std::size_t>(kSamples));
  // Exponential(mean 10): q-quantile = -10 ln(1 - q).  At n = 1.5M the
  // sampling error at p99.9 is well under the combined 3% tolerance.
  const double p50 = -10.0 * std::log(1.0 - 0.50);
  const double p99 = -10.0 * std::log(1.0 - 0.99);
  const double p999 = -10.0 * std::log(1.0 - 0.999);
  EXPECT_NEAR(sketch.quantile(50), p50, 0.03 * p50);
  EXPECT_NEAR(sketch.quantile(99), p99, 0.03 * p99);
  EXPECT_NEAR(sketch.quantile(99.9), p999, 0.03 * p999);
}

TEST(QuantileSketchTest, ContractViolationsThrow) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
  QuantileSketch sketch;
  EXPECT_THROW(sketch.add(-1.0), std::invalid_argument);
  EXPECT_THROW(sketch.add(std::nan("")), std::invalid_argument);
  EXPECT_THROW(sketch.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(sketch.quantile(50), std::logic_error);  // still empty
  EXPECT_EQ(sketch.quantile_or(50, -7.0), -7.0);
  QuantileSketch coarser(0.05);
  EXPECT_THROW(sketch.merge(coarser), std::invalid_argument);
}

TEST(HistogramTest, CountsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 1e-12);
  EXPECT_EQ(h.cdf(-1.0), 0.0);
  EXPECT_EQ(h.cdf(10.0), 1.0);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(HistogramTest, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace photorack::sim
