#include "phot/power.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::phot {

void EnergyTrace::step_to(double seconds, Watts watts) {
  if (started_ && seconds < last_t_)
    throw std::invalid_argument("EnergyTrace: time moved backwards");
  if (!started_) {
    started_ = true;
    t0_ = seconds;
  } else {
    joules_ += last_w_ * (seconds - last_t_);
  }
  last_t_ = seconds;
  last_w_ = watts.value;
  peak_ = std::max(peak_, watts.value);
  ++steps_;
  if (observer_) observer_(seconds, watts.value);
}

Watts EnergyTrace::mean_power() const {
  const double span = seconds();
  return span > 0.0 ? Watts{joules_ / span} : Watts{last_w_};
}

PowerBreakdown photonic_power_overhead(const PhotonicPowerConfig& cfg,
                                       const BaselineRackPower& base) {
  PowerBreakdown out;
  const double total_gbps = static_cast<double>(cfg.mcms) * cfg.wavelengths_per_mcm *
                            cfg.gbps_per_wavelength.value;
  // lasers_always_on means the full escape bandwidth burns transceiver energy
  // regardless of utilization — the paper's pessimistic assumption.  A
  // utilization-gated variant would scale this term down.
  out.transceivers = power_of(cfg.transceiver_pair_energy, Gbps{total_gbps});
  out.switches = cfg.all_switches_power;
  out.total = out.transceivers + out.switches;
  out.overhead_vs_baseline = out.total.value / base.total().value;
  return out;
}

}  // namespace photorack::phot
