#include "phot/latency_budget.hpp"

namespace photorack::phot {

LatencyBudget photonic_budget(const BudgetInputs& in) {
  LatencyBudget budget;
  budget.parts.push_back({"OEO conversion", in.propagation.oeo});
  budget.parts.push_back(
      {"fiber propagation",
       Nanoseconds{in.propagation.ns_per_meter * in.reach.value}});
  const FecModel fec(in.fec);
  const Nanoseconds ser_fec = fec.total_latency(in.lane_rate);
  budget.parts.push_back({"serialization + FEC", ser_fec});
  return budget;
}

LatencyBudget electronic_budget(const BudgetInputs& in) {
  // Propagation over copper is comparable to fiber at intra-rack distances
  // (§VI-D), so the electronic path shares every photonic term except the
  // OEO conversion, replaced by SERDES of similar magnitude — and then adds
  // the switch hops.
  LatencyBudget budget = photonic_budget(in);
  budget.parts.push_back(
      {"switch hops (" + std::to_string(in.electronic_hops) + ")",
       Nanoseconds{in.electronic_per_hop.value * in.electronic_hops}});
  return budget;
}

}  // namespace photorack::phot
