// Reproduces Table III: chips per MCM and MCMs per rack for the
// Perlmutter-like 128-node rack, under the 32-fiber x 64-wavelength x
// 25 Gb/s MCM escape budget.  Thin wrapper over the scenario engine's
// "table3" campaign (same sweep as `photorack_sweep --campaign table3`;
// override the geometry axes with --set fibers=... to explore variants).
#include <iostream>

#include "core/report.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Table III: MCM packing", "Table III (Section V-A)");

  const auto& campaign = scenario::campaign_by_name("table3");
  scenario::TableSink table(std::cout);
  const auto res = scenario::SweepRunner().run(campaign, {&table});

  std::cout << "\npaper-vs-measured (paper values from Table III):\n";
  const struct {
    const char* chip;
    int chips, mcms;
  } expect[] = {
      {"CPU", 14, 10}, {"GPU", 3, 171}, {"NIC", 203, 3}, {"HBM", 4, 128}, {"DDR4", 27, 38},
  };
  for (const auto& e : expect) {
    const auto& row = res.find({{"chip", e.chip}});
    core::check_line(std::cout, std::string(e.chip) + " chips/MCM", e.chips,
                     res.num(row, "chips_per_mcm"), 0.01);
    core::check_line(std::cout, std::string(e.chip) + " MCMs/rack", e.mcms,
                     res.num(row, "mcm_count"), 0.01);
  }
  core::check_line(std::cout, "total MCMs", 350, res.num(res.rows.front(), "total_mcms"),
                   0.01);
  return 0;
}
