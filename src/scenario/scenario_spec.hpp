#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace photorack::scenario {

/// One point of a design-space sweep, fully described by its axis values.
/// A spec is declarative: campaigns interpret the axes (benchmark name,
/// fabric kind, extra latency, MCM geometry, ...) when they evaluate it.
/// The spec's identity — campaign name plus every axis=value pair — also
/// seeds the scenario, so a spec reproduces bit-identically no matter where
/// in a parallel sweep it runs.
struct ScenarioSpec {
  std::string campaign;
  std::size_t index = 0;  // stable position in the expanded grid
  std::vector<std::pair<std::string, std::string>> axes;  // in grid order
  std::uint64_t base_seed = 0;

  /// Canonical identity string: "campaign[axis1=v1,axis2=v2,...]".
  [[nodiscard]] std::string id() const;

  /// Deterministic per-scenario seed: a hash of id() mixed with base_seed.
  /// Equal specs derive equal seeds in every process, so parallel and serial
  /// sweeps are bit-identical; distinct specs get independent streams.
  [[nodiscard]] std::uint64_t derived_seed() const;

  [[nodiscard]] bool has(const std::string& axis) const;
  /// Value of an axis; throws std::out_of_range for unknown axes.
  [[nodiscard]] const std::string& at(const std::string& axis) const;
  /// Numeric accessors; throw std::invalid_argument on non-numeric values.
  [[nodiscard]] double num(const std::string& axis) const;
  [[nodiscard]] std::uint64_t uint(const std::string& axis) const;
  [[nodiscard]] int integer(const std::string& axis) const;
};

}  // namespace photorack::scenario
