#include "gpusim/gpu_runner.hpp"

#include <gtest/gtest.h>

namespace photorack::gpusim {
namespace {

KernelProfile streaming_kernel() {
  KernelProfile k;
  k.name = "stream";
  k.warp_instructions = 4e6;
  k.mem_fraction = 0.3;
  k.working_set = 512ULL << 20;
  k.pattern = GpuPattern::kStreaming;
  k.sectors_per_access = 4.0;
  k.active_warps_per_sm = 32;
  k.outstanding_per_warp = 8.0;
  return k;
}

KernelProfile gather_kernel() {
  KernelProfile k = streaming_kernel();
  k.name = "gather";
  k.pattern = GpuPattern::kRandom;
  k.sectors_per_access = 12.0;
  k.active_warps_per_sm = 12;
  k.outstanding_per_warp = 1.5;
  return k;
}

KernelProfile resident_kernel() {
  KernelProfile k = streaming_kernel();
  k.name = "resident";
  k.working_set = 8ULL << 20;  // fits the 40 MB L2
  return k;
}

TEST(KernelModel, ResidentWorkingSetHitsL2) {
  const auto r = evaluate_kernel(resident_kernel(), {});
  EXPECT_LT(r.l2_miss_rate, 0.05);
}

TEST(KernelModel, StreamingBeyondL2Misses) {
  const auto r = evaluate_kernel(streaming_kernel(), {});
  EXPECT_GT(r.l2_miss_rate, 0.9);
}

TEST(KernelModel, DeterministicByName) {
  const auto a = evaluate_kernel(streaming_kernel(), {});
  const auto b = evaluate_kernel(streaming_kernel(), {});
  EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
  EXPECT_DOUBLE_EQ(a.l2_miss_rate, b.l2_miss_rate);
}

TEST(KernelModel, RooflineBoundsTheRuntime) {
  // The memory side is a smooth p-norm of the bandwidth and latency terms:
  // never below the hard max, never above their sum; compute is a floor.
  const auto r = evaluate_kernel(streaming_kernel(), {});
  EXPECT_GE(r.time_us, r.compute_time_us);
  EXPECT_GE(r.time_us, r.bandwidth_time_us);
  EXPECT_GE(r.time_us, r.latency_time_us);
  EXPECT_LE(r.time_us,
            std::max(r.compute_time_us, r.bandwidth_time_us + r.latency_time_us) + 1e-9);
}

TEST(KernelModel, LatencyBoundKernelFeelsExtraLatency) {
  GpuConfig base;
  GpuConfig slow;
  slow.extra_hbm_ns = 35.0;
  const auto b = evaluate_kernel(gather_kernel(), base);
  const auto s = evaluate_kernel(gather_kernel(), slow);
  EXPECT_STREQ(b.bound, "latency");
  const double slowdown = s.time_us / b.time_us - 1.0;
  EXPECT_GT(slowdown, 0.05);
  EXPECT_LT(slowdown, 0.15);  // bounded by 35/290
}

TEST(KernelModel, BandwidthBoundKernelHidesExtraLatency) {
  GpuConfig base;
  GpuConfig slow;
  slow.extra_hbm_ns = 35.0;
  const auto b = evaluate_kernel(streaming_kernel(), base);
  const auto s = evaluate_kernel(streaming_kernel(), slow);
  EXPECT_STREQ(b.bound, "bandwidth");
  EXPECT_LT(s.time_us / b.time_us - 1.0, 0.05);
}

TEST(KernelModel, BandwidthDerateSlowsBandwidthBoundKernels) {
  GpuConfig derated;
  derated.hbm_bandwidth_derate = 0.5;
  const auto b = evaluate_kernel(streaming_kernel(), {});
  const auto d = evaluate_kernel(streaming_kernel(), derated);
  EXPECT_NEAR(d.bandwidth_time_us, 2.0 * b.bandwidth_time_us, b.bandwidth_time_us * 0.01);
}

TEST(KernelModel, HbmTransactionsScaleWithMissRate) {
  const auto stream = evaluate_kernel(streaming_kernel(), {});
  const auto resident = evaluate_kernel(resident_kernel(), {});
  EXPECT_GT(stream.hbm_txn_per_instr, 10.0 * resident.hbm_txn_per_instr);
}

TEST(GpuRunner, AppAggregatesLaunchWeighted) {
  AppProfile app;
  app.name = "two-kernel";
  app.kernels.push_back({streaming_kernel(), 3});
  app.kernels.push_back({gather_kernel(), 1});
  EXPECT_EQ(app.total_launches(), 4);
  const auto r = run_app(app, {});
  const auto ks = evaluate_kernel(streaming_kernel(), {});
  const auto kg = evaluate_kernel(gather_kernel(), {});
  EXPECT_NEAR(r.time_us, 3 * ks.time_us + kg.time_us, 1e-6);
}

TEST(GpuRunner, SlowdownIsNonNegativeAndBounded) {
  AppProfile app;
  app.name = "bounded";
  app.kernels.push_back({gather_kernel(), 2});
  const double s = app_slowdown(app, {}, 35.0);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 35.0 / 290.0 + 0.01);
}

TEST(GpuRunner, EmptyAppThrows) {
  AppProfile app;
  app.name = "empty";
  EXPECT_THROW(run_app(app, {}), std::invalid_argument);
}

TEST(GpuRunner, PredictedCyclesMatchFrequency) {
  AppProfile app;
  app.name = "cycles";
  app.kernels.push_back({resident_kernel(), 1});
  GpuConfig gpu;
  const auto r = run_app(app, gpu);
  EXPECT_NEAR(r.predicted_cycles, r.time_us * 1e3 * gpu.freq_ghz, 1e-6);
}

}  // namespace
}  // namespace photorack::gpusim
