#include "net/flow_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::net {

FlowEngine::FlowEngine(WavelengthFabric& fabric, sim::TimePs piggyback_interval,
                       std::uint64_t router_seed)
    : fabric_(&fabric),
      view_(fabric, piggyback_interval),
      router_(fabric, view_, router_seed) {}

void FlowEngine::attach_obs(const obs::Obs& obs) {
  obs_ = obs;
  if (obs_.profiler) {
    sc_open_ = obs_.profiler->scope("net.flow_open");
    sc_refresh_ = obs_.profiler->scope("net.view_refresh");
  }
}

void FlowEngine::refresh_view(sim::TimePs now) {
  obs::ScopedTimer timer(obs_.profiler, sc_refresh_);
  if (view_.maybe_refresh(now) && obs_.trace)
    obs_.trace->instant(obs::Track::kSim, "view_refresh", now);
}

std::uint64_t FlowEngine::open(const FlowSpec& spec, sim::TimePs now) {
  obs::ScopedTimer timer(obs_.profiler, sc_open_);
  RouteResult result = router_.route(spec.src, spec.dst, spec.gbps);
  ++flows_;
  if (result.fully_satisfied()) ++fully_satisfied_;
  offered_.add(spec.gbps);
  intermediates_.add(result.intermediates_used);
  requested_total_ += spec.gbps;
  satisfied_total_ += result.satisfied();
  direct_total_ += result.direct_gbps;
  indirect_total_ += result.indirect_gbps;
  peak_util_ = std::max(peak_util_, fabric_->utilization());
  const std::uint64_t id = next_id_++;
  if (obs_.trace) {
    // Span endpoints are only known at close; remember the opening here.
    opened_.emplace(id, OpenedAt{now, spec.gbps,
                                 spec.gbps > 0.0 ? result.satisfied() / spec.gbps : 1.0,
                                 spec.src, spec.dst});
  }
  live_.emplace(id, std::move(result));
  return id;
}

const RouteResult& FlowEngine::result(std::uint64_t flow_id) const {
  const auto it = live_.find(flow_id);
  if (it == live_.end())
    throw std::out_of_range("FlowEngine: no live flow with id " + std::to_string(flow_id));
  return it->second;
}

void FlowEngine::close(std::uint64_t flow_id, sim::TimePs now) {
  const auto it = live_.find(flow_id);
  if (it == live_.end())
    throw std::out_of_range("FlowEngine: closing unknown flow id " +
                            std::to_string(flow_id));
  router_.release(it->second);
  live_.erase(it);
  if (obs_.trace) {
    const auto opened = opened_.find(flow_id);
    if (opened != opened_.end()) {
      const OpenedAt& o = opened->second;
      obs_.trace->complete(obs::Track::kFlows, "flow", o.at, now,
                           {{"src", static_cast<double>(o.src)},
                            {"dst", static_cast<double>(o.dst)},
                            {"gbps", o.gbps},
                            {"satisfied", o.satisfied}});
      opened_.erase(opened);
    }
  }
}

FlowSimReport FlowEngine::report() const {
  FlowSimReport report;
  report.flows = flows_;
  report.fully_satisfied = fully_satisfied_;
  report.offered_gbps_mean = offered_.mean();
  report.satisfied_fraction =
      requested_total_ > 0 ? satisfied_total_ / requested_total_ : 1.0;
  report.direct_fraction = satisfied_total_ > 0 ? direct_total_ / satisfied_total_ : 0.0;
  report.indirect_fraction =
      satisfied_total_ > 0 ? indirect_total_ / satisfied_total_ : 0.0;
  report.stale_mispicks = router_.total_mispicks();
  report.second_hops = router_.total_second_hops();
  report.mean_intermediates = intermediates_.mean();
  report.peak_utilization = peak_util_;
  return report;
}

FlowSimulator::FlowSimulator(WavelengthFabric& fabric, FlowGenerator generator,
                             FlowSimConfig cfg)
    : generator_(std::move(generator)),
      cfg_(cfg),
      // Child-stream layout predates the FlowEngine split (router = the
      // first draw of child(1)); keep it so seeded runs reproduce.
      engine_(fabric, cfg.piggyback_interval, sim::Rng(cfg.seed).child(1)()),
      arrival_rng_(sim::Rng(cfg.seed).child(2)),
      flow_rng_(sim::Rng(cfg.seed).child(3)) {
  schedule_next_arrival();
}

void FlowSimulator::schedule_next_arrival() {
  const double mean_interarrival_ps =
      static_cast<double>(sim::kPsPerUs) / cfg_.arrivals_per_us;
  const auto gap =
      static_cast<sim::TimePs>(arrival_rng_.exponential(mean_interarrival_ps));
  if (queue_.now() + gap >= cfg_.sim_time) return;
  queue_.schedule_after(gap, [this]() {
    engine_.refresh_view(queue_.now());
    const FlowSpec spec = generator_(flow_rng_);
    const std::uint64_t id = engine_.open(spec, queue_.now());
    queue_.schedule_after(spec.duration,
                          [this, id]() { engine_.close(id, queue_.now()); });
    schedule_next_arrival();
  });
}

void FlowSimulator::advance_to(sim::TimePs t) { queue_.run(t); }

void FlowSimulator::finish() { queue_.run(); }

FlowSimReport FlowSimulator::run() {
  finish();
  return report();
}

}  // namespace photorack::net
