#include "cosim/rack_cosim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rack/rack_builder.hpp"

namespace photorack::cosim {

const config::EnumCodec<AdmissionPolicy>& admission_policy_codec() {
  static const config::EnumCodec<AdmissionPolicy> codec(
      "admission policy", {{"drop", AdmissionPolicy::kDrop},
                           {"queue", AdmissionPolicy::kQueue}});
  return codec;
}

namespace {

double to_ms(sim::TimePs t) {
  return static_cast<double>(t) / static_cast<double>(sim::kPsPerMs);
}

/// All-pairs AWGR plan at co-sim scale: `lambdas_per_pair` parallel AWGRs of
/// radix `mcms`, every port fully populated, so each (src,dst) pair owns
/// exactly `lambdas_per_pair` direct wavelengths — the §V-B case (A)
/// topology shrunk to the slice of the rack one job mix actually stresses.
rack::AwgrFabricPlan small_awgr_plan(const CosimConfig& cfg) {
  rack::AwgrFabricPlan plan;
  plan.parallel_awgrs = cfg.fabric.lambdas_per_pair;
  plan.awgr_radix = cfg.fabric.mcms;
  plan.port_wavelength_cap = cfg.fabric.mcms;
  plan.lambdas_per_port.assign(static_cast<std::size_t>(cfg.fabric.lambdas_per_pair),
                               cfg.fabric.mcms);
  plan.full_coverage_awgrs = cfg.fabric.lambdas_per_pair;
  plan.min_direct_lambdas_per_pair = cfg.fabric.lambdas_per_pair;
  plan.direct_pair_bandwidth =
      cfg.fabric.gbps_per_wavelength * cfg.fabric.lambdas_per_pair;
  return plan;
}

CosimConfig validated(CosimConfig cfg, const rack::RackConfig& rack) {
  if (cfg.fabric.mcms < 2) throw std::invalid_argument("RackCosim: need >= 2 MCMs");
  if (cfg.fabric.lambdas_per_pair < 1)
    throw std::invalid_argument("RackCosim: need >= 1 wavelength per pair");
  if (cfg.fabric.gbps_per_wavelength.value <= 0.0)
    throw std::invalid_argument("RackCosim: wavelength rate must be positive");
  if (cfg.arrivals_per_ms <= 0.0)
    throw std::invalid_argument("RackCosim: arrival rate must be positive");
  if (cfg.mean_duration <= 0)
    throw std::invalid_argument("RackCosim: mean_duration must be positive");
  if (cfg.sim_time < 0)
    throw std::invalid_argument("RackCosim: sim_time must be non-negative");
  if (cfg.min_speed_fraction <= 0.0 || cfg.min_speed_fraction > 1.0)
    throw std::invalid_argument("RackCosim: min_speed_fraction must be in (0,1]");
  if (cfg.traffic_scale < 0.0 || cfg.gpu_traffic_mult < 0.0)
    throw std::invalid_argument("RackCosim: traffic scales must be non-negative");
  if (cfg.idle_power_fraction < 0.0 || cfg.idle_power_fraction > 1.0)
    throw std::invalid_argument("RackCosim: idle_power_fraction must be in [0,1]");
  if (cfg.admission == AdmissionPolicy::kQueue && cfg.queue_cap < 1)
    throw std::invalid_argument("RackCosim: queue_cap must be >= 1 under queueing");
  // The power trace describes the rack the allocator manages.
  cfg.baseline.nodes = rack.nodes;
  cfg.baseline.gpus_per_node = rack.node.gpus;
  return cfg;
}

}  // namespace

RackCosim::RackCosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
                     const workloads::UsageModel& usage, CosimConfig cfg,
                     obs::Obs obs)
    : rack_(rack),
      cfg_(validated(cfg, rack)),
      usage_(usage),
      demand_(workloads::FlowDemandModel::cpu_memory()),
      allocator_(rack, policy),
      fabric_(std::make_unique<net::WavelengthFabric>(cfg_.fabric.mcms, small_awgr_plan(cfg_))),
      // Same child-stream layout as FlowSimulator: router seed is the
      // first draw of child(1), arrivals come from child(2).
      engine_(*fabric_, cfg_.fabric.piggyback_interval, sim::Rng(cfg_.seed).child(1)()),
      base_rng_(cfg_.seed),
      arrival_rng_(base_rng_.child(2)),
      // Built after validation: throws std::invalid_argument on bad shape
      // knobs (and std::runtime_error on an unreadable trace file).
      arrival_process_(
          traffic::make_arrival_process(cfg_.arrival, cfg_.arrivals_per_ms)),
      obs_(obs) {
  // Register scopes/metrics and hook the energy trace before the first
  // step_to below, so the t=0 power level lands on the counter track too.
  setup_obs();

  // §VI-C overhead at co-sim scale: every wavelength the fabric lights burns
  // transceiver energy whether or not a flow uses it (lasers always on).
  phot::PhotonicPowerConfig photonic;
  photonic.mcms = cfg_.fabric.mcms;
  photonic.wavelengths_per_mcm = cfg_.fabric.lambdas_per_pair * cfg_.fabric.mcms;
  photonic.gbps_per_wavelength = cfg_.fabric.gbps_per_wavelength;
  photonic_w_ = phot::photonic_power_overhead(photonic, cfg_.baseline).total.value;

  energy_.step_to(0.0, phot::Watts{compute_power_w() + photonic_w_});
  if (obs_.metrics) {
    take_sample();  // the t=0 row: idle pools, lasers-on floor power
    schedule_next_sample();
  }
  schedule_next_arrival();
}

void RackCosim::setup_obs() {
  if (!obs_.any()) return;
  engine_.attach_obs(obs_);
  if (obs_.profiler) {
    sc_arrival_ = obs_.profiler->scope("cosim.arrival");
    sc_allocate_ = obs_.profiler->scope("disagg.allocate");
    sc_release_ = obs_.profiler->scope("disagg.release");
    sc_sketch_ = obs_.profiler->scope("stats.sketch_insert");
  }
  if (obs_.metrics) {
    auto& m = *obs_.metrics;
    m_.backlog_depth = m.gauge("backlog_depth");
    m_.live_jobs = m.gauge("live_jobs");
    m_.fabric_util = m.gauge("fabric_util");
    m_.pair_util_max = m.gauge("pair_util_max");
    m_.pair_util_mean = m.gauge("pair_util_mean");
    m_.satisfied_frac = m.gauge("satisfied_frac");
    m_.power_w = m.gauge("power_w");
    m_.energy_j = m.gauge("energy_j");
    m_.offered = m.gauge("offered");
    m_.accepted = m.gauge("accepted");
    m_.wait_ms = m.histogram("wait_ms");
  }
  // The energy observer feeds the power counter track at every integration
  // step (ids registered above, so the metrics gauge is safe to set here).
  if (obs_.trace || obs_.metrics) {
    energy_.set_observer([this](double /*seconds*/, double watts) {
      if (obs_.trace)
        obs_.trace->counter(obs::Track::kPower, "rack_power_w", queue_.now(), watts);
      if (obs_.metrics) obs_.metrics->set(m_.power_w, watts);
    });
  }
}

void RackCosim::take_sample() {
  auto& m = *obs_.metrics;
  m.set(m_.backlog_depth, static_cast<double>(backlog_.size()));
  m.set(m_.live_jobs, static_cast<double>(live_jobs_));
  m.set(m_.fabric_util, engine_.fabric_utilization());
  // Per-MCM-pair direct-wavelength utilization: the congestion picture the
  // aggregate number hides (one hot pair can block while the mean is low).
  double max_u = 0.0, sum_u = 0.0;
  int pairs = 0;
  for (int s = 0; s < cfg_.fabric.mcms; ++s)
    for (int d = 0; d < cfg_.fabric.mcms; ++d) {
      if (s == d) continue;
      const double cap = fabric_->direct_capacity(s, d);
      if (cap <= 0.0) continue;
      max_u = std::max(max_u, fabric_->allocated(s, d) / cap);
      sum_u += fabric_->allocated(s, d) / cap;
      ++pairs;
    }
  m.set(m_.pair_util_max, max_u);
  m.set(m_.pair_util_mean, pairs ? sum_u / pairs : 0.0);
  m.set(m_.satisfied_frac, engine_.report().satisfied_fraction);
  m.set(m_.power_w, compute_power_w() + photonic_w_);
  m.set(m_.energy_j, energy_.joules());
  m.set(m_.offered, static_cast<double>(stats_.offered()));
  m.set(m_.accepted, static_cast<double>(stats_.accepted()));
  m.sample(to_ms(queue_.now()));
}

void RackCosim::schedule_next_sample() {
  // Sampler events ride the sim queue but never touch sim state: they read,
  // emit a row, and reschedule.  Ticks stop at the arrival horizon so
  // finish() still drains.
  if (obs_.metrics_interval <= 0) return;
  if (obs_.metrics_interval >= cfg_.sim_time - queue_.now()) return;
  queue_.schedule_after(obs_.metrics_interval, [this]() {
    take_sample();
    schedule_next_sample();
  });
}

RackCosim::JobPlan RackCosim::make_plan(sim::Rng& rng) const {
  JobPlan plan;
  // The one definition of the §II-A demand shape, shared with
  // disagg::JobStreamSim — both simulators must offer identical job mixes
  // for closed-vs-open and static-vs-disagg comparisons to be controlled.
  const disagg::JobDraw draw =
      disagg::draw_job_request(rng, usage_, rack_.node, cfg_.max_job_nodes);
  plan.request = draw.request;
  plan.breadth = draw.breadth;
  plan.base_hold = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(
             rng.exponential(static_cast<double>(cfg_.mean_duration))));

  // Fabric demand: one CPU↔memory flow per node of breadth; GPU jobs add a
  // heavier GPU↔memory flow per node.  Endpoints are uniform over the co-sim
  // MCMs — disaggregated placement scatters a job's resources rack-wide.
  auto draw_flow = [&](double scale) {
    net::FlowSpec spec;
    spec.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg_.fabric.mcms)));
    spec.dst = static_cast<int>(
        (spec.src + 1 + rng.below(static_cast<std::uint64_t>(cfg_.fabric.mcms - 1))) %
        cfg_.fabric.mcms);
    spec.gbps = demand_.sample_gbps(rng) * scale;
    return spec;
  };
  for (int i = 0; i < plan.breadth; ++i)
    plan.flows.push_back(draw_flow(cfg_.traffic_scale));
  if (plan.request.gpus > 0)
    for (int i = 0; i < plan.breadth; ++i)
      plan.flows.push_back(draw_flow(cfg_.traffic_scale * cfg_.gpu_traffic_mult));
  return plan;
}

double RackCosim::compute_power_w() const {
  const auto& pools = allocator_.pools();
  const auto& base = cfg_.baseline;
  const double idle = cfg_.idle_power_fraction;
  auto level = [&](double utilization, double full_watts) {
    return full_watts * (idle + (1.0 - idle) * utilization);
  };
  const double nodes = static_cast<double>(base.nodes);
  return level(pools.cpu_utilization(), nodes * base.cpu_per_node.value) +
         level(pools.gpu_utilization(),
               nodes * base.gpus_per_node * base.gpu_each.value) +
         level(pools.memory_utilization(), nodes * base.memory_per_node.value);
}

void RackCosim::step_energy() {
  energy_.step_to(sim::to_s(queue_.now()),
                  phot::Watts{compute_power_w() + photonic_w_});
}

void RackCosim::schedule_next_arrival() {
  // The arrival process owns the gap law (the default Poisson process keeps
  // the historical scaled-gap stream byte for byte); the cosim owns the
  // stream discipline — every draw comes from arrival_rng_ (child(2)).
  // The horizon check is written as a subtraction so an exhausted trace's
  // kNoMoreArrivals sentinel cannot overflow `now + gap`.
  const sim::TimePs gap = arrival_process_->next_gap(queue_.now(), arrival_rng_);
  if (gap >= cfg_.sim_time - queue_.now()) return;
  queue_.schedule_after(gap, [this]() { on_arrival(); });
}

bool RackCosim::try_start(const JobPlan& plan, sim::TimePs arrived) {
  std::shared_ptr<disagg::Allocation> alloc;
  {
    obs::ScopedTimer timer(obs_.profiler, sc_allocate_);
    alloc = std::make_shared<disagg::Allocation>(allocator_.allocate(plan.request));
  }
  if (!alloc->placed) return false;
  stats_.accept();
  ++live_jobs_;
  auto flow_ids = std::make_shared<std::vector<std::uint64_t>>();
  double requested = 0.0, satisfied = 0.0;
  flow_ids->reserve(plan.flows.size());
  for (const auto& spec : plan.flows) {
    const std::uint64_t id = engine_.open(spec, queue_.now());
    flow_ids->push_back(id);
    const net::RouteResult& route = engine_.result(id);
    requested += route.requested;
    satisfied += route.satisfied();
  }
  const double speed =
      requested > 0.0
          ? std::clamp(satisfied / requested, cfg_.min_speed_fraction, 1.0)
          : 1.0;
  const double stretch = cfg_.contention_feedback ? 1.0 / speed : 1.0;
  speed_.add(speed);
  stretch_.add(stretch);
  const auto hold = std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(static_cast<double>(plan.base_hold) * stretch));
  // Tails are recorded at placement, when wait and hold are both known —
  // NOT at completion, so mid-run reports carry no survivorship bias from
  // long jobs still running.  Slowdown folds queueing and contention into
  // one number: time-in-system over uncontended service time.
  const sim::TimePs wait = queue_.now() - arrived;
  {
    obs::ScopedTimer timer(obs_.profiler, sc_sketch_);
    stats_.record_wait(to_ms(wait));
    stats_.record_slowdown(static_cast<double>(wait + hold) /
                           static_cast<double>(plan.base_hold));
    for (std::size_t i = 0; i < plan.flows.size(); ++i)
      stats_.record_fct(to_ms(hold));
  }
  if (obs_.metrics) obs_.metrics->observe(m_.wait_ms, to_ms(wait));
  const sim::TimePs placed_at = queue_.now();
  if (obs_.trace)
    obs_.trace->instant(obs::Track::kJobs, "placed", placed_at,
                        {{"wait_ms", to_ms(wait)}, {"speed", speed}});
  queue_.schedule_after(
      hold, [this, alloc, flow_ids, placed_at, breadth = plan.breadth, speed]() {
        for (const std::uint64_t id : *flow_ids) engine_.close(id, queue_.now());
        {
          obs::ScopedTimer timer(obs_.profiler, sc_release_);
          allocator_.release(*alloc);
        }
        --live_jobs_;
        if (obs_.trace)
          obs_.trace->complete(obs::Track::kJobs, "job", placed_at, queue_.now(),
                               {{"breadth", static_cast<double>(breadth)},
                                {"speed", speed}});
        drain_backlog();
        step_energy();
      });
  return true;
}

void RackCosim::drain_backlog() {
  if (backlog_.empty()) return;
  engine_.refresh_view(queue_.now());
  // Strict FIFO: stop at the first job that does not fit, even if a
  // narrower one behind it would — backfilling would reorder the queue and
  // make wait tails incomparable across policies.
  while (!backlog_.empty() &&
         try_start(backlog_.front().plan, backlog_.front().arrived))
    backlog_.pop_front();
}

void RackCosim::on_arrival() {
  obs::ScopedTimer timer(obs_.profiler, sc_arrival_);
  engine_.refresh_view(queue_.now());
  stats_.offer();
  if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "arrival", queue_.now());
  // Per-job child stream keyed by arrival index: a job's demands, duration
  // and flow layout are a pure function of (seed, index), independent of
  // every placement decision before it.
  sim::Rng job_rng = base_rng_.child(16 + next_job_index_++);
  JobPlan plan = make_plan(job_rng);

  if (cfg_.admission == AdmissionPolicy::kQueue) {
    // Bounded FIFO: over-cap arrivals are dropped (they stay counted in
    // `offered`, so acceptance reflects the loss).
    if (backlog_.size() < static_cast<std::size_t>(cfg_.queue_cap)) {
      if (obs_.trace) obs_.trace->instant(obs::Track::kJobs, "enqueue", queue_.now());
      backlog_.push_back(PendingJob{std::move(plan), queue_.now()});
      drain_backlog();
    } else if (obs_.trace) {
      obs_.trace->instant(obs::Track::kJobs, "queue_drop", queue_.now());
    }
  } else {
    if (!try_start(plan, queue_.now()) && obs_.trace)
      obs_.trace->instant(obs::Track::kJobs, "reject", queue_.now());
  }
  // Step the trace on EVERY arrival, rejected ones included: the level only
  // changes on placements, but the integration point must advance to the
  // last event or the tail of the horizon silently drops out of the total
  // (an all-rejected stream still burns idle + lasers-on photonic power).
  step_energy();

  stats_.sample(allocator_);
  schedule_next_arrival();
}

void RackCosim::advance_to(sim::TimePs t) { queue_.run(t); }

void RackCosim::finish() { queue_.run(); }

CosimReport RackCosim::report() const {
  CosimReport report;
  // Censored-jobs accounting: jobs still in the backlog have a wait that is
  // only a LOWER bound, but leaving them out entirely is worse — a backed-up
  // queue would report the rosy tails of the jobs that escaped it.  Fold
  // each queued job's wait-so-far into a report-time copy of the sketch and
  // surface the censored counts alongside.
  disagg::JobStreamStats stats_with_censored = stats_;
  for (const PendingJob& pending : backlog_)
    stats_with_censored.record_wait(
        static_cast<double>(queue_.now() - pending.arrived) /
        static_cast<double>(sim::kPsPerMs));
  report.jobs = stats_with_censored.report();
  report.jobs.censored_waiting = backlog_.size();
  report.jobs.censored_running = live_jobs_;
  report.jobs.events = queue_.stats();
  report.flows = engine_.report();
  report.mean_speed_fraction = speed_.count() ? speed_.mean() : 1.0;
  report.mean_stretch = stretch_.count() ? stretch_.mean() : 1.0;
  report.max_stretch = stretch_.count() ? stretch_.max() : 1.0;
  report.energy_joules = energy_.joules();
  report.mean_power_w = energy_.mean_power().value;
  report.peak_power_w = energy_.peak_power().value;
  report.photonic_power_w = photonic_w_;
  report.completed_at = queue_.now();
  return report;
}

CosimReport run_rack_cosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
                           const workloads::UsageModel& usage, const CosimConfig& cfg,
                           obs::Obs obs) {
  RackCosim sim(rack, policy, usage, cfg, obs);
  sim.finish();
  return sim.report();
}

}  // namespace photorack::cosim
