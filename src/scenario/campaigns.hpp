#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/result_sink.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep_grid.hpp"

namespace photorack::scenario {

/// A named, reusable sweep definition: declarative axes plus the evaluator
/// that turns one ScenarioSpec into result rows.
///
/// Axes are declared as data, not a grid-building function: each axis is
/// either a config-registry path ("cpusim.dram.extra_ns" — validated,
/// range-checked, resolved into typed config structs by
/// ScenarioSpec::resolve<T>()) or a free axis the evaluator interprets
/// ("bench", "app", "policy").  Because the axes are registry paths, ANY
/// registered knob can be swept or pinned via `--set path=value` without
/// the campaign author having anticipated it.
///
/// The built-in registry reproduces the paper's figures and tables (fig6,
/// fig9, table3, sec6c, ...) from this single shape; custom studies define
/// their own Campaign value and hand it to SweepRunner directly.
struct Campaign {
  std::string name;
  std::string description;
  std::string paper_ref;
  std::vector<std::string> columns;
  /// Declarative default sweep axes, in grid order.
  std::vector<Axis> axes;
  /// Evaluate one scenario.  Must be pure: no shared mutable state, all
  /// randomness seeded from the spec, so sweeps parallelize bit-identically.
  /// May return several rows (table3 emits one row per chip type).
  std::function<std::vector<ResultRow>(const ScenarioSpec&)> evaluate;

  /// The default grid built from `axes` (validating registry paths).
  [[nodiscard]] SweepGrid default_grid() const;
};

/// Built-in campaign catalog, in presentation order.
[[nodiscard]] const std::vector<Campaign>& campaigns();

/// Lookup by name; throws std::out_of_range listing the known names.
[[nodiscard]] const Campaign& campaign_by_name(const std::string& name);

}  // namespace photorack::scenario
