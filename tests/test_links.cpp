#include "phot/links.hpp"

#include <gtest/gtest.h>

namespace photorack::phot {
namespace {

using namespace literals;

TEST(Links, TableHasFiveTechnologies) {
  EXPECT_EQ(table1_links().size(), 5u);
}

TEST(Links, LookupByName) {
  EXPECT_DOUBLE_EQ(link_by_name("TeraPHY-768G").bandwidth.value, 768.0);
  EXPECT_THROW(link_by_name("nope"), std::out_of_range);
}

/// Table I's "#Links (2 TB/s escape)" column.
struct LinkCountCase {
  const char* name;
  int expected_links;
  double expected_watts;
};

class LinksFor2TBs : public ::testing::TestWithParam<LinkCountCase> {};

TEST_P(LinksFor2TBs, MatchesTable1) {
  const auto& p = GetParam();
  const auto& link = link_by_name(p.name);
  EXPECT_EQ(link.links_for_escape(GBps{2000}), p.expected_links);
  EXPECT_NEAR(link.power_for_escape(GBps{2000}).value, p.expected_watts, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, LinksFor2TBs,
    ::testing::Values(LinkCountCase{"100G-Ethernet", 160, 480.0},
                      LinkCountCase{"400G-Ethernet", 40, 480.0},  // paper prints 197 W
                      LinkCountCase{"TeraPHY-768G", 21, 14.4},
                      LinkCountCase{"Comb-1T", 16, 7.2},
                      LinkCountCase{"Comb-2T", 8, 4.8}));

TEST(Links, ChannelsTimesRateMatchesBandwidth) {
  for (const auto& link : table1_links()) {
    EXPECT_DOUBLE_EQ(link.gbps_per_channel.value * link.channels, link.bandwidth.value)
        << link.name;
  }
}

TEST(Links, DwdmTechnologiesAreCoPackaged) {
  for (const auto& link : table1_links())
    if (link.channels > 4) EXPECT_TRUE(link.co_packaged) << link.name;
}

TEST(Propagation, IntraRackIs35ns) {
  // 15 ns OEO + 4 m x 5 ns/m = 35 ns (Section III-C2 / VI-B).
  EXPECT_DOUBLE_EQ(intra_rack_added_latency().value, 35.0);
}

TEST(Propagation, ScalesWithReach) {
  PropagationModel model;
  EXPECT_DOUBLE_EQ(model.added_latency(1_m).value, 20.0);
  EXPECT_DOUBLE_EQ(model.added_latency(2_m).value, 25.0);
  // "rack-scale resource disaggregation adds 5-20 ns of latency" on top of
  // conversion: propagation alone spans 5..20 ns for 1..4 m.
  EXPECT_DOUBLE_EQ(model.added_latency(4_m).value - model.oeo.value, 20.0);
}

TEST(CombLaser, SourceCountCoversChannels) {
  CombLaserSource comb;
  EXPECT_EQ(comb.sources_for(32, 64), 32);   // one comb per fiber
  EXPECT_EQ(comb.sources_for(32, 128), 64);  // two combs per fiber
  EXPECT_GT(comb.electrical_power().value, 0.0);
}

}  // namespace
}  // namespace photorack::phot
