// Indirect-routing demo (Fig 4): a source whose direct wavelengths to the
// destination are saturated spills bandwidth over Valiant-chosen
// intermediates, using only per-source state plus the piggybacked view.
#include <iostream>

#include "core/rack_system.hpp"
#include "net/routing.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  auto fabric = system.make_fabric();
  net::PiggybackView view(fabric, sim::kPsPerUs);
  net::IndirectRouter router(fabric, view, /*seed=*/2023);

  const int src = 17, dst = 261;
  std::cout << "direct wavelengths " << src << " -> " << dst << ": "
            << fabric.direct_lambdas(src, dst) << " ("
            << fabric.direct_capacity(src, dst) << " Gb/s)\n\n";

  sim::Table table({"Requested Gb/s", "Direct", "Indirect", "Blocked", "Intermediates",
                    "2nd hops"});
  std::vector<net::RouteResult> held;
  for (const double demand : {50.0, 125.0, 500.0, 2000.0, 8000.0}) {
    auto result = router.route(src, dst, demand);
    table.add_row({sim::fmt_fixed(result.requested, 0),
                   sim::fmt_fixed(result.direct_gbps, 0),
                   sim::fmt_fixed(result.indirect_gbps, 0),
                   sim::fmt_fixed(result.blocked_gbps, 0),
                   sim::fmt_int(result.intermediates_used),
                   sim::fmt_int(result.second_hops)});
    held.push_back(std::move(result));
  }
  table.print(std::cout);

  std::cout << "\nfabric utilization while held: " << fabric.utilization() * 100 << "%\n";
  for (const auto& r : held) router.release(r);
  std::cout << "after release:                  " << fabric.utilization() * 100 << "%\n";

  std::cout << "\nNote: the full escape bandwidth of an MCM ("
            << system.design().mcm_plan.mcm.escape_gbps().value
            << " Gb/s) can reach a single destination via indirect routing, "
               "with no switch reconfiguration (Section VI-A case A).\n";
  return 0;
}
