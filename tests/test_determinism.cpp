// Guards future parallelization PRs: the whole simulator is seeded through
// sim::Rng, so the same seed must yield bit-identical streams regardless of
// how the surrounding code is scheduled.  These tests pin that contract at
// the two sources of randomness: the raw generator and the synthetic
// workload traces built on top of it.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "cosim/rack_cosim.hpp"
#include "cpusim/trace.hpp"
#include "disagg/job_scheduler.hpp"
#include "sim/rng.hpp"
#include "workloads/cpu_profiles.hpp"
#include "workloads/generators.hpp"

namespace photorack {
namespace {

TEST(Determinism, RngSameSeedSameStream) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 10'000; ++i) EXPECT_EQ(a(), b()) << "draw " << i;
}

TEST(Determinism, RngReseedReplaysStream) {
  sim::Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 1'000; ++i) first.push_back(rng());
  rng.reseed(7);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(rng(), first[i]) << "draw " << i;
}

TEST(Determinism, RngDistributionsAreBitIdentical) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 1'000; ++i) {
    // EXPECT_EQ (not NEAR): determinism means the exact same bits.
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.exponential(3.0), b.exponential(3.0));
    EXPECT_EQ(a.below(1000), b.below(1000));
    EXPECT_EQ(a.zipf(100, 0.9), b.zipf(100, 0.9));
  }
}

TEST(Determinism, RngChildStreamsAreDeterministic) {
  const sim::Rng parent_a(99), parent_b(99);
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    sim::Rng ca = parent_a.child(stream), cb = parent_b.child(stream);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(ca(), cb());
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

std::vector<cpusim::Instr> drain(cpusim::TraceSource& src, std::size_t n) {
  std::vector<cpusim::Instr> out;
  std::array<cpusim::Instr, 512> batch;
  while (out.size() < n) {
    const std::size_t got = src.next_batch(batch);
    if (got == 0) {
      ADD_FAILURE() << "generator ended early at " << out.size() << "/" << n;
      break;
    }
    out.insert(out.end(), batch.begin(), batch.begin() + got);
  }
  out.resize(std::min(out.size(), n));
  return out;
}

void expect_identical(const std::vector<cpusim::Instr>& a,
                      const std::vector<cpusim::Instr>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "instr " << i;
    EXPECT_EQ(a[i].addr, b[i].addr) << "instr " << i;
    EXPECT_EQ(a[i].dependent, b[i].dependent) << "instr " << i;
  }
}

workloads::TraceConfig mixed_config(std::uint64_t seed) {
  workloads::TraceConfig cfg;
  cfg.seed = seed;
  cfg.working_set = 16ULL << 20;
  cfg.mem_fraction = 0.4;
  cfg.patterns.clear();
  cfg.patterns.push_back({.kind = workloads::CpuPattern::kStreaming, .weight = 1.0});
  cfg.patterns.push_back({.kind = workloads::CpuPattern::kPointerChase, .weight = 0.5});
  cfg.patterns.push_back(
      {.kind = workloads::CpuPattern::kZipf, .weight = 0.5, .zipf_s = 0.9});
  return cfg;
}

TEST(Determinism, SyntheticTraceSameSeedSameStream) {
  workloads::SyntheticTrace a(mixed_config(1234)), b(mixed_config(1234));
  std::vector<cpusim::Instr> sa, sb;
  sa = drain(a, 50'000);
  sb = drain(b, 50'000);
  expect_identical(sa, sb);
}

TEST(Determinism, SyntheticTraceResetReplaysStream) {
  workloads::SyntheticTrace trace(mixed_config(77));
  std::vector<cpusim::Instr> first, replay;
  first = drain(trace, 20'000);
  trace.reset();
  replay = drain(trace, 20'000);
  expect_identical(first, replay);
}

TEST(Determinism, SyntheticTraceBatchSizeDoesNotChangeStream) {
  // The stream must be a property of the config, not of how callers batch.
  workloads::SyntheticTrace a(mixed_config(5)), b(mixed_config(5));
  std::vector<cpusim::Instr> small_batches, big_batches;
  std::array<cpusim::Instr, 7> small;
  std::array<cpusim::Instr, 1024> big;
  while (small_batches.size() < 10'000) {
    const std::size_t got = a.next_batch(small);
    ASSERT_GT(got, 0u);
    small_batches.insert(small_batches.end(), small.begin(), small.begin() + got);
  }
  while (big_batches.size() < small_batches.size()) {
    const std::size_t got = b.next_batch(big);
    ASSERT_GT(got, 0u);
    big_batches.insert(big_batches.end(), big.begin(), big.begin() + got);
  }
  small_batches.resize(10'000);
  big_batches.resize(10'000);
  expect_identical(small_batches, big_batches);
}

// ---------------------------------------------------------------------------
// Seed sensitivity of the job-stream simulators (ISSUE 4 satellite): the
// same seed must reproduce byte-identical reports, and seed+1 must diverge —
// guarding the PR 2 id-hash seed derivation against a silent "all seeds
// collapse to one stream" regression.
// ---------------------------------------------------------------------------

disagg::JobSimConfig job_stream_config(std::uint64_t seed) {
  disagg::JobSimConfig cfg;
  cfg.sim_time = 200 * sim::kPsPerMs;
  cfg.arrivals_per_ms = 4.0;
  cfg.seed = seed;
  return cfg;
}

TEST(SeedSensitivity, JobStreamSameSeedIsBitIdentical) {
  const auto a = disagg::run_job_stream({}, disagg::AllocationPolicy::kStaticNodes,
                                        workloads::UsageModel::cori(),
                                        job_stream_config(7));
  const auto b = disagg::run_job_stream({}, disagg::AllocationPolicy::kStaticNodes,
                                        workloads::UsageModel::cori(),
                                        job_stream_config(7));
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  // EXPECT_EQ on doubles: bit-identical, not merely close.
  EXPECT_EQ(a.mean_cpu_utilization, b.mean_cpu_utilization);
  EXPECT_EQ(a.mean_memory_utilization, b.mean_memory_utilization);
  EXPECT_EQ(a.mean_marooned_memory, b.mean_marooned_memory);
}

TEST(SeedSensitivity, JobStreamSeedPlusOneDiverges) {
  const auto a = disagg::run_job_stream({}, disagg::AllocationPolicy::kStaticNodes,
                                        workloads::UsageModel::cori(),
                                        job_stream_config(7));
  const auto b = disagg::run_job_stream({}, disagg::AllocationPolicy::kStaticNodes,
                                        workloads::UsageModel::cori(),
                                        job_stream_config(8));
  EXPECT_TRUE(a.offered != b.offered || a.accepted != b.accepted ||
              a.mean_memory_utilization != b.mean_memory_utilization);
}

cosim::CosimConfig cosim_config(std::uint64_t seed) {
  cosim::CosimConfig cfg;
  cfg.sim_time = 100 * sim::kPsPerMs;
  cfg.seed = seed;
  return cfg;
}

TEST(SeedSensitivity, CosimSameSeedIsBitIdentical) {
  const auto a = cosim::run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                                       workloads::UsageModel::cori(), cosim_config(7));
  const auto b = cosim::run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                                       workloads::UsageModel::cori(), cosim_config(7));
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.completed_at, b.completed_at);
}

TEST(SeedSensitivity, CosimSeedPlusOneDiverges) {
  const auto a = cosim::run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                                       workloads::UsageModel::cori(), cosim_config(7));
  const auto b = cosim::run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                                       workloads::UsageModel::cori(), cosim_config(8));
  EXPECT_TRUE(a.jobs.offered != b.jobs.offered || a.flows.flows != b.flows.flows ||
              a.energy_joules != b.energy_joules);
}

TEST(Determinism, BenchmarkRegistryTracesAreReproducible) {
  // Every registered paper benchmark must generate reproducibly, since the
  // CPU sweep (Figs 6-8, 11, 12) may run them from a thread pool.
  const auto& benches = workloads::cpu_benchmarks();
  ASSERT_FALSE(benches.empty());
  for (std::size_t i = 0; i < std::min<std::size_t>(benches.size(), 4); ++i) {
    workloads::SyntheticTrace a(benches[i].trace), b(benches[i].trace);
    std::vector<cpusim::Instr> sa, sb;
    sa = drain(a, 10'000);
    sb = drain(b, 10'000);
    expect_identical(sa, sb);
  }
}

}  // namespace
}  // namespace photorack
