#pragma once

#include <cstdint>
#include <string>

#include "gpusim/gpu_config.hpp"

namespace photorack::gpusim {

/// Memory access shape of a kernel's warp-level stream.
enum class GpuPattern : std::uint8_t {
  kStreaming,  // coalesced sequential (saxpy-like)
  kStrided,    // fixed-stride (column-major matrix walks)
  kRandom,     // gather/scatter over the working set (graph/BFS-like)
  kTiled,      // blocked reuse (shared-memory-tiled GEMM residue traffic)
};

/// Shape of one GPU kernel, reconstructed from the benchmark's published
/// characteristics (working set, arithmetic intensity, occupancy).  This is
/// the PPT-GPU trace substitute: replaying the shape through the simulated
/// L2 yields the miss rate and HBM transaction counts the timing model and
/// Fig 10's correlations need.
struct KernelProfile {
  std::string name;
  double warp_instructions = 1e6;  // dynamic warp-instructions per launch
  double mem_fraction = 0.3;       // global-memory warp-instructions
  std::uint64_t working_set = 64ULL << 20;
  GpuPattern pattern = GpuPattern::kStreaming;
  std::uint64_t stride_bytes = 32;   // for kStrided
  std::uint64_t tile_bytes = 1 << 20;  // for kTiled
  double sectors_per_access = 4.0;  // coalescing: 32B sectors per warp access
  int active_warps_per_sm = 32;     // occupancy
  double outstanding_per_warp = 2.0;  // in-flight memory requests per warp
};

/// Timing + memory statistics for one kernel launch.
struct KernelResult {
  std::string name;
  double cycles = 0.0;
  double time_us = 0.0;
  double compute_time_us = 0.0;
  double bandwidth_time_us = 0.0;
  double latency_time_us = 0.0;
  double l2_miss_rate = 0.0;          // HBM transactions / L2 transactions
  double hbm_txn_per_instr = 0.0;     // Fig 10's second correlate
  double mem_instr_fraction = 0.0;    // Fig 10's non-correlate
  const char* bound = "compute";      // which roofline term dominated
};

/// Evaluate a kernel on the device.  The L2 is simulated on a sampled
/// transaction stream (`sample_transactions` of them, seeded
/// deterministically from the kernel name), giving an emergent miss rate;
/// the runtime model is a three-way roofline:
///   time = max(issue-limited compute, HBM bandwidth, latency/concurrency)
/// with the added disaggregation latency entering only the latency term —
/// which is why GPUs tolerate it well (Fig 11).
[[nodiscard]] KernelResult evaluate_kernel(const KernelProfile& kernel, const GpuConfig& gpu,
                                           std::uint64_t sample_transactions = 300'000);

/// The expensive half of evaluate_kernel: simulate the sampled L2 stream
/// and return the emergent miss rate.  Depends only on the kernel shape and
/// the GPU's L2 geometry (l2_bytes/l2_ways/sector_bytes) — NOT on
/// extra_hbm_ns or hbm_bandwidth_derate — which is what makes GPU latency
/// sweeps profile-once/replay-many (see gpusim/gpu_runner.hpp).
[[nodiscard]] double simulate_l2_miss_rate(const KernelProfile& kernel, const GpuConfig& gpu,
                                           std::uint64_t sample_transactions = 300'000);

/// The cheap half: the O(1) roofline arithmetic given an already-known L2
/// miss rate.  evaluate_kernel(k, gpu, n) ==
/// evaluate_kernel_with_miss_rate(k, gpu, simulate_l2_miss_rate(k, gpu, n))
/// bit-for-bit.
[[nodiscard]] KernelResult evaluate_kernel_with_miss_rate(const KernelProfile& kernel,
                                                          const GpuConfig& gpu,
                                                          double l2_miss_rate);

}  // namespace photorack::gpusim
