#include "fault/fault_scheduler.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

namespace photorack::fault {

namespace {

/// Stream-id bases for the per-component children of the fault root
/// (sim::Rng(seed).child(3)).  Link and laser streams are keyed by the
/// pair's source MCM: one stream drives that source's successive cuts, with
/// the destination drawn inside the stream — bounding the stream count at
/// O(mcms + nodes) instead of O(mcms^2).
constexpr std::uint64_t kMcmStreamBase = 0x10000;
constexpr std::uint64_t kNodeStreamBase = 0x20000;
constexpr std::uint64_t kLinkStreamBase = 0x30000;
constexpr std::uint64_t kLaserStreamBase = 0x40000;

void validate(const FaultConfig& cfg) {
  auto check_class = [](double mtbf, double mttr, const char* name) {
    if (mtbf < 0.0)
      throw std::invalid_argument(std::string("fault: ") + name +
                                  "_mtbf_ms must be non-negative");
    if (mtbf > 0.0 && mttr <= 0.0)
      throw std::invalid_argument(std::string("fault: ") + name +
                                  "_mttr_ms must be positive when the class is active");
  };
  check_class(cfg.mcm_mtbf_ms, cfg.mcm_mttr_ms, "mcm");
  check_class(cfg.node_mtbf_ms, cfg.node_mttr_ms, "node");
  check_class(cfg.link_mtbf_ms, cfg.link_mttr_ms, "link");
  check_class(cfg.laser_mtbf_ms, cfg.laser_mttr_ms, "laser");
  if (cfg.degrade_fraction <= 0.0 || cfg.degrade_fraction > 1.0)
    throw std::invalid_argument("fault: degrade_fraction must be in (0,1]");
  if (cfg.max_retries < 0)
    throw std::invalid_argument("fault: max_retries must be non-negative");
  if (cfg.backoff_base_ms <= 0.0 || cfg.backoff_cap_ms < cfg.backoff_base_ms)
    throw std::invalid_argument(
        "fault: want 0 < backoff_base_ms <= backoff_cap_ms");
}

sim::TimePs draw_gap(sim::Rng& rng, double mean_ms) {
  return std::max<sim::TimePs>(
      1, static_cast<sim::TimePs>(rng.exponential(mean_ms) *
                                  static_cast<double>(sim::kPsPerMs)));
}

/// One component's alternating up/down renewal process.  `pick_pair` draws
/// the affected pair for fabric classes (null for crash-stop classes).
template <typename PickPair>
void generate_component(std::vector<FaultEvent>& out, sim::Rng rng,
                        ComponentClass cls, int index, double mtbf_ms,
                        double mttr_ms, sim::TimePs horizon, PickPair pick_pair) {
  sim::TimePs t = 0;
  for (;;) {
    const sim::TimePs up = draw_gap(rng, mtbf_ms);
    if (up >= horizon - t) return;  // subtraction form: no overflow near the cap
    t += up;
    const auto [a, b] = pick_pair(rng, index);
    const sim::TimePs down = draw_gap(rng, mttr_ms);
    out.push_back(FaultEvent{t, FaultKind::kFail, cls, a, b});
    out.push_back(FaultEvent{t + down, FaultKind::kRepair, cls, a, b});
    t += down;
  }
}

}  // namespace

const config::EnumCodec<ComponentClass>& component_class_codec() {
  static const config::EnumCodec<ComponentClass> codec(
      "component class", {{"mcm", ComponentClass::kMcm},
                          {"node", ComponentClass::kNode},
                          {"link", ComponentClass::kLink},
                          {"laser", ComponentClass::kLaser}});
  return codec;
}

const config::EnumCodec<ResiliencePolicy>& resilience_policy_codec() {
  static const config::EnumCodec<ResiliencePolicy> codec(
      "resilience policy", {{"kill", ResiliencePolicy::kKill},
                            {"requeue", ResiliencePolicy::kRequeue},
                            {"degrade", ResiliencePolicy::kDegrade}});
  return codec;
}

std::vector<FaultEvent> derive_timeline(const FaultConfig& cfg, int mcms, int nodes,
                                        std::uint64_t seed, sim::TimePs horizon) {
  validate(cfg);
  if (mcms < 2) throw std::invalid_argument("fault: need >= 2 MCMs");
  if (nodes < 1) throw std::invalid_argument("fault: need >= 1 node");

  std::vector<FaultEvent> timeline;
  if (horizon <= 0) return timeline;
  // child() is const: deriving the fault root never advances the base
  // generator, so with the engine disabled no other stream moves by a byte.
  const sim::Rng root = sim::Rng(seed).child(3);

  auto self = [](sim::Rng&, int index) { return std::pair<int, int>{index, -1}; };
  auto pair_from = [mcms](sim::Rng& rng, int src) {
    const int dst = static_cast<int>(
        (src + 1 + rng.below(static_cast<std::uint64_t>(mcms - 1))) % mcms);
    return std::pair<int, int>{src, dst};
  };

  if (cfg.mcm_mtbf_ms > 0.0)
    for (int m = 0; m < mcms; ++m)
      generate_component(timeline, root.child(kMcmStreamBase + m),
                         ComponentClass::kMcm, m, cfg.mcm_mtbf_ms, cfg.mcm_mttr_ms,
                         horizon, self);
  if (cfg.node_mtbf_ms > 0.0)
    for (int n = 0; n < nodes; ++n)
      generate_component(timeline, root.child(kNodeStreamBase + n),
                         ComponentClass::kNode, n, cfg.node_mtbf_ms,
                         cfg.node_mttr_ms, horizon, self);
  if (cfg.link_mtbf_ms > 0.0)
    for (int s = 0; s < mcms; ++s)
      generate_component(timeline, root.child(kLinkStreamBase + s),
                         ComponentClass::kLink, s, cfg.link_mtbf_ms,
                         cfg.link_mttr_ms, horizon, pair_from);
  if (cfg.laser_mtbf_ms > 0.0)
    for (int s = 0; s < mcms; ++s)
      generate_component(timeline, root.child(kLaserStreamBase + s),
                         ComponentClass::kLaser, s, cfg.laser_mtbf_ms,
                         cfg.laser_mttr_ms, horizon, pair_from);

  // Total deterministic order; per-component streams already alternate
  // fail/repair, and distinct components never collide on the sort key.
  std::sort(timeline.begin(), timeline.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.at, x.cls, x.a, x.b, x.kind) <
                     std::tie(y.at, y.cls, y.a, y.b, y.kind);
            });
  return timeline;
}

FaultScheduler::FaultScheduler(const FaultConfig& cfg, int mcms, int nodes,
                               std::uint64_t seed, sim::TimePs horizon)
    : mcms_(mcms),
      nodes_(nodes),
      timeline_(derive_timeline(cfg, mcms, nodes, seed, horizon)) {}

void FaultScheduler::arm(sim::EventQueue& queue,
                         std::function<void(const FaultEvent&)> handler) const {
  for (const FaultEvent& ev : timeline_)
    queue.schedule_at(ev.at, [handler, ev]() { handler(ev); });
}

double FaultScheduler::availability(sim::TimePs horizon) const {
  if (horizon <= 0) return 1.0;
  // Pair each fail with its repair (per component; the timeline alternates
  // within a component) and integrate crash-stop downtime over the window.
  std::map<std::tuple<int, int, int>, sim::TimePs> down_since;
  double downtime_ps = 0.0;
  for (const FaultEvent& ev : timeline_) {
    if (ev.cls != ComponentClass::kMcm && ev.cls != ComponentClass::kNode) continue;
    const auto key = std::make_tuple(static_cast<int>(ev.cls), ev.a, ev.b);
    if (ev.kind == FaultKind::kFail) {
      down_since[key] = ev.at;
    } else {
      const sim::TimePs from = std::min(down_since[key], horizon);
      const sim::TimePs to = std::min(ev.at, horizon);
      downtime_ps += static_cast<double>(to - from);
      down_since.erase(key);
    }
  }
  const double components = static_cast<double>(mcms_ + nodes_);
  const double window = static_cast<double>(horizon) * components;
  return std::clamp(1.0 - downtime_ps / window, 0.0, 1.0);
}

double FaultScheduler::mean_mttr_ms() const {
  std::map<std::tuple<int, int, int>, sim::TimePs> fail_at;
  double total_ms = 0.0;
  std::uint64_t repairs = 0;
  for (const FaultEvent& ev : timeline_) {
    const auto key = std::make_tuple(static_cast<int>(ev.cls), ev.a, ev.b);
    if (ev.kind == FaultKind::kFail) {
      fail_at[key] = ev.at;
    } else {
      total_ms += static_cast<double>(ev.at - fail_at[key]) /
                  static_cast<double>(sim::kPsPerMs);
      ++repairs;
    }
  }
  return repairs ? total_ms / static_cast<double>(repairs) : 0.0;
}

}  // namespace photorack::fault
