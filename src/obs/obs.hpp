#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace photorack::obs {

/// Observability shape knobs, registered as the "obs" registry section so
/// `--set obs.trace.enabled=true` reaches any campaign or CLI run.  The
/// non-negotiable contract: enabling ANY of these leaves every simulation
/// output (campaign CSV/JSONL rows, reports, RNG streams) byte-identical to
/// an uninstrumented run — observation never feeds back into the model.
struct ObsConfig {
  bool trace_enabled = false;
  /// Flight-recorder bound on trace events (0 = keep everything).
  std::uint64_t trace_ring = 0;
  bool metrics_enabled = false;
  /// Period of the metrics time-series sampler.
  sim::TimePs metrics_interval = 5 * sim::kPsPerMs;
  bool profile_enabled = false;
};

/// Non-owning handle bundle the instrumented layers carry.  Null pointers
/// are the null sinks: every instrumentation site is a single pointer test
/// when its facility is disabled, so the default-constructed Obs compiles
/// the whole layer down to near-zero cost.
struct Obs {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  Profiler* profiler = nullptr;
  sim::TimePs metrics_interval = 5 * sim::kPsPerMs;

  [[nodiscard]] bool any() const {
    return trace != nullptr || metrics != nullptr || profiler != nullptr;
  }
};

/// Owning bundle: builds exactly the recorders an ObsConfig enables and
/// hands out the matching (possibly-null) handles.  Keep the bundle alive
/// for the duration of the run it observes.
class ObsBundle {
 public:
  explicit ObsBundle(const ObsConfig& cfg) {
    if (cfg.trace_enabled)
      trace_ = std::make_unique<TraceRecorder>(static_cast<std::size_t>(cfg.trace_ring));
    if (cfg.metrics_enabled) metrics_ = std::make_unique<MetricsRegistry>();
    if (cfg.profile_enabled) profiler_ = std::make_unique<Profiler>();
    interval_ = cfg.metrics_interval;
  }

  [[nodiscard]] Obs handles() {
    return Obs{trace_.get(), metrics_.get(), profiler_.get(), interval_};
  }
  [[nodiscard]] TraceRecorder* trace() { return trace_.get(); }
  [[nodiscard]] MetricsRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] Profiler* profiler() { return profiler_.get(); }

 private:
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Profiler> profiler_;
  sim::TimePs interval_ = 5 * sim::kPsPerMs;
};

}  // namespace photorack::obs
