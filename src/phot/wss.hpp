#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace photorack::phot {

/// Wavelength-assignment problem for a wave-selective switch (§III-D2).
///
/// A WSS can steer *any subset* of wavelengths from each input port to each
/// output port — but two inputs must never deliver the same wavelength to
/// the same output, and an input cannot emit one wavelength twice.  Given
/// per-pair wavelength demands, the controller must pick concrete
/// wavelength indices respecting both constraints.
///
/// This is exactly bipartite edge colouring: demands form a multigraph
/// between input and output ports, wavelengths are colours, and König's
/// theorem guarantees that any demand with per-port totals <= W wavelengths
/// is satisfiable with W colours.  assign_wavelengths() implements the
/// constructive proof (Kempe-chain augmentation), so it finds a complete
/// conflict-free assignment whenever one exists.
struct WssDemand {
  int src = 0;
  int dst = 0;
  int lambdas = 1;  // wavelengths wanted between the pair
};

struct WssGrant {
  int src = 0;
  int dst = 0;
  int lambda = 0;  // concrete wavelength index
};

struct WssAssignment {
  std::vector<WssGrant> grants;
  bool complete = false;  // every demanded wavelength was assigned

  /// Grants between one pair (for callers inspecting a route).
  [[nodiscard]] std::vector<int> lambdas_for(int src, int dst) const;
};

/// Assign concrete wavelengths on a `ports` x `ports` WSS with
/// `wavelengths` usable indices per port.  Throws std::invalid_argument for
/// out-of-range ports or non-positive demands; returns complete=false when
/// a port's total demand exceeds the wavelength count (the only infeasible
/// case, per König).
[[nodiscard]] WssAssignment assign_wavelengths(int ports, int wavelengths,
                                               std::span<const WssDemand> demands);

/// Validity check used by tests and callers: no wavelength reused at any
/// source or destination.
[[nodiscard]] bool is_conflict_free(int ports, int wavelengths,
                                    const WssAssignment& assignment);

}  // namespace photorack::phot
