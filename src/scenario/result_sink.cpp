#include "scenario/result_sink.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>

namespace photorack::scenario {

namespace {

bool needs_csv_quotes(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (!needs_csv_quotes(cell)) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_csv_line(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    write_csv_cell(os, cells[i]);
  }
  os << '\n';
}

/// A cell is emitted as a raw JSON number iff it matches RFC 8259's number
/// grammar exactly.  strtod is too permissive here — it accepts "+50",
/// "0x1f", ".5" and "5." — and any of those unquoted would make the line
/// unparseable for strict JSON consumers.
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  const std::size_t n = cell.size();
  const auto digit = [&](std::size_t k) {
    return k < n && std::isdigit(static_cast<unsigned char>(cell[k]));
  };
  if (i < n && cell[i] == '-') ++i;
  if (!digit(i)) return false;
  if (cell[i] == '0') {
    ++i;  // no leading zeros: "0" may not be followed by more digits
  } else {
    while (digit(i)) ++i;
  }
  if (i < n && cell[i] == '.') {
    ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  if (i < n && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < n && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == n;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void CsvSink::manifest(const std::string& manifest_json) {
  os_ << "# manifest " << manifest_json << '\n';
}

void CsvSink::open(const std::vector<std::string>& columns) {
  write_csv_line(os_, columns);
}

void CsvSink::write(const ResultRow& row) { write_csv_line(os_, row.cells); }

void CsvSink::close() { os_.flush(); }

void JsonlSink::manifest(const std::string& manifest_json) {
  os_ << "{\"manifest\":" << manifest_json << "}\n";
}

void JsonlSink::open(const std::vector<std::string>& columns) { columns_ = columns; }

void JsonlSink::write(const ResultRow& row) {
  os_ << '{';
  for (std::size_t i = 0; i < row.cells.size() && i < columns_.size(); ++i) {
    if (i) os_ << ',';
    write_json_string(os_, columns_[i]);
    os_ << ':';
    if (is_json_number(row.cells[i])) {
      os_ << row.cells[i];
    } else {
      write_json_string(os_, row.cells[i]);
    }
  }
  os_ << "}\n";
}

void JsonlSink::close() { os_.flush(); }

void TableSink::open(const std::vector<std::string>& columns) {
  table_.clear();
  table_.emplace_back(columns);
}

void TableSink::write(const ResultRow& row) {
  if (!table_.empty()) table_.front().add_row(row.cells);
}

void TableSink::close() {
  if (table_.empty()) return;
  table_.front().print(os_);
  table_.clear();
}

}  // namespace photorack::scenario
