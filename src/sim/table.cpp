#include "sim/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace photorack::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_sci(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace photorack::sim
