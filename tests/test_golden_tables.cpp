// End-to-end golden test: drive the full stack the way the bench binaries
// do (RackSystem facade + the table entry points) and pin the key numbers
// of the paper's Tables I, II, and III plus the §VI-B/§VI-C headline
// figures.  If a refactor anywhere in phot/rack/net/core shifts one of
// these, this suite — not a bench binary someone has to run by hand —
// catches it.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/rack_system.hpp"
#include "phot/links.hpp"
#include "phot/power.hpp"
#include "phot/switches.hpp"
#include "rack/mcm.hpp"
#include "rack/rack_builder.hpp"

namespace photorack {
namespace {

// ---------------------------------------------------------------------------
// Table I: link technologies sized for the paper's 2 TB/s MCM escape.
// ---------------------------------------------------------------------------

TEST(GoldenTable1, LinkCountsForTwoTBPerSecondEscape) {
  const phot::GBps escape{2000};
  EXPECT_EQ(phot::link_by_name("100G-Ethernet").links_for_escape(escape), 160);
  EXPECT_EQ(phot::link_by_name("400G-Ethernet").links_for_escape(escape), 40);
  EXPECT_EQ(phot::link_by_name("TeraPHY-768G").links_for_escape(escape), 21);
  EXPECT_EQ(phot::link_by_name("Comb-1T").links_for_escape(escape), 16);
  EXPECT_EQ(phot::link_by_name("Comb-2T").links_for_escape(escape), 8);
}

TEST(GoldenTable1, DwdmPowerAdvantageOverEthernet) {
  // Table I column 5: Ethernet needs ~480 W for 2 TB/s of escape while the
  // DWDM comb parts need single-digit watts — the 100x gap that motivates
  // co-packaged photonics in the first place.
  const phot::GBps escape{2000};
  const double ethernet = phot::link_by_name("100G-Ethernet").power_for_escape(escape).value;
  const double comb2t = phot::link_by_name("Comb-2T").power_for_escape(escape).value;
  EXPECT_NEAR(ethernet, 480.0, 0.5);
  EXPECT_NEAR(comb2t, 4.8, 0.1);
  EXPECT_GT(ethernet / comb2t, 90.0);
}

// ---------------------------------------------------------------------------
// Table II: demonstrated optical switch technologies (port figures).
// ---------------------------------------------------------------------------

TEST(GoldenTable2, SwitchPortFigures) {
  EXPECT_EQ(phot::switch_by_kind(phot::SwitchKind::kMachZehnder).radix, 32);
  EXPECT_EQ(phot::switch_by_kind(phot::SwitchKind::kMemsActuated).radix, 240);
  EXPECT_EQ(phot::switch_by_kind(phot::SwitchKind::kMicroringWss).radix, 128);
  EXPECT_EQ(phot::switch_by_kind(phot::SwitchKind::kCascadedAwgr).radix, 370);
}

TEST(GoldenTable2, AwgrAggregateBandwidth) {
  // 370 ports x 370 wavelengths x 25 Gb/s.
  const auto& awgr = phot::switch_by_kind(phot::SwitchKind::kCascadedAwgr);
  EXPECT_DOUBLE_EQ(awgr.port_bandwidth().value, 370 * 25.0);
  EXPECT_DOUBLE_EQ(awgr.aggregate_bandwidth().value, 370.0 * 370.0 * 25.0);
}

// ---------------------------------------------------------------------------
// Table III: MCM packing of the Perlmutter-like rack, via the RackSystem
// facade (the same path quickstart and the bench binaries take).
// ---------------------------------------------------------------------------

TEST(GoldenTable3, RackPacksInto350Mcms) {
  const core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  EXPECT_EQ(system.total_mcms(), 350);
}

TEST(GoldenTable3, PerTypePackingRows) {
  const core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  const auto& plan = system.design().mcm_plan;

  const auto expect_row = [&plan](rack::ChipType type, int chips_per_mcm,
                                  int mcm_count) {
    const auto& row = plan.plan_for(type);
    EXPECT_EQ(row.chips_per_mcm, chips_per_mcm) << to_string(type);
    EXPECT_EQ(row.mcm_count, mcm_count) << to_string(type);
  };
  expect_row(rack::ChipType::kCpu, 14, 10);
  expect_row(rack::ChipType::kGpu, 3, 171);
  expect_row(rack::ChipType::kNic, 203, 3);
  expect_row(rack::ChipType::kHbm, 4, 128);
  expect_row(rack::ChipType::kDdr4, 27, 38);
}

TEST(GoldenTable3, McmEscapeBudgetMatchesSection5A) {
  // 32 fibers x 64 wavelengths x 25 Gb/s = 2048 lambdas, 6.4 TB/s escape.
  const rack::McmConfig mcm;
  EXPECT_EQ(mcm.total_wavelengths(), 2048);
  EXPECT_DOUBLE_EQ(mcm.escape().value, 6400.0);
}

// ---------------------------------------------------------------------------
// Headline latency and power figures (§VI-B, §VI-C) through the facade.
// ---------------------------------------------------------------------------

TEST(GoldenHeadline, PhotonicAddsThirtyFiveNs) {
  const core::RackSystem photonic(rack::FabricKind::kParallelAwgrs);
  EXPECT_DOUBLE_EQ(photonic.added_memory_latency_ns(), 35.0);
}

TEST(GoldenHeadline, ElectronicAddsEightyFiveNs) {
  const core::RackSystem electronic(rack::FabricKind::kElectronicSwitches);
  EXPECT_DOUBLE_EQ(electronic.added_memory_latency_ns(), 85.0);
}

TEST(GoldenHeadline, PhotonicPowerIsAboutElevenKilowattsAndFivePercent) {
  // §VI-C worked example: ~11 kW photonic overhead, ~5% of the rack's
  // compute power, with all parallel switches under 1 kW.
  const core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  const auto power = system.power_overhead();
  EXPECT_NEAR(power.total.value / 1000.0, 11.0, 1.0);
  EXPECT_LE(power.switches.value, 1000.0);
  EXPECT_NEAR(power.overhead_vs_baseline, 0.05, 0.01);
  EXPECT_NEAR(power.transceivers.value + power.switches.value, power.total.value, 1e-6);
}

TEST(GoldenHeadline, DirectPairBandwidthIsPositiveForAllFabrics) {
  for (const auto fabric : {rack::FabricKind::kParallelAwgrs,
                            rack::FabricKind::kSpatialOrWss,
                            rack::FabricKind::kElectronicSwitches}) {
    const core::RackSystem system(fabric);
    EXPECT_GT(system.direct_pair_bandwidth_gbps(), 0.0);
  }
}

}  // namespace
}  // namespace photorack
