#include "cpusim/dram.hpp"

#include <stdexcept>

namespace photorack::cpusim {

DramModel::DramModel(DramConfig cfg) : cfg_(cfg) {
  if (cfg_.banks <= 0 || cfg_.row_bytes == 0)
    throw std::invalid_argument("DramModel: bad geometry");
  open_row_.assign(static_cast<std::size_t>(cfg_.banks), kNone);
}

DramAccess DramModel::access(std::uint64_t addr) {
  ++accesses_;
  const std::uint64_t row = addr / cfg_.row_bytes;
  // Rows interleave across banks so streaming spreads over the bank set.
  const auto bank = static_cast<std::size_t>(row % static_cast<std::uint64_t>(cfg_.banks));
  DramAccess out;
  double latency;
  if (open_row_[bank] == row) {
    ++row_hits_;
    out.row_hit = true;
    latency = cfg_.row_hit_ns;
  } else {
    open_row_[bank] = row;
    latency = cfg_.row_miss_ns;
  }
  out.ns = latency + cfg_.extra_ns;
  return out;
}

}  // namespace photorack::cpusim
