#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/interconnect.hpp"
#include "config/enum_codec.hpp"
#include "cosim/rack_cosim.hpp"
#include "sim/thread_pool.hpp"

namespace photorack::cluster {

/// Where a job the home rack cannot admit may run instead.
enum class SpillPolicy {
  kNone,   ///< rack-scale disaggregation: overflow is dropped (the baseline)
  kNext,   ///< spill to the ring neighbor (origin + 1) mod racks
  kLeast,  ///< spill to the rack with the most free capacity (ties: lowest id)
};

/// Canonical CLI/axis/registry spelling: "none" | "next" | "least".
[[nodiscard]] const config::EnumCodec<SpillPolicy>& spill_policy_codec();

/// The "cluster" registry section: how many racks, whether overflow crosses
/// racks, and the inter-rack photonic pipe it crosses on.
struct ClusterConfig {
  int racks = 4;
  SpillPolicy spill = SpillPolicy::kNone;
  /// Per directed rack-pair link rate of the inter-rack DWDM interconnect.
  phot::Gbps interconnect_gbps{400.0};
  /// One-way inter-rack propagation + switching latency.  Also the width of
  /// the cluster loop's conservative synchronization window.
  double hop_ns = 200.0;
  /// Inter-rack transceiver energy (always-on uplinks while cluster-scale
  /// disaggregation is active).
  double interconnect_pj_per_bit = 30.0;
  /// Worker threads for the rack event loops; 0 = one per rack, capped at
  /// the hardware concurrency.  Changing this NEVER changes results — the
  /// synchronization windows make cluster runs bit-identical at any count.
  int workers = 0;
};

struct ClusterReport {
  /// Per-rack reports, index == rack id.
  std::vector<cosim::CosimReport> racks;
  /// Cluster-wide aggregate.  Job tails come from exact sketch merges, so
  /// they equal a single stream that saw every job; flow fractions are
  /// flow-count-weighted means; power sums across racks; completed_at is the
  /// latest rack.  With one rack this is that rack's report, field for field.
  cosim::CosimReport total;
  std::uint64_t spilled = 0;        // jobs exported to another rack
  std::uint64_t spill_failed = 0;   // spills the target rack also refused
  std::uint64_t barriers = 0;       // synchronization windows executed
  double interconnect_power_w = 0.0;
  double interconnect_energy_j = 0.0;
  double interconnect_utilization = 0.0;  // at report time
};

/// Multi-rack cluster co-simulation: N independent RackCosim event domains
/// coordinated by a deterministic conservative-window loop.
///
/// Each rack owns its event queue, wavelength fabric, allocator, fault
/// timeline and RNG streams (rack 0 runs the base seed verbatim; rack r > 0
/// derives its seed from child stream 5.r, untouched by any rack-local
/// stream).  Racks advance in parallel on a thread pool, in windows bounded
/// by
///
///   barrier = min over racks of next_event_time() + hop latency
///
/// A cross-rack effect born at t >= t_min delivers at t + hop >= barrier, so
/// running every rack to the barrier can never miss one: spill requests and
/// inter-rack link releases are recorded in per-rack outboxes during the
/// window and exchanged only at the barrier, in (time, origin rack, record
/// order) — a total order independent of thread scheduling.  Cluster runs
/// are therefore bit-identical at any worker count (pinned by test_cluster
/// and the CI cluster smoke step).
///
/// With spill == kNone (or one rack) the domains cannot interact at all and
/// the loop collapses to one window: every rack runs to completion fully
/// parallel.
class ClusterCosim {
 public:
  ClusterCosim(const rack::RackConfig& rack, disagg::AllocationPolicy policy,
               const workloads::UsageModel& usage, ClusterConfig cluster,
               cosim::CosimConfig cfg = {}, obs::Obs obs = {});

  // Racks hold self-pointing event handlers and this object holds rack
  // pointers in its own handlers; neither survives a copy.
  ClusterCosim(const ClusterCosim&) = delete;
  ClusterCosim& operator=(const ClusterCosim&) = delete;

  /// Run every rack to completion (arrival horizons, stretched completions
  /// and all cross-rack traffic drained).
  void run();

  [[nodiscard]] ClusterReport report() const;
  [[nodiscard]] int racks() const { return static_cast<int>(racks_.size()); }
  [[nodiscard]] const cosim::RackCosim& rack(int r) const { return *racks_.at(r); }
  [[nodiscard]] const InterRackFabric& interconnect() const { return fabric_; }

 private:
  /// One spilled job, recorded by the origin rack's worker thread during a
  /// window, acted on by the coordinator at the barrier.
  struct SpillMsg {
    sim::TimePs at = 0;
    int origin = 0;
    cosim::RackCosim::JobPlan plan;
    sim::TimePs arrived = 0;
  };
  /// One inter-rack grant coming back (job completed / revoked, or the
  /// spill was refused at the target: placed = false).
  struct CloseMsg {
    sim::TimePs at = 0;
    int origin = 0;
    int link = -1;
    double gbps = 0.0;
    bool placed = true;
  };

  ClusterConfig cfg_;
  std::vector<std::unique_ptr<cosim::RackCosim>> racks_;
  InterRackFabric fabric_;
  sim::ThreadPool pool_;
  // Per-rack outboxes: each is written only by the thread advancing that
  // rack during a window and drained only by the coordinator at the barrier
  // (wait_idle orders the two), so no locking is needed.
  std::vector<std::vector<SpillMsg>> spill_out_;
  std::vector<std::vector<CloseMsg>> close_out_;
  std::uint64_t spilled_ = 0;
  std::uint64_t spill_failed_ = 0;
  std::uint64_t barriers_ = 0;
  bool ran_ = false;

  [[nodiscard]] bool coupled() const {
    return cfg_.spill != SpillPolicy::kNone && racks_.size() > 1;
  }
  void advance_all(sim::TimePs barrier);
  void exchange(sim::TimePs barrier);
  [[nodiscard]] int pick_target(int origin) const;
  [[nodiscard]] sim::TimePs sim_end() const;
};

/// Run-to-completion convenience over ClusterCosim.
[[nodiscard]] ClusterReport run_cluster_cosim(
    const rack::RackConfig& rack, disagg::AllocationPolicy policy,
    const workloads::UsageModel& usage, const ClusterConfig& cluster,
    const cosim::CosimConfig& cfg = {}, obs::Obs obs = {});

}  // namespace photorack::cluster
