#include "phot/switches.hpp"

#include <gtest/gtest.h>

namespace photorack::phot {
namespace {

TEST(Switches, TableHasFourFamilies) { EXPECT_EQ(table2_switches().size(), 4u); }

TEST(Switches, AwgrIsPassive) {
  const auto& awgr = switch_by_kind(SwitchKind::kCascadedAwgr);
  EXPECT_FALSE(awgr.requires_reconfiguration);
  EXPECT_FALSE(awgr.requires_central_scheduler);
  EXPECT_EQ(awgr.reconfiguration_time, 0);
}

TEST(Switches, SpatialAndWssNeedScheduling) {
  for (const auto kind :
       {SwitchKind::kMachZehnder, SwitchKind::kMemsActuated, SwitchKind::kMicroringWss}) {
    const auto& sw = switch_by_kind(kind);
    EXPECT_TRUE(sw.requires_reconfiguration) << sw.name;
    EXPECT_TRUE(sw.requires_central_scheduler) << sw.name;
    EXPECT_GT(sw.reconfiguration_time, 0) << sw.name;
  }
}

TEST(Switches, Table2RadixValues) {
  EXPECT_EQ(switch_by_kind(SwitchKind::kMachZehnder).radix, 32);
  EXPECT_EQ(switch_by_kind(SwitchKind::kMemsActuated).radix, 240);
  EXPECT_EQ(switch_by_kind(SwitchKind::kMicroringWss).radix, 128);
  EXPECT_EQ(switch_by_kind(SwitchKind::kCascadedAwgr).radix, 370);
}

TEST(Switches, AwgrCarries370WavelengthsPerPort) {
  const auto& awgr = switch_by_kind(SwitchKind::kCascadedAwgr);
  EXPECT_EQ(awgr.wavelengths_per_port, 370);
  EXPECT_DOUBLE_EQ(awgr.gbps_per_wavelength.value, 25.0);
  EXPECT_DOUBLE_EQ(awgr.port_bandwidth().value, 370 * 25.0);
}

TEST(Switches, AggregateBandwidth) {
  const auto& awgr = switch_by_kind(SwitchKind::kCascadedAwgr);
  EXPECT_DOUBLE_EQ(awgr.aggregate_bandwidth().value, 370.0 * 370 * 25);
}

TEST(Switches, Table4StudyConfigs) {
  const auto configs = table4_study_configs();
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0].radix, 370);  // cascaded AWGRs
  EXPECT_EQ(configs[1].radix, 240);  // spatial
  EXPECT_EQ(configs[2].radix, 256);  // wave-selective
  for (const auto& c : configs) {
    EXPECT_EQ(c.radix, c.wavelengths_per_port) << c.name;
    EXPECT_DOUBLE_EQ(c.gbps_per_wavelength.value, 25.0) << c.name;
  }
}

TEST(Switches, MergedSpatialWssIs256) {
  const auto merged = merged_spatial_wss_config();
  EXPECT_EQ(merged.radix, 256);
  EXPECT_EQ(merged.wavelengths_per_port, 256);
}

TEST(Switches, NamesAreStable) {
  EXPECT_STREQ(to_string(SwitchKind::kCascadedAwgr), "Cascaded-AWGR");
  EXPECT_STREQ(to_string(SwitchKind::kMemsActuated), "MEMS-actuated");
}

}  // namespace
}  // namespace photorack::phot
