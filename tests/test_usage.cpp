#include "workloads/usage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace photorack::workloads {
namespace {

double empirical_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * (v.size() - 1))];
}

TEST(QuantileLognormalTest, HitsConstructionQuantiles) {
  QuantileLognormal dist(0.50, 0.10, 0.75, 0.20, 0.0);
  EXPECT_NEAR(dist.quantile(0.50), 0.10, 1e-6);
  EXPECT_NEAR(dist.quantile(0.75), 0.20, 1e-6);
}

TEST(QuantileLognormalTest, SamplesMatchAnalyticQuantiles) {
  QuantileLognormal dist(0.50, 1.0, 0.90, 5.0, 0.0);
  sim::Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 200'000; ++i) samples.push_back(dist.sample(rng));
  EXPECT_NEAR(empirical_quantile(samples, 0.50), 1.0, 0.05);
  EXPECT_NEAR(empirical_quantile(samples, 0.90), 5.0, 0.25);
}

TEST(QuantileLognormalTest, ClampCapsSamples) {
  QuantileLognormal dist(0.50, 0.5, 0.75, 0.9, 1.0);
  sim::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LE(dist.sample(rng), 1.0);
}

TEST(QuantileLognormalTest, RejectsBadQuantiles) {
  EXPECT_THROW(QuantileLognormal(0.75, 0.1, 0.50, 0.2), std::invalid_argument);
  EXPECT_THROW(QuantileLognormal(0.50, 0.2, 0.75, 0.1), std::invalid_argument);
  EXPECT_THROW(QuantileLognormal(0.50, 0.0, 0.75, 0.1), std::invalid_argument);
}

TEST(UsageModelTest, CoriQuantilesMatchSection2A) {
  const auto usage = UsageModel::cori();
  // "three quarters of the time, Haswell nodes use less than 17.4% of
  // memory capacity".
  EXPECT_NEAR(usage.memory_capacity.quantile(0.75), 0.174, 1e-6);
  // "three quarters of the time 1.25% of available NIC bandwidth".
  EXPECT_NEAR(usage.nic_bandwidth.quantile(0.75), 0.0125, 1e-6);
  // "half of the time, Cori nodes use no more than half of their cores".
  EXPECT_NEAR(usage.cpu_cores.quantile(0.50), 0.50, 1e-6);
}

TEST(UsageModelTest, MemoryBandwidthIsTiny) {
  const auto usage = UsageModel::cori();
  EXPECT_LT(usage.memory_bandwidth.quantile(0.75), 0.005);
}

TEST(FlowDemand, CpuMemoryQuantilesMatchSection6A) {
  const auto demand = FlowDemandModel::cpu_memory();
  // One 25 Gb/s wavelength suffices 97% of the time; the 125 Gb/s direct
  // budget 99.5% of the time.
  EXPECT_NEAR(demand.quantile(0.97), 25.0, 0.01);
  EXPECT_NEAR(demand.quantile(0.995), 125.0, 0.1);
}

TEST(FlowDemand, NicMemoryIsLighter) {
  const auto nic = FlowDemandModel::nic_memory();
  const auto cpu = FlowDemandModel::cpu_memory();
  EXPECT_LT(nic.quantile(0.97), cpu.quantile(0.97));
}

/// Property: the two-quantile fit reproduces *any* consistent pair of
/// construction quantiles, not just the Cori ones.
struct QuantilePair {
  double p, vp, q, vq;
};

class QuantileFitProperty : public ::testing::TestWithParam<QuantilePair> {};

TEST_P(QuantileFitProperty, RoundTrips) {
  const auto [p, vp, q, vq] = GetParam();
  QuantileLognormal dist(p, vp, q, vq, 0.0);
  EXPECT_NEAR(dist.quantile(p), vp, vp * 1e-6);
  EXPECT_NEAR(dist.quantile(q), vq, vq * 1e-6);
  // Monotone between and beyond the anchors.
  EXPECT_LT(dist.quantile(p * 0.5), dist.quantile(p));
  EXPECT_GT(dist.quantile(std::min(0.999, q + 0.004)), dist.quantile(q) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Pairs, QuantileFitProperty,
                         ::testing::Values(QuantilePair{0.5, 0.1, 0.75, 0.174},
                                           QuantilePair{0.5, 1.0, 0.9, 5.0},
                                           QuantilePair{0.25, 0.01, 0.99, 3.0},
                                           QuantilePair{0.97, 25.0, 0.995, 125.0},
                                           QuantilePair{0.1, 0.001, 0.2, 0.002}));

TEST(FlowDemand, SamplesArePositiveAndHeavyTailed) {
  const auto demand = FlowDemandModel::cpu_memory();
  sim::Rng rng(11);
  int over25 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double g = demand.sample_gbps(rng);
    EXPECT_GT(g, 0.0);
    over25 += (g > 25.0) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(over25) / n, 0.03, 0.005);
}

}  // namespace
}  // namespace photorack::workloads
