// Reproduces Fig 6: average and maximum slowdown per benchmark suite and
// input size for +35 ns of LLC<->memory latency, in-order and OOO cores.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Fig 6: CPU slowdown at +35 ns", "Fig 6 (Section VI-B1)");

  core::CpuSweepOptions opt;
  opt.extra_latencies_ns = {0.0, 35.0};
  const auto sweep = core::run_cpu_sweep(opt);

  sim::Table table({"Suite", "Input", "avg in-order", "max in-order", "avg OOO", "max OOO"});
  for (const auto& row : core::fig6_rows(sweep)) {
    table.add_row({row.suite, row.input, sim::fmt_pct(row.avg_inorder),
                   sim::fmt_pct(row.max_inorder), sim::fmt_pct(row.avg_ooo),
                   sim::fmt_pct(row.max_ooo)});
  }
  table.print(std::cout);

  std::cout << "\nPer-benchmark slowdowns (in-order | OOO), +35 ns:\n";
  sim::Table detail({"Benchmark", "in-order", "OOO", "LLC missrate", "IPC base"});
  for (const auto* rec :
       sweep.records("", "", cpusim::CoreKind::kInOrder, 35.0)) {
    const auto& ooo =
        sweep.find(rec->bench->full_name(), cpusim::CoreKind::kOutOfOrder, 35.0);
    const auto& base =
        sweep.find(rec->bench->full_name(), cpusim::CoreKind::kInOrder, 0.0);
    detail.add_row({rec->bench->full_name(), sim::fmt_pct(rec->slowdown),
                    sim::fmt_pct(ooo.slowdown), sim::fmt_pct(rec->result.llc_miss_rate),
                    sim::fmt_fixed(base.result.ipc, 2)});
  }
  detail.print(std::cout);

  const double avg_io = sweep.overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0);
  const double avg_ooo = sweep.overall_mean_slowdown(cpusim::CoreKind::kOutOfOrder, 35.0);
  const auto nw_io = sweep.find("Rodinia/nw/default", cpusim::CoreKind::kInOrder, 35.0);
  const auto nw_ooo = sweep.find("Rodinia/nw/default", cpusim::CoreKind::kOutOfOrder, 35.0);
  const auto sc_large =
      sweep.find("PARSEC/streamcluster/large", cpusim::CoreKind::kInOrder, 35.0);
  const auto sc_medium =
      sweep.find("PARSEC/streamcluster/medium", cpusim::CoreKind::kInOrder, 35.0);

  std::cout << "\npaper-vs-measured (Fig 6 and Section VI-B1 text):\n";
  core::check_line(std::cout, "overall avg slowdown, in-order", 0.15, avg_io);
  core::check_line(std::cout, "overall avg slowdown, OOO", 0.22, avg_ooo);
  core::check_line(std::cout, "NAS avg slowdown ~0 (in-order)", 0.01,
                   sim::mean_of(sweep.slowdowns("NAS", "", cpusim::CoreKind::kInOrder, 35.0)),
                   3.0);
  core::check_line(std::cout, "Rodinia avg slowdown (in-order)", 0.16,
                   sim::mean_of(sweep.slowdowns("Rodinia", "", cpusim::CoreKind::kInOrder,
                                                35.0)));
  core::check_line(std::cout, "PARSEC-large avg (in-order)", 0.23,
                   sim::mean_of(sweep.slowdowns("PARSEC", "large",
                                                cpusim::CoreKind::kInOrder, 35.0)));
  core::check_line(std::cout, "PARSEC-large avg (OOO)", 0.41,
                   sim::mean_of(sweep.slowdowns("PARSEC", "large",
                                                cpusim::CoreKind::kOutOfOrder, 35.0)));
  core::check_line(std::cout, "worst benchmark NW (in-order)", 0.79, nw_io.slowdown);
  core::check_line(std::cout, "worst benchmark NW (OOO)", 0.55, nw_ooo.slowdown, 1.0);
  core::check_line(std::cout, "streamcluster-large slowdown (in-order)", 0.57,
                   sc_large.slowdown);
  core::check_line(std::cout, "streamcluster-large LLC miss rate > 60%", 0.60,
                   sc_large.result.llc_miss_rate);
  core::check_line(std::cout, "streamcluster-medium LLC miss rate < 0.5%", 0.005,
                   sc_medium.result.llc_miss_rate, 3.0);
  return 0;
}
