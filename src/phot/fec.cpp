#include "phot/fec.hpp"

#include <cmath>

namespace photorack::phot {

namespace {

/// P[at least one error burst] for n bits at bit error rate p, treating a
/// burst as a correlated run seeded by one independent error event.  For the
/// tiny probabilities involved, 1-(1-p)^n evaluated via expm1/log1p keeps
/// full precision down to 1e-30.
double prob_at_least_one(double p, double n_bits) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  return -std::expm1(n_bits * std::log1p(-p));
}

}  // namespace

FecOutcome FecModel::evaluate(double raw_ber) const {
  FecOutcome out{};
  out.raw_ber = raw_ber;
  const double flit_bits = static_cast<double>(cfg_.flit_bytes) * 8.0;

  // Burst events per flit: each independent seed error starts one burst.
  const double p_one = prob_at_least_one(raw_ber, flit_bits);
  out.flit_error_prob = p_one;

  // FEC corrects any single burst; failure needs >=2 bursts in one flit, so
  // the flit failure probability decreases quadratically (the paper's
  // "1e-6 becomes 1e-12" example).
  out.post_fec_flit_fail = p_one * p_one;

  // Mis-corrected flits are almost always caught by the 64-bit CRC; escapes
  // require the corrupted flit to alias the CRC: 2^-crc_bits.
  const double crc_alias = std::pow(2.0, -static_cast<double>(cfg_.crc_bits));
  out.crc_escape_prob = out.post_fec_flit_fail * crc_alias;

  // Express escapes per transferred bit.
  out.effective_ber = out.crc_escape_prob / flit_bits;

  // Everything the CRC catches becomes a retransmission.
  out.retransmit_rate = out.post_fec_flit_fail * (1.0 - crc_alias);
  out.bandwidth_loss = cfg_.fec_overhead_fraction + out.retransmit_rate;
  return out;
}

bool FecModel::meets_target(double raw_ber, double target) const {
  return evaluate(raw_ber).effective_ber <= target;
}

double FecModel::max_raw_ber_for_target(double target) const {
  double lo = 1e-30, hi = 1e-1;
  if (!meets_target(lo, target)) return 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (meets_target(mid, target))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

Nanoseconds FecModel::total_latency(Gbps lane_rate) const {
  // Serialization of one flit at the lane rate, plus the FEC pipeline.
  const double flit_bits = static_cast<double>(cfg_.flit_bytes) * 8.0;
  const double serialization_ns = flit_bits / lane_rate.value;  // bits / (bits/ns)
  return Nanoseconds{serialization_ns + cfg_.fec_latency.value};
}

double fit_rate(double effective_ber, Gbps data_rate) {
  // bits per hour at the given rate, times escapes per bit, times 1e9 hours.
  const double bits_per_hour = data_rate.value * 1e9 * 3600.0;
  return effective_ber * bits_per_hour * 1e9;
}

}  // namespace photorack::phot
