#include "core/rack_system.hpp"

#include <stdexcept>

namespace photorack::core {

RackSystem::RackSystem(rack::FabricKind fabric, const rack::RackConfig& rack,
                       const rack::McmConfig& mcm,
                       const phot::PhotonicPowerConfig& power_base)
    : design_(rack::build_rack_design(fabric, rack, mcm)), power_base_(power_base) {}

RackSystem::RackSystem(const config::ConfigTree& tree)
    : RackSystem(tree.build<config::SystemParams>("system").fabric,
                 tree.build<rack::RackConfig>("rack"),
                 tree.build<rack::McmConfig>("mcm"),
                 tree.build<phot::PhotonicPowerConfig>("phot")) {}

double RackSystem::direct_pair_bandwidth_gbps() const {
  switch (design_.fabric) {
    case rack::FabricKind::kParallelAwgrs:
      return design_.awgr.direct_pair_bandwidth.value;
    case rack::FabricKind::kSpatialOrWss:
      return design_.spatial.direct_pair_bandwidth.value;
    case rack::FabricKind::kElectronicSwitches:
      return design_.electronic.per_lane.value;
  }
  return 0.0;
}

phot::PowerBreakdown RackSystem::power_overhead() const {
  if (design_.fabric == rack::FabricKind::kElectronicSwitches) return {};
  phot::PhotonicPowerConfig cfg = power_base_;
  cfg.mcms = design_.mcm_plan.total_mcms;
  cfg.wavelengths_per_mcm = design_.mcm_plan.mcm.total_wavelengths();
  cfg.gbps_per_wavelength = design_.mcm_plan.mcm.gbps_per_wavelength;
  return phot::photonic_power_overhead(cfg);
}

net::WavelengthFabric RackSystem::make_fabric() const {
  if (design_.fabric != rack::FabricKind::kParallelAwgrs)
    throw std::logic_error("make_fabric: only the AWGR design has a wavelength fabric");
  return net::WavelengthFabric(design_.mcm_plan.total_mcms, design_.awgr);
}

}  // namespace photorack::core
