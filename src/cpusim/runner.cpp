#include "cpusim/runner.hpp"

#include <stdexcept>
#include <utility>

#include "cpusim/miss_profile.hpp"

namespace photorack::cpusim {

namespace {

// One code path for plain simulation and miss-profile recording: with a
// null recorder this is exactly the historical run_simulation; with a
// recorder attached (measured phase only) the run is observed without any
// numerical change — see Core::add_base_cycles.
SimResult run_impl(TraceSource& trace, const SimConfig& cfg,
                   MissProfileRecorder* recorder) {
  CacheHierarchy hierarchy(cfg.hierarchy);
  DramModel dram(cfg.dram);
  Core core(cfg.core, hierarchy, dram);

  if (cfg.prewarm_working_set && trace.footprint_bytes() > 0) {
    const std::uint64_t footprint = trace.footprint_bytes();
    const std::uint64_t span = std::min(footprint, cfg.prewarm_cap_bytes);
    hierarchy.prewarm_sequential(footprint - span, footprint);
  }

  trace.reset();
  core.run(trace, cfg.warmup_instructions);
  core.reset_stats();
  hierarchy.reset_stats();
  dram.reset_stats();

  if (recorder) core.set_recorder(recorder);
  core.run(trace, cfg.measured_instructions);
  const CoreStats& s = core.stats();
  if (recorder) recorder->finish(cfg, s, dram.row_hit_rate());

  SimResult r;
  r.instructions = s.instructions;
  r.cycles = s.cycles;
  r.time_ns = s.cycles / cfg.core.freq_ghz;
  r.ipc = s.ipc();
  r.llc_miss_rate = s.llc_miss_rate();
  r.llc_mpki = s.instructions
                   ? 1000.0 * static_cast<double>(s.llc_misses) /
                         static_cast<double>(s.instructions)
                   : 0.0;
  r.llc_miss_stall_cycles = s.llc_miss_stall_cycles;
  r.mem_op_fraction = s.instructions ? static_cast<double>(s.mem_ops) /
                                           static_cast<double>(s.instructions)
                                     : 0.0;
  r.dram_row_hit_rate = dram.row_hit_rate();
  return r;
}

}  // namespace

SimResult run_simulation(TraceSource& trace, const SimConfig& cfg) {
  return run_impl(trace, cfg, nullptr);
}

MissProfile record_miss_profile(TraceSource& trace, const SimConfig& cfg) {
  MissProfileRecorder recorder;
  (void)run_impl(trace, cfg, &recorder);
  return std::move(recorder).take();
}

double slowdown(const SimResult& baseline, const SimResult& perturbed) {
  if (baseline.time_ns <= 0.0) throw std::invalid_argument("slowdown: empty baseline");
  return perturbed.time_ns / baseline.time_ns - 1.0;
}

}  // namespace photorack::cpusim
