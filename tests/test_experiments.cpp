// Integration/regression tests pinning the reproduction's headline shapes.
// These run reduced instruction counts to stay fast; the bench binaries run
// the full configurations.
#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace photorack::core {
namespace {

/// One shared reduced-size sweep for all tests in this file.
class ExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CpuSweepOptions opt;
    opt.extra_latencies_ns = {0.0, 25.0, 35.0, 85.0};
    opt.warmup_instructions = 300'000;
    opt.measured_instructions = 600'000;
    sweep_ = new CpuSweep(run_cpu_sweep(opt));
    gpu_ = new GpuSweep(run_gpu_sweep({0.0, 35.0}));
  }
  static void TearDownTestSuite() {
    delete sweep_;
    delete gpu_;
    sweep_ = nullptr;
    gpu_ = nullptr;
  }
  static CpuSweep* sweep_;
  static GpuSweep* gpu_;
};

CpuSweep* ExperimentsTest::sweep_ = nullptr;
GpuSweep* ExperimentsTest::gpu_ = nullptr;

TEST_F(ExperimentsTest, SweepCoversFullMatrix) {
  // 61 benchmarks x 2 cores x 4 latencies.
  EXPECT_EQ(sweep_->runs.size(), 61u * 2 * 4);
}

TEST_F(ExperimentsTest, BaselinesHaveZeroSlowdown) {
  for (const auto& r : sweep_->runs)
    if (r.extra_ns == 0.0) EXPECT_NEAR(r.slowdown, 0.0, 1e-12);
}

TEST_F(ExperimentsTest, SlowdownsAreNonNegative) {
  for (const auto& r : sweep_->runs) EXPECT_GE(r.slowdown, -1e-9) << r.bench->full_name();
}

TEST_F(ExperimentsTest, OverallAveragesInPaperBand) {
  // Paper: 15% in-order, 22% OOO.  Allow a generous band — the shape
  // matters, not the third digit.
  const double io = sweep_->overall_mean_slowdown(cpusim::CoreKind::kInOrder, 35.0);
  const double ooo = sweep_->overall_mean_slowdown(cpusim::CoreKind::kOutOfOrder, 35.0);
  EXPECT_GT(io, 0.07);
  EXPECT_LT(io, 0.25);
  EXPECT_GT(ooo, 0.10);
  EXPECT_LT(ooo, 0.35);
  EXPECT_GT(ooo, io);  // OOO suffers more in relative terms
}

TEST_F(ExperimentsTest, NasIsNegligiblyAffected) {
  const double nas =
      sim::mean_of(sweep_->slowdowns("NAS", "", cpusim::CoreKind::kInOrder, 35.0));
  EXPECT_LT(nas, 0.05);
}

TEST_F(ExperimentsTest, NwIsTheWorstCpuBenchmark) {
  const auto& nw = sweep_->find("Rodinia/nw/default", cpusim::CoreKind::kInOrder, 35.0);
  EXPECT_GT(nw.slowdown, 0.6);
  for (const auto& r : sweep_->runs)
    if (r.core == cpusim::CoreKind::kInOrder && r.extra_ns == 35.0)
      EXPECT_LE(r.slowdown, nw.slowdown + 1e-9) << r.bench->full_name();
}

TEST_F(ExperimentsTest, StreamclusterInputSizeStory) {
  const auto& small =
      sweep_->find("PARSEC/streamcluster/small", cpusim::CoreKind::kInOrder, 35.0);
  const auto& large =
      sweep_->find("PARSEC/streamcluster/large", cpusim::CoreKind::kInOrder, 35.0);
  EXPECT_LT(small.result.llc_miss_rate, 0.05);
  EXPECT_GT(large.result.llc_miss_rate, 0.60);
  EXPECT_LT(small.slowdown, 0.05);
  EXPECT_GT(large.slowdown, 0.40);
}

TEST_F(ExperimentsTest, MissRateCorrelationIsStrong) {
  const auto fig7 = fig7_correlation(*sweep_, cpusim::CoreKind::kInOrder);
  EXPECT_GT(fig7.pearson_parsec_large, 0.6);
  EXPECT_GT(fig7.pearson_rodinia, 0.6);
}

TEST_F(ExperimentsTest, LatencySensitivityIsMonotone) {
  for (const auto core : {cpusim::CoreKind::kInOrder, cpusim::CoreKind::kOutOfOrder}) {
    const double s25 = sweep_->overall_mean_slowdown(core, 25.0);
    const double s35 = sweep_->overall_mean_slowdown(core, 35.0);
    EXPECT_LT(s25, s35);
    EXPECT_NEAR(s25 / s35, 25.0 / 35.0, 0.25);  // roughly proportional
  }
}

TEST_F(ExperimentsTest, Fig6RowsCoverAllGroups) {
  const auto rows = fig6_rows(*sweep_);
  EXPECT_EQ(rows.size(), 7u);  // 3 PARSEC + 3 NAS + 1 Rodinia
  for (const auto& row : rows) EXPECT_GE(row.max_inorder, row.avg_inorder);
}

TEST_F(ExperimentsTest, GpuAverageNearPaper) {
  const double avg = gpu_->mean_slowdown(35.0);
  EXPECT_GT(avg, 0.02);
  EXPECT_LT(avg, 0.10);  // paper: 5.35%
  EXPECT_LT(gpu_->max_slowdown(35.0), 0.15);
}

TEST_F(ExperimentsTest, GpusTolerateLatencyBetterThanCpus) {
  const auto rows = fig11_rows(*sweep_, *gpu_);
  ASSERT_FALSE(rows.empty());
  double worst_gpu = 0, worst_cpu = 0;
  for (const auto& row : rows) {
    worst_gpu = std::max(worst_gpu, row.gpu);
    worst_cpu = std::max(worst_cpu, row.inorder);
  }
  EXPECT_LT(worst_gpu, worst_cpu);
}

TEST_F(ExperimentsTest, PhotonicBeatsElectronicEverywhere) {
  const auto summary = fig12_speedup(*sweep_);
  EXPECT_GT(summary.cpu_inorder_avg, 0.0);
  EXPECT_GT(summary.cpu_ooo_avg, 0.0);
  EXPECT_GT(summary.gpu_avg, 0.0);
  for (const auto& [name, s] : summary.cpu_inorder) EXPECT_GE(s, -1e-9) << name;
  for (const auto& [name, s] : summary.gpu) EXPECT_GE(s, -1e-9) << name;
}

TEST_F(ExperimentsTest, ElectronicGpuComparisonReflectsBandwidthDerate) {
  const auto with_derate = fig12_speedup(*sweep_, 0.62);
  const auto without = fig12_speedup(*sweep_, 1.0);
  EXPECT_GT(with_derate.gpu_avg, without.gpu_avg);
}

TEST_F(ExperimentsTest, FindThrowsForUnknownBenchmark) {
  EXPECT_THROW(sweep_->find("PARSEC/nope/large", cpusim::CoreKind::kInOrder, 35.0),
               std::out_of_range);
  EXPECT_THROW(gpu_->find("nope", 35.0), std::out_of_range);
}

}  // namespace
}  // namespace photorack::core
