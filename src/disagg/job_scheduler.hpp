#pragma once

#include <cstdint>
#include <functional>

#include "disagg/allocator.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "workloads/usage.hpp"

namespace photorack::disagg {

/// Job-stream comparison of static-node vs disaggregated allocation: jobs
/// with usage-distribution-shaped demands arrive Poisson, hold, and leave.
/// The interesting outputs are acceptance ratio and how much capacity the
/// static policy maroons (§I / §II-A motivation).
struct JobSimConfig {
  double arrivals_per_ms = 4.0;
  sim::TimePs mean_duration = 20 * sim::kPsPerMs;
  sim::TimePs sim_time = 2000 * sim::kPsPerMs;
  std::uint64_t seed = 7;
  int max_job_nodes = 16;  // job breadth drawn in [1, max]
};

struct JobSimReport {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  double mean_cpu_utilization = 0.0;
  double mean_gpu_utilization = 0.0;
  double mean_memory_utilization = 0.0;
  double mean_marooned_cpu = 0.0;     // fraction of rack CPUs idle-but-held
  double mean_marooned_memory = 0.0;  // fraction of rack memory idle-but-held

  [[nodiscard]] double acceptance() const {
    return offered ? static_cast<double>(accepted) / static_cast<double>(offered) : 1.0;
  }
};

/// Run the same deterministic job stream against one rack policy.
[[nodiscard]] JobSimReport run_job_stream(const rack::RackConfig& rack,
                                          AllocationPolicy policy,
                                          const workloads::UsageModel& usage,
                                          const JobSimConfig& cfg = {});

}  // namespace photorack::disagg
