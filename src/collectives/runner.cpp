#include "collectives/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace photorack::collectives {

CollectiveRunner::CollectiveRunner(net::FlowEngine& engine, sim::EventQueue& queue,
                                   CollectiveSpec spec)
    : engine_(engine), queue_(queue), spec_(std::move(spec)) {
  if (spec_.endpoints.empty()) {
    throw std::invalid_argument("CollectiveRunner: no endpoints");
  }
  if (!(spec_.demand_gbps > 0.0)) {
    throw std::invalid_argument("CollectiveRunner: demand_gbps must be > 0");
  }
  if (!(spec_.rate_scale > 0.0) || spec_.rate_scale > 1.0) {
    throw std::invalid_argument("CollectiveRunner: rate_scale must be in (0, 1]");
  }
  if (!(spec_.min_rate_fraction > 0.0) || spec_.min_rate_fraction > 1.0) {
    throw std::invalid_argument(
        "CollectiveRunner: min_rate_fraction must be in (0, 1]");
  }
  program_ = compile(spec_.pattern, static_cast<int>(spec_.endpoints.size()),
                     spec_.bytes);
}

CollectiveRunner::~CollectiveRunner() { abort(); }

void CollectiveRunner::start(std::function<void(const CollectiveResult&)> done) {
  if (running_) throw std::logic_error("CollectiveRunner: already running");
  done_ = std::move(done);
  running_ = true;
  started_ = queue_.now();
  next_phase_ = 0;
  slowest_sum_ps_ = mean_sum_ps_ = 0.0;
  flows_opened_ = 0;
  start_phase();
}

void CollectiveRunner::start_phase() {
  if (next_phase_ >= program_.size()) {
    // Completed program (or an empty one): report via a zero-delay event so
    // the done handler never runs synchronously inside start()/close paths.
    phase_event_ = queue_.schedule_after(0, [this]() {
      phase_event_live_ = false;
      running_ = false;
      CollectiveResult result;
      result.elapsed = queue_.now() - started_;
      result.phases = static_cast<int>(program_.size());
      result.flows = flows_opened_;
      result.straggler_stretch =
          mean_sum_ps_ > 0.0 ? slowest_sum_ps_ / mean_sum_ps_ : 1.0;
      // The handler may destroy this runner: move it out and touch nothing
      // afterwards.
      auto handler = std::move(done_);
      if (handler) handler(result);
    });
    phase_event_live_ = true;
    return;
  }

  engine_.refresh_view(queue_.now());
  const Phase& phase = program_[next_phase_];
  double slowest_ps = 0.0;
  double sum_ps = 0.0;
  int opened = 0;
  for (const PhaseFlow& flow : phase.flows) {
    const int src = spec_.endpoints[static_cast<std::size_t>(flow.src)];
    const int dst = spec_.endpoints[static_cast<std::size_t>(flow.dst)];
    if (src == dst) continue;  // co-located ranks exchange through local memory
    const net::FlowSpec fs{src, dst, spec_.demand_gbps, 0};
    const std::uint64_t id = engine_.open(fs, queue_.now());
    open_ids_.push_back(id);
    open_specs_.push_back(fs);
    const double floor_gbps = spec_.demand_gbps * spec_.min_rate_fraction;
    const double rate_gbps =
        std::max(engine_.result(id).satisfied(), floor_gbps) * spec_.rate_scale;
    // bytes * 8 bits at rate_gbps * 1e9 bit/s, expressed in picoseconds.
    const double t_ps = flow.bytes * 8000.0 / rate_gbps;
    slowest_ps = std::max(slowest_ps, t_ps);
    sum_ps += t_ps;
    ++opened;
  }
  flows_opened_ += static_cast<std::uint64_t>(opened);
  slowest_sum_ps_ += slowest_ps;
  if (opened > 0) mean_sum_ps_ += sum_ps / opened;

  const auto duration =
      std::max<sim::TimePs>(1, static_cast<sim::TimePs>(std::ceil(slowest_ps)));
  phase_event_ = queue_.schedule_after(duration, [this]() { finish_phase(); });
  phase_event_live_ = true;
}

void CollectiveRunner::finish_phase() {
  phase_event_live_ = false;
  for (const std::uint64_t id : open_ids_) engine_.close(id, queue_.now());
  open_ids_.clear();
  open_specs_.clear();
  ++next_phase_;
  start_phase();
}

void CollectiveRunner::abort() {
  if (!running_) return;
  for (const std::uint64_t id : open_ids_) engine_.close(id, queue_.now());
  open_ids_.clear();
  open_specs_.clear();
  if (phase_event_live_) {
    queue_.cancel(phase_event_);
    phase_event_live_ = false;
  }
  running_ = false;
  done_ = nullptr;
}

}  // namespace photorack::collectives
