#include "scenario/sweep_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "config/bindings.hpp"
#include "config/manifest.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace photorack::scenario {

std::size_t SweepResult::col(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i)
    if (columns[i] == name) return i;
  throw std::out_of_range("SweepResult: no column '" + name + "'");
}

const std::string& SweepResult::cell(const ResultRow& row, const std::string& name) const {
  return row.cells.at(col(name));
}

double SweepResult::num(const ResultRow& row, const std::string& name) const {
  const std::string& v = cell(row, name);
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw std::invalid_argument("SweepResult: cell '" + name + "' value '" + v +
                                "' is not numeric");
  return x;
}

std::vector<const ResultRow*> SweepResult::where(const Filter& filter) const {
  std::vector<std::size_t> cols;
  cols.reserve(filter.size());
  for (const auto& [name, value] : filter) cols.push_back(col(name));
  std::vector<const ResultRow*> out;
  for (const auto& row : rows) {
    bool match = true;
    for (std::size_t f = 0; f < filter.size() && match; ++f)
      match = row.cells.at(cols[f]) == filter[f].second;
    if (match) out.push_back(&row);
  }
  return out;
}

namespace {

std::string describe(const SweepResult::Filter& filter) {
  std::string desc;
  for (const auto& [name, value] : filter) {
    if (!desc.empty()) desc += ",";
    desc += name + "=" + value;
  }
  return desc;
}

}  // namespace

const ResultRow& SweepResult::find(const Filter& filter) const {
  const auto matches = where(filter);
  if (matches.size() != 1)
    throw std::out_of_range("SweepResult::find(" + describe(filter) + "): " +
                            std::to_string(matches.size()) + " rows match, expected 1");
  return *matches.front();
}

std::vector<double> SweepResult::values(const std::string& name,
                                        const Filter& filter) const {
  std::vector<double> out;
  for (const ResultRow* row : where(filter)) out.push_back(num(*row, name));
  return out;
}

double SweepResult::mean(const std::string& name, const Filter& filter) const {
  const auto v = values(name, filter);
  // Throw rather than average nothing: a stale filter value in a bench
  // wrapper must fail loudly, not report a fake 0.0 measurement.
  if (v.empty())
    throw std::out_of_range("SweepResult::mean('" + name + "', {" + describe(filter) +
                            "}): no rows match");
  return sim::mean_of(v);
}

double SweepResult::max(const std::string& name, const Filter& filter) const {
  const auto v = values(name, filter);
  if (v.empty())
    throw std::out_of_range("SweepResult::max('" + name + "', {" + describe(filter) +
                            "}): no rows match");
  return sim::max_of(v);
}

SweepResult SweepRunner::run(const Campaign& campaign, const SweepGrid& grid,
                             const std::vector<ResultSink*>& sinks) const {
  const auto specs = grid.expand(campaign.name, opt_.base_seed);

  // Every run gets a manifest: campaign identity, seeds, the grid as run
  // (overrides already folded in), and the full resolved parameter tree —
  // enough to reproduce any row from the artifact alone.
  config::Manifest manifest;
  manifest.tool = "photorack_sweep";
  manifest.campaign = campaign.name;
  manifest.base_seed = opt_.base_seed;
  for (const Axis& ax : grid.axes()) manifest.axes.emplace_back(ax.name, ax.values);
  for (const Axis& ov : grid.overrides())
    manifest.overrides.emplace_back(ov.name, ov.values);
  const std::string manifest_json = manifest.to_json(config::registry());

  // Evaluate into per-spec slots so rows serialize in grid order no matter
  // how the pool schedules the work.
  std::vector<std::vector<ResultRow>> per_spec(specs.size());
  auto evaluate = [&](std::size_t i) { per_spec[i] = campaign.evaluate(specs[i]); };

  std::size_t jobs = opt_.jobs ? opt_.jobs : std::thread::hardware_concurrency();
  jobs = std::max<std::size_t>(1, std::min(jobs, specs.size()));
  if (jobs == 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) evaluate(i);
  } else {
    sim::ThreadPool pool(jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) pool.submit([&evaluate, i] { evaluate(i); });
    pool.wait_idle();  // rethrows the first scenario failure
  }

  SweepResult result;
  result.columns = campaign.columns;
  result.manifest_json = manifest_json;
  for (ResultSink* sink : sinks) sink->manifest(manifest_json);
  for (ResultSink* sink : sinks) sink->open(result.columns);
  for (auto& rows : per_spec) {
    for (auto& row : rows) {
      if (row.cells.size() != result.columns.size())
        throw std::logic_error("campaign '" + campaign.name + "' emitted a row with " +
                               std::to_string(row.cells.size()) + " cells for " +
                               std::to_string(result.columns.size()) + " columns");
      for (ResultSink* sink : sinks) sink->write(row);
      result.rows.push_back(std::move(row));
    }
  }
  for (ResultSink* sink : sinks) sink->close();
  return result;
}

SweepResult SweepRunner::run(const Campaign& campaign,
                             const std::vector<ResultSink*>& sinks) const {
  return run(campaign, campaign.default_grid(), sinks);
}

}  // namespace photorack::scenario
