// Reproduces §VI-C: the photonic fabric costs ~11 kW per rack — about 5%
// of the rack's compute power.  Thin wrapper over the scenario engine's
// "sec6c" campaign (same sweep as `photorack_sweep --campaign sec6c`).
#include <iostream>

#include "core/report.hpp"
#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Photonic power overhead", "Section VI-C");

  const auto& campaign = scenario::campaign_by_name("sec6c");
  scenario::TableSink table(std::cout);
  const auto res = scenario::SweepRunner().run(campaign, {&table});

  const auto& row = res.find({{"fabric", "awgr"}});
  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "photonic power (kW)", 11.0, res.num(row, "total_w") / 1000.0,
                   0.15);
  core::check_line(std::cout, "overhead vs rack (~5%)", 0.05, res.num(row, "overhead"),
                   0.15);
  return 0;
}
