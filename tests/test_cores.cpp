#include "cpusim/core.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace photorack::cpusim {
namespace {

/// Fixed-sequence trace for deterministic core tests.
class VectorTrace final : public TraceSource {
 public:
  explicit VectorTrace(std::vector<Instr> instrs) : instrs_(std::move(instrs)) {}

  std::size_t next_batch(std::span<Instr> out) override {
    std::size_t n = 0;
    while (n < out.size() && pos_ < instrs_.size()) out[n++] = instrs_[pos_++];
    return n;
  }
  void reset() override { pos_ = 0; }

 private:
  std::vector<Instr> instrs_;
  std::size_t pos_ = 0;
};

Instr alu() { return {OpKind::kAlu, 0, false}; }
Instr load(std::uint64_t addr, bool dep = false) { return {OpKind::kLoad, addr, dep}; }

struct Rig {
  CacheHierarchy hierarchy;
  DramModel dram;

  explicit Rig(double extra_ns = 0.0) : dram(DramConfig{16, 8192, 22.0, 52.0, extra_ns}) {}

  CoreStats run(CoreConfig cfg, std::vector<Instr> instrs) {
    Core core(cfg, hierarchy, dram);
    VectorTrace trace(std::move(instrs));
    core.run(trace, UINT64_MAX);
    return core.stats();
  }
};

TEST(InOrderCore, AluOnlyIsOneIpc) {
  Rig rig;
  const auto stats = rig.run({}, std::vector<Instr>(1000, alu()));
  EXPECT_DOUBLE_EQ(stats.cycles, 1000.0);
  EXPECT_DOUBLE_EQ(stats.ipc(), 1.0);
}

TEST(InOrderCore, LlcMissPaysFullDramLatency) {
  Rig rig;
  // One load, cold caches: issue(1) + LLC latency + row-miss DRAM.
  const auto stats = rig.run({}, {load(0x10000)});
  const double dram_cycles = 52.0 * 2.0;  // 2 GHz
  EXPECT_DOUBLE_EQ(stats.cycles, 1.0 + 40.0 + dram_cycles);
  EXPECT_EQ(stats.llc_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.llc_miss_stall_cycles, dram_cycles);
}

TEST(InOrderCore, L1HitCostsNothingExtra) {
  Rig rig;
  const auto warm = rig.run({}, {load(0x40), load(0x40)});
  // First: 1 + 40 + 104; second: 1 (L1 hit).
  EXPECT_DOUBLE_EQ(warm.cycles, (1.0 + 40.0 + 104.0) + 1.0);
}

TEST(InOrderCore, ExtraLatencyShowsUpPerMiss) {
  Rig base(0.0), photonic(35.0);
  std::vector<Instr> instrs;
  for (int i = 0; i < 100; ++i) instrs.push_back(load(static_cast<std::uint64_t>(i) * (1 << 20)));
  const auto b = base.run({}, instrs);
  const auto p = photonic.run({}, instrs);
  EXPECT_NEAR(p.cycles - b.cycles, 100 * 35.0 * 2.0, 1e-6);
}

TEST(OooCore, WidthFourIssue) {
  Rig rig;
  CoreConfig cfg;
  cfg.kind = CoreKind::kOutOfOrder;
  const auto stats = rig.run(cfg, std::vector<Instr>(1000, alu()));
  EXPECT_DOUBLE_EQ(stats.cycles, 250.0);
}

TEST(OooCore, IndependentMissesOverlap) {
  // Misses to distinct lines in one ROB window share the latency.
  Rig rig;
  CoreConfig cfg;
  cfg.kind = CoreKind::kOutOfOrder;
  std::vector<Instr> instrs;
  for (int i = 0; i < 8; ++i) {
    instrs.push_back(load(static_cast<std::uint64_t>(i) * (1 << 20)));
    for (int k = 0; k < 3; ++k) instrs.push_back(alu());
  }
  const auto stats = rig.run(cfg, instrs);
  EXPECT_EQ(stats.llc_misses, 8u);
  EXPECT_GT(stats.mean_mlp(), 2.0);
  // Far cheaper than eight serialized misses.
  EXPECT_LT(stats.llc_miss_stall_cycles, 8 * 104.0 * 0.7);
}

TEST(OooCore, DependentMissesSerialize) {
  Rig rig;
  CoreConfig cfg;
  cfg.kind = CoreKind::kOutOfOrder;
  std::vector<Instr> instrs;
  for (int i = 0; i < 8; ++i)
    instrs.push_back(load(static_cast<std::uint64_t>(i) * (1 << 20), /*dep=*/true));
  const auto stats = rig.run(cfg, instrs);
  EXPECT_DOUBLE_EQ(stats.mean_mlp(), 1.0);
  EXPECT_NEAR(stats.llc_miss_stall_cycles, 8 * 104.0, 1e-9);
}

TEST(OooCore, MshrsBoundOverlap) {
  Rig rig;
  CoreConfig cfg;
  cfg.kind = CoreKind::kOutOfOrder;
  cfg.mshrs = 2;
  std::vector<Instr> instrs;
  for (int i = 0; i < 32; ++i) instrs.push_back(load(static_cast<std::uint64_t>(i) * (1 << 20)));
  const auto stats = rig.run(cfg, instrs);
  EXPECT_LE(stats.mean_mlp(), 2.0 + 1e-9);
}

TEST(OooCore, HitExposureFraction) {
  Rig rig;
  CoreConfig cfg;
  cfg.kind = CoreKind::kOutOfOrder;
  // Load twice: second access is an L1 hit with no extra charge.
  const auto stats = rig.run(cfg, {load(0x40), load(0x40)});
  EXPECT_LT(stats.cycles, 1.0 + 40.0 + 104.0);  // cheaper than in-order path
}

TEST(Cores, SameTraceSameMissCount) {
  // Both cores see identical cache behaviour; only timing differs.
  std::vector<Instr> instrs;
  for (int i = 0; i < 64; ++i) {
    instrs.push_back(load(static_cast<std::uint64_t>(i) * 4096));
    instrs.push_back(alu());
  }
  Rig a, b;
  CoreConfig io;
  CoreConfig ooo;
  ooo.kind = CoreKind::kOutOfOrder;
  const auto sa = a.run(io, instrs);
  const auto sb = b.run(ooo, instrs);
  EXPECT_EQ(sa.llc_misses, sb.llc_misses);
  EXPECT_GT(sa.cycles, sb.cycles);  // OOO is faster at equal work
}

}  // namespace
}  // namespace photorack::cpusim
