#include "cluster/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::cluster {

InterRackFabric::InterRackFabric(int racks, double gbps_per_link, double hop_ns,
                                 double pj_per_bit)
    : racks_(racks),
      gbps_(gbps_per_link),
      hop_ps_(std::max<sim::TimePs>(
          1, static_cast<sim::TimePs>(hop_ns *
                                      static_cast<double>(sim::kPsPerNs)))),
      pj_per_bit_(pj_per_bit) {
  if (racks < 1) throw std::invalid_argument("InterRackFabric: need >= 1 rack");
  if (gbps_per_link <= 0.0)
    throw std::invalid_argument("InterRackFabric: link rate must be positive");
  if (hop_ns < 0.0)
    throw std::invalid_argument("InterRackFabric: hop latency must be >= 0");
  if (pj_per_bit < 0.0)
    throw std::invalid_argument("InterRackFabric: pJ/bit must be >= 0");
  alloc_.assign(static_cast<std::size_t>(racks_) * racks_, 0.0);
}

int InterRackFabric::link(int src, int dst) const {
  if (src == dst || src < 0 || dst < 0 || src >= racks_ || dst >= racks_)
    throw std::invalid_argument("InterRackFabric::link: bad rack pair");
  return src * racks_ + dst;
}

void InterRackFabric::check_link(int link_id) const {
  if (link_id < 0 || static_cast<std::size_t>(link_id) >= alloc_.size())
    throw std::invalid_argument("InterRackFabric: bad link id");
}

double InterRackFabric::reserve(int link_id, double gbps) {
  check_link(link_id);
  if (gbps < 0.0)
    throw std::invalid_argument("InterRackFabric::reserve: negative demand");
  const double grant = std::min(gbps, std::max(0.0, gbps_ - alloc_[link_id]));
  alloc_[static_cast<std::size_t>(link_id)] += grant;
  return grant;
}

void InterRackFabric::release(int link_id, double gbps) {
  check_link(link_id);
  auto& used = alloc_[static_cast<std::size_t>(link_id)];
  if (gbps > used + 1e-9)
    throw std::logic_error("InterRackFabric::release: more than allocated");
  used = std::max(0.0, used - gbps);
}

double InterRackFabric::allocated(int link_id) const {
  check_link(link_id);
  return alloc_[static_cast<std::size_t>(link_id)];
}

double InterRackFabric::utilization() const {
  if (racks_ < 2) return 0.0;
  double used = 0.0;
  for (const double a : alloc_) used += a;
  // Diagonal entries are never allocated; capacity counts directed pairs.
  const double links = static_cast<double>(racks_) * (racks_ - 1);
  return used / (links * gbps_);
}

double InterRackFabric::power_w(bool lit) const {
  if (!lit) return 0.0;
  // W = (Gb/s × 1e9 b/s) × (pJ/bit × 1e-12 J/b) = Gb/s × pJ/bit × 1e-3.
  return static_cast<double>(racks_) * gbps_ * pj_per_bit_ * 1e-3;
}

}  // namespace photorack::cluster
