// Closed-loop rack co-simulation: the pinned contracts from ISSUE 4 —
// contention can only hurt acceptance, load can only degrade it, and the
// scenario campaigns serialize bit-identically for any --jobs level — plus
// the stepwise-API and conservation invariants of the engine itself.
#include "cosim/rack_cosim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "scenario/campaigns.hpp"
#include "scenario/result_sink.hpp"
#include "scenario/sweep_runner.hpp"

namespace photorack::cosim {
namespace {

CosimConfig quick(double arrivals_per_ms = 4.0, bool feedback = true) {
  CosimConfig cfg;
  cfg.arrivals_per_ms = arrivals_per_ms;
  cfg.sim_time = 150 * sim::kPsPerMs;
  cfg.mean_duration = 20 * sim::kPsPerMs;
  cfg.contention_feedback = feedback;
  return cfg;
}

CosimReport run_quick(disagg::AllocationPolicy policy, const CosimConfig& cfg) {
  return run_rack_cosim({}, policy, workloads::UsageModel::cori(), cfg);
}

void expect_reports_identical(const CosimReport& a, const CosimReport& b) {
  EXPECT_EQ(a.jobs.offered, b.jobs.offered);
  EXPECT_EQ(a.jobs.accepted, b.jobs.accepted);
  EXPECT_EQ(a.jobs.mean_cpu_utilization, b.jobs.mean_cpu_utilization);
  EXPECT_EQ(a.jobs.mean_memory_utilization, b.jobs.mean_memory_utilization);
  EXPECT_EQ(a.flows.flows, b.flows.flows);
  EXPECT_EQ(a.flows.satisfied_fraction, b.flows.satisfied_fraction);
  EXPECT_EQ(a.flows.peak_utilization, b.flows.peak_utilization);
  EXPECT_EQ(a.mean_speed_fraction, b.mean_speed_fraction);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completed_at, b.completed_at);
}

TEST(Cosim, OffersPlacesAndRoutesJobs) {
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, quick());
  EXPECT_GT(report.jobs.offered, 100u);
  EXPECT_GT(report.jobs.accepted, 0u);
  EXPECT_LE(report.jobs.accepted, report.jobs.offered);
  EXPECT_GT(report.flows.flows, report.jobs.accepted);  // >= 1 flow per job
  EXPECT_GT(report.flows.peak_utilization, 0.0);
  EXPECT_GT(report.energy_joules, 0.0);
}

TEST(Cosim, DeterministicForSeed) {
  const auto a = run_quick(disagg::AllocationPolicy::kDisaggregated, quick());
  const auto b = run_quick(disagg::AllocationPolicy::kDisaggregated, quick());
  expect_reports_identical(a, b);
}

TEST(Cosim, SeedPlusOneProducesDifferentTrajectory) {
  auto cfg = quick();
  const auto a = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  cfg.seed += 1;
  const auto b = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  EXPECT_NE(a.jobs.offered, b.jobs.offered);
  EXPECT_NE(a.energy_joules, b.energy_joules);
}

// The ISSUE 4 acceptance pin: at equal load the closed loop can only do
// worse — stretched jobs hold CPUs, memory and wavelengths longer, so a
// later arrival sees a fuller rack.  The offered stream is identical in
// both modes (per-job child RNG streams), making this a controlled pair.
TEST(Cosim, ClosedLoopAcceptanceAtMostOpenLoop) {
  for (const double rate : {4.0, 8.0, 16.0}) {
    const auto closed = run_quick(disagg::AllocationPolicy::kDisaggregated,
                                  quick(rate, /*feedback=*/true));
    const auto open = run_quick(disagg::AllocationPolicy::kDisaggregated,
                                quick(rate, /*feedback=*/false));
    ASSERT_EQ(closed.jobs.offered, open.jobs.offered) << "rate " << rate;
    EXPECT_LE(closed.jobs.accepted, open.jobs.accepted) << "rate " << rate;
    EXPECT_LE(closed.jobs.acceptance(), open.jobs.acceptance() + 1e-12)
        << "rate " << rate;
  }
}

// Second pin: raising arrivals_per_ms can only degrade acceptance.  The
// arrival process divides one unit-exponential gap stream by the rate, so a
// higher rate offers a superset pattern of the same compressed jobs.
TEST(Cosim, AcceptanceDegradesMonotonicallyWithLoad) {
  double previous = 2.0;  // above any acceptance ratio
  for (const double rate : {2.0, 8.0, 32.0}) {
    const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, quick(rate));
    EXPECT_LE(report.jobs.acceptance(), previous + 1e-12) << "rate " << rate;
    previous = report.jobs.acceptance();
  }
  EXPECT_LT(previous, 0.5);  // the top of the sweep is genuinely saturated
}

TEST(Cosim, OpenLoopNeverStretches) {
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated,
                                quick(8.0, /*feedback=*/false));
  EXPECT_DOUBLE_EQ(report.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);
  // Contention is still measured (the fabric sees the same flows)...
  EXPECT_LT(report.mean_speed_fraction, 1.0);
  EXPECT_GT(report.mean_speed_fraction, 0.0);
}

TEST(Cosim, ClosedLoopStretchBoundedByFloor) {
  auto cfg = quick(16.0);
  cfg.min_speed_fraction = 0.25;
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  EXPECT_GE(report.mean_stretch, 1.0);
  EXPECT_LE(report.max_stretch, 1.0 / cfg.min_speed_fraction + 1e-12);
}

TEST(Cosim, EverythingDrainsAfterFinish) {
  RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                workloads::UsageModel::cori(), quick(8.0));
  sim.finish();
  EXPECT_EQ(sim.live_jobs(), 0u);
  EXPECT_EQ(sim.allocator().live_allocations(), 0u);
  EXPECT_EQ(sim.allocator().pools().cpus_used, 0);
  EXPECT_NEAR(sim.allocator().pools().memory_gb_used, 0.0, 1e-9);
  EXPECT_NEAR(sim.fabric_utilization(), 0.0, 1e-12);
}

TEST(Cosim, StepwiseAdvanceMatchesRunToCompletion) {
  const auto cfg = quick(8.0);
  RackCosim whole({}, disagg::AllocationPolicy::kDisaggregated,
                  workloads::UsageModel::cori(), cfg);
  whole.finish();

  RackCosim chunked({}, disagg::AllocationPolicy::kDisaggregated,
                    workloads::UsageModel::cori(), cfg);
  for (sim::TimePs t = 17 * sim::kPsPerMs; t < cfg.sim_time; t += 23 * sim::kPsPerMs)
    chunked.advance_to(t);
  chunked.finish();

  expect_reports_identical(whole.report(), chunked.report());
}

TEST(Cosim, MidRunReportIsUsable) {
  RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                workloads::UsageModel::cori(), quick(8.0));
  sim.advance_to(50 * sim::kPsPerMs);
  const auto mid = sim.report();
  EXPECT_GT(mid.jobs.offered, 0u);
  EXPECT_LE(sim.now(), 50 * sim::kPsPerMs);
  sim.finish();
  EXPECT_GE(sim.report().jobs.offered, mid.jobs.offered);
}

TEST(Cosim, NonPositiveDurationsAreRejected) {
  auto cfg = quick();
  cfg.mean_duration = 0;
  EXPECT_THROW(run_quick(disagg::AllocationPolicy::kDisaggregated, cfg),
               std::invalid_argument);
  cfg = quick();
  cfg.sim_time = -1;
  EXPECT_THROW(run_quick(disagg::AllocationPolicy::kDisaggregated, cfg),
               std::invalid_argument);
}

TEST(Cosim, EmptyStreamReportsSentinelNotNan) {
  auto cfg = quick();
  cfg.sim_time = 0;  // no arrival fits the horizon
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  EXPECT_EQ(report.jobs.offered, 0u);
  EXPECT_DOUBLE_EQ(report.jobs.acceptance(), disagg::kEmptyStreamAcceptance);
  EXPECT_FALSE(std::isnan(report.jobs.acceptance()));
  EXPECT_DOUBLE_EQ(report.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(report.energy_joules, 0.0);
}

TEST(Cosim, PowerTraceCoversComputePlusPhotonics) {
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, quick(8.0));
  const phot::BaselineRackPower base;  // defaults match RackConfig{}
  EXPECT_GT(report.photonic_power_w, 0.0);
  // Mean power sits between the idle floor and the all-on ceiling.
  EXPECT_GT(report.mean_power_w, 0.3 * base.total().value);
  EXPECT_LT(report.mean_power_w, base.total().value + report.photonic_power_w);
  EXPECT_GE(report.peak_power_w, report.mean_power_w);
  EXPECT_DOUBLE_EQ(report.energy_joules,
                   report.mean_power_w * sim::to_s(report.completed_at));
}

TEST(Cosim, AllRejectedStreamStillAccruesIdleAndPhotonicEnergy) {
  // A zero-node rack rejects every job; the energy trace must still cover
  // the whole offered stream at the idle + lasers-on photonic level, not
  // stop at the last placement (there is none).
  rack::RackConfig empty_rack;
  empty_rack.nodes = 0;
  auto cfg = quick();
  const auto report = run_rack_cosim(empty_rack, disagg::AllocationPolicy::kDisaggregated,
                                     workloads::UsageModel::cori(), cfg);
  EXPECT_GT(report.jobs.offered, 0u);
  EXPECT_EQ(report.jobs.accepted, 0u);
  EXPECT_GT(report.energy_joules, 0.0);
  // No compute (zero nodes): the trace is exactly the photonic constant.
  EXPECT_NEAR(report.mean_power_w, report.photonic_power_w, 1e-9);
  EXPECT_NEAR(report.energy_joules,
              report.photonic_power_w * sim::to_s(report.completed_at), 1e-6);
}

TEST(Cosim, StaticPolicyMaroonsAndCloseLoopStillApplies) {
  const auto report = run_quick(disagg::AllocationPolicy::kStaticNodes, quick(8.0));
  EXPECT_GT(report.jobs.mean_marooned_memory, 0.05);
  EXPECT_GE(report.mean_stretch, 1.0);
}

// ---------------------------------------------------------------------------
// Traffic engine: arrival processes and queued admission through the cosim.
// ---------------------------------------------------------------------------

TEST(CosimTraffic, DefaultDropModeTailsAreDegenerate) {
  // Admit-or-drop: no job ever waits, so wait is identically 0 and slowdown
  // collapses to the contention stretch (>= 1).  One fct per flow.
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, quick(8.0));
  EXPECT_EQ(report.jobs.wait_ms.count, report.jobs.accepted);
  EXPECT_DOUBLE_EQ(report.jobs.wait_ms.p999, 0.0);
  EXPECT_GE(report.jobs.slowdown.p50, 1.0);
  EXPECT_EQ(report.jobs.fct_ms.count, report.flows.flows);
  EXPECT_GT(report.jobs.fct_ms.p50, 0.0);
  EXPECT_EQ(report.jobs.censored_waiting, 0u);
  EXPECT_EQ(report.jobs.censored_running, 0u);
}

TEST(CosimTraffic, TailQuantilesAreMonotone) {
  auto cfg = quick(16.0);
  cfg.admission = AdmissionPolicy::kQueue;
  const auto report = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  EXPECT_LE(report.jobs.wait_ms.p50, report.jobs.wait_ms.p99);
  EXPECT_LE(report.jobs.wait_ms.p99, report.jobs.wait_ms.p999);
  EXPECT_LE(report.jobs.slowdown.p50, report.jobs.slowdown.p99);
  EXPECT_LE(report.jobs.slowdown.p99, report.jobs.slowdown.p999);
  EXPECT_LE(report.jobs.fct_ms.p50, report.jobs.fct_ms.p99);
  EXPECT_LE(report.jobs.fct_ms.p99, report.jobs.fct_ms.p999);
}

TEST(CosimTraffic, QueueModeProducesRealWaitsUnderSaturation) {
  auto cfg = quick(16.0);  // saturating load (acceptance < 1 in drop mode)
  cfg.admission = AdmissionPolicy::kQueue;
  const auto drop = run_quick(disagg::AllocationPolicy::kDisaggregated, quick(16.0));
  const auto queued = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
  // Same seed, same per-job child streams: the OFFERED stream is identical;
  // only what happens to unplaceable jobs differs.
  EXPECT_EQ(queued.jobs.offered, drop.jobs.offered);
  EXPECT_GT(queued.jobs.wait_ms.p999, 0.0);
  EXPECT_GE(queued.jobs.slowdown.p999, 1.0);
  // After finish() the backlog must fully drain (every planned job fits the
  // empty rack eventually), so nothing stays censored.
  EXPECT_EQ(queued.jobs.censored_waiting, 0u);
  EXPECT_EQ(queued.jobs.censored_running, 0u);
}

TEST(CosimTraffic, MidRunReportCountsCensoredJobs) {
  auto cfg = quick(32.0);  // deep saturation: a backlog forms quickly
  cfg.admission = AdmissionPolicy::kQueue;
  RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                workloads::UsageModel::cori(), cfg);
  sim.advance_to(60 * sim::kPsPerMs);
  const auto mid = sim.report();
  EXPECT_EQ(mid.jobs.censored_waiting, sim.queued_jobs());
  EXPECT_EQ(mid.jobs.censored_running, sim.live_jobs());
  EXPECT_GT(mid.jobs.censored_waiting, 0u);
  // Wait telemetry covers EVERY admitted job: the placed ones plus a
  // wait-so-far lower bound for each job still in the backlog.
  EXPECT_EQ(mid.jobs.wait_ms.count,
            mid.jobs.accepted + mid.jobs.censored_waiting);
  // Accounting closes: offered = placed + still-waiting + dropped-over-cap.
  EXPECT_GE(mid.jobs.offered, mid.jobs.accepted + mid.jobs.censored_waiting);
  // report() must not mutate the live stats: a second report is identical.
  const auto again = sim.report();
  EXPECT_EQ(again.jobs.wait_ms.count, mid.jobs.wait_ms.count);
  EXPECT_EQ(again.jobs.wait_ms.p999, mid.jobs.wait_ms.p999);
  sim.finish();
  EXPECT_EQ(sim.report().jobs.censored_waiting, 0u);
}

TEST(CosimTraffic, QueueCapBoundsBacklog) {
  auto cfg = quick(32.0);
  cfg.admission = AdmissionPolicy::kQueue;
  cfg.queue_cap = 3;
  RackCosim sim({}, disagg::AllocationPolicy::kDisaggregated,
                workloads::UsageModel::cori(), cfg);
  for (sim::TimePs t = 10 * sim::kPsPerMs; t <= cfg.sim_time; t += 10 * sim::kPsPerMs) {
    sim.advance_to(t);
    ASSERT_LE(sim.queued_jobs(), 3u);
  }
  cfg.queue_cap = 0;
  EXPECT_THROW(run_quick(disagg::AllocationPolicy::kDisaggregated, cfg),
               std::invalid_argument);
}

TEST(CosimTraffic, NonPoissonProcessesRunDeterministically) {
  for (const auto kind : {traffic::ArrivalKind::kMmpp, traffic::ArrivalKind::kDiurnal}) {
    auto cfg = quick(8.0);
    cfg.arrival.kind = kind;
    const auto a = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
    const auto b = run_quick(disagg::AllocationPolicy::kDisaggregated, cfg);
    EXPECT_GT(a.jobs.offered, 50u);
    expect_reports_identical(a, b);
  }
}

TEST(CosimTraffic, InvalidArrivalShapeRejectedAtConstruction) {
  auto cfg = quick();
  cfg.arrival.kind = traffic::ArrivalKind::kMmpp;
  cfg.arrival.burst_rate_mult = 8.0;
  cfg.arrival.burst_fraction = 0.5;  // 8 * 0.5 > 1: OFF rate negative
  EXPECT_THROW(run_quick(disagg::AllocationPolicy::kDisaggregated, cfg),
               std::invalid_argument);
  cfg = quick();
  cfg.arrival.kind = traffic::ArrivalKind::kTrace;  // no trace_file
  EXPECT_THROW(run_quick(disagg::AllocationPolicy::kDisaggregated, cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Campaign determinism: the third ISSUE 4 pin — cosim campaign CSV bytes are
// identical for --jobs 1 and --jobs 4 (short horizon to keep this fast).
// ---------------------------------------------------------------------------

std::pair<std::string, std::string> serialize(const scenario::Campaign& campaign,
                                              const scenario::SweepGrid& grid,
                                              std::size_t jobs) {
  std::ostringstream csv_os, jsonl_os;
  scenario::CsvSink csv(csv_os);
  scenario::JsonlSink jsonl(jsonl_os);
  scenario::SweepRunner(scenario::SweepOptions{.jobs = jobs, .base_seed = 0})
      .run(campaign, grid, {&csv, &jsonl});
  return {csv_os.str(), jsonl_os.str()};
}

TEST(CosimCampaigns, CsvAndJsonlBitIdenticalForJobs1VsJobs4) {
  for (const char* name :
       {"cosim_acceptance", "cosim_contention", "cosim_energy", "cosim_tails"}) {
    const auto& campaign = scenario::campaign_by_name(name);
    scenario::SweepGrid grid = campaign.default_grid();
    grid.set("cosim.horizon_ms", {"40"});
    const auto [csv1, jsonl1] = serialize(campaign, grid, 1);
    const auto [csv4, jsonl4] = serialize(campaign, grid, 4);
    EXPECT_FALSE(csv1.empty()) << name;
    EXPECT_EQ(csv1, csv4) << name;
    EXPECT_EQ(jsonl1, jsonl4) << name;
  }
}

// ---------------------------------------------------------------------------
// Redesign byte identity: the cosim campaigns pinned against their
// pre-registry evaluators (hand-assembled CosimConfig from string axes).
// The redesigned evaluators resolve CosimConfig/FabricSliceConfig/RackConfig
// through the typed registry; the bytes must not move.
// ---------------------------------------------------------------------------

cosim::CosimConfig cosim_config_pre_redesign(const scenario::ScenarioSpec& spec) {
  cosim::CosimConfig cfg;
  cfg.arrivals_per_ms = spec.num("cosim.arrivals_per_ms");
  cfg.sim_time =
      static_cast<sim::TimePs>(spec.num("cosim.horizon_ms") * sim::kPsPerMs);
  if (spec.has("cosim.contention_feedback"))
    cfg.contention_feedback = spec.at("cosim.contention_feedback") == "closed";
  if (spec.base_seed != 0) cfg.seed = spec.derived_seed();
  return cfg;
}

std::vector<scenario::ResultRow> eval_cosim_acceptance_pre_redesign(
    const scenario::ScenarioSpec& spec) {
  const auto report = run_rack_cosim(
      {}, disagg::parse_allocation_policy(spec.at("policy")),
      workloads::UsageModel::cori(), cosim_config_pre_redesign(spec));
  scenario::ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               scenario::num_to_string(static_cast<double>(report.jobs.offered)),
               scenario::num_to_string(static_cast<double>(report.jobs.accepted)),
               scenario::num_to_string(report.jobs.acceptance()),
               scenario::num_to_string(report.jobs.mean_cpu_utilization),
               scenario::num_to_string(report.jobs.mean_memory_utilization),
               scenario::num_to_string(report.jobs.mean_marooned_memory),
               scenario::num_to_string(report.mean_speed_fraction)};
  return {std::move(row)};
}

std::vector<scenario::ResultRow> eval_cosim_contention_pre_redesign(
    const scenario::ScenarioSpec& spec) {
  const auto report =
      run_rack_cosim({}, disagg::AllocationPolicy::kDisaggregated,
                     workloads::UsageModel::cori(), cosim_config_pre_redesign(spec));
  scenario::ResultRow row;
  row.cells = {spec.at("cosim.contention_feedback"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               scenario::num_to_string(report.jobs.acceptance()),
               scenario::num_to_string(report.flows.satisfied_fraction),
               scenario::num_to_string(report.flows.indirect_fraction),
               scenario::num_to_string(report.flows.blocking_probability()),
               scenario::num_to_string(report.mean_speed_fraction),
               scenario::num_to_string(report.mean_stretch),
               scenario::num_to_string(report.flows.peak_utilization)};
  return {std::move(row)};
}

std::vector<scenario::ResultRow> eval_cosim_energy_pre_redesign(
    const scenario::ScenarioSpec& spec) {
  const auto report = run_rack_cosim(
      {}, disagg::parse_allocation_policy(spec.at("policy")),
      workloads::UsageModel::cori(), cosim_config_pre_redesign(spec));
  const double kj = report.energy_joules / 1e3;
  scenario::ResultRow row;
  row.cells = {spec.at("policy"),
               spec.at("cosim.arrivals_per_ms"),
               spec.at("cosim.horizon_ms"),
               scenario::num_to_string(static_cast<double>(report.jobs.accepted)),
               scenario::num_to_string(kj),
               scenario::num_to_string(report.mean_power_w / 1e3),
               scenario::num_to_string(report.peak_power_w / 1e3),
               scenario::num_to_string(report.photonic_power_w / 1e3),
               scenario::num_to_string(
                   report.jobs.accepted
                       ? kj / static_cast<double>(report.jobs.accepted)
                       : 0.0)};
  return {std::move(row)};
}

TEST(CosimCampaigns, RedesignByteIdenticalToPreRegistryEvaluators) {
  const struct {
    const char* name;
    std::vector<scenario::ResultRow> (*reference)(const scenario::ScenarioSpec&);
  } cases[] = {{"cosim_acceptance", eval_cosim_acceptance_pre_redesign},
               {"cosim_contention", eval_cosim_contention_pre_redesign},
               {"cosim_energy", eval_cosim_energy_pre_redesign}};
  for (const auto& c : cases) {
    const auto& campaign = scenario::campaign_by_name(c.name);
    scenario::SweepGrid grid = campaign.default_grid();
    grid.set("cosim.horizon_ms", {"30"});
    scenario::Campaign reference = campaign;
    reference.evaluate = c.reference;
    const auto [redesign_csv, redesign_jsonl] = serialize(campaign, grid, 2);
    const auto [reference_csv, reference_jsonl] = serialize(reference, grid, 1);
    EXPECT_FALSE(redesign_csv.empty()) << c.name;
    EXPECT_EQ(redesign_csv, reference_csv) << c.name;
    EXPECT_EQ(redesign_jsonl, reference_jsonl) << c.name;
  }
}

TEST(CosimCampaigns, NonZeroBaseSeedReseedsScenarios) {
  const auto& campaign = scenario::campaign_by_name("cosim_acceptance");
  scenario::SweepGrid grid = campaign.default_grid();
  grid.set("cosim.horizon_ms", {"40"});
  grid.set("policy", {"disagg"});
  grid.set("cosim.arrivals_per_ms", {"4"});
  std::ostringstream a_os, b_os;
  scenario::CsvSink a_sink(a_os), b_sink(b_os);
  scenario::SweepRunner(scenario::SweepOptions{.jobs = 1, .base_seed = 1})
      .run(campaign, grid, {&a_sink});
  scenario::SweepRunner(scenario::SweepOptions{.jobs = 1, .base_seed = 2})
      .run(campaign, grid, {&b_sink});
  EXPECT_NE(a_os.str(), b_os.str());
}

TEST(CosimCampaigns, ContentionCampaignPinsClosedVsOpen) {
  // The campaign view of the acceptance pin: for each arrival rate the
  // closed-loop row's acceptance is at most the open-loop row's.
  const auto& campaign = scenario::campaign_by_name("cosim_contention");
  scenario::SweepGrid grid = campaign.default_grid();
  grid.set("cosim.horizon_ms", {"60"});
  grid.set("cosim.arrivals_per_ms", {"4", "16"});
  const auto result = scenario::SweepRunner(scenario::SweepOptions{.jobs = 2})
                          .run(campaign, grid);
  for (const char* rate : {"4", "16"}) {
    const auto& open = result.find({{"feedback", "open"}, {"arrivals_per_ms", rate}});
    const auto& closed =
        result.find({{"feedback", "closed"}, {"arrivals_per_ms", rate}});
    EXPECT_LE(result.num(closed, "acceptance"), result.num(open, "acceptance") + 1e-12)
        << "rate " << rate;
    EXPECT_DOUBLE_EQ(result.num(open, "mean_stretch"), 1.0);
    EXPECT_GE(result.num(closed, "mean_stretch"), 1.0);
  }
}

}  // namespace
}  // namespace photorack::cosim
