#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace photorack::net {

/// A traffic pattern for the flow-level simulator: called to produce the
/// next flow (src, dst, demand Gb/s, holding time).  Patterns are supplied
/// by benches (e.g. Cori-like CPU<->DDR4 demands from workloads::usage).
struct FlowSpec {
  int src = 0;
  int dst = 0;
  double gbps = 0.0;
  sim::TimePs duration = 0;
};

using FlowGenerator = std::function<FlowSpec(sim::Rng&)>;

struct FlowSimConfig {
  double arrivals_per_us = 2.0;       // Poisson arrival rate
  sim::TimePs sim_time = 200 * sim::kPsPerUs;
  sim::TimePs piggyback_interval = 1 * sim::kPsPerUs;
  std::uint64_t seed = 42;
};

struct FlowSimReport {
  std::uint64_t flows = 0;
  std::uint64_t fully_satisfied = 0;
  double offered_gbps_mean = 0.0;
  double satisfied_fraction = 0.0;    // sum satisfied / sum requested
  double direct_fraction = 0.0;       // of satisfied bandwidth
  double indirect_fraction = 0.0;
  std::uint64_t stale_mispicks = 0;
  std::uint64_t second_hops = 0;
  double mean_intermediates = 0.0;
  double peak_utilization = 0.0;

  [[nodiscard]] double blocking_probability() const {
    return flows ? 1.0 - static_cast<double>(fully_satisfied) / flows : 0.0;
  }
};

/// Stateful flow session over the AWGR fabric: open() routes a demand
/// through IndirectRouter (recording satisfaction/indirection statistics),
/// close() releases every reserved segment.  The engine owns the piggyback
/// view and router, so any event-driven layer — FlowSimulator's Poisson
/// arrivals or the rack co-simulation's job-emitted traffic — can share the
/// same contention model without re-implementing the bookkeeping.
class FlowEngine {
 public:
  FlowEngine(WavelengthFabric& fabric, sim::TimePs piggyback_interval,
             std::uint64_t router_seed);

  // The router holds a pointer to this engine's view member; a copied or
  // moved engine would route against the original's stale snapshot.
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  /// Attach observability handles (trace spans per flow, refresh instants,
  /// profiler scopes on the routing hot paths).  Purely passive: routing
  /// decisions, statistics and RNG draws are identical with or without it.
  void attach_obs(const obs::Obs& obs);

  /// Refresh the stale piggyback view if `now` passed the next update point.
  void refresh_view(sim::TimePs now);

  /// Route a flow's demand; statistics accrue immediately.  Returns a handle
  /// for result() / close().  `now` is the caller's sim time, used only for
  /// trace span endpoints (callers without a clock may leave it 0).
  std::uint64_t open(const FlowSpec& spec, sim::TimePs now = 0);
  /// Routing outcome of a live flow (throws std::out_of_range for dead ids).
  [[nodiscard]] const RouteResult& result(std::uint64_t flow_id) const;
  /// Release every segment the flow reserved; the id becomes invalid.
  void close(std::uint64_t flow_id, sim::TimePs now = 0);

  [[nodiscard]] std::uint64_t live_flows() const { return live_.size(); }
  [[nodiscard]] double fabric_utilization() const { return fabric_->utilization(); }
  /// Snapshot of the cumulative statistics over every open() so far.
  [[nodiscard]] FlowSimReport report() const;

 private:
  /// Trace-only record of a live flow's opening, kept solely while a
  /// TraceRecorder is attached (the uninstrumented engine carries no extra
  /// per-flow state).
  struct OpenedAt {
    sim::TimePs at = 0;
    double gbps = 0.0;
    double satisfied = 0.0;
    int src = 0;
    int dst = 0;
  };

  WavelengthFabric* fabric_;
  PiggybackView view_;
  IndirectRouter router_;
  std::unordered_map<std::uint64_t, RouteResult> live_;
  std::uint64_t next_id_ = 1;

  obs::Obs obs_{};
  obs::Profiler::ScopeId sc_open_ = 0, sc_refresh_ = 0;
  std::unordered_map<std::uint64_t, OpenedAt> opened_;  // trace mode only

  sim::RunningStats offered_, intermediates_;
  double requested_total_ = 0.0, satisfied_total_ = 0.0;
  double direct_total_ = 0.0, indirect_total_ = 0.0;
  double peak_util_ = 0.0;
  std::uint64_t flows_ = 0, fully_satisfied_ = 0;
};

/// Event-driven flow-level simulation over the AWGR fabric: Poisson flow
/// arrivals, exponential-ish holding times from the generator, allocation
/// through IndirectRouter, release on departure, periodic piggyback
/// refresh.  Used by the §VI-A bandwidth bench and the routing tests.
///
/// The simulator is stepwise: advance_to(t) processes arrivals and
/// departures up to t, finish() drains the remaining departures (arrivals
/// stop at cfg.sim_time), and report() is valid at any point in between.
/// run() is the run-to-completion convenience the benches use.
class FlowSimulator {
 public:
  FlowSimulator(WavelengthFabric& fabric, FlowGenerator generator, FlowSimConfig cfg = {});

  // Queued event handlers capture `this`; a copied or moved instance would
  // leave them pointing at the original object.
  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  /// Process every event strictly before time `t`.
  void advance_to(sim::TimePs t);
  /// Drain all remaining events (departures past the arrival horizon).
  void finish();

  [[nodiscard]] sim::TimePs now() const { return queue_.now(); }
  [[nodiscard]] FlowSimReport report() const { return engine_.report(); }
  [[nodiscard]] const FlowEngine& engine() const { return engine_; }

  /// advance_to(cfg.sim_time) + finish() + report().
  FlowSimReport run();

 private:
  FlowGenerator generator_;
  FlowSimConfig cfg_;
  sim::EventQueue queue_;
  FlowEngine engine_;
  sim::Rng arrival_rng_;
  sim::Rng flow_rng_;

  void schedule_next_arrival();
};

}  // namespace photorack::net
