#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace photorack::sim {

std::uint64_t EventQueue::schedule_at(TimePs at, Handler fn) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  const std::uint64_t id = next_seq_++;
  heap_.push(Entry{at, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

void EventQueue::forget_cancelled(std::uint64_t seq) {
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
  if (it != cancelled_.end() && *it == seq) cancelled_.erase(it);
}

bool EventQueue::cancel(std::uint64_t event_id) {
  if (event_id >= next_seq_) return false;
  if (is_cancelled(event_id)) return true;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), event_id);
  cancelled_.insert(it, event_id);
  if (live_count_ > 0) --live_count_;
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (is_cancelled(e.seq)) {
      forget_cancelled(e.seq);
      continue;
    }
    now_ = e.time;
    --live_count_;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(TimePs until) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    if (is_cancelled(heap_.top().seq)) {
      forget_cancelled(heap_.top().seq);
      heap_.pop();
      continue;
    }
    if (heap_.top().time >= until) break;
    step();
    ++n;
  }
  return n;
}

}  // namespace photorack::sim
