#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace photorack::sim {

/// Numerically stable streaming moments (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson product-moment correlation coefficient of two equally long series.
/// This is the statistic the paper uses for Figs 7 and 10.  Returns 0 for
/// degenerate inputs (fewer than two points or zero variance).
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Linear interpolation percentile; q in [0, 100].  Copies and sorts.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Arithmetic and geometric means over a span (0 if empty).
[[nodiscard]] double mean_of(std::span<const double> v);
[[nodiscard]] double geomean_of(std::span<const double> v);
[[nodiscard]] double max_of(std::span<const double> v);

/// Fixed-width histogram on [lo, hi); out-of-range values clamp to the edge
/// bins.  Used for flow-demand and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Fraction of mass at or below x (piecewise-constant CDF).
  [[nodiscard]] double cdf(double x) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace photorack::sim
