#include "cpusim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cpusim/runner.hpp"
#include "workloads/generators.hpp"

namespace photorack::cpusim {
namespace {

workloads::TraceConfig sample_config() {
  workloads::TraceConfig cfg;
  cfg.working_set = 8 << 20;
  cfg.mem_fraction = 0.35;
  workloads::PatternSpec chase;
  chase.kind = workloads::CpuPattern::kPointerChase;
  chase.weight = 0.3;
  workloads::PatternSpec stream;
  stream.kind = workloads::CpuPattern::kStreaming;
  stream.weight = 0.7;
  cfg.patterns = {chase, stream};
  cfg.seed = 2024;
  return cfg;
}

TEST(TraceIo, RoundTripPreservesEveryInstruction) {
  workloads::SyntheticTrace source(sample_config());
  std::stringstream buffer;
  const auto written = write_trace(buffer, source, 20'000);
  ASSERT_EQ(written, 20'000u);

  auto recorded = RecordedTrace::read(buffer);
  ASSERT_EQ(recorded.size(), 20'000u);

  source.reset();
  std::vector<Instr> original(20'000);
  source.next_batch(original);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(recorded.instructions()[i].kind, original[i].kind) << i;
    EXPECT_EQ(recorded.instructions()[i].addr, original[i].addr) << i;
    EXPECT_EQ(recorded.instructions()[i].dependent, original[i].dependent) << i;
  }
}

TEST(TraceIo, FootprintSurvivesRoundTrip) {
  workloads::SyntheticTrace source(sample_config());
  std::stringstream buffer;
  write_trace(buffer, source, 1000);
  const auto recorded = RecordedTrace::read(buffer);
  EXPECT_EQ(recorded.footprint_bytes(), source.footprint_bytes());
}

TEST(TraceIo, RecordedReplayIsIdempotent) {
  workloads::SyntheticTrace source(sample_config());
  std::stringstream buffer;
  write_trace(buffer, source, 5000);
  auto recorded = RecordedTrace::read(buffer);

  std::vector<Instr> first(5000), second(5000);
  recorded.next_batch(first);
  recorded.reset();
  recorded.next_batch(second);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].addr, second[i].addr);
    EXPECT_EQ(first[i].kind, second[i].kind);
  }
}

TEST(TraceIo, RecordedTraceDrainsToZero) {
  auto recorded = RecordedTrace({{OpKind::kAlu, 0, false}, {OpKind::kLoad, 64, false}});
  std::vector<Instr> out(10);
  EXPECT_EQ(recorded.next_batch(out), 2u);
  EXPECT_EQ(recorded.next_batch(out), 0u);
}

TEST(TraceIo, SimulationOnRecordedMatchesLive) {
  // The whole point of trace capture: replaying must time identically.
  workloads::SyntheticTrace live(sample_config());
  std::stringstream buffer;
  write_trace(buffer, live, 120'000);
  auto recorded = RecordedTrace::read(buffer);

  SimConfig cfg;
  cfg.warmup_instructions = 20'000;
  cfg.measured_instructions = 100'000;
  live.reset();
  const auto a = run_simulation(live, cfg);
  const auto b = run_simulation(recorded, cfg);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.llc_miss_rate, b.llc_miss_rate);
}

TEST(TraceIo, CompressionIsCompact) {
  workloads::SyntheticTrace source(sample_config());
  std::stringstream buffer;
  write_trace(buffer, source, 100'000);
  // Varint deltas keep streaming-heavy traces to a few bytes/instruction.
  EXPECT_LT(buffer.str().size(), 100'000u * 5);
}

TEST(TraceIo, BadMagicThrows) {
  std::stringstream buffer;
  buffer.write("NOPE", 4);
  EXPECT_THROW(RecordedTrace::read(buffer), std::runtime_error);
}

TEST(TraceIo, TruncationThrows) {
  workloads::SyntheticTrace source(sample_config());
  std::stringstream buffer;
  write_trace(buffer, source, 1000);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(RecordedTrace::read(cut), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(RecordedTrace::read_file("/nonexistent/trace.bin"), std::runtime_error);
}

}  // namespace
}  // namespace photorack::cpusim
