#include "obs/profile.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace photorack::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

}  // namespace

Profiler::ScopeId Profiler::scope(const std::string& name) {
  for (ScopeId i = 0; i < entries_.size(); ++i)
    if (entries_[i].name == name) return i;
  entries_.push_back(Entry{name, 0, 0});
  return entries_.size() - 1;
}

void Profiler::record(ScopeId id, std::uint64_t ns) {
  Entry& e = entries_.at(id);
  ++e.count;
  e.total_ns += ns;
}

void Profiler::write_bench_json(std::ostream& os) const {
  os << "{\"benchmarks\":[";
  bool first = true;
  for (const Entry& e : entries_) {
    if (e.count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << e.name << "\",\"items_per_sec\":" << fmt_double(e.items_per_sec())
       << ",\"ns_per_op\":" << fmt_double(e.ns_per_op()) << "}";
  }
  os << "]}\n";
}

void Profiler::write_bench_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("obs: cannot open profile file '" + path + "' for writing");
  write_bench_json(os);
  os.flush();
  if (!os) throw std::runtime_error("obs: error writing profile file '" + path + "'");
}

}  // namespace photorack::obs
