#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace photorack::sim {

/// Numerically stable streaming moments (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson product-moment correlation coefficient of two equally long series.
/// This is the statistic the paper uses for Figs 7 and 10.  Returns 0 for
/// degenerate inputs (fewer than two points or zero variance).
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Linear interpolation percentile; q in [0, 100].  Copies and sorts.
/// Throws std::invalid_argument on empty input: a percentile of nothing has
/// no value, and the old 0.0 placeholder let consumers (e.g. iso-perf
/// provisioning at p99) silently size against a phantom zero demand.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Arithmetic mean over a span (0 if empty).
[[nodiscard]] double mean_of(std::span<const double> v);
/// Geometric mean.  Defined only for strictly positive inputs: throws
/// std::invalid_argument on empty input and on any element <= 0 (the old
/// behavior clamped those to 1e-300, silently dragging the result toward
/// zero instead of surfacing the bad sample).
[[nodiscard]] double geomean_of(std::span<const double> v);
[[nodiscard]] double max_of(std::span<const double> v);

/// Streaming quantile sketch with a bounded RELATIVE error, for tail
/// telemetry (p50/p99/p999 of job wait, slowdown, flow-completion time) at
/// millions of samples in O(1) memory.
///
/// DDSketch-style log-bucketed rank sketch: a non-negative value x maps to
/// bucket ceil(log(x) / log(gamma)) with gamma = (1+a)/(1-a), so every
/// bucket's representative value (the geometric midpoint) is within
/// relative error `a` of anything stored in it.  Values in [0, 1e-12) land
/// in a dedicated zero bucket and report as exactly 0.  Bucket counts are
/// integers, so merge() is exact, associative and commutative — merging
/// per-shard sketches in any order yields bit-identical quantiles, the
/// property campaign sweeps need for --jobs-independent output.
///
/// Memory is bounded by the value range, not the sample count: at the
/// default a = 0.01, values spanning 1e-12..1e12 fit in < 2800 buckets.
///
/// Contract: add() accepts finite values >= 0 and throws
/// std::invalid_argument otherwise; quantile() throws std::logic_error on
/// an empty sketch (use quantile_or() where empty is an expected state);
/// merge() requires both sketches to share the same relative error.
class QuantileSketch {
 public:
  explicit QuantileSketch(double relative_error = 0.01);

  void add(double x);
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double relative_error() const { return alpha_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Quantile for q in [0, 100] (same convention as sim::percentile).  The
  /// result is clamped into [min(), max()] and is within relative_error()
  /// of the exact rank statistic.  Throws std::logic_error when empty.
  [[nodiscard]] double quantile(double q) const;
  /// quantile(q), or `fallback` when the sketch is empty.
  [[nodiscard]] double quantile_or(double q, double fallback) const;

 private:
  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t n_ = 0;
  std::uint64_t zero_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<std::int32_t, std::uint64_t> buckets_;  // ordered: rank walks keys
};

/// Fixed-width histogram on [lo, hi); out-of-range values clamp to the edge
/// bins.  Used for flow-demand and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Fraction of mass at or below x (piecewise-constant CDF).
  [[nodiscard]] double cdf(double x) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace photorack::sim
