// Reproduces §VI-C: the photonic fabric costs ~11 kW per rack — about 5%
// of the rack's compute power.
#include <iostream>

#include "core/rack_system.hpp"
#include "core/report.hpp"
#include "phot/power.hpp"
#include "sim/table.hpp"

int main() {
  using namespace photorack;

  core::print_banner(std::cout, "Photonic power overhead", "Section VI-C");

  core::RackSystem system(rack::FabricKind::kParallelAwgrs);
  const auto power = system.power_overhead();
  const phot::BaselineRackPower baseline;

  sim::Table table({"Component", "Power"});
  table.add_row({"transceivers (350 MCMs x 2048 lambdas x 25 Gb/s)",
                 sim::fmt_fixed(power.transceivers.value / 1000.0, 2) + " kW"});
  table.add_row({"all optical switches",
                 sim::fmt_fixed(power.switches.value / 1000.0, 2) + " kW"});
  table.add_row({"total photonics", sim::fmt_fixed(power.total.value / 1000.0, 2) + " kW"});
  table.add_row({"baseline rack (compute+memory)",
                 sim::fmt_fixed(baseline.total().value / 1000.0, 1) + " kW"});
  table.add_row({"overhead", sim::fmt_pct(power.overhead_vs_baseline, 2)});
  table.print(std::cout);

  std::cout << "\npaper-vs-measured:\n";
  core::check_line(std::cout, "photonic power (kW)", 11.0, power.total.value / 1000.0,
                   0.15);
  core::check_line(std::cout, "overhead vs rack (~5%)", 0.05, power.overhead_vs_baseline,
                   0.15);
  return 0;
}
