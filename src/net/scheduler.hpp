#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rack/rack_builder.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace photorack::net {

/// Centralized scheduler for spatial / wave-selective switches (case (B) of
/// §VI-A).  Unlike the passive AWGR fabric, these switches must be
/// *configured* before a source-destination circuit exists: requests are
/// serialized through a central scheduler that adds decision latency, and
/// each grant pays the switch reconfiguration time.  This class quantifies
/// the overhead the AWGR design avoids.
struct SchedulerConfig {
  sim::TimePs decision_latency = 500 * sim::kPsPerNs;     // global optimization pass
  sim::TimePs reconfiguration_time = 20 * sim::kPsPerUs;  // MEMS-class
  int ports_per_switch = 256;
};

class CentralizedScheduler {
 public:
  using Config = SchedulerConfig;

  struct Grant {
    bool granted = false;
    int switch_index = -1;
    sim::TimePs ready_at = 0;   // when the circuit becomes usable
    sim::TimePs waited = 0;     // queueing + decision + reconfig
  };

  CentralizedScheduler(const rack::SpatialFabricPlan& plan, Config cfg = {});

  /// Request a circuit src->dst at time `now`.  Picks the least-loaded
  /// shared switch; returns denied when src and dst share no switch or all
  /// shared switches are port-exhausted.
  [[nodiscard]] Grant request_circuit(int src, int dst, sim::TimePs now);

  /// Release one circuit on `switch_index` between the pair.
  void release_circuit(int src, int dst, int switch_index);

  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }
  [[nodiscard]] const sim::RunningStats& grant_latency_ns() const { return latency_ns_; }

 private:
  const rack::SpatialFabricPlan* plan_;
  Config cfg_;
  std::vector<int> ports_in_use_;     // per switch
  sim::TimePs scheduler_free_at_ = 0;  // the scheduler is a serial resource
  std::uint64_t reconfigs_ = 0;
  sim::RunningStats latency_ns_;
};

}  // namespace photorack::net
